package pathfinder

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates testdata/prefetcher_golden.pfs:
//
//	go test -run TestGoldenPrefetcherBlob -update .
var updateGolden = flag.Bool("update", false, "rewrite the golden prefetcher blob")

const goldenBlobPath = "testdata/prefetcher_golden.pfs"

// goldenPrefetcher trains a small deterministic PATHFINDER — the fixed
// generator behind the committed golden blob. Everything is seeded, so
// any change to this function, the encoder, the SNN update rule, or the
// serialization format shows up as a byte diff against the blob.
func goldenPrefetcher(t testing.TB) *Prefetcher {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DeltaRange = 15
	cfg.History = 3
	cfg.Neurons = 10
	cfg.LabelsPerNeuron = 2
	cfg.Ticks = 8
	cfg.Seed = 7
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	accs, err := GenerateTrace("cc-5", 3000, 7)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	for _, a := range accs {
		p.Advise(a, Budget)
	}
	return p
}

// TestGoldenPrefetcherBlob pins the on-disk serialization format: the
// deterministic generator must reproduce the committed blob byte for
// byte, and the blob must survive a LoadPrefetcher → Save round trip
// unchanged. A deliberate format change regenerates the blob with
// -update; an accidental one fails here first.
func TestGoldenPrefetcherBlob(t *testing.T) {
	p := goldenPrefetcher(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenBlobPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenBlobPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenBlobPath, buf.Len())
		return
	}

	golden, err := os.ReadFile(goldenBlobPath)
	if err != nil {
		t.Fatalf("missing golden blob (regenerate with `go test -run TestGoldenPrefetcherBlob -update .`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("serialization drifted from the committed golden blob (%d vs %d bytes); if the format change is deliberate, regenerate with -update", buf.Len(), len(golden))
	}

	// Round trip: the committed blob loads, and re-saving the loaded
	// prefetcher reproduces it exactly.
	q, err := LoadPrefetcher(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("LoadPrefetcher(golden): %v", err)
	}
	var buf2 bytes.Buffer
	if err := q.Save(&buf2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if !bytes.Equal(buf2.Bytes(), golden) {
		t.Fatal("golden blob did not survive a Load -> Save round trip")
	}
	if q.Config() != p.Config() {
		t.Errorf("restored config %+v != trained config %+v", q.Config(), p.Config())
	}
}

// FuzzLoadPrefetcher hammers the deserializer with arbitrary bytes: it
// must reject garbage with an error — never panic, never allocate
// unboundedly — and anything it does accept must survive a Save → Load
// round trip byte-identically.
func FuzzLoadPrefetcher(f *testing.F) {
	if golden, err := os.ReadFile(goldenBlobPath); err == nil {
		f.Add(golden)
		f.Add(golden[:len(golden)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("PFS1"))
	f.Add([]byte("XXXXjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPrefetcher(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("Save after accepted Load: %v", err)
		}
		q, err := LoadPrefetcher(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reload of saved state: %v", err)
		}
		var buf2 bytes.Buffer
		if err := q.Save(&buf2); err != nil {
			t.Fatalf("re-Save: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("Save -> Load -> Save is not a fixed point")
		}
	})
}
