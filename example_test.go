package pathfinder_test

import (
	"bytes"
	"context"
	"fmt"

	"pathfinder"
)

// ExampleNew shows the minimal online-learning loop: PATHFINDER observes a
// stream of loads walking a repeating delta pattern and, within a handful
// of accesses, starts suggesting the next blocks.
func ExampleNew() {
	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}
	page, off := uint64(100), 0
	issued := 0
	for i := 0; i < 40; i++ {
		off += []int{1, 2, 3}[i%3] // the pattern PATHFINDER will learn
		if off >= 64 {
			page, off = page+1, 0
		}
		acc := pathfinder.Access{ID: uint64(i+1) * 10, PC: 0x400, Addr: page*4096 + uint64(off)*64}
		issued += len(pf.Advise(acc, pathfinder.Budget))
	}
	fmt.Println(issued > 0)
	// Output: true
}

// ExampleEval runs one cell of the two-phase evaluation (§4.1): Eval
// generates the named trace, simulates its no-prefetch baseline, and
// replays the prefetcher's advice through the timing model.
func ExampleEval() {
	m, err := pathfinder.Eval(context.Background(), pathfinder.EvalJob{
		Trace:      "bfs-10",
		Loads:      10_000,
		Prefetcher: pathfinder.NewBestOffset(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Prefetcher, m.IPC > 0, m.Accuracy >= 0 && m.Accuracy <= 1)
	// Output: BO true true
}

// ExampleRunner fans an evaluation grid across a worker pool; results come
// back in job order, bit-identical to a serial run.
func ExampleRunner() {
	r := pathfinder.NewRunner(pathfinder.RunnerConfig{Loads: 10_000})
	var jobs []pathfinder.EvalJob
	for _, tr := range []string{"cc-5", "bfs-10"} {
		jobs = append(jobs, pathfinder.EvalJob{
			Trace:      tr,
			Prefetcher: pathfinder.NewBestOffset(),
		})
	}
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Println(res.Trace, res.Prefetcher, res.IPC > 0)
	}
	// Output:
	// cc-5 BO true
	// bfs-10 BO true
}

// ExampleEvaluate runs the deprecated slice-based wrapper, kept for
// callers that already hold a generated trace.
func ExampleEvaluate() {
	accs, err := pathfinder.GenerateTrace("bfs-10", 10_000, 1)
	if err != nil {
		panic(err)
	}
	m, err := pathfinder.Evaluate(pathfinder.NewBestOffset(), accs, pathfinder.ScaledSimConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Prefetcher, m.IPC > 0, m.Accuracy >= 0 && m.Accuracy <= 1)
	// Output: BO true true
}

// ExampleHardwareCost reproduces the paper's headline footprint (§3.5).
func ExampleHardwareCost() {
	cost, err := pathfinder.HardwareCost(pathfinder.DefaultHWConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f mm^2\n", cost.AreaMM2)
	// Output: 0.23 mm^2
}

// ExamplePrefetcher_Save round-trips a trained prefetcher through its
// binary serialization.
func ExamplePrefetcher_Save() {
	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := pf.Save(&buf); err != nil {
		panic(err)
	}
	restored, err := pathfinder.LoadPrefetcher(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(restored.Config() == pf.Config())
	// Output: true
}
