package pathfinder

import (
	"pathfinder/internal/serve"
)

// Serving types: the prefetch-as-a-service daemon behind cmd/pfserved.
// See docs/serving.md for the wire protocol, session lifecycle,
// backpressure semantics and drain guarantees.
type (
	// ServeConfig configures a PrefetchServer: listen address, the
	// per-session prefetcher factory, the sharded session-table geometry
	// (shards, max sessions, LRU idle eviction), the bounded queue depths
	// that make backpressure explicit, and the drain timeout.
	ServeConfig = serve.Config
	// PrefetchServer is a live prefetch-as-a-service daemon: per-session
	// online prefetchers behind a sharded session table, miss-stream
	// events in, predictions out, with bounded queues, admission control
	// and graceful drain.
	PrefetchServer = serve.Server
	// ServeEvalRequest is a one-shot evaluation job submitted over the
	// wire; it runs on the daemon's shared evaluation engine pool.
	ServeEvalRequest = serve.EvalRequest
	// ServeEvalResponse is the evaluation job's reply.
	ServeEvalResponse = serve.EvalResponse
)

// NewPrefetchServer binds the configured address and starts serving.
// Zero-value config fields take the documented defaults (127.0.0.1:0,
// per-session PATHFINDER instances, 8 shards, 1024 sessions, depth-256
// queues). Stop it with (*PrefetchServer).Close (graceful drain bounded by
// ServeConfig.DrainTimeout) or Shutdown (caller-bounded drain).
func NewPrefetchServer(cfg ServeConfig) (*PrefetchServer, error) { return serve.New(cfg) }

// NewPrefetcherByName builds the named online prefetching technique (the
// registry the daemon's evaluation jobs use): "pathfinder", "pf+nl",
// "pf+nl+sisb", "nextline", "bo", "spp", "sisb", "isb", "pythia",
// "stride", "vldp", "sms", "nextpage", or "nopf".
func NewPrefetcherByName(name string, seed int64) (OnlinePrefetcher, error) {
	return serve.NewPrefetcherByName(name, seed)
}
