# Verify flow. `make verify` is the tier-1 gate (see ROADMAP.md); `make race`
# runs the race detector over the parallel evaluation engine and the
# experiment harness that drives it. `make bench-micro` records the SNN
# hot-path micro-benchmarks into BENCH_snn.json (see docs/performance.md).

GO ?= go

.PHONY: build test vet race bench bench-micro verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# SNN hot-path micro-benchmarks (5 repetitions, alloc counts) plus the
# end-to-end BenchmarkSimulate, aggregated into BENCH_snn.json.
bench-micro:
	{ $(GO) test ./internal/snn -run '^$$' -bench 'BenchmarkPresent' -benchmem -count=5 -timeout 30m && \
	  $(GO) test . -run '^$$' -bench 'BenchmarkSimulate$$' -benchmem -count=5 -timeout 30m ; } | \
	  $(GO) run ./cmd/benchjson -o BENCH_snn.json
	@cat BENCH_snn.json

verify: build test vet race
