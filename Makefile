# Verify flow. `make verify` is the tier-1 gate (see ROADMAP.md); `make race`
# runs the race detector over the parallel evaluation engine and the
# experiment harness that drives it.

GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

verify: build test vet race
