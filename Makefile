# Verify flow. `make verify` is the tier-1 gate (see ROADMAP.md); `make race`
# runs the race detector over the parallel evaluation engine, the experiment
# harness that drives it, the serving daemon, and (in short mode) the two
# hot engines. `make serve-harness` runs the prefetch-as-a-service
# concurrency harness — N concurrent sessions over real sockets, bit-exact
# against the single-process path, clean and under fault injection — with
# the race detector on (see docs/serving.md). `make sweep-harness` runs the
# distributed-sweep chaos harness — coordinator/worker fleets under seeded
# kills, disconnects and coordinator resume, bit-identical to the clean
# single-process run — with the race detector on (see docs/distributed.md).
# `make pfdebug` re-runs the suite with the invariant assertions compiled in (see
# docs/testing.md), and `make fuzz-short` gives each native fuzz target a
# brief budget. `make chaos` runs the fault-injection suite under the race
# detector (see docs/resilience.md). `make bench-micro` records the SNN,
# simulator, evaluation-engine, prefetcher and trace-codec benchmarks into
# BENCH_snn.json, BENCH_sim.json, BENCH_runner.json, BENCH_prefetch.json
# and BENCH_trace.json (see docs/performance.md; the streaming-replay
# benchmark lands in BENCH_sim.json, the decoder/encoder ones in
# BENCH_trace.json). `make bench-check` re-runs the simulator, runner,
# prefetcher and SNN-kernel benchmarks and compares them against the
# committed records, failing on >25% ns/op or allocs/op regressions
# (cmd/benchdiff; the SNN gate passes -allow-missing because
# BENCH_snn.json also records the root package's BenchmarkSimulate).

GO ?= go
FUZZTIME ?= 15s

.PHONY: build test vet race pfdebug chaos fuzz-short serve-harness sweep-harness bench bench-micro bench-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/... ./internal/dist/...
	$(GO) test -race -short ./internal/snn/... ./internal/sim/... ./internal/refmodel/... ./internal/trace/... ./internal/serve/...

# Run the tests with the pfdebug invariant assertions enabled (LRU stack
# property, DRAM bank legality, membrane/trace ranges, weight normalization).
pfdebug:
	$(GO) test -tags pfdebug ./...

# The chaos suite: the evaluation engine under injected panics, transient
# failures, hangs and trace corruption, plus the fault framework itself,
# all with the race detector on.
chaos:
	$(GO) test -race -run 'Chaos|Journal|Flight|Progress' ./internal/runner/...
	$(GO) test -race ./internal/fault/...

# Give each native fuzz target a short budget, with invariant assertions on.
# Go runs one -fuzz pattern per package invocation, so targets run in turn.
fuzz-short:
	$(GO) test -tags pfdebug ./internal/refmodel/ -run '^$$' -fuzz FuzzPresent -fuzztime $(FUZZTIME)
	$(GO) test -tags pfdebug ./internal/refmodel/ -run '^$$' -fuzz FuzzCacheAccess -fuzztime $(FUZZTIME)
	$(GO) test -tags pfdebug ./internal/trace/ -run '^$$' -fuzz FuzzStreamRead -fuzztime $(FUZZTIME)
	$(GO) test -tags pfdebug ./internal/serve/ -run '^$$' -fuzz FuzzServeFrame -fuzztime $(FUZZTIME)
	$(GO) test -tags pfdebug ./ -run '^$$' -fuzz FuzzLoadPrefetcher -fuzztime $(FUZZTIME)

# The serving-daemon integration harness: concurrent client sessions over
# real sockets, per-session prediction streams bit-identical to the
# single-process path, clean and under seeded fault injection, all with
# the race detector on.
serve-harness:
	$(GO) test -race -count=1 -run 'TestHarness' ./internal/serve/

# The distributed-sweep chaos harness: coordinator/worker fleets over real
# sockets under seeded worker kills, disconnects and coordinator
# kill-and-resume, with survivor results required bit-identical to a clean
# single-process sweep, all with the race detector on.
sweep-harness:
	$(GO) test -race -count=1 -run 'TestSweepHarness' ./internal/dist/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# SNN hot-path micro-benchmarks (5 repetitions, alloc counts) plus the
# end-to-end BenchmarkSimulate, aggregated into BENCH_snn.json; the
# simulator and evaluation-engine benchmarks split per package (benchjson
# -by-pkg) into BENCH_sim.json and BENCH_runner.json.
BENCHCOUNT ?= 5

bench-micro:
	{ $(GO) test ./internal/snn -run '^$$' -bench 'BenchmarkPresent' -benchmem -count=$(BENCHCOUNT) -timeout 30m && \
	  $(GO) test . -run '^$$' -bench 'BenchmarkSimulate$$' -benchmem -count=$(BENCHCOUNT) -timeout 30m ; } | \
	  $(GO) run ./cmd/benchjson -o BENCH_snn.json
	$(GO) test ./internal/sim ./internal/runner -run '^$$' -bench 'BenchmarkRun|BenchmarkEval' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchjson -by-pkg .
	$(GO) test ./internal/prefetch -run '^$$' -bench 'BenchmarkAdvise' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchjson -o BENCH_prefetch.json
	$(GO) test ./internal/trace -run '^$$' -bench 'BenchmarkReaderNext|BenchmarkRead$$|BenchmarkStreamEncode' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchjson -o BENCH_trace.json
	@cat BENCH_snn.json BENCH_sim.json BENCH_runner.json BENCH_prefetch.json BENCH_trace.json

# Regression gate: rerun the hot-path benchmarks and diff against the
# committed BENCH_*.json. A >25% ns/op slowdown (min of BENCHCOUNT runs)
# or any allocs/op increase fails the target.
bench-check:
	$(GO) test ./internal/sim ./internal/runner -run '^$$' -bench 'BenchmarkRun|BenchmarkEval' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchdiff -pkg internal/sim=BENCH_sim.json -pkg internal/runner=BENCH_runner.json
	$(GO) test ./internal/prefetch -run '^$$' -bench 'BenchmarkAdvise' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchdiff -pkg internal/prefetch=BENCH_prefetch.json
	$(GO) test ./internal/snn -run '^$$' -bench 'BenchmarkPresent' -benchmem -count=$(BENCHCOUNT) -timeout 30m | \
	  $(GO) run ./cmd/benchdiff -allow-missing -pkg internal/snn=BENCH_snn.json

verify: build test vet race pfdebug
