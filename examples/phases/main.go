// phases demonstrates the paper's core argument for real-time learning
// (§1): an epoch-trained model like Delta-LSTM only knows the patterns of
// its training window, while PATHFINDER's STDP keeps learning as the
// program moves between phases. We build a two-phase workload — the delta
// pattern changes completely halfway through — train Delta-LSTM on the
// first 10% (as the paper's setup does), and compare per-phase coverage.
//
//	go run ./examples/phases
package main

import (
	"fmt"

	"pathfinder"
)

func main() {
	const n = 40_000
	accs := twoPhaseTrace(n)
	cfg := pathfinder.ScaledSimConfig()
	cfg.Warmup = n / 10

	base, err := pathfinder.Simulate(cfg, accs, nil)
	if err != nil {
		panic(err)
	}

	// Delta-LSTM: offline, trained on the leading 10% (phase 1 only).
	dcfg := pathfinder.DefaultDeltaLSTMConfig()
	dl, err := pathfinder.GenerateDeltaLSTM(dcfg, accs, pathfinder.Budget)
	if err != nil {
		panic(err)
	}

	// PATHFINDER: online.
	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}
	pfFile := pathfinder.GeneratePrefetches(pf, accs, pathfinder.Budget)

	fmt.Printf("two-phase trace, %d loads (pattern changes at 50%%)\n", n)
	fmt.Printf("no prefetching: IPC %.3f\n\n", base.IPC)
	fmt.Println("prefetcher   phase-1 hits  phase-2 hits  overall coverage")

	for _, c := range []struct {
		name string
		pfs  []pathfinder.PrefetchEntry
	}{{"DeltaLSTM", dl}, {"Pathfinder", pfFile}} {
		p1, p2 := perPhaseHits(accs, c.pfs)
		m, err := pathfinder.EvaluateFile(c.name, accs, c.pfs, cfg, base.LLCLoadMisses)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %12d  %12d  %.3f\n", c.name, p1, p2, m.Coverage)
	}

	fmt.Println("\nDelta-LSTM's hits collapse after the phase change (its vocabulary")
	fmt.Println("and weights froze at training time); PATHFINDER re-labels its")
	fmt.Println("neurons within a few observations of the new pattern (§3.4, Fig 8).")
}

// twoPhaseTrace walks delta pattern {1,2,3} for the first half, then
// *revisits the same address region* with pattern {5,7,2} — the program
// re-traverses its data structure with a different access pattern, so
// models that froze on phase 1 cannot hide behind disjoint addresses.
func twoPhaseTrace(n int) []pathfinder.Access {
	accs := make([]pathfinder.Access, 0, n)
	page, off, pos := uint64(100), 0, 0
	for i := 0; i < n; i++ {
		pattern := []int{1, 2, 3}
		if i >= n/2 {
			pattern = []int{5, 7, 2}
			if i == n/2 {
				page, off, pos = 100, 0, 0 // restart over the same region
			}
		}
		d := pattern[pos%3]
		pos++
		if off+d >= 64 {
			page++
			off = 0
			pos = 1
		} else {
			off += d
		}
		accs = append(accs, pathfinder.Access{
			ID:   uint64(i+1) * 12,
			PC:   0x400,
			Addr: page*4096 + uint64(off)*64,
		})
	}
	return accs
}

// perPhaseHits counts prefetches that matched the immediately following
// access, split at the trace midpoint.
func perPhaseHits(accs []pathfinder.Access, pfs []pathfinder.PrefetchEntry) (p1, p2 int) {
	nextAddr := make(map[uint64]uint64, len(accs)) // trigger ID -> next block
	for i := 0; i+1 < len(accs); i++ {
		nextAddr[accs[i].ID] = accs[i+1].Block()
	}
	mid := accs[len(accs)/2].ID
	for _, pf := range pfs {
		if nextAddr[pf.ID] == pf.Block() {
			if pf.ID < mid {
				p1++
			} else {
				p2++
			}
		}
	}
	return p1, p2
}
