package main

import "testing"

// TestBuildGate exists so `go test ./examples/...` compiles and links this
// example; a bit-rotted example fails here (and in CI) instead of silently
// decaying. main itself is exercised manually — it prints a full demo.
func TestBuildGate(t *testing.T) {
	accs := twoPhaseTrace(1000)
	if len(accs) == 0 {
		t.Fatal("twoPhaseTrace returned no accesses")
	}
	for i := 1; i < len(accs); i++ {
		if accs[i].ID <= accs[i-1].ID {
			t.Fatalf("access %d has non-increasing ID", i)
		}
	}
}
