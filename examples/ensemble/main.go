// ensemble demonstrates §3.4/§5's best design point on an irregular,
// server-style workload: PATHFINDER alone is selective and misses the
// temporally-correlated pointer traffic, the idealized SISB alone misses
// the delta patterns, and the fixed-priority ensemble of
// PATHFINDER → SISB → NextLine combines their strengths.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"

	"pathfinder"
)

func main() {
	const loads = 60_000
	// omnetpp: the paper's canonical SISB-friendly benchmark — heavy
	// temporal repetition, few within-page deltas (§5).
	accs, err := pathfinder.GenerateTrace("471-omnetpp-s1", loads, 1)
	if err != nil {
		panic(err)
	}
	cfg := pathfinder.ScaledSimConfig()
	cfg.Warmup = loads / 10
	base, err := pathfinder.Simulate(cfg, accs, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("471-omnetpp-s1, %d loads — no prefetching: IPC %.3f\n\n", loads, base.IPC)

	newPF := func() *pathfinder.Prefetcher {
		pf, err := pathfinder.New(pathfinder.DefaultConfig())
		if err != nil {
			panic(err)
		}
		return pf
	}

	members := []pathfinder.OnlinePrefetcher{
		newPF(),
		pathfinder.NewSISB(),
		pathfinder.NewNextLine(0),
		pathfinder.NewEnsemble("PF+SISB+NL", newPF(), pathfinder.NewSISB(), pathfinder.NewNextLine(0)),
	}

	fmt.Println("prefetcher   IPC     speedup  accuracy  coverage  issued")
	for _, p := range members {
		m, err := pathfinder.EvaluateAgainstBaseline(p, accs, cfg, base.LLCLoadMisses)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %.3f  %+6.1f%%  %8.3f  %8.3f  %7d\n",
			m.Prefetcher, m.IPC, 100*(m.IPC/base.IPC-1), m.Accuracy, m.Coverage, m.Issued)
	}

	fmt.Println("\nThe ensemble keeps PATHFINDER's prefetches first and lets SISB fill")
	fmt.Println("the remaining budget slots, recovering most of the temporal coverage")
	fmt.Println("PATHFINDER alone cannot express (§5's ensemble discussion).")
}
