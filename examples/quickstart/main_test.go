package main

import "testing"

// TestBuildGate exists so `go test ./examples/...` compiles and links this
// example; a bit-rotted example fails here (and in CI) instead of silently
// decaying. main itself is exercised manually — it prints a full demo.
func TestBuildGate(t *testing.T) {}
