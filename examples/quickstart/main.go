// Quickstart: build a PATHFINDER prefetcher, stream a simple delta pattern
// through it, and watch it start predicting after a handful of accesses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pathfinder"
)

func main() {
	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}

	// One load site (PC 0x400100) walking pages with the delta pattern
	// {1, 2, 3}: offsets 0, 1, 3, 6, 7, 9, 12, ...
	const pc = 0x400100
	page := uint64(100)
	offset := 0
	pattern := []int{1, 2, 3}
	pos := 0

	fmt.Println("access  addr        prefetches issued")
	hits, predictions := 0, 0
	var pending []uint64
	for i := 0; i < 60; i++ {
		d := pattern[pos%len(pattern)]
		pos++
		if offset+d >= 64 {
			page++
			offset = 0
			pos = 1
		} else {
			offset += d
		}
		addr := page*4096 + uint64(offset)*64

		// Did the previous round predict this access?
		for _, p := range pending {
			if p == addr {
				hits++
			}
		}
		if len(pending) > 0 {
			predictions++
		}

		acc := pathfinder.Access{ID: uint64(i+1) * 10, PC: pc, Addr: addr}
		pending = pf.Advise(acc, pathfinder.Budget)
		if i < 20 || len(pending) > 0 && i%10 == 0 {
			fmt.Printf("#%-5d  %#x  %v\n", i, addr, pending)
		}
	}

	st := pf.Stats()
	fmt.Printf("\nafter %d accesses: %d SNN queries, %d prefetches issued\n",
		st.Accesses, st.Queries, st.Issued)
	fmt.Printf("%d of %d predicted next-accesses were correct\n", hits, predictions)
	fmt.Println("\nThe SNN needed no pre-training: STDP learned the pattern on-line,")
	fmt.Println("and the Training/Inference tables turned firing neurons into labels.")
}
