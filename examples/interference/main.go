// interference demonstrates the multi-core simulator and §2.3's claim that
// co-scheduled threads perturb prefetchers: a cc-5-like core runs alone and
// then next to a streaming co-runner that thrashes the shared LLC and
// memory controller.
//
//	go run ./examples/interference
package main

import (
	"fmt"

	"pathfinder"
)

func main() {
	const loads = 40_000
	victim, err := pathfinder.GenerateTrace("cc-5", loads, 1)
	if err != nil {
		panic(err)
	}
	// The co-runner streams through its own address space.
	coRunner, err := pathfinder.GenerateTrace("bfs-10", loads, 2)
	if err != nil {
		panic(err)
	}
	for i := range coRunner {
		coRunner[i].Addr += 1 << 42 // disjoint address spaces
	}

	cfg := pathfinder.ScaledSimConfig()
	cfg.Warmup = loads / 10

	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}
	file := pathfinder.GeneratePrefetches(pf, victim, pathfinder.Budget)

	solo, err := pathfinder.Simulate(cfg, victim, file)
	if err != nil {
		panic(err)
	}
	shared, err := pathfinder.SimulateMulti(cfg,
		[][]pathfinder.Access{victim, coRunner},
		[][]pathfinder.PrefetchEntry{file, nil})
	if err != nil {
		panic(err)
	}

	fmt.Printf("cc-5 with PATHFINDER, %d loads\n\n", loads)
	fmt.Printf("%-22s IPC %.3f  accuracy %.3f  LLC misses %d\n",
		"alone:", solo.IPC, solo.Accuracy(), solo.LLCLoadMisses)
	fmt.Printf("%-22s IPC %.3f  accuracy %.3f  LLC misses %d\n",
		"with streaming core:", shared[0].IPC, shared[0].Accuracy(), shared[0].LLCLoadMisses)
	fmt.Printf("%-22s IPC %.3f (the co-runner itself)\n\n", "co-runner:", shared[1].IPC)
	fmt.Println("Sharing the LLC and memory controller costs the victim IPC and")
	fmt.Println("evicts its prefetched lines before use — the interference noise")
	fmt.Println("§2.3 argues prefetchers must tolerate.")
}
