// snndemo reproduces §3.6 of the paper ("SNN in Action", Table 2 and
// Figure 3): a fresh spiking network is fed the delta pattern {1,2,4} over
// 100-tick input intervals. One neuron predisposes itself to the pattern,
// STDP strengthens it, and it keeps firing — earlier and earlier — while
// noisy variants sometimes excite it too and sometimes recruit other
// neurons. An ASCII plot of the winner's membrane potential stands in for
// Figure 3.
//
//	go run ./examples/snndemo
package main

import (
	"fmt"
	"strings"

	"pathfinder"
)

func main() {
	const d, h = 127, 3
	cfg := pathfinder.DefaultSNNConfig(d * h)
	cfg.Ticks = 100 // §3.6 uses 100-tick intervals
	cfg.Seed = 7
	net, err := pathfinder.NewSNN(cfg)
	if err != nil {
		panic(err)
	}

	encode := func(deltas []int) []float64 {
		p := make([]float64, d*h)
		for row, dv := range deltas {
			p[row*d+dv+(d-1)/2] = 1
		}
		return p
	}

	patterns := [][]int{
		{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4},
		{1, 3, 4}, {1, 2, 5}, {1, 4, 2}, {1, 3, 6},
		{1, 2, 4},
	}

	fmt.Println("Table 2 reproduction (100-tick intervals):")
	fmt.Println("input pattern   firing neuron   firing tick")
	var monitor pathfinder.SNNMonitor
	for i, pat := range patterns {
		if i < 3 {
			net.SetMonitor(&monitor) // record the first three intervals for the plot
		} else {
			net.SetMonitor(nil)
		}
		res, err := net.Present(encode(pat), true)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s %-15d %d\n", fmt.Sprintf("%v", pat), res.Winner, res.FirstFireTick)
	}

	// Figure 3: the winner's potential across the first three intervals.
	winner := -1
	for _, tick := range monitor.Ticks {
		for j, fired := range tick.Fired {
			if fired {
				winner = j
			}
		}
		if winner >= 0 {
			break
		}
	}
	if winner < 0 {
		fmt.Println("\nno neuron fired in the recorded intervals")
		return
	}
	fmt.Printf("\nFigure 3 reproduction: membrane potential of winning neuron %d\n", winner)
	fmt.Println("(each row is one tick; # marks the potential, | the firing threshold; three 100-tick intervals)")
	const width = 60
	rest, thresh := cfg.RestE, cfg.ThreshE
	for i, tick := range monitor.Ticks {
		if i%5 != 0 { // subsample for readability
			continue
		}
		v := tick.Potentials[winner]
		pos := int((v - rest) / (thresh + 3 - rest) * width)
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		bar := strings.Repeat(" ", pos) + "#"
		mark := int((thresh - rest) / (thresh + 3 - rest) * width)
		if mark < len(bar) {
			bar = bar[:mark] + "|" + bar[mark:]
		} else {
			bar += strings.Repeat(" ", mark-len(bar)) + "|"
		}
		fired := ""
		if tick.Fired[winner] {
			fired = "  << fires"
		}
		fmt.Printf("interval %d tick %3d %s%s\n", i/100+1, tick.Tick, bar, fired)
	}
}
