// graphtraversal runs a GAP-style breadth-first-search workload (the
// paper's bfs-10 stand-in) through the full two-phase evaluation, comparing
// PATHFINDER against the rule-based Best-Offset prefetcher — the scenario
// the paper's introduction motivates: graph traversals whose delta patterns
// are too noisy for simple rule tables.
//
//	go run ./examples/graphtraversal
package main

import (
	"fmt"

	"pathfinder"
)

func main() {
	const loads = 60_000
	accs, err := pathfinder.GenerateTrace("bfs-10", loads, 1)
	if err != nil {
		panic(err)
	}
	cfg := pathfinder.ScaledSimConfig()
	cfg.Warmup = loads / 10

	base, err := pathfinder.Simulate(cfg, accs, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bfs-10, %d loads — no prefetching: IPC %.3f, %d LLC misses\n\n",
		loads, base.IPC, base.LLCLoadMisses)

	fmt.Println("prefetcher   IPC     speedup  accuracy  coverage")
	show := func(p pathfinder.OnlinePrefetcher) {
		m, err := pathfinder.EvaluateAgainstBaseline(p, accs, cfg, base.LLCLoadMisses)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %.3f  %+6.1f%%  %8.3f  %8.3f\n",
			m.Prefetcher, m.IPC, 100*(m.IPC/base.IPC-1), m.Accuracy, m.Coverage)
	}

	show(pathfinder.NewBestOffset())

	pf, err := pathfinder.New(pathfinder.DefaultConfig())
	if err != nil {
		panic(err)
	}
	show(pf)

	st := pf.Stats()
	fmt.Printf("\nPATHFINDER internals: %d accesses observed, %d SNN queries, %d prefetches suggested\n",
		st.Accesses, st.Queries, st.Issued)
	fmt.Println("\nBoth cover the regular frontier scans; PATHFINDER's labels also capture")
	fmt.Println("the irregular multi-delta patterns of the edge lists, at higher accuracy.")
}
