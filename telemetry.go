package pathfinder

import (
	"io"
	"time"

	"pathfinder/internal/dist"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/serve"
	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
)

// Telemetry types, exposed for programmatic access to the metrics the
// instrumented layers record; see docs/observability.md for the catalogue.
type (
	// TelemetryRegistry holds the process's live counters, gauges and
	// histograms while telemetry is enabled.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of every metric, as
	// embedded in RunReport.Telemetry and streamed by the JSONL sampler.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySampler periodically writes registry snapshots as JSON
	// lines; see StartTelemetrySampler.
	TelemetrySampler = telemetry.Sampler
)

// EnableTelemetry switches on metric recording across the whole stack —
// the SNN, the timing simulator, the evaluation engine, the prefetch
// drivers and the streaming trace decoders — and returns the fresh
// registry the layers now record into.
// With telemetry off (the default) every record site costs a single
// predictable branch and the hot paths stay allocation-free; enabling it
// never changes simulated results, only observes them.
func EnableTelemetry() *TelemetryRegistry {
	r := telemetry.Enable()
	snn.EnableTelemetry(r)
	sim.EnableTelemetry(r)
	runner.EnableTelemetry(r)
	prefetch.EnableTelemetry(r)
	trace.EnableTelemetry(r)
	serve.EnableTelemetry(r)
	dist.EnableTelemetry(r)
	return r
}

// DisableTelemetry unbinds every layer and discards the global registry,
// returning the stack to its zero-overhead default.
func DisableTelemetry() {
	snn.EnableTelemetry(nil)
	sim.EnableTelemetry(nil)
	runner.EnableTelemetry(nil)
	prefetch.EnableTelemetry(nil)
	trace.EnableTelemetry(nil)
	serve.EnableTelemetry(nil)
	dist.EnableTelemetry(nil)
	telemetry.Disable()
}

// TelemetrySnapshotNow returns a copy of the current metric values, or nil
// when telemetry is disabled.
func TelemetrySnapshotNow() *TelemetrySnapshot { return telemetry.GlobalSnapshot() }

// ServeTelemetry starts an HTTP server on addr (host:port; port 0 picks a
// free one) exposing /metrics (JSON snapshot), /debug/vars (expvar) and
// /debug/pprof. It returns the bound address and a shutdown function.
// Call EnableTelemetry first; with telemetry off the endpoints serve empty
// snapshots.
func ServeTelemetry(addr string) (string, func(), error) {
	return telemetry.Serve(addr, telemetry.Get())
}

// StartTelemetrySampler streams one registry snapshot to w as a JSON line
// every interval (floored at 10 ms) until Stop is called. Call
// EnableTelemetry first.
func StartTelemetrySampler(w io.Writer, interval time.Duration) *TelemetrySampler {
	return telemetry.NewSampler(telemetry.Get(), w, interval)
}
