// Package pathfinder is a from-scratch Go reproduction of PATHFINDER
// (ASPLOS 2024): a hardware data prefetcher that learns within-page address
// delta patterns in real time with a spiking neural network trained by
// spike-timing-dependent plasticity (STDP).
//
// The package is the public facade over the full system:
//
//   - the PATHFINDER prefetcher and its SNN substrate (New, DefaultConfig);
//   - every baseline the paper compares against: NextLine, Best-Offset,
//     SPP, an idealized SISB, Pythia (online), and the offline neural
//     baselines Delta-LSTM and Voyager (GenerateDeltaLSTM,
//     GenerateVoyager);
//   - synthetic workload generators standing in for the paper's GAP /
//     SPEC / CloudSuite traces (Workloads, GenerateTraceSource);
//   - the streaming trace surface: pull-based sources, constant-memory
//     decoders and bounded-heap replay for traces of any length
//     (TraceSource, OpenTraceFile, NewTraceReader, SimulateStream);
//   - the trace-driven timing simulator that turns prefetch files into
//     IPC, accuracy and coverage (Simulate, Eval);
//   - the parallel evaluation engine that fans (trace × prefetcher) grids
//     across all cores (Runner, EvalJob, EvalResult);
//   - the hardware cost model of §3.5 (HardwareCost).
//
// A minimal end-to-end run:
//
//	accs, _ := pathfinder.GenerateTrace("cc-5", 100_000, 1)
//	pf, _ := pathfinder.New(pathfinder.DefaultConfig())
//	m, _ := pathfinder.Eval(context.Background(), pathfinder.EvalJob{Prefetcher: pf, Accs: accs})
//	fmt.Printf("IPC %.3f accuracy %.2f coverage %.2f\n", m.IPC, m.Accuracy, m.Coverage)
package pathfinder

import (
	"context"
	"io"
	"os"

	"pathfinder/internal/core"
	"pathfinder/internal/hwcost"
	"pathfinder/internal/lstm"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// Core prefetcher types.
type (
	// Config selects a PATHFINDER variant (§3); see DefaultConfig.
	Config = core.Config
	// Prefetcher is a PATHFINDER instance. It implements OnlinePrefetcher.
	Prefetcher = core.Pathfinder
	// Stats are PATHFINDER's internal counters.
	Stats = core.Stats
)

// Trace types.
type (
	// Access is one load of a memory trace.
	Access = trace.Access
	// PrefetchEntry is one record of a prefetch file.
	PrefetchEntry = trace.Prefetch
	// TraceSource is the pull-based trace iterator the streaming stack is
	// built on: Next fills the access and returns nil, io.EOF after the
	// last record, or a positioned decode error. Sources additionally
	// exposing Remaining() (uint64, bool) let consumers pre-size and keep
	// up-front warmup validation.
	TraceSource = trace.Source
)

// Simulation types.
type (
	// SimConfig is the machine configuration (Table 3 defaults).
	SimConfig = sim.Config
	// SimResult carries one simulation's measurements.
	SimResult = sim.Result
)

// OnlinePrefetcher is the common interface of PATHFINDER and the online
// baselines: observe one access, suggest up to budget prefetch addresses.
type OnlinePrefetcher = prefetch.Prefetcher

// SNN types, exposed for the §3.6 demonstrations.
type (
	// SNNConfig holds the spiking-network hyper-parameters (Table 4).
	SNNConfig = snn.Config
	// SNN is the Diehl & Cook spiking network PATHFINDER queries.
	SNN = snn.Network
	// SNNMonitor records per-tick potentials and spikes (Figure 3).
	SNNMonitor = snn.Monitor
)

// Hardware cost types (§3.5, Table 9).
type (
	// HWConfig describes a PATHFINDER hardware configuration for costing.
	HWConfig = hwcost.Config
	// HWCost is an area/power estimate at 12 nm.
	HWCost = hwcost.Cost
)

// Offline baseline configurations.
type (
	// DeltaLSTMConfig configures the Delta-LSTM baseline.
	DeltaLSTMConfig = lstm.DeltaLSTMConfig
	// VoyagerConfig configures the Voyager baseline.
	VoyagerConfig = lstm.VoyagerConfig
)

// Budget is the per-access prefetch budget used throughout the evaluation
// (§4.5: at most 2 prefetches per access).
const Budget = prefetch.Budget

// Cache replacement policies for SimConfig.LLCPolicy.
const (
	// PolicyLRU is true least-recently-used replacement (the default).
	PolicyLRU = sim.PolicyLRU
	// PolicySRRIP is re-reference interval prediction with prefetch-aware
	// distant insertion.
	PolicySRRIP = sim.PolicySRRIP
)

// DefaultConfig returns the paper's high-accuracy PATHFINDER configuration
// (Figure 4): 50 neurons, 2 labels per neuron, delta range ±63, 32-tick
// interval, degree 2.
func DefaultConfig() Config { return core.DefaultConfig() }

// New builds a PATHFINDER prefetcher.
func New(cfg Config) (*Prefetcher, error) { return core.New(cfg) }

// LoadPrefetcher restores a trained PATHFINDER saved with
// (*Prefetcher).Save: the SNN weights, adaptive thresholds, and the
// Inference Table labels persist; the transient Training Table re-warms on
// its own within a few accesses per page.
func LoadPrefetcher(r io.Reader) (*Prefetcher, error) { return core.Load(r) }

// LoadSessionPrefetcher restores a PATHFINDER saved with
// (*Prefetcher).SaveSession — the exact-continuation snapshot that also
// carries the Training Table and RNG position, so the restored prefetcher
// advises bit-identically to one that was never serialized. It accepts
// plain Save blobs too (their transients start fresh). The serving
// daemon's eviction spill (internal/serve) uses this pair.
func LoadSessionPrefetcher(r io.Reader) (*Prefetcher, error) { return core.LoadSession(r) }

// NewSNN builds a standalone spiking network (for demos of the §3.6
// behaviour; use DefaultSNNConfig for the Table 4 parameters).
func NewSNN(cfg SNNConfig) (*SNN, error) { return snn.New(cfg) }

// DefaultSNNConfig returns the Table 4 network parameters for an input of
// the given size.
func DefaultSNNConfig(inputSize int) SNNConfig { return snn.DefaultConfig(inputSize) }

// Baseline constructors (§4.3).

// NewNextLine returns a next-line prefetcher of the given degree (0 means
// "fill the budget").
func NewNextLine(degree int) OnlinePrefetcher { return &prefetch.NextLine{Degree: degree} }

// NewBestOffset returns Michaud's Best-Offset prefetcher.
func NewBestOffset() OnlinePrefetcher { return prefetch.NewBestOffset() }

// NewSPP returns the Signature Path Prefetcher.
func NewSPP() OnlinePrefetcher { return prefetch.NewSPP() }

// NewSISB returns the idealized Irregular Stream Buffer.
func NewSISB() OnlinePrefetcher { return prefetch.NewSISB() }

// NewPythia returns the reinforcement-learning prefetcher.
func NewPythia(seed int64) OnlinePrefetcher { return prefetch.NewPythia(seed) }

// NewNoPrefetch returns the no-prefetching baseline.
func NewNoPrefetch() OnlinePrefetcher { return prefetch.NoPrefetch{} }

// NewStride returns a classic per-PC stride prefetcher (Baer & Chen, §2.1).
func NewStride() OnlinePrefetcher { return prefetch.NewStride() }

// NewVLDP returns the Variable Length Delta Prefetcher (Shevgoor et al.,
// cited in §2.1 as the complex end of delta correlation).
func NewVLDP() OnlinePrefetcher { return prefetch.NewVLDP() }

// NewSMS returns Spatial Memory Streaming (Somogyi et al., the spatial
// prefetcher family of §2.1).
func NewSMS() OnlinePrefetcher { return prefetch.NewSMS() }

// NewThrottle wraps any prefetcher with feedback-directed aggressiveness
// control (Srinath et al.): it earns the full per-access budget only while
// its recent suggestions are accurate — the throttling mechanism the
// paper's Best-Offset baseline ships with disabled (§4.3).
func NewThrottle(inner OnlinePrefetcher) OnlinePrefetcher { return prefetch.NewThrottle(inner) }

// NewISB returns the realistic, bounded-metadata Irregular Stream Buffer
// (Jain & Lin); NewSISB is its idealized unbounded variant.
func NewISB() OnlinePrefetcher { return prefetch.NewISB() }

// NewNextPage returns the cold-page first-access predictor implementing
// the future-work item of §3.4 ("Initial Accesses to a Page"); ensemble it
// with PATHFINDER to cover cold-page misses.
func NewNextPage() OnlinePrefetcher { return prefetch.NewNextPage() }

// NewDynamicEnsemble combines prefetchers with usefulness-scored priorities
// — the "dynamic ensemble priority policies" the paper leaves as future
// work (§5).
func NewDynamicEnsemble(label string, members ...OnlinePrefetcher) OnlinePrefetcher {
	d := prefetch.NewDynamicEnsemble(members...)
	d.Label = label
	return d
}

// NewEnsemble combines prefetchers with fixed priority (first wins); the
// paper's best design point is NewEnsemble(pf, NewNextLine(0), NewSISB()).
func NewEnsemble(label string, members ...OnlinePrefetcher) OnlinePrefetcher {
	e := prefetch.NewEnsemble(members...)
	e.Label = label
	return e
}

// Workloads returns the names of the paper's 11 benchmark traces (Table 5).
func Workloads() []string { return workload.Names() }

// GenerateTrace synthesises a deterministic trace of n loads for the named
// benchmark (see DESIGN.md for the trace-substitution rationale).
//
// Deprecated: GenerateTrace materializes all n accesses up front. Use
// GenerateTraceSource, which streams the identical records in constant
// memory (and CollectTrace when a slice is genuinely needed).
func GenerateTrace(name string, n int, seed int64) ([]Access, error) {
	return workload.Generate(name, n, seed)
}

// GenerateTraceSource returns a streaming generator for the named
// benchmark: the same deterministic records GenerateTrace materializes,
// yielded one at a time, so the heap footprint is the generator state
// rather than the trace. For the Table 5 synthetic specs a negative n
// streams indefinitely (the live-capture stand-in for daemon consumers);
// the executed graph kernels need a concrete length.
func GenerateTraceSource(name string, n int, seed int64) (TraceSource, error) {
	return workload.NewSource(name, n, seed)
}

// NewTraceReader returns a streaming decoder over any trace container —
// the counted PFT2 file format, the unbounded PFT3 pipe format, or the
// text form — sniffed from the first bytes. Decoding is allocation-free
// in steady state and validates records incrementally with the same
// positioned errors as the slice decoders; see docs/streaming.md.
func NewTraceReader(r io.Reader) (TraceSource, error) { return trace.NewAutoReader(r) }

// NewSliceTraceSource adapts an in-memory trace to the streaming surface.
// The slice is not copied; do not mutate it while the source is read.
func NewSliceTraceSource(accs []Access) TraceSource { return trace.NewSliceSource(accs) }

// CollectTrace drains a source into a materialized slice — the bridge
// back for consumers that genuinely need random access.
func CollectTrace(src TraceSource) ([]Access, error) { return trace.Collect(src) }

// HashTraceSource drains a source into a 64-bit FNV-1a content digest and
// record count: two streams carry the same trace iff (hash, n) match. It
// is the recommended way to derive an EvalJob.SourceKey for file-backed
// streaming jobs.
func HashTraceSource(src TraceSource) (hash uint64, n uint64, err error) {
	return trace.HashSource(src)
}

// TraceFile is an open on-disk trace decoded as a stream. It implements
// TraceSource (plus Remaining, for counted containers) and must be closed
// after the last record.
type TraceFile struct {
	f   *os.File
	src TraceSource
}

// OpenTraceFile opens path and returns a streaming decoder over it,
// sniffing the container format like NewTraceReader.
func OpenTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := trace.NewAutoReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &TraceFile{f: f, src: src}, nil
}

// Next implements TraceSource.
func (t *TraceFile) Next(a *Access) error { return t.src.Next(a) }

// Remaining reports the declared records left when the underlying
// container is counted.
func (t *TraceFile) Remaining() (uint64, bool) {
	if s, ok := t.src.(interface{ Remaining() (uint64, bool) }); ok {
		return s.Remaining()
	}
	return 0, false
}

// Close releases the underlying file.
func (t *TraceFile) Close() error { return t.f.Close() }

// DefaultSimConfig returns the Table 3 machine configuration, appropriate
// for full-length (1 M load) traces.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// ScaledSimConfig returns the Table 3 machine with its cache hierarchy
// scaled down 8×, matching the shorter traces the experiment harness runs
// by default (see sim.ScaledConfig for the rationale).
func ScaledSimConfig() SimConfig { return sim.ScaledConfig() }

// Simulate replays a trace and a prefetch file on the configured machine.
func Simulate(cfg SimConfig, accs []Access, pfs []PrefetchEntry) (SimResult, error) {
	return sim.Run(cfg, accs, pfs)
}

// SimulateStream is Simulate fed by a TraceSource: replay holds a bounded
// window of accesses, so heap usage is independent of trace length, and
// the result is bit-identical to Simulate over the same records (Simulate
// is implemented on this path). A source of unknown length cannot default
// the warmup to 10% of the trace — set cfg.Warmup explicitly, or leave it
// zero to measure from the first record.
func SimulateStream(cfg SimConfig, src TraceSource, pfs []PrefetchEntry) (SimResult, error) {
	return sim.RunStream(cfg, src, pfs)
}

// SimulateMulti simulates several cores with private L1/L2 caches sharing
// one LLC and memory controller — the co-scheduled-thread interference
// scenario of §2.3. cores[i] is core i's trace; pfs may be nil, or one
// prefetch file per core (individual entries may be nil). It returns one
// result per core.
func SimulateMulti(cfg SimConfig, cores [][]Access, pfs [][]PrefetchEntry) ([]SimResult, error) {
	return sim.RunMulti(cfg, cores, pfs)
}

// GeneratePrefetches drives an online prefetcher over a trace, producing
// its prefetch file (phase one of the two-phase flow of §4.1).
//
// Deprecated: GeneratePrefetches takes the materialized trace. Use
// GeneratePrefetchesStream, which drives the prefetcher over a
// TraceSource one access at a time (and reports errors, which this
// signature swallows).
func GeneratePrefetches(p OnlinePrefetcher, accs []Access, budget int) []PrefetchEntry {
	return prefetch.GenerateFile(p, accs, budget)
}

// GeneratePrefetchesStream drives an online prefetcher over a streaming
// trace, producing its prefetch file. Only the prefetch file is
// materialized — it is what the simulator replays — so generation over an
// arbitrarily long trace holds one access at a time plus the file itself.
func GeneratePrefetchesStream(ctx context.Context, p OnlinePrefetcher, src TraceSource, budget int) ([]PrefetchEntry, error) {
	return prefetch.GenerateFileStreamCtx(ctx, p, src, budget)
}

// DefaultDeltaLSTMConfig returns the Delta-LSTM evaluation configuration.
func DefaultDeltaLSTMConfig() DeltaLSTMConfig { return lstm.DefaultDeltaLSTMConfig() }

// GenerateDeltaLSTM runs the offline Delta-LSTM baseline over a trace.
func GenerateDeltaLSTM(cfg DeltaLSTMConfig, accs []Access, budget int) ([]PrefetchEntry, error) {
	return lstm.GenerateDeltaLSTM(cfg, accs, budget)
}

// DefaultVoyagerConfig returns the Voyager evaluation configuration.
func DefaultVoyagerConfig() VoyagerConfig { return lstm.DefaultVoyagerConfig() }

// GenerateVoyager runs the offline Voyager baseline over a trace.
func GenerateVoyager(cfg VoyagerConfig, accs []Access, budget int) ([]PrefetchEntry, error) {
	return lstm.GenerateVoyager(cfg, accs, budget)
}

// DefaultHWConfig returns the paper's full hardware configuration.
func DefaultHWConfig() HWConfig { return hwcost.DefaultConfig() }

// HardwareCost estimates silicon area and power for a PATHFINDER hardware
// configuration (§3.5; the default lands at the paper's 0.23 mm² / 0.5 W).
func HardwareCost(cfg HWConfig) (HWCost, error) { return hwcost.Total(cfg) }

// Parallel evaluation engine types.
type (
	// Metrics summarises one prefetcher evaluation (§4.5).
	Metrics = runner.Metrics
	// EvalJob describes one evaluation: a trace (by name, as explicit
	// accesses, or as a streaming Source factory with a SourceKey cache
	// identity) and exactly one prefetch source — an online prefetcher
	// (instance or factory), an offline file generator, or a precomputed
	// file — plus optional baseline, warmup, budget, and machine
	// overrides. Source jobs never materialize the trace: each stage
	// streams a fresh resolution through the bounded replay window.
	EvalJob = runner.Job
	// EvalResult is one evaluated job: Metrics plus the trace's
	// no-prefetch IPC and the job's wall-clock / simulated-cycle cost.
	EvalResult = runner.Result
	// Runner is the parallel evaluation engine: it fans EvalJobs across a
	// worker pool and runs each trace's no-prefetch baseline exactly once
	// through a single-flight cache. Results are bit-identical to a
	// serial run regardless of parallelism.
	Runner = runner.Runner
	// RunnerConfig configures a Runner (trace length, seed, machine,
	// parallelism, progress sink).
	RunnerConfig = runner.Config
	// RunnerProgress is one progress event (jobs done, wall clock,
	// simulated cycles) delivered to RunnerConfig.Progress.
	RunnerProgress = runner.Progress
	// RunReport summarises a graceful-degradation run (see
	// Runner.RunWithReport): completed/resumed/retried counts and one
	// JobError per failed cell.
	RunReport = runner.RunReport
	// JobError attributes one evaluation-cell failure: job identity, the
	// attempt count, the cause, and a stack trace when the cause was a
	// panic.
	JobError = runner.JobError
	// RunJournal is an append-only on-disk record of completed evaluation
	// cells, enabling checkpoint/resume across process restarts (see
	// OpenJournal and RunnerConfig.Journal).
	RunJournal = runner.Journal
)

// NewRunner builds a parallel evaluation engine. Zero-value config fields
// take defaults: 50 K-load traces, seed 1, the scaled Table 3 machine,
// GOMAXPROCS workers.
func NewRunner(cfg RunnerConfig) *Runner { return runner.New(cfg) }

// OpenJournal opens (creating if absent) an on-disk journal of completed
// evaluation cells at path. Attach it via RunnerConfig.Journal to
// checkpoint a run and resume it after a crash; see docs/resilience.md.
func OpenJournal(path string) (*RunJournal, error) { return runner.OpenJournal(path) }

// Eval runs the complete two-phase evaluation described by one EvalJob:
// trace acquisition, the no-prefetch baseline (unless job.Baseline is
// precomputed), prefetch-file generation, and the timed replay. Warmup
// defaults to 10% of the trace; job.Sim defaults to ScaledSimConfig. It
// subsumes the deprecated Evaluate, EvaluateAgainstBaseline and
// EvaluateFile entry points; use a Runner to evaluate whole grids in
// parallel.
func Eval(ctx context.Context, job EvalJob) (Metrics, error) {
	res, err := runner.New(runner.Config{Parallelism: 1}).Eval(ctx, job)
	return res.Metrics, err
}

// Evaluate runs the two-phase evaluation of one online prefetcher on a
// trace with a fresh baseline simulation and a 10%-of-trace warmup.
//
// Deprecated: use Eval with an EvalJob{Prefetcher: p, Accs: accs, Sim: &cfg}.
func Evaluate(p OnlinePrefetcher, accs []Access, cfg SimConfig) (Metrics, error) {
	return Eval(context.Background(), EvalJob{Prefetcher: p, Accs: accs, Sim: &cfg})
}

// EvaluateAgainstBaseline is Evaluate with a precomputed baseline miss
// count, letting callers share one baseline run across many prefetchers.
// cfg.Warmup must already be set as it was for the baseline run.
//
// Deprecated: use Eval with EvalJob.Baseline set (a Runner shares
// baselines across a grid automatically).
func EvaluateAgainstBaseline(p OnlinePrefetcher, accs []Access, cfg SimConfig, baselineMisses uint64) (Metrics, error) {
	return Eval(context.Background(), EvalJob{
		Prefetcher: p, Accs: accs, Sim: &cfg,
		Baseline: &baselineMisses, Warmup: explicitWarmup(cfg.Warmup),
	})
}

// EvaluateFile scores an already-generated prefetch file (used for the
// offline baselines Delta-LSTM and Voyager).
//
// Deprecated: use Eval with EvalJob.File.
func EvaluateFile(name string, accs []Access, pfs []PrefetchEntry, cfg SimConfig, baselineMisses uint64) (Metrics, error) {
	return Eval(context.Background(), EvalJob{
		Label: name, Accs: accs, File: pfs, Sim: &cfg,
		Baseline: &baselineMisses, Warmup: explicitWarmup(cfg.Warmup),
	})
}

// explicitWarmup maps a SimConfig.Warmup the legacy entry points received
// onto the EvalJob override, preserving their exact semantics: whatever
// the caller set is used verbatim, including zero (no warmup).
func explicitWarmup(w int) int {
	if w == 0 {
		return -1
	}
	return w
}
