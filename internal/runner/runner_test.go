package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// testJobs builds a (trace × prefetcher) grid over the given traces with a
// cheap rule-based prefetcher and the full PATHFINDER, both constructed
// per-job from the seed.
func testJobs(traces []string, seed int64) []Job {
	var jobs []Job
	for _, tr := range traces {
		jobs = append(jobs,
			Job{Trace: tr, New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }},
			Job{Trace: tr, New: func() (prefetch.Prefetcher, error) {
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				return core.New(cfg)
			}},
		)
	}
	return jobs
}

// TestRunDeterminism is the engine's core contract: the full Table 5 suite
// at 5 K loads, evaluated with 8 workers and with 1, must produce
// byte-identical metrics in the same order.
func TestRunDeterminism(t *testing.T) {
	traces := workload.Names()
	run := func(parallelism int) []Result {
		r := New(Config{Loads: 5000, Seed: 1, Parallelism: parallelism})
		results, err := r.Run(context.Background(), testJobs(traces, 1))
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return results
	}
	par := run(8)
	ser := run(1)
	if len(par) != len(ser) || len(par) != 2*len(traces) {
		t.Fatalf("result counts: %d vs %d, want %d", len(par), len(ser), 2*len(traces))
	}
	for i := range par {
		if !reflect.DeepEqual(par[i].Metrics, ser[i].Metrics) {
			t.Errorf("job %d: parallel metrics %+v != serial %+v", i, par[i].Metrics, ser[i].Metrics)
		}
		if par[i].BaselineIPC != ser[i].BaselineIPC || par[i].Cycles != ser[i].Cycles {
			t.Errorf("job %d: baseline/cycles diverge: %v/%d vs %v/%d",
				i, par[i].BaselineIPC, par[i].Cycles, ser[i].BaselineIPC, ser[i].Cycles)
		}
		if par[i].IPC <= 0 {
			t.Errorf("job %d: non-positive IPC %v", i, par[i].IPC)
		}
	}
}

// TestBaselineSingleFlight checks that a grid touching each trace many
// times simulates each trace's no-prefetch baseline exactly once.
func TestBaselineSingleFlight(t *testing.T) {
	traces := []string{"cc-5", "bfs-10", "623-xalan-s1"}
	var jobs []Job
	for _, tr := range traces {
		for i := 0; i < 4; i++ {
			jobs = append(jobs, Job{
				Trace: tr,
				Label: fmt.Sprintf("BO-%d", i),
				New:   func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil },
			})
		}
	}
	r := New(Config{Loads: 3000, Parallelism: 8})
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := r.BaselineSims(); got != int64(len(traces)) {
		t.Errorf("baseline simulations = %d, want %d (one per distinct trace)", got, len(traces))
	}
	// A precomputed baseline must not trigger a simulation either.
	misses := uint64(123)
	res, err := r.Eval(context.Background(), Job{
		Trace: "cc-5", Baseline: &misses,
		New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineMisses != misses || res.BaselineIPC != 0 {
		t.Errorf("precomputed baseline not honoured: %+v", res)
	}
	if got := r.BaselineSims(); got != int64(len(traces)) {
		t.Errorf("baseline simulations after precomputed-baseline job = %d, want %d", got, len(traces))
	}
}

// TestRunCancellation cancels mid-grid from the progress sink and checks
// that Run reports context.Canceled and leaks no goroutines.
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int32
	r := New(Config{
		Loads:       4000,
		Parallelism: 4,
		Progress: func(p Progress) {
			if seen.Add(1) == 2 {
				cancel()
			}
		},
	})
	_, err := r.Run(ctx, testJobs(workload.Names(), 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := seen.Load(); n >= int32(2*len(workload.Names())) {
		t.Errorf("grid ran to completion (%d progress events) despite cancellation", n)
	}

	// Workers must have wound down; allow the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPreCancelled checks that an already-cancelled context evaluates
// nothing.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(Config{Loads: 3000})
	if _, err := r.Run(ctx, testJobs([]string{"cc-5"}, 1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
	if got := r.BaselineSims(); got != 0 {
		t.Errorf("baseline simulations = %d on a cancelled run", got)
	}
}

// TestJobValidation covers the job-shape errors.
func TestJobValidation(t *testing.T) {
	r := New(Config{Loads: 1000})
	ctx := context.Background()
	if _, err := r.Eval(ctx, Job{Trace: "cc-5"}); err == nil {
		t.Error("job with no prefetch source did not error")
	}
	if _, err := r.Eval(ctx, Job{New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }}); err == nil {
		t.Error("job with neither trace nor accesses did not error")
	}
	if _, err := r.Eval(ctx, Job{Trace: "cc-5", GenFile: func(ctx context.Context, _ []trace.Access) ([]trace.Prefetch, error) { return nil, nil }}); err == nil {
		t.Error("GenFile job without a Label did not error")
	}
	if _, err := r.Eval(ctx, Job{Trace: "no-such-trace", New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }}); err == nil {
		t.Error("unknown trace did not error")
	}
}

// TestResolveWarmup pins the warmup precedence.
func TestResolveWarmup(t *testing.T) {
	for _, tc := range []struct{ job, sim, n, want int }{
		{100, 0, 5000, 100}, // explicit job warmup wins
		{-1, 700, 5000, 0},  // negative disables
		{0, 700, 5000, 700}, // sim config next
		{0, 0, 5000, 500},   // default: 10% of the trace
	} {
		if got := resolveWarmup(tc.job, tc.sim, tc.n); got != tc.want {
			t.Errorf("resolveWarmup(%d, %d, %d) = %d, want %d", tc.job, tc.sim, tc.n, got, tc.want)
		}
	}
}

// TestForEach covers the helper's happy path, error short-circuit and
// cancellation.
func TestForEach(t *testing.T) {
	var hits atomic.Int32
	if err := ForEach(context.Background(), 4, 100, func(i int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 100 {
		t.Errorf("hits = %d, want 100", hits.Load())
	}

	wantErr := errors.New("boom")
	err := ForEach(context.Background(), 4, 1000, func(i int) error {
		if i == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want boom", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 4, 10, func(i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ForEach err = %v", err)
	}
}

// TestFlightSingleExecution hammers one key from many goroutines and
// counts builder executions.
func TestFlightSingleExecution(t *testing.T) {
	var f flight[int]
	var builds atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.Do(context.Background(), "k", func() (int, error) {
				builds.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("builder ran %d times, want 1", builds.Load())
	}
}

// TestFlightErrorEviction checks that a failed build is retried on the
// next Do rather than cached forever.
func TestFlightErrorEviction(t *testing.T) {
	var f flight[int]
	calls := 0
	_, err := f.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 0, errors.New("transient")
	})
	if err == nil {
		t.Fatal("first Do did not error")
	}
	v, err := f.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry Do = %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("builder calls = %d, want 2", calls)
	}
}
