package runner

import (
	"context"
	"fmt"
	"testing"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/sim"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// panicSource replays a slice but panics after n records, so a pooled
// engine can be abandoned deep inside a run with half-filled caches, live
// in-flight fills, and a partially consumed replay window.
type panicSource struct {
	inner trace.Source
	left  int
}

func (s *panicSource) Next(a *trace.Access) error {
	if s.left == 0 {
		panic("injected mid-replay panic")
	}
	s.left--
	return s.inner.Next(a)
}

// TestEnginePoolReuseAfterPanic is the chaos test for the engine pool: an
// engine whose run panicked mid-replay goes back to the pool (the release
// is deferred) and the next acquisition must reproduce a fresh engine's
// results bit for bit — the Engine resets at the start of each run, so
// abandoned state from the panicked replay cannot leak.
func TestEnginePoolReuseAfterPanic(t *testing.T) {
	accs, err := workload.Generate("cc-5", 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.ScaledConfig()
	cfg.Warmup = 300
	want, err := sim.Run(cfg, accs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty a pooled engine: panic 2000 records into a replay, recover, and
	// let the deferred release put the abandoned engine back.
	func() {
		eng, release := acquireEngine(cfg)
		defer release()
		defer func() {
			if recover() == nil {
				t.Fatal("panicSource did not panic")
			}
		}()
		eng.RunStreamCtx(context.Background(), &panicSource{inner: trace.NewSliceSource(accs), left: 2000}, nil)
	}()

	// Single goroutine, same config: the next acquisition is the abandoned
	// engine (sync.Pool returns the per-P victim first).
	eng, release := acquireEngine(cfg)
	defer release()
	got, err := eng.Run(accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reused engine after panicked run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestEnginePoolRetriedJobBitIdentical runs the same property through the
// runner: a job whose timed replay panics on the first attempt (via a
// panicking Source) both attempts on one worker, so the retry replays on
// the engine the panicked attempt abandoned. Panics are deterministic and
// not retried by policy, so the "retry" here is a second Eval of an
// equivalent healthy job — the result must match a never-faulted runner.
func TestEnginePoolRetriedJobBitIdentical(t *testing.T) {
	accs, err := workload.Generate("bfs-10", 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	newPF := func() (prefetch.Prefetcher, error) { return prefetch.NewStride(), nil }
	healthy := Job{
		Trace: "bfs-10", Label: "Stride", New: newPF,
		SourceKey: "bfs-10#4",
		Source: func(context.Context) (trace.Source, error) {
			return trace.NewSliceSource(accs), nil
		},
	}
	ref, err := New(Config{Parallelism: 1}).Eval(context.Background(), healthy)
	if err != nil {
		t.Fatal(err)
	}

	// A job whose third Source resolution (the timed replay, after the
	// baseline and the prefetch generation) panics mid-stream.
	r := New(Config{Parallelism: 1})
	calls := 0
	faulty := healthy
	faulty.Source = func(context.Context) (trace.Source, error) {
		calls++
		src := trace.Source(trace.NewSliceSource(accs))
		if calls == 3 {
			src = &panicSource{inner: src, left: 1500}
		}
		return src, nil
	}
	if _, err := r.Eval(context.Background(), faulty); err == nil {
		t.Fatal("faulty job did not fail")
	} else if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
	got, err := r.Eval(context.Background(), healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCell(got, ref) {
		t.Fatalf("post-panic evaluation diverged:\n got %+v\nwant %+v", got.Metrics, ref.Metrics)
	}
}

// TestEnginePoolWarmupIsolation checks that jobs differing only in warmup
// can share one pool entry without the warmup leaking between them.
func TestEnginePoolWarmupIsolation(t *testing.T) {
	accs, err := workload.Generate("cc-5", 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.ScaledConfig()
	for _, warmup := range []int{0, 500, 0, 200} {
		cfg.Warmup = warmup
		want, err := sim.Run(cfg, accs, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng, release := acquireEngine(cfg)
		got, err := eng.Run(accs, nil)
		release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("warmup %d: pooled engine diverged:\n got %+v\nwant %+v", warmup, got, want)
		}
	}
}
