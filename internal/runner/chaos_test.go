package runner

// The chaos suite: seeded fault injection against the hardened engine.
// Everything here runs under `make chaos` (-race) and asserts the two
// headline properties: surviving results are bit-identical to a
// fault-free run at any parallelism, and every failed cell is attributed
// in the RunReport.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/workload"
)

// chaosJobs builds a cheap (trace × {BO, Stride}) grid: rule-based
// prefetchers only, so the suite stays fast enough to hammer repeatedly.
func chaosJobs(traces []string) []Job {
	var jobs []Job
	for _, tr := range traces {
		jobs = append(jobs,
			Job{Trace: tr, Label: "BO", New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }},
			Job{Trace: tr, Label: "Stride", New: func() (prefetch.Prefetcher, error) { return prefetch.NewStride(), nil }},
		)
	}
	return jobs
}

// sameCell compares everything deterministic about a result (Wall is host
// timing and legitimately differs).
func sameCell(a, b Result) bool {
	return a.Metrics == b.Metrics && a.BaselineIPC == b.BaselineIPC && a.Cycles == b.Cycles
}

// TestChaosDeterminism is the acceptance test: a seeded grid with
// injected panics, transient failures, hangs (killed by the per-job
// deadline), permanent trace faults, and benign latency must complete,
// attribute every failed cell, fail the exact cell set the injector's
// predicates predict, and leave every surviving result bit-identical to
// the fault-free run — at any parallelism.
func TestChaosDeterminism(t *testing.T) {
	traces := workload.Names()
	if len(traces) > 6 {
		traces = traces[:6]
	}
	jobs := chaosJobs(traces)
	const loads, seed = 600, 1

	// Fault-free reference.
	ref, err := New(Config{Loads: loads, Seed: seed, Parallelism: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	chaos := fault.Chaos{
		Seed:       7,
		Panic:      0.2,
		Flaky:      0.4,
		Hang:       0.15,
		TraceError: 0.15,
		Latency:    0.3,
		LatencyFor: time.Millisecond,
	}
	// Predict the failure set from the injector's pure decision
	// functions: panics and hangs are per-cell, trace faults take out
	// every cell of the trace; flaky cells clear within MaxAttempts.
	inj := fault.NewSeeded(chaos)
	keyer := New(Config{Loads: loads, Seed: seed})
	wantFailed := map[int]bool{}
	for i, job := range jobs {
		cellKey := keyer.cellKey(i, job)
		traceKey := fmt.Sprintf("%s\x00%d\x00%d", job.Trace, loads, seed)
		if inj.WillPanic(cellKey) || inj.WillHang(cellKey) || inj.TraceFails(traceKey) {
			wantFailed[i] = true
		}
	}
	if len(wantFailed) == 0 || len(wantFailed) == len(jobs) {
		t.Fatalf("chaos seed predicts %d/%d failures — pick a seed that exercises both outcomes", len(wantFailed), len(jobs))
	}

	for _, parallelism := range []int{1, 4, 8} {
		parallelism := parallelism
		t.Run(fmt.Sprintf("par=%d", parallelism), func(t *testing.T) {
			r := New(Config{
				Loads: loads, Seed: seed, Parallelism: parallelism,
				MaxAttempts:  2,
				RetryBackoff: time.Millisecond,
				// Generous against -race slowdown for legitimate cells
				// (~ms at 600 loads), still bounding each hung attempt.
				JobTimeout: time.Second,
				Fault:      fault.NewSeeded(chaos),
			})
			results, report, err := r.RunWithReport(context.Background(), jobs)
			if err != nil {
				t.Fatalf("RunWithReport: %v", err)
			}
			gotFailed := map[int]bool{}
			for _, je := range report.Failed {
				gotFailed[je.Index] = true
				if je.Trace == "" {
					t.Errorf("job %d: JobError lost its trace identity", je.Index)
				}
			}
			for i := range jobs {
				if wantFailed[i] != gotFailed[i] {
					t.Errorf("job %d (%s/%s): failed=%v, predicted %v",
						i, jobs[i].Trace, jobs[i].Label, gotFailed[i], wantFailed[i])
				}
				if !gotFailed[i] && !sameCell(results[i], ref[i]) {
					t.Errorf("job %d (%s/%s): surviving result diverged from fault-free run:\n  got  %+v\n  want %+v",
						i, jobs[i].Trace, jobs[i].Label, results[i].Metrics, ref[i].Metrics)
				}
			}
			if got := report.Completed + report.Resumed + len(report.Failed); got != report.Total || report.Total != len(jobs) {
				t.Errorf("report does not account for the grid: completed %d + resumed %d + failed %d != total %d",
					report.Completed, report.Resumed, len(report.Failed), report.Total)
			}
			if report.Retries == 0 {
				t.Error("no retries recorded despite flaky injection")
			}
			if report.Err() == nil {
				t.Error("report.Err() = nil with failed cells")
			}
		})
	}
}

// TestChaosPanicsBecomeJobErrors checks panic containment: with every job
// panicking, the process survives, every cell is attributed with a typed
// PanicError carrying a stack, and nothing is retried (a panic from the
// same seed panics again).
func TestChaosPanicsBecomeJobErrors(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5"})
	r := New(Config{
		Loads: 1000, Parallelism: 2, MaxAttempts: 3, RetryBackoff: time.Millisecond,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Panic: 1}),
	})
	results, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != len(jobs) || report.Completed != 0 {
		t.Fatalf("failed %d / completed %d, want %d / 0", len(report.Failed), report.Completed, len(jobs))
	}
	for _, je := range report.Failed {
		var pe *PanicError
		if !errors.As(je.Err, &pe) {
			t.Fatalf("job %d: cause %T is not a PanicError: %v", je.Index, je.Err, je.Err)
		}
		if len(je.Stack) == 0 || !strings.Contains(string(je.Stack), "goroutine") {
			t.Errorf("job %d: missing panic stack", je.Index)
		}
		if je.Attempts != 1 {
			t.Errorf("job %d: panic was retried (%d attempts)", je.Index, je.Attempts)
		}
		if (results[je.Index] != Result{}) {
			t.Errorf("job %d: failed cell left a non-zero result", je.Index)
		}
	}
	if report.Retries != 0 {
		t.Errorf("report.Retries = %d for deterministic panics", report.Retries)
	}
}

// TestChaosTransientFailuresRetrySucceed checks the retry policy end to
// end: every job fails once with a transient error, every job succeeds on
// the retry, and the results are bit-identical to a fault-free run.
func TestChaosTransientFailuresRetrySucceed(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5", "bfs-10"})
	ref, err := New(Config{Loads: 1000, Parallelism: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Loads: 1000, Parallelism: 2, MaxAttempts: 2, RetryBackoff: time.Millisecond,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Flaky: 1, FlakyAttempts: 1}),
	})
	results, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 0 {
		t.Fatalf("failures with retries available: %v", report.Err())
	}
	if report.Retries != len(jobs) {
		t.Errorf("Retries = %d, want %d (one per cell)", report.Retries, len(jobs))
	}
	for i := range jobs {
		if !sameCell(results[i], ref[i]) {
			t.Errorf("job %d: retried result diverged from fault-free run", i)
		}
	}
}

// TestChaosRetryBudgetExhausted checks that a fault outliving the retry
// budget surfaces as a transient-marked JobError with the attempt count.
func TestChaosRetryBudgetExhausted(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5"})[:1]
	r := New(Config{
		Loads: 1000, MaxAttempts: 2, RetryBackoff: time.Millisecond,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Flaky: 1, FlakyAttempts: 5}),
	})
	_, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 1 {
		t.Fatalf("failed = %d, want 1", len(report.Failed))
	}
	je := report.Failed[0]
	if je.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", je.Attempts)
	}
	if !fault.IsTransient(je.Err) {
		t.Errorf("exhausted transient failure lost its marking: %v", je.Err)
	}
	if report.Retries != 1 {
		t.Errorf("Retries = %d, want 1", report.Retries)
	}
}

// TestChaosTimeoutKillsHungCells checks the per-job deadline: a stalled
// replay cannot hang the pool; the cell fails with DeadlineExceeded after
// its attempts, within bounded wall time.
func TestChaosTimeoutKillsHungCells(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5"})
	r := New(Config{
		Loads: 1000, Parallelism: 2,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		JobTimeout:   100 * time.Millisecond,
		Fault:        fault.NewSeeded(fault.Chaos{Seed: 1, Hang: 1, HangFor: time.Hour}),
	})
	start := time.Now()
	_, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("hung grid took %v — the deadline did not fire", elapsed)
	}
	if len(report.Failed) != len(jobs) {
		t.Fatalf("failed = %d, want %d", len(report.Failed), len(jobs))
	}
	for _, je := range report.Failed {
		if !errors.Is(je.Err, context.DeadlineExceeded) {
			t.Errorf("job %d: err = %v, want DeadlineExceeded", je.Index, je.Err)
		}
		if je.Attempts != 2 {
			t.Errorf("job %d: attempts = %d, want 2 (deadline expiries are retried)", je.Index, je.Attempts)
		}
	}
}

// TestChaosTraceFaultFailsWholeTrace checks the shared-build fault site:
// a permanently corrupt trace fails every cell that needs it (whoever
// builds it) and no other trace's cells.
func TestChaosTraceFaultFailsWholeTrace(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5", "bfs-10"})
	const loads, seed = 1000, 1
	// Find a chaos seed that kills exactly one of the two traces.
	var chosen fault.Chaos
	for s := int64(1); ; s++ {
		c := fault.Chaos{Seed: s, TraceError: 0.5}
		inj := fault.NewSeeded(c)
		k5 := inj.TraceFails(fmt.Sprintf("cc-5\x00%d\x00%d", loads, seed))
		k10 := inj.TraceFails(fmt.Sprintf("bfs-10\x00%d\x00%d", loads, seed))
		if k5 != k10 {
			chosen = c
			break
		}
	}
	for _, parallelism := range []int{1, 4} {
		r := New(Config{Loads: loads, Seed: seed, Parallelism: parallelism, Fault: fault.NewSeeded(chosen)})
		results, report, err := r.RunWithReport(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Failed) != 2 || report.Completed != 2 {
			t.Fatalf("par %d: failed %d / completed %d, want 2 / 2", parallelism, len(report.Failed), report.Completed)
		}
		failedTrace := report.Failed[0].Trace
		for _, je := range report.Failed {
			if je.Trace != failedTrace {
				t.Errorf("par %d: failures span traces %s and %s, want one trace", parallelism, failedTrace, je.Trace)
			}
			if !strings.Contains(je.Err.Error(), "injected trace failure") {
				t.Errorf("par %d: job %d cause %v does not name the trace fault", parallelism, je.Index, je.Err)
			}
		}
		for i, res := range results {
			if jobs[i].Trace != failedTrace && res.IPC <= 0 {
				t.Errorf("par %d: healthy trace cell %d has no result", parallelism, i)
			}
		}
	}
}

// TestChaosLatencyIsBenign checks that injected latency slows cells
// without changing a single bit of their results.
func TestChaosLatencyIsBenign(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5", "bfs-10"})
	ref, err := New(Config{Loads: 1000, Parallelism: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Loads: 1000, Parallelism: 4,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 3, Latency: 1, LatencyFor: 2 * time.Millisecond}),
	})
	results, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 0 {
		t.Fatalf("latency injection failed cells: %v", report.Err())
	}
	for i := range jobs {
		if !sameCell(results[i], ref[i]) {
			t.Errorf("job %d: latency changed the result", i)
		}
	}
}

// TestRunFailFastStillAborts pins Run's all-or-nothing contract: under
// injection without RunWithReport, the first permanent failure aborts the
// grid with a typed JobError.
func TestRunFailFastStillAborts(t *testing.T) {
	jobs := chaosJobs([]string{"cc-5"})
	r := New(Config{
		Loads: 1000, Parallelism: 2,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Panic: 1}),
	})
	results, err := r.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("Run succeeded under universal panic injection")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("Run error %T is not a JobError: %v", err, err)
	}
	if results != nil {
		t.Error("failed Run returned results")
	}
}

// TestProgressMonotonicUnderFailures is the progress-sink contract under
// the full resilience stack: with failing cells, retried cells, and
// journal-resumed cells in one grid, Done increments by exactly one per
// event and reaches Total.
func TestProgressMonotonicUnderFailures(t *testing.T) {
	traces := workload.Names()
	if len(traces) > 4 {
		traces = traces[:4]
	}
	jobs := chaosJobs(traces)
	journal, err := OpenJournal(filepath.Join(t.TempDir(), "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()

	// Pre-complete the first two cells so the main run resumes them.
	pre := New(Config{Loads: 1000, Parallelism: 2, Journal: journal})
	if _, err := pre.Run(context.Background(), jobs[:2]); err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		dones   []int
		resumed int
		failed  int
	)
	r := New(Config{
		Loads: 1000, Parallelism: 4,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Journal:      journal,
		Fault:        fault.NewSeeded(fault.Chaos{Seed: 11, Panic: 0.25, Flaky: 0.5}),
		Progress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			dones = append(dones, p.Done)
			if p.Total != len(jobs) {
				t.Errorf("Total = %d, want %d", p.Total, len(jobs))
			}
			if p.Resumed {
				resumed++
			}
			if p.Err != nil {
				failed++
			}
		},
	})
	_, report, err := r.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(dones), len(jobs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done sequence %v is not 1..%d", dones, len(jobs))
		}
	}
	if resumed != 2 {
		t.Errorf("resumed events = %d, want 2", resumed)
	}
	if failed != len(report.Failed) {
		t.Errorf("failure events = %d, report says %d", failed, len(report.Failed))
	}
	if failed == 0 {
		t.Error("chaos seed produced no failures; progress-under-failure path untested")
	}
}

// TestJournalKillAndResume is the checkpoint/resume acceptance test: a
// journaled run cancelled mid-grid and resumed re-executes only the
// unfinished cells and converges to the same final result set as an
// uninterrupted run.
func TestJournalKillAndResume(t *testing.T) {
	traces := workload.Names()
	if len(traces) > 3 {
		traces = traces[:3]
	}
	jobs := chaosJobs(traces)
	const loads = 1500
	path := filepath.Join(t.TempDir(), "run.journal")

	// Uninterrupted reference.
	ref, err := New(Config{Loads: loads, Parallelism: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	// First run: kill it after two cells complete.
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r1 := New(Config{
		Loads: loads, Parallelism: 2, Journal: j1,
		Progress: func(p Progress) {
			if p.Done == 2 {
				cancel()
			}
		},
	})
	if _, err := r1.Run(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	j1.Close()

	// Resume: a fresh process (fresh Runner, reopened journal) must skip
	// exactly the journaled cells and finish the rest.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	checkpointed := j2.Completed()
	if checkpointed < 2 || checkpointed >= len(jobs) {
		t.Fatalf("journal holds %d cells after the kill, want a strict mid-grid subset (≥2)", checkpointed)
	}
	var mu sync.Mutex
	executed, resumed := 0, 0
	r2 := New(Config{
		Loads: loads, Parallelism: 2, Journal: j2,
		Progress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Resumed {
				resumed++
			} else {
				executed++
			}
		},
	})
	results, report, err := r2.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != checkpointed || report.Resumed != checkpointed {
		t.Errorf("resumed %d cells (report %d), journal held %d", resumed, report.Resumed, checkpointed)
	}
	if executed != len(jobs)-checkpointed {
		t.Errorf("re-executed %d cells, want only the %d unfinished", executed, len(jobs)-checkpointed)
	}
	if len(report.Failed) != 0 {
		t.Fatalf("resumed run failed cells: %v", report.Err())
	}
	for i := range jobs {
		if !sameCell(results[i], ref[i]) {
			t.Errorf("job %d (%s/%s): resumed result diverged from uninterrupted run:\n  got  %+v\n  want %+v",
				i, jobs[i].Trace, jobs[i].Label, results[i].Metrics, ref[i].Metrics)
		}
	}

	// The journal now covers the whole grid: one more run resumes
	// everything and simulates nothing.
	r3 := New(Config{Loads: loads, Parallelism: 2, Journal: j2})
	again, report3, err := r3.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if report3.Resumed != len(jobs) || report3.Completed != 0 {
		t.Errorf("third run resumed %d / completed %d, want %d / 0", report3.Resumed, report3.Completed, len(jobs))
	}
	if got := r3.BaselineSims(); got != 0 {
		t.Errorf("fully resumed run simulated %d baselines", got)
	}
	for i := range jobs {
		if !sameCell(again[i], ref[i]) {
			t.Errorf("job %d: fully resumed result diverged", i)
		}
	}
}

// TestEvalUsesJournalAndRetries covers the single-job path: Eval journals
// its cell, resumes it, and applies the retry policy.
func TestEvalUsesJournalAndRetries(t *testing.T) {
	journal, err := OpenJournal(filepath.Join(t.TempDir(), "eval.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	job := Job{Trace: "cc-5", Label: "BO", New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }}

	r := New(Config{
		Loads: 1000, Journal: journal,
		MaxAttempts: 2, RetryBackoff: time.Millisecond,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Flaky: 1, FlakyAttempts: 1}),
	})
	res, err := r.Eval(context.Background(), job)
	if err != nil {
		t.Fatalf("Eval with one transient failure and one retry: %v", err)
	}
	if journal.Completed() != 1 {
		t.Fatalf("journal holds %d cells after Eval, want 1", journal.Completed())
	}

	// A second Eval — even on a runner whose injector would fail every
	// attempt — resumes from the journal.
	r2 := New(Config{
		Loads: 1000, Journal: journal,
		Fault: fault.NewSeeded(fault.Chaos{Seed: 1, Panic: 1}),
	})
	var sawResume bool
	r2.cfg.Progress = func(p Progress) { sawResume = sawResume || p.Resumed }
	res2, err := r2.Eval(context.Background(), job)
	if err != nil {
		t.Fatalf("resumed Eval: %v", err)
	}
	if !sawResume {
		t.Error("resumed Eval did not mark its progress event Resumed")
	}
	if !sameCell(res, res2) {
		t.Error("resumed Eval result diverged")
	}
}

// TestBackoffDeterministic pins the retry schedule: pure in its inputs,
// exponential, jittered below 50%, capped.
func TestBackoffDeterministic(t *testing.T) {
	base := 50 * time.Millisecond
	if a, b := backoffDelay(base, "k", 1), backoffDelay(base, "k", 1); a != b {
		t.Errorf("same inputs gave %v and %v", a, b)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		d := backoffDelay(base, "k", attempt)
		lo := base << (attempt - 1)
		if d < lo || d >= lo+lo/2+1 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, lo+lo/2)
		}
	}
	if d := backoffDelay(base, "k", 60); d > 5*time.Second+5*time.Second/2 {
		t.Errorf("capped delay = %v, want ≤ 7.5s", d)
	}
	if backoffDelay(base, "cell-a", 1) == backoffDelay(base, "cell-b", 1) &&
		backoffDelay(base, "cell-a", 2) == backoffDelay(base, "cell-b", 2) &&
		backoffDelay(base, "cell-a", 3) == backoffDelay(base, "cell-b", 3) {
		t.Error("jitter does not depend on the cell key")
	}
}
