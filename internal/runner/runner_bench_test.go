package runner

import (
	"context"
	"testing"
)

// BenchmarkRunGrid is the evaluation engine's end-to-end macro-benchmark
// for BENCH_runner.json (`make bench-micro`): a small trace × prefetcher
// grid through the full pipeline — trace generation and baselines behind
// the single-flight caches, prefetch-file generation, and the timed
// replays — at a fixed parallelism so runs compare across machines.
func BenchmarkRunGrid(b *testing.B) {
	jobs := chaosJobs([]string{"cc-5", "605-mcf-s1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh Runner each iteration: the per-Runner caches must not
		// carry over, or every iteration after the first measures nothing.
		r := New(Config{Loads: 5000, Parallelism: 2})
		if _, err := r.Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSingle is the single-cell path: one Best-Offset evaluation
// end to end, the unit of work every grid cell pays.
func BenchmarkEvalSingle(b *testing.B) {
	jobs := chaosJobs([]string{"cc-5"})[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(Config{Loads: 5000, Parallelism: 1})
		if _, err := r.Eval(context.Background(), jobs[0]); err != nil {
			b.Fatal(err)
		}
	}
}
