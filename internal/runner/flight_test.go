package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCancelledBuilderNotCached is the regression test for the
// cancellation-poisoning bug: caller A starts a build, A's context is
// cancelled mid-build, and racing caller B — whose context is live — must
// not receive A's cancellation as the key's permanent error; B retries
// the build and succeeds.
func TestFlightCancelledBuilderNotCached(t *testing.T) {
	var f flight[int]
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()

	building := make(chan struct{})
	var builds atomic.Int32

	// Caller A: builder whose fn blocks until its own ctx is cancelled
	// and then reports the cancellation, as a real ctx-threaded build
	// (trace generation, baseline sim) does.
	errA := make(chan error, 1)
	go func() {
		_, err := f.Do(ctxA, "k", func() (int, error) {
			builds.Add(1)
			close(building)
			<-ctxA.Done()
			return 0, ctxA.Err()
		})
		errA <- err
	}()

	// Caller B races in once A holds the build, with a live context.
	<-building
	errB := make(chan error, 1)
	valB := make(chan int, 1)
	go func() {
		v, err := f.Do(context.Background(), "k", func() (int, error) {
			builds.Add(1)
			return 42, nil
		})
		valB <- v
		errB <- err
	}()

	// Give B time to park on the in-flight call, then kill A.
	time.Sleep(20 * time.Millisecond)
	cancelA()

	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller A err = %v, want context.Canceled", err)
	}
	select {
	case err := <-errB:
		if err != nil {
			t.Fatalf("caller B err = %v — inherited the builder's cancellation", err)
		}
		if v := <-valB; v != 42 {
			t.Fatalf("caller B value = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("caller B never completed")
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("builds = %d, want 2 (A's cancelled build + B's retry)", got)
	}
}

// TestFlightDeadlineExpiredBuilderNotCached repeats the regression with a
// deadline expiry (the per-job timeout path) instead of an explicit
// cancel.
func TestFlightDeadlineExpiredBuilderNotCached(t *testing.T) {
	var f flight[int]
	ctxA, cancelA := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelA()

	building := make(chan struct{})
	go f.Do(ctxA, "k", func() (int, error) {
		close(building)
		<-ctxA.Done()
		return 0, ctxA.Err()
	})

	<-building
	v, err := f.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("live caller after deadline-expired builder: %d, %v; want 7, nil", v, err)
	}
}

// TestFlightCancelledWaiterStillGivesUp checks the other direction: a
// waiter whose own context dies leaves with its own ctx error without
// waiting for the build.
func TestFlightCancelledWaiterStillGivesUp(t *testing.T) {
	var f flight[int]
	release := make(chan struct{})
	building := make(chan struct{})
	go f.Do(context.Background(), "k", func() (int, error) {
		close(building)
		<-release
		return 1, nil
	})
	<-building
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Do(ctx, "k", func() (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
}

// TestFlightRealErrorsAreShared checks that genuine build failures (not
// cancellation) still reach every concurrent waiter.
func TestFlightRealErrorsAreShared(t *testing.T) {
	var f flight[int]
	wantErr := errors.New("corrupt trace")
	release := make(chan struct{})
	building := make(chan struct{})

	errA := make(chan error, 1)
	go func() {
		_, err := f.Do(context.Background(), "k", func() (int, error) {
			close(building)
			<-release
			return 0, wantErr
		})
		errA <- err
	}()
	<-building

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Do(context.Background(), "k", func() (int, error) {
				// If a waiter retries it must see the same failure, not
				// hang — return the error again.
				return 0, wantErr
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-errA; !errors.Is(err, wantErr) {
		t.Fatalf("builder err = %v", err)
	}
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Errorf("waiter %d err = %v, want the build failure", i, err)
		}
	}
}

// TestFlightBuilderPanicReleasesWaiters checks that a panicking builder
// re-raises on its own goroutine but still closes the call so waiters do
// not block forever, and the key is evicted for retry.
func TestFlightBuilderPanicReleasesWaiters(t *testing.T) {
	var f flight[int]
	building := make(chan struct{})
	release := make(chan struct{})

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		f.Do(context.Background(), "k", func() (int, error) {
			close(building)
			<-release
			panic("boom")
		})
	}()
	<-building

	done := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(done)
		v, err = f.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter blocked forever behind a panicked builder")
	}
	if p := <-panicked; p == nil {
		t.Error("builder's panic was swallowed")
	}
	// The waiter either saw the failure and retried (v==9) or received
	// the panic-shaped error; both are acceptable, blocking is not.
	if err != nil {
		t.Logf("waiter observed builder panic as error: %v", err)
	} else if v != 9 {
		t.Errorf("waiter value = %d, want 9", v)
	}
}

// TestFlightManyRacingCancellations hammers one key with a mix of doomed
// and live callers; every live caller must end with the value.
func TestFlightManyRacingCancellations(t *testing.T) {
	var f flight[int]
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			doomed := i%2 == 0
			if doomed {
				c, cancel := context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
				defer cancel()
				ctx = c
			}
			v, err := f.Do(ctx, "k", func() (int, error) {
				select {
				case <-time.After(2 * time.Millisecond):
					return 11, nil
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			})
			if doomed {
				return // either outcome is legal for a doomed caller
			}
			if err != nil || v != 11 {
				t.Errorf("live caller %d: %d, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestFlightDistinctKeysIndependent is a guard that the retry loop never
// crosses keys.
func TestFlightDistinctKeysIndependent(t *testing.T) {
	var f flight[string]
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, err := f.Do(context.Background(), key, func() (string, error) { return key, nil })
			if err != nil || v != key {
				t.Errorf("key %s: %q, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}
