package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// journalFormat/journalVersion identify the journal container. The header
// is the file's first line; every later line is one journalEntry.
const (
	journalFormat  = "pathfinder-journal"
	journalVersion = 1
)

type journalHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type journalEntry struct {
	// Key is the cell key (index | trace | label | loads | seed): stable
	// across runs of the same grid, so a restarted sweep can match
	// journaled cells to its jobs.
	Key string `json:"key"`
	// Result is the cell's full evaluation result.
	Result Result `json:"result"`
}

// Journal is an append-only JSONL checkpoint of completed evaluation
// cells. Attach one to a Runner via Config.Journal (or the WithJournal
// helper): every successfully evaluated cell is appended as it completes,
// and cells already present are resumed — returned from the journal
// without re-execution. A journal is safe for concurrent use by one
// process; it is not a lock file and must not be shared between
// simultaneously running sweeps.
//
// Crash safety: entries are written as whole lines and the loader ignores
// (and truncates away) a torn final line, so a run killed mid-write
// resumes from the last fully recorded cell.
//
// Ledger semantics: a journal doubles as the authoritative result ledger
// of a distributed sweep (internal/dist). Duplicate entries for the same
// cell key are legal when their payloads agree — a reassigned lease whose
// original worker also finished records the same deterministic result
// twice — and Record resolves them idempotently. Entries whose payloads
// conflict are corruption: Record refuses to append them and load surfaces
// a positioned error instead of silently resolving last-wins. Payload
// comparison ignores the host wall-clock time (see PayloadEqual).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]Result
}

// OpenJournal opens the journal at path, creating it (with a header line)
// if absent, and loads the already-completed cells for resume. The caller
// must Close it to release the file handle.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: make(map[string]Result)}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the existing file, records complete entries, and truncates
// any torn tail so appends continue from a clean line boundary. Replay
// validates duplicates: a key recorded twice with the same payload is the
// legal idempotent-duplicate case, but a key recorded twice with
// conflicting payloads is corruption and fails with the offending line
// number rather than silently keeping the last entry.
func (j *Journal) load() error {
	br := bufio.NewReader(j.f)
	var good int64 // offset just past the last fully parsed line
	first := true
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		complete := err == nil && len(line) > 0
		lineNo++
		if first {
			if len(line) == 0 && err == io.EOF {
				// Fresh file: stamp the header.
				hdr, _ := json.Marshal(journalHeader{Format: journalFormat, Version: journalVersion})
				if _, werr := j.f.Write(append(hdr, '\n')); werr != nil {
					return fmt.Errorf("journal %s: writing header: %w", j.path, werr)
				}
				return nil
			}
			var hdr journalHeader
			if json.Unmarshal(line, &hdr) != nil || hdr.Format != journalFormat {
				return fmt.Errorf("journal %s: not a %s file", j.path, journalFormat)
			}
			if hdr.Version != journalVersion {
				return fmt.Errorf("journal %s: unsupported version %d", j.path, hdr.Version)
			}
			if !complete {
				// A header without a newline: rewrite it cleanly.
				break
			}
			good += int64(len(line))
			first = false
			if err == io.EOF {
				break
			}
			continue
		}
		var e journalEntry
		if !complete || json.Unmarshal(line, &e) != nil || e.Key == "" {
			// Torn or corrupt tail: resume from the last good entry.
			break
		}
		if prev, ok := j.seen[e.Key]; ok && !PayloadEqual(prev, e.Result) {
			return fmt.Errorf("journal %s: line %d: conflicting duplicate entry for cell %q", j.path, lineNo, e.Key)
		}
		j.seen[e.Key] = e.Result
		good += int64(len(line))
		if err == io.EOF {
			break
		}
	}
	if first {
		// The header itself was torn; start the file over.
		if err := j.f.Truncate(0); err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		hdr, _ := json.Marshal(journalHeader{Format: journalFormat, Version: journalVersion})
		if _, err := j.f.Write(append(hdr, '\n')); err != nil {
			return fmt.Errorf("journal %s: writing header: %w", j.path, err)
		}
		return nil
	}
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("journal %s: truncating torn tail: %w", j.path, err)
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	return nil
}

// Completed reports how many cells the journal holds.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle. Recording to a closed journal errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Lookup returns the journaled result for a cell key, if present.
func (j *Journal) Lookup(key string) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.seen[key]
	return res, ok
}

// Record appends one completed cell. Lines are written whole under the
// journal lock, so concurrent workers cannot interleave entries.
//
// Recording a key the journal already holds is idempotent when the
// payloads agree (the duplicate is dropped, not re-appended) and an error
// when they conflict: two workers of a distributed sweep may legally race
// the same reassigned cell, but only because evaluation is deterministic —
// a payload mismatch means that guarantee broke and must not be papered
// over.
func (j *Journal) Record(key string, res Result) error {
	data, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("journal: encoding %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.seen[key]; ok {
		if !PayloadEqual(prev, res) {
			return fmt.Errorf("journal %s: conflicting duplicate result for cell %q", j.path, key)
		}
		return nil
	}
	if j.f == nil {
		return fmt.Errorf("journal %s: closed", j.path)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("journal %s: appending %s: %w", j.path, key, err)
	}
	j.seen[key] = res
	return nil
}

// payloadJSON renders the deterministic part of a Result — everything but
// the host wall-clock time — in canonical JSON for duplicate resolution.
func payloadJSON(res Result) string {
	res.Wall = 0
	b, _ := json.Marshal(res)
	return string(b)
}

// PayloadEqual reports whether two results carry the same evaluation
// payload: bit-identical metrics, baseline figures and cycle counts. The
// host wall-clock time is excluded — it measures the machine the cell ran
// on, not the evaluation, and legitimately differs between two runs of the
// same deterministic cell.
func PayloadEqual(a, b Result) bool { return payloadJSON(a) == payloadJSON(b) }
