package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// journalFormat/journalVersion identify the journal container. The header
// is the file's first line; every later line is one journalEntry.
const (
	journalFormat  = "pathfinder-journal"
	journalVersion = 1
)

type journalHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type journalEntry struct {
	// Key is the cell key (index | trace | label | loads | seed): stable
	// across runs of the same grid, so a restarted sweep can match
	// journaled cells to its jobs.
	Key string `json:"key"`
	// Result is the cell's full evaluation result.
	Result Result `json:"result"`
}

// Journal is an append-only JSONL checkpoint of completed evaluation
// cells. Attach one to a Runner via Config.Journal (or the WithJournal
// helper): every successfully evaluated cell is appended as it completes,
// and cells already present are resumed — returned from the journal
// without re-execution. A journal is safe for concurrent use by one
// process; it is not a lock file and must not be shared between
// simultaneously running sweeps.
//
// Crash safety: entries are written as whole lines and the loader ignores
// (and truncates away) a torn final line, so a run killed mid-write
// resumes from the last fully recorded cell.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]Result
}

// OpenJournal opens the journal at path, creating it (with a header line)
// if absent, and loads the already-completed cells for resume. The caller
// must Close it to release the file handle.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: make(map[string]Result)}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the existing file, records complete entries, and truncates
// any torn tail so appends continue from a clean line boundary.
func (j *Journal) load() error {
	br := bufio.NewReader(j.f)
	var good int64 // offset just past the last fully parsed line
	first := true
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		complete := err == nil && len(line) > 0
		if first {
			if len(line) == 0 && err == io.EOF {
				// Fresh file: stamp the header.
				hdr, _ := json.Marshal(journalHeader{Format: journalFormat, Version: journalVersion})
				if _, werr := j.f.Write(append(hdr, '\n')); werr != nil {
					return fmt.Errorf("journal %s: writing header: %w", j.path, werr)
				}
				return nil
			}
			var hdr journalHeader
			if json.Unmarshal(line, &hdr) != nil || hdr.Format != journalFormat {
				return fmt.Errorf("journal %s: not a %s file", j.path, journalFormat)
			}
			if hdr.Version != journalVersion {
				return fmt.Errorf("journal %s: unsupported version %d", j.path, hdr.Version)
			}
			if !complete {
				// A header without a newline: rewrite it cleanly.
				break
			}
			good += int64(len(line))
			first = false
			if err == io.EOF {
				break
			}
			continue
		}
		var e journalEntry
		if !complete || json.Unmarshal(line, &e) != nil || e.Key == "" {
			// Torn or corrupt tail: resume from the last good entry.
			break
		}
		j.seen[e.Key] = e.Result
		good += int64(len(line))
		if err == io.EOF {
			break
		}
	}
	if first {
		// The header itself was torn; start the file over.
		if err := j.f.Truncate(0); err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		hdr, _ := json.Marshal(journalHeader{Format: journalFormat, Version: journalVersion})
		if _, err := j.f.Write(append(hdr, '\n')); err != nil {
			return fmt.Errorf("journal %s: writing header: %w", j.path, err)
		}
		return nil
	}
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("journal %s: truncating torn tail: %w", j.path, err)
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	return nil
}

// Completed reports how many cells the journal holds.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle. Recording to a closed journal errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup returns the journaled result for a cell key, if present.
func (j *Journal) lookup(key string) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.seen[key]
	return res, ok
}

// record appends one completed cell. Lines are written whole under the
// journal lock, so concurrent workers cannot interleave entries.
func (j *Journal) record(key string, res Result) error {
	data, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("journal: encoding %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal %s: closed", j.path)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("journal %s: appending %s: %w", j.path, key, err)
	}
	j.seen[key] = res
	return nil
}
