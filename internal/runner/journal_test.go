package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testResult(traceName, pf string) Result {
	return Result{
		Metrics: Metrics{
			Prefetcher: pf, Trace: traceName,
			IPC: 1.25, Accuracy: 0.5, Coverage: 0.25,
			Issued: 100, Useful: 50, BaselineMisses: 200,
		},
		BaselineIPC: 1.0,
		Cycles:      12345,
		Wall:        42 * time.Millisecond,
	}
}

// TestJournalRoundTrip records cells, reopens the file, and checks the
// loaded state is identical.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"0|cc-5|BO|1000|1":   testResult("cc-5", "BO"),
		"1|cc-5|PF|1000|1":   testResult("cc-5", "PF"),
		"2|bfs-10|BO|1000|1": testResult("bfs-10", "BO"),
	}
	for k, res := range want {
		if err := j.Record(k, res); err != nil {
			t.Fatal(err)
		}
	}
	if j.Completed() != len(want) {
		t.Fatalf("Completed = %d, want %d", j.Completed(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Completed() != len(want) {
		t.Fatalf("reloaded Completed = %d, want %d", j2.Completed(), len(want))
	}
	for k, res := range want {
		got, ok := j2.Lookup(k)
		if !ok {
			t.Fatalf("key %q missing after reload", k)
		}
		if got != res {
			t.Errorf("key %q: reloaded %+v != recorded %+v", k, got, res)
		}
	}
	if _, ok := j2.Lookup("9|zz|zz|1|1"); ok {
		t.Error("lookup of unknown key succeeded")
	}
}

// TestJournalTornTail simulates a crash mid-append: the torn final line is
// dropped, the complete entries survive, and recording continues cleanly.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("0|cc-5|BO|1000|1", testResult("cc-5", "BO")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Append a torn (newline-less, truncated) entry, as a kill -9 would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"1|cc-5|PF|1000|1","result":{"IPC":1.`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if j2.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1 (torn entry dropped)", j2.Completed())
	}
	if _, ok := j2.Lookup("0|cc-5|BO|1000|1"); !ok {
		t.Fatal("intact entry lost with the torn tail")
	}
	// The file must be clean again: record and reload.
	if err := j2.Record("1|cc-5|PF|1000|1", testResult("cc-5", "PF")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Completed() != 2 {
		t.Fatalf("after re-record Completed = %d, want 2", j3.Completed())
	}
}

// TestJournalRejectsForeignFile checks that a non-journal file errors
// instead of being silently truncated or treated as empty.
func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("just some notes\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "not a pathfinder-journal") {
		t.Fatalf("OpenJournal on a foreign file: err = %v, want format rejection", err)
	}
}

// TestJournalHeaderFormat pins the on-disk format: a JSON header line then
// one JSON entry per line, so external tooling can rely on it.
func TestJournalHeaderFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("0|cc-5|BO|1000|1", testResult("cc-5", "BO")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2 (header + entry)", len(lines))
	}
	var hdr journalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Format != journalFormat || hdr.Version != journalVersion {
		t.Fatalf("header line %q: %+v, %v", lines[0], hdr, err)
	}
	var e journalEntry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil || e.Key == "" || e.Result.IPC != 1.25 {
		t.Fatalf("entry line %q: %+v, %v", lines[1], e, err)
	}
}

// TestJournalDuplicateResolution pins the ledger semantics distributed
// reassignment depends on: recording an identical payload twice is an
// idempotent no-op (the wall clock may differ — it is not payload), while
// a conflicting payload is refused.
func TestJournalDuplicateResolution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	key := "0|cc-5|BO|1000|1"
	res := testResult("cc-5", "BO")
	if err := j.Record(key, res); err != nil {
		t.Fatal(err)
	}
	dup := res
	dup.Wall = res.Wall * 7 // a slower worker finishing the same cell
	if err := j.Record(key, dup); err != nil {
		t.Fatalf("idempotent duplicate refused: %v", err)
	}
	if j.Completed() != 1 {
		t.Fatalf("Completed = %d after idempotent duplicate, want 1", j.Completed())
	}
	conflict := res
	conflict.Cycles++
	if err := j.Record(key, conflict); err == nil || !strings.Contains(err.Error(), "conflicting duplicate") {
		t.Fatalf("conflicting duplicate: err = %v, want conflict error", err)
	}
	// The duplicate was dropped on disk too: the file holds one entry.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("journal has %d lines, want 2 (header + single entry)", n)
	}
}

// TestJournalReplayConflict pins the replay half: a ledger whose file holds
// two conflicting entries for one key fails to load with the offending
// line position, instead of silently resolving last-wins.
func TestJournalReplayConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("0|cc-5|BO|1000|1", testResult("cc-5", "BO")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Forge a conflicting entry for the same key, as a buggy writer would.
	conflict := testResult("cc-5", "BO")
	conflict.IPC = 9.99
	line, err := json.Marshal(journalEntry{Key: "0|cc-5|BO|1000|1", Result: conflict})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(append(line, '\n'))
	f.Close()

	_, err = OpenJournal(path)
	if err == nil || !strings.Contains(err.Error(), "conflicting duplicate") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("replay of conflicting ledger: err = %v, want positioned conflict error", err)
	}

	// The identical-duplicate case stays legal on replay too.
	same, err := json.Marshal(journalEntry{Key: "1|cc-5|PF|1000|1", Result: testResult("cc-5", "PF")})
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "dup.journal")
	j2, err := OpenJournal(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record("1|cc-5|PF|1000|1", testResult("cc-5", "PF")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	f2, err := os.OpenFile(path2, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2.Write(append(same, '\n'))
	f2.Close()
	j3, err := OpenJournal(path2)
	if err != nil {
		t.Fatalf("replay with identical duplicate: %v", err)
	}
	defer j3.Close()
	if j3.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", j3.Completed())
	}
}

// TestPayloadEqual pins what "payload" means: everything but Wall.
func TestPayloadEqual(t *testing.T) {
	a := testResult("cc-5", "BO")
	b := a
	b.Wall = a.Wall + time.Second
	if !PayloadEqual(a, b) {
		t.Error("results differing only in Wall compare unequal")
	}
	b.Useful++
	if PayloadEqual(a, b) {
		t.Error("results differing in Useful compare equal")
	}
}

// TestJournalRecordAfterClose checks the error path rather than a crash.
func TestJournalRecordAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Record("k", Result{}); err == nil {
		t.Error("record on a closed journal succeeded")
	}
}
