// Package runner is the parallel evaluation engine behind the experiment
// harness: it fans a (trace × prefetcher) grid out across a worker pool,
// computes each trace's no-prefetch baseline exactly once through a
// sharded single-flight cache, and reports per-cell progress to an
// optional sink.
//
// Determinism contract: every job is evaluated in isolation — its trace is
// generated (or taken) read-only, its prefetcher is constructed fresh from
// the job's deterministic seed, and the simulator shares no mutable state
// between jobs — so Run returns bit-identical Metrics for any Parallelism,
// in the submitted job order.
//
// Resilience: the engine converts per-job panics into typed JobErrors,
// retries transient failures with exponential backoff and deterministic
// jitter, bounds each attempt with an optional deadline, and — via
// RunWithReport — degrades gracefully, returning every surviving Result
// plus a RunReport attributing the failures instead of discarding the
// grid. An optional append-only Journal checkpoints completed cells so an
// interrupted sweep resumes where it stopped. See docs/resilience.md.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/sim"
	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// Metrics summarises one prefetcher evaluation (§4.5 of the paper).
type Metrics struct {
	// Prefetcher and Trace identify the run.
	Prefetcher, Trace string
	// IPC is instructions per cycle after warmup.
	IPC float64
	// Accuracy is useful/issued prefetches; Coverage is useful prefetches
	// over baseline LLC misses.
	Accuracy, Coverage float64
	// Issued and Useful are the raw prefetch counts; BaselineMisses is
	// the no-prefetch LLC miss count coverage is relative to.
	Issued, Useful, BaselineMisses uint64
}

// Result is one evaluated job: its metrics plus engine-level measurements.
type Result struct {
	Metrics
	// BaselineIPC is the no-prefetch IPC of the job's trace (zero when the
	// job supplied a precomputed baseline, which skips the baseline run).
	BaselineIPC float64
	// Cycles is the simulated cycle count of the prefetch run.
	Cycles uint64
	// Wall is the host wall-clock time the job took, including its share
	// of cached trace/baseline builds.
	Wall time.Duration
}

// Progress is one progress event, emitted after each job reaches a
// terminal state: success, journal resume, or (under RunWithReport)
// permanent failure.
type Progress struct {
	// Done jobs out of Total in this Run call. Done is strictly monotonic
	// and reaches Total even when cells fail or are retried.
	Done, Total int
	// Trace and Prefetcher identify the finished job.
	Trace, Prefetcher string
	// Wall is the job's wall-clock time; Cycles its simulated cycles, so
	// sinks can derive simulated-cycles-per-second throughput.
	Wall   time.Duration
	Cycles uint64
	// Err is the cell's permanent failure, nil on success. Failed cells
	// only reach the sink under RunWithReport; Run aborts instead.
	Err error
	// Resumed marks a cell satisfied from the journal without
	// re-execution.
	Resumed bool
}

// ProgressFunc receives progress events. Calls are serialised and ordered
// by completion; implementations should be fast (they run under the
// engine's bookkeeping lock).
type ProgressFunc func(Progress)

// Config configures a Runner. The zero value is usable: 50 K-load traces,
// seed 1, the scaled Table 3 machine, and GOMAXPROCS workers, with the
// whole resilience stack off (no retries, no deadlines, no injection).
type Config struct {
	// Loads is the default trace length for jobs that name a workload.
	Loads int
	// Seed is the default seed for trace generation.
	Seed int64
	// Sim is the default machine configuration.
	Sim sim.Config
	// Parallelism is the worker count (default GOMAXPROCS).
	Parallelism int
	// Progress, if set, receives one event per completed job.
	Progress ProgressFunc
	// MaxAttempts caps evaluation attempts per job (default 1: no
	// retries). Only transient errors (fault.IsTransient) and per-attempt
	// deadline expiries are retried; panics and other deterministic
	// failures are not — the same seed would fail the same way again.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry (default 50ms);
	// it doubles per further attempt, capped at 5s, plus a deterministic
	// jitter derived from the cell key so identical sweeps retry on an
	// identical schedule.
	RetryBackoff time.Duration
	// JobTimeout bounds each evaluation attempt via a context deadline
	// (0: unbounded), so one hung cell cannot stall the pool forever.
	JobTimeout time.Duration
	// Fault, if non-nil, injects faults at the engine's fault sites; the
	// default nil costs one pointer check per site. Chaos testing only.
	Fault fault.Injector
	// Journal, if non-nil, records each completed cell and resumes cells
	// it already holds (see OpenJournal).
	Journal *Journal
}

// WithJournal returns a copy of the config with the journal attached.
func (c Config) WithJournal(j *Journal) Config {
	c.Journal = j
	return c
}

// Job is one evaluation cell: a trace and exactly one source of
// prefetches — an online prefetcher (instance or factory), an offline
// prefetch-file generator, or a precomputed file.
type Job struct {
	// Trace names a workload (generated with the effective Loads/Seed and
	// cached across jobs). Optional when Accs or Source is set, but still
	// used as the result label and the baseline-cache key.
	Trace string
	// Accs, if non-nil, is the trace to replay (bypasses generation).
	Accs []trace.Access
	// Source, if non-nil, supplies the job's trace as a stream instead of
	// a slice — the constant-memory path for traces too large to
	// materialize. It is a factory, not a stream: the evaluation replays
	// the trace up to three times (baseline, offline generation, timed
	// run), calling Source once per replay, so every call must return a
	// fresh Source positioned at the first record with identical records.
	// Source supersedes Accs and Trace-generation; Trace remains the
	// result label. When the stream's length is unknown (no Remaining),
	// the default 10%-of-trace warmup is resolved from a length the
	// runner memoized for this SourceKey during an earlier full replay;
	// with no memo either, the job fails loudly unless Job.Warmup or
	// Sim.Warmup pins warmup explicitly (negative Job.Warmup disables
	// it). Warmup never silently resolves to zero on the stream path.
	Source func(ctx context.Context) (trace.Source, error)
	// SourceKey is the cache identity of Source's records — a content
	// digest (trace.HashSource), a file digest, or a generator spec
	// string. It extends the journal cell key and keys the shared
	// no-prefetch baseline cache; when empty the baseline is recomputed
	// per cell and the journal key stays purely positional.
	SourceKey string
	// Label overrides the result's Prefetcher name.
	Label string

	// New builds the job's online prefetcher; preferred over Prefetcher
	// because construction then happens inside the job with the job's
	// deterministic seed. Exactly one of New, Prefetcher, GenFile, File
	// must be set (File may be an explicitly empty file for a no-prefetch
	// run via Prefetcher: prefetch.NoPrefetch{}).
	New func() (prefetch.Prefetcher, error)
	// Prefetcher is a ready-made online prefetcher. It must not be shared
	// with any other job: prefetchers are stateful.
	Prefetcher prefetch.Prefetcher
	// GenFile generates a prefetch file offline (the Delta-LSTM/Voyager
	// path). Label is required with GenFile.
	GenFile func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error)
	// File is an already-generated prefetch file.
	File []trace.Prefetch

	// Budget caps prefetches per access (default prefetch.Budget).
	Budget int
	// Baseline, if non-nil, is a precomputed no-prefetch LLC miss count;
	// the baseline simulation is skipped.
	Baseline *uint64
	// Warmup overrides the warmup length: >0 is an explicit access count,
	// <0 disables warmup, 0 defers to Sim.Warmup and then to the default
	// 10% of the trace.
	Warmup int
	// Loads / Seed / Sim override the runner defaults for this job. A
	// job-level Sim bypasses the shared baseline cache (the machine
	// differs from the cached runs).
	Loads int
	Seed  int64
	Sim   *sim.Config
}

// Runner evaluates jobs across a worker pool, sharing per-trace work
// (generation and the no-prefetch baseline) through single-flight caches.
// A Runner is safe for concurrent use; caches persist across Run calls.
type Runner struct {
	cfg       Config
	traces    flight[[]trace.Access]
	baselines flight[baselineInfo]

	// srcLens memoizes SourceKey → record count for streams that cannot
	// report their own length, learned from a completed full replay. It
	// is what lets an unknown-length stream resolve the same 10% warmup
	// default as the slice path instead of silently warming up nothing.
	srcLens sync.Map

	baselineSims atomic.Int64
}

type baselineInfo struct {
	ipc    float64
	misses uint64
}

// New builds a Runner. Zero-value Config fields take their defaults
// (50 K loads, seed 1, scaled machine, GOMAXPROCS workers).
func New(cfg Config) *Runner {
	if cfg.Loads <= 0 {
		cfg.Loads = 50_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sim.Width == 0 {
		cfg.Sim = sim.ScaledConfig()
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	return &Runner{cfg: cfg}
}

// BaselineSims reports how many no-prefetch baseline simulations the
// runner has actually executed — with the single-flight cache this stays
// at one per distinct trace regardless of grid size or parallelism.
func (r *Runner) BaselineSims() int64 { return r.baselineSims.Load() }

// cell threads a job's grid identity through an evaluation attempt, for
// journal keys, fault-site keys, and error attribution.
type cell struct {
	index   int
	key     string
	attempt int
}

// cellKey is the stable identity of a grid cell across runs of the same
// sweep: position, trace, label, and the effective loads/seed. It is the
// journal key and the fault-injection key. A Source job's SourceKey is
// appended only when present, so journals written before streaming jobs
// existed resume under unchanged keys.
func (r *Runner) cellKey(i int, job Job) string {
	loads, seed, _ := r.effective(job)
	key := fmt.Sprintf("%d|%s|%s|%d|%d", i, job.Trace, job.Label, loads, seed)
	if job.SourceKey != "" {
		key += "|" + job.SourceKey
	}
	return key
}

// CellKey exposes the stable cell identity for external schedulers: the
// distributed sweep coordinator (internal/dist) keys its lease table and
// shared ledger with exactly the keys a single-process run journals under,
// which is what lets a sweep move between the two worlds and resume
// bit-identically.
func (r *Runner) CellKey(i int, job Job) string { return r.cellKey(i, job) }

// Run evaluates the jobs across the worker pool and returns one Result
// per job, in job order. It is all-or-nothing: the first permanent job
// failure (or cancellation) aborts the grid, waits for in-flight workers
// to wind down — no goroutines outlive the call — and the returned
// results must be discarded. Retries, deadlines, and the journal still
// apply; use RunWithReport to keep going past failed cells instead.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	results, _, err := r.run(ctx, jobs, true)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunWithReport evaluates the jobs with graceful degradation: permanently
// failed cells are recorded in the report (and left zero-valued in the
// results) while the rest of the grid completes. The error is non-nil
// only for whole-run failures — cancellation or a journal write error —
// in which case the results must be discarded. Surviving results are
// bit-identical to the same cells of a fault-free run.
func (r *Runner) RunWithReport(ctx context.Context, jobs []Job) ([]Result, *RunReport, error) {
	return r.run(ctx, jobs, false)
}

// run is the shared grid loop. failFast selects Run's all-or-nothing
// contract; otherwise failures degrade into the report.
func (r *Runner) run(ctx context.Context, jobs []Job, failFast bool) ([]Result, *RunReport, error) {
	report := &RunReport{Total: len(jobs)}
	if len(jobs) == 0 {
		return nil, report, nil
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	// finish publishes a cell's terminal state under the bookkeeping lock:
	// report counters, then the serialised progress event.
	finish := func(p Progress, retries int, jobErr *JobError) {
		observeTerminal(int64(p.Wall), retries, jobErr != nil, p.Resumed)
		mu.Lock()
		done++
		p.Done, p.Total = done, len(jobs)
		report.Retries += retries
		switch {
		case jobErr != nil:
			report.Failed = append(report.Failed, jobErr)
		case p.Resumed:
			report.Resumed++
		default:
			report.Completed++
		}
		if r.cfg.Progress != nil {
			r.cfg.Progress(p)
		}
		mu.Unlock()
	}
	idxc := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				job := jobs[i]
				key := r.cellKey(i, job)
				if r.cfg.Journal != nil {
					if res, ok := r.cfg.Journal.Lookup(key); ok {
						results[i] = res
						finish(Progress{
							Trace: res.Trace, Prefetcher: res.Prefetcher,
							Wall: res.Wall, Cycles: res.Cycles, Resumed: true,
						}, 0, nil)
						continue
					}
				}
				res, attempts, err := r.runCell(ctx, i, job, key)
				if err != nil {
					if ctx.Err() != nil {
						// The run was cancelled out from under the cell;
						// that is not the cell's failure.
						fail(ctx.Err())
						return
					}
					jobErr := newJobError(i, job, attempts, err)
					if failFast {
						fail(jobErr)
						return
					}
					finish(Progress{
						Trace: job.Trace, Prefetcher: job.Label, Err: jobErr,
					}, attempts-1, jobErr)
					continue
				}
				if r.cfg.Journal != nil {
					if jerr := r.cfg.Journal.Record(key, res); jerr != nil {
						// Losing checkpoints is a whole-run failure: a
						// resume would silently repeat finished work.
						fail(jerr)
						return
					}
				}
				results[i] = res
				finish(Progress{
					Trace: res.Trace, Prefetcher: res.Prefetcher,
					Wall: res.Wall, Cycles: res.Cycles,
				}, attempts-1, nil)
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()

	report.Wall = time.Since(start)
	// The final telemetry block: a snapshot of the process-wide registry
	// (nil when telemetry is off). Cumulative across Run calls, so a
	// resumed sweep's report covers the fresh run plus the resume.
	report.Telemetry = telemetry.GlobalSnapshot()
	sort.Slice(report.Failed, func(a, b int) bool { return report.Failed[a].Index < report.Failed[b].Index })
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, report, err
	}
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	return results, report, nil
}

// runCell evaluates one cell with the retry policy: up to MaxAttempts
// attempts, each optionally deadline-bounded, retrying only transient
// errors and attempt-deadline expiries with exponential backoff and
// deterministic jitter. It returns the attempts consumed alongside the
// result or final error.
func (r *Runner) runCell(ctx context.Context, idx int, job Job, key string) (Result, int, error) {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoffDelay(r.cfg.RetryBackoff, key, attempt)); err != nil {
				return Result{}, attempt, err
			}
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.cfg.JobTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.cfg.JobTimeout)
		}
		res, err := r.safeEval(attemptCtx, job, cell{index: idx, key: key, attempt: attempt})
		cancel()
		if err == nil {
			return res, attempt + 1, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The parent context died: cancellation, not a cell verdict.
			return Result{}, attempt + 1, ctx.Err()
		}
		if !retryable(err) {
			return Result{}, attempt + 1, err
		}
	}
	return Result{}, r.cfg.MaxAttempts, lastErr
}

// retryable reports whether an attempt error may clear on retry: errors
// marked transient, and attempt-deadline expiries (the parent context is
// known live when this is called).
func retryable(err error) bool {
	return fault.IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay is the pre-retry delay: RetryBackoff doubled per attempt
// (capped at 5s) plus up to 50% deterministic jitter hashed from the cell
// key, so a thundering herd of retries decorrelates identically on every
// run.
func backoffDelay(base time.Duration, key string, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	h := fnv1a(fmt.Sprintf("%s\x00%d", key, attempt))
	return d + time.Duration(uint64(d/2)*uint64(h)/(1<<32))
}

// sleepCtx blocks for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// safeEval runs one evaluation attempt with panic containment: a
// panicking job (or prefetcher, or simulator) becomes a typed PanicError
// carrying the stack instead of killing the whole process.
func (r *Runner) safeEval(ctx context.Context, job Job, c cell) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return r.eval(ctx, job, c)
}

// inject fires a fault site; the nil Injector default is one pointer
// check.
func (r *Runner) inject(ctx context.Context, site fault.Site, key string, attempt int) error {
	if r.cfg.Fault == nil {
		return nil
	}
	return r.cfg.Fault.Inject(ctx, site, key, attempt)
}

// Eval evaluates a single job on the calling goroutine (no pool), still
// sharing the runner's caches, retry policy, and journal, and emitting a
// 1/1 progress event.
func (r *Runner) Eval(ctx context.Context, job Job) (Result, error) {
	return r.EvalCell(ctx, 0, job)
}

// EvalCell is Eval with an explicit grid position: the cell key (journal
// identity, fault-injection key) and error attribution carry index rather
// than 0. Distributed sweep workers evaluate coordinator-granted cells
// through this entry point so a cell behaves identically to the same cell
// of a single-process grid run.
func (r *Runner) EvalCell(ctx context.Context, index int, job Job) (Result, error) {
	key := r.cellKey(index, job)
	progress := func(res Result, resumed bool) {
		observeTerminal(int64(res.Wall), 0, false, resumed)
		if r.cfg.Progress != nil {
			r.cfg.Progress(Progress{
				Done: 1, Total: 1,
				Trace: res.Trace, Prefetcher: res.Prefetcher,
				Wall: res.Wall, Cycles: res.Cycles, Resumed: resumed,
			})
		}
	}
	if r.cfg.Journal != nil {
		if res, ok := r.cfg.Journal.Lookup(key); ok {
			progress(res, true)
			return res, nil
		}
	}
	res, attempts, err := r.runCell(ctx, index, job, key)
	if err != nil {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{}, newJobError(index, job, attempts, err)
	}
	if r.cfg.Journal != nil {
		if jerr := r.cfg.Journal.Record(key, res); jerr != nil {
			return Result{}, jerr
		}
	}
	progress(res, false)
	return res, nil
}

// effective resolves a job's loads/seed/sim against the runner defaults.
func (r *Runner) effective(job Job) (loads int, seed int64, cfg sim.Config) {
	loads, seed, cfg = r.cfg.Loads, r.cfg.Seed, r.cfg.Sim
	if job.Loads > 0 {
		loads = job.Loads
	}
	if job.Seed != 0 {
		seed = job.Seed
	}
	if job.Sim != nil {
		cfg = *job.Sim
	}
	return loads, seed, cfg
}

// countingSource counts records pulled through it, so a full replay of an
// unknown-length stream records the trace length for the srcLens memo.
type countingSource struct {
	src trace.Source
	n   int
}

func (c *countingSource) Next(a *trace.Access) error {
	err := c.src.Next(a)
	if err == nil {
		c.n++
	}
	return err
}

// resolveWarmup applies the warmup precedence: job override, then the sim
// config, then the conventional 10% of the trace.
func resolveWarmup(jobWarmup, simWarmup, n int) int {
	switch {
	case jobWarmup > 0:
		return jobWarmup
	case jobWarmup < 0:
		return 0
	case simWarmup > 0:
		return simWarmup
	}
	return n / 10
}

// eval runs one job end to end: trace, baseline, prefetch file, timed
// replay.
func (r *Runner) eval(ctx context.Context, job Job, c cell) (Result, error) {
	if job.Source != nil {
		return r.evalStream(ctx, job, c)
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := r.inject(ctx, fault.SiteJobStart, c.key, c.attempt); err != nil {
		return Result{}, err
	}
	loads, seed, cfg := r.effective(job)

	accs := job.Accs
	if accs == nil {
		if job.Trace == "" {
			return Result{}, fmt.Errorf("job has neither a trace name nor accesses")
		}
		key := fmt.Sprintf("%s\x00%d\x00%d", job.Trace, loads, seed)
		var err error
		accs, err = r.traces.Do(ctx, key, func() ([]trace.Access, error) {
			if err := r.inject(ctx, fault.SiteTraceDecode, key, c.attempt); err != nil {
				return nil, err
			}
			return workload.GenerateCtx(ctx, job.Trace, loads, seed)
		})
		if err != nil {
			return Result{}, err
		}
	}
	if len(accs) == 0 {
		return Result{}, fmt.Errorf("empty trace")
	}
	cfg.Warmup = resolveWarmup(job.Warmup, cfg.Warmup, len(accs))

	var base baselineInfo
	if job.Baseline != nil {
		base.misses = *job.Baseline
	} else {
		var err error
		base, err = r.baseline(ctx, job, cfg, accs, c)
		if err != nil {
			return Result{}, err
		}
	}

	pfs, label, err := r.prefetchFile(ctx, job, accs, c)
	if err != nil {
		return Result{}, err
	}
	if err := r.inject(ctx, fault.SiteSimulate, c.key, c.attempt); err != nil {
		return Result{}, err
	}
	eng, release := acquireEngine(cfg)
	defer release()
	res, err := eng.RunCtx(ctx, accs, pfs)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Metrics: Metrics{
			Prefetcher:     label,
			Trace:          job.Trace,
			IPC:            res.IPC,
			Accuracy:       res.Accuracy(),
			Coverage:       res.Coverage(base.misses),
			Issued:         res.PrefIssued,
			Useful:         res.PrefUseful,
			BaselineMisses: base.misses,
		},
		BaselineIPC: base.ipc,
		Cycles:      res.Cycles,
		Wall:        time.Since(start),
	}, nil
}

// evalStream is eval for Source jobs: the trace is never materialized —
// each stage (baseline, generation, timed replay) streams its own fresh
// resolution of the job's Source through the simulator's bounded replay
// window, so the cell's heap usage is independent of trace length.
func (r *Runner) evalStream(ctx context.Context, job Job, c cell) (Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := r.inject(ctx, fault.SiteJobStart, c.key, c.attempt); err != nil {
		return Result{}, err
	}
	_, _, cfg := r.effective(job)

	// First resolution: probe the length (when the source knows it) for
	// the warmup default, then feed the baseline replay. When the source
	// cannot report a length, fall back to a length memoized from an
	// earlier full replay under the same SourceKey; with neither, a
	// defaulted warmup would silently resolve to zero — diverging from
	// the slice path's 10% convention — so that case is a loud error
	// unless the job (or sim config) pins warmup explicitly.
	if err := r.inject(ctx, fault.SiteTraceDecode, c.key, c.attempt); err != nil {
		return Result{}, err
	}
	src, err := job.Source(ctx)
	if err != nil {
		return Result{}, err
	}
	n, lenKnown := 0, false
	if s, ok := src.(interface{ Remaining() (uint64, bool) }); ok {
		if rem, known := s.Remaining(); known {
			if rem == 0 {
				return Result{}, fmt.Errorf("empty trace")
			}
			n, lenKnown = int(rem), true
			if job.SourceKey != "" {
				r.srcLens.Store(job.SourceKey, n)
			}
		}
	}
	if !lenKnown && job.SourceKey != "" {
		if v, ok := r.srcLens.Load(job.SourceKey); ok {
			n, lenKnown = v.(int), true
		}
	}
	if !lenKnown && job.Warmup == 0 && cfg.Warmup == 0 {
		return Result{}, fmt.Errorf("job %q (trace %q): stream length unknown, so the default 10%%-of-trace warmup cannot be resolved and would silently become zero, diverging from the slice path; set Job.Warmup explicitly (negative disables warmup) or replay a length-known source under the same SourceKey first", c.key, job.Trace)
	}
	cfg.Warmup = resolveWarmup(job.Warmup, cfg.Warmup, n)

	var base baselineInfo
	if job.Baseline != nil {
		base.misses = *job.Baseline
	} else {
		base, err = r.baselineStream(ctx, job, cfg, src, c)
		if err != nil {
			return Result{}, err
		}
	}

	pfs, label, err := r.prefetchFileStream(ctx, job, c)
	if err != nil {
		return Result{}, err
	}
	if err := r.inject(ctx, fault.SiteSimulate, c.key, c.attempt); err != nil {
		return Result{}, err
	}
	timed, err := job.Source(ctx)
	if err != nil {
		return Result{}, err
	}
	// When the length had to come from neither the source nor the memo,
	// learn it here: the timed replay consumes the stream to EOF, so its
	// record count is the trace length, and the next job under this
	// SourceKey resolves the standard warmup default.
	var counter *countingSource
	if !lenKnown && job.SourceKey != "" {
		counter = &countingSource{src: timed}
		timed = counter
	}
	eng, release := acquireEngine(cfg)
	defer release()
	res, err := eng.RunStreamCtx(ctx, timed, pfs)
	if err != nil {
		return Result{}, err
	}
	if counter != nil {
		r.srcLens.Store(job.SourceKey, counter.n)
	}
	return Result{
		Metrics: Metrics{
			Prefetcher:     label,
			Trace:          job.Trace,
			IPC:            res.IPC,
			Accuracy:       res.Accuracy(),
			Coverage:       res.Coverage(base.misses),
			Issued:         res.PrefIssued,
			Useful:         res.PrefUseful,
			BaselineMisses: base.misses,
		},
		BaselineIPC: base.ipc,
		Cycles:      res.Cycles,
		Wall:        time.Since(start),
	}, nil
}

// baselineStream is baseline for Source jobs. src is the caller's already
// resolved stream; the single-flight leader consumes it, and when the
// cache already holds the entry (or another cell is computing it) the
// unread stream is simply discarded. Caching requires a SourceKey — the
// records have no other stable identity — and, as on the slice path, the
// shared machine configuration.
func (r *Runner) baselineStream(ctx context.Context, job Job, cfg sim.Config, src trace.Source, c cell) (baselineInfo, error) {
	run := func() (baselineInfo, error) {
		if err := r.inject(ctx, fault.SiteBaseline, c.key, c.attempt); err != nil {
			return baselineInfo{}, err
		}
		if src == nil {
			var err error
			if src, err = job.Source(ctx); err != nil {
				return baselineInfo{}, err
			}
		}
		r.baselineSims.Add(1)
		if m := runnerTele.Load(); m != nil {
			m.baselineSims.Inc()
		}
		eng, release := acquireEngine(cfg)
		defer release()
		res, err := eng.RunStreamCtx(ctx, src, nil)
		if err != nil {
			return baselineInfo{}, fmt.Errorf("baseline simulation: %w", err)
		}
		return baselineInfo{ipc: res.IPC, misses: res.LLCLoadMisses}, nil
	}
	if job.Sim != nil || job.SourceKey == "" {
		return run()
	}
	key := fmt.Sprintf("src\x00%s\x00%d", job.SourceKey, cfg.Warmup)
	return r.baselines.Do(ctx, key, run)
}

// prefetchFileStream produces a Source job's prefetch file and result
// label. Online prefetchers advise over the stream directly; GenFile
// generators take a slice by signature, so a GenFile job collects the
// stream first — offline trainers need the materialized trace anyway.
func (r *Runner) prefetchFileStream(ctx context.Context, job Job, c cell) ([]trace.Prefetch, string, error) {
	label := job.Label
	switch {
	case job.File != nil:
		if label == "" {
			label = "file"
		}
		return job.File, label, nil
	case job.GenFile != nil:
		if label == "" {
			return nil, "", fmt.Errorf("GenFile job needs a Label")
		}
		if err := r.inject(ctx, fault.SitePrefetchGen, c.key, c.attempt); err != nil {
			return nil, "", err
		}
		src, err := job.Source(ctx)
		if err != nil {
			return nil, "", err
		}
		accs, err := trace.Collect(src)
		if err != nil {
			return nil, "", err
		}
		pfs, err := job.GenFile(ctx, accs)
		return pfs, label, err
	case job.New != nil, job.Prefetcher != nil:
		if err := r.inject(ctx, fault.SitePrefetchGen, c.key, c.attempt); err != nil {
			return nil, "", err
		}
		p := job.Prefetcher
		if job.New != nil {
			var err error
			if p, err = job.New(); err != nil {
				return nil, "", err
			}
		}
		budget := job.Budget
		if budget <= 0 {
			budget = prefetch.Budget
		}
		src, err := job.Source(ctx)
		if err != nil {
			return nil, "", err
		}
		pfs, err := prefetch.GenerateFileStreamCtx(ctx, p, src, budget)
		if err != nil {
			return nil, "", err
		}
		if label == "" {
			label = p.Name()
		}
		return pfs, label, nil
	}
	return nil, "", fmt.Errorf("job has no prefetcher, generator, or file")
}

// baseline returns the trace's no-prefetch simulation, through the
// single-flight cache when the job runs on the shared machine
// configuration.
func (r *Runner) baseline(ctx context.Context, job Job, cfg sim.Config, accs []trace.Access, c cell) (baselineInfo, error) {
	run := func() (baselineInfo, error) {
		if err := r.inject(ctx, fault.SiteBaseline, c.key, c.attempt); err != nil {
			return baselineInfo{}, err
		}
		r.baselineSims.Add(1)
		if m := runnerTele.Load(); m != nil {
			m.baselineSims.Inc()
		}
		eng, release := acquireEngine(cfg)
		defer release()
		res, err := eng.RunCtx(ctx, accs, nil)
		if err != nil {
			return baselineInfo{}, fmt.Errorf("baseline simulation: %w", err)
		}
		return baselineInfo{ipc: res.IPC, misses: res.LLCLoadMisses}, nil
	}
	// A per-job machine override or an anonymous trace is not cacheable:
	// the cache key could not distinguish it from the shared runs.
	if job.Sim != nil || job.Trace == "" {
		return run()
	}
	loads, seed, _ := r.effective(job)
	key := fmt.Sprintf("%s\x00%d\x00%d\x00%d", job.Trace, loads, seed, cfg.Warmup)
	return r.baselines.Do(ctx, key, run)
}

// prefetchFile produces the job's prefetch file and result label.
func (r *Runner) prefetchFile(ctx context.Context, job Job, accs []trace.Access, c cell) ([]trace.Prefetch, string, error) {
	label := job.Label
	switch {
	case job.File != nil:
		if label == "" {
			label = "file"
		}
		return job.File, label, nil
	case job.GenFile != nil:
		if label == "" {
			return nil, "", fmt.Errorf("GenFile job needs a Label")
		}
		if err := r.inject(ctx, fault.SitePrefetchGen, c.key, c.attempt); err != nil {
			return nil, "", err
		}
		pfs, err := job.GenFile(ctx, accs)
		return pfs, label, err
	case job.New != nil, job.Prefetcher != nil:
		if err := r.inject(ctx, fault.SitePrefetchGen, c.key, c.attempt); err != nil {
			return nil, "", err
		}
		p := job.Prefetcher
		if job.New != nil {
			var err error
			if p, err = job.New(); err != nil {
				return nil, "", err
			}
		}
		budget := job.Budget
		if budget <= 0 {
			budget = prefetch.Budget
		}
		pfs, err := prefetch.GenerateFileCtx(ctx, p, accs, budget)
		if err != nil {
			return nil, "", err
		}
		if label == "" {
			label = p.Name()
		}
		return pfs, label, nil
	}
	return nil, "", fmt.Errorf("job has no prefetcher, generator, or file")
}

// ForEach runs fn(i) for every i in [0, n) across a worker pool of the
// given size (0 means GOMAXPROCS), stopping at the first error or
// cancellation. It is the runner's escape hatch for experiment loops that
// are not (trace × prefetcher) simulation cells — per-trace statistics,
// multi-core interference runs — but should still saturate the machine.
func ForEach(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	idxc := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
