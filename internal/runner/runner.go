// Package runner is the parallel evaluation engine behind the experiment
// harness: it fans a (trace × prefetcher) grid out across a worker pool,
// computes each trace's no-prefetch baseline exactly once through a
// sharded single-flight cache, and reports per-cell progress to an
// optional sink.
//
// Determinism contract: every job is evaluated in isolation — its trace is
// generated (or taken) read-only, its prefetcher is constructed fresh from
// the job's deterministic seed, and the simulator shares no mutable state
// between jobs — so Run returns bit-identical Metrics for any Parallelism,
// in the submitted job order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/sim"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// Metrics summarises one prefetcher evaluation (§4.5 of the paper).
type Metrics struct {
	// Prefetcher and Trace identify the run.
	Prefetcher, Trace string
	// IPC is instructions per cycle after warmup.
	IPC float64
	// Accuracy is useful/issued prefetches; Coverage is useful prefetches
	// over baseline LLC misses.
	Accuracy, Coverage float64
	// Issued and Useful are the raw prefetch counts; BaselineMisses is
	// the no-prefetch LLC miss count coverage is relative to.
	Issued, Useful, BaselineMisses uint64
}

// Result is one evaluated job: its metrics plus engine-level measurements.
type Result struct {
	Metrics
	// BaselineIPC is the no-prefetch IPC of the job's trace (zero when the
	// job supplied a precomputed baseline, which skips the baseline run).
	BaselineIPC float64
	// Cycles is the simulated cycle count of the prefetch run.
	Cycles uint64
	// Wall is the host wall-clock time the job took, including its share
	// of cached trace/baseline builds.
	Wall time.Duration
}

// Progress is one progress event, emitted after each job completes.
type Progress struct {
	// Done jobs out of Total in this Run call.
	Done, Total int
	// Trace and Prefetcher identify the finished job.
	Trace, Prefetcher string
	// Wall is the job's wall-clock time; Cycles its simulated cycles, so
	// sinks can derive simulated-cycles-per-second throughput.
	Wall   time.Duration
	Cycles uint64
}

// ProgressFunc receives progress events. Calls are serialised and ordered
// by completion; implementations should be fast (they run under the
// engine's bookkeeping lock).
type ProgressFunc func(Progress)

// Config configures a Runner. The zero value is usable: 50 K-load traces,
// seed 1, the scaled Table 3 machine, and GOMAXPROCS workers.
type Config struct {
	// Loads is the default trace length for jobs that name a workload.
	Loads int
	// Seed is the default seed for trace generation.
	Seed int64
	// Sim is the default machine configuration.
	Sim sim.Config
	// Parallelism is the worker count (default GOMAXPROCS).
	Parallelism int
	// Progress, if set, receives one event per completed job.
	Progress ProgressFunc
}

// Job is one evaluation cell: a trace and exactly one source of
// prefetches — an online prefetcher (instance or factory), an offline
// prefetch-file generator, or a precomputed file.
type Job struct {
	// Trace names a workload (generated with the effective Loads/Seed and
	// cached across jobs). Optional when Accs is set, but still used as
	// the result label and the baseline-cache key.
	Trace string
	// Accs, if non-nil, is the trace to replay (bypasses generation).
	Accs []trace.Access
	// Label overrides the result's Prefetcher name.
	Label string

	// New builds the job's online prefetcher; preferred over Prefetcher
	// because construction then happens inside the job with the job's
	// deterministic seed. Exactly one of New, Prefetcher, GenFile, File
	// must be set (File may be an explicitly empty file for a no-prefetch
	// run via Prefetcher: prefetch.NoPrefetch{}).
	New func() (prefetch.Prefetcher, error)
	// Prefetcher is a ready-made online prefetcher. It must not be shared
	// with any other job: prefetchers are stateful.
	Prefetcher prefetch.Prefetcher
	// GenFile generates a prefetch file offline (the Delta-LSTM/Voyager
	// path). Label is required with GenFile.
	GenFile func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error)
	// File is an already-generated prefetch file.
	File []trace.Prefetch

	// Budget caps prefetches per access (default prefetch.Budget).
	Budget int
	// Baseline, if non-nil, is a precomputed no-prefetch LLC miss count;
	// the baseline simulation is skipped.
	Baseline *uint64
	// Warmup overrides the warmup length: >0 is an explicit access count,
	// <0 disables warmup, 0 defers to Sim.Warmup and then to the default
	// 10% of the trace.
	Warmup int
	// Loads / Seed / Sim override the runner defaults for this job. A
	// job-level Sim bypasses the shared baseline cache (the machine
	// differs from the cached runs).
	Loads int
	Seed  int64
	Sim   *sim.Config
}

// Runner evaluates jobs across a worker pool, sharing per-trace work
// (generation and the no-prefetch baseline) through single-flight caches.
// A Runner is safe for concurrent use; caches persist across Run calls.
type Runner struct {
	cfg       Config
	traces    flight[[]trace.Access]
	baselines flight[baselineInfo]

	baselineSims atomic.Int64
}

type baselineInfo struct {
	ipc    float64
	misses uint64
}

// New builds a Runner. Zero-value Config fields take their defaults
// (50 K loads, seed 1, scaled machine, GOMAXPROCS workers).
func New(cfg Config) *Runner {
	if cfg.Loads <= 0 {
		cfg.Loads = 50_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sim.Width == 0 {
		cfg.Sim = sim.ScaledConfig()
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{cfg: cfg}
}

// BaselineSims reports how many no-prefetch baseline simulations the
// runner has actually executed — with the single-flight cache this stays
// at one per distinct trace regardless of grid size or parallelism.
func (r *Runner) BaselineSims() int64 { return r.baselineSims.Load() }

// Run evaluates the jobs across the worker pool and returns one Result
// per job, in job order. On error (including cancellation) it waits for
// in-flight workers to wind down — no goroutines outlive the call — and
// the returned results must be discarded.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	idxc := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				res, err := r.eval(ctx, jobs[i])
				if err != nil {
					fail(fmt.Errorf("runner: job %d (%s/%s): %w", i, jobs[i].Trace, jobs[i].Label, err))
					return
				}
				results[i] = res
				mu.Lock()
				done++
				if r.cfg.Progress != nil {
					r.cfg.Progress(Progress{
						Done: done, Total: len(jobs),
						Trace: res.Trace, Prefetcher: res.Prefetcher,
						Wall: res.Wall, Cycles: res.Cycles,
					})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Eval evaluates a single job on the calling goroutine (no pool), still
// sharing the runner's caches and emitting a 1/1 progress event.
func (r *Runner) Eval(ctx context.Context, job Job) (Result, error) {
	res, err := r.eval(ctx, job)
	if err != nil {
		return Result{}, err
	}
	if r.cfg.Progress != nil {
		r.cfg.Progress(Progress{
			Done: 1, Total: 1,
			Trace: res.Trace, Prefetcher: res.Prefetcher,
			Wall: res.Wall, Cycles: res.Cycles,
		})
	}
	return res, nil
}

// effective resolves a job's loads/seed/sim against the runner defaults.
func (r *Runner) effective(job Job) (loads int, seed int64, cfg sim.Config) {
	loads, seed, cfg = r.cfg.Loads, r.cfg.Seed, r.cfg.Sim
	if job.Loads > 0 {
		loads = job.Loads
	}
	if job.Seed != 0 {
		seed = job.Seed
	}
	if job.Sim != nil {
		cfg = *job.Sim
	}
	return loads, seed, cfg
}

// resolveWarmup applies the warmup precedence: job override, then the sim
// config, then the conventional 10% of the trace.
func resolveWarmup(jobWarmup, simWarmup, n int) int {
	switch {
	case jobWarmup > 0:
		return jobWarmup
	case jobWarmup < 0:
		return 0
	case simWarmup > 0:
		return simWarmup
	}
	return n / 10
}

// eval runs one job end to end: trace, baseline, prefetch file, timed
// replay.
func (r *Runner) eval(ctx context.Context, job Job) (Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	loads, seed, cfg := r.effective(job)

	accs := job.Accs
	if accs == nil {
		if job.Trace == "" {
			return Result{}, fmt.Errorf("job has neither a trace name nor accesses")
		}
		key := fmt.Sprintf("%s\x00%d\x00%d", job.Trace, loads, seed)
		var err error
		accs, err = r.traces.Do(ctx, key, func() ([]trace.Access, error) {
			return workload.GenerateCtx(ctx, job.Trace, loads, seed)
		})
		if err != nil {
			return Result{}, err
		}
	}
	if len(accs) == 0 {
		return Result{}, fmt.Errorf("empty trace")
	}
	cfg.Warmup = resolveWarmup(job.Warmup, cfg.Warmup, len(accs))

	var base baselineInfo
	if job.Baseline != nil {
		base.misses = *job.Baseline
	} else {
		var err error
		base, err = r.baseline(ctx, job, cfg, accs)
		if err != nil {
			return Result{}, err
		}
	}

	pfs, label, err := r.prefetchFile(ctx, job, accs)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.RunCtx(ctx, cfg, accs, pfs)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Metrics: Metrics{
			Prefetcher:     label,
			Trace:          job.Trace,
			IPC:            res.IPC,
			Accuracy:       res.Accuracy(),
			Coverage:       res.Coverage(base.misses),
			Issued:         res.PrefIssued,
			Useful:         res.PrefUseful,
			BaselineMisses: base.misses,
		},
		BaselineIPC: base.ipc,
		Cycles:      res.Cycles,
		Wall:        time.Since(start),
	}, nil
}

// baseline returns the trace's no-prefetch simulation, through the
// single-flight cache when the job runs on the shared machine
// configuration.
func (r *Runner) baseline(ctx context.Context, job Job, cfg sim.Config, accs []trace.Access) (baselineInfo, error) {
	run := func() (baselineInfo, error) {
		r.baselineSims.Add(1)
		res, err := sim.RunCtx(ctx, cfg, accs, nil)
		if err != nil {
			return baselineInfo{}, fmt.Errorf("baseline simulation: %w", err)
		}
		return baselineInfo{ipc: res.IPC, misses: res.LLCLoadMisses}, nil
	}
	// A per-job machine override or an anonymous trace is not cacheable:
	// the cache key could not distinguish it from the shared runs.
	if job.Sim != nil || job.Trace == "" {
		return run()
	}
	loads, seed, _ := r.effective(job)
	key := fmt.Sprintf("%s\x00%d\x00%d\x00%d", job.Trace, loads, seed, cfg.Warmup)
	return r.baselines.Do(ctx, key, run)
}

// prefetchFile produces the job's prefetch file and result label.
func (r *Runner) prefetchFile(ctx context.Context, job Job, accs []trace.Access) ([]trace.Prefetch, string, error) {
	label := job.Label
	switch {
	case job.File != nil:
		if label == "" {
			label = "file"
		}
		return job.File, label, nil
	case job.GenFile != nil:
		if label == "" {
			return nil, "", fmt.Errorf("GenFile job needs a Label")
		}
		pfs, err := job.GenFile(ctx, accs)
		return pfs, label, err
	case job.New != nil, job.Prefetcher != nil:
		p := job.Prefetcher
		if job.New != nil {
			var err error
			if p, err = job.New(); err != nil {
				return nil, "", err
			}
		}
		budget := job.Budget
		if budget <= 0 {
			budget = prefetch.Budget
		}
		pfs, err := prefetch.GenerateFileCtx(ctx, p, accs, budget)
		if err != nil {
			return nil, "", err
		}
		if label == "" {
			label = p.Name()
		}
		return pfs, label, nil
	}
	return nil, "", fmt.Errorf("job has no prefetcher, generator, or file")
}

// ForEach runs fn(i) for every i in [0, n) across a worker pool of the
// given size (0 means GOMAXPROCS), stopping at the first error or
// cancellation. It is the runner's escape hatch for experiment loops that
// are not (trace × prefetcher) simulation cells — per-trace statistics,
// multi-core interference runs — but should still saturate the machine.
func ForEach(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	idxc := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
