package runner

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// sourceFactory encodes accs into the counted binary container once and
// returns a Job.Source factory that decodes a fresh stream per call —
// the shape a file-backed streaming job has in practice.
func sourceFactory(t testing.TB, accs []trace.Access) func(context.Context) (trace.Source, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, accs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	return func(context.Context) (trace.Source, error) {
		return trace.NewReader(bytes.NewReader(data))
	}
}

// TestSourceJobMatchesSliceJob is the runner-level streaming parity test:
// the same records evaluated once as a materialized Accs job and once as
// a Source job must produce bit-identical metrics — same warmup default
// (the counted container knows its length), same baseline, same replay.
func TestSourceJobMatchesSliceJob(t *testing.T) {
	accs, err := workload.Generate("cc-5", 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	newPF := func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }

	slice, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Accs: accs, New: newPF,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Source: sourceFactory(t, accs), SourceKey: "cc-5#7", New: newPF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Metrics != slice.Metrics {
		t.Fatalf("metrics diverge:\n  stream: %+v\n  slice:  %+v", stream.Metrics, slice.Metrics)
	}
	if stream.BaselineIPC != slice.BaselineIPC || stream.Cycles != slice.Cycles {
		t.Fatalf("baseline/cycles diverge: %v/%d vs %v/%d",
			stream.BaselineIPC, stream.Cycles, slice.BaselineIPC, slice.Cycles)
	}
}

// TestSourceJobBaselineShared checks a grid of Source jobs with the same
// SourceKey runs the no-prefetch baseline exactly once, like name-keyed
// slice jobs do.
func TestSourceJobBaselineShared(t *testing.T) {
	accs, err := workload.Generate("cc-5", 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	factory := sourceFactory(t, accs)
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{
			Trace: "cc-5", Source: factory, SourceKey: "cc-5#3",
			Label: "BO",
			New:   func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil },
		})
	}
	r := New(Config{Parallelism: 4})
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.BaselineSims(); n != 1 {
		t.Fatalf("BaselineSims = %d, want 1 (shared by SourceKey)", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Metrics != results[0].Metrics {
			t.Fatalf("job %d metrics diverge from job 0", i)
		}
	}
}

// TestSourceJobUnknownLengthWarmup pins the length-unknown stream
// contract: with no trace length to take 10% of and no explicit warmup,
// the job fails loudly instead of silently measuring from record 0; with
// warmup pinned it matches the equivalent slice job bit for bit; and a
// completed full replay memoizes the length under the SourceKey, after
// which an unconfigured job resolves the same 10% default as a slice job.
func TestSourceJobUnknownLengthWarmup(t *testing.T) {
	accs, err := workload.Generate("cc-5", 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode through the unbounded container so Remaining is unknown.
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	source := func(context.Context) (trace.Source, error) {
		return trace.NewReader(bytes.NewReader(data))
	}
	newPF := func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }

	// No length, no explicit warmup, no memo: loud positioned error, not
	// a silent zero-warmup run.
	r := New(Config{})
	_, err = r.Eval(context.Background(), Job{
		Trace: "cc-5", SourceKey: "cc-5#5", Source: source, New: newPF,
	})
	if err == nil {
		t.Fatal("unknown-length stream with defaulted warmup should fail loudly")
	}
	if !strings.Contains(err.Error(), "warmup") || !strings.Contains(err.Error(), "Job.Warmup") {
		t.Fatalf("error should explain the warmup divergence and the remedy, got: %v", err)
	}

	// Explicit warmup-off runs, and matches the warmup-off slice job.
	stream, err := r.Eval(context.Background(), Job{
		Trace: "cc-5", SourceKey: "cc-5#5", Source: source, Warmup: -1, New: newPF,
	})
	if err != nil {
		t.Fatal(err)
	}
	slice, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Accs: accs, Warmup: -1, New: newPF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Metrics != slice.Metrics {
		t.Fatalf("warmup-off parity broken:\n  stream: %+v\n  slice:  %+v", stream.Metrics, slice.Metrics)
	}

	// That replay taught the runner the trace length: the previously
	// failing unconfigured job now resolves the standard 10% default and
	// lands bit-identical to the unconfigured slice job.
	stream, err = r.Eval(context.Background(), Job{
		Trace: "cc-5", SourceKey: "cc-5#5", Source: source, New: newPF,
	})
	if err != nil {
		t.Fatalf("memoized length should resolve the warmup default: %v", err)
	}
	slice, err = New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Accs: accs, New: newPF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Metrics != slice.Metrics {
		t.Fatalf("memoized-warmup parity broken:\n  stream: %+v\n  slice:  %+v", stream.Metrics, slice.Metrics)
	}
}

// TestSourceJobGenFile checks the offline-generator path still works for
// Source jobs: the stream is collected for the generator's slice
// signature and the result matches the equivalent Accs job.
func TestSourceJobGenFile(t *testing.T) {
	accs, err := workload.Generate("cc-5", 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error) {
		return prefetch.GenerateFileCtx(ctx, &prefetch.NextLine{}, accs, 2)
	}
	slice, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Accs: accs, GenFile: gen, Label: "gen",
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "cc-5", Source: sourceFactory(t, accs), SourceKey: "cc-5#9",
		GenFile: gen, Label: "gen",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Metrics != slice.Metrics {
		t.Fatalf("GenFile metrics diverge:\n  stream: %+v\n  slice:  %+v", stream.Metrics, slice.Metrics)
	}
}

// TestSourceJobEmptyTrace checks a zero-length counted source is rejected
// with the slice path's error.
func TestSourceJobEmptyTrace(t *testing.T) {
	_, err := New(Config{}).Eval(context.Background(), Job{
		Trace: "empty", Source: sourceFactory(t, nil), SourceKey: "empty",
		New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil },
	})
	if err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Fatalf("err = %v, want an empty-trace error", err)
	}
}

// TestSourceJobCellKey pins journal-key compatibility: jobs without a
// SourceKey keep the exact pre-streaming key shape, and the SourceKey is
// appended for Source jobs.
func TestSourceJobCellKey(t *testing.T) {
	r := New(Config{Loads: 1000, Seed: 2})
	legacy := r.cellKey(3, Job{Trace: "cc-5", Label: "BO"})
	if legacy != "3|cc-5|BO|1000|2" {
		t.Fatalf("legacy cell key changed: %q", legacy)
	}
	keyed := r.cellKey(3, Job{Trace: "cc-5", Label: "BO", SourceKey: "sha:abc"})
	if keyed != "3|cc-5|BO|1000|2|sha:abc" {
		t.Fatalf("source cell key = %q", keyed)
	}
}
