package runner

import (
	"errors"
	"fmt"
	"time"

	"pathfinder/internal/telemetry"
)

// PanicError is the cause recorded in a JobError when a job panicked: the
// recovered value plus the goroutine stack at the panic site.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured by the recovery.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// JobError attributes one failed evaluation cell: which job, after how
// many attempts, and why. Panics carry the captured stack. A JobError is
// always a permanent verdict — transient errors that cleared on retry
// never surface as one.
type JobError struct {
	// Index is the job's position in the submitted grid.
	Index int
	// Trace and Label identify the cell (Label may be empty when the
	// prefetcher was never constructed).
	Trace, Label string
	// Attempts is how many evaluation attempts were made.
	Attempts int
	// Err is the final cause; a *PanicError when the job panicked.
	Err error
	// Stack is the panic stack, non-nil only for panicking jobs.
	Stack []byte
}

func (e *JobError) Error() string {
	s := fmt.Sprintf("runner: job %d (%s/%s)", e.Index, e.Trace, e.Label)
	if e.Attempts > 1 {
		s += fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	return s + ": " + e.Err.Error()
}

func (e *JobError) Unwrap() error { return e.Err }

// newJobError builds the typed per-cell error, lifting a panic's stack up
// for direct access.
func newJobError(idx int, job Job, attempts int, cause error) *JobError {
	je := &JobError{Index: idx, Trace: job.Trace, Label: job.Label, Attempts: attempts, Err: cause}
	var pe *PanicError
	if errors.As(cause, &pe) {
		je.Stack = pe.Stack
	}
	return je
}

// RunReport summarises one RunWithReport call: how the grid fared, cell by
// cell. When the run was not cancelled, Completed + Resumed + len(Failed)
// equals Total.
type RunReport struct {
	// Total is the submitted grid size.
	Total int
	// Completed counts cells evaluated successfully in this run.
	Completed int
	// Resumed counts cells satisfied from the journal without
	// re-execution.
	Resumed int
	// Retries counts extra evaluation attempts beyond each cell's first —
	// in a distributed sweep, lease reassignments after a worker crash or
	// missed heartbeat.
	Retries int
	// Quarantined counts the cells a distributed sweep gave up on after
	// they exhausted their grant budget (a poisoned cell that crashes
	// every worker it lands on). Each one also appears in Failed; the
	// single-process engine leaves this zero.
	Quarantined int
	// Wall is the whole run's wall-clock time.
	Wall time.Duration
	// Failed holds one JobError per permanently failed cell, sorted by
	// job index.
	Failed []*JobError
	// Telemetry is a snapshot of the process-wide telemetry registry taken
	// when the run finished — nil unless telemetry was enabled (see
	// docs/observability.md). Counters are cumulative across Run calls in
	// the process, so a resumed sweep's block includes the original run's
	// activity recorded by this process.
	Telemetry *telemetry.Snapshot
}

// Err returns nil when every cell succeeded, and a summary error naming
// the first failure otherwise — a convenience for callers that want
// all-or-nothing semantics on top of a graceful run.
func (r *RunReport) Err() error {
	if len(r.Failed) == 0 {
		return nil
	}
	return fmt.Errorf("runner: %d of %d cells failed (first: %w)", len(r.Failed), r.Total, r.Failed[0])
}
