package runner

import (
	"context"
	"sync"
)

// flightShards is the shard count of the single-flight caches. Sixteen
// shards keep lock contention negligible for grids of hundreds of cells
// while costing nothing for small runs.
const flightShards = 16

// flight is a sharded single-flight cache: for each key the value is built
// exactly once, concurrent callers block until the builder finishes, and
// failed builds are evicted so a later caller may retry.
type flight[T any] struct {
	shards [flightShards]flightShard[T]
}

type flightShard[T any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[T]
}

type flightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Do returns the cached value for key, building it with fn if absent. The
// build runs on the first caller's goroutine; waiters give up (without
// cancelling the build) when their own ctx is cancelled.
func (f *flight[T]) Do(ctx context.Context, key string, fn func() (T, error)) (T, error) {
	sh := &f.shards[fnv1a(key)%flightShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]*flightCall[T])
	}
	if c, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
	c := &flightCall[T]{done: make(chan struct{})}
	sh.m[key] = c
	sh.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)
	if c.err != nil {
		// Evict so a retry with a live context can rebuild.
		sh.mu.Lock()
		if sh.m[key] == c {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	return c.val, c.err
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
