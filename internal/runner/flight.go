package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// flightShards is the shard count of the single-flight caches. Sixteen
// shards keep lock contention negligible for grids of hundreds of cells
// while costing nothing for small runs.
const flightShards = 16

// flight is a sharded single-flight cache: for each key the value is built
// exactly once, concurrent callers block until the builder finishes, and
// failed builds are evicted so a later caller may retry.
//
// Cancellation is never cached: a build that fails because the *builder's*
// context was cancelled (or its per-job deadline expired) is evicted
// before waiters wake, and a waiter whose own context is still live
// re-enters and rebuilds rather than inheriting an unrelated caller's
// cancellation as the key's permanent error.
type flight[T any] struct {
	shards [flightShards]flightShard[T]
}

type flightShard[T any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[T]
}

type flightCall[T any] struct {
	done     chan struct{}
	val      T
	err      error
	panicked any
}

// Do returns the cached value for key, building it with fn if absent. The
// build runs on the first caller's goroutine; waiters give up (without
// cancelling the build) when their own ctx is cancelled, and take over the
// build when the previous builder was cancelled.
func (f *flight[T]) Do(ctx context.Context, key string, fn func() (T, error)) (T, error) {
	sh := &f.shards[fnv1a(key)%flightShards]
	for {
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[string]*flightCall[T])
		}
		if c, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			if m := runnerTele.Load(); m != nil {
				m.flightHits.Inc()
			}
			select {
			case <-c.done:
				if c.err != nil && isCancellation(c.err) && ctx.Err() == nil {
					// The builder died of its own cancellation, not a
					// property of the key; this caller is live, so try
					// the build again (the entry is already evicted).
					continue
				}
				return c.val, c.err
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			}
		}
		c := &flightCall[T]{done: make(chan struct{})}
		sh.m[key] = c
		sh.mu.Unlock()
		if m := runnerTele.Load(); m != nil {
			m.flightMisses.Inc()
		}

		func() {
			defer func() {
				if p := recover(); p != nil {
					// Record the panic as a build failure so waiters are
					// released, then re-raise it on the builder below.
					c.panicked = p
					c.err = fmt.Errorf("flight: builder for %q panicked: %v", key, p)
				}
				if c.err != nil {
					// Evict before waking waiters so a retrying waiter
					// finds the slot free instead of the dead call.
					sh.mu.Lock()
					if sh.m[key] == c {
						delete(sh.m, key)
					}
					sh.mu.Unlock()
				}
				close(c.done)
			}()
			c.val, c.err = fn()
		}()
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.val, c.err
	}
}

// isCancellation reports whether a build error is a context verdict
// rather than a property of the key being built.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
