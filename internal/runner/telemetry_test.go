package runner

import (
	"context"
	"path/filepath"
	"testing"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/telemetry"
)

// TestRunReportTelemetryBlock covers the final structured telemetry block:
// a fresh run and a journal resume must both return a populated
// RunReport.Telemetry, with the resume visible as runner.journal_resumes.
func TestRunReportTelemetryBlock(t *testing.T) {
	reg := telemetry.Enable()
	EnableTelemetry(reg)
	defer func() {
		EnableTelemetry(nil)
		telemetry.Disable()
	}()

	jobs := chaosJobs([]string{"cc-5"})
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Fresh run: every cell executes.
	r1 := New(Config{Loads: 1500, Parallelism: 2, Journal: j})
	_, report, err := r1.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Telemetry == nil {
		t.Fatal("fresh run: RunReport.Telemetry is nil with telemetry enabled")
	}
	if got := report.Telemetry.Counters["runner.jobs"]; got != uint64(len(jobs)) {
		t.Errorf("fresh run: runner.jobs = %d, want %d", got, len(jobs))
	}
	if got := report.Telemetry.Counters["runner.journal_resumes"]; got != 0 {
		t.Errorf("fresh run: runner.journal_resumes = %d, want 0", got)
	}
	wall := report.Telemetry.Histograms["runner.job_wall_ns"]
	if wall.Count != uint64(len(jobs)) {
		t.Errorf("fresh run: runner.job_wall_ns count = %d, want %d", wall.Count, len(jobs))
	}

	// Resumed run: every cell comes from the journal, and the cumulative
	// block reflects both runs.
	r2 := New(Config{Loads: 1500, Parallelism: 2, Journal: j})
	_, report2, err := r2.RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Resumed != len(jobs) {
		t.Fatalf("second run resumed %d cells, want %d", report2.Resumed, len(jobs))
	}
	if report2.Telemetry == nil {
		t.Fatal("resumed run: RunReport.Telemetry is nil with telemetry enabled")
	}
	if got := report2.Telemetry.Counters["runner.journal_resumes"]; got != uint64(len(jobs)) {
		t.Errorf("resumed run: runner.journal_resumes = %d, want %d", got, len(jobs))
	}
	if got := report2.Telemetry.Counters["runner.jobs"]; got != uint64(2*len(jobs)) {
		t.Errorf("resumed run: cumulative runner.jobs = %d, want %d", got, 2*len(jobs))
	}
}

// TestRunReportTelemetryNilWhenOff pins the zero-overhead default: with no
// registry installed the report carries no telemetry block.
func TestRunReportTelemetryNilWhenOff(t *testing.T) {
	jobs := []Job{{Trace: "cc-5", Label: "BO",
		New: func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }}}
	_, report, err := New(Config{Loads: 1000, Parallelism: 1}).RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Telemetry != nil {
		t.Fatalf("RunReport.Telemetry = %+v, want nil with telemetry disabled", report.Telemetry)
	}
}

// TestEvalSingleFlightTelemetry checks the single-flight counters: two jobs
// on the same trace share one baseline build — one miss, one hit.
func TestEvalSingleFlightTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	EnableTelemetry(reg)
	defer EnableTelemetry(nil)

	jobs := chaosJobs([]string{"cc-5"}) // two prefetchers, one trace
	if _, err := New(Config{Loads: 1500, Parallelism: 1}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.baseline_sims"]; got != 1 {
		t.Errorf("runner.baseline_sims = %d, want 1 (shared across the trace's cells)", got)
	}
	misses := snap.Counters["runner.flight_misses"]
	if misses == 0 {
		t.Errorf("runner.flight_misses = 0, want at least the baseline build")
	}
}
