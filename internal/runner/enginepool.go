package runner

import "pathfinder/internal/sim"

// acquireEngine hands out reusable sim.Engines keyed by machine
// configuration, so a grid evaluation builds each distinct machine's
// caches, DRAM banks, and replay buffers once per worker instead of once
// per cell. It delegates to sim.AcquireEngine's package-global pool —
// callers routinely build a fresh Runner per sweep, and the arenas are
// worth keeping across them (and across the package Run* functions, which
// draw from the same pool).
//
// Safety relies on the Engine's reuse contract: all machine state is
// re-initialized at the start of each run, never the end, so an engine
// released by a panicked or cancelled job (safeEval unwinds through the
// deferred release) is bit-identical to a fresh one on its next run. The
// chaos suite pins this (TestEnginePoolReuseAfterPanic).
func acquireEngine(cfg sim.Config) (*sim.Engine, func()) {
	return sim.AcquireEngine(cfg)
}
