package runner

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// runnerMetrics is the evaluation engine's bound telemetry handles. The
// engine's own bookkeeping (RunReport, Progress) stays authoritative for a
// single Run call; these counters aggregate across every Run/Eval of the
// process, which is what a live /metrics scrape or the JSONL sampler sees
// mid-sweep.
type runnerMetrics struct {
	jobs         *telemetry.Counter   // cells reaching a terminal state
	jobFailures  *telemetry.Counter   // cells failing permanently
	jobWallNanos *telemetry.Histogram // per-cell wall latency (ns)
	retries      *telemetry.Counter   // evaluation attempts beyond the first
	resumes      *telemetry.Counter   // cells satisfied from the journal
	flightHits   *telemetry.Counter   // single-flight cache joins (shared builds)
	flightMisses *telemetry.Counter   // single-flight builds started
	baselineSims *telemetry.Counter   // no-prefetch baseline simulations executed
}

var runnerTele atomic.Pointer[runnerMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		runnerTele.Store(nil)
		return
	}
	runnerTele.Store(&runnerMetrics{
		jobs:         r.Counter("runner.jobs"),
		jobFailures:  r.Counter("runner.job_failures"),
		jobWallNanos: r.Histogram("runner.job_wall_ns"),
		retries:      r.Counter("runner.retries"),
		resumes:      r.Counter("runner.journal_resumes"),
		flightHits:   r.Counter("runner.flight_hits"),
		flightMisses: r.Counter("runner.flight_misses"),
		baselineSims: r.Counter("runner.baseline_sims"),
	})
}

// observeTerminal records one cell's terminal state; shared by the grid
// loop's finish closure and the single-job Eval path.
func observeTerminal(wallNanos int64, retries int, failed, resumed bool) {
	m := runnerTele.Load()
	if m == nil {
		return
	}
	m.jobs.Inc()
	m.retries.Add(uint64(retries))
	switch {
	case failed:
		m.jobFailures.Inc()
	case resumed:
		m.resumes.Inc()
	default:
		m.jobWallNanos.Observe(uint64(wallNanos))
	}
}
