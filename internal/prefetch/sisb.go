package prefetch

import "pathfinder/internal/trace"

// SISB is the idealized version of the Irregular Stream Buffer (Jain & Lin,
// MICRO 2013) provided by the ML Prefetching Competition and used as the
// temporal baseline in §4.3. The ISB linearises irregular per-PC access
// streams into a structural address space so that temporal successors can
// be prefetched; the *idealized* variant assumes unbounded off-chip
// metadata, which here is a per-PC successor table recording the last
// block each block was followed by. On an access it replays the learned
// successor chain.
type SISB struct {
	// succ maps pc -> (block -> next block observed in that PC's stream).
	// The two-level shape keeps the unbounded-metadata semantics exact
	// (no 128-bit key is squeezed into 64 bits) while staying flat: the
	// inner tables are Table values stored inline in the outer one.
	succ *Table[Table[uint64]]
	// last maps pc -> the previous block touched by that PC.
	last *Table[uint64]

	advBuf []uint64
}

// NewSISB returns an idealized ISB with unbounded metadata.
func NewSISB() *SISB {
	return &SISB{
		succ: NewTable[Table[uint64]](256),
		last: NewTable[uint64](256),
	}
}

// Name implements Prefetcher.
func (s *SISB) Name() string { return "SISB" }

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (s *SISB) Advise(a trace.Access, budget int) []uint64 {
	block := a.Block()
	if prevp := s.last.Get(a.PC); prevp != nil && *prevp != block {
		prev := *prevp
		inner, _ := s.succ.Insert(a.PC)
		v, _ := inner.Insert(prev)
		*v = block
	}
	lastp, _ := s.last.Insert(a.PC)
	*lastp = block

	inner := s.succ.Get(a.PC)
	if inner == nil {
		return nil
	}
	out := s.advBuf[:0]
	cur := block
	for len(out) < budget {
		next := inner.Get(cur)
		if next == nil || *next == block {
			break
		}
		out = append(out, trace.BlockAddr(*next))
		cur = *next
	}
	s.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}
