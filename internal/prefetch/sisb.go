package prefetch

import "pathfinder/internal/trace"

// SISB is the idealized version of the Irregular Stream Buffer (Jain & Lin,
// MICRO 2013) provided by the ML Prefetching Competition and used as the
// temporal baseline in §4.3. The ISB linearises irregular per-PC access
// streams into a structural address space so that temporal successors can
// be prefetched; the *idealized* variant assumes unbounded off-chip
// metadata, which here is simply a map recording, per load PC, the last
// block each block was followed by. On an access it replays the learned
// successor chain.
type SISB struct {
	// succ maps (pc, block) -> next block observed in that PC's stream.
	succ map[sisbKey]uint64
	// last maps pc -> the previous block touched by that PC.
	last map[uint64]uint64
}

type sisbKey struct {
	pc    uint64
	block uint64
}

// NewSISB returns an idealized ISB with unbounded metadata.
func NewSISB() *SISB {
	return &SISB{
		succ: make(map[sisbKey]uint64),
		last: make(map[uint64]uint64),
	}
}

// Name implements Prefetcher.
func (s *SISB) Name() string { return "SISB" }

// Advise implements Prefetcher.
func (s *SISB) Advise(a trace.Access, budget int) []uint64 {
	block := a.Block()
	if prev, ok := s.last[a.PC]; ok && prev != block {
		s.succ[sisbKey{a.PC, prev}] = block
	}
	s.last[a.PC] = block

	out := make([]uint64, 0, budget)
	cur := block
	for len(out) < budget {
		next, ok := s.succ[sisbKey{a.PC, cur}]
		if !ok || next == block {
			break
		}
		out = append(out, trace.BlockAddr(next))
		cur = next
	}
	return out
}
