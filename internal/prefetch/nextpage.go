package prefetch

import "pathfinder/internal/trace"

// NextPage addresses the limitation the paper leaves as future work in
// §3.4: "Predicting the first access to a page that has not been touched in
// a while (a cold page access)". Per load PC it learns the stride between
// consecutively-entered pages and the offset of each page's first touch;
// once the page stride is stable it prefetches the predicted first block of
// the next page — bridging exactly the gap PATHFINDER's within-page model
// cannot cover. It is designed to be ensembled with PATHFINDER.
type NextPage struct {
	table *Table[nextPageEntry]
	cap   int
	clock uint64

	advBuf []uint64

	// MinConfidence is how many consecutive identical page strides are
	// required before prefetching.
	MinConfidence int
	// Lookahead is how many predicted pages ahead to prefetch into.
	Lookahead int
}

type nextPageEntry struct {
	lastPage   uint64
	pageStride int64
	conf       int
	// firstOffset is the page offset this PC's page entries start at.
	firstOffset int
	lastUse     uint64
}

// NewNextPage returns a cold-page first-access predictor.
func NewNextPage() *NextPage {
	return &NextPage{
		table:         NewTable[nextPageEntry](256),
		cap:           256,
		MinConfidence: 2,
		Lookahead:     1,
	}
}

// Name implements Prefetcher.
func (n *NextPage) Name() string { return "NextPage" }

// Advise implements Prefetcher. Only first-touches of a new page (per PC)
// produce learning or predictions; within-page accesses are ignored,
// leaving them to within-page prefetchers. The returned slice is reused
// across calls and valid only until the next Advise.
func (n *NextPage) Advise(a trace.Access, budget int) []uint64 {
	n.clock++
	page := a.Page()
	e := n.table.Get(a.PC)
	if e == nil {
		if n.table.Len() >= n.cap {
			n.evictLRU()
		}
		e, _ = n.table.Insert(a.PC)
		*e = nextPageEntry{lastPage: page, firstOffset: a.Offset(), lastUse: n.clock}
		return nil
	}
	e.lastUse = n.clock
	if page == e.lastPage {
		return nil // within-page access: not our department
	}
	stride := int64(page) - int64(e.lastPage)
	e.lastPage = page
	if stride == e.pageStride {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.pageStride = stride
		e.conf = 1
	}
	e.firstOffset = a.Offset()
	if e.conf < n.MinConfidence {
		return nil
	}
	out := n.advBuf[:0]
	for i := 1; i <= n.Lookahead && len(out) < budget; i++ {
		p := int64(page) + int64(i)*stride
		if p <= 0 {
			break
		}
		block := uint64(p)*trace.BlocksPerPage + uint64(e.firstOffset)
		out = append(out, trace.BlockAddr(block))
	}
	n.advBuf = out
	return out
}

func (n *NextPage) evictLRU() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	n.table.Range(func(pc uint64, e *nextPageEntry) bool {
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = pc
		}
		return true
	})
	n.table.Delete(victim)
}
