package prefetch

import "pathfinder/internal/trace"

// Throttle wraps any prefetcher with feedback-directed aggressiveness
// control after Srinath et al. (HPCA 2007). The §4.3 Best-Offset baseline
// ships with "prefetch throttling disabled by the provider"; this wrapper
// is the mechanism that was disabled, made composable: it tracks the
// wrapped prefetcher's recent accuracy over a sliding epoch and scales how
// much of the per-access budget the prefetcher may use — full budget while
// accurate, a single slot while mediocre, nothing while hopeless.
type Throttle struct {
	// Inner is the wrapped prefetcher (it observes every access even
	// while fully throttled, so it keeps learning).
	Inner Prefetcher
	// Epoch is the evaluation window in accesses.
	Epoch int
	// HighWater and LowWater are the accuracy thresholds separating the
	// full-budget, reduced-budget and silenced regimes.
	HighWater, LowWater float64
	// Window bounds how long an unconsumed suggestion stays eligible to
	// count as accurate.
	Window int

	pending  *Table[uint64] // suggested block -> access count when suggested
	n        uint64
	hits     int
	issued   int
	level    int // 0 = full budget, 1 = one slot, 2 = silenced
	levelLog [3]uint64
}

// NewThrottle wraps a prefetcher with default feedback parameters.
func NewThrottle(inner Prefetcher) *Throttle {
	return &Throttle{
		Inner:     inner,
		Epoch:     512,
		HighWater: 0.40,
		LowWater:  0.10,
		Window:    256,
		pending:   NewTable[uint64](1024),
	}
}

// Name implements Prefetcher.
func (t *Throttle) Name() string { return t.Inner.Name() + "+FDP" }

// Level returns the current throttle level (0 full, 1 reduced, 2 silenced)
// and how many accesses have been spent at each level.
func (t *Throttle) Level() (int, [3]uint64) { return t.level, t.levelLog }

// Advise implements Prefetcher.
func (t *Throttle) Advise(a trace.Access, budget int) []uint64 {
	t.n++
	t.levelLog[t.level]++

	// Score previous suggestions against this demand.
	if at := t.pending.Get(a.Block()); at != nil && t.n-*at <= uint64(t.Window) {
		t.hits++
		t.pending.Delete(a.Block())
	}

	// Re-evaluate the level each epoch.
	if t.n%uint64(t.Epoch) == 0 {
		if t.issued > 0 {
			// No evidence means no level change; silenced prefetchers
			// keep probing (below) so evidence keeps flowing.
			acc := float64(t.hits) / float64(t.issued)
			switch {
			case acc >= t.HighWater:
				t.level = 0
			case acc >= t.LowWater:
				t.level = 1
			default:
				t.level = 2
			}
		}
		t.hits, t.issued = 0, 0
		// Expire stale suggestions so the table stays bounded.
		t.pending.DeleteIf(func(_ uint64, at *uint64) bool {
			return t.n-*at > uint64(t.Window)
		})
	}

	sugg := t.Inner.Advise(a, budget) // always observe: learning continues
	allowed := budget
	switch t.level {
	case 1:
		allowed = 1
	case 2:
		// Silenced, but probe occasionally so a prefetcher that becomes
		// accurate again can earn its budget back.
		allowed = 0
		if t.n%32 == 0 {
			allowed = 1
		}
	}
	if len(sugg) > allowed {
		sugg = sugg[:allowed]
	}
	for _, s := range sugg {
		at, _ := t.pending.Insert(s / trace.BlockBytes)
		*at = t.n
		t.issued++
	}
	return sugg
}
