package prefetch

import "pathfinder/internal/trace"

// ISB is the realistic (bounded-metadata) Irregular Stream Buffer of Jain
// & Lin (MICRO 2013), complementing the competition's idealized SISB
// (§4.3). The ISB linearises each PC's irregular access stream into a
// *structural* address space: temporally adjacent physical blocks receive
// consecutive structural addresses, so irregular streams become sequential
// streams that can be prefetched by walking forward in structural space.
// Two bounded, LRU-managed mappings implement it: physical → structural
// (PS) and structural → physical (SP). The idealized SISB corresponds to
// unbounded mappings.
type ISB struct {
	ps *Table[isbMapping] // physical block -> structural address + LRU stamp
	sp *Table[uint64]     // structural address -> physical block

	last *Table[uint64] // pc -> previous physical block

	// cursor is each PC stream's next free structural address; chunks
	// counts allocated structural chunks.
	cursor *Table[uint64]
	chunks uint64

	// Cap bounds the PS/SP mappings (on-chip metadata).
	Cap int
	// StreamGranularity is the structural chunk size per stream (the ISB
	// uses 256-entry structural pages).
	StreamGranularity uint64

	clock  uint64
	advBuf []uint64
}

type isbMapping struct {
	str uint64
	use uint64
}

// NewISB returns an ISB with 8K mapping entries (a realistic on-chip
// metadata budget).
func NewISB() *ISB {
	return &ISB{
		ps:                NewTable[isbMapping](8192),
		sp:                NewTable[uint64](8192),
		last:              NewTable[uint64](256),
		cursor:            NewTable[uint64](256),
		Cap:               8192,
		StreamGranularity: 256,
	}
}

// Name implements Prefetcher.
func (b *ISB) Name() string { return "ISB" }

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (b *ISB) Advise(a trace.Access, budget int) []uint64 {
	b.clock++
	block := a.Block()

	// Training: give this block the structural address after its temporal
	// predecessor in the same PC stream. Linearisation is sticky: blocks
	// that already have a structural home keep it (re-linearising on
	// every revisit would tear down the stream a loop just built); stale
	// mappings leave through LRU eviction instead.
	if prevp := b.last.Get(a.PC); prevp != nil && *prevp != block {
		prev := *prevp
		var prevStr, curStr uint64
		hasPrev, hasCur := false, false
		if e := b.ps.Get(prev); e != nil {
			prevStr, hasPrev = e.str, true
		}
		if e := b.ps.Get(block); e != nil {
			curStr, hasCur = e.str, true
		}
		switch {
		case hasPrev && !hasCur && (prevStr+1)%b.StreamGranularity != 0:
			if b.sp.Get(prevStr+1) == nil {
				b.assign(block, prevStr+1)
			}
		case !hasPrev && hasCur && curStr%b.StreamGranularity != 0:
			// Splice prev in just before the already-placed block.
			if b.sp.Get(curStr-1) == nil {
				b.assign(prev, curStr-1)
			}
		case !hasPrev && !hasCur:
			// Fresh pair: lay both down at the stream's cursor.
			s1 := b.alloc(a.PC)
			s2 := b.alloc(a.PC)
			b.assign(prev, s1)
			b.assign(block, s2)
		}
	}
	lastp, _ := b.last.Insert(a.PC)
	*lastp = block
	b.touch(block)

	// Prediction: walk forward in structural space from this block.
	e := b.ps.Get(block)
	if e == nil {
		return nil
	}
	str := e.str
	out := b.advBuf[:0]
	for i := uint64(1); len(out) < budget; i++ {
		phys := b.sp.Get(str + i)
		if phys == nil {
			break
		}
		out = append(out, trace.BlockAddr(*phys))
	}
	b.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// alloc hands out the PC stream's next structural address, reserving a
// fresh chunk when the current one is exhausted (or absent).
func (b *ISB) alloc(pc uint64) uint64 {
	cur, existed := b.cursor.Insert(pc)
	if !existed || *cur%b.StreamGranularity == 0 {
		*cur = b.chunks * b.StreamGranularity
		b.chunks++
	}
	c := *cur
	*cur = c + 1
	return c
}

// assign records the physical<->structural pair, displacing stale mappings.
func (b *ISB) assign(phys, str uint64) {
	if old := b.ps.Get(phys); old != nil {
		b.sp.Delete(old.str)
	}
	if oldPhys := b.sp.Get(str); oldPhys != nil {
		b.ps.Delete(*oldPhys)
	}
	if b.ps.Len() >= b.Cap {
		b.evict()
	}
	e, _ := b.ps.Insert(phys)
	*e = isbMapping{str: str, use: b.clock}
	sp, _ := b.sp.Insert(str)
	*sp = phys
}

func (b *ISB) touch(phys uint64) {
	if e := b.ps.Get(phys); e != nil {
		e.use = b.clock
	}
}

// evict removes the least-recently-used mapping pair.
func (b *ISB) evict() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	b.ps.Range(func(phys uint64, e *isbMapping) bool {
		if e.use < oldest {
			oldest = e.use
			victim = phys
		}
		return true
	})
	if e := b.ps.Get(victim); e != nil {
		b.sp.Delete(e.str)
	}
	b.ps.Delete(victim)
}
