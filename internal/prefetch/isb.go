package prefetch

import "pathfinder/internal/trace"

// ISB is the realistic (bounded-metadata) Irregular Stream Buffer of Jain
// & Lin (MICRO 2013), complementing the competition's idealized SISB
// (§4.3). The ISB linearises each PC's irregular access stream into a
// *structural* address space: temporally adjacent physical blocks receive
// consecutive structural addresses, so irregular streams become sequential
// streams that can be prefetched by walking forward in structural space.
// Two bounded, LRU-managed mappings implement it: physical → structural
// (PS) and structural → physical (SP). The idealized SISB corresponds to
// unbounded mappings.
type ISB struct {
	ps    map[uint64]uint64 // physical block -> structural address
	sp    map[uint64]uint64 // structural address -> physical block
	psUse map[uint64]uint64 // physical block -> last-use tick for LRU
	last  map[uint64]uint64 // pc -> previous physical block

	// cursor is each PC stream's next free structural address; chunks
	// counts allocated structural chunks.
	cursor map[uint64]uint64
	chunks uint64

	// Cap bounds the PS/SP mappings (on-chip metadata).
	Cap int
	// StreamGranularity is the structural chunk size per stream (the ISB
	// uses 256-entry structural pages).
	StreamGranularity uint64

	clock uint64
}

// NewISB returns an ISB with 8K mapping entries (a realistic on-chip
// metadata budget).
func NewISB() *ISB {
	return &ISB{
		ps:                make(map[uint64]uint64),
		sp:                make(map[uint64]uint64),
		psUse:             make(map[uint64]uint64),
		last:              make(map[uint64]uint64),
		cursor:            make(map[uint64]uint64),
		Cap:               8192,
		StreamGranularity: 256,
	}
}

// Name implements Prefetcher.
func (b *ISB) Name() string { return "ISB" }

// Advise implements Prefetcher.
func (b *ISB) Advise(a trace.Access, budget int) []uint64 {
	b.clock++
	block := a.Block()

	// Training: give this block the structural address after its temporal
	// predecessor in the same PC stream. Linearisation is sticky: blocks
	// that already have a structural home keep it (re-linearising on
	// every revisit would tear down the stream a loop just built); stale
	// mappings leave through LRU eviction instead.
	if prev, ok := b.last[a.PC]; ok && prev != block {
		prevStr, hasPrev := b.ps[prev]
		curStr, hasCur := b.ps[block]
		switch {
		case hasPrev && !hasCur && (prevStr+1)%b.StreamGranularity != 0:
			if _, taken := b.sp[prevStr+1]; !taken {
				b.assign(block, prevStr+1)
			}
		case !hasPrev && hasCur && curStr%b.StreamGranularity != 0:
			// Splice prev in just before the already-placed block.
			if _, taken := b.sp[curStr-1]; !taken {
				b.assign(prev, curStr-1)
			}
		case !hasPrev && !hasCur:
			// Fresh pair: lay both down at the stream's cursor.
			s1 := b.alloc(a.PC)
			s2 := b.alloc(a.PC)
			b.assign(prev, s1)
			b.assign(block, s2)
		}
	}
	b.last[a.PC] = block
	b.touch(block)

	// Prediction: walk forward in structural space from this block.
	str, ok := b.ps[block]
	if !ok {
		return nil
	}
	out := make([]uint64, 0, budget)
	for i := uint64(1); len(out) < budget; i++ {
		phys, ok := b.sp[str+i]
		if !ok {
			break
		}
		out = append(out, trace.BlockAddr(phys))
	}
	return out
}

// alloc hands out the PC stream's next structural address, reserving a
// fresh chunk when the current one is exhausted (or absent).
func (b *ISB) alloc(pc uint64) uint64 {
	cur, ok := b.cursor[pc]
	if !ok || cur%b.StreamGranularity == 0 {
		cur = b.chunks * b.StreamGranularity
		b.chunks++
	}
	b.cursor[pc] = cur + 1
	return cur
}

// assign records the physical<->structural pair, displacing stale mappings.
func (b *ISB) assign(phys, str uint64) {
	if old, ok := b.ps[phys]; ok {
		delete(b.sp, old)
	}
	if old, ok := b.sp[str]; ok {
		delete(b.ps, old)
		delete(b.psUse, old)
	}
	if len(b.ps) >= b.Cap {
		b.evict()
	}
	b.ps[phys] = str
	b.sp[str] = phys
	b.psUse[phys] = b.clock
}

func (b *ISB) touch(phys uint64) {
	if _, ok := b.ps[phys]; ok {
		b.psUse[phys] = b.clock
	}
}

// evict removes the least-recently-used mapping pair.
func (b *ISB) evict() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for phys, use := range b.psUse {
		if use < oldest {
			oldest = use
			victim = phys
		}
	}
	if str, ok := b.ps[victim]; ok {
		delete(b.sp, str)
	}
	delete(b.ps, victim)
	delete(b.psUse, victim)
}
