package prefetch

import (
	"math/rand"

	"pathfinder/internal/trace"
)

// PythiaFeature selects a program feature used to index a Q-value table.
// Pythia's defining property is its modular feature set (§2.2: "a modular
// set of variables that can be used to train the Reinforcement Learning
// model"); the default configuration uses PC⊕Delta and the recent delta
// path, the combination the Pythia paper found strongest.
type PythiaFeature int

const (
	// FeaturePCDelta hashes the load PC with the last within-page delta.
	FeaturePCDelta PythiaFeature = iota
	// FeaturePCOffset hashes the load PC with the page offset.
	FeaturePCOffset
	// FeatureDeltaPath hashes the last three within-page deltas.
	FeatureDeltaPath
)

// PythiaConfig holds the tunable knobs of §4.3 ("several diverse
// configurations that primarily varied the action list and the alpha,
// gamma, and epsilon values").
type PythiaConfig struct {
	// Alpha, Gamma and Epsilon are the Q-learning rate, discount and
	// exploration probability.
	Alpha, Gamma, Epsilon float64
	// RewardAccurate, RewardInaccurate and RewardNoPrefetch follow
	// Pythia's reward levels.
	RewardAccurate, RewardInaccurate, RewardNoPrefetch float64
	// Actions is the candidate block-offset list (0 = no prefetch).
	Actions []int
	// Features are the Q-table indexes; the Q-value of an action is the
	// sum over feature tables (Pythia's QVStore).
	Features []PythiaFeature
	// States is the per-feature table size; EQSize the evaluation queue
	// capacity.
	States, EQSize int
	// Seed drives exploration.
	Seed int64
}

// DefaultPythiaConfig returns the configuration used in the evaluation.
func DefaultPythiaConfig(seed int64) PythiaConfig {
	return PythiaConfig{
		Alpha:            0.0065,
		Gamma:            0.556,
		Epsilon:          0.02,
		RewardAccurate:   20,
		RewardInaccurate: -8,
		RewardNoPrefetch: -1,
		Actions:          []int{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 32, -1, -2, -3, -6},
		Features:         []PythiaFeature{FeaturePCDelta, FeatureDeltaPath},
		States:           4096,
		EQSize:           256,
		Seed:             seed,
	}
}

// Pythia is a tabular-Q-learning delta prefetcher after Bera et al. (MICRO
// 2021), the reinforcement-learning baseline of §4.3 (ported to the LLC as
// in the paper). State is a vector of hashed program features, actions are
// prefetch offsets, and rewards flow from an evaluation queue that scores
// each issued prefetch as accurate or inaccurate once its fate is known.
// Epsilon-greedy exploration gives Pythia its characteristic
// aggressiveness — high coverage, and occasionally wasted bandwidth
// chasing hard-to-predict patterns (§5).
type Pythia struct {
	cfg PythiaConfig

	// q[f] is feature f's table: [state][action]. The Q-value of an
	// action is the sum across features.
	q [][][]float64

	eq     []pythiaEQEntry // evaluation queue (ring)
	eqHead int
	eqLen  int
	// pending maps a target block to its chain of EQ entries, linked
	// through pythiaEQEntry.next in FIFO (enqueue) order.
	pending *Table[int32]

	lastOffset *Table[int]    // page -> last offset
	deltaPath  *Table[[3]int] // page -> last three deltas
	rng        *rand.Rand

	curStates []int        // scratch: feature states of the current access
	cands     []pythiaCand // scratch: action candidates for selection
	advBuf    []uint64
}

type pythiaEQEntry struct {
	states []int // owned; copied from the current states on enqueue
	action int
	target uint64 // block; 0 target means no-prefetch action
	next   int32  // next EQ index in this target's pending chain, -1 = end
	live   bool
}

type pythiaCand struct {
	action int
	q      float64
}

// NewPythia returns a Pythia with the default configuration.
func NewPythia(seed int64) *Pythia { return NewPythiaWithConfig(DefaultPythiaConfig(seed)) }

// NewPythiaWithConfig returns a Pythia with an explicit configuration.
func NewPythiaWithConfig(cfg PythiaConfig) *Pythia {
	if cfg.States <= 0 {
		cfg.States = 4096
	}
	if cfg.EQSize <= 0 {
		cfg.EQSize = 256
	}
	if len(cfg.Actions) == 0 {
		cfg.Actions = DefaultPythiaConfig(cfg.Seed).Actions
	}
	if len(cfg.Features) == 0 {
		cfg.Features = []PythiaFeature{FeaturePCDelta}
	}
	p := &Pythia{
		cfg:        cfg,
		eq:         make([]pythiaEQEntry, cfg.EQSize),
		pending:    NewTable[int32](cfg.EQSize),
		lastOffset: NewTable[int](4096),
		deltaPath:  NewTable[[3]int](4096),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		curStates:  make([]int, len(cfg.Features)),
		cands:      make([]pythiaCand, len(cfg.Actions)),
	}
	for i := range p.eq {
		p.eq[i].states = make([]int, len(cfg.Features))
	}
	p.q = make([][][]float64, len(cfg.Features))
	for f := range p.q {
		p.q[f] = make([][]float64, cfg.States)
		for s := range p.q[f] {
			p.q[f][s] = make([]float64, len(cfg.Actions))
		}
	}
	return p
}

// Name implements Prefetcher.
func (p *Pythia) Name() string { return "Pythia" }

// states hashes the current program context through every feature into the
// reused curStates scratch.
func (p *Pythia) states(pc uint64, delta int, offset int, path [3]int) []int {
	out := p.curStates
	for i, f := range p.cfg.Features {
		var h uint64
		switch f {
		case FeaturePCDelta:
			h = pc*0x9E3779B97F4A7C15 ^ uint64(uint32(delta))*0xBF58476D1CE4E5B9
		case FeaturePCOffset:
			h = pc*0x94D049BB133111EB ^ uint64(offset)*0x9E3779B97F4A7C15
		case FeatureDeltaPath:
			h = 0xCBF29CE484222325
			for _, d := range path {
				h = (h ^ uint64(uint32(d))) * 0x100000001B3
			}
		}
		out[i] = int(h % uint64(p.cfg.States))
	}
	return out
}

// qValue sums an action's Q across the feature tables.
func (p *Pythia) qValue(states []int, action int) float64 {
	v := 0.0
	for f, s := range states {
		v += p.q[f][s][action]
	}
	return v
}

func (p *Pythia) maxQ(states []int) float64 {
	best := p.qValue(states, 0)
	for a := 1; a < len(p.cfg.Actions); a++ {
		if v := p.qValue(states, a); v > best {
			best = v
		}
	}
	return best
}

// resolve applies a reward to an EQ entry: a Q update on every feature
// table, bootstrapping with the value of the current state.
func (p *Pythia) resolve(idx int, reward float64, curStates []int) {
	e := &p.eq[idx]
	if !e.live {
		return
	}
	e.live = false
	target := reward + p.cfg.Gamma*p.maxQ(curStates)
	// The TD error is against the summed Q; spread the update evenly
	// across feature tables (Pythia's QVStore update).
	cur := p.qValue(e.states, e.action)
	step := p.cfg.Alpha * (target - cur) / float64(len(e.states))
	for f, s := range e.states {
		p.q[f][s][e.action] += step
	}
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (p *Pythia) Advise(a trace.Access, budget int) []uint64 {
	block := a.Block()
	page := a.Page()
	off := a.Offset()

	delta := 0
	if prev := p.lastOffset.Get(page); prev != nil {
		delta = off - *prev
	}
	var path [3]int
	if pp := p.deltaPath.Get(page); pp != nil {
		path = *pp
	}
	if p.lastOffset.Len() > 1<<16 {
		p.lastOffset.Reset() // cheap bound on the feature tables
		p.deltaPath.Reset()
	}
	lo, _ := p.lastOffset.Insert(page)
	*lo = off
	if delta != 0 {
		path[0], path[1], path[2] = path[1], path[2], delta
		dp, _ := p.deltaPath.Insert(page)
		*dp = path
	}

	s := p.states(a.PC, delta, off, path)

	// Reward any outstanding prefetch that predicted this demand, in
	// enqueue order.
	if head := p.pending.Get(block); head != nil {
		for idx := *head; idx >= 0; idx = p.eq[idx].next {
			p.resolve(int(idx), p.cfg.RewardAccurate, s)
		}
		p.pending.Delete(block)
	}

	// Choose up to budget actions: the top-Q actions, with epsilon-greedy
	// exploration.
	cands := p.cands[:0]
	for i := range p.cfg.Actions {
		cands = append(cands, pythiaCand{i, p.qValue(s, i)})
	}
	for i := 0; i < budget && i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].q > cands[best].q {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}

	out := p.advBuf[:0]
	for i := 0; i < budget && i < len(cands); i++ {
		actIdx := cands[i].action
		if p.rng.Float64() < p.cfg.Epsilon {
			actIdx = p.rng.Intn(len(p.cfg.Actions))
		}
		offset := p.cfg.Actions[actIdx]
		target := uint64(0)
		if offset != 0 {
			t := int64(block) + int64(offset)
			if t > 0 {
				target = uint64(t)
			}
		}
		p.enqueue(s, actIdx, target)
		if target != 0 {
			out = append(out, trace.BlockAddr(target))
		}
	}
	p.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// enqueue pushes an action outcome tracker, resolving the entry it evicts.
func (p *Pythia) enqueue(states []int, action int, target uint64) {
	if p.eqLen == len(p.eq) {
		idx := p.eqHead
		e := &p.eq[idx]
		if e.live {
			reward := p.cfg.RewardInaccurate
			if e.target == 0 {
				reward = p.cfg.RewardNoPrefetch
			}
			p.resolve(idx, reward, states)
			if e.target != 0 {
				p.removePending(e.target, int32(idx))
			}
		}
		p.eqHead = (p.eqHead + 1) % len(p.eq)
		p.eqLen--
	}
	idx := (p.eqHead + p.eqLen) % len(p.eq)
	e := &p.eq[idx]
	copy(e.states, states)
	e.action = action
	e.target = target
	e.next = -1
	e.live = true
	p.eqLen++
	if target != 0 {
		// Append at the chain tail so demand resolution sees entries in
		// enqueue order. Chains are short (same block suggested more than
		// once within the EQ window), so the walk is cheap.
		head, existed := p.pending.Insert(target)
		if !existed {
			*head = int32(idx)
			return
		}
		tail := *head
		for p.eq[tail].next >= 0 {
			tail = p.eq[tail].next
		}
		p.eq[tail].next = int32(idx)
	}
}

// removePending unlinks an evicted EQ entry from its target's chain.
func (p *Pythia) removePending(target uint64, idx int32) {
	head := p.pending.Get(target)
	if head == nil {
		return
	}
	if *head == idx {
		if next := p.eq[idx].next; next >= 0 {
			*head = next
		} else {
			p.pending.Delete(target)
		}
		return
	}
	for cur := *head; ; cur = p.eq[cur].next {
		next := p.eq[cur].next
		if next < 0 {
			return
		}
		if next == idx {
			p.eq[cur].next = p.eq[idx].next
			return
		}
	}
}
