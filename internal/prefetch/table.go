package prefetch

// Table is the flat, open-addressed hash table behind every bounded
// metadata structure in this package. The prefetchers used to keep their
// state in Go maps, which dominated the Advise hot path (hash interface
// calls, bucket chasing, one heap allocation per entry); a Table stores
// keys and values in power-of-two flat slices probed linearly from a
// Fibonacci-hashed home slot, so a lookup is a multiply, a shift and a
// short scan, and values live inline with no per-entry allocation.
//
// Semantics match a map[uint64]V of pointers closely enough that the
// conversions are behavior-preserving:
//
//   - Get returns a *V that is valid until the next Insert (which may grow
//     the table) or Delete (which compacts by backward shift). Every
//     converted prefetcher mutates the entry within the same Advise call.
//   - Delete uses backward-shift compaction, not tombstones, so probe
//     chains never contain dead slots and load factor alone bounds probe
//     length.
//   - Reset invalidates every entry in O(1) by bumping a generation
//     counter; the backing arrays are reused (this replaces the
//     delete-everything / re-make idiom).
//   - Range visits entries in slot order — deterministic for a given
//     insertion history, unlike map iteration. LRU eviction scans
//     (min-stamp with strict <), which the prefetchers already did over
//     their maps; unique stamps make the victim identical.
//
// The zero value is an empty, growable table; NewTable pre-sizes one.
type Table[V any] struct {
	keys []uint64
	vals []V
	gens []uint32 // slot live iff gens[i] == gen
	gen  uint32
	mask uint64
	n    int
}

// NewTable returns a table pre-sized so that capacity entries fit below
// the growth load factor.
func NewTable[V any](capacity int) *Table[V] {
	t := &Table[V]{}
	slots := 8
	for slots*3 < capacity*4 { // slots >= capacity * 4/3 keeps load <= 3/4
		slots <<= 1
	}
	t.init(slots)
	return t
}

func (t *Table[V]) init(slots int) {
	t.keys = make([]uint64, slots)
	t.vals = make([]V, slots)
	t.gens = make([]uint32, slots)
	t.gen = 1
	t.mask = uint64(slots - 1)
	t.n = 0
}

// Len reports the number of live entries.
func (t *Table[V]) Len() int { return t.n }

// Reset discards every entry in O(1), keeping the backing arrays.
func (t *Table[V]) Reset() {
	if t.keys == nil {
		return
	}
	t.gen++
	if t.gen == 0 { // generation wrap: scrub and restart
		clear(t.gens)
		t.gen = 1
	}
	t.n = 0
}

// home is the Fibonacci-hashed preferred slot of a key.
func (t *Table[V]) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// find returns the slot holding key, or -1.
func (t *Table[V]) find(key uint64) int {
	if t.n == 0 {
		return -1
	}
	for i := t.home(key); ; i = (i + 1) & t.mask {
		if t.gens[i] != t.gen {
			return -1
		}
		if t.keys[i] == key {
			return int(i)
		}
	}
}

// Get returns a pointer to key's value, or nil. The pointer is valid until
// the next Insert or Delete.
func (t *Table[V]) Get(key uint64) *V {
	i := t.find(key)
	if i < 0 {
		return nil
	}
	return &t.vals[i]
}

// Insert returns a pointer to key's value, creating a zero-valued entry if
// absent; existed reports which. The pointer is valid until the next
// Insert or Delete.
func (t *Table[V]) Insert(key uint64) (v *V, existed bool) {
	if t.keys == nil {
		t.init(8)
	}
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	i := t.home(key)
	for ; t.gens[i] == t.gen; i = (i + 1) & t.mask {
		if t.keys[i] == key {
			return &t.vals[i], true
		}
	}
	t.keys[i] = key
	var zero V
	t.vals[i] = zero
	t.gens[i] = t.gen
	t.n++
	return &t.vals[i], false
}

// Delete removes key, reporting whether it was present. Compaction is by
// backward shift, so no tombstones accumulate.
func (t *Table[V]) Delete(key uint64) bool {
	i := t.find(key)
	if i < 0 {
		return false
	}
	t.n--
	j := uint64(i)
	for {
		t.gens[j] = 0
		k := j
		for {
			k = (k + 1) & t.mask
			if t.gens[k] != t.gen {
				return true
			}
			home := t.home(t.keys[k])
			// The entry at k may fill the hole at j only if j lies within
			// its probe path [home, k].
			if (k-home)&t.mask >= (k-j)&t.mask {
				break
			}
		}
		t.keys[j] = t.keys[k]
		t.vals[j] = t.vals[k]
		t.gens[j] = t.gen
		j = k
	}
}

// Range calls fn for every live entry in slot order until fn returns
// false. fn may mutate the value through the pointer but must not Insert
// or Delete.
func (t *Table[V]) Range(fn func(key uint64, v *V) bool) {
	if t.n == 0 {
		return
	}
	for i := range t.keys {
		if t.gens[i] == t.gen && !fn(t.keys[i], &t.vals[i]) {
			return
		}
	}
}

// DeleteIf removes every entry for which fn returns true. It rebuilds the
// table in place (entries are re-sunk into their probe positions), so it
// costs one pass over the slots plus reinsertion of the survivors.
func (t *Table[V]) DeleteIf(fn func(key uint64, v *V) bool) {
	if t.n == 0 {
		return
	}
	for i := range t.keys {
		// Deleting re-tests slot i: backward shift may pull another entry
		// into the hole. Shifts only move entries toward lower probe
		// distance, so nothing not-yet-visited ever escapes the sweep.
		for t.gens[i] == t.gen && fn(t.keys[i], &t.vals[i]) {
			t.Delete(t.keys[i])
		}
	}
}

// grow doubles the slot count and rehashes the live entries.
func (t *Table[V]) grow() {
	oldKeys, oldVals, oldGens, oldGen := t.keys, t.vals, t.gens, t.gen
	t.init(len(oldKeys) * 2)
	n := 0
	for i := range oldKeys {
		if oldGens[i] != oldGen {
			continue
		}
		j := t.home(oldKeys[i])
		for t.gens[j] == t.gen {
			j = (j + 1) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.vals[j] = oldVals[i]
		t.gens[j] = t.gen
		n++
	}
	t.n = n
}
