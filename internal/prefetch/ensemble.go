package prefetch

import (
	"strings"

	"pathfinder/internal/trace"
)

// Ensemble combines prefetchers with a fixed priority: the first member's
// suggestions are taken first and later members fill whatever budget
// remains (§3.4 "Ensemble of Prefetchers", §5). The paper's best design
// point is Ensemble{PATHFINDER, NextLine, SISB}. Every member observes
// every access (so each keeps learning) even when its suggestions are not
// used.
type Ensemble struct {
	// Members are consulted in priority order.
	Members []Prefetcher
	// Label overrides the derived name when non-empty.
	Label string

	advBuf []uint64
}

// NewEnsemble builds an ensemble over the given members.
func NewEnsemble(members ...Prefetcher) *Ensemble {
	return &Ensemble{Members: members}
}

// Name implements Prefetcher; it joins the member names unless a Label is
// set.
func (e *Ensemble) Name() string {
	if e.Label != "" {
		return e.Label
	}
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Name()
	}
	return strings.Join(names, "+")
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (e *Ensemble) Advise(a trace.Access, budget int) []uint64 {
	out := e.advBuf[:0]
	for _, m := range e.Members {
		remaining := budget - len(out)
		sugg := m.Advise(a, budget) // members always observe the access
		if remaining <= 0 {
			continue
		}
	suggest:
		for _, addr := range sugg {
			blockAddr := addr &^ (trace.BlockBytes - 1)
			// Budgets are tiny (typically 2), so a linear scan of the
			// accepted set beats a dedup map.
			for _, have := range out {
				if have == blockAddr {
					continue suggest
				}
			}
			out = append(out, blockAddr)
			if len(out) == budget {
				break
			}
		}
	}
	e.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}
