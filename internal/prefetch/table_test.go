package prefetch

import (
	"math/rand"
	"testing"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable[int](4)
	if tb.Len() != 0 {
		t.Fatalf("fresh table Len = %d", tb.Len())
	}
	v, existed := tb.Insert(42)
	if existed || v == nil || *v != 0 {
		t.Fatalf("first Insert: existed=%v v=%v", existed, v)
	}
	*v = 7
	if got := tb.Get(42); got == nil || *got != 7 {
		t.Fatalf("Get(42) = %v, want 7", got)
	}
	if got := tb.Get(43); got != nil {
		t.Fatalf("Get(43) = %v, want nil", got)
	}
	v2, existed := tb.Insert(42)
	if !existed || *v2 != 7 {
		t.Fatalf("re-Insert: existed=%v v=%d", existed, *v2)
	}
	if !tb.Delete(42) || tb.Delete(42) {
		t.Fatal("Delete semantics wrong")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
}

func TestTableZeroValue(t *testing.T) {
	var tb Table[uint64]
	if tb.Get(1) != nil || tb.Delete(1) || tb.Len() != 0 {
		t.Fatal("zero-value table not empty")
	}
	tb.Reset() // must not panic
	for i := uint64(0); i < 100; i++ {
		v, _ := tb.Insert(i)
		*v = i * 10
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d after 100 inserts", tb.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if v := tb.Get(i); v == nil || *v != i*10 {
			t.Fatalf("Get(%d) = %v", i, v)
		}
	}
}

func TestTableZeroKey(t *testing.T) {
	tb := NewTable[string](8)
	v, _ := tb.Insert(0)
	*v = "zero"
	if got := tb.Get(0); got == nil || *got != "zero" {
		t.Fatalf("key 0 not stored: %v", got)
	}
	if !tb.Delete(0) {
		t.Fatal("key 0 not deleted")
	}
}

func TestTableReset(t *testing.T) {
	tb := NewTable[int](16)
	for i := uint64(0); i < 16; i++ {
		tb.Insert(i)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	for i := uint64(0); i < 16; i++ {
		if tb.Get(i) != nil {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	// The table is immediately reusable.
	v, existed := tb.Insert(3)
	if existed {
		t.Fatal("entry resurrected after Reset")
	}
	*v = 9
	if got := tb.Get(3); got == nil || *got != 9 {
		t.Fatal("insert after Reset failed")
	}
}

func TestTableRangeDeterministic(t *testing.T) {
	build := func() *Table[int] {
		tb := NewTable[int](64)
		for i := uint64(0); i < 64; i++ {
			v, _ := tb.Insert(i * 2654435761)
			*v = int(i)
		}
		return tb
	}
	collect := func(tb *Table[int]) []uint64 {
		var keys []uint64
		tb.Range(func(k uint64, _ *int) bool { keys = append(keys, k); return true })
		return keys
	}
	a, b := collect(build()), collect(build())
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("Range visited %d/%d entries, want 64", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Range order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTableDeleteIf(t *testing.T) {
	tb := NewTable[uint64](128)
	for i := uint64(0); i < 128; i++ {
		v, _ := tb.Insert(i)
		*v = i
	}
	tb.DeleteIf(func(k uint64, _ *uint64) bool { return k%3 == 0 })
	want := 0
	for i := uint64(0); i < 128; i++ {
		if i%3 == 0 {
			if tb.Get(i) != nil {
				t.Fatalf("key %d not deleted", i)
			}
		} else {
			want++
			if v := tb.Get(i); v == nil || *v != i {
				t.Fatalf("survivor %d lost: %v", i, v)
			}
		}
	}
	if tb.Len() != want {
		t.Fatalf("Len = %d, want %d", tb.Len(), want)
	}
}

// TestTableVsMap drives the table and a reference map through a long
// random schedule of inserts, deletes, resets and lookups, checking
// equivalence throughout.
func TestTableVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := NewTable[uint64](4) // small, to force repeated growth
	ref := map[uint64]uint64{}
	const keySpace = 512
	for op := 0; op < 200_000; op++ {
		k := uint64(rng.Intn(keySpace)) * 0x9E3779B9 // clustered hashes
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v, existed := tb.Insert(k)
			_, refExisted := ref[k]
			if existed != refExisted {
				t.Fatalf("op %d: Insert(%d) existed=%v, map says %v", op, k, existed, refExisted)
			}
			*v = uint64(op)
			ref[k] = uint64(op)
		case 4, 5:
			_, refHad := ref[k]
			if tb.Delete(k) != refHad {
				t.Fatalf("op %d: Delete(%d) mismatch", op, k)
			}
			delete(ref, k)
		case 6:
			if op%997 == 0 {
				tb.Reset()
				ref = map[uint64]uint64{}
			}
		default:
			v := tb.Get(k)
			refV, refOk := ref[k]
			if (v != nil) != refOk {
				t.Fatalf("op %d: Get(%d) presence mismatch (table %v, map %v)", op, k, v != nil, refOk)
			}
			if v != nil && *v != refV {
				t.Fatalf("op %d: Get(%d) = %d, map has %d", op, k, *v, refV)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != map len %d", op, tb.Len(), len(ref))
		}
	}
	// Full sweep at the end.
	seen := 0
	tb.Range(func(k uint64, v *uint64) bool {
		seen++
		if refV, ok := ref[k]; !ok || refV != *v {
			t.Fatalf("Range found (%d,%d), map has (%d,%v)", k, *v, refV, ok)
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries, map holds %d", seen, len(ref))
	}
}

func TestTableDeleteBackwardShiftWrap(t *testing.T) {
	// Force a probe chain across the slot-array wrap boundary, then delete
	// through it: every survivor must stay reachable.
	tb := NewTable[int](8) // 16 slots
	// Insert keys that all hash near the top of the slot array by brute
	// force: find keys whose home slot is >= 13.
	var keys []uint64
	for k := uint64(1); len(keys) < 6; k++ {
		if (k*0x9E3779B97F4A7C15)>>32&15 >= 13 {
			keys = append(keys, k)
		}
	}
	for i, k := range keys {
		v, _ := tb.Insert(k)
		*v = i
	}
	tb.Delete(keys[0])
	tb.Delete(keys[2])
	for i, k := range keys {
		if i == 0 || i == 2 {
			if tb.Get(k) != nil {
				t.Fatalf("deleted key %d still present", k)
			}
			continue
		}
		if v := tb.Get(k); v == nil || *v != i {
			t.Fatalf("key %d lost after wrap-around deletes (got %v)", k, v)
		}
	}
}
