package prefetch

import "pathfinder/internal/trace"

// VLDP is the Variable Length Delta Prefetcher (Shevgoor et al., MICRO
// 2015), cited in §2.1 as the complex end of the delta-correlation
// spectrum. Per page it keeps a short delta history; a cascade of delta
// prediction tables — keyed by the last one, two, and three deltas — votes
// on the next delta, with longer-history tables taking precedence (the
// TAGE-like structure the paper mentions). Predictions chain for
// multi-degree prefetching.
type VLDP struct {
	dhb    *Table[vldpPage] // delta history buffer: page -> history
	dhbCap int
	clock  uint64

	advBuf []uint64

	// dpt[k] maps a key of (k+1) recent deltas to the predicted next
	// delta with a 2-bit confidence.
	dpt [3]*Table[vldpPred]
}

type vldpPage struct {
	lastOffset int
	deltas     [3]int // most recent last
	n          int
	lastUse    uint64
}

type vldpPred struct {
	delta int
	conf  int
}

// NewVLDP returns a VLDP with a 128-page history buffer and three
// prediction tables.
func NewVLDP() *VLDP {
	v := &VLDP{dhb: NewTable[vldpPage](128), dhbCap: 128}
	for i := range v.dpt {
		v.dpt[i] = NewTable[vldpPred](1024)
	}
	return v
}

// Name implements Prefetcher.
func (v *VLDP) Name() string { return "VLDP" }

// vldpKey packs the most recent k+1 deltas (deltas[2] is the newest) into
// a table key, tagged with the history length so tables never alias.
func vldpKey(deltas [3]int, k int) uint64 {
	key := uint64(k+1) << 60
	for i := 0; i <= k; i++ {
		key = key*131 + uint64(uint8(int8(deltas[2-k+i])))
	}
	return key
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (v *VLDP) Advise(a trace.Access, budget int) []uint64 {
	v.clock++
	page := a.Page()
	off := a.Offset()
	p := v.dhb.Get(page)
	if p == nil {
		if v.dhb.Len() >= v.dhbCap {
			v.evictLRU()
		}
		p, _ = v.dhb.Insert(page)
		*p = vldpPage{lastOffset: off, lastUse: v.clock}
		return nil
	}
	p.lastUse = v.clock
	delta := off - p.lastOffset
	p.lastOffset = off
	if delta == 0 {
		return nil
	}

	// Train: every table whose key was available predicts `delta`.
	for k := 0; k < 3 && k < p.n; k++ {
		key := vldpKey(p.deltas, k)
		e, existed := v.dpt[k].Insert(key)
		if !existed {
			*e = vldpPred{delta: delta, conf: 1}
			continue
		}
		if e.delta == delta {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.conf--
			if e.conf <= 0 {
				e.delta = delta
				e.conf = 1
			}
		}
	}

	// Shift the new delta into the history.
	p.deltas[0], p.deltas[1], p.deltas[2] = p.deltas[1], p.deltas[2], delta
	if p.n < 3 {
		p.n++
	}

	// Predict by chaining: at each hop, the longest-history table with a
	// confident entry wins.
	out := v.advBuf[:0]
	hist := p.deltas
	n := p.n
	cur := off
	for len(out) < budget {
		pred, ok := v.lookup(hist, n)
		if !ok {
			break
		}
		cur += pred
		if cur < 0 || cur >= trace.BlocksPerPage {
			break
		}
		out = append(out, trace.BlockAddr(page*trace.BlocksPerPage+uint64(cur)))
		hist[0], hist[1], hist[2] = hist[1], hist[2], pred
		if n < 3 {
			n++
		}
	}
	v.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// lookup returns the most-confident next delta for a history, preferring
// longer-history tables.
func (v *VLDP) lookup(deltas [3]int, n int) (int, bool) {
	for k := min3(n, 3) - 1; k >= 0; k-- {
		key := vldpKey(deltas, k)
		if e := v.dpt[k].Get(key); e != nil && e.conf >= 2 {
			return e.delta, true
		}
	}
	return 0, false
}

func min3(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (v *VLDP) evictLRU() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	v.dhb.Range(func(pg uint64, e *vldpPage) bool {
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = pg
		}
		return true
	})
	v.dhb.Delete(victim)
}
