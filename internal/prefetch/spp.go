package prefetch

import "pathfinder/internal/trace"

// SPP is the Signature Path Prefetcher (Kim et al., MICRO 2016), the
// history-based delta baseline of §4.3. Per page it compresses the recent
// delta history into a signature; a pattern table maps signatures to delta
// candidates with confidence counters. On each access SPP walks the
// signature path speculatively, multiplying confidences, and issues
// prefetches only while the accumulated path confidence stays above a
// threshold — the adaptive selectivity that gives it the highest accuracy
// but lowest coverage in Figure 4/Table 6.
type SPP struct {
	sig *Table[sppPage] // page -> tracking entry
	// pattern is indexed directly by the 12-bit signature — the table is
	// exactly the 4096-entry SRAM structure of the paper, and a zero entry
	// (total == 0) behaves identically to an absent one.
	pattern []sppEntry
	sigCap  int

	advBuf []uint64

	// ConfidenceThreshold stops the lookahead walk: prefetches issue only
	// while the multiplied path confidence stays above it. The high
	// default gives SPP the paper's profile — the most selective
	// prefetcher, with the highest accuracy and the lowest coverage
	// (Figure 4b, Table 6).
	ConfidenceThreshold float64
	// MaxLookahead bounds the speculative path walk.
	MaxLookahead int

	clock uint64
}

type sppPage struct {
	lastOffset int
	signature  uint16
	lastUse    uint64
}

type sppEntry struct {
	deltas [4]int
	counts [4]uint8
	total  uint8
}

// NewSPP returns an SPP with the standard configuration.
func NewSPP() *SPP {
	return &SPP{
		sig:                 NewTable[sppPage](4096),
		pattern:             make([]sppEntry, 1<<12),
		sigCap:              4096,
		ConfidenceThreshold: 0.5,
		MaxLookahead:        8,
	}
}

// Name implements Prefetcher.
func (s *SPP) Name() string { return "SPP" }

// sppSignature folds a delta into a 12-bit signature, as in the paper:
// sig' = (sig << 3) XOR delta.
func sppSignature(sig uint16, delta int) uint16 {
	return ((sig << 3) ^ uint16(delta&0x3f)) & 0xfff
}

func (e *sppEntry) update(delta int) {
	for i, d := range e.deltas {
		if e.counts[i] > 0 && d == delta {
			if e.counts[i] < 255 {
				e.counts[i]++
			}
			if e.total < 255 {
				e.total++
			}
			return
		}
	}
	// Replace the weakest slot.
	weakest := 0
	for i := range e.counts {
		if e.counts[i] < e.counts[weakest] {
			weakest = i
		}
	}
	e.deltas[weakest] = delta
	e.counts[weakest] = 1
	if e.total < 255 {
		e.total++
	}
}

// bestDelta returns the most confident delta and its confidence.
func (e *sppEntry) bestDelta() (int, float64) {
	best := -1
	for i := range e.counts {
		if e.counts[i] > 0 && (best < 0 || e.counts[i] > e.counts[best]) {
			best = i
		}
	}
	if best < 0 || e.total == 0 {
		return 0, 0
	}
	return e.deltas[best], float64(e.counts[best]) / float64(e.total)
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (s *SPP) Advise(a trace.Access, budget int) []uint64 {
	s.clock++
	page := a.Page()
	off := a.Offset()

	st := s.sig.Get(page)
	if st == nil {
		if s.sig.Len() >= s.sigCap {
			s.evictOldest()
		}
		st, _ = s.sig.Insert(page)
		*st = sppPage{lastOffset: off, lastUse: s.clock}
		return nil
	}
	st.lastUse = s.clock
	delta := off - st.lastOffset
	if delta != 0 {
		// Learn: the previous signature led to this delta.
		s.pattern[st.signature].update(delta)
		st.signature = sppSignature(st.signature, delta)
		st.lastOffset = off
	}

	// Lookahead: walk the signature path while confidence holds.
	out := s.advBuf[:0]
	conf := 1.0
	sig := st.signature
	curOff := off
	for hop := 0; hop < s.MaxLookahead && len(out) < budget; hop++ {
		e := &s.pattern[sig]
		if e.total == 0 {
			break
		}
		d, c := e.bestDelta()
		conf *= c
		if conf < s.ConfidenceThreshold {
			break
		}
		curOff += d
		if curOff < 0 || curOff >= trace.BlocksPerPage {
			break
		}
		out = append(out, trace.BlockAddr(page*trace.BlocksPerPage+uint64(curOff)))
		sig = sppSignature(sig, d)
	}
	s.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

func (s *SPP) evictOldest() {
	var oldestPage uint64
	var oldest uint64 = ^uint64(0)
	s.sig.Range(func(p uint64, st *sppPage) bool {
		if st.lastUse < oldest {
			oldest = st.lastUse
			oldestPage = p
		}
		return true
	})
	s.sig.Delete(oldestPage)
}
