package prefetch

import (
	"testing"

	"pathfinder/internal/trace"
)

func TestStrideLearnsPCStride(t *testing.T) {
	p := NewStride()
	// PC 1 strides by 4 blocks; PC 2 strides by 7. Predictions must not mix.
	// Advise results are valid only until the next call, so copy got1.
	var got1, got2 []uint64
	for i := uint64(0); i < 20; i++ {
		got1 = append(got1[:0], p.Advise(acc(2*i+1, 1, 100+4*i), 2)...)
		got2 = p.Advise(acc(2*i+2, 2, 5000+7*i), 2)
	}
	if len(got1) != 2 || got1[0] != trace.BlockAddr(100+4*19+4) || got1[1] != trace.BlockAddr(100+4*19+8) {
		t.Errorf("PC1 suggestions %v", got1)
	}
	if len(got2) != 2 || got2[0] != trace.BlockAddr(5000+7*19+7) {
		t.Errorf("PC2 suggestions %v", got2)
	}
}

func TestStrideNeedsConfidence(t *testing.T) {
	p := NewStride()
	p.Advise(acc(1, 1, 100), 2) // allocate
	got := p.Advise(acc(2, 1, 104), 2)
	if got != nil {
		t.Errorf("prefetched after a single stride observation: %v", got)
	}
	p.Advise(acc(3, 1, 108), 2)
	if got = p.Advise(acc(4, 1, 112), 2); len(got) == 0 {
		t.Error("no prefetch after confirmed stride")
	}
}

func TestStrideSilentOnNoise(t *testing.T) {
	p := NewStride()
	issued := 0
	for i := uint64(0); i < 1000; i++ {
		issued += len(p.Advise(acc(i+1, 1, (i*i*2654435761)%(1<<24)), 2))
	}
	if issued > 50 {
		t.Errorf("stride issued %d prefetches on noise", issued)
	}
}

func TestStrideTableEviction(t *testing.T) {
	p := NewStride()
	p.cap = 4
	for pc := uint64(0); pc < 20; pc++ {
		p.Advise(acc(pc+1, pc, pc*100), 2)
	}
	if p.table.Len() > 4 {
		t.Errorf("table grew to %d entries, cap 4", p.table.Len())
	}
}

func TestVLDPLearnsDeltaSequence(t *testing.T) {
	p := NewVLDP()
	// Pattern {1, 2, 3} within pages.
	var got []uint64
	off, page := 0, uint64(0)
	pat := []int{1, 2, 3}
	for i := 0; i < 2000; i++ {
		d := pat[i%3]
		if off+d >= trace.BlocksPerPage {
			page++
			off = 0
		} else {
			off += d
		}
		got = p.Advise(trace.Access{ID: uint64(i + 1), PC: 1, Addr: page*trace.PageBytes + uint64(off)*trace.BlockBytes}, 2)
	}
	if len(got) == 0 {
		t.Fatal("VLDP issued nothing on a repeating delta pattern")
	}
	// Predictions chain: after seeing ... the next two pattern deltas.
	next := off + pat[2000%3]
	if int64(got[0]) != int64(page*trace.PageBytes)+int64(next)*trace.BlockBytes {
		t.Errorf("first suggestion %#x, want offset %d on page %d", got[0], next, page)
	}
}

func TestVLDPPrefersLongerHistory(t *testing.T) {
	p := NewVLDP()
	// Two contexts ending in delta 2: {1,2}->5 and {3,2}->7. A
	// single-delta table cannot separate them; the two-delta table can.
	page := uint64(0)
	feed := func(offs ...int) {
		for i, o := range offs {
			p.Advise(trace.Access{ID: p.clock + uint64(i) + 1, PC: 1, Addr: page*trace.PageBytes + uint64(o)*trace.BlockBytes}, 2)
		}
		page++
	}
	for i := 0; i < 30; i++ {
		feed(0, 1, 3, 8)  // deltas 1,2 -> 5
		feed(0, 3, 5, 12) // deltas 3,2 -> 7
	}
	// Query context {1,2}: expect +5 to be the top suggestion.
	got := func() []uint64 {
		var out []uint64
		for i, o := range []int{0, 1, 3} {
			out = p.Advise(trace.Access{ID: p.clock + uint64(i) + 1, PC: 1, Addr: page*trace.PageBytes + uint64(o)*trace.BlockBytes}, 2)
		}
		return out
	}()
	if len(got) == 0 {
		t.Fatal("no suggestion for trained context")
	}
	if got[0] != trace.BlockAddr(page*trace.BlocksPerPage+8) {
		t.Errorf("context {1,2} suggested %#x, want offset 8", got[0])
	}
}

func TestSMSLearnsFootprint(t *testing.T) {
	p := NewSMS()
	p.ActiveCap = 1 // force generations to end as soon as a new page triggers
	// Region footprint: trigger at offset 4 (PC 9), then touches at 6, 10, 20.
	touch := func(page uint64, off int) []uint64 {
		return p.Advise(trace.Access{ID: p.clock + 1, PC: 9, Addr: page*trace.PageBytes + uint64(off)*trace.BlockBytes}, 4)
	}
	for page := uint64(0); page < 4; page++ {
		touch(page, 4)
		touch(page, 6)
		touch(page, 10)
		touch(page, 20)
	}
	// New page, same trigger: the learned footprint should replay.
	got := touch(99, 4)
	if len(got) == 0 {
		t.Fatal("SMS replayed nothing for a learned trigger")
	}
	want := map[uint64]bool{
		trace.BlockAddr(99*trace.BlocksPerPage + 6):  true,
		trace.BlockAddr(99*trace.BlocksPerPage + 10): true,
		trace.BlockAddr(99*trace.BlocksPerPage + 20): true,
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected suggestion %#x", g)
		}
	}
}

func TestSMSNearestFirst(t *testing.T) {
	p := NewSMS()
	p.ActiveCap = 1
	touch := func(page uint64, off int, budget int) []uint64 {
		return p.Advise(trace.Access{ID: p.clock + 1, PC: 9, Addr: page*trace.PageBytes + uint64(off)*trace.BlockBytes}, budget)
	}
	for page := uint64(0); page < 3; page++ {
		touch(page, 10, 4)
		touch(page, 12, 4)
		touch(page, 40, 4)
	}
	got := touch(50, 10, 1)
	if len(got) != 1 || got[0] != trace.BlockAddr(50*trace.BlocksPerPage+12) {
		t.Errorf("budget-1 replay = %v, want nearest block (offset 12)", got)
	}
}

func TestDynamicEnsembleLearnsBestMember(t *testing.T) {
	// Member A (next-line) is right on a sequential stream; member B
	// (fixed junk) never is. The dynamic ensemble should rank A first.
	junk := &fixedPrefetcher{blocks: []uint64{1 << 40}}
	d := NewDynamicEnsemble(junk, &NextLine{})
	for i := uint64(0); i < 2000; i++ {
		d.Advise(acc(i+1, 1, 1000+i), 2)
	}
	s := d.Scores()
	if s[1] <= s[0] {
		t.Errorf("next-line score %.1f not above junk score %.1f", s[1], s[0])
	}
	// With the order learned, next-line's suggestion comes first.
	got := d.Advise(acc(9999, 1, 5000), 2)
	if len(got) == 0 || got[0] != trace.BlockAddr(5001) {
		t.Errorf("priority member not first: %v", got)
	}
}

func TestDynamicEnsembleName(t *testing.T) {
	d := NewDynamicEnsemble(&NextLine{}, NewSISB())
	if d.Name() != "Dyn[NextLine+SISB]" {
		t.Errorf("Name() = %q", d.Name())
	}
	d.Label = "custom"
	if d.Name() != "custom" {
		t.Errorf("labelled Name() = %q", d.Name())
	}
}

func TestDynamicEnsembleRespectsBudget(t *testing.T) {
	d := NewDynamicEnsemble(&NextLine{}, &NextLine{}, NewSISB())
	for i := uint64(0); i < 100; i++ {
		if got := d.Advise(acc(i+1, 1, i*3), 2); len(got) > 2 {
			t.Fatalf("budget exceeded: %v", got)
		}
	}
}

func TestDynamicEnsemblePendingBounded(t *testing.T) {
	d := NewDynamicEnsemble(&NextLine{})
	for i := uint64(0); i < 10_000; i++ {
		d.Advise(acc(i+1, 1, i*17%(1<<22)), 2)
	}
	if d.pending.Len() > 4*d.Window {
		t.Errorf("pending table grew to %d entries", d.pending.Len())
	}
}

func BenchmarkVLDP(b *testing.B) {
	p := NewVLDP()
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i*2%(1<<24))), 2)
	}
}

func BenchmarkSMS(b *testing.B) {
	p := NewSMS()
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i*3%(1<<24))), 2)
	}
}

func TestNextPagePredictsColdPage(t *testing.T) {
	p := NewNextPage()
	// PC 7 enters pages 10, 11, 12, ... always first touching offset 5.
	var got []uint64
	for i := uint64(0); i < 10; i++ {
		page := 10 + i
		got = p.Advise(trace.Access{ID: i + 1, PC: 7, Addr: page*trace.PageBytes + 5*trace.BlockBytes}, 2)
	}
	if len(got) == 0 {
		t.Fatal("NextPage predicted nothing after a stable page stride")
	}
	want := trace.BlockAddr(20*trace.BlocksPerPage + 5)
	if got[0] != want {
		t.Errorf("prediction %#x, want first block of next page %#x", got[0], want)
	}
}

func TestNextPageIgnoresWithinPage(t *testing.T) {
	p := NewNextPage()
	p.Advise(acc(1, 7, 640), 2) // page 10
	for i := uint64(2); i < 10; i++ {
		if got := p.Advise(trace.Access{ID: i, PC: 7, Addr: 10*trace.PageBytes + uint64(i)*trace.BlockBytes}, 2); got != nil {
			t.Fatalf("within-page access produced prediction %v", got)
		}
	}
}

func TestNextPageNeedsStableStride(t *testing.T) {
	p := NewNextPage()
	pages := []uint64{10, 25, 11, 90, 3} // no stable stride
	issued := 0
	for i, pg := range pages {
		issued += len(p.Advise(trace.Access{ID: uint64(i + 1), PC: 7, Addr: pg * trace.PageBytes}, 2))
	}
	if issued != 0 {
		t.Errorf("issued %d predictions without a stable page stride", issued)
	}
}

func TestISBLearnsTemporalChain(t *testing.T) {
	p := NewISB()
	chain := []uint64{100, 5000, 42, 77777, 9}
	for pass := 0; pass < 3; pass++ {
		for i, b := range chain {
			p.Advise(acc(uint64(pass*10+i+1), 1, b), 2)
		}
	}
	got := p.Advise(acc(100, 1, 100), 2)
	if len(got) != 2 || got[0] != trace.BlockAddr(5000) || got[1] != trace.BlockAddr(42) {
		t.Errorf("ISB chain replay = %v, want [5000<<6 42<<6]", got)
	}
}

func TestISBBoundedMetadata(t *testing.T) {
	p := NewISB()
	p.Cap = 64
	for i := uint64(0); i < 10_000; i++ {
		p.Advise(acc(i+1, 1, i), 2)
	}
	if p.ps.Len() > 64 || p.sp.Len() > 64+1 {
		t.Errorf("metadata grew beyond cap: ps=%d sp=%d", p.ps.Len(), p.sp.Len())
	}
}

func TestISBStructuralConsistency(t *testing.T) {
	// Invariant: ps and sp are inverse mappings.
	p := NewISB()
	for i := uint64(0); i < 3000; i++ {
		p.Advise(acc(i+1, i%4, (i*2654435761)%(1<<16)), 2)
	}
	p.ps.Range(func(phys uint64, e *isbMapping) bool {
		back := p.sp.Get(e.str)
		if back == nil || *back != phys {
			t.Fatalf("ps/sp inconsistent: phys %d -> str %d -> %v", phys, e.str, back)
		}
		return true
	})
	p.sp.Range(func(str uint64, physp *uint64) bool {
		fwd := p.ps.Get(*physp)
		if fwd == nil || fwd.str != str {
			t.Fatalf("sp/ps inconsistent: str %d -> phys %d -> %v", str, *physp, fwd)
		}
		return true
	})
}

func TestISBWeakerThanSISBWhenBounded(t *testing.T) {
	// With a tiny metadata budget, the realistic ISB covers less of a long
	// temporal loop than the idealized (unbounded) SISB.
	loop := make([]uint64, 2000)
	for i := range loop {
		loop[i] = uint64(i*2654435761) % (1 << 30)
	}
	run := func(p Prefetcher) int {
		hits := 0
		pending := map[uint64]bool{}
		id := uint64(0)
		for pass := 0; pass < 3; pass++ {
			for _, b := range loop {
				id++
				if pending[trace.BlockAddr(b)] {
					hits++
				}
				got := p.Advise(acc(id, 1, b), 2)
				pending = map[uint64]bool{}
				for _, g := range got {
					pending[g] = true
				}
			}
		}
		return hits
	}
	isb := NewISB()
	isb.Cap = 256 // far smaller than the loop
	bounded := run(isb)
	unbounded := run(NewSISB())
	if bounded >= unbounded {
		t.Errorf("bounded ISB hits %d >= idealized SISB hits %d", bounded, unbounded)
	}
	if unbounded < 3000 {
		t.Errorf("idealized SISB hits %d; expected near-full coverage after pass 1", unbounded)
	}
}

func TestPythiaConfigurable(t *testing.T) {
	cfg := DefaultPythiaConfig(3)
	cfg.Actions = []int{0, 1}
	cfg.Features = []PythiaFeature{FeaturePCOffset, FeatureDeltaPath}
	cfg.Epsilon = 0
	p := NewPythiaWithConfig(cfg)
	issued := 0
	for i := uint64(0); i < 3000; i++ {
		issued += len(p.Advise(acc(i+1, 1, 100+i), 2))
	}
	if issued == 0 {
		t.Error("configured Pythia never issued")
	}
}

func TestPythiaDefaultsFilled(t *testing.T) {
	p := NewPythiaWithConfig(PythiaConfig{Seed: 1})
	if len(p.cfg.Actions) == 0 || len(p.cfg.Features) == 0 || p.cfg.States == 0 {
		t.Errorf("defaults not filled: %+v", p.cfg)
	}
}

func TestThrottleSilencesInaccuratePrefetcher(t *testing.T) {
	junk := &fixedPrefetcher{blocks: []uint64{1 << 40}} // never right
	th := NewThrottle(junk)
	issued := 0
	for i := uint64(0); i < 4000; i++ {
		issued += len(th.Advise(acc(i+1, 1, i*3), 2))
	}
	level, log := th.Level()
	if level != 2 {
		t.Errorf("level = %d, want 2 (silenced); log %v", level, log)
	}
	// Only the first epoch-ish worth of junk should have escaped.
	if issued > 3*th.Epoch {
		t.Errorf("issued %d junk prefetches; throttle too permissive", issued)
	}
}

func TestThrottleKeepsAccuratePrefetcherOpen(t *testing.T) {
	th := NewThrottle(&NextLine{Degree: 1})
	issued := 0
	for i := uint64(0); i < 4000; i++ {
		issued += len(th.Advise(acc(i+1, 1, 1000+i), 2)) // pure sequential: NL is right
	}
	level, _ := th.Level()
	if level != 0 {
		t.Errorf("level = %d, want 0 (full budget)", level)
	}
	if issued < 3500 {
		t.Errorf("issued only %d; accurate prefetcher was throttled", issued)
	}
}

func TestThrottleName(t *testing.T) {
	if got := NewThrottle(&NextLine{}).Name(); got != "NextLine+FDP" {
		t.Errorf("Name() = %q", got)
	}
}

func TestThrottlePendingBounded(t *testing.T) {
	th := NewThrottle(&NextLine{})
	for i := uint64(0); i < 20_000; i++ {
		th.Advise(acc(i+1, 1, (i*2654435761)%(1<<24)), 2)
	}
	if th.pending.Len() > 4096 {
		t.Errorf("pending table grew to %d", th.pending.Len())
	}
}
