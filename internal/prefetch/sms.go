package prefetch

import "pathfinder/internal/trace"

// SMS is Spatial Memory Streaming (Somogyi et al., ISCA 2006), the spatial
// prefetcher family of §2.1: it learns which blocks of a spatial region are
// touched together, keyed by the (PC, trigger-offset) of the region's first
// access, and replays the whole footprint on the next trigger. Regions are
// pages here, matching the rest of the reproduction.
type SMS struct {
	// active tracks regions currently accumulating footprints
	// (accumulation generation table).
	active *Table[smsGeneration]
	// patterns is the pattern history table: trigger signature ->
	// footprint bitmask.
	patterns *Table[uint64]
	// ActiveCap and PatternCap bound the two tables.
	ActiveCap, PatternCap int
	clock                 uint64

	advBuf []uint64
}

type smsGeneration struct {
	signature uint64
	footprint uint64 // bit per block offset
	lastUse   uint64
}

// NewSMS returns an SMS with 64 active generations and a 4K-entry pattern
// table.
func NewSMS() *SMS {
	return &SMS{
		active:     NewTable[smsGeneration](64),
		patterns:   NewTable[uint64](4096),
		ActiveCap:  64,
		PatternCap: 4096,
	}
}

// Name implements Prefetcher.
func (s *SMS) Name() string { return "SMS" }

func smsSignature(pc uint64, offset int) uint64 {
	return pc<<6 | uint64(offset)
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (s *SMS) Advise(a trace.Access, budget int) []uint64 {
	s.clock++
	page := a.Page()
	off := a.Offset()

	if gen := s.active.Get(page); gen != nil {
		gen.footprint |= 1 << uint(off)
		gen.lastUse = s.clock
		return nil
	}

	// Trigger access: end the oldest generation if the table is full,
	// then start a new one.
	if s.active.Len() >= s.ActiveCap {
		s.endOldestGeneration()
	}
	sig := smsSignature(a.PC, off)
	gen, _ := s.active.Insert(page)
	*gen = smsGeneration{
		signature: sig,
		footprint: 1 << uint(off),
		lastUse:   s.clock,
	}

	// Replay the learned footprint for this trigger, nearest blocks
	// first.
	pat := s.patterns.Get(sig)
	if pat == nil {
		return nil
	}
	mask := *pat
	out := s.advBuf[:0]
	for dist := 1; dist < trace.BlocksPerPage && len(out) < budget; dist++ {
		for _, t := range [2]int{off + dist, off - dist} {
			if t < 0 || t >= trace.BlocksPerPage || len(out) == budget {
				continue
			}
			if mask&(1<<uint(t)) != 0 {
				out = append(out, trace.BlockAddr(page*trace.BlocksPerPage+uint64(t)))
			}
		}
	}
	s.advBuf = out
	return out
}

// endOldestGeneration commits the LRU active generation's footprint to the
// pattern table.
func (s *SMS) endOldestGeneration() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	s.active.Range(func(pg uint64, g *smsGeneration) bool {
		if g.lastUse < oldest {
			oldest = g.lastUse
			victim = pg
		}
		return true
	})
	g := *s.active.Get(victim)
	s.active.Delete(victim)
	if s.patterns.Len() >= s.PatternCap {
		// Cheap bound: clear rather than track LRU across 4K entries.
		s.patterns.Reset()
	}
	pat, _ := s.patterns.Insert(g.signature)
	*pat = g.footprint
}
