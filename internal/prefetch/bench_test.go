package prefetch

import (
	"fmt"
	"testing"

	"pathfinder/internal/trace"
)

// benchPrefetchers enumerates every prefetcher whose Advise path is pinned
// zero-alloc in steady state and benchmarked into BENCH_prefetch.json. The
// constructors run per benchmark/test, so iterations never share state.
func benchPrefetchers() []struct {
	name string
	make func() Prefetcher
} {
	return []struct {
		name string
		make func() Prefetcher
	}{
		{"NextLine", func() Prefetcher { return &NextLine{} }},
		{"Stride", func() Prefetcher { return NewStride() }},
		{"NextPage", func() Prefetcher { return NewNextPage() }},
		{"BestOffset", func() Prefetcher { return NewBestOffset() }},
		{"SPP", func() Prefetcher { return NewSPP() }},
		{"SMS", func() Prefetcher { return NewSMS() }},
		{"VLDP", func() Prefetcher { return NewVLDP() }},
		{"ISB", func() Prefetcher { return NewISB() }},
		{"SISB", func() Prefetcher { return NewSISB() }},
		{"Pythia", func() Prefetcher { return NewPythia(1) }},
		{"Throttle", func() Prefetcher { return NewThrottle(NewBestOffset()) }},
		{"Ensemble", func() Prefetcher { return NewEnsemble(NewStride(), NewNextPage()) }},
		{"Dynamic", func() Prefetcher { return NewDynamicEnsemble(NewStride(), NewBestOffset()) }},
	}
}

// benchAccesses is the shared Advise workload: a fixed working set mixing
// strided streams, page-local re-references, and pointer-chase-like jumps
// across a handful of PCs. The set is deliberately bounded (modular
// indices) so every prefetcher's tables reach their steady-state size
// during warmup and stop growing — the zero-alloc assertion depends on it.
func benchAccesses(n int) []trace.Access {
	accs := make([]trace.Access, n)
	for i := range accs {
		var addr uint64
		switch pc := i % 4; pc {
		case 0: // stride-3 stream over 1024 blocks
			addr = uint64(i/4%1024) * 3 * trace.BlockBytes
		case 1: // dense page-local walk over 64 pages
			addr = 1<<30 + uint64(i/4%64)*trace.PageBytes + uint64(i%64)*trace.BlockBytes
		case 2: // stride-17 stream over 512 blocks
			addr = 2<<30 + uint64(i/4%512)*17*trace.BlockBytes
		default: // scrambled jumps over 2048 blocks
			addr = 3<<30 + uint64(i*2654435761)%2048*trace.BlockBytes
		}
		accs[i] = trace.Access{ID: uint64(i+1) * 8, PC: 0x400000 + uint64(i%4)*4, Addr: addr}
	}
	return accs
}

// BenchmarkAdvise measures each prefetcher's per-access Advise cost over
// the shared workload, after one full pass of warmup so growable tables
// are at steady state. Recorded into BENCH_prefetch.json by
// `make bench-micro`.
func BenchmarkAdvise(b *testing.B) {
	accs := benchAccesses(4096)
	for _, bp := range benchPrefetchers() {
		b.Run(bp.name, func(b *testing.B) {
			p := bp.make()
			for _, a := range accs {
				p.Advise(a, Budget)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Advise(accs[i%len(accs)], Budget)
			}
		})
	}
}

// TestAdviseSteadyStateZeroAlloc pins the flat-table contract: once a
// prefetcher has seen its working set, Advise allocates nothing — no
// per-call result slices, no map growth, no scratch rebuilds.
func TestAdviseSteadyStateZeroAlloc(t *testing.T) {
	accs := benchAccesses(4096)
	for _, bp := range benchPrefetchers() {
		t.Run(bp.name, func(t *testing.T) {
			p := bp.make()
			// Warm until every table has absorbed the full working set and
			// periodic maintenance (decay, gc, epoch expiry) has fired.
			for round := 0; round < 4; round++ {
				for _, a := range accs {
					p.Advise(a, Budget)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(400, func() {
				p.Advise(accs[i%len(accs)], Budget)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: Advise allocates %.2f/op in steady state, want 0", bp.name, avg)
			}
		})
	}
}

// TestBenchAccessesDeterministic keeps the shared workload stable: the
// benchmark numbers in BENCH_prefetch.json are only comparable across
// commits if the workload never drifts.
func TestBenchAccessesDeterministic(t *testing.T) {
	const h0 = 14695981039346656037
	const prime = 1099511628211
	h := uint64(h0)
	for _, a := range benchAccesses(4096) {
		for _, v := range [3]uint64{a.ID, a.PC, a.Addr} {
			for s := 0; s < 64; s += 8 {
				h = (h ^ (v >> s & 0xff)) * prime
			}
		}
	}
	if got := fmt.Sprintf("%016x", h); got != "4b8dc562aea58cbe" {
		t.Errorf("benchAccesses drifted: fnv64 %s", got)
	}
}
