package prefetch

import "pathfinder/internal/trace"

// Stride is the classic per-PC (instruction-pointer) stride prefetcher of
// Baer & Chen (§2.1's strided-prefetcher family): a reference-prediction
// table tracks each load PC's last address and last stride, and prefetches
// ahead once the same stride repeats. It complements NextLine (which is
// PC-blind) and Best-Offset (which learns one global offset).
type Stride struct {
	table *Table[strideEntry]
	cap   int
	clock uint64

	advBuf []uint64

	// MinConfidence is how many consecutive identical strides are needed
	// before prefetching (classic value: 2).
	MinConfidence int
}

type strideEntry struct {
	lastBlock uint64
	stride    int64
	conf      int
	lastUse   uint64
}

// NewStride returns a stride prefetcher with a 256-entry table.
func NewStride() *Stride {
	return &Stride{
		table:         NewTable[strideEntry](256),
		cap:           256,
		MinConfidence: 2,
	}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "Stride" }

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (s *Stride) Advise(a trace.Access, budget int) []uint64 {
	s.clock++
	block := a.Block()
	e := s.table.Get(a.PC)
	if e == nil {
		if s.table.Len() >= s.cap {
			s.evictLRU()
		}
		e, _ = s.table.Insert(a.PC)
		*e = strideEntry{lastBlock: block, lastUse: s.clock}
		return nil
	}
	e.lastUse = s.clock
	stride := int64(block) - int64(e.lastBlock)
	e.lastBlock = block
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	if e.conf < s.MinConfidence {
		return nil
	}
	out := s.advBuf[:0]
	for i := 1; i <= budget; i++ {
		t := int64(block) + int64(i)*stride
		if t <= 0 {
			break
		}
		out = append(out, trace.BlockAddr(uint64(t)))
	}
	s.advBuf = out
	return out
}

func (s *Stride) evictLRU() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	s.table.Range(func(pc uint64, e *strideEntry) bool {
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = pc
		}
		return true
	})
	s.table.Delete(victim)
}
