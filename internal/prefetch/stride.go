package prefetch

import "pathfinder/internal/trace"

// Stride is the classic per-PC (instruction-pointer) stride prefetcher of
// Baer & Chen (§2.1's strided-prefetcher family): a reference-prediction
// table tracks each load PC's last address and last stride, and prefetches
// ahead once the same stride repeats. It complements NextLine (which is
// PC-blind) and Best-Offset (which learns one global offset).
type Stride struct {
	table map[uint64]*strideEntry
	cap   int
	clock uint64

	// MinConfidence is how many consecutive identical strides are needed
	// before prefetching (classic value: 2).
	MinConfidence int
}

type strideEntry struct {
	lastBlock uint64
	stride    int64
	conf      int
	lastUse   uint64
}

// NewStride returns a stride prefetcher with a 256-entry table.
func NewStride() *Stride {
	return &Stride{
		table:         make(map[uint64]*strideEntry),
		cap:           256,
		MinConfidence: 2,
	}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "Stride" }

// Advise implements Prefetcher.
func (s *Stride) Advise(a trace.Access, budget int) []uint64 {
	s.clock++
	block := a.Block()
	e, ok := s.table[a.PC]
	if !ok {
		if len(s.table) >= s.cap {
			s.evictLRU()
		}
		s.table[a.PC] = &strideEntry{lastBlock: block, lastUse: s.clock}
		return nil
	}
	e.lastUse = s.clock
	stride := int64(block) - int64(e.lastBlock)
	e.lastBlock = block
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	if e.conf < s.MinConfidence {
		return nil
	}
	out := make([]uint64, 0, budget)
	for i := 1; i <= budget; i++ {
		t := int64(block) + int64(i)*stride
		if t <= 0 {
			break
		}
		out = append(out, trace.BlockAddr(uint64(t)))
	}
	return out
}

func (s *Stride) evictLRU() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for pc, e := range s.table {
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = pc
		}
	}
	delete(s.table, victim)
}
