package prefetch

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// prefetchMetrics is the package's bound telemetry handles. GenerateFileCtx
// accumulates plain locals over the whole trace and flushes once, so the
// per-access cost is an integer add with telemetry on or off.
type prefetchMetrics struct {
	generations *telemetry.Counter   // GenerateFileCtx calls completed
	advises     *telemetry.Counter   // Advise calls made
	issued      *telemetry.Counter   // prefetch entries emitted (post-budget)
	truncated   *telemetry.Counter   // advice slices cut down to the budget
	degree      *telemetry.Histogram // per-access prefetch degree
}

var prefetchTele atomic.Pointer[prefetchMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		prefetchTele.Store(nil)
		return
	}
	prefetchTele.Store(&prefetchMetrics{
		generations: r.Counter("prefetch.generations"),
		advises:     r.Counter("prefetch.advises"),
		issued:      r.Counter("prefetch.issued"),
		truncated:   r.Counter("prefetch.budget_truncations"),
		degree:      r.Histogram("prefetch.degree"),
	})
}
