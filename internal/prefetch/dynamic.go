package prefetch

import "pathfinder/internal/trace"

// DynamicEnsemble implements the "dynamic ensemble priority policies" the
// paper names as future work (§5): instead of a fixed member order, it
// scores each member by the recent usefulness of its suggestions — a
// suggestion is credited when its block is demanded within a sliding
// window — and gives the current best scorer first claim on the prefetch
// budget. This addresses the failure mode §5 observes for the fixed-priority
// ensemble, which "can sometimes behave very similar to PATHFINDER, which
// in some benchmarks is worse than SISB-only".
type DynamicEnsemble struct {
	// Members are the candidate prefetchers; all observe every access.
	Members []Prefetcher
	// Label overrides the derived name.
	Label string
	// Window is the sliding evaluation window in accesses (default 256).
	Window int
	// Epsilon is the fraction of accesses on which the priority order is
	// rotated to keep gathering evidence for out-of-favour members
	// (default 1/16).
	Epsilon float64

	// scores hold exponentially-decayed usefulness credit per member.
	scores []float64
	// pending maps a suggested block to the head of its suggestion chain
	// in the nodes arena; nodes are recycled through a free list.
	pending *Table[int32]
	nodes   []dynPendingNode
	free    int32 // free-list head, -1 when empty
	n       uint64
	rotate  int

	sugg   [][]uint64 // scratch: per-member suggestions for one access
	order  []int      // scratch: member priority order
	advBuf []uint64
}

type dynPendingNode struct {
	member int
	at     uint64
	next   int32 // next node for the same block, -1 = end
}

// NewDynamicEnsemble builds a usefulness-scored ensemble.
func NewDynamicEnsemble(members ...Prefetcher) *DynamicEnsemble {
	return &DynamicEnsemble{
		Members: members,
		Window:  256,
		Epsilon: 1.0 / 16,
		scores:  make([]float64, len(members)),
		pending: NewTable[int32](1024),
		free:    -1,
		sugg:    make([][]uint64, len(members)),
		order:   make([]int, len(members)),
	}
}

// Name implements Prefetcher.
func (d *DynamicEnsemble) Name() string {
	if d.Label != "" {
		return d.Label
	}
	name := "Dyn["
	for i, m := range d.Members {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + "]"
}

// Scores returns a copy of the current member scores (for tests and
// experiments).
func (d *DynamicEnsemble) Scores() []float64 {
	out := make([]float64, len(d.scores))
	copy(out, d.scores)
	return out
}

func (d *DynamicEnsemble) allocNode(member int, at uint64, next int32) int32 {
	if idx := d.free; idx >= 0 {
		d.free = d.nodes[idx].next
		d.nodes[idx] = dynPendingNode{member: member, at: at, next: next}
		return idx
	}
	d.nodes = append(d.nodes, dynPendingNode{member: member, at: at, next: next})
	return int32(len(d.nodes) - 1)
}

func (d *DynamicEnsemble) freeNode(idx int32) {
	d.nodes[idx].next = d.free
	d.free = idx
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (d *DynamicEnsemble) Advise(a trace.Access, budget int) []uint64 {
	d.n++

	// Credit members whose outstanding suggestion covered this demand.
	block := a.Block()
	if head := d.pending.Get(block); head != nil {
		for idx := *head; idx >= 0; {
			node := &d.nodes[idx]
			if d.n-node.at <= uint64(d.Window) {
				d.scores[node.member]++
			}
			next := node.next
			d.freeNode(idx)
			idx = next
		}
		d.pending.Delete(block)
	}
	// Slow exponential decay keeps scores adaptive across phases.
	if d.n%64 == 0 {
		for i := range d.scores {
			d.scores[i] *= 0.94
		}
		d.gc()
	}

	// Collect every member's suggestions (all keep learning).
	sugg := d.sugg
	for i, m := range d.Members {
		sugg[i] = m.Advise(a, budget)
	}

	order := d.priorityOrder()
	out := d.advBuf[:0]
	for _, i := range order {
	suggest:
		for _, addr := range sugg[i] {
			b := addr / trace.BlockBytes
			// Track usefulness for every member's suggestions, issued or
			// not, so losing members can still earn their way up.
			var next int32 = -1
			head, existed := d.pending.Insert(b)
			if existed {
				next = *head
			}
			*head = d.allocNode(i, d.n, next)
			if len(out) >= budget {
				continue
			}
			blockAddr := trace.BlockAddr(b)
			for _, have := range out {
				if have == blockAddr {
					continue suggest
				}
			}
			out = append(out, blockAddr)
		}
	}
	d.advBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// priorityOrder returns member indexes sorted by descending score, with an
// occasional rotation for exploration. The returned slice is scratch,
// valid until the next call.
func (d *DynamicEnsemble) priorityOrder() []int {
	order := d.order
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && d.scores[order[k]] > d.scores[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	if d.Epsilon > 0 && float64(d.n%1024)/1024 < d.Epsilon && len(order) > 1 {
		d.rotate = (d.rotate + 1) % len(order)
		order[0], order[d.rotate] = order[d.rotate], order[0]
	}
	return order
}

// gc drops stale pending suggestions so the table stays bounded.
func (d *DynamicEnsemble) gc() {
	d.pending.DeleteIf(func(_ uint64, head *int32) bool {
		idx := *head
		for idx >= 0 && d.n-d.nodes[idx].at > uint64(d.Window) {
			next := d.nodes[idx].next
			d.freeNode(idx)
			idx = next
		}
		if idx < 0 {
			return true
		}
		*head = idx
		for cur := idx; cur >= 0; {
			next := d.nodes[cur].next
			if next >= 0 && d.n-d.nodes[next].at > uint64(d.Window) {
				d.nodes[cur].next = d.nodes[next].next
				d.freeNode(next)
				continue
			}
			cur = next
		}
		return false
	})
}
