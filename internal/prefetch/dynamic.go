package prefetch

import "pathfinder/internal/trace"

// DynamicEnsemble implements the "dynamic ensemble priority policies" the
// paper names as future work (§5): instead of a fixed member order, it
// scores each member by the recent usefulness of its suggestions — a
// suggestion is credited when its block is demanded within a sliding
// window — and gives the current best scorer first claim on the prefetch
// budget. This addresses the failure mode §5 observes for the fixed-priority
// ensemble, which "can sometimes behave very similar to PATHFINDER, which
// in some benchmarks is worse than SISB-only".
type DynamicEnsemble struct {
	// Members are the candidate prefetchers; all observe every access.
	Members []Prefetcher
	// Label overrides the derived name.
	Label string
	// Window is the sliding evaluation window in accesses (default 256).
	Window int
	// Epsilon is the fraction of accesses on which the priority order is
	// rotated to keep gathering evidence for out-of-favour members
	// (default 1/16).
	Epsilon float64

	// scores hold exponentially-decayed usefulness credit per member.
	scores []float64
	// pending maps a suggested block to the members that suggested it and
	// the access count at suggestion time.
	pending map[uint64][]pendingSuggestion
	n       uint64
	rotate  int
}

type pendingSuggestion struct {
	member int
	at     uint64
}

// NewDynamicEnsemble builds a usefulness-scored ensemble.
func NewDynamicEnsemble(members ...Prefetcher) *DynamicEnsemble {
	return &DynamicEnsemble{
		Members: members,
		Window:  256,
		Epsilon: 1.0 / 16,
		scores:  make([]float64, len(members)),
		pending: make(map[uint64][]pendingSuggestion),
	}
}

// Name implements Prefetcher.
func (d *DynamicEnsemble) Name() string {
	if d.Label != "" {
		return d.Label
	}
	name := "Dyn["
	for i, m := range d.Members {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + "]"
}

// Scores returns a copy of the current member scores (for tests and
// experiments).
func (d *DynamicEnsemble) Scores() []float64 {
	out := make([]float64, len(d.scores))
	copy(out, d.scores)
	return out
}

// Advise implements Prefetcher.
func (d *DynamicEnsemble) Advise(a trace.Access, budget int) []uint64 {
	d.n++

	// Credit members whose outstanding suggestion covered this demand.
	block := a.Block()
	if ps, ok := d.pending[block]; ok {
		for _, p := range ps {
			if d.n-p.at <= uint64(d.Window) {
				d.scores[p.member]++
			}
		}
		delete(d.pending, block)
	}
	// Slow exponential decay keeps scores adaptive across phases.
	if d.n%64 == 0 {
		for i := range d.scores {
			d.scores[i] *= 0.94
		}
		d.gc()
	}

	// Collect every member's suggestions (all keep learning).
	sugg := make([][]uint64, len(d.Members))
	for i, m := range d.Members {
		sugg[i] = m.Advise(a, budget)
	}

	order := d.priorityOrder()
	var out []uint64
	seen := make(map[uint64]bool, budget)
	for _, i := range order {
		for _, addr := range sugg[i] {
			b := addr / trace.BlockBytes
			// Track usefulness for every member's suggestions, issued or
			// not, so losing members can still earn their way up.
			d.pending[b] = append(d.pending[b], pendingSuggestion{member: i, at: d.n})
			if len(out) < budget && !seen[b] {
				seen[b] = true
				out = append(out, trace.BlockAddr(b))
			}
		}
	}
	return out
}

// priorityOrder returns member indexes sorted by descending score, with an
// occasional rotation for exploration.
func (d *DynamicEnsemble) priorityOrder() []int {
	order := make([]int, len(d.Members))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && d.scores[order[k]] > d.scores[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	if d.Epsilon > 0 && float64(d.n%1024)/1024 < d.Epsilon && len(order) > 1 {
		d.rotate = (d.rotate + 1) % len(order)
		order[0], order[d.rotate] = order[d.rotate], order[0]
	}
	return order
}

// gc drops stale pending suggestions so the map stays bounded.
func (d *DynamicEnsemble) gc() {
	for b, ps := range d.pending {
		live := ps[:0]
		for _, p := range ps {
			if d.n-p.at <= uint64(d.Window) {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			delete(d.pending, b)
		} else {
			d.pending[b] = live
		}
	}
}
