// Package prefetch defines the prefetcher interface shared by PATHFINDER
// and the baselines, and implements the paper's non-neural comparison
// points (§4.3): NextLine, Best-Offset, SPP, an idealized SISB, the
// reinforcement-learning prefetcher Pythia, and the fixed-priority ensemble
// of §3.4/§5.
package prefetch

import (
	"context"
	"io"

	"pathfinder/internal/trace"
)

// Prefetcher observes a load stream one access at a time and suggests
// blocks to prefetch. Implementations learn online; there is no separate
// training phase (offline baselines such as Delta-LSTM live in
// internal/lstm and produce prefetch files directly).
type Prefetcher interface {
	// Name identifies the prefetcher in results tables.
	Name() string
	// Advise observes one access and returns up to budget *byte*
	// addresses (block-aligned) to prefetch. It is called once per trace
	// access, in order.
	Advise(a trace.Access, budget int) []uint64
}

// Budget is the per-access prefetch budget of the evaluation: "all
// prefetchers submit at most 2 prefetches for each memory access" (§4.5).
const Budget = 2

// GenerateFile drives a Prefetcher over a trace and collects its
// suggestions into a prefetch file for sim.Run, enforcing the per-access
// budget. This is the first phase of the two-phase flow of §4.1.
func GenerateFile(p Prefetcher, accs []trace.Access, budget int) []trace.Prefetch {
	out, _ := GenerateFileCtx(context.Background(), p, accs, budget)
	return out
}

// GenerateFileCtx is GenerateFile with cancellation: it polls ctx every
// few thousand accesses and returns ctx.Err() when cancelled. It is the
// materialized entry to GenerateFileStreamCtx — the slice's known length
// pre-sizes the output at the budget-implied capacity, and the streaming
// path does all the work, so the two cannot drift.
func GenerateFileCtx(ctx context.Context, p Prefetcher, accs []trace.Access, budget int) ([]trace.Prefetch, error) {
	return GenerateFileStreamCtx(ctx, p, trace.NewSliceSource(accs), budget)
}

// GenerateFileStreamCtx drives a Prefetcher over a trace.Source, one
// access at a time, collecting its suggestions into a prefetch file. Only
// the prefetch file is materialized — it is what the simulator replays —
// so generation over an arbitrarily long trace holds one Access at a time
// plus the file itself. Sources exposing Remaining() (uint64, bool) get a
// pre-sized output; the per-access advice slice is truncated in place
// rather than copied.
func GenerateFileStreamCtx(ctx context.Context, p Prefetcher, src trace.Source, budget int) ([]trace.Prefetch, error) {
	if budget <= 0 {
		budget = Budget
	}
	var out []trace.Prefetch
	if s, ok := src.(interface{ Remaining() (uint64, bool) }); ok {
		if n, known := s.Remaining(); known {
			out = make([]trace.Prefetch, 0, n*uint64(budget))
		}
	}
	// Telemetry accumulators: per-access degrees land in a small local
	// bucket array (degree is budget-bounded) flushed once at the end.
	var truncations uint64
	var degCounts [16]uint64
	var consumed uint64
	var a trace.Access
	for i := 0; ; i++ {
		if i&2047 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := src.Next(&a); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		consumed++
		addrs := p.Advise(a, budget)
		if len(addrs) > budget {
			addrs = addrs[:budget]
			truncations++
		}
		d := len(addrs)
		if d >= len(degCounts) {
			d = len(degCounts) - 1
		}
		degCounts[d]++
		for _, addr := range addrs {
			out = append(out, trace.Prefetch{ID: a.ID, Addr: addr &^ (trace.BlockBytes - 1)})
		}
	}
	if m := prefetchTele.Load(); m != nil {
		m.generations.Inc()
		m.advises.Add(consumed)
		m.issued.Add(uint64(len(out)))
		m.truncated.Add(truncations)
		for d, n := range degCounts {
			m.degree.ObserveN(uint64(d), n)
		}
	}
	return out, nil
}

// NoPrefetch is the no-prefetching baseline.
type NoPrefetch struct{}

// Name implements Prefetcher.
func (NoPrefetch) Name() string { return "NoPF" }

// Advise implements Prefetcher; it never suggests anything.
func (NoPrefetch) Advise(trace.Access, int) []uint64 { return nil }

// NextLine prefetches the next sequential block(s) after every access — the
// simplest strided prefetcher (§2.1), used as ensemble filler in §5.
type NextLine struct {
	// Degree is how many sequential blocks to suggest (capped by the
	// per-access budget). Zero means "use the full budget".
	Degree int

	advBuf []uint64
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "NextLine" }

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (n *NextLine) Advise(a trace.Access, budget int) []uint64 {
	deg := n.Degree
	if deg <= 0 || deg > budget {
		deg = budget
	}
	out := n.advBuf[:0]
	for i := 1; i <= deg; i++ {
		out = append(out, trace.BlockAddr(a.Block()+uint64(i)))
	}
	n.advBuf = out
	return out
}
