package prefetch

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"pathfinder/internal/trace"
)

// acc builds an access to the given block number.
func acc(id, pc, block uint64) trace.Access {
	return trace.Access{ID: id, PC: pc, Addr: trace.BlockAddr(block)}
}

func TestNoPrefetchSuggestsNothing(t *testing.T) {
	var p NoPrefetch
	if got := p.Advise(acc(1, 1, 100), 2); got != nil {
		t.Errorf("NoPrefetch suggested %v", got)
	}
}

func TestNextLineSuggestsSequentialBlocks(t *testing.T) {
	p := &NextLine{}
	got := p.Advise(acc(1, 1, 100), 2)
	want := []uint64{trace.BlockAddr(101), trace.BlockAddr(102)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("NextLine = %v, want %v", got, want)
	}
}

func TestNextLineDegreeOne(t *testing.T) {
	p := &NextLine{Degree: 1}
	got := p.Advise(acc(1, 1, 100), 2)
	if len(got) != 1 || got[0] != trace.BlockAddr(101) {
		t.Errorf("NextLine degree 1 = %v", got)
	}
}

func TestGenerateFileEnforcesBudget(t *testing.T) {
	p := &NextLine{} // would suggest `budget` blocks per access
	accs := []trace.Access{acc(1, 1, 10), acc(2, 1, 20)}
	pfs := GenerateFile(p, accs, 1)
	if len(pfs) != 2 {
		t.Fatalf("got %d prefetches, want 2 (budget 1 x 2 accesses)", len(pfs))
	}
	for _, pf := range pfs {
		if pf.Addr%trace.BlockBytes != 0 {
			t.Errorf("prefetch addr %#x not block aligned", pf.Addr)
		}
	}
}

func TestGenerateFileIDsMatchTriggers(t *testing.T) {
	p := &NextLine{}
	accs := []trace.Access{acc(5, 1, 10), acc(9, 1, 20)}
	pfs := GenerateFile(p, accs, 2)
	for _, pf := range pfs {
		if pf.ID != 5 && pf.ID != 9 {
			t.Errorf("prefetch ID %d not a trigger ID", pf.ID)
		}
	}
}

func TestBestOffsetLearnsStride(t *testing.T) {
	p := NewBestOffset()
	// Feed a stride-3 stream long enough for a learning phase to finish.
	for i := uint64(0); i < 5000; i++ {
		p.Advise(acc(i+1, 1, i*3), 2)
	}
	if p.Best() != 3 {
		t.Errorf("BO learned offset %d, want 3", p.Best())
	}
	got := p.Advise(acc(9999, 1, 30000), 2)
	if len(got) != 2 || got[0] != trace.BlockAddr(30003) || got[1] != trace.BlockAddr(30006) {
		t.Errorf("BO suggestions = %v, want +3 and +6", got)
	}
}

func TestBestOffsetFallsBackToNextLineOnNoise(t *testing.T) {
	p := NewBestOffset()
	// A non-repeating stream scores nothing: BO must fall back to 1.
	for i := uint64(0); i < 20000; i++ {
		p.Advise(acc(i+1, 1, i*i*2654435761%(1<<30)), 2)
	}
	if p.Best() != 1 {
		t.Errorf("BO on noise selected %d, want 1", p.Best())
	}
}

func TestBestOffsetCandidateList(t *testing.T) {
	for _, d := range boOffsetList() {
		n := d
		for _, p := range []int{2, 3, 5} {
			for n%p == 0 {
				n /= p
			}
		}
		if n != 1 {
			t.Errorf("offset %d has prime factor other than 2,3,5", d)
		}
	}
}

func TestSPPLearnsDeltaPattern(t *testing.T) {
	p := NewSPP()
	// Constant delta 2 within pages.
	base := uint64(1 << 20)
	var got []uint64
	off := 0
	page := uint64(0)
	for i := 0; i < 3000; i++ {
		if off+2 >= trace.BlocksPerPage {
			page++
			off = 0
		} else {
			off += 2
		}
		got = p.Advise(trace.Access{ID: uint64(i + 1), PC: 7, Addr: base + page*trace.PageBytes + uint64(off)*trace.BlockBytes}, 2)
	}
	if len(got) == 0 {
		t.Fatal("SPP issued nothing on a pure delta-2 stream")
	}
	// The first suggestion should be +2 blocks from the last access.
	lastBlock := (base+page*trace.PageBytes)/trace.BlockBytes + uint64(off)
	if got[0] != trace.BlockAddr(lastBlock+2) {
		t.Errorf("SPP first suggestion %#x, want %#x", got[0], trace.BlockAddr(lastBlock+2))
	}
}

func TestSPPSilentWithoutConfidence(t *testing.T) {
	p := NewSPP()
	// Random offsets build no confident signature paths.
	issued := 0
	for i := 0; i < 2000; i++ {
		block := uint64(i*i*31) % (1 << 24)
		got := p.Advise(acc(uint64(i+1), 3, block), 2)
		issued += len(got)
	}
	if issued > 500 {
		t.Errorf("SPP issued %d prefetches on noise; expected selectivity", issued)
	}
}

func TestSPPRespectsPageBounds(t *testing.T) {
	p := NewSPP()
	for i := 0; i < 1000; i++ {
		off := (i * 7) % trace.BlocksPerPage
		got := p.Advise(trace.Access{ID: uint64(i + 1), PC: 1, Addr: uint64(off) * trace.BlockBytes}, 2)
		for _, g := range got {
			if g/trace.PageBytes != 0 {
				t.Fatalf("SPP crossed page boundary: %#x", g)
			}
		}
	}
}

func TestSISBLearnsTemporalChain(t *testing.T) {
	p := NewSISB()
	chain := []uint64{100, 5000, 42, 77777, 9, 100} // loops back to 100
	// Two passes to learn the chain, then check predictions.
	for pass := 0; pass < 2; pass++ {
		for i, b := range chain {
			p.Advise(acc(uint64(pass*10+i+1), 1, b), 2)
		}
	}
	got := p.Advise(acc(100, 1, 100), 2)
	if len(got) != 2 || got[0] != trace.BlockAddr(5000) || got[1] != trace.BlockAddr(42) {
		t.Errorf("SISB chain replay = %v, want [5000<<6 42<<6]", got)
	}
}

func TestSISBIsPCLocalized(t *testing.T) {
	p := NewSISB()
	// PC 1 sees 10 -> 20; PC 2 sees 10 -> 99. Predictions must not mix.
	p.Advise(acc(1, 1, 10), 2)
	p.Advise(acc(2, 1, 20), 2)
	p.Advise(acc(3, 2, 10), 2)
	p.Advise(acc(4, 2, 99), 2)
	got := p.Advise(acc(5, 1, 10), 2)
	if len(got) == 0 || got[0] != trace.BlockAddr(20) {
		t.Errorf("PC 1 successor = %v, want 20<<6", got)
	}
	got = p.Advise(acc(6, 2, 10), 2)
	if len(got) == 0 || got[0] != trace.BlockAddr(99) {
		t.Errorf("PC 2 successor = %v, want 99<<6", got)
	}
}

func TestPythiaLearnsConstantDelta(t *testing.T) {
	p := NewPythia(1)
	// Stride-1 within pages; Pythia should converge to positive deltas
	// and issue prefetches that frequently match the next access.
	base := uint64(1 << 22)
	hits, issued := 0, 0
	targets := make(map[uint64]bool)
	off, page := 0, uint64(0)
	for i := 0; i < 20000; i++ {
		if off+1 >= trace.BlocksPerPage {
			page++
			off = 0
		} else {
			off++
		}
		addr := base + page*trace.PageBytes + uint64(off)*trace.BlockBytes
		if targets[addr/trace.BlockBytes] {
			hits++
		}
		got := p.Advise(trace.Access{ID: uint64(i + 1), PC: 3, Addr: addr}, 2)
		issued += len(got)
		for _, g := range got {
			targets[g/trace.BlockBytes] = true
		}
	}
	if issued == 0 {
		t.Fatal("Pythia never issued a prefetch")
	}
	if hits < 5000 {
		t.Errorf("Pythia matched only %d/20000 next accesses on stride-1", hits)
	}
}

func TestPythiaIsAggressive(t *testing.T) {
	// Table 6: Pythia issues close to the full budget even on noise.
	p := NewPythia(2)
	issued := 0
	for i := 0; i < 5000; i++ {
		block := uint64(i*2654435761) % (1 << 26)
		issued += len(p.Advise(acc(uint64(i+1), 9, block), 2))
	}
	if issued < 5000 {
		t.Errorf("Pythia issued %d on 5000 noisy accesses; expected aggressiveness", issued)
	}
}

func TestEnsemblePriorityFill(t *testing.T) {
	// First member suggests one block; filler completes the budget.
	e := NewEnsemble(&NextLine{Degree: 1}, &fixedPrefetcher{blocks: []uint64{900, 901}})
	got := e.Advise(acc(1, 1, 100), 2)
	if len(got) != 2 {
		t.Fatalf("ensemble issued %d, want 2", len(got))
	}
	if got[0] != trace.BlockAddr(101) {
		t.Errorf("priority member not first: %v", got)
	}
	if got[1] != trace.BlockAddr(900) {
		t.Errorf("filler suggestion wrong: %v", got)
	}
}

func TestEnsembleDeduplicates(t *testing.T) {
	e := NewEnsemble(&NextLine{Degree: 1}, &NextLine{})
	got := e.Advise(acc(1, 1, 100), 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Errorf("ensemble output %v has duplicates or wrong length", got)
	}
}

func TestEnsembleName(t *testing.T) {
	e := NewEnsemble(&NextLine{}, NewSISB())
	if e.Name() != "NextLine+SISB" {
		t.Errorf("Name() = %q", e.Name())
	}
	e.Label = "PF+NL+SISB"
	if e.Name() != "PF+NL+SISB" {
		t.Errorf("labelled Name() = %q", e.Name())
	}
}

// fixedPrefetcher always suggests the same blocks (test helper).
type fixedPrefetcher struct{ blocks []uint64 }

func (f *fixedPrefetcher) Name() string { return "fixed" }
func (f *fixedPrefetcher) Advise(trace.Access, int) []uint64 {
	out := make([]uint64, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = trace.BlockAddr(b)
	}
	return out
}

func BenchmarkBestOffset(b *testing.B) {
	p := NewBestOffset()
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i*3)), 2)
	}
}

func BenchmarkSPP(b *testing.B) {
	p := NewSPP()
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i*2%(1<<24))), 2)
	}
}

func BenchmarkSISB(b *testing.B) {
	p := NewSISB()
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i%100000)), 2)
	}
}

func BenchmarkPythia(b *testing.B) {
	p := NewPythia(1)
	for i := 0; i < b.N; i++ {
		p.Advise(acc(uint64(i+1), 1, uint64(i)), 2)
	}
}

// TestGenerateFileStreamParity checks generation over a decoder-backed
// stream (encode -> stream-decode -> generate) is bit-identical to
// generation over the slice, including for a stateful learner.
func TestGenerateFileStreamParity(t *testing.T) {
	var accs []trace.Access
	for i := uint64(0); i < 4000; i++ {
		accs = append(accs, acc(i+1, i%7, i*3))
	}
	want, err := GenerateFileCtx(context.Background(), NewBestOffset(), accs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateFileStreamCtx(context.Background(), NewBestOffset(), rd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed prefetch file differs: %d vs %d prefetches", len(got), len(want))
	}
}

// TestGenerateFileStreamPropagatesError checks a mid-stream decode error
// aborts generation with the positioned error.
func TestGenerateFileStreamPropagatesError(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.NewSliceSource([]trace.Access{acc(1, 1, 10), acc(2, 1, 20)})); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-1]
	rd, err := trace.NewReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateFileStreamCtx(context.Background(), &NextLine{}, rd, 2); err == nil {
		t.Fatal("generation swallowed a truncated stream")
	}
}
