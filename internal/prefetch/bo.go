package prefetch

import "pathfinder/internal/trace"

// BestOffset is Michaud's Best-Offset prefetcher (HPCA 2016), the
// rule-based delta baseline of the evaluation. It learns, via a scoring
// tournament over a fixed offset list, the single block offset d such that
// a line at X-d was recently demanded whenever X is demanded — i.e. the
// offset that would have produced timely prefetches — and then prefetches
// X+d on every access. The competition-provided version the paper uses has
// prefetch throttling disabled (§4.3), which this implementation mirrors:
// once an offset is selected, prefetching is always on.
type BestOffset struct {
	offsets []int
	scores  []int
	rr      []uint64 // recent-requests table of base block addresses
	rrMask  uint64

	best      int // currently selected offset
	testIdx   int // offset currently being scored
	round     int
	maxRounds int
	maxScore  int
	badScore  int

	advBuf []uint64
}

// boOffsetList is the classic Best-Offset candidate list: integers up to 64
// whose prime factorisation uses only 2, 3 and 5.
func boOffsetList() []int {
	var out []int
	for d := 1; d <= 64; d++ {
		n := d
		for _, p := range []int{2, 3, 5} {
			for n%p == 0 {
				n /= p
			}
		}
		if n == 1 {
			out = append(out, d)
		}
	}
	return out
}

// NewBestOffset returns a Best-Offset prefetcher with the standard
// parameters (256-entry recent-requests table, 100-round / 31-score
// learning phases).
func NewBestOffset() *BestOffset {
	offs := boOffsetList()
	return &BestOffset{
		offsets:   offs,
		scores:    make([]int, len(offs)),
		rr:        make([]uint64, 256),
		rrMask:    255,
		best:      1,
		maxRounds: 100,
		maxScore:  31,
		badScore:  1,
	}
}

// Name implements Prefetcher.
func (b *BestOffset) Name() string { return "BO" }

func (b *BestOffset) rrInsert(block uint64) {
	b.rr[block&b.rrMask] = block
}

func (b *BestOffset) rrHit(block uint64) bool {
	return b.rr[block&b.rrMask] == block
}

// Advise implements Prefetcher. The returned slice is reused across calls
// and valid only until the next Advise.
func (b *BestOffset) Advise(a trace.Access, budget int) []uint64 {
	block := a.Block()

	// Learning: test the current candidate offset against the
	// recent-requests table.
	d := b.offsets[b.testIdx]
	if block >= uint64(d) && b.rrHit(block-uint64(d)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= b.maxScore {
			b.selectBest()
		}
	}
	b.testIdx++
	if b.testIdx == len(b.offsets) {
		b.testIdx = 0
		b.round++
		if b.round >= b.maxRounds {
			b.selectBest()
		}
	}

	// The base address of a would-be prefetch is recorded so future
	// accesses can score offsets ("X-d was recently seen").
	b.rrInsert(block)

	out := b.advBuf[:0]
	for i := 1; i <= budget; i++ {
		out = append(out, trace.BlockAddr(block+uint64(i*b.best)))
	}
	b.advBuf = out
	return out
}

// selectBest ends a learning phase: adopt the highest-scoring offset and
// restart scoring.
func (b *BestOffset) selectBest() {
	bestIdx, bestScore := 0, -1
	for i, s := range b.scores {
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
		b.scores[i] = 0
	}
	if bestScore > b.badScore {
		b.best = b.offsets[bestIdx]
	} else {
		b.best = 1 // fall back to next-line when nothing scores
	}
	b.round = 0
	b.testIdx = 0
}

// Best returns the currently selected offset (exported for tests and the
// experiment harness).
func (b *BestOffset) Best() int { return b.best }
