// Package workload generates the synthetic memory-access traces that stand
// in for the paper's benchmark suite (GAP, SPEC06, SPEC17, CloudSuite;
// Table 5). We do not have the proprietary ChampSim traces of the ML
// Prefetching Competition, so each benchmark is modelled as a mixture of
// access-pattern components chosen to match the paper's own published
// characterisation of the traces:
//
//   - the fraction of same-page deltas and their range occupancy (Table 7),
//   - the per-1K-access delta vocabulary and its concentration (Table 8),
//   - the instruction-per-load density (Table 5),
//   - and the qualitative pattern class that drives the evaluation
//     discussion in §5 (strided vs. delta-correlated vs. temporal-irregular
//     vs. noisy server workloads).
//
// Generators are deterministic given (name, loads, seed).
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"pathfinder/internal/trace"
)

// Kind enumerates the access-pattern components a workload mixes.
type Kind int

const (
	// KindDeltaPattern cycles a fixed within-page delta pattern, moving to
	// a fresh page when the pattern walks off the page. This is the
	// pattern class PATHFINDER is designed to learn (§3.2).
	KindDeltaPattern Kind = iota
	// KindStride walks memory with a constant block stride, crossing page
	// boundaries freely. Next-line and Best-Offset excel here.
	KindStride
	// KindPointerChase follows a fixed pseudo-random ring of block
	// addresses, optionally with branchy (multi-successor) nodes. Exact
	// repetition makes it learnable by temporal prefetchers (SISB);
	// branchiness breaks last-successor prediction while context-aware
	// models can still follow it.
	KindPointerChase
	// KindTemporalLoop replays a prerecorded random address sequence in a
	// loop: no within-page structure, perfect temporal correlation.
	KindTemporalLoop
	// KindRandom touches uniformly random blocks in a large region: noise
	// that no prefetcher should cover.
	KindRandom
	// KindHot reuses a small working set with a skewed distribution,
	// producing upper-level cache hits.
	KindHot
)

// Component is one weighted access-pattern source inside a workload mix.
type Component struct {
	// Weight is the relative probability of this component producing the
	// next access.
	Weight int
	// Kind selects the pattern class.
	Kind Kind
	// Pattern is the block-delta cycle for KindDeltaPattern.
	Pattern []int
	// NoiseProb replaces a pattern access with a random in-page offset.
	NoiseProb float64
	// Stride is the block stride for KindStride.
	Stride int
	// Nodes is the ring size for KindPointerChase and the loop length for
	// KindTemporalLoop.
	Nodes int
	// BranchProb is the probability a pointer-chase node has two
	// successors chosen by a hidden alternating state.
	BranchProb float64
	// Set is the working-set size in blocks for KindHot and the region
	// size in pages for KindRandom.
	Set int
	// PCs is how many distinct load PCs the component cycles through
	// (default 1).
	PCs int
	// Fields applies to KindPointerChase: how many loads each node visit
	// performs. One load is the serializing next-pointer read; the rest
	// are independent reads of the node's neighbouring blocks (its
	// fields), which spatial prefetchers can cover. Default 1.
	Fields int
	// Chains is how many concurrent dependence chains the component
	// interleaves (independent traversal cursors). More chains expose
	// more memory-level parallelism; one chain is fully serial. Applies
	// to KindPointerChase and KindTemporalLoop. Default 1.
	Chains int
	// MorphEvery makes a KindDeltaPattern component non-stationary: after
	// this many of its accesses the pattern is replaced with a fresh
	// random one. Program phases are what separate on-line learners
	// (PATHFINDER adapts within tens of accesses, Figure 8) from
	// epoch-trained models (Delta-LSTM "encounters several new deltas
	// during testing", §5). Zero keeps the pattern fixed.
	MorphEvery int
}

// Spec describes one synthetic benchmark trace.
type Spec struct {
	// Name is the benchmark trace name from Table 5 (e.g. "cc-5").
	Name string
	// Suite is the benchmark suite the trace belongs to (GAP, SPEC06, ...).
	Suite string
	// IDGap is the mean instruction-id gap between consecutive loads; it
	// encodes Table 5's total-instructions-per-1M-loads density.
	IDGap int
	// Components is the weighted pattern mixture.
	Components []Component
}

// Suite returns the 11 benchmark specs of the paper's evaluation (Table 5),
// in the paper's order.
func Suite() []Spec {
	return []Spec{
		{
			// GAP connected components: CSR edge-array streaming with
			// moderate delta patterns plus random vertex-property lookups.
			Name: "cc-5", Suite: "GAP", IDGap: 31,
			Components: []Component{
				{Weight: 25, Kind: KindDeltaPattern, Pattern: []int{1, 2, 3}, NoiseProb: 0.08, MorphEvery: 6000},
				{Weight: 15, Kind: KindDeltaPattern, Pattern: []int{2, 3, 6}, NoiseProb: 0.12, MorphEvery: 4500},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{1, 4, 2, 5}, NoiseProb: 0.15, MorphEvery: 3500},
				{Weight: 20, Kind: KindPointerChase, Nodes: 6_000, BranchProb: 0.3, Fields: 3, Chains: 4},
				{Weight: 18, Kind: KindRandom, Set: 8192},
				{Weight: 12, Kind: KindHot, Set: 256},
			},
		},
		{
			// GAP breadth-first search: largely sequential frontier and
			// edge scans; the most delta-dense trace in the suite.
			Name: "bfs-10", Suite: "GAP", IDGap: 71,
			Components: []Component{
				{Weight: 35, Kind: KindStride, Stride: 1},
				{Weight: 25, Kind: KindDeltaPattern, Pattern: []int{1, 1, 2}, NoiseProb: 0.05, MorphEvery: 8000},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{1, 3, 1}, NoiseProb: 0.1, MorphEvery: 4000},
				{Weight: 15, Kind: KindPointerChase, Nodes: 6_000, BranchProb: 0.25, Fields: 2, Chains: 3},
				{Weight: 10, Kind: KindHot, Set: 256},
				{Weight: 5, Kind: KindRandom, Set: 8192},
			},
		},
		{
			// SPEC06 omnetpp: discrete-event simulation; tiny within-page
			// delta vocabulary, heavy heap pointer traffic with strong
			// temporal repetition.
			Name: "471-omnetpp-s1", Suite: "SPEC06", IDGap: 65,
			Components: []Component{
				{Weight: 38, Kind: KindTemporalLoop, Nodes: 6_500},
				{Weight: 8, Kind: KindDeltaPattern, Pattern: []int{2, 4}, NoiseProb: 0.05},
				{Weight: 27, Kind: KindPointerChase, Nodes: 6_500, BranchProb: 0.08, Fields: 2, Chains: 2},
				{Weight: 15, Kind: KindHot, Set: 384},
				{Weight: 12, Kind: KindRandom, Set: 16384},
			},
		},
		{
			// SPEC06 astar: path-finding over pointer-linked graph nodes;
			// few same-page deltas, repeated search sequences.
			Name: "473-astar-s1", Suite: "SPEC06", IDGap: 99,
			Components: []Component{
				{Weight: 42, Kind: KindPointerChase, Nodes: 5_000, BranchProb: 0.3, PCs: 4, Fields: 2, Chains: 2},
				{Weight: 22, Kind: KindTemporalLoop, Nodes: 5_500, Chains: 2},
				{Weight: 6, Kind: KindDeltaPattern, Pattern: []int{1, 3}, NoiseProb: 0.1},
				{Weight: 15, Kind: KindHot, Set: 512},
				{Weight: 15, Kind: KindRandom, Set: 16384},
			},
		},
		{
			// SPEC06 soplex: sparse linear algebra; many distinct strides
			// and delta patterns (wide vocabulary), strong row repetition.
			Name: "450-soplex-s0", Suite: "SPEC06", IDGap: 39,
			Components: []Component{
				{Weight: 18, Kind: KindStride, Stride: 2},
				{Weight: 14, Kind: KindStride, Stride: 5},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{1, 2, 3, 7}, NoiseProb: 0.1, MorphEvery: 3000},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{4, 9, 2}, NoiseProb: 0.15, MorphEvery: 3500},
				{Weight: 8, Kind: KindDeltaPattern, Pattern: []int{11, 1, 6, 3}, NoiseProb: 0.2, MorphEvery: 2500},
				{Weight: 22, Kind: KindTemporalLoop, Nodes: 7_000, Chains: 3},
				{Weight: 10, Kind: KindHot, Set: 384},
				{Weight: 8, Kind: KindRandom, Set: 8192},
			},
		},
		{
			// SPEC06 sphinx3: speech decoding; highly concentrated small
			// deltas (Table 8: top-5 deltas cover most of the traffic).
			Name: "482-sphinx-s0", Suite: "SPEC06", IDGap: 95,
			Components: []Component{
				{Weight: 32, Kind: KindStride, Stride: 1},
				{Weight: 26, Kind: KindDeltaPattern, Pattern: []int{1, 2}, NoiseProb: 0.04, MorphEvery: 9000},
				{Weight: 22, Kind: KindTemporalLoop, Nodes: 6_500, Chains: 3},
				{Weight: 12, Kind: KindHot, Set: 256},
				{Weight: 8, Kind: KindRandom, Set: 8192},
			},
		},
		{
			// SPEC17 mcf: vehicle scheduling; the most irregular trace.
			// Branchy pointer chasing over a huge node set defeats both
			// within-page delta learning and last-successor temporal
			// prediction (§5: PATHFINDER's weakest benchmark).
			Name: "605-mcf-s1", Suite: "SPEC17", IDGap: 48,
			Components: []Component{
				{Weight: 48, Kind: KindPointerChase, Nodes: 5_500, BranchProb: 0.35, PCs: 6, Fields: 2, Chains: 2},
				{Weight: 8, Kind: KindDeltaPattern, Pattern: []int{5, 11, 3}, NoiseProb: 0.3},
				{Weight: 22, Kind: KindRandom, Set: 32768},
				{Weight: 12, Kind: KindTemporalLoop, Nodes: 7_500, Chains: 2},
				{Weight: 10, Kind: KindHot, Set: 512},
			},
		},
		{
			// SPEC17 xalancbmk: XML transformation; a dominant non-unit
			// delta coexists with a unit-stride component (the Pythia
			// "local minimum" discussed in §5) plus temporal loops.
			Name: "623-xalan-s1", Suite: "SPEC17", IDGap: 63,
			Components: []Component{
				{Weight: 30, Kind: KindDeltaPattern, Pattern: []int{3, 3, 3}, NoiseProb: 0.06, MorphEvery: 7000},
				{Weight: 12, Kind: KindStride, Stride: 1},
				{Weight: 28, Kind: KindTemporalLoop, Nodes: 6_000, Chains: 2},
				{Weight: 12, Kind: KindHot, Set: 384},
				{Weight: 10, Kind: KindPointerChase, Nodes: 5_000, BranchProb: 0.1, Fields: 2, Chains: 2},
				{Weight: 8, Kind: KindRandom, Set: 8192},
			},
		},
		{
			// CloudSuite cassandra: server workload; many interleaved
			// streams, large instruction footprint, substantial noise.
			Name: "cassandra-phase0-core0", Suite: "CloudSuite", IDGap: 207,
			Components: []Component{
				{Weight: 22, Kind: KindPointerChase, Nodes: 8_000, BranchProb: 0.15, PCs: 8, Fields: 2, Chains: 3},
				{Weight: 18, Kind: KindTemporalLoop, Nodes: 8_000, Chains: 3},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{1, 2, 5}, NoiseProb: 0.15, MorphEvery: 3000},
				{Weight: 8, Kind: KindStride, Stride: 1},
				{Weight: 22, Kind: KindRandom, Set: 32768},
				{Weight: 20, Kind: KindHot, Set: 768},
			},
		},
		{
			// CloudSuite cloud9: JavaScript server; wide delta vocabulary
			// with moderate concentration and heavy temporal reuse.
			Name: "cloud9-phase0-core0", Suite: "CloudSuite", IDGap: 208,
			Components: []Component{
				{Weight: 14, Kind: KindDeltaPattern, Pattern: []int{2, 7, 1}, NoiseProb: 0.18, MorphEvery: 3500},
				{Weight: 10, Kind: KindDeltaPattern, Pattern: []int{6, 1, 9, 4}, NoiseProb: 0.2, MorphEvery: 2500},
				{Weight: 12, Kind: KindStride, Stride: 3},
				{Weight: 22, Kind: KindTemporalLoop, Nodes: 8_500, Chains: 3},
				{Weight: 16, Kind: KindPointerChase, Nodes: 6_000, BranchProb: 0.12, PCs: 6, Fields: 2, Chains: 3},
				{Weight: 14, Kind: KindRandom, Set: 16384},
				{Weight: 12, Kind: KindHot, Set: 512},
			},
		},
		{
			// CloudSuite nutch: search indexing; delta-dense with a highly
			// concentrated top-5 vocabulary (Table 8).
			Name: "nutch-phase0-core0", Suite: "CloudSuite", IDGap: 154,
			Components: []Component{
				{Weight: 28, Kind: KindDeltaPattern, Pattern: []int{1, 2, 1}, NoiseProb: 0.08, MorphEvery: 6000},
				{Weight: 16, Kind: KindStride, Stride: 2},
				{Weight: 14, Kind: KindDeltaPattern, Pattern: []int{4, 1, 4}, NoiseProb: 0.1, MorphEvery: 4000},
				{Weight: 16, Kind: KindTemporalLoop, Nodes: 6_500, Chains: 3},
				{Weight: 12, Kind: KindPointerChase, Nodes: 5_500, BranchProb: 0.1, Fields: 2, Chains: 3},
				{Weight: 8, Kind: KindRandom, Set: 16384},
				{Weight: 6, Kind: KindHot, Set: 384},
			},
		},
	}
}

// Names returns the trace names of the suite, in order.
func Names() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Lookup returns the spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, Names())
}

// Generate produces a deterministic trace of n loads for the named
// benchmark. The same (name, n, seed) always yields the same trace. Beyond
// the Table 5 suite, the executed graph kernels "bfs-csr" and "cc-csr"
// (see graph.go) are accepted.
func Generate(name string, n int, seed int64) ([]trace.Access, error) {
	return GenerateCtx(context.Background(), name, n, seed)
}

// GenerateCtx is Generate with cancellation: generation polls ctx
// periodically and aborts with ctx.Err() when cancelled.
func GenerateCtx(ctx context.Context, name string, n int, seed int64) ([]trace.Access, error) {
	spec, err := Lookup(name)
	if err != nil {
		if err2 := ctx.Err(); err2 != nil {
			return nil, err2
		}
		if accs, err2 := GenerateExecuted(name, n, seed); err2 == nil {
			return accs, nil
		}
		return nil, err
	}
	return spec.GenerateCtx(ctx, n, seed)
}

// Generate produces a deterministic trace of n loads from the spec.
func (s Spec) Generate(n int, seed int64) []trace.Access {
	accs, _ := s.GenerateCtx(context.Background(), n, seed)
	return accs
}

// GenerateCtx is Spec.Generate with periodic cancellation checks. It is
// the materializing convenience over Spec.Source: the streaming generator
// performs every RNG draw, so the two paths yield bit-identical traces by
// construction.
func (s Spec) GenerateCtx(ctx context.Context, n int, seed int64) ([]trace.Access, error) {
	src := s.Source(n, seed).(*specSource)
	if src.total == 0 {
		return nil, nil
	}
	accs := make([]trace.Access, n)
	for i := 0; i < n; i++ {
		if i&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := src.Next(&accs[i]); err != nil {
			return nil, err
		}
	}
	return accs, nil
}

func hashName(s string) uint64 {
	// FNV-1a, inlined to keep the package dependency-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// stream produces one access at a time for a single component. chain is
// non-zero for streams whose loads form a serial dependence chain.
type stream interface {
	next(rng *rand.Rand) (pc, addr uint64)
	chain() uint32
}

// regionBase gives each component a disjoint 16 GB virtual region so
// components never alias pages.
func regionBase(idx int) uint64 { return uint64(idx+1) << 34 }

func pcBase(idx int) uint64 { return 0x400000 + uint64(idx)*0x1000 }

func newStream(c Component, idx int, rng *rand.Rand) stream {
	switch c.Kind {
	case KindDeltaPattern:
		return &deltaPatternStream{
			base:    regionBase(idx),
			pc:      pcBase(idx),
			pattern: append([]int(nil), c.Pattern...),
			noise:   c.NoiseProb,
			morph:   c.MorphEvery,
			offset:  0,
			page:    0,
		}
	case KindStride:
		return &strideStream{base: regionBase(idx), pc: pcBase(idx), stride: c.Stride}
	case KindPointerChase:
		return newPointerChase(c, idx, rng)
	case KindTemporalLoop:
		return newTemporalLoop(c, idx, rng)
	case KindRandom:
		pages := c.Set
		if pages <= 0 {
			pages = 4096
		}
		return &randomStream{base: regionBase(idx), pc: pcBase(idx), pages: pages}
	case KindHot:
		return newHotStream(c, idx, rng)
	default:
		panic(fmt.Sprintf("workload: unknown component kind %d", c.Kind))
	}
}

// deltaPatternStream cycles Pattern within pages of its region and advances
// to a fresh page when the next delta would leave the page.
type deltaPatternStream struct {
	base    uint64
	pc      uint64
	pattern []int
	noise   float64
	morph   int
	count   int
	page    uint64
	offset  int
	pos     int
}

func (d *deltaPatternStream) chain() uint32 { return 0 }

func (d *deltaPatternStream) next(rng *rand.Rand) (uint64, uint64) {
	d.count++
	if d.morph > 0 && d.count%d.morph == 0 {
		// Phase change: a fresh random pattern of 2-4 small deltas.
		n := 2 + rng.Intn(3)
		d.pattern = d.pattern[:0]
		for i := 0; i < n; i++ {
			d.pattern = append(d.pattern, 1+rng.Intn(12))
		}
		d.pos = 0
	}
	if d.noise > 0 && rng.Float64() < d.noise {
		off := rng.Intn(trace.BlocksPerPage)
		return d.pc, d.base + d.page*trace.PageBytes + uint64(off)*trace.BlockBytes
	}
	delta := d.pattern[d.pos%len(d.pattern)]
	d.pos++
	next := d.offset + delta
	if next < 0 || next >= trace.BlocksPerPage {
		// Pattern walked off the page: start over on the next page.
		d.page++
		d.offset = 0
		d.pos = 1 // the first delta of the pattern was "consumed" landing here
		next = 0
	}
	d.offset = next
	return d.pc, d.base + d.page*trace.PageBytes + uint64(d.offset)*trace.BlockBytes
}

// strideStream walks memory with a fixed block stride, crossing pages.
type strideStream struct {
	base   uint64
	pc     uint64
	stride int
	block  uint64
}

func (s *strideStream) chain() uint32 { return 0 }

func (s *strideStream) next(rng *rand.Rand) (uint64, uint64) {
	addr := s.base + s.block*trace.BlockBytes
	s.block += uint64(s.stride)
	// Wrap within a 4 GB window to bound the footprint.
	if s.block >= (1<<32)/trace.BlockBytes {
		s.block = 0
	}
	return s.pc, addr
}

// pointerChaseStream follows a fixed ring of pseudo-random block addresses.
// Branchy nodes have two successors chosen by a hidden alternating bit, so a
// last-successor predictor is right only half the time on them while a
// context-aware predictor can follow the alternation.
type pointerChaseStream struct {
	chainBase uint32
	pcs       []uint64
	nodes     []uint64 // block addresses
	succ      []int32
	succAlt   []int32 // -1 if not branchy
	state     []bool  // hidden alternating bit per branchy node
	cursors   []int   // one traversal cursor per concurrent chain
	curChain  int     // cursor taking the next hop (round-robin)
	pcPos     int
	fields    int
	// fieldsLeft counts the independent field reads still due for the
	// current cursor's node before its next serializing pointer hop;
	// lastChain is the chain id of the most recently emitted access.
	fieldsLeft int
	lastChain  uint32
}

func newPointerChase(c Component, idx int, rng *rand.Rand) *pointerChaseStream {
	n := c.Nodes
	if n <= 0 {
		n = 1024
	}
	npc := c.PCs
	if npc <= 0 {
		npc = 1
	}
	fields := c.Fields
	if fields < 1 {
		fields = 1
	}
	chains := c.Chains
	if chains < 1 {
		chains = 1
	}
	s := &pointerChaseStream{
		chainBase: uint32((idx + 1) * 64),
		fields:    fields,
		cursors:   make([]int, chains),
		nodes:     make([]uint64, n),
		succ:      make([]int32, n),
		succAlt:   make([]int32, n),
		state:     make([]bool, n),
		pcs:       make([]uint64, npc),
	}
	for i := range s.pcs {
		s.pcs[i] = pcBase(idx) + uint64(i)*8
	}
	base := regionBase(idx)
	span := uint64(n) * 2 // pack nodes at ~2 blocks per node
	used := make(map[uint64]bool, n)
	for i := range s.nodes {
		// Nodes get distinct block addresses so each has a well-defined
		// temporal successor.
		blk := rng.Uint64() % span
		for used[blk] {
			blk = (blk + 1) % span
		}
		used[blk] = true
		s.nodes[i] = base + blk*trace.BlockBytes
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		s.succ[perm[i]] = int32(perm[(i+1)%n])
		s.succAlt[perm[i]] = -1
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < c.BranchProb {
			s.succAlt[i] = int32(rng.Intn(n))
		}
	}
	for c := range s.cursors {
		s.cursors[c] = rng.Intn(n)
	}
	return s
}

// chain reports the chain id of the most recently emitted access: the
// serializing pointer hops carry the chain; field reads are independent.
func (s *pointerChaseStream) chain() uint32 { return s.lastChain }

func (s *pointerChaseStream) next(rng *rand.Rand) (uint64, uint64) {
	pc := s.pcs[s.pcPos]
	s.pcPos = (s.pcPos + 1) % len(s.pcs)
	cur := s.cursors[s.curChain]
	if s.fieldsLeft > 0 {
		// Independent field read: a block adjacent to the current node.
		s.fieldsLeft--
		s.lastChain = 0
		return pc, s.nodes[cur] + uint64(s.fields-s.fieldsLeft)*trace.BlockBytes
	}
	addr := s.nodes[cur]
	nxt := s.succ[cur]
	if alt := s.succAlt[cur]; alt >= 0 {
		if s.state[cur] {
			nxt = alt
		}
		s.state[cur] = !s.state[cur]
	}
	s.cursors[s.curChain] = int(nxt)
	s.fieldsLeft = s.fields - 1
	s.lastChain = s.chainBase + uint32(s.curChain)
	s.curChain = (s.curChain + 1) % len(s.cursors)
	return pc, addr
}

// temporalLoopStream replays a fixed random address sequence forever.
type temporalLoopStream struct {
	chainBase uint32
	pc        uint64
	seq       []uint64
	cursors   []int
	curChain  int
	base      uint64
}

func newTemporalLoop(c Component, idx int, rng *rand.Rand) *temporalLoopStream {
	n := c.Nodes
	if n <= 0 {
		n = 1024
	}
	chains := c.Chains
	if chains < 1 {
		chains = 1
	}
	s := &temporalLoopStream{
		chainBase: uint32((idx + 1) * 64),
		pc:        pcBase(idx),
		base:      regionBase(idx),
		cursors:   make([]int, chains),
	}
	// Loop entries get distinct block addresses: a temporal loop models a
	// pointer-linked structure traversed in order, where each element has
	// one well-defined successor. (Sampling with replacement would give
	// duplicated addresses conflicting successors and silently break
	// last-successor temporal prediction.)
	s.seq = make([]uint64, n)
	span := uint64(n) * 2
	used := make(map[uint64]bool, n)
	for i := range s.seq {
		blk := rng.Uint64() % span
		for used[blk] {
			blk = (blk + 1) % span
		}
		used[blk] = true
		s.seq[i] = s.base + blk*trace.BlockBytes
	}
	for i := range s.cursors {
		s.cursors[i] = i * n / chains // staggered around the loop
	}
	return s
}

// chain marks temporal-loop loads as serially dependent, modelling
// linked traversals of event queues and object graphs.
func (s *temporalLoopStream) chain() uint32 { return s.chainBase + uint32(s.curChain) }

func (s *temporalLoopStream) next(rng *rand.Rand) (uint64, uint64) {
	c := (s.curChain + 1) % len(s.cursors)
	s.curChain = c
	addr := s.seq[s.cursors[c]]
	s.cursors[c] = (s.cursors[c] + 1) % len(s.seq)
	return s.pc, addr
}

// randomStream touches uniformly random blocks within its region.
type randomStream struct {
	base  uint64
	pc    uint64
	pages int
}

func (s *randomStream) chain() uint32 { return 0 }

func (s *randomStream) next(rng *rand.Rand) (uint64, uint64) {
	page := uint64(rng.Intn(s.pages))
	off := uint64(rng.Intn(trace.BlocksPerPage))
	return s.pc, s.base + page*trace.PageBytes + off*trace.BlockBytes
}

// hotStream reuses a small working set with a skewed (approximately Zipfian)
// distribution so most of its accesses hit in the upper-level caches.
type hotStream struct {
	pc    uint64
	addrs []uint64
}

func newHotStream(c Component, idx int, rng *rand.Rand) *hotStream {
	n := c.Set
	if n <= 0 {
		n = 256
	}
	s := &hotStream{pc: pcBase(idx)}
	base := regionBase(idx)
	s.addrs = make([]uint64, n)
	for i := range s.addrs {
		s.addrs[i] = base + uint64(i)*trace.BlockBytes
	}
	return s
}

func (s *hotStream) chain() uint32 { return 0 }

func (s *hotStream) next(rng *rand.Rand) (uint64, uint64) {
	// Squaring a uniform variate skews the index toward 0: a cheap
	// Zipf-like distribution.
	f := rng.Float64()
	i := int(f * f * float64(len(s.addrs)))
	if i >= len(s.addrs) {
		i = len(s.addrs) - 1
	}
	return s.pc, s.addrs[i]
}
