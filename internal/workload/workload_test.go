package workload

import (
	"testing"

	"pathfinder/internal/trace"
)

func TestSuiteHasElevenBenchmarks(t *testing.T) {
	if got := len(Suite()); got != 11 {
		t.Fatalf("Suite() has %d benchmarks, want 11 (Table 5)", got)
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestSuiteComponentsWellFormed(t *testing.T) {
	for _, s := range Suite() {
		if s.IDGap <= 0 {
			t.Errorf("%s: IDGap = %d, want > 0", s.Name, s.IDGap)
		}
		total := 0
		for i, c := range s.Components {
			if c.Weight <= 0 {
				t.Errorf("%s component %d: weight %d", s.Name, i, c.Weight)
			}
			total += c.Weight
			if c.Kind == KindDeltaPattern && len(c.Pattern) == 0 {
				t.Errorf("%s component %d: delta pattern empty", s.Name, i)
			}
		}
		if total != 100 {
			t.Errorf("%s: component weights sum to %d, want 100", s.Name, total)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("605-mcf-s1")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if s.Suite != "SPEC17" {
		t.Errorf("mcf suite = %q, want SPEC17", s.Suite)
	}
	if _, err := Lookup("no-such-trace"); err == nil {
		t.Error("Lookup accepted unknown name")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("cc-5", 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("cc-5", 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate("cc-5", 1000, 1)
	b, _ := Generate("cc-5", 1000, 2)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateIDsMonotonic(t *testing.T) {
	for _, name := range Names() {
		accs, err := Generate(name, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		prev := uint64(0)
		for i, a := range accs {
			if a.ID <= prev {
				t.Fatalf("%s access %d: ID %d <= previous %d", name, i, a.ID, prev)
			}
			prev = a.ID
		}
	}
}

func TestGenerateIDGapMatchesSpec(t *testing.T) {
	for _, s := range Suite() {
		n := 20000
		accs := s.Generate(n, 3)
		gap := float64(accs[n-1].ID-accs[0].ID) / float64(n-1)
		want := float64(s.IDGap)
		if gap < 0.8*want || gap > 1.2*want {
			t.Errorf("%s: mean ID gap %.1f, want ~%.0f", s.Name, gap, want)
		}
	}
}

func TestComponentRegionsDisjoint(t *testing.T) {
	// Components must not alias pages; each gets a 16 GB region.
	for _, s := range Suite() {
		accs := s.Generate(10000, 5)
		for i, a := range accs {
			region := a.Addr >> 34
			if region == 0 || int(region) > len(s.Components) {
				t.Fatalf("%s access %d: addr %#x outside any component region", s.Name, i, a.Addr)
			}
		}
	}
}

func TestDeltaPatternStreamFollowsPattern(t *testing.T) {
	spec := Spec{
		Name: "pure-pattern", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindDeltaPattern, Pattern: []int{1, 2, 3}}},
	}
	accs := spec.Generate(200, 9)
	// Deltas within a page must come from the pattern.
	validDelta := map[int]bool{1: true, 2: true, 3: true}
	for i := 1; i < len(accs); i++ {
		if d, ok := trace.Delta(accs[i-1].Block(), accs[i].Block()); ok && d != 0 {
			if !validDelta[d] {
				t.Fatalf("access %d: delta %d not in pattern {1,2,3}", i, d)
			}
		}
	}
}

func TestStrideStream(t *testing.T) {
	spec := Spec{
		Name: "pure-stride", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindStride, Stride: 4}},
	}
	accs := spec.Generate(100, 1)
	for i := 1; i < len(accs); i++ {
		got := int64(accs[i].Block()) - int64(accs[i-1].Block())
		if got != 4 {
			t.Fatalf("access %d: block stride %d, want 4", i, got)
		}
	}
}

func TestTemporalLoopRepeats(t *testing.T) {
	spec := Spec{
		Name: "pure-loop", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindTemporalLoop, Nodes: 50}},
	}
	accs := spec.Generate(150, 1)
	for i := 0; i < 50; i++ {
		if accs[i].Addr != accs[i+50].Addr || accs[i].Addr != accs[i+100].Addr {
			t.Fatalf("loop position %d does not repeat", i)
		}
	}
}

func TestPointerChaseDeterministicSuccessors(t *testing.T) {
	spec := Spec{
		Name: "pure-chase", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindPointerChase, Nodes: 64}},
	}
	accs := spec.Generate(256, 1)
	// Without branchiness, every address has exactly one successor.
	succ := make(map[uint64]uint64)
	for i := 1; i < len(accs); i++ {
		prev, cur := accs[i-1].Addr, accs[i].Addr
		if want, ok := succ[prev]; ok && want != cur {
			t.Fatalf("address %#x has two successors %#x and %#x", prev, want, cur)
		}
		succ[prev] = cur
	}
}

func TestHotStreamSmallFootprint(t *testing.T) {
	spec := Spec{
		Name: "pure-hot", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindHot, Set: 64}},
	}
	accs := spec.Generate(5000, 1)
	distinct := make(map[uint64]bool)
	for _, a := range accs {
		distinct[a.Addr] = true
	}
	if len(distinct) > 64 {
		t.Fatalf("hot stream touched %d distinct addresses, want <= 64", len(distinct))
	}
}

func TestComputeDeltaStats(t *testing.T) {
	// Three accesses on one page: offsets 0, 2, 5 -> deltas {2, 3}.
	base := uint64(1) << 34
	accs := []trace.Access{
		{Addr: base},
		{Addr: base + 2*trace.BlockBytes},
		{Addr: base + 5*trace.BlockBytes},
		{Addr: base + trace.PageBytes}, // new page, no delta
	}
	st := ComputeDeltaStats(accs, 31, 15)
	if st.Deltas != 2 {
		t.Fatalf("Deltas = %d, want 2", st.Deltas)
	}
	if st.InRange[31] != 2 || st.InRange[15] != 2 {
		t.Fatalf("InRange = %v, want both 2", st.InRange)
	}
}

func TestDeltaStatsRangesNested(t *testing.T) {
	// |d| < 15 implies |d| < 31, so the counts must be ordered.
	for _, name := range []string{"cc-5", "605-mcf-s1", "623-xalan-s1"} {
		accs, _ := Generate(name, 20000, 11)
		st := ComputeDeltaStats(accs, 31, 15)
		if st.InRange[15] > st.InRange[31] {
			t.Errorf("%s: InRange[15]=%d > InRange[31]=%d", name, st.InRange[15], st.InRange[31])
		}
		if st.InRange[31] > st.Deltas {
			t.Errorf("%s: InRange[31]=%d > Deltas=%d", name, st.InRange[31], st.Deltas)
		}
	}
}

func TestDeltaDensityOrdering(t *testing.T) {
	// The paper's Table 8: bfs is delta-dense, mcf and astar are sparse.
	// Our synthetic stand-ins must preserve that ordering.
	density := func(name string) float64 {
		accs, err := Generate(name, 30000, 13)
		if err != nil {
			t.Fatal(err)
		}
		st := ComputeDeltaStats(accs)
		return st.PerWindow.AvgDeltas
	}
	bfs := density("bfs-10")
	mcf := density("605-mcf-s1")
	astar := density("473-astar-s1")
	if bfs <= mcf || bfs <= astar {
		t.Errorf("delta density: bfs=%.0f should exceed mcf=%.0f and astar=%.0f", bfs, mcf, astar)
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("cc-5", 100_000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPointerChaseFields(t *testing.T) {
	spec := Spec{
		Name: "fields", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindPointerChase, Nodes: 64, Fields: 3}},
	}
	accs := spec.Generate(300, 1)
	// One hop (chained) followed by two independent field reads.
	chained, free := 0, 0
	for _, a := range accs {
		if a.Chain != 0 {
			chained++
		} else {
			free++
		}
	}
	if chained == 0 || free == 0 {
		t.Fatalf("chained=%d free=%d; want both", chained, free)
	}
	ratio := float64(free) / float64(chained)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("fields ratio %.2f, want ~2 (Fields=3)", ratio)
	}
}

func TestPointerChaseMultipleChains(t *testing.T) {
	spec := Spec{
		Name: "chains", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindPointerChase, Nodes: 64, Chains: 3}},
	}
	accs := spec.Generate(300, 1)
	ids := map[uint32]bool{}
	for _, a := range accs {
		if a.Chain != 0 {
			ids[a.Chain] = true
		}
	}
	if len(ids) != 3 {
		t.Errorf("distinct chain ids = %d, want 3", len(ids))
	}
}

func TestTemporalLoopChainsDistinct(t *testing.T) {
	spec := Spec{
		Name: "loopchains", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindTemporalLoop, Nodes: 60, Chains: 2}},
	}
	accs := spec.Generate(200, 1)
	ids := map[uint32]bool{}
	for _, a := range accs {
		ids[a.Chain] = true
	}
	if len(ids) != 2 {
		t.Errorf("distinct loop chain ids = %d, want 2", len(ids))
	}
}

func TestDeltaPatternMorphChangesPattern(t *testing.T) {
	spec := Spec{
		Name: "morph", IDGap: 10,
		Components: []Component{{Weight: 100, Kind: KindDeltaPattern, Pattern: []int{1, 2, 3}, MorphEvery: 500}},
	}
	accs := spec.Generate(2000, 1)
	// Collect positive same-page deltas before and after the morph point.
	deltasIn := func(lo, hi int) map[int]bool {
		out := map[int]bool{}
		for i := lo + 1; i < hi; i++ {
			if d, ok := trace.Delta(accs[i-1].Block(), accs[i].Block()); ok && d > 0 {
				out[d] = true
			}
		}
		return out
	}
	before := deltasIn(0, 450)
	after := deltasIn(1500, 2000)
	same := true
	for d := range after {
		if !before[d] {
			same = false
		}
	}
	for d := range before {
		if !after[d] {
			same = false
		}
	}
	if same {
		t.Error("pattern did not change after morph point")
	}
}

func TestChainsAreSerialInSim(t *testing.T) {
	// Sanity: chain ids survive into the trace and are non-zero only for
	// chase/loop components across the whole suite.
	for _, s := range Suite() {
		accs := s.Generate(3000, 5)
		sawChain := false
		for _, a := range accs {
			if a.Chain != 0 {
				sawChain = true
				break
			}
		}
		hasChainComponent := false
		for _, c := range s.Components {
			if c.Kind == KindPointerChase || c.Kind == KindTemporalLoop {
				hasChainComponent = true
			}
		}
		if hasChainComponent && !sawChain {
			t.Errorf("%s: no chained accesses despite chase/loop components", s.Name)
		}
	}
}

func TestFilterCacheDropsHits(t *testing.T) {
	// Repeated accesses to one block: only the first survives filtering.
	accs := make([]trace.Access, 10)
	for i := range accs {
		accs[i] = trace.Access{ID: uint64(i + 1), Addr: 4096}
	}
	got := FilterCache(accs, 4, 2)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("filtered = %v, want only the first access", got)
	}
}

func TestFilterCacheKeepsMisses(t *testing.T) {
	// Distinct blocks exceed the cache: all survive (capacity misses or
	// cold misses).
	accs := make([]trace.Access, 100)
	for i := range accs {
		accs[i] = trace.Access{ID: uint64(i + 1), Addr: uint64(i) * trace.PageBytes}
	}
	got := FilterCache(accs, 2, 2)
	if len(got) != 100 {
		t.Fatalf("filtered kept %d of 100 cold misses", len(got))
	}
}

func TestFilterCacheZeroGeometryIsIdentity(t *testing.T) {
	accs, _ := Generate("cc-5", 2000, 1)
	got := FilterCache(accs, 0, 0)
	if len(got) != len(accs) {
		t.Fatalf("identity filter changed length: %d vs %d", len(got), len(accs))
	}
}

func TestFilterCacheReducesDeltaDensity(t *testing.T) {
	// Filtering through an L1-sized cache must reduce same-page delta
	// density (the Table 7/8 deviation note in EXPERIMENTS.md).
	accs, _ := Generate("605-mcf-s1", 30000, 1)
	raw := ComputeDeltaStats(accs)
	filtered := ComputeDeltaStats(FilterCache(accs, 64, 8))
	if filtered.PerWindow.AvgDeltas >= raw.PerWindow.AvgDeltas {
		t.Errorf("filtering did not reduce delta density: %.0f vs %.0f",
			filtered.PerWindow.AvgDeltas, raw.PerWindow.AvgDeltas)
	}
}

func TestGenerateBFSShape(t *testing.T) {
	accs := GenerateBFS(20_000, 1)
	if len(accs) != 20_000 {
		t.Fatalf("got %d accesses", len(accs))
	}
	// IDs strictly increase; the four CSR structures all appear; the
	// state lookups are chained.
	var pcs = map[uint64]int{}
	chained := 0
	prev := uint64(0)
	for _, a := range accs {
		if a.ID <= prev {
			t.Fatal("IDs not increasing")
		}
		prev = a.ID
		pcs[a.PC]++
		if a.Chain != 0 {
			chained++
		}
	}
	if len(pcs) != 4 {
		t.Fatalf("distinct PCs = %d, want 4 (offsets/edges/state/queue)", len(pcs))
	}
	if chained == 0 {
		t.Fatal("no chained (data-dependent) loads")
	}
	// Edge scans dominate and are delta-regular: the edges PC should be
	// the most frequent.
	if pcs[0x500008] < pcs[0x500000] {
		t.Errorf("edge loads (%d) fewer than offsets loads (%d)", pcs[0x500008], pcs[0x500000])
	}
}

func TestGenerateCCDeterministic(t *testing.T) {
	a := GenerateCC(5_000, 3)
	b := GenerateCC(5_000, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestGenerateExecutedDispatch(t *testing.T) {
	if _, err := GenerateExecuted("bfs-csr", 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateExecuted("nope", 100, 1); err == nil {
		t.Error("accepted unknown kernel")
	}
	// Generate() falls through to executed kernels.
	accs, err := Generate("cc-csr", 100, 1)
	if err != nil || len(accs) != 100 {
		t.Fatalf("Generate(cc-csr) = %d accs, err %v", len(accs), err)
	}
}

func TestExecutedKernelsHaveSequentialEdgeScans(t *testing.T) {
	// The edge-array scans must produce small positive deltas (4-byte
	// edges, so consecutive edges usually share a block: delta 0 or 1).
	accs := GenerateCC(20_000, 1)
	small, total := 0, 0
	var lastEdgeBlock uint64
	seen := false
	for _, a := range accs {
		if a.PC != 0x500008 {
			continue
		}
		b := a.Block()
		if seen {
			d := int64(b) - int64(lastEdgeBlock)
			total++
			if d >= 0 && d <= 1 {
				small++
			}
		}
		lastEdgeBlock = b
		seen = true
	}
	if total == 0 || float64(small)/float64(total) < 0.8 {
		t.Errorf("edge scan not sequential: %d/%d small deltas", small, total)
	}
}
