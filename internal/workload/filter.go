package workload

import "pathfinder/internal/trace"

// FilterCache returns the subsequence of accesses that miss a small
// set-associative LRU cache of the given geometry (sets × ways blocks).
//
// The paper's traces come from the ML Prefetching Competition, where the
// recorded stream is the loads that reach the LLC — i.e. already filtered
// through L1/L2. Our generators emit raw load streams, which is why the
// absolute delta densities of Tables 7/8 run higher here (see
// EXPERIMENTS.md): spatially-adjacent field reads hit upper-level caches
// in the paper's setup and never appear in its traces. Filtering a
// generated trace through this function reproduces the paper's trace
// semantics when that distinction matters.
func FilterCache(accs []trace.Access, sets, ways int) []trace.Access {
	if sets <= 0 || ways <= 0 {
		out := make([]trace.Access, len(accs))
		copy(out, accs)
		return out
	}
	type line struct {
		tag   uint64
		lru   uint64
		valid bool
	}
	lines := make([]line, sets*ways)
	tick := uint64(0)
	var out []trace.Access
	for _, a := range accs {
		tick++
		block := a.Block()
		set := lines[int(block%uint64(sets))*ways:][:ways]
		hit := false
		victim := 0
		for i := range set {
			if set[i].valid && set[i].tag == block {
				set[i].lru = tick
				hit = true
				break
			}
			if !set[i].valid {
				victim = i
			} else if set[victim].valid && set[i].lru < set[victim].lru {
				victim = i
			}
		}
		if hit {
			continue
		}
		set[victim] = line{tag: block, lru: tick, valid: true}
		out = append(out, a)
	}
	return out
}
