package workload

import (
	"io"
	"reflect"
	"testing"

	"pathfinder/internal/trace"
)

// TestSourceMatchesGenerate is the generator parity test: for every spec
// in the suite, streaming n records must be bit-identical to
// materializing them (same RNG draw order), pinned by record equality and
// by the golden FNV stream hash.
func TestSourceMatchesGenerate(t *testing.T) {
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			const n, seed = 5000, 3
			want := spec.Generate(n, seed)
			got, err := trace.Collect(spec.Source(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("streamed trace differs from materialized trace")
			}
			h1, c1, err := trace.HashSource(trace.NewSliceSource(want))
			if err != nil {
				t.Fatal(err)
			}
			h2, c2, err := trace.HashSource(spec.Source(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 || c1 != c2 {
				t.Fatalf("stream hash %#x/%d, slice hash %#x/%d", h2, c2, h1, c1)
			}
		})
	}
}

func TestSourceRemaining(t *testing.T) {
	spec := Suite()[0]
	src := spec.Source(10, 1).(*specSource)
	if n, ok := src.Remaining(); !ok || n != 10 {
		t.Fatalf("Remaining = %d,%v; want 10,true", n, ok)
	}
	var a trace.Access
	if err := src.Next(&a); err != nil {
		t.Fatal(err)
	}
	if n, _ := src.Remaining(); n != 9 {
		t.Fatalf("Remaining after one Next = %d, want 9", n)
	}
	for {
		if err := src.Next(&a); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Next(&a); err != io.EOF {
		t.Fatalf("Next past the end = %v, want io.EOF", err)
	}
}

// TestSourceUnbounded checks a negative n streams indefinitely with an
// unknown length — the daemon-ingestion mode — and that its prefix agrees
// with the bounded stream.
func TestSourceUnbounded(t *testing.T) {
	spec := Suite()[0]
	src := spec.Source(-1, 1)
	if _, ok := src.(*specSource).Remaining(); ok {
		t.Fatal("unbounded source claimed a known length")
	}
	bounded := spec.Source(2000, 1)
	var a, b trace.Access
	for i := 0; i < 2000; i++ {
		if err := src.Next(&a); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if err := bounded.Next(&b); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if a != b {
			t.Fatalf("record %d: unbounded %+v vs bounded %+v", i, a, b)
		}
	}
	// The unbounded stream keeps going where the bounded one ended.
	if err := bounded.Next(&b); err != io.EOF {
		t.Fatalf("bounded stream did not end: %v", err)
	}
	if err := src.Next(&a); err != nil {
		t.Fatalf("unbounded stream ended: %v", err)
	}
}

func TestSourceWeightlessMix(t *testing.T) {
	spec := Spec{Name: "empty", IDGap: 10}
	got, err := trace.Collect(spec.Source(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("weightless mix streamed %d records, want 0", len(got))
	}
}

// TestNewSourceResolution mirrors Generate's name handling: suite specs
// stream, graph kernels materialize behind a SliceSource, unknown names
// error.
func TestNewSourceResolution(t *testing.T) {
	src, err := NewSource("cc-5", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate("cc-5", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("NewSource(cc-5) differs from Generate")
	}

	src, err = NewSource("bfs-csr", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err = Generate("bfs-csr", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("NewSource(bfs-csr) differs from Generate")
	}

	if _, err := NewSource("no-such-benchmark", 10, 1); err == nil {
		t.Fatal("NewSource accepted an unknown benchmark")
	}
}

func BenchmarkSourceNext(b *testing.B) {
	src := Suite()[0].Source(-1, 1)
	var a trace.Access
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Next(&a); err != nil {
			b.Fatal(err)
		}
	}
}
