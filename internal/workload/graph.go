package workload

import (
	"fmt"
	"math/rand"

	"pathfinder/internal/trace"
)

// This file provides *executed* graph workloads: instead of sampling an
// abstract pattern mixture, it builds a synthetic graph in CSR form, runs
// the actual GAP kernels (BFS, connected components), and records the
// memory accesses the traversal performs — offsets-array reads, edge-array
// scans, and random visited/label-array lookups, each from its own load PC
// and laid out in its own memory region, with the pointer-dependent loads
// chained. The result is the genuine bimodal access structure of GAP's
// cc/bfs rather than a statistical imitation; `tracegen -trace bfs-csr`
// and pfsim accept these alongside the Table 5 suite.

// graphLayout fixes the virtual memory map of the CSR structures.
const (
	graphOffsetsBase = uint64(0x10) << 40 // row-offset array (one u64 per vertex)
	graphEdgesBase   = uint64(0x11) << 40 // edge array (one u32 per edge)
	graphStateBase   = uint64(0x12) << 40 // visited/label array (one u32 per vertex)
	graphQueueBase   = uint64(0x13) << 40 // frontier queue (one u32 per slot)

	graphOffsetsPC = 0x500000
	graphEdgesPC   = 0x500008
	graphStatePC   = 0x500010
	graphQueuePC   = 0x500018
)

// csrGraph is a synthetic graph in compressed-sparse-row form.
type csrGraph struct {
	offsets []int32 // len = vertices+1
	edges   []int32
}

// newCSRGraph builds a random graph with the given vertex count and mean
// degree, with a mild power-law skew (some high-degree hubs, as in real
// graph benchmarks).
func newCSRGraph(vertices, meanDegree int, rng *rand.Rand) *csrGraph {
	degrees := make([]int32, vertices)
	total := 0
	for v := range degrees {
		// Squared-uniform skew: mostly small degrees, a few hubs.
		f := rng.Float64()
		d := int32(f * f * float64(3*meanDegree))
		if d < 1 {
			d = 1
		}
		degrees[v] = d
		total += int(d)
	}
	g := &csrGraph{
		offsets: make([]int32, vertices+1),
		edges:   make([]int32, total),
	}
	for v := 0; v < vertices; v++ {
		g.offsets[v+1] = g.offsets[v] + degrees[v]
	}
	for i := range g.edges {
		g.edges[i] = int32(rng.Intn(vertices))
	}
	return g
}

// graphTracer accumulates the traversal's memory accesses.
type graphTracer struct {
	accs  []trace.Access
	id    uint64
	gap   uint64
	rng   *rand.Rand
	limit int
}

// access appends one load; chain 0 means independent.
func (t *graphTracer) access(pc, addr uint64, chain uint32) {
	if t.full() {
		return
	}
	t.id += 1 + uint64(t.rng.Intn(int(2*t.gap-1)))
	t.accs = append(t.accs, trace.Access{ID: t.id, PC: pc, Addr: addr, Chain: chain})
}

func (t *graphTracer) full() bool { return len(t.accs) >= t.limit }

// loadOffsets reads offsets[v] and offsets[v+1] (adjacent, often the same
// cache block).
func (t *graphTracer) loadOffsets(v int32) {
	t.access(graphOffsetsPC, graphOffsetsBase+uint64(v)*8, 0)
}

// loadEdge reads edges[i] — the sequential scan PATHFINDER's delta
// learning feeds on.
func (t *graphTracer) loadEdge(i int32) {
	t.access(graphEdgesPC, graphEdgesBase+uint64(i)*4, 0)
}

// loadState reads state[u] for a neighbour u — the random lookup that is
// data-dependent on the edge value just loaded (chain 1).
func (t *graphTracer) loadState(u int32) {
	t.access(graphStatePC, graphStateBase+uint64(u)*4, 1)
}

// loadQueue reads the frontier queue sequentially.
func (t *graphTracer) loadQueue(slot int) {
	t.access(graphQueuePC, graphQueueBase+uint64(slot)*4, 0)
}

// GenerateBFS executes breadth-first search over a synthetic CSR graph and
// returns the first n induced loads. The trace alternates sequential
// edge-array scans with data-dependent visited-array lookups — GAP bfs's
// signature access mix.
func GenerateBFS(n int, seed int64) []trace.Access {
	rng := rand.New(rand.NewSource(seed ^ 0xb45))
	vertices := 48_000
	g := newCSRGraph(vertices, 8, rng)
	t := &graphTracer{gap: 71, rng: rng, limit: n}

	visited := make([]bool, vertices)
	queue := make([]int32, 0, vertices)
	for !t.full() {
		// Start (or restart) from a random unvisited-ish root.
		root := int32(rng.Intn(vertices))
		visited[root] = true
		queue = append(queue[:0], root)
		for qi := 0; qi < len(queue) && !t.full(); qi++ {
			t.loadQueue(qi)
			v := queue[qi]
			t.loadOffsets(v)
			for i := g.offsets[v]; i < g.offsets[v+1] && !t.full(); i++ {
				t.loadEdge(i)
				u := g.edges[i]
				t.loadState(u)
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		// Graph exhausted before the trace filled: clear and go again.
		for i := range visited {
			visited[i] = false
		}
	}
	return t.accs
}

// GenerateCC executes label-propagation connected components over a
// synthetic CSR graph and returns the first n induced loads: repeated full
// edge scans (very delta-regular) with data-dependent label lookups.
func GenerateCC(n int, seed int64) []trace.Access {
	rng := rand.New(rand.NewSource(seed ^ 0xcc))
	vertices := 40_000
	g := newCSRGraph(vertices, 6, rng)
	t := &graphTracer{gap: 31, rng: rng, limit: n}

	labels := make([]int32, vertices)
	for v := range labels {
		labels[v] = int32(v)
	}
	for !t.full() {
		changed := false
		for v := int32(0); v < int32(vertices) && !t.full(); v++ {
			t.loadOffsets(v)
			t.loadState(v) // own label
			best := labels[v]
			for i := g.offsets[v]; i < g.offsets[v+1] && !t.full(); i++ {
				t.loadEdge(i)
				u := g.edges[i]
				t.loadState(u)
				if labels[u] < best {
					best = labels[u]
				}
			}
			if best < labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			// Converged: reshuffle labels so the kernel keeps running.
			for v := range labels {
				labels[v] = int32(rng.Intn(vertices))
			}
		}
	}
	return t.accs
}

// GenerateExecuted dispatches the executed-kernel traces by name
// ("bfs-csr", "cc-csr"); Generate falls back to it for those names.
func GenerateExecuted(name string, n int, seed int64) ([]trace.Access, error) {
	switch name {
	case "bfs-csr":
		return GenerateBFS(n, seed), nil
	case "cc-csr":
		return GenerateCC(n, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown executed kernel %q", name)
}
