package workload

import (
	"io"
	"math/rand"
	"sort"

	"pathfinder/internal/trace"
)

// specSource is a trace.Source that synthesizes the spec's access stream
// one record at a time. It performs exactly the RNG draws of
// Spec.GenerateCtx in exactly the same order — component streams built up
// front, then per record the gap draw, the component pick, and the
// component's own draws — so the streamed trace is bit-identical to the
// materialized one for the same (n, seed).
type specSource struct {
	rng     *rand.Rand
	streams []stream
	weights []int
	total   int
	idGap   int
	n       int // records to emit; negative for an unbounded stream
	i       int
	id      uint64
}

// Source returns a trace.Source yielding the same n records Generate
// would materialize for this seed, one at a time — the generator's heap
// footprint is its component state, independent of n. A negative n yields
// an unbounded stream that never terminates on its own: the live-capture
// stand-in for daemon-style consumers, usable only with streaming sinks.
func (s Spec) Source(n int, seed int64) trace.Source {
	rng := rand.New(rand.NewSource(seed ^ int64(hashName(s.Name))))
	src := &specSource{rng: rng, idGap: s.IDGap, n: n}
	src.streams = make([]stream, len(s.Components))
	src.weights = make([]int, len(s.Components))
	for i, c := range s.Components {
		src.streams[i] = newStream(c, i, rng)
		src.total += c.Weight
		src.weights[i] = src.total
	}
	if src.total == 0 {
		src.n = 0 // a weightless mix generates nothing (Generate returns nil)
	}
	return src
}

// Remaining reports how many records are left; unknown for an unbounded
// stream. Known lengths let collectors pre-size and let the simulator keep
// its up-front warmup validation.
func (s *specSource) Remaining() (uint64, bool) {
	if s.n < 0 {
		return 0, false
	}
	return uint64(s.n - s.i), true
}

// Next implements trace.Source.
func (s *specSource) Next(a *trace.Access) error {
	if s.n >= 0 && s.i >= s.n {
		return io.EOF
	}
	// Geometric-ish instruction gap with the Table 5 mean.
	gap := 1 + s.rng.Intn(2*s.idGap-1)
	s.id += uint64(gap)
	pick := s.rng.Intn(s.total)
	j := sort.SearchInts(s.weights, pick+1)
	pc, addr := s.streams[j].next(s.rng)
	*a = trace.Access{ID: s.id, PC: pc, Addr: addr, Chain: s.streams[j].chain()}
	s.i++
	return nil
}

// NewSource returns a streaming generator for the named benchmark,
// mirroring Generate's name resolution: Table 5 specs stream record by
// record; the executed graph kernels (bfs-csr, cc-csr) run to completion
// and are served from the materialized slice, since executing a kernel is
// inherently a batch step. A negative n is only meaningful for spec
// workloads (graph kernels need a concrete length).
func NewSource(name string, n int, seed int64) (trace.Source, error) {
	spec, err := Lookup(name)
	if err != nil {
		if accs, err2 := GenerateExecuted(name, n, seed); err2 == nil {
			return trace.NewSliceSource(accs), nil
		}
		return nil, err
	}
	return spec.Source(n, seed), nil
}
