package workload

import (
	"sort"

	"pathfinder/internal/trace"
)

// DeltaStats summarises the within-page delta behaviour of a trace the way
// Tables 7 and 8 of the paper do. A delta is recorded whenever an access
// touches a page that has been touched before: it is the signed block
// distance from the page's previous offset to the new one.
type DeltaStats struct {
	// Accesses is the number of loads examined.
	Accesses int
	// Deltas is the total number of same-page deltas observed.
	Deltas int
	// InRange maps a range bound R to the number of deltas with |d| < R
	// (Table 7 reports R = 31 and R = 15).
	InRange map[int]int
	// PerWindow holds Table 8's per-1K-access statistics.
	PerWindow WindowStats
}

// WindowStats aggregates per-window (1K accesses) delta statistics, averaged
// over all full windows of the trace (Table 8).
type WindowStats struct {
	// Windows is the number of full windows measured.
	Windows int
	// AvgDeltas is the mean number of deltas per window.
	AvgDeltas float64
	// AvgDistinct is the mean number of distinct delta values per window.
	AvgDistinct float64
	// AvgTop5 is the mean summed occurrence count of the five most common
	// distinct deltas per window.
	AvgTop5 float64
}

// ComputeDeltaStats scans a trace and returns its delta statistics for the
// given range bounds (e.g. 31 and 15 for Table 7).
func ComputeDeltaStats(accs []trace.Access, ranges ...int) DeltaStats {
	st := DeltaStats{Accesses: len(accs), InRange: make(map[int]int, len(ranges))}
	for _, r := range ranges {
		st.InRange[r] = 0
	}
	lastOffset := make(map[uint64]int) // page -> last offset
	const window = 1000
	var (
		winDeltas  int
		winCounts  = make(map[int]int)
		sumDeltas  int
		sumDist    int
		sumTop5    int
		numWindows int
	)
	flush := func() {
		sumDeltas += winDeltas
		sumDist += len(winCounts)
		top := make([]int, 0, len(winCounts))
		for _, c := range winCounts {
			top = append(top, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(top)))
		for i := 0; i < len(top) && i < 5; i++ {
			sumTop5 += top[i]
		}
		numWindows++
		winDeltas = 0
		winCounts = make(map[int]int)
	}
	for i, a := range accs {
		page, off := a.Page(), a.Offset()
		if prev, ok := lastOffset[page]; ok {
			d := off - prev
			st.Deltas++
			winDeltas++
			winCounts[d]++
			for _, r := range ranges {
				if d > -r && d < r {
					st.InRange[r]++
				}
			}
		}
		lastOffset[page] = off
		if (i+1)%window == 0 {
			flush()
		}
	}
	if numWindows > 0 {
		st.PerWindow = WindowStats{
			Windows:     numWindows,
			AvgDeltas:   float64(sumDeltas) / float64(numWindows),
			AvgDistinct: float64(sumDist) / float64(numWindows),
			AvgTop5:     float64(sumTop5) / float64(numWindows),
		}
	}
	return st
}
