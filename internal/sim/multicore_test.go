package sim

import (
	"testing"

	"pathfinder/internal/trace"
)

// offsetTrace is seqTrace displaced into a distinct address region.
func offsetTrace(n int, gap, region uint64) []trace.Access {
	accs := seqTrace(n, gap)
	for i := range accs {
		accs[i].Addr += region << 36
	}
	return accs
}

func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(DefaultConfig(), nil, nil); err == nil {
		t.Error("accepted zero cores")
	}
	cfg := DefaultConfig()
	cfg.Width = 0
	if _, err := RunMulti(cfg, [][]trace.Access{seqTrace(10, 10)}, nil); err == nil {
		t.Error("accepted zero width")
	}
	if _, err := RunMulti(DefaultConfig(), [][]trace.Access{seqTrace(10, 10)}, make([][]trace.Prefetch, 2)); err == nil {
		t.Error("accepted mismatched prefetch file count")
	}
}

func TestRunMultiSingleCoreMatchesRun(t *testing.T) {
	accs := seqTrace(3000, 20)
	var pfsFile []trace.Prefetch
	for i := 0; i+8 < len(accs); i++ {
		pfsFile = append(pfsFile, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+8].Addr})
	}
	single, err := Run(DefaultConfig(), accs, pfsFile)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(DefaultConfig(), [][]trace.Access{accs}, [][]trace.Prefetch{pfsFile})
	if err != nil {
		t.Fatal(err)
	}
	m := multi[0]
	if m.IPC != single.IPC {
		t.Errorf("1-core RunMulti IPC %.4f != Run IPC %.4f", m.IPC, single.IPC)
	}
	if m.PrefUseful != single.PrefUseful || m.LLCLoadMisses != single.LLCLoadMisses {
		t.Errorf("counter mismatch: multi %+v vs single %+v", m, single)
	}
}

func TestRunMultiInterferenceSlowsCores(t *testing.T) {
	// Two memory-hungry cores sharing the LLC and DRAM must each run
	// slower than alone.
	a := offsetTrace(4000, 10, 1)
	b := offsetTrace(4000, 10, 2)
	alone, err := Run(DefaultConfig(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunMulti(DefaultConfig(), [][]trace.Access{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if both[0].IPC >= alone.IPC {
		t.Errorf("core 0 with co-runner IPC %.3f >= alone %.3f", both[0].IPC, alone.IPC)
	}
}

func TestRunMultiLLCContention(t *testing.T) {
	// A cache-fitting working set alone stays resident; with a streaming
	// co-runner thrashing the shared LLC it suffers more LLC misses.
	hot := make([]trace.Access, 6000)
	for i := range hot {
		// Working set of 2048 blocks: fits the scaled LLC (4096) alone.
		hot[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: uint64(i%2048) * trace.BlockBytes * 17}
	}
	stream := offsetTrace(6000, 10, 3)
	cfg := ScaledConfig()

	alone, err := Run(cfg, hot, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunMulti(cfg, [][]trace.Access{hot, stream}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].LLCLoadMisses <= alone.LLCLoadMisses {
		t.Errorf("co-runner did not increase LLC misses: %d vs %d alone",
			shared[0].LLCLoadMisses, alone.LLCLoadMisses)
	}
}

func TestRunMultiPrefetchSharing(t *testing.T) {
	// A prefetch issued by core 0 for a block core 1 demands can satisfy
	// core 1 (shared LLC).
	shared := uint64(5) << 36
	a := make([]trace.Access, 200)
	b := make([]trace.Access, 200)
	for i := range a {
		a[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: shared + uint64(i)*trace.BlockBytes}
		b[i] = trace.Access{ID: uint64(i+1) * 10, PC: 2, Addr: shared + uint64(i)*trace.BlockBytes}
	}
	// Core 0 prefetches the stream well ahead; core 1 has no prefetcher.
	var pfs []trace.Prefetch
	for i := 0; i+4 < len(a); i++ {
		pfs = append(pfs, trace.Prefetch{ID: a[i].ID, Addr: a[i+4].Addr})
	}
	res, err := RunMulti(DefaultConfig(), [][]trace.Access{a, b}, [][]trace.Prefetch{pfs, nil})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].LLCLoadHits == 0 {
		t.Error("core 1 never hit lines prefetched by core 0")
	}
}

func TestRunMultiPerCoreResults(t *testing.T) {
	fast := make([]trace.Access, 1000)
	for i := range fast {
		fast[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: uint64(i%4) * trace.BlockBytes}
	}
	slow := offsetTrace(1000, 10, 4)
	res, err := RunMulti(DefaultConfig(), [][]trace.Access{fast, slow}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if res[0].IPC <= res[1].IPC {
		t.Errorf("cache-resident core IPC %.3f <= streaming core %.3f", res[0].IPC, res[1].IPC)
	}
}
