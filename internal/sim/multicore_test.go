package sim

import (
	"strings"
	"testing"

	"pathfinder/internal/trace"
)

// offsetTrace is seqTrace displaced into a distinct address region.
func offsetTrace(n int, gap, region uint64) []trace.Access {
	accs := seqTrace(n, gap)
	for i := range accs {
		accs[i].Addr += region << 36
	}
	return accs
}

func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(DefaultConfig(), nil, nil); err == nil {
		t.Error("accepted zero cores")
	}
	cfg := DefaultConfig()
	cfg.Width = 0
	if _, err := RunMulti(cfg, [][]trace.Access{seqTrace(10, 10)}, nil); err == nil {
		t.Error("accepted zero width")
	}
	if _, err := RunMulti(DefaultConfig(), [][]trace.Access{seqTrace(10, 10)}, make([][]trace.Prefetch, 2)); err == nil {
		t.Error("accepted mismatched prefetch file count")
	}
}

func TestRunMultiSingleCoreMatchesRun(t *testing.T) {
	accs := seqTrace(3000, 20)
	var pfsFile []trace.Prefetch
	for i := 0; i+8 < len(accs); i++ {
		pfsFile = append(pfsFile, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+8].Addr})
	}
	single, err := Run(DefaultConfig(), accs, pfsFile)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(DefaultConfig(), [][]trace.Access{accs}, [][]trace.Prefetch{pfsFile})
	if err != nil {
		t.Fatal(err)
	}
	m := multi[0]
	if m.IPC != single.IPC {
		t.Errorf("1-core RunMulti IPC %.4f != Run IPC %.4f", m.IPC, single.IPC)
	}
	if m.PrefUseful != single.PrefUseful || m.LLCLoadMisses != single.LLCLoadMisses {
		t.Errorf("counter mismatch: multi %+v vs single %+v", m, single)
	}
}

func TestRunMultiInterferenceSlowsCores(t *testing.T) {
	// Two memory-hungry cores sharing the LLC and DRAM must each run
	// slower than alone.
	a := offsetTrace(4000, 10, 1)
	b := offsetTrace(4000, 10, 2)
	alone, err := Run(DefaultConfig(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunMulti(DefaultConfig(), [][]trace.Access{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if both[0].IPC >= alone.IPC {
		t.Errorf("core 0 with co-runner IPC %.3f >= alone %.3f", both[0].IPC, alone.IPC)
	}
}

func TestRunMultiLLCContention(t *testing.T) {
	// A cache-fitting working set alone stays resident; with a streaming
	// co-runner thrashing the shared LLC it suffers more LLC misses.
	hot := make([]trace.Access, 6000)
	for i := range hot {
		// Working set of 2048 blocks: fits the scaled LLC (4096) alone.
		hot[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: uint64(i%2048) * trace.BlockBytes * 17}
	}
	stream := offsetTrace(6000, 10, 3)
	cfg := ScaledConfig()

	alone, err := Run(cfg, hot, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunMulti(cfg, [][]trace.Access{hot, stream}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].LLCLoadMisses <= alone.LLCLoadMisses {
		t.Errorf("co-runner did not increase LLC misses: %d vs %d alone",
			shared[0].LLCLoadMisses, alone.LLCLoadMisses)
	}
}

func TestRunMultiPrefetchSharing(t *testing.T) {
	// A prefetch issued by core 0 for a block core 1 demands can satisfy
	// core 1 (shared LLC).
	shared := uint64(5) << 36
	a := make([]trace.Access, 200)
	b := make([]trace.Access, 200)
	for i := range a {
		a[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: shared + uint64(i)*trace.BlockBytes}
		b[i] = trace.Access{ID: uint64(i+1) * 10, PC: 2, Addr: shared + uint64(i)*trace.BlockBytes}
	}
	// Core 0 prefetches the stream well ahead; core 1 has no prefetcher.
	var pfs []trace.Prefetch
	for i := 0; i+4 < len(a); i++ {
		pfs = append(pfs, trace.Prefetch{ID: a[i].ID, Addr: a[i+4].Addr})
	}
	res, err := RunMulti(DefaultConfig(), [][]trace.Access{a, b}, [][]trace.Prefetch{pfs, nil})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].LLCLoadHits == 0 {
		t.Error("core 1 never hit lines prefetched by core 0")
	}
}

func TestRunMultiPerCoreResults(t *testing.T) {
	fast := make([]trace.Access, 1000)
	for i := range fast {
		fast[i] = trace.Access{ID: uint64(i+1) * 10, PC: 1, Addr: uint64(i%4) * trace.BlockBytes}
	}
	slow := offsetTrace(1000, 10, 4)
	res, err := RunMulti(DefaultConfig(), [][]trace.Access{fast, slow}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if res[0].IPC <= res[1].IPC {
		t.Errorf("cache-resident core IPC %.3f <= streaming core %.3f", res[0].IPC, res[1].IPC)
	}
}

func TestRunMultiWarmupExcludesLLCStats(t *testing.T) {
	// Mirror of TestRunWarmupExcludesStats for the multicore path: the
	// shared LLC's own counters must cover the measured window only. The
	// private L1/L2 get a ResetStats at the warmup boundary, but the LLC
	// is gated per lookup — before the fix its Hits/Misses also counted
	// every warmup access.
	accs := seqTrace(2000, 10)
	cfg := DefaultConfig()
	cfg.Warmup = 1000
	mem := newSharedMemory(cfg)
	p := newCorePipeline(cfg, newReplayWindow(trace.NewSliceSource(accs)), nil)
	for !p.done() {
		if err := p.step(mem); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCLoadMisses != 1000 {
		t.Errorf("post-warmup LLCLoadMisses = %d, want 1000", res.LLCLoadMisses)
	}
	// With no prefetch file every measured LLC access is a plain lookup,
	// so the cache's counters must equal the per-core measured counters.
	if mem.llc.Hits != res.LLCLoadHits || mem.llc.Misses != res.LLCLoadMisses {
		t.Errorf("shared LLC counters %d/%d include warmup accesses; measured window saw %d/%d",
			mem.llc.Hits, mem.llc.Misses, res.LLCLoadHits, res.LLCLoadMisses)
	}
}

func TestRunEmptyMeasuredWindowErrors(t *testing.T) {
	// Warmup == len(accs)-1 leaves one cheap L1-hitting access in the
	// measured window — under a cycle of retirement. The old code clamped
	// the window to one cycle and reported a fabricated IPC; now it is a
	// positioned error naming the core.
	accs := make([]trace.Access, 100)
	for i := range accs {
		accs[i] = trace.Access{ID: uint64(i + 1), PC: 1, Addr: 0}
	}
	cfg := DefaultConfig()
	cfg.Warmup = len(accs) - 1
	_, err := Run(cfg, accs, nil)
	if err == nil {
		t.Fatal("Run accepted an empty measured window")
	}
	if !strings.Contains(err.Error(), "core 0") {
		t.Errorf("error not positioned on the core: %v", err)
	}
	// An idle core (empty trace) sharing the machine is still fine.
	res, err := RunMulti(DefaultConfig(), [][]trace.Access{seqTrace(100, 10), nil}, nil)
	if err != nil {
		t.Fatalf("idle co-runner: %v", err)
	}
	if res[1].Instructions != 0 || res[1].IPC != 0 {
		t.Errorf("idle core result: %+v", res[1])
	}
}
