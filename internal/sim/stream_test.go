package sim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
)

// streamFromSlice encodes accs into the unbounded binary container and
// returns a streaming decoder over it — an unbounded (length-unknown)
// Source carrying exactly those records.
func streamFromSlice(t testing.TB, accs []trace.Access) trace.Source {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestRunStreamMatchesRun is the replay-parity test: the same records,
// replayed once from a slice and once through the full encode →
// stream-decode → windowed-replay pipeline, must produce bit-identical
// Results.
func TestRunStreamMatchesRun(t *testing.T) {
	accs := seqTrace(4000, 64)
	var pfs []trace.Prefetch
	for _, a := range accs {
		if a.ID%3 == 0 {
			pfs = append(pfs, trace.Prefetch{ID: a.ID, Addr: a.Addr + trace.BlockBytes})
		}
	}
	cfg := DefaultConfig()
	cfg.Warmup = 400

	want, err := Run(cfg, accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(cfg, streamFromSlice(t, accs), pfs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed result differs:\n  stream: %+v\n  slice:  %+v", got, want)
	}
}

// TestRunMultiStreamMatchesRunMulti is the multi-core form, with cores of
// different lengths so the scheduler interleaves drained and live windows.
func TestRunMultiStreamMatchesRunMulti(t *testing.T) {
	cores := [][]trace.Access{seqTrace(3000, 64), seqTrace(1200, 4096), nil}
	cfg := DefaultConfig()
	cfg.Warmup = 100

	want, err := RunMulti(cfg, cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]trace.Source, len(cores))
	for i, accs := range cores {
		srcs[i] = streamFromSlice(t, accs)
	}
	got, err := RunMultiStream(cfg, srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("core %d: streamed %+v, slice %+v", i, got[i], want[i])
		}
	}
}

// TestRunStreamWarmupExhaustsStream pins the unbounded-source warmup edge:
// with no length to check up front, a warmup that swallows the whole
// stream must surface as an end-of-run error, not silently measure the
// warmup window.
func TestRunStreamWarmupExhaustsStream(t *testing.T) {
	accs := seqTrace(100, 64)
	cfg := DefaultConfig()
	cfg.Warmup = len(accs)
	_, err := RunStream(cfg, streamFromSlice(t, accs), nil)
	if err == nil {
		t.Fatal("RunStream accepted a warmup that consumed the whole stream")
	}
	if !strings.Contains(err.Error(), "warmup") {
		t.Fatalf("err = %v, want a warmup error", err)
	}
	// A Source with a known length keeps the slice path's up-front check.
	_, err = RunStream(cfg, trace.NewSliceSource(accs), nil)
	if err == nil || !strings.Contains(err.Error(), "trace length") {
		t.Fatalf("SliceSource err = %v, want the up-front length error", err)
	}
}

// errAfterSource yields n valid records, then a decode error.
type errAfterSource struct {
	n   int
	i   int
	err error
}

func (s *errAfterSource) Next(a *trace.Access) error {
	if s.i >= s.n {
		return s.err
	}
	s.i++
	*a = trace.Access{ID: uint64(s.i), PC: 1, Addr: uint64(s.i) * trace.BlockBytes}
	return nil
}

// TestRunStreamPropagatesDecodeError checks a mid-stream decode error
// aborts the run with the error, after the valid prefix replayed.
func TestRunStreamPropagatesDecodeError(t *testing.T) {
	bad := errors.New("synthetic decode failure")
	_, err := RunStream(DefaultConfig(), &errAfterSource{n: 600, err: bad}, nil)
	if err == nil {
		t.Fatal("RunStream swallowed a mid-stream decode error")
	}
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want wrapped %v", err, bad)
	}
}

// TestRunStreamCancellation mirrors the slice path's ctx polling with an
// unbounded source that never ends on its own.
func TestRunStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &errAfterSource{n: 1 << 30, err: io.EOF}
	if _, err := RunStreamCtx(ctx, DefaultConfig(), src, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReplayWindowBounded pins the window's constant-memory contract: the
// occupancy high-water mark never exceeds the fixed capacity, whatever the
// trace length, and is reported through telemetry.
func TestReplayWindowBounded(t *testing.T) {
	reg := telemetry.NewRegistry()
	EnableTelemetry(reg)
	defer EnableTelemetry(nil)

	accs := seqTrace(replayWindowSize*8, 64)
	if _, err := RunStream(DefaultConfig(), streamFromSlice(t, accs), nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	peak := snap.Gauges["sim.replay_window_peak"]
	if peak <= 0 || peak > replayWindowSize {
		t.Fatalf("sim.replay_window_peak = %d, want in (0, %d]", peak, replayWindowSize)
	}
}

// TestReplayWindowRefill exercises the window directly across several
// refill generations.
func TestReplayWindowRefill(t *testing.T) {
	n := replayWindowSize*3 + 17
	w := newReplayWindow(trace.NewSliceSource(seqTrace(n, 64)))
	seen := 0
	for {
		a, ok := w.peek()
		if !ok {
			break
		}
		if want := uint64(seen+1) * 64; a.ID != want {
			t.Fatalf("record %d has ID %d, want %d", seen, a.ID, want)
		}
		w.pop()
		seen++
	}
	if seen != n {
		t.Fatalf("replayed %d records, want %d", seen, n)
	}
	if w.srcErr() != io.EOF {
		t.Fatalf("terminal state = %v, want io.EOF", w.srcErr())
	}
	if w.peak != replayWindowSize {
		t.Fatalf("peak = %d, want %d", w.peak, replayWindowSize)
	}
}

func BenchmarkRunStream(b *testing.B) {
	accs := seqTrace(20000, 4096)
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.NewSliceSource(accs)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	cfg := DefaultConfig()
	cfg.Warmup = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunStream(cfg, rd, nil); err != nil {
			b.Fatal(err)
		}
	}
}
