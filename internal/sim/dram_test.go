package sim

import "testing"

func TestDRAMRowHitFasterThanRowMiss(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// First access opens the row (full tRP+tRCD+tCAS).
	done1 := d.Access(0, 0)
	wantMiss := uint64(cfg.TRP + cfg.TRCD + cfg.TCAS)
	if done1 != wantMiss {
		t.Fatalf("cold access done at %d, want %d", done1, wantMiss)
	}
	// Second access to the same row after the bank is free: row hit.
	now := done1 + uint64(cfg.BusCycles)
	done2 := d.Access(1, now)
	if got := done2 - now; got != uint64(cfg.TCAS) {
		t.Fatalf("row-hit latency %d, want %d", got, cfg.TCAS)
	}
	if d.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", d.RowHits)
	}
}

func TestDRAMBankConflictSerializes(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// Two back-to-back requests to rows in the same bank: the second
	// cannot start until the first finishes.
	totalBanks := uint64(cfg.Channels * cfg.Ranks * cfg.Banks)
	blockA := uint64(0)
	blockB := totalBanks * uint64(cfg.RowBlocks) // same bank, different row
	done1 := d.Access(blockA, 0)
	done2 := d.Access(blockB, 0)
	if done2 <= done1 {
		t.Fatalf("same-bank requests did not serialize: %d then %d", done1, done2)
	}
}

func TestDRAMDifferentBanksOverlap(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	done1 := d.Access(0, 0)
	done2 := d.Access(uint64(cfg.RowBlocks), 0) // next bank
	if done1 != done2 {
		t.Fatalf("different banks should complete together: %d vs %d", done1, done2)
	}
}

func TestDRAMQueuePressureDelays(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.ReadQueue = 4
	d := NewDRAM(cfg)
	var worst uint64
	// Flood more requests than the queue holds at t=0, striped across
	// distinct banks so the queue (not a bank) is the bottleneck; some
	// must be pushed out in time.
	for i := 0; i < 16; i++ {
		if done := d.Access(uint64(i*cfg.RowBlocks), 0); done > worst {
			worst = done
		}
	}
	d2 := NewDRAM(DefaultDRAMConfig()) // queue 64: no pressure for 16 reqs
	var worst2 uint64
	for i := 0; i < 16; i++ {
		if done := d2.Access(uint64(i*cfg.RowBlocks), 0); done > worst2 {
			worst2 = done
		}
	}
	if worst <= worst2 {
		t.Fatalf("small queue (worst %d) should delay vs large queue (worst %d)", worst, worst2)
	}
}

func TestDRAMCompletionNeverBeforeIssue(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	for i := uint64(0); i < 100; i++ {
		now := i * 3
		done := d.Access(i*17, now)
		if done <= now {
			t.Fatalf("access at %d completed at %d", now, done)
		}
	}
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0)
	d.Access(1, 0)
	d.Reset()
	if d.Reads != 0 || d.RowHits != 0 || d.QueueDepth(0) != 0 {
		t.Error("Reset did not clear state")
	}
	// After reset the first access pays the full row-open cost again.
	if done := d.Access(0, 0); done != uint64(50+50+50) {
		t.Errorf("post-reset cold access done at %d, want 150", done)
	}
}

func TestDRAMPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDRAM with zero banks did not panic")
		}
	}()
	NewDRAM(DRAMConfig{ReadQueue: 4})
}
