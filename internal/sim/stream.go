package sim

import (
	"context"

	"pathfinder/internal/trace"
)

// replayWindowSize is the capacity of each core's lookahead buffer between
// its trace.Source and the pipeline. The pipeline consumes accesses
// strictly in order, so correctness needs no lookahead at all; the window
// exists to batch decoder pulls (amortizing the Source indirection) while
// keeping replay heap usage bounded regardless of trace length.
const replayWindowSize = 256

// replayWindow is the bounded lookahead buffer feeding one core pipeline
// from a trace.Source. It refills in whole batches when it runs dry and
// hands records out in order. The source's terminal state (io.EOF or a
// decode error) is latched and delivered only after every buffered record
// has been replayed, so a stream that fails mid-decode still replays its
// valid prefix before the run reports the error.
type replayWindow struct {
	src  trace.Source
	buf  [replayWindowSize]trace.Access
	head int
	n    int
	err  error // terminal source state; nil while the source is live
	peak int   // occupancy high-water mark, flushed to telemetry
}

func newReplayWindow(src trace.Source) *replayWindow {
	return &replayWindow{src: src}
}

// rearm points the window at a new source and clears all buffered state, so
// an Engine can reuse the window (and its buffer) across runs.
func (w *replayWindow) rearm(src trace.Source) {
	w.src = src
	w.head = 0
	w.n = 0
	w.err = nil
	w.peak = 0
}

// refill tops the window up from the source until it is full or the source
// reaches its terminal state.
func (w *replayWindow) refill() {
	for w.n < len(w.buf) && w.err == nil {
		if err := w.src.Next(&w.buf[(w.head+w.n)%len(w.buf)]); err != nil {
			w.err = err
			break
		}
		w.n++
	}
	if w.n > w.peak {
		w.peak = w.n
	}
}

// peek returns the next record without consuming it, refilling from the
// source if the window ran dry. ok is false once the window is drained and
// the source terminal.
func (w *replayWindow) peek() (trace.Access, bool) {
	if w.n == 0 {
		if w.err != nil {
			return trace.Access{}, false
		}
		w.refill()
		if w.n == 0 {
			return trace.Access{}, false
		}
	}
	return w.buf[w.head], true
}

// pop consumes the record peek returned.
func (w *replayWindow) pop() {
	w.head = (w.head + 1) % len(w.buf)
	w.n--
}

// drained reports whether every record has been replayed and the source is
// terminal.
func (w *replayWindow) drained() bool {
	_, ok := w.peek()
	return !ok
}

// srcErr returns the source's terminal error: io.EOF for a clean end, the
// decode error otherwise, nil while the source is live.
func (w *replayWindow) srcErr() error { return w.err }

// RunStream is Run fed by a trace.Source instead of a materialized slice:
// the replay holds at most replayWindowSize accesses at a time, so heap
// usage is bounded regardless of trace length. Results are bit-identical
// to Run over the same records — Run is implemented on this path.
//
// A Source has no length, so Warmup semantics shift at one edge: a warmup
// that consumes the entire stream is detected at end of run (the slice
// path rejects it up front). Sources exposing Remaining() (uint64, bool)
// — SliceSource, counted trace files — keep the up-front rejection.
func RunStream(cfg Config, src trace.Source, pfs []trace.Prefetch) (Result, error) {
	return RunStreamCtx(context.Background(), cfg, src, pfs)
}

// RunStreamCtx is RunStream with cancellation.
func RunStreamCtx(ctx context.Context, cfg Config, src trace.Source, pfs []trace.Prefetch) (Result, error) {
	res, err := RunMultiStreamCtx(ctx, cfg, []trace.Source{src}, [][]trace.Prefetch{pfs})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// RunMultiStream is RunMulti fed by one trace.Source per core.
func RunMultiStream(cfg Config, srcs []trace.Source, pfs [][]trace.Prefetch) ([]Result, error) {
	return RunMultiStreamCtx(context.Background(), cfg, srcs, pfs)
}

// RunMultiStreamCtx is RunMultiStream with cancellation: the scheduling
// loop polls ctx every few thousand steps and returns ctx.Err() when
// cancelled.
//
// It runs on a pooled Engine (AcquireEngine), so repeated calls with the
// same configuration reuse the machine's memory instead of rebuilding the
// hierarchy; results are bit-identical to a fresh Engine either way.
// Long-lived callers that want explicit ownership can hold an Engine (or a
// pool of them) and call its methods directly.
func RunMultiStreamCtx(ctx context.Context, cfg Config, srcs []trace.Source, pfs [][]trace.Prefetch) ([]Result, error) {
	eng, release := AcquireEngine(cfg)
	defer release()
	return eng.RunMultiStreamCtx(ctx, srcs, pfs)
}
