package sim

import (
	"context"
	"fmt"
	"io"

	"pathfinder/internal/trace"
)

// replayWindowSize is the capacity of each core's lookahead buffer between
// its trace.Source and the pipeline. The pipeline consumes accesses
// strictly in order, so correctness needs no lookahead at all; the window
// exists to batch decoder pulls (amortizing the Source indirection) while
// keeping replay heap usage bounded regardless of trace length.
const replayWindowSize = 256

// replayWindow is the bounded lookahead buffer feeding one core pipeline
// from a trace.Source. It refills in whole batches when it runs dry and
// hands records out in order. The source's terminal state (io.EOF or a
// decode error) is latched and delivered only after every buffered record
// has been replayed, so a stream that fails mid-decode still replays its
// valid prefix before the run reports the error.
type replayWindow struct {
	src  trace.Source
	buf  [replayWindowSize]trace.Access
	head int
	n    int
	err  error // terminal source state; nil while the source is live
	peak int   // occupancy high-water mark, flushed to telemetry
}

func newReplayWindow(src trace.Source) *replayWindow {
	return &replayWindow{src: src}
}

// refill tops the window up from the source until it is full or the source
// reaches its terminal state.
func (w *replayWindow) refill() {
	for w.n < len(w.buf) && w.err == nil {
		if err := w.src.Next(&w.buf[(w.head+w.n)%len(w.buf)]); err != nil {
			w.err = err
			break
		}
		w.n++
	}
	if w.n > w.peak {
		w.peak = w.n
	}
}

// peek returns the next record without consuming it, refilling from the
// source if the window ran dry. ok is false once the window is drained and
// the source terminal.
func (w *replayWindow) peek() (trace.Access, bool) {
	if w.n == 0 {
		if w.err != nil {
			return trace.Access{}, false
		}
		w.refill()
		if w.n == 0 {
			return trace.Access{}, false
		}
	}
	return w.buf[w.head], true
}

// pop consumes the record peek returned.
func (w *replayWindow) pop() {
	w.head = (w.head + 1) % len(w.buf)
	w.n--
}

// drained reports whether every record has been replayed and the source is
// terminal.
func (w *replayWindow) drained() bool {
	_, ok := w.peek()
	return !ok
}

// srcErr returns the source's terminal error: io.EOF for a clean end, the
// decode error otherwise, nil while the source is live.
func (w *replayWindow) srcErr() error { return w.err }

// RunStream is Run fed by a trace.Source instead of a materialized slice:
// the replay holds at most replayWindowSize accesses at a time, so heap
// usage is bounded regardless of trace length. Results are bit-identical
// to Run over the same records — Run is implemented on this path.
//
// A Source has no length, so Warmup semantics shift at one edge: a warmup
// that consumes the entire stream is detected at end of run (the slice
// path rejects it up front). Sources exposing Remaining() (uint64, bool)
// — SliceSource, counted trace files — keep the up-front rejection.
func RunStream(cfg Config, src trace.Source, pfs []trace.Prefetch) (Result, error) {
	return RunStreamCtx(context.Background(), cfg, src, pfs)
}

// RunStreamCtx is RunStream with cancellation.
func RunStreamCtx(ctx context.Context, cfg Config, src trace.Source, pfs []trace.Prefetch) (Result, error) {
	res, err := RunMultiStreamCtx(ctx, cfg, []trace.Source{src}, [][]trace.Prefetch{pfs})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// RunMultiStream is RunMulti fed by one trace.Source per core.
func RunMultiStream(cfg Config, srcs []trace.Source, pfs [][]trace.Prefetch) ([]Result, error) {
	return RunMultiStreamCtx(context.Background(), cfg, srcs, pfs)
}

// RunMultiStreamCtx is RunMultiStream with cancellation: the scheduling
// loop polls ctx every few thousand steps and returns ctx.Err() when
// cancelled.
func RunMultiStreamCtx(ctx context.Context, cfg Config, srcs []trace.Source, pfs [][]trace.Prefetch) ([]Result, error) {
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		return nil, fmt.Errorf("sim: invalid core config (width %d, ROB %d)", cfg.Width, cfg.ROB)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	if pfs != nil && len(pfs) != len(srcs) {
		return nil, fmt.Errorf("sim: %d prefetch files for %d cores", len(pfs), len(srcs))
	}
	// Sources with a known length keep the slice path's up-front rejection
	// of a warmup that swallows the whole trace; unbounded sources are
	// checked at end of run instead (corePipeline.finish).
	for i, src := range srcs {
		if s, ok := src.(interface{ Remaining() (uint64, bool) }); ok {
			if n, known := s.Remaining(); known && n > 0 && cfg.Warmup >= 0 && uint64(cfg.Warmup) >= n {
				return nil, fmt.Errorf("sim: warmup %d >= core %d trace length %d", cfg.Warmup, i, n)
			}
		}
	}

	mem := &sharedMemory{
		llc:      NewCacheWithPolicy(cfg.LLCSets, cfg.LLCWays, cfg.LLCPolicy),
		dram:     NewDRAM(cfg.DRAM),
		inflight: make(map[uint64]uint64),
	}
	pipes := make([]*corePipeline, len(srcs))
	for i, src := range srcs {
		var p []trace.Prefetch
		if pfs != nil {
			p = pfs[i]
		}
		pipes[i] = newCorePipeline(cfg, newReplayWindow(src), p)
	}

	// Advance the core with the smallest local retire time; this keeps
	// the shared-resource access order consistent with wall-clock time.
	steps := 0
	for {
		if steps&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if pfdebugEnabled && steps&1023 == 0 {
			mem.debugCheck()
		}
		steps++
		best := -1
		for i, p := range pipes {
			if p.done() {
				continue
			}
			if best < 0 || p.retire < pipes[best].retire {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := pipes[best].step(mem); err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", best, err)
		}
	}

	// Every window is drained; a terminal state other than io.EOF is a
	// decode error in that core's trace stream.
	for i, p := range pipes {
		if err := p.win.srcErr(); err != nil && err != io.EOF {
			return nil, fmt.Errorf("sim: core %d trace: %w", i, err)
		}
	}

	out := make([]Result, len(pipes))
	for i, p := range pipes {
		res, err := p.finish()
		if err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", i, err)
		}
		out[i] = res
		out[i].DRAMReads = mem.dram.Reads
		out[i].DRAMRowHits = mem.dram.RowHits
	}
	if m := simTele.Load(); m != nil {
		// One flush per run: the per-level cache statistics come straight
		// from the caches' own (warmup-gated) counters.
		m.runs.Inc()
		m.cores.Add(uint64(len(pipes)))
		for _, p := range pipes {
			m.demands.Add(uint64(p.consumed))
			m.l1Hits.Add(p.l1.Hits)
			m.l1Misses.Add(p.l1.Misses)
			m.l2Hits.Add(p.l2.Hits)
			m.l2Misses.Add(p.l2.Misses)
			m.replayWindowPeak.SetMax(int64(p.win.peak))
		}
		m.llcHits.Add(mem.llc.Hits)
		m.llcMisses.Add(mem.llc.Misses)
		m.llcPrefetchFills.Add(mem.llc.PrefetchFills)
		m.llcEvictions.Add(mem.llc.Evictions)
		m.inflightPeak.SetMax(int64(mem.fillsPeak))
		mem.dram.flushTelemetry(m)
	}
	return out, nil
}
