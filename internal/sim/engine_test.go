package sim

import (
	"context"
	"testing"

	"pathfinder/internal/trace"
)

// engineTestPfs builds a lookahead prefetch file for a trace, so the
// Engine tests exercise the inflight bookkeeping and prefetch counters.
func engineTestPfs(accs []trace.Access) []trace.Prefetch {
	pfs := make([]trace.Prefetch, 0, len(accs))
	for i := 0; i+8 < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+8].Addr})
	}
	return pfs
}

// TestEngineReuseDeterministic pins the arena-reuse contract: a reused
// Engine — including one whose state was dirtied by a different trace in
// between — must reproduce the one-shot package Run bit for bit.
func TestEngineReuseDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 200
	accsA := seqTrace(2000, 10)
	pfsA := engineTestPfs(accsA)
	accsB := offsetTrace(1500, 7, 64)

	want, err := Run(cfg, accsA, pfsA)
	if err != nil {
		t.Fatal(err)
	}
	if want.PrefIssued == 0 || want.PrefUseful == 0 {
		t.Fatalf("degenerate pin: %+v", want)
	}

	eng := NewEngine(cfg)
	for round := 0; round < 3; round++ {
		got, err := eng.Run(accsA, pfsA)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got != want {
			t.Fatalf("round %d diverged from one-shot Run:\n got %+v\nwant %+v", round, got, want)
		}
		// Dirty the machine with an unrelated trace before the next round.
		if _, err := eng.Run(accsB, nil); err != nil {
			t.Fatalf("round %d dirty run: %v", round, err)
		}
	}
}

// TestEngineReuseAcrossCoreCounts checks the pipeline arena grows and
// shrinks correctly when consecutive runs use different core counts.
func TestEngineReuseAcrossCoreCounts(t *testing.T) {
	cfg := DefaultConfig()
	single := seqTrace(1000, 10)
	duoA := seqTrace(800, 10)
	duoB := offsetTrace(800, 10, 32)

	wantSingle, err := Run(cfg, single, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDuo, err := RunMulti(cfg, [][]trace.Access{duoA, duoB}, nil)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(cfg)
	for round := 0; round < 2; round++ {
		got, err := eng.Run(single, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantSingle {
			t.Fatalf("single-core reuse diverged:\n got %+v\nwant %+v", got, wantSingle)
		}
		gotDuo, err := eng.RunMultiStreamCtx(context.Background(),
			[]trace.Source{trace.NewSliceSource(duoA), trace.NewSliceSource(duoB)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gotDuo {
			if gotDuo[i] != wantDuo[i] {
				t.Fatalf("dual-core reuse core %d diverged:\n got %+v\nwant %+v", i, gotDuo[i], wantDuo[i])
			}
		}
	}
}

// TestEngineReuseAfterError checks a run that fails validation or replay
// leaves the Engine reusable (state is cleared at the start of each run,
// not the end).
func TestEngineReuseAfterError(t *testing.T) {
	cfg := DefaultConfig()
	accs := seqTrace(1000, 10)
	want, err := Run(cfg, accs, nil)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(cfg)
	// Mid-replay failure: non-increasing IDs abort after state was dirtied.
	bad := []trace.Access{{ID: 5, Addr: 0}, {ID: 5, Addr: 64}}
	if _, err := eng.Run(bad, nil); err == nil {
		t.Fatal("engine accepted duplicate IDs")
	}
	got, err := eng.Run(accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-error reuse diverged:\n got %+v\nwant %+v", got, want)
	}
}
