package sim

// inflightMap maps block address -> fill-ready cycle for the shared
// memory's in-flight prefetches. It replaces a Go map on the replay hot
// path (every demand miss and every prefetch issue probes it): flat
// power-of-two key/value slices probed linearly from a Fibonacci-hashed
// home slot, with backward-shift deletion so probe chains never hold dead
// slots, and a generation counter so reset is O(1) and the backing arrays
// are reused across Engine runs. It mirrors the semantics of the prefetch
// package's Table, specialized to uint64 values; sim deliberately does not
// import prefetch (the simulator is the layer below the prefetchers).
type inflightMap struct {
	keys []uint64
	vals []uint64
	gens []uint32 // slot live iff gens[i] == gen
	gen  uint32
	mask uint64
	n    int
}

func newInflightMap(capacity int) *inflightMap {
	slots := 8
	for slots*3 < capacity*4 { // slots >= capacity * 4/3 keeps load <= 3/4
		slots <<= 1
	}
	m := &inflightMap{}
	m.init(slots)
	return m
}

func (m *inflightMap) init(slots int) {
	m.keys = make([]uint64, slots)
	m.vals = make([]uint64, slots)
	m.gens = make([]uint32, slots)
	m.gen = 1
	m.mask = uint64(slots - 1)
	m.n = 0
}

func (m *inflightMap) len() int { return m.n }

// reset discards every entry in O(1), keeping the backing arrays.
func (m *inflightMap) reset() {
	m.gen++
	if m.gen == 0 { // generation wrap: scrub and restart
		clear(m.gens)
		m.gen = 1
	}
	m.n = 0
}

func (m *inflightMap) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// get returns (ready, true) if block is in flight.
func (m *inflightMap) get(key uint64) (uint64, bool) {
	if m.n == 0 {
		return 0, false
	}
	for i := m.home(key); ; i = (i + 1) & m.mask {
		if m.gens[i] != m.gen {
			return 0, false
		}
		if m.keys[i] == key {
			return m.vals[i], true
		}
	}
}

// put inserts or overwrites key's ready cycle.
func (m *inflightMap) put(key, val uint64) {
	if (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	i := m.home(key)
	for ; m.gens[i] == m.gen; i = (i + 1) & m.mask {
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
	}
	m.keys[i] = key
	m.vals[i] = val
	m.gens[i] = m.gen
	m.n++
}

// del removes key, reporting whether it was present. Compaction is by
// backward shift, so no tombstones accumulate.
func (m *inflightMap) del(key uint64) bool {
	if m.n == 0 {
		return false
	}
	i := uint64(0)
	for i = m.home(key); ; i = (i + 1) & m.mask {
		if m.gens[i] != m.gen {
			return false
		}
		if m.keys[i] == key {
			break
		}
	}
	m.n--
	j := i
	for {
		m.gens[j] = 0
		k := j
		for {
			k = (k + 1) & m.mask
			if m.gens[k] != m.gen {
				return true
			}
			home := m.home(m.keys[k])
			// The entry at k may fill the hole at j only if j lies within
			// its probe path [home, k].
			if (k-home)&m.mask >= (k-j)&m.mask {
				break
			}
		}
		m.keys[j] = m.keys[k]
		m.vals[j] = m.vals[k]
		m.gens[j] = m.gen
		j = k
	}
}

// forEach visits every live entry in slot order (pfdebug checks only).
func (m *inflightMap) forEach(fn func(key, val uint64)) {
	if m.n == 0 {
		return
	}
	for i := range m.keys {
		if m.gens[i] == m.gen {
			fn(m.keys[i], m.vals[i])
		}
	}
}

// grow doubles the slot count and rehashes the live entries.
func (m *inflightMap) grow() {
	oldKeys, oldVals, oldGens, oldGen := m.keys, m.vals, m.gens, m.gen
	m.init(len(oldKeys) * 2)
	n := 0
	for i := range oldKeys {
		if oldGens[i] != oldGen {
			continue
		}
		j := m.home(oldKeys[i])
		for m.gens[j] == m.gen {
			j = (j + 1) & m.mask
		}
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
		m.gens[j] = m.gen
		n++
	}
	m.n = n
}
