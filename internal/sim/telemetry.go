package sim

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// simMetrics is the package's bound telemetry handles. The replay loop
// itself stays free of atomics: per-level cache statistics are read out of
// the caches' own counters once per run, the inflight-fill heap depth is
// tracked as a plain high-water mark, and only the rare events (a DRAM
// access, a warmup boundary) touch a handle directly — one atomic pointer
// load and branch each when telemetry is off.
type simMetrics struct {
	runs    *telemetry.Counter // simulations completed
	cores   *telemetry.Counter // core pipelines simulated
	demands *telemetry.Counter // demand loads replayed (all cores)

	l1Hits, l1Misses   *telemetry.Counter // private L1 demand outcomes
	l2Hits, l2Misses   *telemetry.Counter // private L2 demand outcomes
	llcHits, llcMisses *telemetry.Counter // shared LLC demand outcomes (measured window)
	llcPrefetchFills   *telemetry.Counter // prefetch fills installed in the LLC
	llcEvictions       *telemetry.Counter // LLC lines displaced

	dramBankConflicts *telemetry.Counter   // accesses that waited on a busy bank
	dramQueueStalls   *telemetry.Counter   // accesses that waited on a full read queue
	dramQueueDepth    *telemetry.Histogram // read-queue occupancy seen by each access

	inflightPeak     *telemetry.Gauge   // high-water mark of the in-flight fill heap
	replayWindowPeak *telemetry.Gauge   // high-water mark of per-core replay-window occupancy
	warmupBoundaries *telemetry.Counter // cores that crossed their warmup boundary
}

var simTele atomic.Pointer[simMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		simTele.Store(nil)
		return
	}
	simTele.Store(&simMetrics{
		runs:              r.Counter("sim.runs"),
		cores:             r.Counter("sim.cores"),
		demands:           r.Counter("sim.demand_loads"),
		l1Hits:            r.Counter("sim.l1.hits"),
		l1Misses:          r.Counter("sim.l1.misses"),
		l2Hits:            r.Counter("sim.l2.hits"),
		l2Misses:          r.Counter("sim.l2.misses"),
		llcHits:           r.Counter("sim.llc.hits"),
		llcMisses:         r.Counter("sim.llc.misses"),
		llcPrefetchFills:  r.Counter("sim.llc.prefetch_fills"),
		llcEvictions:      r.Counter("sim.llc.evictions"),
		dramBankConflicts: r.Counter("sim.dram.bank_conflicts"),
		dramQueueStalls:   r.Counter("sim.dram.queue_stalls"),
		dramQueueDepth:    r.Histogram("sim.dram.queue_depth"),
		inflightPeak:      r.Gauge("sim.inflight_fills_peak"),
		replayWindowPeak:  r.Gauge("sim.replay_window_peak"),
		warmupBoundaries:  r.Counter("sim.warmup_boundaries"),
	})
}
