package sim

import (
	"context"

	"pathfinder/internal/trace"
)

// Config is the full machine configuration, defaulting to Table 3 of the
// paper. Latencies are in core cycles.
type Config struct {
	// L1 data cache geometry and latency (48 KB, 64 sets, 12 ways, 5 cyc).
	L1Sets, L1Ways, L1Lat int
	// L2 geometry and latency (512 KB, 1024 sets, 8 ways, 10 cyc).
	L2Sets, L2Ways, L2Lat int
	// LLC geometry and latency (2 MB, 2048 sets, 16 ways, 20 cyc).
	LLCSets, LLCWays, LLCLat int
	// DRAM is the main-memory timing model.
	DRAM DRAMConfig
	// Width is the core retire width in instructions per cycle.
	Width int
	// ROB is the reorder-buffer size in instructions; it bounds how far
	// ahead of retirement a load may issue, and therefore the
	// memory-level parallelism the core can extract.
	ROB int
	// Warmup is the number of leading trace accesses excluded from the
	// reported statistics (the paper warms the hierarchy with 10 M
	// instructions before measuring, §4.4).
	Warmup int
	// PrefetchDropDepth drops a prefetch instead of issuing it when the
	// DRAM queue already holds at least this many outstanding requests,
	// the standard demand-priority policy of memory controllers. Zero
	// defaults to half the DRAM read queue.
	PrefetchDropDepth int
	// LLCPolicy selects the LLC replacement policy (PolicyLRU default, or
	// PolicySRRIP with prefetch-aware distant insertion).
	LLCPolicy Policy
}

// DefaultConfig returns the Table 3 machine with a 4-wide, 256-entry-ROB
// core and a 10%%-of-trace warmup handled by the caller.
func DefaultConfig() Config {
	return Config{
		L1Sets: 64, L1Ways: 12, L1Lat: 5,
		L2Sets: 1024, L2Ways: 8, L2Lat: 10,
		LLCSets: 2048, LLCWays: 16, LLCLat: 20,
		DRAM:  DefaultDRAMConfig(),
		Width: 4,
		ROB:   256,
	}
}

// ScaledConfig returns the Table 3 machine with the cache hierarchy scaled
// down 8× (L1 6 KB, L2 64 KB, LLC 256 KB). The paper simulates 1 M loads
// against a 2 MB LLC; when experiments run shorter traces (the harness
// default is 50–100 K loads), the working sets that thrash the paper's LLC
// would fit in a full-size one and every prefetcher would look useless.
// Scaling the hierarchy with the trace — a standard trace-sampling
// methodology — preserves the miss behaviour the evaluation depends on.
// Use DefaultConfig with -loads 1000000 for full-scale runs.
func ScaledConfig() Config {
	return Config{
		L1Sets: 8, L1Ways: 12, L1Lat: 5,
		L2Sets: 128, L2Ways: 8, L2Lat: 10,
		LLCSets: 256, LLCWays: 16, LLCLat: 20,
		DRAM:  DefaultDRAMConfig(),
		Width: 4,
		ROB:   256,
	}
}

// Result carries the metrics of one simulation (§4.5).
type Result struct {
	// Instructions and Cycles are measured after warmup; IPC is their ratio.
	Instructions uint64
	Cycles       uint64
	IPC          float64

	// LLCLoadAccesses / LLCLoadHits / LLCLoadMisses count post-warmup
	// demand loads reaching the LLC.
	LLCLoadAccesses uint64
	LLCLoadHits     uint64
	LLCLoadMisses   uint64

	// PrefIssued is the number of prefetch-file entries consumed
	// post-warmup (the paper's "issued prefetches", Table 6). PrefFetched
	// is the subset that actually went to DRAM (not already resident or
	// in flight); PrefDropped is the subset discarded because the memory
	// controller was under demand pressure. PrefUseful counts prefetched
	// lines that received a demand hit; PrefLate is the subset that were
	// still in flight when the demand arrived.
	PrefIssued  uint64
	PrefFetched uint64
	PrefDropped uint64
	PrefUseful  uint64
	PrefLate    uint64

	// DRAMReads and DRAMRowHits describe memory-controller behaviour.
	DRAMReads   uint64
	DRAMRowHits uint64
}

// Accuracy returns useful/issued prefetches (§4.5), or 0 with no prefetches.
func (r Result) Accuracy() float64 {
	if r.PrefIssued == 0 {
		return 0
	}
	return float64(r.PrefUseful) / float64(r.PrefIssued)
}

// Coverage returns useful prefetches divided by the baseline (no-prefetch)
// LLC miss count (§4.5).
func (r Result) Coverage(baselineMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	return float64(r.PrefUseful) / float64(baselineMisses)
}

// inflightHeap orders in-flight prefetch fills by completion cycle, ties
// broken by issue order (seq) so fills that complete on the same cycle
// install FCFS — a well-defined order the refmodel oracle can reproduce.
// Like completionHeap, the sift operations are typed rather than routed
// through container/heap, keeping the replay hot path allocation-free.
type inflightHeap []inflightFill

type inflightFill struct {
	ready uint64
	block uint64
	seq   uint64
}

// before is the heap's strict total order: completion cycle, then issue
// order. seq is unique, so no two fills compare equal.
func (f inflightFill) before(g inflightFill) bool {
	if f.ready != g.ready {
		return f.ready < g.ready
	}
	return f.seq < g.seq
}

// The sifts are hole-style — shift entries into the hole and place the
// moving element once at the end — rather than swap-style, halving the
// stores per level. The comparison sequence (and so the final layout) is
// identical to the classic swap formulation.
func (h *inflightHeap) push(f inflightFill) {
	s := append(*h, f)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.before(s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = f
}

func (h *inflightHeap) pop() inflightFill {
	s := *h
	min := s[0]
	n := len(s) - 1
	x := s[n]
	s = s[:n]
	*h = s
	if n == 0 {
		return min
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s[r].before(s[child]) {
			child = r
		}
		if !s[child].before(x) {
			break
		}
		s[i] = s[child]
		i = child
	}
	s[i] = x
	return min
}

// retirePoint records when a known instruction id retired, letting the
// dispatch model interpolate the retire time of any nearby instruction.
type retirePoint struct {
	id     uint64
	retire float64
}

// Run replays a load trace together with a prefetch file (entries keyed by
// triggering instruction id, non-decreasing) against the configured machine
// and returns the measured metrics.
//
// The core model retires instructions in order at cfg.Width per cycle. A
// load dispatches once the instruction cfg.ROB before it has retired — the
// point at which it can have entered the reorder buffer — so independent
// misses within a ROB window overlap naturally, bounding memory-level
// parallelism by ROB size and load density exactly as an out-of-order core
// does. Prefetches fill the LLC only (the paper prefetches from memory to
// the LLC, §4.1) and contend for DRAM banks and queue slots with demand
// loads.
func Run(cfg Config, accs []trace.Access, pfs []trace.Prefetch) (Result, error) {
	return RunCtx(context.Background(), cfg, accs, pfs)
}

// RunCtx is Run with cancellation: the replay polls ctx periodically and
// aborts with ctx.Err() mid-simulation, so a cancelled evaluation grid
// stops within a few thousand simulated accesses.
func RunCtx(ctx context.Context, cfg Config, accs []trace.Access, pfs []trace.Prefetch) (Result, error) {
	res, err := RunMultiCtx(ctx, cfg, [][]trace.Access{accs}, [][]trace.Prefetch{pfs})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}
