package sim

import "sync"

// enginePools maps a machine configuration to a sync.Pool of Engines built
// for it. The key is the Config with Warmup zeroed: warmup is the one field
// that does not shape the machine, so engines are shared across jobs that
// differ only in warmup (SetWarmup rebinds it per acquisition). Config is
// all-scalar and therefore a valid map key.
var enginePools sync.Map

// AcquireEngine returns an Engine for cfg from the package-level pool,
// together with a release function that must be called exactly once when
// the run is over — typically deferred, so a panicking run still returns
// its engine. A released engine may be dirty; that is safe, because an
// Engine re-initializes all state at the start of each run, never at the
// end.
//
// The package Run* functions acquire their engine here, which is what
// makes repeated one-shot calls cheap: after the first run of a
// configuration, the whole cache/DRAM/pipeline arena is reused instead of
// reallocated. Callers that want explicit ownership can keep using
// NewEngine.
func AcquireEngine(cfg Config) (*Engine, func()) {
	key := cfg
	key.Warmup = 0
	v, ok := enginePools.Load(key)
	if !ok {
		v, _ = enginePools.LoadOrStore(key, &sync.Pool{
			New: func() any { return NewEngine(key) },
		})
	}
	pool := v.(*sync.Pool)
	eng := pool.Get().(*Engine)
	eng.SetWarmup(cfg.Warmup)
	return eng, func() { pool.Put(eng) }
}
