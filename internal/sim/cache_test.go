package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(42, false)
	hit, pf := c.Lookup(42)
	if !hit {
		t.Fatal("miss after fill")
	}
	if pf {
		t.Error("demand fill reported as prefetched")
	}
}

func TestCacheMissOnEmpty(t *testing.T) {
	c := NewCache(16, 4)
	if hit, _ := c.Lookup(1); hit {
		t.Fatal("hit on empty cache")
	}
	if c.Misses != 1 {
		t.Errorf("Misses = %d, want 1", c.Misses)
	}
}

func TestCachePrefetchFirstTouch(t *testing.T) {
	c := NewCache(16, 4)
	c.Fill(7, true)
	hit, pf := c.Lookup(7)
	if !hit || !pf {
		t.Fatalf("first touch: hit=%v pf=%v, want true,true", hit, pf)
	}
	// Second touch must not report prefetched again.
	hit, pf = c.Lookup(7)
	if !hit || pf {
		t.Fatalf("second touch: hit=%v pf=%v, want true,false", hit, pf)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // single set, 2 ways
	c.Fill(1, false)
	c.Fill(2, false)
	c.Lookup(1) // promote 1 to MRU; 2 is now LRU
	evicted, had := c.Fill(3, false)
	if !had || evicted != 2 {
		t.Fatalf("evicted %d (had=%v), want 2", evicted, had)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("cache contents wrong after eviction")
	}
}

func TestCacheFillExistingRefreshes(t *testing.T) {
	c := NewCache(1, 2)
	c.Fill(1, false)
	c.Fill(2, false)
	c.Fill(1, false) // refresh 1; 2 becomes LRU
	if evicted, had := c.Fill(3, false); !had || evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
}

func TestCacheContainsNoSideEffects(t *testing.T) {
	c := NewCache(4, 2)
	c.Fill(8, false)
	before := c.Hits + c.Misses
	c.Contains(8)
	c.Contains(9)
	if c.Hits+c.Misses != before {
		t.Error("Contains changed hit/miss counters")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := NewCache(4, 1)
	// Blocks 0..3 map to distinct sets and must coexist.
	for b := uint64(0); b < 4; b++ {
		c.Fill(b, false)
	}
	for b := uint64(0); b < 4; b++ {
		if !c.Contains(b) {
			t.Errorf("block %d evicted despite distinct sets", b)
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4, 2)
	c.Fill(1, false)
	c.Lookup(1)
	c.Reset()
	if c.Contains(1) || c.Hits != 0 || c.Misses != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	// Property: after any fill sequence, each set holds at most `ways`
	// distinct resident blocks and every fill leaves the block resident.
	f := func(blocks []uint16) bool {
		c := NewCache(8, 2)
		for _, b := range blocks {
			c.Fill(uint64(b), false)
			if !c.Contains(uint64(b)) {
				return false
			}
		}
		resident := 0
		for b := uint64(0); b < 1<<16; b++ {
			if c.Contains(b) {
				resident++
			}
		}
		return resident <= 8*2
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCache(0, 4) did not panic")
		}
	}()
	NewCache(0, 4)
}

func TestSRRIPHitResetsRRPV(t *testing.T) {
	c := NewCacheWithPolicy(1, 2, PolicySRRIP)
	c.Fill(1, false)
	c.Fill(2, false)
	c.Lookup(1) // rrpv(1) = 0
	// Next eviction must pick 2, whose rrpv is higher.
	if evicted, had := c.Fill(3, false); !had || evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
}

func TestSRRIPPrefetchInsertedDistant(t *testing.T) {
	c := NewCacheWithPolicy(1, 2, PolicySRRIP)
	c.Fill(1, false) // demand: rrpv 2
	c.Fill(2, true)  // prefetch: rrpv 3 (distant)
	evicted, had := c.Fill(3, false)
	if !had || evicted != 2 {
		t.Fatalf("evicted %d, want the untouched prefetch (2)", evicted)
	}
}

func TestSRRIPNeverLivelocks(t *testing.T) {
	c := NewCacheWithPolicy(2, 4, PolicySRRIP)
	for b := uint64(0); b < 1000; b++ {
		c.Fill(b, b%3 == 0)
		if !c.Contains(b) {
			t.Fatalf("block %d not resident after fill", b)
		}
	}
}

func TestRunWithSRRIPLLC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLCPolicy = PolicySRRIP
	res, err := Run(cfg, seqTrace(2000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC %v", res.IPC)
	}
}

func TestCacheFillCounters(t *testing.T) {
	c := NewCache(1, 2)
	c.Fill(1, false)
	c.Fill(2, true)
	c.Fill(2, true)  // resident refresh: not a fill
	c.Fill(3, false) // evicts
	if c.Fills != 3 || c.PrefetchFills != 1 || c.Evictions != 1 {
		t.Errorf("fills/prefetchFills/evictions = %d/%d/%d, want 3/1/1",
			c.Fills, c.PrefetchFills, c.Evictions)
	}
}

func TestResetStatsClearsEveryCounter(t *testing.T) {
	// Reflect over the CacheStats block so a counter added later cannot
	// silently survive the warmup reset: every field must be a uint64 and
	// both Reset and ResetStats must zero all of them.
	c := NewCache(4, 2)
	set := func() {
		v := reflect.ValueOf(&c.CacheStats).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() != reflect.Uint64 {
				t.Fatalf("CacheStats field %s is %s, want uint64 (extend this test)",
					v.Type().Field(i).Name, f.Kind())
			}
			f.SetUint(uint64(i + 1))
		}
	}
	check := func(op string) {
		v := reflect.ValueOf(c.CacheStats)
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Uint() != 0 {
				t.Errorf("%s left CacheStats.%s = %d, want 0",
					op, v.Type().Field(i).Name, v.Field(i).Uint())
			}
		}
	}
	set()
	c.ResetStats()
	check("ResetStats")
	set()
	c.Reset()
	check("Reset")
}

func TestLookupGatedSkipsCountersOnly(t *testing.T) {
	a := NewCache(4, 2)
	b := NewCache(4, 2)
	blocks := []uint64{1, 5, 9, 1, 13, 5, 1}
	for _, blk := range blocks {
		a.Fill(blk, false)
		b.Fill(blk, false)
		h1, p1 := a.Lookup(blk)
		h2, p2 := b.LookupGated(blk, false)
		if h1 != h2 || p1 != p2 {
			t.Fatalf("block %d: gated lookup diverged: (%v,%v) vs (%v,%v)", blk, h1, p1, h2, p2)
		}
	}
	if a.Hits == 0 {
		t.Fatal("counted cache saw no hits")
	}
	if b.Hits != 0 || b.Misses != 0 {
		t.Errorf("gated lookups counted: hits/misses %d/%d", b.Hits, b.Misses)
	}
	// Replacement state must be identical: same evictions from here on.
	for blk := uint64(20); blk < 40; blk++ {
		e1, v1 := a.Fill(blk, false)
		e2, v2 := b.Fill(blk, false)
		if e1 != e2 || v1 != v2 {
			t.Fatalf("fill %d: evictions diverged (%d,%v) vs (%d,%v)", blk, e1, v1, e2, v2)
		}
	}
}
