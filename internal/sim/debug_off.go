//go:build !pfdebug

package sim

// pfdebugEnabled gates the invariant assertions of debug_pfdebug.go. In
// normal builds it is a false constant, so every `if pfdebugEnabled { ... }`
// block and the stub bodies below compile away entirely; `go test -tags
// pfdebug ./...` (the make verify pfdebug target) turns them on.
const pfdebugEnabled = false

func (c *Cache) debugCheckSet(block uint64) {}

func (d *DRAM) debugCheckAccess(now, start, done, prevReadyAt uint64, bank *dramBank, row uint64) {}

func (s *sharedMemory) debugCheck() {}
