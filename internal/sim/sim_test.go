package sim

import (
	"testing"

	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
)

// seqTrace builds a trace of n loads streaming through consecutive blocks,
// one load every `gap` instructions.
func seqTrace(n int, gap uint64) []trace.Access {
	accs := make([]trace.Access, n)
	for i := range accs {
		accs[i] = trace.Access{
			ID:   uint64(i+1) * gap,
			PC:   0x400000,
			Addr: uint64(i) * trace.BlockBytes * 7, // stride 7 blocks: no row reuse masking
		}
	}
	return accs
}

func TestRunEmptyTrace(t *testing.T) {
	res, err := Run(DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Instructions != 0 {
		t.Errorf("Instructions = %d, want 0", res.Instructions)
	}
}

func TestRunRejectsNonIncreasingIDs(t *testing.T) {
	accs := []trace.Access{{ID: 5, Addr: 0}, {ID: 5, Addr: 64}}
	if _, err := Run(DefaultConfig(), accs, nil); err == nil {
		t.Error("Run accepted duplicate IDs")
	}
}

func TestRunRejectsWarmupTooLarge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 10
	if _, err := Run(cfg, seqTrace(5, 10), nil); err == nil {
		t.Error("Run accepted warmup >= trace length")
	}
}

func TestRunCountsLLCMisses(t *testing.T) {
	// A cold stream of distinct blocks misses everywhere.
	accs := seqTrace(1000, 10)
	res, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCLoadMisses != 1000 {
		t.Errorf("LLCLoadMisses = %d, want 1000", res.LLCLoadMisses)
	}
	if res.LLCLoadHits != 0 {
		t.Errorf("LLCLoadHits = %d, want 0", res.LLCLoadHits)
	}
}

func TestRunHotSetHitsInL1(t *testing.T) {
	// Repeatedly touching one block stays in L1 after the first access.
	accs := make([]trace.Access, 500)
	for i := range accs {
		accs[i] = trace.Access{ID: uint64(i+1) * 10, Addr: 4096}
	}
	res, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCLoadAccesses != 1 {
		t.Errorf("LLCLoadAccesses = %d, want 1 (only the cold miss)", res.LLCLoadAccesses)
	}
}

func TestRunPerfectPrefetchingImprovesIPC(t *testing.T) {
	accs := seqTrace(5000, 20)
	// Prefetch each block 8 accesses ahead of its demand.
	var pfs []trace.Prefetch
	for i := 0; i+8 < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+8].Addr})
	}
	base, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC <= base.IPC {
		t.Fatalf("perfect prefetching IPC %.3f <= baseline %.3f", pf.IPC, base.IPC)
	}
	if pf.PrefUseful == 0 {
		t.Error("no prefetches counted useful")
	}
	acc := pf.Accuracy()
	if acc < 0.9 {
		t.Errorf("perfect prefetch accuracy %.2f, want >= 0.9", acc)
	}
	cov := pf.Coverage(base.LLCLoadMisses)
	if cov < 0.9 {
		t.Errorf("perfect prefetch coverage %.2f, want >= 0.9", cov)
	}
}

func TestRunUselessPrefetchingDoesNotHelp(t *testing.T) {
	accs := seqTrace(3000, 20)
	// Prefetch blocks far away from the demand stream.
	var pfs []trace.Prefetch
	for i := 0; i < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: 1<<40 + uint64(i)*trace.BlockBytes})
	}
	base, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	junk, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if junk.PrefUseful != 0 {
		t.Errorf("useless prefetches counted useful: %d", junk.PrefUseful)
	}
	if junk.IPC > base.IPC*1.01 {
		t.Errorf("useless prefetching improved IPC: %.3f vs %.3f", junk.IPC, base.IPC)
	}
}

func TestRunLatePrefetchStillUseful(t *testing.T) {
	accs := seqTrace(2000, 20)
	// Prefetch the very next access's block: almost certainly late but
	// should still be counted useful.
	var pfs []trace.Prefetch
	for i := 0; i+1 < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+1].Addr})
	}
	res, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefUseful == 0 {
		t.Fatal("late prefetches not counted useful")
	}
	if res.PrefLate == 0 {
		t.Error("no prefetch marked late despite 1-access lead time")
	}
}

func TestRunWarmupExcludesStats(t *testing.T) {
	accs := seqTrace(2000, 10)
	cfg := DefaultConfig()
	cfg.Warmup = 1000
	res, err := Run(cfg, accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCLoadMisses != 1000 {
		t.Errorf("post-warmup LLCLoadMisses = %d, want 1000", res.LLCLoadMisses)
	}
	full, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions >= full.Instructions {
		t.Errorf("warmup did not reduce measured instructions: %d vs %d", res.Instructions, full.Instructions)
	}
}

func TestRunIPCBounded(t *testing.T) {
	accs := seqTrace(2000, 50)
	res, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > float64(DefaultConfig().Width) {
		t.Errorf("IPC %.3f outside (0, width]", res.IPC)
	}
}

func TestRunCacheHitsRaiseIPC(t *testing.T) {
	// A tiny working set (all L1 hits) must beat a cold DRAM stream.
	hot := make([]trace.Access, 3000)
	for i := range hot {
		hot[i] = trace.Access{ID: uint64(i+1) * 10, Addr: uint64(i%8) * trace.BlockBytes}
	}
	cold := seqTrace(3000, 10)
	hotRes, err := Run(DefaultConfig(), hot, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := Run(DefaultConfig(), cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hotRes.IPC <= coldRes.IPC {
		t.Errorf("hot IPC %.3f <= cold IPC %.3f", hotRes.IPC, coldRes.IPC)
	}
}

func TestRunDuplicatePrefetchesDeduplicated(t *testing.T) {
	accs := seqTrace(100, 20)
	var pfs []trace.Prefetch
	for i := 0; i < 10; i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[0].ID, Addr: 1 << 30})
	}
	res, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefIssued != 10 {
		t.Errorf("PrefIssued = %d, want 10", res.PrefIssued)
	}
	if res.PrefFetched != 1 {
		t.Errorf("PrefFetched = %d, want 1 (duplicates deduplicated)", res.PrefFetched)
	}
}

func TestAccuracyCoverageZeroSafe(t *testing.T) {
	var r Result
	if r.Accuracy() != 0 {
		t.Error("Accuracy with no prefetches should be 0")
	}
	if r.Coverage(0) != 0 {
		t.Error("Coverage with no baseline misses should be 0")
	}
}

func BenchmarkRunNoPrefetch(b *testing.B) {
	accs := seqTrace(100_000, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(DefaultConfig(), accs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunDependenceChainsSerialize(t *testing.T) {
	// The same cold miss stream, once independent and once as one serial
	// chain: the chain must take longer (lower IPC).
	free := seqTrace(2000, 20)
	chained := seqTrace(2000, 20)
	for i := range chained {
		chained[i].Chain = 1
	}
	fRes, err := Run(DefaultConfig(), free, nil)
	if err != nil {
		t.Fatal(err)
	}
	cRes, err := Run(DefaultConfig(), chained, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.IPC >= fRes.IPC {
		t.Errorf("chained IPC %.3f >= independent IPC %.3f", cRes.IPC, fRes.IPC)
	}
}

func TestRunChainPrefetchingHelps(t *testing.T) {
	// Prefetching a serial chain's future nodes shortens each hop.
	accs := seqTrace(3000, 20)
	for i := range accs {
		accs[i].Chain = 1
	}
	var pfs []trace.Prefetch
	for i := 0; i+4 < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+4].Addr})
	}
	base, err := Run(DefaultConfig(), accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC <= base.IPC*1.2 {
		t.Errorf("chain prefetching IPC %.3f, want >> base %.3f", pf.IPC, base.IPC)
	}
}

func TestRunPrefetchWithUnknownTriggerIDs(t *testing.T) {
	// Prefetch entries whose IDs fall between trace accesses must still be
	// consumed without error.
	accs := seqTrace(100, 20)
	pfs := []trace.Prefetch{
		{ID: accs[0].ID + 1, Addr: 1 << 30},
		{ID: accs[50].ID + 3, Addr: 2 << 30},
	}
	res, err := Run(DefaultConfig(), accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefIssued != 2 {
		t.Errorf("PrefIssued = %d, want 2", res.PrefIssued)
	}
}

func TestRunDropsPrefetchesUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDropDepth = 1 // drop aggressively
	accs := seqTrace(2000, 5) // dense miss stream keeps the queue busy
	var pfs []trace.Prefetch
	for i := 0; i < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: 1<<40 + uint64(i)*trace.BlockBytes})
	}
	res, err := Run(cfg, accs, pfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefDropped == 0 {
		t.Error("no prefetches dropped despite drop depth 1")
	}
}

func TestRunLongerDRAMLatencyLowersIPC(t *testing.T) {
	accs := seqTrace(2000, 20)
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.DRAM.TCAS *= 4
	slow.DRAM.TRCD *= 4
	slow.DRAM.TRP *= 4
	fRes, err := Run(fast, accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sRes, err := Run(slow, accs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.IPC >= fRes.IPC {
		t.Errorf("slower DRAM IPC %.3f >= faster %.3f", sRes.IPC, fRes.IPC)
	}
}

// BenchmarkRunWithPrefetch replays the same stream with a perfect next-use
// prefetch file — the late-prefetch/inflight-fill machinery on its hot path.
func BenchmarkRunWithPrefetch(b *testing.B) {
	accs := seqTrace(100_000, 30)
	pfs := make([]trace.Prefetch, 0, len(accs))
	for i := 0; i+1 < len(accs); i++ {
		pfs = append(pfs, trace.Prefetch{ID: accs[i].ID, Addr: accs[i+1].Addr})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(DefaultConfig(), accs, pfs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMultiShared exercises the shared-LLC contention path: two
// cores with disjoint streams through one LLC and memory controller.
func BenchmarkRunMultiShared(b *testing.B) {
	a := seqTrace(50_000, 30)
	c := seqTrace(50_000, 30)
	for i := range c {
		c[i].Addr += 1 << 42
	}
	cores := [][]trace.Access{a, c}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMulti(DefaultConfig(), cores, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetry is BenchmarkRunNoPrefetch with the metric handles
// bound, documenting the enabled-telemetry overhead of the simulator (the
// per-access cost is one pointer load in the DRAM path plus an end-of-run
// flush; the acceptance bar is <5%).
func BenchmarkRunTelemetry(b *testing.B) {
	EnableTelemetry(telemetry.NewRegistry())
	defer EnableTelemetry(nil)
	accs := seqTrace(100_000, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(DefaultConfig(), accs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
