package sim

import (
	"context"
	"fmt"
	"io"

	"pathfinder/internal/trace"
)

// Engine is a reusable simulation arena: one machine (caches, DRAM,
// in-flight bookkeeping, per-core pipelines) whose backing memory survives
// across runs, so each run costs O(trace) work with near-zero setup
// allocations instead of paying the whole hierarchy's allocation cost. The
// package-level Run* functions draw their Engine from a per-configuration
// pool (AcquireEngine), so one-shot callers get the same reuse.
//
// All state is re-initialized at the *start* of each run, never at the
// end — an Engine recovered from a panicked or cancelled run is safe to
// reuse as-is, and a reused Engine is bit-identical to a fresh one (see
// TestEngineReuseDeterministic).
//
// An Engine is single-goroutine: callers that run simulations in parallel
// pool one Engine per worker (internal/runner does this).
type Engine struct {
	cfg   Config
	mem   *sharedMemory
	pipes []*corePipeline
	wins  []*replayWindow

	// Scratch for the single-core entry points, so Run/RunStream on an
	// Engine do not allocate per-call slice headers.
	srcs1 [1]trace.Source
	pfs1  [1][]trace.Prefetch
}

// NewEngine returns an Engine for the given machine configuration. The
// machine is built lazily on the first run, so an invalid configuration
// surfaces as that run's error (or panic), exactly as with the package
// functions.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg}
}

// Config returns the machine configuration the Engine was built for.
func (e *Engine) Config() Config { return e.cfg }

// SetWarmup changes the warmup length for subsequent runs. Warmup is the
// one Config field that does not shape the machine, so a pooled Engine can
// serve jobs with different warmups without rebuilding anything.
func (e *Engine) SetWarmup(n int) { e.cfg.Warmup = n }

// Run replays a load trace and prefetch file, as the package Run function,
// reusing the Engine's machine.
func (e *Engine) Run(accs []trace.Access, pfs []trace.Prefetch) (Result, error) {
	return e.RunCtx(context.Background(), accs, pfs)
}

// RunCtx is Run with cancellation.
func (e *Engine) RunCtx(ctx context.Context, accs []trace.Access, pfs []trace.Prefetch) (Result, error) {
	return e.RunStreamCtx(ctx, trace.NewSliceSource(accs), pfs)
}

// RunStreamCtx is the streaming single-core replay, as the package
// RunStreamCtx, reusing the Engine's machine.
func (e *Engine) RunStreamCtx(ctx context.Context, src trace.Source, pfs []trace.Prefetch) (Result, error) {
	e.srcs1[0] = src
	e.pfs1[0] = pfs
	res, err := e.RunMultiStreamCtx(ctx, e.srcs1[:], e.pfs1[:])
	e.srcs1[0], e.pfs1[0] = nil, nil
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// RunMultiStreamCtx is the full multi-core scheduler. Every package-level
// Run variant funnels here through a fresh Engine, so Engine reuse and
// one-shot runs replay identically by construction.
func (e *Engine) RunMultiStreamCtx(ctx context.Context, srcs []trace.Source, pfs [][]trace.Prefetch) ([]Result, error) {
	cfg := e.cfg
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		return nil, fmt.Errorf("sim: invalid core config (width %d, ROB %d)", cfg.Width, cfg.ROB)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	if pfs != nil && len(pfs) != len(srcs) {
		return nil, fmt.Errorf("sim: %d prefetch files for %d cores", len(pfs), len(srcs))
	}
	// Sources with a known length keep the slice path's up-front rejection
	// of a warmup that swallows the whole trace; unbounded sources are
	// checked at end of run instead (corePipeline.finish).
	for i, src := range srcs {
		if s, ok := src.(interface{ Remaining() (uint64, bool) }); ok {
			if n, known := s.Remaining(); known && n > 0 && cfg.Warmup >= 0 && uint64(cfg.Warmup) >= n {
				return nil, fmt.Errorf("sim: warmup %d >= core %d trace length %d", cfg.Warmup, i, n)
			}
		}
	}

	// Acquire the machine: build it on first use, otherwise clear every
	// piece of state from the previous run (including one that panicked).
	if e.mem == nil {
		e.mem = newSharedMemory(cfg)
	} else {
		e.mem.reset()
	}
	mem := e.mem
	for i, src := range srcs {
		var p []trace.Prefetch
		if pfs != nil {
			p = pfs[i]
		}
		if i < len(e.pipes) {
			e.wins[i].rearm(src)
			// Refresh the pipeline's config copy: SetWarmup may have changed
			// it since the pipeline was built.
			e.pipes[i].cfg = cfg
			e.pipes[i].rearm(e.wins[i], p)
		} else {
			w := newReplayWindow(src)
			e.wins = append(e.wins, w)
			e.pipes = append(e.pipes, newCorePipeline(cfg, w, p))
		}
	}
	pipes := e.pipes[:len(srcs)]

	// Advance the core with the smallest local retire time; this keeps
	// the shared-resource access order consistent with wall-clock time.
	steps := 0
	for {
		if steps&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if pfdebugEnabled && steps&1023 == 0 {
			mem.debugCheck()
		}
		steps++
		best := -1
		for i, p := range pipes {
			if p.done() {
				continue
			}
			if best < 0 || p.retire < pipes[best].retire {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := pipes[best].step(mem); err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", best, err)
		}
	}

	// Every window is drained; a terminal state other than io.EOF is a
	// decode error in that core's trace stream.
	for i, p := range pipes {
		if err := p.win.srcErr(); err != nil && err != io.EOF {
			return nil, fmt.Errorf("sim: core %d trace: %w", i, err)
		}
	}

	out := make([]Result, len(pipes))
	for i, p := range pipes {
		res, err := p.finish()
		if err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", i, err)
		}
		out[i] = res
		out[i].DRAMReads = mem.dram.Reads
		out[i].DRAMRowHits = mem.dram.RowHits
	}
	if m := simTele.Load(); m != nil {
		// One flush per run: the per-level cache statistics come straight
		// from the caches' own (warmup-gated) counters.
		m.runs.Inc()
		m.cores.Add(uint64(len(pipes)))
		for _, p := range pipes {
			m.demands.Add(uint64(p.consumed))
			m.l1Hits.Add(p.l1.Hits)
			m.l1Misses.Add(p.l1.Misses)
			m.l2Hits.Add(p.l2.Hits)
			m.l2Misses.Add(p.l2.Misses)
			m.replayWindowPeak.SetMax(int64(p.win.peak))
		}
		m.llcHits.Add(mem.llc.Hits)
		m.llcMisses.Add(mem.llc.Misses)
		m.llcPrefetchFills.Add(mem.llc.PrefetchFills)
		m.llcEvictions.Add(mem.llc.Evictions)
		m.inflightPeak.SetMax(int64(mem.fillsPeak))
		mem.dram.flushTelemetry(m)
	}
	return out, nil
}
