// Package sim is the trace-driven timing simulator used to evaluate
// prefetchers. It stands in for the ML Prefetching Competition's ChampSim
// fork (§4.1 of the paper): a trace of loads plus a prefetch file are
// replayed against the Table 3 memory hierarchy, yielding IPC and the
// prefetch bookkeeping (issued / useful) behind the accuracy and coverage
// metrics of §4.5.
package sim

// Policy selects a cache replacement policy.
type Policy int

const (
	// PolicyLRU is true least-recently-used replacement.
	PolicyLRU Policy = iota
	// PolicySRRIP is static re-reference interval prediction (Jaleel et
	// al.): 2-bit re-reference counters, demand fills inserted "long",
	// prefetch fills inserted "distant" so inaccurate prefetches are the
	// first victims — a prefetch-aware insertion policy.
	PolicySRRIP
)

// CacheStats is every statistics counter a Cache carries, grouped in one
// struct so ResetStats can clear the whole block at once — a counter added
// later cannot silently survive the warmup reset.
type CacheStats struct {
	// Hits and Misses count demand lookups.
	Hits   uint64
	Misses uint64
	// Fills counts lines actually inserted (refreshes of already-resident
	// lines are excluded); PrefetchFills is the subset inserted by
	// prefetch rather than demand.
	Fills         uint64
	PrefetchFills uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
}

// Cache is a set-associative cache operating on block addresses, with a
// selectable replacement policy (LRU by default). Lines filled by prefetch
// carry a prefetch bit that is cleared (and reported) on their first demand
// hit, which is how useful prefetches are counted.
type Cache struct {
	sets   int
	ways   int
	policy Policy
	lines  []cacheLine // sets × ways, row-major
	tick   uint64

	CacheStats
}

type cacheLine struct {
	tag        uint64
	lru        uint64
	rrpv       uint8
	valid      bool
	prefetched bool
}

// srripMax is the "distant" re-reference value of the 2-bit SRRIP counters.
const srripMax = 3

// NewCache returns an LRU cache with the given geometry. Both sets and ways
// must be positive; sets need not be a power of two.
func NewCache(sets, ways int) *Cache {
	return NewCacheWithPolicy(sets, ways, PolicyLRU)
}

// NewCacheWithPolicy returns a cache with the given geometry and
// replacement policy.
func NewCacheWithPolicy(sets, ways int, policy Policy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("sim: cache sets and ways must be positive")
	}
	return &Cache{sets: sets, ways: ways, policy: policy, lines: make([]cacheLine, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(block uint64) []cacheLine {
	s := int(block % uint64(c.sets))
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup performs a demand access for block. It reports whether the access
// hit, and if so whether this was the first demand touch of a prefetched
// line. Hit lines are promoted to MRU.
func (c *Cache) Lookup(block uint64) (hit, prefetchedFirstTouch bool) {
	return c.LookupGated(block, true)
}

// LookupGated is Lookup with the statistics gated: when count is false the
// access behaves identically — LRU promotion, prefetch-bit clear — but the
// Hits/Misses counters stay untouched. The multi-core simulator uses this
// for the shared LLC, whose counters must only reflect cores inside their
// measurement window; since each core crosses its warmup boundary at a
// different time, a boundary reset (as used for the private caches) cannot
// express that.
func (c *Cache) LookupGated(block uint64, count bool) (hit, prefetchedFirstTouch bool) {
	c.tick++
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lru = c.tick
			set[i].rrpv = 0
			pf := set[i].prefetched
			set[i].prefetched = false
			if count {
				c.Hits++
			}
			if pfdebugEnabled {
				c.debugCheckSet(block)
			}
			return true, pf
		}
	}
	if count {
		c.Misses++
	}
	if pfdebugEnabled {
		c.debugCheckSet(block)
	}
	return false, false
}

// Contains reports whether block is resident, without touching LRU state or
// hit/miss counters.
func (c *Cache) Contains(block uint64) bool {
	for _, l := range c.set(block) {
		if l.valid && l.tag == block {
			return true
		}
	}
	return false
}

// Fill inserts block, evicting the LRU line of its set if needed. The
// prefetched flag marks lines brought in by a prefetch rather than a demand
// miss. Filling a block that is already resident refreshes its LRU position
// (and leaves its prefetch bit untouched for demand fills). It returns the
// evicted block and whether an eviction of a valid line occurred.
func (c *Cache) Fill(block uint64, prefetched bool) (evicted uint64, hadEviction bool) {
	c.tick++
	set := c.set(block)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lru = c.tick
			set[i].rrpv = 0
			if prefetched {
				set[i].prefetched = true
			}
			if pfdebugEnabled {
				c.debugCheckSet(block)
			}
			return 0, false
		}
		if victim < 0 && !set[i].valid {
			victim = i
		}
	}
	if victim < 0 {
		victim = c.pickVictim(set)
	}
	evicted, hadEviction = set[victim].tag, set[victim].valid
	c.Fills++
	if prefetched {
		c.PrefetchFills++
	}
	if hadEviction {
		c.Evictions++
	}
	rrpv := uint8(srripMax - 1)
	if prefetched {
		rrpv = srripMax // prefetch-aware insertion: distant re-reference
	}
	set[victim] = cacheLine{tag: block, lru: c.tick, rrpv: rrpv, valid: true, prefetched: prefetched}
	if pfdebugEnabled {
		c.debugCheckSet(block)
	}
	return evicted, hadEviction
}

// pickVictim selects a replacement victim from a full set.
func (c *Cache) pickVictim(set []cacheLine) int {
	if c.policy == PolicyLRU {
		victim := 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		return victim
	}
	// SRRIP: evict the first line predicted "distant"; if none, age every
	// line and retry (guaranteed to terminate within srripMax rounds).
	for {
		for i := range set {
			if set[i].rrpv >= srripMax {
				return i
			}
		}
		for i := range set {
			set[i].rrpv++
		}
	}
}

// Reset invalidates every line and clears the statistics counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.tick = 0
	c.ResetStats()
}

// ResetStats clears every statistics counter, preserving cache contents.
// The simulator uses this at the end of the warmup window; because it
// clears the whole CacheStats block, every current and future counter is
// covered (see TestResetStatsClearsEveryCounter).
func (c *Cache) ResetStats() { c.CacheStats = CacheStats{} }
