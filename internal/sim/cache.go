// Package sim is the trace-driven timing simulator used to evaluate
// prefetchers. It stands in for the ML Prefetching Competition's ChampSim
// fork (§4.1 of the paper): a trace of loads plus a prefetch file are
// replayed against the Table 3 memory hierarchy, yielding IPC and the
// prefetch bookkeeping (issued / useful) behind the accuracy and coverage
// metrics of §4.5.
package sim

import "math/bits"

// Policy selects a cache replacement policy.
type Policy int

const (
	// PolicyLRU is true least-recently-used replacement.
	PolicyLRU Policy = iota
	// PolicySRRIP is static re-reference interval prediction (Jaleel et
	// al.): 2-bit re-reference counters, demand fills inserted "long",
	// prefetch fills inserted "distant" so inaccurate prefetches are the
	// first victims — a prefetch-aware insertion policy.
	PolicySRRIP
)

// CacheStats is every statistics counter a Cache carries, grouped in one
// struct so ResetStats can clear the whole block at once — a counter added
// later cannot silently survive the warmup reset.
type CacheStats struct {
	// Hits and Misses count demand lookups.
	Hits   uint64
	Misses uint64
	// Fills counts lines actually inserted (refreshes of already-resident
	// lines are excluded); PrefetchFills is the subset inserted by
	// prefetch rather than demand.
	Fills         uint64
	PrefetchFills uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
}

// Cache is a set-associative cache operating on block addresses, with a
// selectable replacement policy (LRU by default). Lines filled by prefetch
// carry a prefetch bit that is cleared (and reported) on their first demand
// hit, which is how useful prefetches are counted.
//
// Line state lives in parallel arrays rather than a slice of structs: the
// simulator's hottest loops are linear scans of one set's tags, and packing
// the tags contiguously lets those scans touch one cache line per ~8 ways
// instead of one per way.
//
// Recency is O(1) for both LRU promotion and victim selection — no argmin
// scan on the miss path. For geometries with at most 16 ways (every
// shipped level qualifies) a whole set's recency order is packed into one
// uint64: sixteen 4-bit way indices, MRU in the lowest nibble, LRU in
// nibble fill-1, so a hit promotion is a single load, a handful of SWAR
// bit operations and a single store. Wider geometries fall back to the
// intrusive doubly-linked list per set (prev/next/lists). Three facts make
// both forms exactly equivalent to the recency stamps they replaced:
// stamps were unique (every operation draws a fresh tick), lines never
// leave a set except by replacement (so occupancy only grows and empty
// ways fill in ascending index order, tracked by a per-set fill count),
// and the stamp argmin therefore always picked either way `fill` (first
// empty) or the recency order's tail (oldest valid line). The stamps are
// maintained only by the pfdebug build, which checks the strict recency
// order against them — release builds never touch them.
type Cache struct {
	sets    int
	ways    int
	setMask uint64 // sets-1 when sets is a power of two, else 0
	policy  Policy
	packed  bool     // ways <= 16: recency lives in rec, not prev/next
	tags    []uint64 // sets × ways, row-major
	lru     []uint64 // recency stamps; maintained only under pfdebug
	meta    []uint8  // lineValid | linePrefetched | rrpv<<lineRRPVShift
	rec     []uint64 // packed per-set recency order, 4 bits per way
	prev    []uint16 // intrusive recency list, way index towards MRU
	next    []uint16 // way index towards LRU
	lists   []setList
	tick    uint64

	// Miss memo: a missing Lookup records the block so the Fill that
	// follows it — the simulator always fills the block whose lookup just
	// missed — can skip re-proving the block absent. The memo is valid
	// only while missTick still equals tick: any intervening operation on
	// this cache advances tick and invalidates it.
	missBlock uint64
	missTick  uint64

	CacheStats
}

// setList is one set's recency-list anchors: the most- and least-recently
// used valid ways plus the number of valid ways. head/tail are meaningful
// only while fill > 0.
type setList struct {
	head, tail, fill uint16
}

// noWay terminates a set's recency list.
const noWay = ^uint16(0)

const (
	lineValid      = 1 << 0
	linePrefetched = 1 << 1
	lineRRPVShift  = 2
	lineRRPVMask   = 0x3 << lineRRPVShift
)

// srripMax is the "distant" re-reference value of the 2-bit SRRIP counters.
const srripMax = 3

// invalidTag occupies the tag slot of every invalid line, so the lookup
// and residency scans are pure tag comparisons with no validity check in
// the loop. Blocks are byte addresses divided by BlockBytes, so no real
// block can reach 2^64-1.
const invalidTag = ^uint64(0)

// NewCache returns an LRU cache with the given geometry. Both sets and ways
// must be positive; sets need not be a power of two.
func NewCache(sets, ways int) *Cache {
	return NewCacheWithPolicy(sets, ways, PolicyLRU)
}

// NewCacheWithPolicy returns a cache with the given geometry and
// replacement policy.
func NewCacheWithPolicy(sets, ways int, policy Policy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("sim: cache sets and ways must be positive")
	}
	if ways >= int(noWay) {
		panic("sim: cache ways must fit the recency list's uint16 links")
	}
	n := sets * ways
	c := &Cache{
		sets: sets, ways: ways, policy: policy,
		packed:   ways <= 16,
		tags:     make([]uint64, n),
		meta:     make([]uint8, n),
		lists:    make([]setList, sets),
		missTick: ^uint64(0), // no miss recorded yet
	}
	if pfdebugEnabled {
		// Recency stamps back the pfdebug order checks only; release
		// builds neither write nor allocate them.
		c.lru = make([]uint64, n)
	}
	if c.packed {
		c.rec = make([]uint64, sets)
	} else {
		c.prev = make([]uint16, n)
		c.next = make([]uint16, n)
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// setIndex returns the index of block's set. Every shipped geometry has
// power-of-two sets, so the common path is a mask; the modulo fallback
// keeps arbitrary set counts working.
func (c *Cache) setIndex(block uint64) int {
	if c.setMask != 0 {
		return int(block & c.setMask)
	}
	return int(block % uint64(c.sets))
}

// setBase returns the first line index of block's set.
func (c *Cache) setBase(block uint64) int {
	return c.setIndex(block) * c.ways
}

// Lookup performs a demand access for block. It reports whether the access
// hit, and if so whether this was the first demand touch of a prefetched
// line. Hit lines are promoted to MRU.
func (c *Cache) Lookup(block uint64) (hit, prefetchedFirstTouch bool) {
	return c.LookupGated(block, true)
}

// LookupGated is Lookup with the statistics gated: when count is false the
// access behaves identically — LRU promotion, prefetch-bit clear — but the
// Hits/Misses counters stay untouched. The multi-core simulator uses this
// for the shared LLC, whose counters must only reflect cores inside their
// measurement window; since each core crosses its warmup boundary at a
// different time, a boundary reset (as used for the private caches) cannot
// express that.
func (c *Cache) LookupGated(block uint64, count bool) (hit, prefetchedFirstTouch bool) {
	c.tick++
	set := c.setIndex(block)
	base := set * c.ways
	// The hit scan is a pure tag comparison: invalid ways hold invalidTag,
	// which no real block can equal, so no per-way validity load is needed.
	// Ranging over a sub-slice lets the compiler drop the bounds checks.
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == block {
			return c.hitAt(set, base, uint16(w), block, count)
		}
	}
	// Miss: memoize the block so the Fill that typically follows can skip
	// re-proving it absent. Victim selection itself is O(1) at fill time.
	c.missBlock, c.missTick = block, c.tick
	if count {
		c.Misses++
	}
	if pfdebugEnabled {
		c.debugCheckSet(block)
	}
	return false, false
}

// Per-nibble SWAR constants for the packed recency word: ones replicates a
// value into every nibble, highs masks each nibble's top bit (the borrow
// bit of the zero-nibble detect below).
const (
	recOnes  = 0x1111111111111111
	recHighs = 0x8888888888888888
)

// promoteRec moves way w's nibble to the MRU (lowest) position of the
// packed recency word r, shifting the nibbles that were more recent than w
// up by one and leaving the older ones in place. w must be present among
// the valid (lowest fill) nibbles; garbage nibbles above the valid region
// stay above it and are never consulted. The position of w is found
// branch-free: XOR against w replicated into every nibble zeroes exactly
// the matching nibbles, and the classic zero-nibble detect
// (x - 0x11…1) & ^x & 0x88…8 raises each zero nibble's top bit — borrow
// propagation can raise spurious bits only above the first zero nibble,
// and TrailingZeros finds the first, which is w's true (lowest) position.
func promoteRec(r uint64, w uint16) uint64 {
	x := r ^ uint64(w)*recOnes
	z := (x - recOnes) & ^x & recHighs
	p := uint(bits.TrailingZeros64(z)) &^ 3 // bit offset of w's nibble
	low := r & (1<<p - 1)
	high := r &^ (1<<(p+4) - 1) // p+4 = 64 shifts to 0, masking nothing out
	return high | low<<4 | uint64(w)
}

// promote marks way w of the set most recently used, in whichever recency
// representation the geometry selected.
func (c *Cache) promote(set, base int, w uint16) {
	if c.packed {
		c.rec[set] = promoteRec(c.rec[set], w)
	} else {
		c.moveToHead(&c.lists[set], base, w)
	}
}

// hitAt applies a demand hit on way w of set — MRU promotion, prefetch-bit
// clear and report, counters.
func (c *Cache) hitAt(set, base int, w uint16, block uint64, count bool) (hit, prefetchedFirstTouch bool) {
	i := base + int(w)
	if pfdebugEnabled {
		c.lru[i] = c.tick
	}
	c.promote(set, base, w)
	pf := c.meta[i]&linePrefetched != 0
	c.meta[i] = lineValid // rrpv = 0, prefetch bit cleared
	if count {
		c.Hits++
	}
	if pfdebugEnabled {
		c.debugCheckSet(block)
	}
	return true, pf
}

// moveToHead promotes valid way w of the set anchored by l to MRU.
func (c *Cache) moveToHead(l *setList, base int, w uint16) {
	if l.head == w {
		return
	}
	i := base + int(w)
	p, n := c.prev[i], c.next[i]
	c.next[base+int(p)] = n // w != head, so p is a real way
	if n != noWay {
		c.prev[base+int(n)] = p
	} else {
		l.tail = p
	}
	h := l.head
	c.prev[base+int(h)] = w
	c.prev[i] = noWay
	c.next[i] = h
	l.head = w
}

// Contains reports whether block is resident, without touching LRU state or
// hit/miss counters.
func (c *Cache) Contains(block uint64) bool {
	base := c.setBase(block)
	for _, tag := range c.tags[base : base+c.ways] {
		if tag == block {
			return true
		}
	}
	return false
}

// Fill inserts block, evicting the LRU line of its set if needed. The
// prefetched flag marks lines brought in by a prefetch rather than a demand
// miss. Filling a block that is already resident refreshes its LRU position
// (and leaves its prefetch bit untouched for demand fills). It returns the
// evicted block and whether an eviction of a valid line occurred.
func (c *Cache) Fill(block uint64, prefetched bool) (evicted uint64, hadEviction bool) {
	// Fast path: this fill directly follows the lookup that missed this
	// block (no intervening operation advanced tick), so the block is known
	// absent and the residency scan can be skipped.
	if c.missBlock == block && c.missTick == c.tick {
		c.tick++
		return c.insert(block, prefetched)
	}
	c.tick++
	set := c.setIndex(block)
	base := set * c.ways
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == block { // already resident: refresh, no insert
			i := base + w
			if pfdebugEnabled {
				c.lru[i] = c.tick
			}
			c.promote(set, base, uint16(w))
			m := uint8(lineValid) // rrpv = 0
			if prefetched || c.meta[i]&linePrefetched != 0 {
				m |= linePrefetched
			}
			c.meta[i] = m
			if pfdebugEnabled {
				c.debugCheckSet(block)
			}
			return 0, false
		}
	}
	return c.insert(block, prefetched)
}

// insert installs block — known absent from its set — into a victim way
// chosen in O(1) from the set's recency list: the next empty way while the
// set is still filling, the list tail (or SRRIP's re-reference pick) once
// it is full. Shared tail of Fill's memoized and scanning paths; tick has
// already been advanced.
func (c *Cache) insert(block uint64, prefetched bool) (evicted uint64, hadEviction bool) {
	set := c.setIndex(block)
	base := set * c.ways
	l := &c.lists[set]
	var victim int
	if int(l.fill) < c.ways {
		// Replacement never empties a way, so occupancy only grows and
		// empty ways are claimed in ascending index order: the next one is
		// way `fill`. Link it in at MRU.
		w := l.fill
		victim = base + int(w)
		if c.packed {
			// Shifting the word up pushes any garbage nibbles further
			// above the valid region; with a full 16-way set the oldest
			// nibble simply falls off the top.
			c.rec[set] = c.rec[set]<<4 | uint64(w)
		} else {
			if l.fill == 0 {
				l.tail = w
				c.next[victim] = noWay
			} else {
				c.next[victim] = l.head
				c.prev[base+int(l.head)] = w
			}
			c.prev[victim] = noWay
			l.head = w
		}
		l.fill++
	} else {
		var w uint16
		switch {
		case c.policy != PolicyLRU:
			w = uint16(c.pickVictimSRRIP(base) - base)
			c.promote(set, base, w)
		case c.packed:
			// The LRU victim is the oldest valid nibble; promoting it is
			// the same shift-and-append as claiming an empty way.
			r := c.rec[set]
			w = uint16(r >> (4 * uint(c.ways-1)) & 0xF)
			c.rec[set] = r<<4 | uint64(w)
		default:
			w = l.tail
			c.moveToHead(l, base, w)
		}
		victim = base + int(w)
	}
	evicted, hadEviction = c.tags[victim], c.meta[victim]&lineValid != 0
	c.Fills++
	if prefetched {
		c.PrefetchFills++
	}
	if hadEviction {
		c.Evictions++
	}
	rrpv := uint8(srripMax - 1)
	m := uint8(lineValid)
	if prefetched {
		rrpv = srripMax // prefetch-aware insertion: distant re-reference
		m |= linePrefetched
	}
	c.tags[victim] = block
	if pfdebugEnabled {
		c.lru[victim] = c.tick
	}
	c.meta[victim] = m | rrpv<<lineRRPVShift
	if pfdebugEnabled {
		c.debugCheckSet(block)
	}
	return evicted, hadEviction
}

// pickVictimSRRIP selects a replacement victim from a full set: evict the
// first line predicted "distant"; if none, age every line and retry
// (guaranteed to terminate within srripMax rounds).
func (c *Cache) pickVictimSRRIP(base int) int {
	for {
		for i := base; i < base+c.ways; i++ {
			if c.meta[i]&lineRRPVMask >= srripMax<<lineRRPVShift {
				return i
			}
		}
		for i := base; i < base+c.ways; i++ {
			c.meta[i] += 1 << lineRRPVShift
		}
	}
}

// Reset invalidates every line and clears the statistics counters. The
// backing arrays are retained, so a reset cache is reusable without
// reallocation and behaves identically to a newly constructed one.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.lru)
	clear(c.meta)
	// The recency order rebuilds as the ways refill, so only the per-set
	// anchors (and the packed words) need clearing, not the prev/next
	// links.
	clear(c.lists)
	clear(c.rec)
	c.tick = 0
	c.missTick = ^uint64(0)
	c.ResetStats()
}

// ResetStats clears every statistics counter, preserving cache contents.
// The simulator uses this at the end of the warmup window; because it
// clears the whole CacheStats block, every current and future counter is
// covered (see TestResetStatsClearsEveryCounter).
func (c *Cache) ResetStats() { c.CacheStats = CacheStats{} }
