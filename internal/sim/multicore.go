package sim

import (
	"context"
	"fmt"

	"pathfinder/internal/trace"
)

// sharedMemory is the part of the machine that cores contend for: the
// last-level cache, the memory controller, and the set of in-flight
// prefetch fills (a prefetch issued for one core can satisfy another
// core's demand, as in a real shared LLC).
type sharedMemory struct {
	llc      *Cache
	dram     *DRAM
	inflight *inflightMap // block -> fill-ready cycle
	fills    inflightHeap
	fillSeq  uint64 // issue counter for FCFS tie-breaking of fills

	// fillsPeak is the in-flight fill heap's high-water mark, flushed to
	// telemetry at end of run (a plain int so the hot loop stays atomic-free).
	fillsPeak int
}

func newSharedMemory(cfg Config) *sharedMemory {
	return &sharedMemory{
		llc:      NewCacheWithPolicy(cfg.LLCSets, cfg.LLCWays, cfg.LLCPolicy),
		dram:     NewDRAM(cfg.DRAM),
		inflight: newInflightMap(cfg.DRAM.ReadQueue),
		fills:    make(inflightHeap, 0, cfg.DRAM.ReadQueue+1),
	}
}

// reset returns the shared memory to its freshly constructed state, keeping
// every backing allocation.
func (s *sharedMemory) reset() {
	s.llc.Reset()
	s.dram.Reset()
	s.inflight.reset()
	s.fills = s.fills[:0]
	s.fillSeq = 0
	s.fillsPeak = 0
}

func (s *sharedMemory) drainFills(now uint64) {
	for len(s.fills) > 0 && s.fills[0].ready <= now {
		f := s.fills.pop()
		// The map entry may have been superseded (a demand consumed the
		// in-flight fill); only fill if it still matches.
		if r, ok := s.inflight.get(f.block); ok && r == f.ready {
			s.llc.Fill(f.block, true)
			s.inflight.del(f.block)
		}
	}
}

// ringSize is the capacity of each core's retire-point ring. It must stay a
// power of two: dispatchTime indexes the ring with a mask.
const ringSize = 512

// corePipeline is one core's private state: L1/L2, the retire/dispatch
// model, its dependence chains, and its share of the prefetch file. It
// pulls accesses from a bounded replayWindow over a trace.Source, so a
// core's heap footprint is independent of its trace length.
type corePipeline struct {
	cfg Config
	l1  *Cache
	l2  *Cache
	win *replayWindow
	pfs []trace.Prefetch

	consumed int // accesses replayed so far
	retire   float64
	ring     [ringSize]retirePoint
	ringLen  int
	ringPos  int
	chains   map[uint32]float64
	pfIdx    int
	prevID   uint64
	firstID  uint64

	measuring  bool
	warmCycles float64
	warmInstr  uint64
	res        Result
}

func newCorePipeline(cfg Config, win *replayWindow, pfs []trace.Prefetch) *corePipeline {
	c := &corePipeline{
		cfg:    cfg,
		l1:     NewCache(cfg.L1Sets, cfg.L1Ways),
		l2:     NewCache(cfg.L2Sets, cfg.L2Ways),
		chains: make(map[uint32]float64),
	}
	c.rearm(win, pfs)
	return c
}

// rearm points the pipeline at a new trace window and prefetch file and
// clears all replay state, reusing the caches' and chain map's backing.
// After rearm the pipeline behaves identically to a newly constructed one.
func (c *corePipeline) rearm(win *replayWindow, pfs []trace.Prefetch) {
	c.l1.Reset()
	c.l2.Reset()
	c.win = win
	c.pfs = pfs
	c.consumed = 0
	c.retire = 0
	c.ringLen = 0
	c.ringPos = 0
	clear(c.chains)
	c.pfIdx = 0
	c.measuring = c.cfg.Warmup == 0
	c.warmCycles = 0
	c.warmInstr = 0
	c.res = Result{}
	c.prevID = 0
	if first, ok := win.peek(); ok {
		c.prevID = first.ID
		if c.prevID > 0 {
			c.prevID--
		}
	}
	c.firstID = c.prevID
}

// dispatchTime returns the retire time of instruction targetID using the
// recorded retire points, interpolating between them at the retire width.
func (c *corePipeline) dispatchTime(targetID uint64) float64 {
	// ringPos counts total steps, so ringPos-1-i >= ringLen-1-i >= 0 for
	// every probed i; the power-of-two mask replaces a signed modulo.
	for i := 0; i < c.ringLen; i++ {
		p := c.ring[(c.ringPos-1-i)&(ringSize-1)]
		if p.id <= targetID {
			return p.retire + float64(targetID-p.id)/float64(c.cfg.Width)
		}
	}
	if targetID <= c.firstID {
		return 0
	}
	return float64(targetID-c.firstID) / float64(c.cfg.Width)
}

// done reports whether the core has consumed its whole trace.
func (c *corePipeline) done() bool { return c.win.drained() }

// step processes the core's next access against the shared memory system.
func (c *corePipeline) step(mem *sharedMemory) error {
	cfg := &c.cfg
	acc, ok := c.win.peek()
	if !ok {
		return fmt.Errorf("sim: step on a drained trace")
	}
	if acc.ID <= c.prevID {
		return fmt.Errorf("sim: access %d has non-increasing ID %d (prev %d)", c.consumed, acc.ID, c.prevID)
	}
	gap := acc.ID - c.prevID // instructions retired including this load
	c.prevID = acc.ID

	// Non-load instructions between the previous load and this one retire
	// at full width.
	c.retire += float64(gap-1) / float64(cfg.Width)

	// The load dispatches once its ROB slot exists and, for a member of a
	// serial dependence chain, once the chain's previous load completed.
	var dispatch float64
	if acc.ID > uint64(cfg.ROB) {
		dispatch = c.dispatchTime(acc.ID - uint64(cfg.ROB))
	}
	if acc.Chain != 0 {
		if ready, ok := c.chains[acc.Chain]; ok && ready > dispatch {
			dispatch = ready
		}
	}
	now := uint64(dispatch)
	mem.drainFills(now)

	block := acc.Block()
	var lat uint64
	if hit, _ := c.l1.Lookup(block); hit {
		lat = uint64(cfg.L1Lat)
	} else if hit, _ := c.l2.Lookup(block); hit {
		lat = uint64(cfg.L1Lat + cfg.L2Lat)
		c.l1.Fill(block, false)
	} else {
		// The shared LLC's own counters are gated on this core's
		// measurement window (private L1/L2 instead reset at the boundary;
		// the LLC cannot, because cores cross their boundaries at
		// different times and would wipe each other's counts).
		hit, pfTouch := mem.llc.LookupGated(block, c.measuring)
		if c.measuring {
			c.res.LLCLoadAccesses++
		}
		if hit {
			lat = uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
			if c.measuring {
				c.res.LLCLoadHits++
				if pfTouch {
					c.res.PrefUseful++
				}
			}
		} else if ready, ok := mem.inflight.get(block); ok {
			// Late prefetch: the line is on its way; the demand waits for
			// the fill instead of issuing its own DRAM read.
			tagLat := uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
			if ready > now+tagLat {
				lat = ready - now
			} else {
				lat = tagLat
			}
			mem.inflight.del(block)
			mem.llc.Fill(block, false)
			if c.measuring {
				c.res.LLCLoadHits++
				c.res.PrefUseful++
				c.res.PrefLate++
			}
		} else {
			done := mem.dram.Access(block, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
			lat = done - now
			mem.llc.Fill(block, false)
			if c.measuring {
				c.res.LLCLoadMisses++
			}
		}
		c.l2.Fill(block, false)
		c.l1.Fill(block, false)
	}

	complete := dispatch + float64(lat)
	if acc.Chain != 0 {
		c.chains[acc.Chain] = complete
	}
	c.retire += 1.0 / float64(cfg.Width)
	if complete > c.retire {
		c.retire = complete
	}
	c.ring[c.ringPos&(ringSize-1)] = retirePoint{id: acc.ID, retire: c.retire}
	c.ringPos++
	if c.ringLen < ringSize {
		c.ringLen++
	}

	// Issue this access's prefetches after the demand is handled.
	// Prefetches are dropped under memory pressure: demand requests have
	// priority at the controller.
	dropDepth := cfg.PrefetchDropDepth
	if dropDepth <= 0 {
		dropDepth = cfg.DRAM.ReadQueue / 2
	}
	for c.pfIdx < len(c.pfs) && c.pfs[c.pfIdx].ID <= acc.ID {
		pf := c.pfs[c.pfIdx]
		c.pfIdx++
		if c.measuring {
			c.res.PrefIssued++
		}
		pb := pf.Block()
		if mem.llc.Contains(pb) {
			continue
		}
		if _, ok := mem.inflight.get(pb); ok {
			continue
		}
		if mem.dram.QueueDepth(now) >= dropDepth {
			if c.measuring {
				c.res.PrefDropped++
			}
			continue
		}
		done := mem.dram.Access(pb, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
		mem.inflight.put(pb, done)
		mem.fills.push(inflightFill{ready: done, block: pb, seq: mem.fillSeq})
		if len(mem.fills) > mem.fillsPeak {
			mem.fillsPeak = len(mem.fills)
		}
		mem.fillSeq++
		if c.measuring {
			c.res.PrefFetched++
		}
	}

	c.win.pop()
	c.consumed++
	if !c.measuring && c.consumed == cfg.Warmup {
		c.measuring = true
		c.warmCycles = c.retire
		c.warmInstr = acc.ID - c.firstID
		c.l1.ResetStats()
		c.l2.ResetStats()
		// A live marker (not an end-of-run flush) so a dashboard watching
		// /metrics can see cores leave warmup mid-run.
		if m := simTele.Load(); m != nil {
			m.warmupBoundaries.Inc()
		}
	}
	return nil
}

// finish computes the core's final metrics. A measured window shorter than
// one cycle on a non-empty trace is a degenerate configuration (warmup ate
// essentially the whole trace); it is reported as an error rather than
// silently clamped, which used to fabricate IPC values off by orders of
// magnitude. An idle core (empty trace) keeps its zero Result.
func (c *corePipeline) finish() (Result, error) {
	// An unbounded source cannot be length-checked against Warmup up
	// front the way slices are; detect a warmup that swallowed the whole
	// stream here instead. (Unreachable on the slice path, which rejects
	// warmup >= length before replay begins.)
	if c.cfg.Warmup > 0 && c.consumed > 0 && !c.measuring {
		return Result{}, fmt.Errorf("warmup %d >= trace length %d; shorten Warmup or lengthen the trace",
			c.cfg.Warmup, c.consumed)
	}
	totalInstr := uint64(0)
	if c.consumed > 0 {
		// prevID is the ID of the last access replayed.
		totalInstr = c.prevID - c.firstID
	}
	c.res.Instructions = totalInstr - c.warmInstr
	cycles := c.retire - c.warmCycles
	if cycles < 1 {
		if c.consumed > 0 {
			return Result{}, fmt.Errorf("measured window is empty (%.3f cycles for %d instructions after warmup %d); shorten Warmup or lengthen the trace",
				cycles, c.res.Instructions, c.cfg.Warmup)
		}
		cycles = 1 // idle core: zero instructions over a defined window
	}
	c.res.Cycles = uint64(cycles)
	c.res.IPC = float64(c.res.Instructions) / cycles
	return c.res, nil
}

// RunMulti simulates several cores with private L1/L2 hierarchies sharing
// one LLC and one memory controller — the co-scheduled-thread interference
// scenario §2.3 raises as a source of noise for prefetchers. cores[i] is
// core i's load trace and pfs[i] its prefetch file (nil for no
// prefetching). Cores advance in local-retire-time order, so a stalled
// core naturally falls behind while others occupy the shared resources.
// It returns one Result per core.
func RunMulti(cfg Config, cores [][]trace.Access, pfs [][]trace.Prefetch) ([]Result, error) {
	return RunMultiCtx(context.Background(), cfg, cores, pfs)
}

// RunMultiCtx is RunMulti with cancellation: the scheduling loop polls ctx
// every few thousand steps and returns ctx.Err() when cancelled.
//
// It is the materialized entry to the streaming scheduler: each core's
// slice is wrapped in a trace.SliceSource and replayed by
// RunMultiStreamCtx, so the two paths are bit-identical by construction
// (SliceSource's known length preserves the up-front warmup rejection).
func RunMultiCtx(ctx context.Context, cfg Config, cores [][]trace.Access, pfs [][]trace.Prefetch) ([]Result, error) {
	srcs := make([]trace.Source, len(cores))
	for i, accs := range cores {
		srcs[i] = trace.NewSliceSource(accs)
	}
	return RunMultiStreamCtx(ctx, cfg, srcs, pfs)
}
