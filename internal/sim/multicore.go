package sim

import (
	"container/heap"
	"context"
	"fmt"

	"pathfinder/internal/trace"
)

// sharedMemory is the part of the machine that cores contend for: the
// last-level cache, the memory controller, and the set of in-flight
// prefetch fills (a prefetch issued for one core can satisfy another
// core's demand, as in a real shared LLC).
type sharedMemory struct {
	llc      *Cache
	dram     *DRAM
	inflight map[uint64]uint64 // block -> fill-ready cycle
	fills    inflightHeap
	fillSeq  uint64 // issue counter for FCFS tie-breaking of fills

	// fillsPeak is the in-flight fill heap's high-water mark, flushed to
	// telemetry at end of run (a plain int so the hot loop stays atomic-free).
	fillsPeak int
}

func (s *sharedMemory) drainFills(now uint64) {
	for len(s.fills) > 0 && s.fills[0].ready <= now {
		f := heap.Pop(&s.fills).(inflightFill)
		// The map entry may have been superseded (a demand consumed the
		// in-flight fill); only fill if it still matches.
		if r, ok := s.inflight[f.block]; ok && r == f.ready {
			s.llc.Fill(f.block, true)
			delete(s.inflight, f.block)
		}
	}
}

// corePipeline is one core's private state: L1/L2, the retire/dispatch
// model, its dependence chains, and its share of the prefetch file.
type corePipeline struct {
	cfg  Config
	l1   *Cache
	l2   *Cache
	accs []trace.Access
	pfs  []trace.Prefetch

	idx     int
	retire  float64
	ring    [512]retirePoint
	ringLen int
	ringPos int
	chains  map[uint32]float64
	pfIdx   int
	prevID  uint64
	firstID uint64

	measuring  bool
	warmCycles float64
	warmInstr  uint64
	res        Result
}

func newCorePipeline(cfg Config, accs []trace.Access, pfs []trace.Prefetch) *corePipeline {
	c := &corePipeline{
		cfg:       cfg,
		l1:        NewCache(cfg.L1Sets, cfg.L1Ways),
		l2:        NewCache(cfg.L2Sets, cfg.L2Ways),
		accs:      accs,
		pfs:       pfs,
		chains:    make(map[uint32]float64),
		measuring: cfg.Warmup == 0,
	}
	if len(accs) > 0 {
		c.prevID = accs[0].ID
		if c.prevID > 0 {
			c.prevID--
		}
	}
	c.firstID = c.prevID
	return c
}

// dispatchTime returns the retire time of instruction targetID using the
// recorded retire points, interpolating between them at the retire width.
func (c *corePipeline) dispatchTime(targetID uint64) float64 {
	for i := 0; i < c.ringLen; i++ {
		p := c.ring[(c.ringPos-1-i+len(c.ring)*2)%len(c.ring)]
		if p.id <= targetID {
			return p.retire + float64(targetID-p.id)/float64(c.cfg.Width)
		}
	}
	if targetID <= c.firstID {
		return 0
	}
	return float64(targetID-c.firstID) / float64(c.cfg.Width)
}

// done reports whether the core has consumed its whole trace.
func (c *corePipeline) done() bool { return c.idx >= len(c.accs) }

// step processes the core's next access against the shared memory system.
func (c *corePipeline) step(mem *sharedMemory) error {
	cfg := c.cfg
	acc := c.accs[c.idx]
	if acc.ID <= c.prevID {
		return fmt.Errorf("sim: access %d has non-increasing ID %d (prev %d)", c.idx, acc.ID, c.prevID)
	}
	gap := acc.ID - c.prevID // instructions retired including this load
	c.prevID = acc.ID

	// Non-load instructions between the previous load and this one retire
	// at full width.
	c.retire += float64(gap-1) / float64(cfg.Width)

	// The load dispatches once its ROB slot exists and, for a member of a
	// serial dependence chain, once the chain's previous load completed.
	var dispatch float64
	if acc.ID > uint64(cfg.ROB) {
		dispatch = c.dispatchTime(acc.ID - uint64(cfg.ROB))
	}
	if acc.Chain != 0 {
		if ready, ok := c.chains[acc.Chain]; ok && ready > dispatch {
			dispatch = ready
		}
	}
	now := uint64(dispatch)
	mem.drainFills(now)

	block := acc.Block()
	var lat uint64
	switch {
	case func() bool { h, _ := c.l1.Lookup(block); return h }():
		lat = uint64(cfg.L1Lat)
	case func() bool { h, _ := c.l2.Lookup(block); return h }():
		lat = uint64(cfg.L1Lat + cfg.L2Lat)
		c.l1.Fill(block, false)
	default:
		// The shared LLC's own counters are gated on this core's
		// measurement window (private L1/L2 instead reset at the boundary;
		// the LLC cannot, because cores cross their boundaries at
		// different times and would wipe each other's counts).
		hit, pfTouch := mem.llc.LookupGated(block, c.measuring)
		if c.measuring {
			c.res.LLCLoadAccesses++
		}
		if hit {
			lat = uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
			if c.measuring {
				c.res.LLCLoadHits++
				if pfTouch {
					c.res.PrefUseful++
				}
			}
		} else if ready, ok := mem.inflight[block]; ok {
			// Late prefetch: the line is on its way; the demand waits for
			// the fill instead of issuing its own DRAM read.
			tagLat := uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
			if ready > now+tagLat {
				lat = ready - now
			} else {
				lat = tagLat
			}
			delete(mem.inflight, block)
			mem.llc.Fill(block, false)
			if c.measuring {
				c.res.LLCLoadHits++
				c.res.PrefUseful++
				c.res.PrefLate++
			}
		} else {
			done := mem.dram.Access(block, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
			lat = done - now
			mem.llc.Fill(block, false)
			if c.measuring {
				c.res.LLCLoadMisses++
			}
		}
		c.l2.Fill(block, false)
		c.l1.Fill(block, false)
	}

	complete := dispatch + float64(lat)
	if acc.Chain != 0 {
		c.chains[acc.Chain] = complete
	}
	c.retire += 1.0 / float64(cfg.Width)
	if complete > c.retire {
		c.retire = complete
	}
	c.ring[c.ringPos%len(c.ring)] = retirePoint{id: acc.ID, retire: c.retire}
	c.ringPos++
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}

	// Issue this access's prefetches after the demand is handled.
	// Prefetches are dropped under memory pressure: demand requests have
	// priority at the controller.
	dropDepth := cfg.PrefetchDropDepth
	if dropDepth <= 0 {
		dropDepth = cfg.DRAM.ReadQueue / 2
	}
	for c.pfIdx < len(c.pfs) && c.pfs[c.pfIdx].ID <= acc.ID {
		pf := c.pfs[c.pfIdx]
		c.pfIdx++
		if c.measuring {
			c.res.PrefIssued++
		}
		pb := pf.Block()
		if mem.llc.Contains(pb) {
			continue
		}
		if _, ok := mem.inflight[pb]; ok {
			continue
		}
		if mem.dram.QueueDepth(now) >= dropDepth {
			if c.measuring {
				c.res.PrefDropped++
			}
			continue
		}
		done := mem.dram.Access(pb, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
		mem.inflight[pb] = done
		heap.Push(&mem.fills, inflightFill{ready: done, block: pb, seq: mem.fillSeq})
		if len(mem.fills) > mem.fillsPeak {
			mem.fillsPeak = len(mem.fills)
		}
		mem.fillSeq++
		if c.measuring {
			c.res.PrefFetched++
		}
	}

	c.idx++
	if !c.measuring && c.idx == cfg.Warmup {
		c.measuring = true
		c.warmCycles = c.retire
		c.warmInstr = acc.ID - c.firstID
		c.l1.ResetStats()
		c.l2.ResetStats()
		// A live marker (not an end-of-run flush) so a dashboard watching
		// /metrics can see cores leave warmup mid-run.
		if m := simTele.Load(); m != nil {
			m.warmupBoundaries.Inc()
		}
	}
	return nil
}

// finish computes the core's final metrics. A measured window shorter than
// one cycle on a non-empty trace is a degenerate configuration (warmup ate
// essentially the whole trace); it is reported as an error rather than
// silently clamped, which used to fabricate IPC values off by orders of
// magnitude. An idle core (empty trace) keeps its zero Result.
func (c *corePipeline) finish() (Result, error) {
	totalInstr := uint64(0)
	if len(c.accs) > 0 {
		totalInstr = c.accs[len(c.accs)-1].ID - c.firstID
	}
	c.res.Instructions = totalInstr - c.warmInstr
	cycles := c.retire - c.warmCycles
	if cycles < 1 {
		if len(c.accs) > 0 {
			return Result{}, fmt.Errorf("measured window is empty (%.3f cycles for %d instructions after warmup %d); shorten Warmup or lengthen the trace",
				cycles, c.res.Instructions, c.cfg.Warmup)
		}
		cycles = 1 // idle core: zero instructions over a defined window
	}
	c.res.Cycles = uint64(cycles)
	c.res.IPC = float64(c.res.Instructions) / cycles
	return c.res, nil
}

// RunMulti simulates several cores with private L1/L2 hierarchies sharing
// one LLC and one memory controller — the co-scheduled-thread interference
// scenario §2.3 raises as a source of noise for prefetchers. cores[i] is
// core i's load trace and pfs[i] its prefetch file (nil for no
// prefetching). Cores advance in local-retire-time order, so a stalled
// core naturally falls behind while others occupy the shared resources.
// It returns one Result per core.
func RunMulti(cfg Config, cores [][]trace.Access, pfs [][]trace.Prefetch) ([]Result, error) {
	return RunMultiCtx(context.Background(), cfg, cores, pfs)
}

// RunMultiCtx is RunMulti with cancellation: the scheduling loop polls ctx
// every few thousand steps and returns ctx.Err() when cancelled.
func RunMultiCtx(ctx context.Context, cfg Config, cores [][]trace.Access, pfs [][]trace.Prefetch) ([]Result, error) {
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		return nil, fmt.Errorf("sim: invalid core config (width %d, ROB %d)", cfg.Width, cfg.ROB)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	if pfs != nil && len(pfs) != len(cores) {
		return nil, fmt.Errorf("sim: %d prefetch files for %d cores", len(pfs), len(cores))
	}
	for i, accs := range cores {
		if cfg.Warmup >= len(accs) && len(accs) > 0 {
			return nil, fmt.Errorf("sim: warmup %d >= core %d trace length %d", cfg.Warmup, i, len(accs))
		}
	}

	mem := &sharedMemory{
		llc:      NewCacheWithPolicy(cfg.LLCSets, cfg.LLCWays, cfg.LLCPolicy),
		dram:     NewDRAM(cfg.DRAM),
		inflight: make(map[uint64]uint64),
	}
	pipes := make([]*corePipeline, len(cores))
	for i, accs := range cores {
		var p []trace.Prefetch
		if pfs != nil {
			p = pfs[i]
		}
		pipes[i] = newCorePipeline(cfg, accs, p)
	}

	// Advance the core with the smallest local retire time; this keeps
	// the shared-resource access order consistent with wall-clock time.
	steps := 0
	for {
		if steps&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if pfdebugEnabled && steps&1023 == 0 {
			mem.debugCheck()
		}
		steps++
		best := -1
		for i, p := range pipes {
			if p.done() {
				continue
			}
			if best < 0 || p.retire < pipes[best].retire {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := pipes[best].step(mem); err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", best, err)
		}
	}

	out := make([]Result, len(pipes))
	for i, p := range pipes {
		res, err := p.finish()
		if err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", i, err)
		}
		out[i] = res
		out[i].DRAMReads = mem.dram.Reads
		out[i].DRAMRowHits = mem.dram.RowHits
	}
	if m := simTele.Load(); m != nil {
		// One flush per run: the per-level cache statistics come straight
		// from the caches' own (warmup-gated) counters.
		m.runs.Inc()
		m.cores.Add(uint64(len(pipes)))
		for _, p := range pipes {
			m.demands.Add(uint64(len(p.accs)))
			m.l1Hits.Add(p.l1.Hits)
			m.l1Misses.Add(p.l1.Misses)
			m.l2Hits.Add(p.l2.Hits)
			m.l2Misses.Add(p.l2.Misses)
		}
		m.llcHits.Add(mem.llc.Hits)
		m.llcMisses.Add(mem.llc.Misses)
		m.llcPrefetchFills.Add(mem.llc.PrefetchFills)
		m.llcEvictions.Add(mem.llc.Evictions)
		m.inflightPeak.SetMax(int64(mem.fillsPeak))
		mem.dram.flushTelemetry(m)
	}
	return out, nil
}
