package sim

// DRAMConfig describes the main-memory timing model (Table 3 of the paper:
// one channel, 8 ranks × 8 banks, tRP = tRCD = tCAS = 12.5 ns, read queue
// of 64 entries). Timings are expressed in core cycles; at the 4 GHz core
// clock the simulator assumes, 12.5 ns is 50 cycles.
type DRAMConfig struct {
	// Channels, Ranks and Banks give the bank-level parallelism
	// (Channels × Ranks × Banks independent banks).
	Channels int
	Ranks    int
	Banks    int
	// TRP, TRCD and TCAS are the row-precharge, row-activate and
	// column-access latencies in core cycles.
	TRP  int
	TRCD int
	TCAS int
	// BusCycles is the data-burst occupancy of a bank per access.
	BusCycles int
	// ReadQueue is the controller read-queue capacity; requests beyond it
	// stall until a slot frees.
	ReadQueue int
	// RowBlocks is the number of cache blocks per DRAM row (row-buffer
	// locality granularity).
	RowBlocks int
}

// DefaultDRAMConfig returns the Table 3 configuration at a 4 GHz core clock.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:  1,
		Ranks:     8,
		Banks:     8,
		TRP:       50,
		TRCD:      50,
		TCAS:      50,
		BusCycles: 8,
		ReadQueue: 64,
		RowBlocks: 32, // 2 KB rows of 64 B blocks
	}
}

type dramBank struct {
	readyAt uint64
	openRow uint64
	hasRow  bool
}

// completionHeap is a min-heap of outstanding-request completion times used
// to model read-queue occupancy. The sift operations are hand-rolled
// rather than going through container/heap: the interface indirection
// boxes every uint64, which put two allocations on the per-access hot
// path and broke the streaming replay's constant-memory contract.
type completionHeap []uint64

// Both sifts are hole-style — entries shift into the hole and the moving
// value lands once at the end — which halves the stores of the classic
// swap formulation while performing the same comparisons, so the final
// layout is identical.
func (h *completionHeap) push(v uint64) {
	s := append(*h, v)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= v {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = v
}

func (h *completionHeap) pop() uint64 {
	s := *h
	min := s[0]
	n := len(s) - 1
	x := s[n]
	s = s[:n]
	*h = s
	if n == 0 {
		return min
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s[r] < s[child] {
			child = r
		}
		if x <= s[child] {
			break
		}
		s[i] = s[child]
		i = child
	}
	s[i] = x
	return min
}

// DRAM models a bank-partitioned main memory with open-row policy and a
// bounded read queue. It is deliberately simple — FCFS per bank — but
// captures the two effects the evaluation depends on: row-buffer locality
// (sequential prefetches are cheap) and queue contention (inaccurate
// prefetch floods delay demand loads, §5's discussion of Pythia's
// aggressiveness).
type DRAM struct {
	cfg         DRAMConfig
	banks       []dramBank
	outstanding completionHeap

	// Reads counts all requests; RowHits counts those that hit an open row.
	Reads   uint64
	RowHits uint64

	// Telemetry accumulators: plain locals (a DRAM instance is
	// single-threaded within a run) flushed to the registry once per run by
	// flushTelemetry, so the per-access cost is a couple of integer adds
	// whether telemetry is on or off.
	teleBankConflicts uint64
	teleQueueStalls   uint64
	teleDepthCounts   []uint64 // index = read-queue depth at issue
}

// NewDRAM returns a DRAM model for the given configuration.
func NewDRAM(cfg DRAMConfig) *DRAM {
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	if n <= 0 {
		panic("sim: DRAM must have at least one bank")
	}
	if cfg.ReadQueue <= 0 {
		panic("sim: DRAM read queue must be positive")
	}
	return &DRAM{
		cfg:   cfg,
		banks: make([]dramBank, n),
		// The queue-occupancy heap can never exceed ReadQueue entries
		// (Access drains before pushing), so one allocation covers the
		// model's lifetime.
		outstanding:     make(completionHeap, 0, cfg.ReadQueue+1),
		teleDepthCounts: make([]uint64, cfg.ReadQueue+1),
	}
}

// Access issues a read for block at time now and returns its completion
// cycle. Interleaving maps consecutive blocks across banks; each bank keeps
// one open row.
func (d *DRAM) Access(block uint64, now uint64) uint64 {
	d.Reads++
	// Drain completed requests from the queue-occupancy heap.
	for len(d.outstanding) > 0 && d.outstanding[0] <= now {
		d.outstanding.pop()
	}
	d.teleDepthCounts[len(d.outstanding)]++
	start := now
	if len(d.outstanding) >= d.cfg.ReadQueue {
		d.teleQueueStalls++
		// Queue full: wait for the earliest outstanding completion.
		start = d.outstanding[0]
		for len(d.outstanding) > 0 && d.outstanding[0] <= start {
			d.outstanding.pop()
		}
	}

	row := block / uint64(d.cfg.RowBlocks)
	bank := &d.banks[row%uint64(len(d.banks))]
	prevReadyAt := bank.readyAt
	if bank.readyAt > start {
		d.teleBankConflicts++
		start = bank.readyAt
	}
	var lat, busy int
	if bank.hasRow && bank.openRow == row {
		// Row hit: column accesses pipeline, so the bank is occupied only
		// for the data burst even though the data takes tCAS to arrive.
		lat = d.cfg.TCAS
		busy = d.cfg.BusCycles
		d.RowHits++
	} else {
		// Row miss: precharge + activate occupy the bank, then the burst.
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		busy = d.cfg.TRP + d.cfg.TRCD + d.cfg.BusCycles
		bank.openRow = row
		bank.hasRow = true
	}
	done := start + uint64(lat)
	bank.readyAt = start + uint64(busy)
	d.outstanding.push(done)
	if pfdebugEnabled {
		d.debugCheckAccess(now, start, done, prevReadyAt, bank, row)
	}
	return done
}

// QueueDepth returns the number of requests still outstanding at time now.
func (d *DRAM) QueueDepth(now uint64) int {
	n := 0
	for _, c := range d.outstanding {
		if c > now {
			n++
		}
	}
	return n
}

// flushTelemetry drains the accumulated counters into the bound metric
// handles and rearms them, so a reused DRAM never double-reports.
func (d *DRAM) flushTelemetry(m *simMetrics) {
	m.dramBankConflicts.Add(d.teleBankConflicts)
	m.dramQueueStalls.Add(d.teleQueueStalls)
	for depth, n := range d.teleDepthCounts {
		m.dramQueueDepth.ObserveN(uint64(depth), n)
		d.teleDepthCounts[depth] = 0
	}
	d.teleBankConflicts, d.teleQueueStalls = 0, 0
}

// Reset clears all bank state and statistics.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = dramBank{}
	}
	d.outstanding = d.outstanding[:0]
	d.Reads, d.RowHits = 0, 0
	d.teleBankConflicts, d.teleQueueStalls = 0, 0
	for i := range d.teleDepthCounts {
		d.teleDepthCounts[i] = 0
	}
}
