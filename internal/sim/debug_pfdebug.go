//go:build pfdebug

package sim

import "fmt"

// pfdebug build: the simulator self-checks its structural invariants after
// cache and DRAM operations, panicking with a description on the first
// violation. See docs/testing.md.
const pfdebugEnabled = true

// debugCheckSet verifies the touched set's replacement-state invariants:
// at most one valid line holds any given tag, every recency stamp is
// distinct and no newer than the cache's clock (the LRU stack property —
// stamps induce a strict total recency order), and re-reference counters
// stay within SRRIP's 2-bit range.
func (c *Cache) debugCheckSet(block uint64) {
	base := c.setBase(block)
	matches := 0
	for i := base; i < base+c.ways; i++ {
		if c.meta[i]&lineValid == 0 {
			continue
		}
		if c.tags[i] == block {
			matches++
		}
		if c.lru[i] > c.tick {
			panic(fmt.Sprintf("sim pfdebug: line lru stamp %d ahead of cache clock %d", c.lru[i], c.tick))
		}
		if rrpv := c.meta[i] & lineRRPVMask >> lineRRPVShift; rrpv > srripMax {
			panic(fmt.Sprintf("sim pfdebug: rrpv %d exceeds %d", rrpv, srripMax))
		}
		for k := i + 1; k < base+c.ways; k++ {
			if c.meta[k]&lineValid != 0 && c.lru[k] == c.lru[i] {
				panic(fmt.Sprintf("sim pfdebug: duplicate lru stamp %d in set (ways %d and %d)", c.lru[i], i-base, k-base))
			}
		}
	}
	if matches > 1 {
		panic(fmt.Sprintf("sim pfdebug: block %d resident in %d ways of one set", block, matches))
	}

	// The recency order must agree with the stamps: walking MRU→LRU visits
	// exactly fill distinct valid ways, each strictly older than the one
	// before.
	set := c.setIndex(block)
	l := c.lists[set]
	valid := 0
	for i := base; i < base+c.ways; i++ {
		if c.meta[i]&lineValid != 0 {
			valid++
		}
	}
	if int(l.fill) != valid {
		panic(fmt.Sprintf("sim pfdebug: set fill count %d but %d valid ways", l.fill, valid))
	}
	if l.fill == 0 {
		return
	}
	if c.packed {
		// Packed representation: nibble s of the set's recency word is the
		// s-th most recently used way. Garbage above nibble fill-1 is
		// never consulted and stays unchecked.
		r := c.rec[set]
		var last uint64
		var seen uint32
		for s := 0; s < int(l.fill); s++ {
			w := uint16(r >> (4 * uint(s)) & 0xF)
			if int(w) >= c.ways {
				panic(fmt.Sprintf("sim pfdebug: packed recency nibble %d names way %d of %d", s, w, c.ways))
			}
			if seen&(1<<w) != 0 {
				panic(fmt.Sprintf("sim pfdebug: packed recency repeats way %d", w))
			}
			seen |= 1 << w
			i := base + int(w)
			if c.meta[i]&lineValid == 0 {
				panic(fmt.Sprintf("sim pfdebug: packed recency visits invalid way %d", w))
			}
			if s > 0 && c.lru[i] >= last {
				panic(fmt.Sprintf("sim pfdebug: packed recency out of order at way %d (stamp %d after %d)", w, c.lru[i], last))
			}
			last = c.lru[i]
		}
		return
	}
	w, steps := l.head, 0
	var last uint64
	for {
		i := base + int(w)
		if c.meta[i]&lineValid == 0 {
			panic(fmt.Sprintf("sim pfdebug: recency list visits invalid way %d", w))
		}
		if steps > 0 && c.lru[i] >= last {
			panic(fmt.Sprintf("sim pfdebug: recency list out of order at way %d (stamp %d after %d)", w, c.lru[i], last))
		}
		last = c.lru[i]
		steps++
		if steps > int(l.fill) {
			panic("sim pfdebug: recency list longer than fill count (cycle?)")
		}
		n := c.next[i]
		if n == noWay {
			break
		}
		w = n
	}
	if steps != int(l.fill) {
		panic(fmt.Sprintf("sim pfdebug: recency list length %d, fill count %d", steps, l.fill))
	}
	if w != l.tail {
		panic(fmt.Sprintf("sim pfdebug: recency list ends at way %d, tail anchor says %d", w, l.tail))
	}
}

// debugCheckAccess verifies one DRAM access's timing legality: the request
// starts no earlier than it was issued, completes after it starts, the bank
// only moves forward in time and holds the row it just served, and the
// read-queue occupancy respects its capacity.
func (d *DRAM) debugCheckAccess(now, start, done, prevReadyAt uint64, bank *dramBank, row uint64) {
	if start < now {
		panic(fmt.Sprintf("sim pfdebug: DRAM access started at %d before issue at %d", start, now))
	}
	if done <= start {
		panic(fmt.Sprintf("sim pfdebug: DRAM access done at %d not after start %d", done, start))
	}
	if bank.readyAt < prevReadyAt {
		panic(fmt.Sprintf("sim pfdebug: bank readyAt moved backwards %d -> %d", prevReadyAt, bank.readyAt))
	}
	if bank.readyAt < start {
		panic(fmt.Sprintf("sim pfdebug: bank readyAt %d before access start %d", bank.readyAt, start))
	}
	if !bank.hasRow || bank.openRow != row {
		panic(fmt.Sprintf("sim pfdebug: bank does not hold row %d it just served (hasRow %v openRow %d)", row, bank.hasRow, bank.openRow))
	}
	if len(d.outstanding) > d.cfg.ReadQueue {
		panic(fmt.Sprintf("sim pfdebug: read queue holds %d > capacity %d", len(d.outstanding), d.cfg.ReadQueue))
	}
	for i := range d.outstanding {
		for _, k := range [2]int{2*i + 1, 2*i + 2} {
			if k < len(d.outstanding) && d.outstanding[k] < d.outstanding[i] {
				panic(fmt.Sprintf("sim pfdebug: completion heap property violated at %d/%d", i, k))
			}
		}
	}
}

// debugCheck verifies the shared-memory prefetch bookkeeping: every
// in-flight map entry is backed by a heap fill with the same block and
// ready cycle (the heap may additionally hold stale, superseded fills), and
// the fill heap is a valid min-heap under its (ready, seq) order.
func (s *sharedMemory) debugCheck() {
	type key struct {
		block uint64
		ready uint64
	}
	have := make(map[key]bool, len(s.fills))
	for _, f := range s.fills {
		have[key{f.block, f.ready}] = true
	}
	s.inflight.forEach(func(block, ready uint64) {
		if !have[key{block, ready}] {
			panic(fmt.Sprintf("sim pfdebug: inflight block %d (ready %d) has no matching fill-heap entry", block, ready))
		}
	})
	if s.inflight.len() > len(s.fills) {
		panic(fmt.Sprintf("sim pfdebug: %d inflight entries exceed %d heap fills", s.inflight.len(), len(s.fills)))
	}
	for i := range s.fills {
		for _, k := range [2]int{2*i + 1, 2*i + 2} {
			if k < len(s.fills) && s.fills[k].before(s.fills[i]) {
				panic(fmt.Sprintf("sim pfdebug: fill heap property violated at %d/%d", i, k))
			}
		}
	}
}
