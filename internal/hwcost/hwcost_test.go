package hwcost

import (
	"math"
	"testing"
)

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*want
}

func TestSNNMatchesTable9(t *testing.T) {
	// The paper's Table 9 values; the calibrated model must land within
	// 15% of every published point.
	cases := []struct {
		pe, d      int
		area, watt float64
	}{
		{50, 127, 0.21, 0.446},
		{50, 63, 0.107, 0.227},
		{50, 31, 0.055, 0.116},
		{1, 127, 0.004, 0.009},
		{1, 63, 0.003, 0.006},
		{1, 31, 0.001, 0.002},
	}
	for _, c := range cases {
		got, err := SNN(c.pe, c.d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if c.pe == 1 {
			// The paper's 1-PE rows are printed to one significant digit
			// (and are not exactly 1/50th of the 50-PE rows); check them
			// to the printed precision instead.
			if math.Abs(got.AreaMM2-c.area) > 0.001 {
				t.Errorf("SNN(%d, %d): area %.4f, paper %.4f", c.pe, c.d, got.AreaMM2, c.area)
			}
			if math.Abs(got.PowerW-c.watt) > 0.0031 {
				t.Errorf("SNN(%d, %d): power %.4f, paper %.4f", c.pe, c.d, got.PowerW, c.watt)
			}
			continue
		}
		if !within(got.AreaMM2, c.area, 0.25) {
			t.Errorf("SNN(%d, %d): area %.4f, paper %.4f", c.pe, c.d, got.AreaMM2, c.area)
		}
		if !within(got.PowerW, c.watt, 0.25) {
			t.Errorf("SNN(%d, %d): power %.4f, paper %.4f", c.pe, c.d, got.PowerW, c.watt)
		}
	}
}

func TestSNNValidation(t *testing.T) {
	if _, err := SNN(0, 127, 3); err == nil {
		t.Error("accepted 0 PEs")
	}
	if _, err := SNN(50, -1, 3); err == nil {
		t.Error("accepted negative range")
	}
}

func TestTrainingTableMatchesPaper(t *testing.T) {
	// §3.5: 1K 120-bit rows -> area under 0.02 mm², power under 11 mW.
	got, err := TrainingTable(1024, 120)
	if err != nil {
		t.Fatal(err)
	}
	if got.AreaMM2 > 0.02 {
		t.Errorf("training table area %.4f > 0.02", got.AreaMM2)
	}
	if got.PowerW > 0.011 {
		t.Errorf("training table power %.4f > 0.011", got.PowerW)
	}
	if got.AreaMM2 < 0.01 {
		t.Errorf("training table area %.4f implausibly small", got.AreaMM2)
	}
}

func TestInferenceTableMatchesPaper(t *testing.T) {
	// §3.5: 50 rows × 24 bits -> ~0.00006 mm², ~0.02 mW.
	got, err := InferenceTable(50, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !within(got.AreaMM2, 0.00006, 0.2) {
		t.Errorf("inference table area %.6f, paper 0.00006", got.AreaMM2)
	}
	if !within(got.PowerW, 0.00002, 0.2) {
		t.Errorf("inference table power %.6f, paper 0.00002", got.PowerW)
	}
}

func TestTotalMatchesHeadline(t *testing.T) {
	// Abstract: "0.5 W and an area footprint of only 0.23 mm²".
	got, err := Total(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !within(got.AreaMM2, 0.23, 0.1) {
		t.Errorf("total area %.4f, paper 0.23", got.AreaMM2)
	}
	if !within(got.PowerW, 0.5, 0.15) {
		t.Errorf("total power %.4f, paper 0.5", got.PowerW)
	}
}

func TestTotalBelowOnePercentOfRyzen(t *testing.T) {
	// §3.5: overheads are < 1% of an AMD Ryzen 7 2700X (213 mm², 105 W).
	got, err := Total(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.AreaMM2/213 > 0.01 {
		t.Errorf("area fraction %.4f%% >= 1%%", 100*got.AreaMM2/213)
	}
	if got.PowerW/105 > 0.01 {
		t.Errorf("power fraction %.4f%% >= 1%%", 100*got.PowerW/105)
	}
}

func TestCostScalesMonotonically(t *testing.T) {
	small, _ := SNN(10, 31, 3)
	big, _ := SNN(100, 127, 3)
	if small.AreaMM2 >= big.AreaMM2 || small.PowerW >= big.PowerW {
		t.Error("cost not monotone in size")
	}
}

func TestTable9HasSixRows(t *testing.T) {
	rows := Table9()
	if len(rows) != 6 {
		t.Fatalf("Table9 has %d rows, want 6", len(rows))
	}
	if rows[0].PEs != 50 || rows[0].DeltaRange != 127 {
		t.Errorf("first row = %+v", rows[0])
	}
}

func TestAdd(t *testing.T) {
	c := Cost{1, 2}.Add(Cost{3, 4})
	if c.AreaMM2 != 4 || c.PowerW != 6 {
		t.Errorf("Add = %+v", c)
	}
}

func TestTotalValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEs = 0
	if _, err := Total(cfg); err == nil {
		t.Error("accepted 0 PEs")
	}
	cfg = DefaultConfig()
	cfg.TrainingRows = 0
	if _, err := Total(cfg); err == nil {
		t.Error("accepted 0 training rows")
	}
	cfg = DefaultConfig()
	cfg.LabelsPerNeuron = 0
	if _, err := Total(cfg); err == nil {
		t.Error("accepted 0 labels")
	}
}

func TestDefaultEnergyConfig(t *testing.T) {
	e, err := DefaultEnergyConfig(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.InferencePJ <= 0 || e.STDPUpdatePJ <= 0 || e.TablePJ <= 0 {
		t.Fatalf("non-positive energies: %+v", e)
	}
	// Inference share is the larger of the two by construction.
	if e.STDPUpdatePJ >= e.InferencePJ {
		t.Errorf("STDP energy %v >= inference energy %v", e.STDPUpdatePJ, e.InferencePJ)
	}
}

func TestEnergyPerAccessDutyCycling(t *testing.T) {
	e, err := DefaultEnergyConfig(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alwaysOn := EnergyPerAccess(e, 0.9, 1.0)
	dutyCycled := EnergyPerAccess(e, 0.9, 50.0/5000)
	if dutyCycled >= alwaysOn {
		t.Errorf("duty cycling did not save energy: %v vs %v", dutyCycled, alwaysOn)
	}
	// Figure 8's point: the saving is the full STDP share.
	saving := (alwaysOn - dutyCycled) / alwaysOn
	if saving < 0.2 {
		t.Errorf("energy saving %.2f; expected the STDP share (~0.28) to dominate", saving)
	}
}

func TestDefaultEnergyConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEs = 0
	if _, err := DefaultEnergyConfig(cfg); err == nil {
		t.Error("accepted invalid config")
	}
}
