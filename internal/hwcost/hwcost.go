// Package hwcost models PATHFINDER's silicon cost — area and power of the
// SNN processing elements and the two supporting tables — reproducing the
// hardware analysis of §3.5 and Table 9.
//
// The paper obtained its numbers by synthesising the 50-neuron SNN with
// Synopsys Design Compiler at 12 nm and modelling the CAM tables with CACTI
// (22 nm, scaled to 12 nm). We do not have those tools, so this package is
// an analytical model *calibrated to the paper's published data points*:
// Table 9 shows per-PE cost to be affine in the delta range (the weight
// buffer dominates: 56% of area, 94% of power at the full configuration),
// and the table costs come from the §3.5 CACTI estimates. Within the
// parameter ranges the paper sweeps, the model reproduces Table 9 to a few
// percent.
package hwcost

import "fmt"

// Cost is an area/power estimate.
type Cost struct {
	// AreaMM2 is silicon area in mm² at 12 nm.
	AreaMM2 float64
	// PowerW is peak power in watts at 1 GHz.
	PowerW float64
}

// Add returns the component-wise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{AreaMM2: c.AreaMM2 + o.AreaMM2, PowerW: c.PowerW + o.PowerW}
}

// Calibration constants, fitted to Table 9 (per-PE cost is affine in the
// number of weight-buffer entries D×H, with H = 3 in every Table 9 row).
const (
	peLogicAreaMM2   = 1.0e-4   // adders, comparators, control per PE
	weightEntryArea  = 1.073e-5 // mm² per weight-buffer entry (register file)
	peLogicPowerW    = 2.0e-4
	weightEntryPower = 2.29e-5 // W per weight-buffer entry
)

// SNN estimates the cost of the spiking network: pe processing elements,
// each with a weight buffer of deltaRange × history entries (§3.5: "50
// neurons, each equipped with DH weights").
func SNN(pe, deltaRange, history int) (Cost, error) {
	if pe <= 0 || deltaRange <= 0 || history <= 0 {
		return Cost{}, fmt.Errorf("hwcost: pe=%d deltaRange=%d history=%d must be positive", pe, deltaRange, history)
	}
	entries := float64(deltaRange * history)
	return Cost{
		AreaMM2: float64(pe) * (peLogicAreaMM2 + weightEntryArea*entries),
		PowerW:  float64(pe) * (peLogicPowerW + weightEntryPower*entries),
	}, nil
}

// Calibration for the CAM tables (§3.5): a 1K × 120-bit Training Table
// costs under 0.02 mm² and 11 mW; the 50 × 24-bit Inference Table costs
// 0.00006 mm² and 0.02 mW. CAM cost scales with bit count, with a small
// fixed overhead for the match/priority logic.
const (
	camAreaPerBit  = 1.55e-7 // mm²/bit
	camPowerPerBit = 8.8e-8  // W/bit
	ramAreaPerBit  = 5.0e-8  // mm²/bit (Inference Table is a small RAM)
	ramPowerPerBit = 1.7e-8  // W/bit
)

// TrainingTable estimates the PC/page CAM of §3.3 (rows × bits).
func TrainingTable(rows, bits int) (Cost, error) {
	if rows <= 0 || bits <= 0 {
		return Cost{}, fmt.Errorf("hwcost: rows=%d bits=%d must be positive", rows, bits)
	}
	n := float64(rows * bits)
	return Cost{AreaMM2: camAreaPerBit * n, PowerW: camPowerPerBit * n}, nil
}

// InferenceTable estimates the per-neuron label store (rows × bits).
func InferenceTable(rows, bits int) (Cost, error) {
	if rows <= 0 || bits <= 0 {
		return Cost{}, fmt.Errorf("hwcost: rows=%d bits=%d must be positive", rows, bits)
	}
	n := float64(rows * bits)
	return Cost{AreaMM2: ramAreaPerBit * n, PowerW: ramPowerPerBit * n}, nil
}

// Config describes a PATHFINDER hardware configuration for costing.
type Config struct {
	// PEs is the number of processing elements (excitatory neurons).
	PEs int
	// DeltaRange and History size each PE's weight buffer.
	DeltaRange, History int
	// TrainingRows/TrainingBits size the Training Table (paper: 1K × 120).
	TrainingRows, TrainingBits int
	// LabelsPerNeuron sizes the Inference Table rows' label slots (12
	// bits per label-confidence pair in a 24-bit row, §3.5).
	LabelsPerNeuron int
}

// DefaultConfig is the paper's full configuration: 50 PEs, range 127,
// H = 3, 1K × 120-bit Training Table, 2 labels per neuron.
func DefaultConfig() Config {
	return Config{
		PEs:          50,
		DeltaRange:   127,
		History:      3,
		TrainingRows: 1024, TrainingBits: 120,
		LabelsPerNeuron: 2,
	}
}

// Total estimates the complete prefetcher cost: SNN + Training Table +
// Inference Table. For the default configuration this lands at the paper's
// headline "0.23 mm² and 0.5 W".
func Total(cfg Config) (Cost, error) {
	snn, err := SNN(cfg.PEs, cfg.DeltaRange, cfg.History)
	if err != nil {
		return Cost{}, err
	}
	tt, err := TrainingTable(cfg.TrainingRows, cfg.TrainingBits)
	if err != nil {
		return Cost{}, err
	}
	it, err := InferenceTable(cfg.PEs, 12*cfg.LabelsPerNeuron)
	if err != nil {
		return Cost{}, err
	}
	return snn.Add(tt).Add(it), nil
}

// Table9Row is one row of the paper's Table 9.
type Table9Row struct {
	PEs        int
	DeltaRange int
	Cost       Cost
}

// Table9 reproduces the paper's Table 9: SNN area and power for 50 and 1
// PEs at delta ranges 127, 63 and 31 (H = 3 throughout).
func Table9() []Table9Row {
	var rows []Table9Row
	for _, pe := range []int{50, 1} {
		for _, d := range []int{127, 63, 31} {
			c, err := SNN(pe, d, 3)
			if err != nil {
				panic(err) // unreachable: inputs are fixed and valid
			}
			rows = append(rows, Table9Row{PEs: pe, DeltaRange: d, Cost: c})
		}
	}
	return rows
}

// Energy accounting. Figure 8's STDP duty-cycling exists to save energy:
// "By disabling STDP, we can save energy by not updating weights in weight
// buffers" (§5). The per-event energies below follow from the power model:
// at 1 GHz the full 50-PE SNN draws its power mostly in the weight buffer
// (94%, §3.5), split between reads during inference and writes during STDP.

// EnergyConfig prices the SNN's dynamic events, derived from the
// calibrated power model.
type EnergyConfig struct {
	// InferencePJ is the energy of one input interval's inference
	// (weight-buffer reads + ALU updates), in picojoules.
	InferencePJ float64
	// STDPUpdatePJ is the additional energy of one interval's STDP weight
	// updates (weight-buffer writes), in picojoules.
	STDPUpdatePJ float64
	// TablePJ is the energy of the Training/Inference table lookups per
	// access, in picojoules.
	TablePJ float64
}

// DefaultEnergyConfig derives per-event energies for a configuration from
// the calibrated power model: the SNN's weight-buffer power at 1 GHz,
// amortised over one 32-tick interval, split 60/40 between read (inference)
// and write (STDP) activity.
func DefaultEnergyConfig(cfg Config) (EnergyConfig, error) {
	snn, err := SNN(cfg.PEs, cfg.DeltaRange, cfg.History)
	if err != nil {
		return EnergyConfig{}, err
	}
	tt, err := TrainingTable(cfg.TrainingRows, cfg.TrainingBits)
	if err != nil {
		return EnergyConfig{}, err
	}
	// One interval = 32 ns at 1 GHz; P × t = energy per interval.
	const intervalNS = 32.0
	intervalPJ := snn.PowerW * intervalNS // W × ns = nJ; ×1000 = pJ
	intervalPJ *= 1000
	return EnergyConfig{
		InferencePJ:  0.6 * intervalPJ,
		STDPUpdatePJ: 0.4 * intervalPJ,
		TablePJ:      tt.PowerW * 1000, // ~1 ns table access
	}, nil
}

// EnergyPerAccess estimates PATHFINDER's average energy per trace access in
// picojoules, given the fraction of accesses that query the SNN and the
// fraction of queries with STDP enabled (1.0 for always-on; Figure 8's
// duty cycles reduce it to e.g. 50/5000 = 0.01).
func EnergyPerAccess(e EnergyConfig, queryRate, stdpRate float64) float64 {
	return e.TablePJ + queryRate*(e.InferencePJ+stdpRate*e.STDPUpdatePJ)
}
