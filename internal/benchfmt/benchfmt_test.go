package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, s, ok := ParseLine("BenchmarkPresent/rate/learn-8   85840   13581 ns/op   416 B/op   1 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if name != "BenchmarkPresent/rate/learn" {
		t.Errorf("name = %q", name)
	}
	if s.NsPerOp != 13581 || s.Bytes != 416 || s.Allocs != 1 || !s.HasAllocs {
		t.Errorf("sample = %+v", s)
	}

	if _, _, ok := ParseLine("pkg: pathfinder/internal/snn"); ok {
		t.Error("header line parsed as benchmark")
	}
	if _, _, ok := ParseLine("PASS"); ok {
		t.Error("PASS parsed as benchmark")
	}

	// Without -benchmem there are no alloc columns.
	name, s, ok = ParseLine("BenchmarkSimulate-4   12   95000000 ns/op")
	if !ok || name != "BenchmarkSimulate" || s.NsPerOp != 95000000 || s.HasAllocs {
		t.Errorf("plain line: name=%q s=%+v ok=%v", name, s, ok)
	}
}

func TestParsePkg(t *testing.T) {
	p, ok := ParsePkg("pkg: pathfinder/internal/sim")
	if !ok || p != "pathfinder/internal/sim" {
		t.Errorf("ParsePkg = %q, %v", p, ok)
	}
	if _, ok := ParsePkg("BenchmarkRunNoPrefetch-8   10   100 ns/op"); ok {
		t.Error("benchmark line parsed as pkg header")
	}
	if _, ok := ParsePkg("PASS"); ok {
		t.Error("PASS parsed as pkg header")
	}
}

const multiPkgRun = `goos: linux
pkg: pathfinder/internal/sim
BenchmarkRun-8   100   2000 ns/op   80 B/op   2 allocs/op
BenchmarkRun-8   110   1800 ns/op   80 B/op   2 allocs/op
BenchmarkZeta-8   50   100 ns/op   0 B/op   0 allocs/op
PASS
pkg: pathfinder/internal/runner
BenchmarkEval-8   10   50000 ns/op   400 B/op   9 allocs/op
PASS
`

func TestParseAggregatesByPackage(t *testing.T) {
	var echo strings.Builder
	set, err := Parse(strings.NewReader(multiPkgRun), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Packages(); len(got) != 2 || got[0] != "pathfinder/internal/sim" || got[1] != "pathfinder/internal/runner" {
		t.Fatalf("packages = %v", got)
	}
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3", set.Len())
	}
	sim := set.Entries("pathfinder/internal/sim")
	if len(sim) != 2 || sim[0].Name != "BenchmarkRun" || sim[1].Name != "BenchmarkZeta" {
		t.Fatalf("sim entries = %+v (want sorted by name)", sim)
	}
	run := sim[0]
	if run.Runs != 2 || run.NsPerOpMin != 1800 || run.NsPerOpMean != 1900 || run.AllocsPerOp != 2 || run.BytesPerOp != 80 {
		t.Errorf("aggregated entry = %+v", run)
	}
	if !strings.Contains(echo.String(), "BenchmarkEval") {
		t.Error("echo writer did not receive the input lines")
	}
}

func TestMarshalReadFileRoundTrip(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkB", Runs: 1, NsPerOpMin: 2, NsPerOpMean: 2},
		{Name: "BenchmarkA", Runs: 3, NsPerOpMin: 1, NsPerOpMean: 1.5, AllocsPerOp: 4, BytesPerOp: 128},
	}
	data, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "BenchmarkA" || got[1].Name != "BenchmarkB" {
		t.Fatalf("round trip = %+v (want sorted)", got)
	}
	if got[0] != entries[1] {
		t.Errorf("entry changed in round trip: %+v vs %+v", got[0], entries[1])
	}
}
