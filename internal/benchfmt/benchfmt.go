// Package benchfmt parses `go test -bench` text output and the
// BENCH_*.json perf records derived from it. It is the shared layer under
// cmd/benchjson (which records runs) and cmd/benchdiff (which compares a
// fresh run against the committed records), so the two tools can never
// disagree about what a benchmark line or a record means.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated result as stored in BENCH_*.json.
//
// Repeated runs of the same benchmark (-count=N) are aggregated: ns/op is
// reported as both the minimum (the least-noise estimate conventionally
// quoted for comparisons) and the mean; allocs/op and B/op must be stable
// across runs and are carried through as-is.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Sample is one raw benchmark result line.
type Sample struct {
	NsPerOp   float64
	Allocs    int64
	Bytes     int64
	HasAllocs bool
}

// ParseLine extracts one benchmark result line, e.g.
//
//	BenchmarkPresent/rate/learn-8   85840   13581 ns/op   0 B/op   0 allocs/op
//
// Returns ok=false for non-benchmark lines (headers, PASS, metrics-only).
func ParseLine(line string) (name string, s Sample, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Sample{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Sample{}, false
	}
	// Strip the -GOMAXPROCS suffix so runs on different machines compare.
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Sample{}, false
			}
			s.NsPerOp = v
			found = true
		case "B/op":
			s.Bytes, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			s.Allocs, _ = strconv.ParseInt(val, 10, 64)
			s.HasAllocs = true
		}
	}
	return name, s, found
}

// ParsePkg extracts the package path from a `pkg: <path>` header line that
// `go test` prints before each package's benchmarks (ok=false otherwise).
func ParsePkg(line string) (string, bool) {
	rest, found := strings.CutPrefix(line, "pkg:")
	if !found {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// Set holds a parsed benchmark run: aggregated entries grouped by package,
// packages in stream order, entries within a package sorted by name.
type Set struct {
	pkgs    []string
	entries map[string][]Entry
}

// Parse reads a `go test -bench` stream, aggregating repeated runs of each
// benchmark into one Entry per (package, name). When echo is non-nil every
// input line is copied to it, so the run stays visible while piped.
func Parse(r io.Reader, echo io.Writer) (*Set, error) {
	type key struct{ pkg, name string }
	byName := map[key][]Sample{}
	var order []key
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if p, ok := ParsePkg(line); ok {
			pkg = p
			continue
		}
		name, s, ok := ParseLine(line)
		if !ok {
			continue
		}
		k := key{pkg, name}
		if _, seen := byName[k]; !seen {
			order = append(order, k)
		}
		byName[k] = append(byName[k], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	set := &Set{entries: map[string][]Entry{}}
	for _, k := range order {
		runs := byName[k]
		e := Entry{Name: k.name, Runs: len(runs), NsPerOpMin: runs[0].NsPerOp}
		sum := 0.0
		for _, r := range runs {
			sum += r.NsPerOp
			if r.NsPerOp < e.NsPerOpMin {
				e.NsPerOpMin = r.NsPerOp
			}
			if r.HasAllocs {
				e.AllocsPerOp = r.Allocs
				e.BytesPerOp = r.Bytes
			}
		}
		e.NsPerOpMean = sum / float64(len(runs))
		if _, seen := set.entries[k.pkg]; !seen {
			set.pkgs = append(set.pkgs, k.pkg)
		}
		set.entries[k.pkg] = append(set.entries[k.pkg], e)
	}
	for _, es := range set.entries {
		sort.SliceStable(es, func(i, j int) bool { return es[i].Name < es[j].Name })
	}
	return set, nil
}

// Packages lists the packages seen, in stream order.
func (s *Set) Packages() []string { return s.pkgs }

// Entries returns one package's aggregated entries, sorted by name.
func (s *Set) Entries(pkg string) []Entry { return s.entries[pkg] }

// Len is the total entry count across packages.
func (s *Set) Len() int {
	n := 0
	for _, es := range s.entries {
		n += len(es)
	}
	return n
}

// Marshal renders entries as a BENCH_*.json record (sorted by name, with
// a trailing newline).
func Marshal(entries []Entry) ([]byte, error) {
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ReadFile loads a BENCH_*.json record.
func ReadFile(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}
