package snn

// rng is a small, fast, deterministic xorshift64* generator. The SNN makes
// one random draw per active pixel per tick, so it wants a generator with
// no locking and trivially reproducible streams.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// RNGState exposes the generator's position in its stream. Together with
// the learned state (weights, thresholds) it is all the cross-sample
// state a network carries — per-interval dynamics reset at every Present
// — so saving it alongside Save and restoring it with SetRNGState makes a
// reloaded network continue bit-identically where the original stopped.
func (n *Network) RNGState() uint64 { return n.rand.state }

// SetRNGState repositions the generator. A zero state (the xorshift fixed
// point, never produced by a live generator) is ignored.
func (n *Network) SetRNGState(s uint64) {
	if s != 0 {
		n.rand.state = s
	}
}
