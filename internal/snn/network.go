// Package snn implements the spiking neural network at the heart of
// PATHFINDER: a Diehl & Cook-style three-layer network of leaky
// integrate-and-fire (LIF) neurons — an input layer, an excitatory layer
// and a one-to-one inhibitory layer — trained on-line by spike-timing-
// dependent plasticity (STDP). It reproduces the behaviour of the BindsNet
// "DiehlAndCook" model the paper builds on (§3.1, Table 4), including
// Poisson rate encoding of inputs, adaptive firing thresholds, lateral
// inhibition, per-sample weight normalisation, and the low-cost 1-tick
// approximation of §3.4.
//
// The tick loop is the per-access hot path of the whole reproduction (one
// Present per SNN query per trace miss), so it is engineered as an
// event-driven, allocation-free engine — see docs/performance.md for the
// hot-path map and the invariants the fast paths rely on. Every
// optimisation preserves the exact floating-point operation sequence and
// RNG draw order of the straightforward per-tick reference loop, so
// results are bit-identical (pinned by core's TestSNNPathGolden).
package snn

import (
	"fmt"
	"math"
	"math/bits"
)

// Config holds the network hyper-parameters. Defaults follow Table 4 of the
// paper with the remaining LIF constants taken from the Diehl & Cook model
// the paper instantiates in BindsNet.
type Config struct {
	// InputSize is the number of input neurons (D × H for PATHFINDER).
	InputSize int
	// Neurons is the number of excitatory neurons (and, one-to-one,
	// inhibitory neurons). Table 4: 50.
	Neurons int
	// Exc is the excitatory→inhibitory connection strength. Table 4: 20.5.
	Exc float64
	// Inh is the inhibitory→excitatory connection strength. Table 4: 17.5.
	// Lowering it lets several excitatory neurons fire per interval,
	// which PATHFINDER uses for multi-degree prefetching (§3.4).
	Inh float64
	// InhHold is how many ticks an inhibitory neuron keeps suppressing
	// the other excitatory neurons after it fires. Sustained inhibition
	// is what gives the network its winner-take-all behaviour between the
	// winner's refractory gaps.
	InhHold int
	// Norm is the per-neuron input-weight sum enforced after every
	// sample. Table 4: 38.4.
	Norm float64
	// ThetaPlus is the adaptive-threshold increment on each excitatory
	// spike. Table 4: 0.05.
	ThetaPlus float64
	// TCTheta is the adaptive-threshold decay time constant in ticks.
	// Without decay a frequently-winning neuron's threshold grows without
	// bound and it eventually falls silent; decay lets thresholds relax
	// as the workload moves between phases.
	TCTheta float64
	// Ticks is the input-interval length T. Table 4: 32.
	Ticks int
	// FireProb is the per-tick Poisson spike probability of a fully-lit
	// input pixel (rate coding intensity).
	FireProb float64
	// Temporal switches the input from rate coding to temporal coding
	// (§2.4: "temporal encoding generates a spike at a tick that is a
	// function of the input value"): each lit pixel spikes exactly once,
	// earlier for brighter pixels. Deterministic and far sparser than
	// rate coding — one spike per pixel per interval.
	Temporal bool
	// InputGain scales the synaptic current delivered by each input
	// spike. PATHFINDER's pixel matrices light only a handful of pixels
	// (versus hundreds for the MNIST images the Diehl & Cook model was
	// tuned for), so without gain the excitatory layer rarely reaches
	// threshold within an interval — the sparsity problem §3.4 discusses.
	InputGain float64
	// NuPre and NuPost are the STDP learning rates for the pre- and
	// post-synaptic updates.
	NuPre, NuPost float64
	// WeightDependent switches STDP to the multiplicative
	// (weight-dependent) rule: potentiation scales with the headroom
	// (WMax − w) and depression with the weight itself, a soft-bound
	// variant common in the STDP literature. The default additive rule
	// with hard clamping is what BindsNet's PostPre implements.
	WeightDependent bool
	// WMax clamps learned weights to [0, WMax].
	WMax float64
	// TraceTC is the STDP trace time constant in ticks.
	TraceTC float64
	// Excitatory LIF constants.
	RestE, ResetE, ThreshE, TCDecayE float64
	RefracE                          int
	// Inhibitory LIF constants.
	RestI, ResetI, ThreshI, TCDecayI float64
	RefracI                          int
	// Seed makes weight initialisation and Poisson encoding
	// deterministic.
	Seed int64
}

// DefaultConfig returns the paper's Table 4 configuration for an input of
// the given size.
func DefaultConfig(inputSize int) Config {
	return Config{
		InputSize: inputSize,
		Neurons:   50,
		Exc:       20.5,
		Inh:       17.5,
		InhHold:   4,
		Norm:      38.4,
		ThetaPlus: 0.05,
		TCTheta:   1e4,
		Ticks:     32,
		FireProb:  0.5,
		InputGain: 8,
		NuPre:     1e-3,
		NuPost:    5e-2,
		WMax:      1.0,
		TraceTC:   20,
		RestE:     -65, ResetE: -60, ThreshE: -52, TCDecayE: 100, RefracE: 5,
		RestI: -60, ResetI: -45, ThreshI: -40, TCDecayI: 10, RefracI: 2,
		Seed: 1,
	}
}

// Network is a Diehl & Cook SNN. It is not safe for concurrent use.
type Network struct {
	cfg Config

	// w is the learned input→excitatory weight matrix, row-major
	// [input][neuron].
	w []float64
	// colSum caches per-neuron input-weight sums for normalisation.
	theta []float64 // adaptive threshold offsets, one per excitatory neuron

	vE      []float64 // excitatory membrane potentials
	vI      []float64 // inhibitory membrane potentials
	refracE []int
	refracI []int

	xPre     []float64 // pre-synaptic traces (lazy-decayed)
	xPreTick []int     // tick of last xPre update
	xPost    []float64 // post-synaptic traces

	decayE, decayI, decayTrace, decayTheta float64
	// tracePow caches math.Pow(decayTrace, dt) for dt in [0, Ticks);
	// within an interval a pre-trace is never staler than that (older
	// traces take the lazy-reset path in decayPreTrace).
	tracePow []float64

	rand *rng

	// spikeCounts accumulates excitatory spikes within the current
	// interval. Results copy it out (never alias it): see PresentInto.
	spikeCounts []int

	// monitor, when non-nil, records per-tick state. A monitor disables
	// quiescence fast-forwarding so every tick is observable.
	monitor *Monitor

	tick int

	// fastOK reports that the configuration satisfies the resting-state
	// invariants the event-driven fast paths rely on: with no input
	// drive, potentials decay towards rest strictly below threshold, so
	// a tick with no pending input spikes, no live refractory counters
	// and no inhibition hold reduces to three exponential decays. Exotic
	// configs (reset above threshold, negative theta increments) fall
	// back to the always-tick reference behaviour. Computed once in New.
	fastOK bool
	// monoInh reports Inh >= 0: a fire can only lower the other
	// potentials, so the above-threshold candidate list of the
	// winner-take-all loop can only shrink within a tick.
	monoInh bool

	// Scratch buffers reused across Present calls so the steady-state
	// hot path performs zero heap allocations. All of this is
	// per-interval transient state: it is reset or rebuilt by every
	// Present and deliberately NOT serialized (see serialize.go — only
	// learned state persists).
	scrActive   []int     // lit-pixel indices of the current input
	scrTickOf   []int     // temporal coding: spike tick per active pixel
	scrSched    []int     // concatenated per-tick input spike schedule
	scrSchedOff []int     // scrSched offsets; tick t spans [off[t-1], off[t])
	scrInhHold  []int     // remaining suppression ticks per inhibitory neuron
	scrSpiked   []bool    // fired-this-tick flags, maintained only for monitors
	scrFired    []int     // distinct neurons fired this interval, in fire order
	scrTickFire []int     // neurons fired within the current tick, in fire order
	scrCand     []int     // above-threshold candidates within a tick
	scrThr      []float64 // cached ThreshE + theta[j], refreshed on fire
	scrPot      []float64

	// Structure-of-arrays kernel scratch (see kernels.go): bitset masks
	// over the neuron index space and gather buffers for the batched
	// passes. The masks shadow the scalar state exactly — a set bit in
	// refracWE/refracWI means the matching counter is non-zero, and
	// scrSpikedW is the authoritative fired-this-tick set.
	scrSpikedW bitset // excitatory neurons that fired this tick
	refracWE   bitset // neurons with a live excitatory refractory countdown
	refracWI   bitset // neurons with a live inhibitory refractory countdown
	scrLanes   []int  // dirty-lane gather buffer for fast-forward replay

	// lastReset is the tick at which resetState last ran. Pre-synaptic
	// traces are zeroed lazily against it: any xPreTick at or before it
	// means the trace belongs to a previous interval and reads as zero,
	// sparing resetState a full InputSize-wide wipe per Present.
	lastReset int
}

// New constructs a network with uniform-random initial weights in
// [0, 0.3 × WMax], mirroring BindsNet's initialisation.
func New(cfg Config) (*Network, error) {
	if cfg.InputSize <= 0 || cfg.Neurons <= 0 {
		return nil, fmt.Errorf("snn: input size %d and neurons %d must be positive", cfg.InputSize, cfg.Neurons)
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("snn: ticks %d must be positive", cfg.Ticks)
	}
	if cfg.FireProb <= 0 || cfg.FireProb > 1 {
		return nil, fmt.Errorf("snn: fire probability %v outside (0, 1]", cfg.FireProb)
	}
	if cfg.InputGain <= 0 {
		return nil, fmt.Errorf("snn: input gain %v must be positive", cfg.InputGain)
	}
	n := &Network{
		cfg:         cfg,
		w:           make([]float64, cfg.InputSize*cfg.Neurons),
		theta:       make([]float64, cfg.Neurons),
		vE:          make([]float64, cfg.Neurons),
		vI:          make([]float64, cfg.Neurons),
		refracE:     make([]int, cfg.Neurons),
		refracI:     make([]int, cfg.Neurons),
		xPre:        make([]float64, cfg.InputSize),
		xPreTick:    make([]int, cfg.InputSize),
		xPost:       make([]float64, cfg.Neurons),
		spikeCounts: make([]int, cfg.Neurons),
		decayE:      math.Exp(-1 / cfg.TCDecayE),
		decayI:      math.Exp(-1 / cfg.TCDecayI),
		decayTrace:  math.Exp(-1 / cfg.TraceTC),
		decayTheta:  1,
		rand:        newRNG(cfg.Seed),

		fastOK: cfg.RestE < cfg.ThreshE && cfg.ResetE < cfg.ThreshE &&
			cfg.RestI < cfg.ThreshI && cfg.ResetI < cfg.ThreshI &&
			cfg.ThetaPlus >= 0 && cfg.TCDecayE > 0 && cfg.TCDecayI > 0,
		monoInh: cfg.Inh >= 0,

		scrSchedOff: make([]int, cfg.Ticks+1),
		scrInhHold:  make([]int, cfg.Neurons),
		scrSpiked:   make([]bool, cfg.Neurons),
		scrFired:    make([]int, 0, 8),
		scrTickFire: make([]int, 0, 8),
		scrCand:     make([]int, 0, 8),
		scrThr:      make([]float64, cfg.Neurons),
		scrPot:      make([]float64, cfg.Neurons),
		scrSpikedW:  newBitset(cfg.Neurons),
		refracWE:    newBitset(cfg.Neurons),
		refracWI:    newBitset(cfg.Neurons),
		scrLanes:    make([]int, 0, cfg.Neurons),
	}
	if cfg.TCTheta > 0 {
		n.decayTheta = math.Exp(-float64(cfg.Ticks) / cfg.TCTheta)
	}
	n.tracePow = make([]float64, cfg.Ticks)
	for dt := range n.tracePow {
		n.tracePow[dt] = math.Pow(n.decayTrace, float64(dt))
	}
	for i := range n.w {
		n.w[i] = 0.3 * cfg.WMax * n.rand.float64()
	}
	for j := range n.vE {
		n.vE[j] = cfg.RestE
		n.vI[j] = cfg.RestI
	}
	n.normalize()
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Weights returns the weight between input i and excitatory neuron j.
func (n *Network) Weight(i, j int) float64 { return n.w[i*n.cfg.Neurons+j] }

// Theta returns neuron j's adaptive threshold offset.
func (n *Network) Theta(j int) float64 { return n.theta[j] }

// SetMonitor attaches (or with nil, detaches) a per-tick state recorder.
func (n *Network) SetMonitor(m *Monitor) { n.monitor = m }

// Result summarises one presented input interval.
type Result struct {
	// Spikes is the per-excitatory-neuron spike count over the interval.
	// It is a copy owned by the Result's holder: it stays valid across
	// subsequent Present calls on the same network.
	Spikes []int
	// Winner is the index of the most-firing neuron, or -1 if no neuron
	// fired.
	Winner int
	// FirstFireTick is the tick of the first excitatory spike (1-based),
	// or 0 if none fired.
	FirstFireTick int
}

// FiredNeurons returns the neurons that fired at least once, ordered by
// descending spike count (ties by lower index). PATHFINDER uses this for
// multi-degree prefetching with lowered inhibition (§3.4).
func (r Result) FiredNeurons() []int {
	return r.AppendFiredNeurons(nil)
}

// AppendFiredNeurons is FiredNeurons appending into dst (which may be a
// reused scratch slice with dst[:0]) to avoid the per-query allocation on
// the multi-degree hot path.
func (r Result) AppendFiredNeurons(dst []int) []int {
	fired := dst
	for j, c := range r.Spikes {
		if c > 0 {
			fired = append(fired, j)
		}
	}
	// Insertion sort by count descending: the list is tiny.
	for i := len(dst) + 1; i < len(fired); i++ {
		for k := i; k > len(dst) && r.Spikes[fired[k]] > r.Spikes[fired[k-1]]; k-- {
			fired[k], fired[k-1] = fired[k-1], fired[k]
		}
	}
	return fired
}

// Present runs one input interval of cfg.Ticks ticks. pixels is the input
// intensity vector in [0, 1] (the flattened Memory Access Pixel Matrix);
// each pixel emits Poisson spikes at rate FireProb × intensity per tick.
// When learn is true, STDP adjusts weights during the interval and the
// per-neuron weight sums are re-normalised afterwards. State variables
// (potentials, refractory counters, traces) are reset before the interval,
// as BindsNet does between samples; adaptive thresholds and weights persist.
//
// Present allocates a fresh Result.Spikes per call; hot callers that reuse
// a Result across queries should use PresentInto, which is allocation-free
// at steady state.
func (n *Network) Present(pixels []float64, learn bool) (Result, error) {
	var res Result
	err := n.PresentInto(&res, pixels, learn)
	return res, err
}

// PresentInto is Present writing its outcome into *res. res.Spikes is
// grown once to the neuron count and then reused, so presenting into the
// same Result repeatedly performs zero heap allocations at steady state.
// The spike counts are copied out of the network's internal accumulator —
// a Result retained across later Present calls keeps its values.
func (n *Network) PresentInto(res *Result, pixels []float64, learn bool) error {
	if len(pixels) != n.cfg.InputSize {
		return fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	n.resetState()
	decayScale(n.theta, n.decayTheta)
	res.Winner = -1
	res.FirstFireTick = 0

	// Gather the active pixels once; typical PATHFINDER inputs are very
	// sparse (a handful of lit pixels out of hundreds).
	active := n.scrActive[:0]
	for i, p := range pixels {
		if p > 0 {
			active = append(active, i)
		}
	}
	n.scrActive = active

	// Pre-draw the whole interval's input spike schedule. Temporal
	// coding knows every spike tick exactly; rate coding draws its
	// per-tick Poisson spikes up front in the same tick-major,
	// active-pixel order the reference loop used, so the RNG stream is
	// consumed identically. Knowing future spike ticks is what lets the
	// tick loop below fast-forward through quiescent stretches.
	n.buildSchedule(pixels, active)

	nn := n.cfg.Neurons
	ticks := n.cfg.Ticks
	gain := n.cfg.InputGain
	if n.cfg.Temporal {
		// A temporal spike carries the whole interval's charge at
		// once (rate coding delivers ~Ticks × FireProb spikes).
		gain *= float64(n.cfg.Ticks) * n.cfg.FireProb
	}
	restE, dE := n.cfg.RestE, n.decayE
	restI, dI := n.cfg.RestI, n.decayI
	dX := n.decayTrace
	threshE, resetE := n.cfg.ThreshE, n.cfg.ResetE
	threshI, resetI := n.cfg.ThreshI, n.cfg.ResetI
	inh := n.cfg.Inh
	// Re-slicing every per-neuron array to [:nn] lets the compiler prove
	// the j < nn loops in bounds and drop the checks.
	vE, vI, xPost := n.vE[:nn], n.vI[:nn], n.xPost[:nn]
	refracE, refracI := n.refracE[:nn], n.refracI[:nn]

	// Cache each neuron's effective firing threshold; the sum only
	// changes when a fire bumps theta.
	thr := n.scrThr[:nn]
	for j := 0; j < nn; j++ {
		thr[j] = threshE + n.theta[j]
	}

	inhHold := n.scrInhHold[:nn]
	excSpiked := n.scrSpiked[:nn]
	for j := 0; j < nn; j++ {
		inhHold[j] = 0
		excSpiked[j] = false
	}
	// Bitset masks over the neuron index space (kernels.go). The fired and
	// refractory masks were zeroed by resetState; spikedW is re-cleared per
	// tick at word granularity.
	spikedW := n.scrSpikedW
	refracWE, refracWI := n.refracWE, n.refracWI
	// Liveness of the vI and xPost vectors: until the first inhibitory-layer
	// write (resp. the first fire), every element sits at its reset fixed
	// point — restI everywhere, all-zero traces — where the per-tick decay
	// maps each element to itself exactly, so the whole pass can be skipped.
	viLive, postLive := false, false
	// firedList accumulates the distinct neurons that fired this interval;
	// only their input weights (and post traces) can be non-zero, which
	// lets STDP depression and re-normalisation touch only those columns.
	firedList := n.scrFired[:0]

	// Live occupancy counters: how many neurons currently hold a non-zero
	// refractory or inhibition-hold countdown. They gate both the
	// quiescence fast-forward and the per-tick bookkeeping loops.
	refracCntE, refracCntI, holdCnt := 0, 0, 0

	// A monitor must observe every tick, so it disables fast-forwarding.
	fastOK := n.fastOK && n.monitor == nil

	// Telemetry accumulators: plain locals flushed once after the loop.
	var mTicks, mFfwd, mFfwdTicks, mCand, mDep, mPot uint64

	for t := 1; t <= ticks; {
		// Event-driven quiescence skip: with no pending input spikes, no
		// live refractory counter on either layer and no inhibition
		// hold, a tick is exactly three exponential decays (vE, vI,
		// xPost) — the winner-take-all loop left every non-refractory
		// neuron below threshold, and under fastOK decay cannot carry a
		// potential back above it. Advance all decays to the next event
		// tick in one pass, replaying the per-tick FP operations so the
		// state stays bit-identical to ticking through.
		if fastOK && refracCntE == 0 && refracCntI == 0 && holdCnt == 0 {
			if next := n.nextSpikeTick(t); next > t {
				n.fastForward(next - t)
				mFfwd++
				mFfwdTicks += uint64(next - t)
				t = next
				continue
			}
		}

		n.tick++
		mTicks++
		// 1. This tick's input spikes, cut from the prebuilt schedule.
		preSpikes := n.scrSched[n.scrSchedOff[t-1]:n.scrSchedOff[t]]

		// 2. Excitatory layer: leak, integrate, inhibit, fire. The decay/
		// housekeeping section runs as per-array vector kernels
		// (kernels.go): each array is walked linearly with the reference
		// loop's per-element operation, so splitting the fused per-neuron
		// pass into per-array passes only reorders operations on
		// independent elements — bit-identical. The vI and xPost passes
		// are elided entirely while those arrays still sit at their reset
		// fixed points, and the fired mask clears at word granularity.
		decayToward(vE, restE, dE)
		if postLive {
			decayScale(xPost, dX)
		}
		if viLive {
			decayToward(vI, restI, dI)
		}
		spikedW.zero()
		if n.monitor != nil {
			for j := 0; j < nn; j++ {
				excSpiked[j] = false
			}
		}
		integrate(vE, n.w, nn, gain, preSpikes)
		// Sustained lateral inhibition (from inhibitory neurons that
		// fired within the last InhHold ticks; a neuron is not inhibited
		// by its own partner), refractory handling, and the
		// above-threshold scan, fused into a single pass per neuron.
		// holdCnt and refracCntE track the live countdowns incrementally,
		// replacing the reference loop's per-tick rescans and selecting
		// the cheapest variant of the pass.
		cand := n.scrCand[:0]
		if holdCnt > 0 {
			// Fused variant: the reference loop's separate hold-decrement
			// pass runs inside the main scan. `others` uses the pre-tick
			// holdCnt snapshot and each neuron's own pre-decrement hold
			// value, and the decrements never feed back into this tick's
			// arithmetic, so the fusion is bit-identical.
			hc := holdCnt
			for j := 0; j < nn; j++ {
				others := hc
				h := inhHold[j]
				if h > 0 {
					others--
				}
				if refracE[j] > 0 {
					if refracE[j]--; refracE[j] == 0 {
						refracCntE--
						refracWE.clear(j)
						// A neuron leaving refractory joins this tick's
						// scan at its reset potential (the reference loop
						// decrements before the threshold scan); only
						// exotic configs with ResetE above threshold can
						// actually fire from here.
						if resetE >= thr[j] {
							cand = append(cand, j)
						}
					}
					vE[j] = resetE
				} else {
					v := vE[j] - inh*float64(others)
					vE[j] = v
					if v >= thr[j] {
						cand = append(cand, j)
					}
				}
				if h > 0 {
					if inhHold[j] = h - 1; h == 1 {
						holdCnt--
					}
				}
			}
		} else if refracCntE > 0 {
			// Word-split variant: 64-neuron spans whose refractory mask
			// word is zero take the pure threshold scan; only spans with a
			// live countdown pay the per-neuron bookkeeping. Candidates
			// still append in ascending neuron order across spans, which
			// preserves the winner-take-all tie-breaking order.
			for wi := range refracWE {
				base := wi << 6
				end := base + 64
				if end > nn {
					end = nn
				}
				if refracWE[wi] == 0 {
					for j := base; j < end; j++ {
						if vE[j] >= thr[j] {
							cand = append(cand, j)
						}
					}
					continue
				}
				for j := base; j < end; j++ {
					if refracE[j] > 0 {
						if refracE[j]--; refracE[j] == 0 {
							refracCntE--
							refracWE.clear(j)
							if resetE >= thr[j] {
								cand = append(cand, j)
							}
						}
						vE[j] = resetE
						continue
					}
					if vE[j] >= thr[j] {
						cand = append(cand, j)
					}
				}
			}
		} else {
			for j := 0; j < nn; j++ {
				if vE[j] >= thr[j] {
					cand = append(cand, j)
				}
			}
		}
		// Fire, with immediate same-tick lateral inhibition: the neuron
		// with the highest potential fires first and suppresses the rest
		// before they are examined, giving winner-take-all dynamics
		// within a tick. With monoInh each fire can only shrink the
		// candidate set (inhibition only lowers potentials), so
		// subsequent iterations filter the survivors instead of
		// rescanning all neurons.
		tickFired := n.scrTickFire[:0]
		mCand += uint64(len(cand))
		for len(cand) > 0 {
			best := cand[0]
			for _, j := range cand[1:] {
				if vE[j] > vE[best] {
					best = j
				}
			}
			spikedW.set(best)
			excSpiked[best] = true
			vE[best] = resetE
			refracE[best] = n.cfg.RefracE
			if n.cfg.RefracE > 0 {
				refracCntE++
				refracWE.set(best)
			}
			n.theta[best] += n.cfg.ThetaPlus
			thr[best] = threshE + n.theta[best]
			if n.spikeCounts[best] == 0 {
				firedList = append(firedList, best)
			}
			n.spikeCounts[best]++
			xPost[best] = 1
			postLive = true
			tickFired = append(tickFired, best)
			if res.FirstFireTick == 0 {
				res.FirstFireTick = t
			}
			for j := 0; j < nn; j++ {
				if j != best && !spikedW.get(j) {
					vE[j] -= inh
				}
			}
			if n.monoInh {
				kept := cand[:0]
				for _, j := range cand {
					if j != best && !spikedW.get(j) && refracE[j] == 0 && vE[j] >= thr[j] {
						kept = append(kept, j)
					}
				}
				cand = kept
			} else {
				// Negative inhibition can push new neurons above
				// threshold mid-tick; rescan like the reference loop.
				cand = cand[:0]
				for j := 0; j < nn; j++ {
					if !spikedW.get(j) && refracE[j] == 0 && vE[j] >= thr[j] {
						cand = append(cand, j)
					}
				}
			}
		}
		n.scrCand = cand
		n.scrTickFire = tickFired

		// 3. STDP: depress on pre spikes (against post traces), potentiate
		// on post spikes (against pre traces). Post traces are non-zero
		// only for neurons that fired this interval, so depression visits
		// only those columns.
		if learn && len(firedList) > 0 {
			mDep += uint64(len(preSpikes)) * uint64(len(firedList))
			for _, i := range preSpikes {
				row := n.w[i*nn : (i+1)*nn]
				for _, j := range firedList {
					dep := n.cfg.NuPre * xPost[j]
					if n.cfg.WeightDependent {
						dep *= row[j] / n.cfg.WMax
					}
					w := row[j] - dep
					if w < 0 {
						w = 0
					}
					row[j] = w
				}
			}
		}
		// Update pre traces after depression (BindsNet order), lazily.
		for _, i := range preSpikes {
			n.decayPreTrace(i)
			n.xPre[i] = 1
		}
		// Potentiate only this tick's firing neurons. Batched settlement:
		// decayPreTrace is idempotent after its first call in a tick, so
		// every active pre-trace settles once up front instead of once per
		// (pre, post) pair; the weight walk then goes row-major (i outer
		// over active pixels, j inner over this tick's firing neurons) so
		// each touched synapse slab is scanned linearly. Every (i, j)
		// weight is updated exactly once with the same operands as the
		// reference loop's column-major order — bit-identical.
		if learn && len(tickFired) > 0 {
			mPot += uint64(len(tickFired)) * uint64(len(active))
			for _, i := range active {
				n.decayPreTrace(i)
			}
			nuPost, wmax := n.cfg.NuPost, n.cfg.WMax
			for _, i := range active {
				row := n.w[i*nn : i*nn+nn]
				nx := nuPost * n.xPre[i]
				for _, j := range tickFired {
					pot := nx
					if n.cfg.WeightDependent {
						pot = nx * ((wmax - row[j]) / wmax)
					}
					w := row[j] + pot
					if w > wmax {
						w = wmax
					}
					row[j] = w
				}
			}
		}

		// 4. Inhibitory layer, driven one-to-one by excitatory spikes. An
		// inhibitory spike suppresses the other excitatory neurons for
		// the next InhHold ticks. Its leak already ran in the fused decay
		// pass; with no excitatory spike this tick and no refractory
		// counter live, no inhibitory potential can reach threshold
		// (fastOK invariant), so the whole pass is skipped.
		if len(tickFired) > 0 || refracCntI > 0 || !n.fastOK {
			viLive = true
			if n.fastOK && len(tickFired) == 0 {
				// Only refractory countdowns are live this tick: no
				// excitatory spike arrived and under fastOK no decaying
				// inhibitory potential can reach threshold (the same
				// invariant that lets the whole pass be skipped when the
				// mask is empty too). Walk just the masked neurons.
				for wi, wd := range refracWI {
					base := wi << 6
					for wd != 0 {
						j := base + bits.TrailingZeros64(wd)
						wd &= wd - 1
						if refracI[j]--; refracI[j] == 0 {
							refracCntI--
							refracWI.clear(j)
						}
						vI[j] = resetI
					}
				}
			} else {
				for j := 0; j < nn; j++ {
					if spikedW.get(j) {
						vI[j] += n.cfg.Exc
					}
					if refracI[j] > 0 {
						if refracI[j]--; refracI[j] == 0 {
							refracCntI--
							refracWI.clear(j)
						}
						vI[j] = resetI
						continue
					}
					if vI[j] >= threshI {
						vI[j] = resetI
						refracI[j] = n.cfg.RefracI
						if n.cfg.RefracI > 0 {
							refracCntI++
							refracWI.set(j)
						}
						if n.cfg.InhHold > inhHold[j] {
							if inhHold[j] == 0 {
								holdCnt++
							}
							inhHold[j] = n.cfg.InhHold
						}
					}
				}
			}
		}

		if n.monitor != nil {
			n.monitor.record(t, vE, excSpiked)
		}
		t++
	}

	if learn && len(firedList) > 0 {
		n.normalizeNeurons(firedList)
	}
	n.scrFired = firedList[:0]

	best := -1
	var mSpikes uint64
	for j, c := range n.spikeCounts {
		mSpikes += uint64(c)
		if c > 0 && (best < 0 || c > n.spikeCounts[best]) {
			best = j
		}
	}
	res.Winner = best
	if cap(res.Spikes) < nn {
		res.Spikes = make([]int, nn)
	}
	res.Spikes = res.Spikes[:nn]
	copy(res.Spikes, n.spikeCounts)
	if m := snnTele.Load(); m != nil {
		m.presents.Inc()
		m.ticks.Add(mTicks)
		m.spikes.Add(mSpikes)
		m.fastForwards.Add(mFfwd)
		m.fastForwardTicks.Add(mFfwdTicks)
		m.wtaCandidates.Add(mCand)
		m.stdpDepressions.Add(mDep)
		m.stdpPotentiation.Add(mPot)
	}
	if pfdebugEnabled {
		n.debugCheckInterval(ticks)
	}
	return nil
}

// buildSchedule fills scrSched/scrSchedOff with the interval's input
// spikes: tick t's spiking pixels occupy scrSched[off[t-1]:off[t]], in
// ascending pixel order within a tick — exactly the order the reference
// per-tick loop generated them in (and, for rate coding, drawing from the
// RNG in the identical sequence).
func (n *Network) buildSchedule(pixels []float64, active []int) {
	ticks := n.cfg.Ticks
	off := n.scrSchedOff
	sched := n.scrSched[:0]
	// ticks × active is the hard upper bound on interval spikes; sizing
	// once up front keeps the appends below allocation-free.
	if want := ticks * len(active); cap(sched) < want {
		sched = make([]int, 0, want)
	}
	off[0] = 0
	if n.cfg.Temporal {
		tickOf := n.scrTickOf[:0]
		for _, i := range active {
			tickOf = append(tickOf, 1+int((1-pixels[i])*float64(ticks-1)))
		}
		n.scrTickOf = tickOf
		for t := 1; t <= ticks; t++ {
			for ai, i := range active {
				if tickOf[ai] == t {
					sched = append(sched, i)
				}
			}
			off[t] = len(sched)
		}
	} else {
		fp := n.cfg.FireProb
		for t := 1; t <= ticks; t++ {
			for _, i := range active {
				if n.rand.float64() < fp*pixels[i] {
					sched = append(sched, i)
				}
			}
			off[t] = len(sched)
		}
	}
	n.scrSched = sched
}

// nextSpikeTick returns the first tick >= t with a scheduled input spike,
// or Ticks+1 if the rest of the interval is input-silent.
func (n *Network) nextSpikeTick(t int) int {
	off := n.scrSchedOff
	ticks := n.cfg.Ticks
	base := off[t-1]
	if off[ticks] == base {
		return ticks + 1
	}
	for ; t <= ticks; t++ {
		if off[t] > base {
			return t
		}
	}
	return ticks + 1
}

// fastForward advances the network through k quiescent ticks: only the
// three exponential decays act, so each dirty element's trajectory is
// replayed with the exact per-tick floating-point operations (no
// closed-form pow, which would round differently). Values already at their
// fixed point (rest potential, zero trace) are skipped — the per-tick
// update maps them to themselves exactly. The replay kernels (kernels.go)
// gather the dirty lanes per array and advance four independent decay
// chains at a time, hiding the serial per-chain FP latency.
func (n *Network) fastForward(k int) {
	n.scrLanes = replayDecay(n.vE, n.cfg.RestE, n.decayE, k, n.scrLanes)
	n.scrLanes = replayDecay(n.vI, n.cfg.RestI, n.decayI, k, n.scrLanes)
	n.scrLanes = replayScale(n.xPost, n.decayTrace, k, n.scrLanes)
	n.tick += k
}

// PresentOneTick is the low-cost approximation of §3.4 ("Lowering Time
// Interval"): instead of simulating cfg.Ticks ticks of Poisson input, it
// accumulates the expected input current once and ranks neurons by their
// resulting potential relative to their adaptive threshold. The neuron with
// the highest margin is taken as the one that would have fired first in the
// full interval (Table 1 measures how often this matches). Learning in this
// mode applies the net effect of STDP — potentiation of the winner's active
// synapses — followed by the usual normalisation.
func (n *Network) PresentOneTick(pixels []float64, learn bool) (Result, error) {
	var res Result
	err := n.PresentOneTickInto(&res, pixels, learn)
	return res, err
}

// PresentOneTickInto is PresentOneTick writing into *res, reusing
// res.Spikes like PresentInto does.
func (n *Network) PresentOneTickInto(res *Result, pixels []float64, learn bool) error {
	if len(pixels) != n.cfg.InputSize {
		return fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	nn := n.cfg.Neurons
	for j := range n.theta {
		n.theta[j] *= n.decayTheta
	}
	best, _ := n.rankOneTick(pixels)
	res.Winner = best
	res.FirstFireTick = 1
	if cap(res.Spikes) < nn {
		res.Spikes = make([]int, nn)
	}
	res.Spikes = res.Spikes[:nn]
	for j := range res.Spikes {
		res.Spikes[j] = 0
	}
	if best >= 0 {
		res.Spikes[best] = 1
	}
	if learn && best >= 0 {
		n.theta[best] += n.cfg.ThetaPlus
		for i, p := range pixels {
			if p <= 0 {
				continue
			}
			idx := i*nn + best
			w := n.w[idx] + n.cfg.NuPost*p
			if w > n.cfg.WMax {
				w = n.cfg.WMax
			}
			n.w[idx] = w
		}
		n.scrCand = append(n.scrCand[:0], best)
		n.normalizeNeurons(n.scrCand)
	}
	if m := snnTele.Load(); m != nil {
		m.oneTickPresents.Inc()
		m.ticks.Inc()
		if best >= 0 {
			m.spikes.Inc()
			if learn {
				var act uint64
				for _, p := range pixels {
					if p > 0 {
						act++
					}
				}
				m.stdpPotentiation.Add(act)
			}
		}
	}
	if pfdebugEnabled {
		// The internal spike accumulator is untouched in 1-tick mode and
		// may hold a previous full interval's counts, hence the Ticks bound.
		n.debugCheckInterval(n.cfg.Ticks)
	}
	return nil
}

// rankOneTick computes the expected single-tick potentials and returns the
// neuron with the highest potential-over-threshold margin. It does not
// mutate network state (beyond the reused scratch the potentials live in).
func (n *Network) rankOneTick(pixels []float64) (best int, pot []float64) {
	nn := n.cfg.Neurons
	pot = n.scrPot[:nn]
	for j := range pot {
		pot[j] = 0
	}
	for i, p := range pixels {
		if p <= 0 {
			continue
		}
		row := n.w[i*nn : (i+1)*nn]
		scale := n.cfg.FireProb * n.cfg.InputGain * p
		for j := 0; j < nn; j++ {
			pot[j] += scale * row[j]
		}
	}
	// The neuron that fires first in the full interval is the one whose
	// potential climbs to its own threshold fastest, so rank by expected
	// charge rate relative to the distance each neuron must climb
	// (threshold range plus its adaptive offset).
	best = -1
	bestRate := math.Inf(-1)
	climb := n.cfg.ThreshE - n.cfg.RestE
	for j := 0; j < nn; j++ {
		rate := pot[j] / (climb + n.theta[j])
		if rate > bestRate {
			bestRate = rate
			best = j
		}
	}
	return best, pot
}

// OneTickWinner returns the neuron the 1-tick approximation would pick for
// the input, without mutating any network state. The Table 1 experiment
// compares this against the full-interval winner.
func (n *Network) OneTickWinner(pixels []float64) (int, error) {
	if len(pixels) != n.cfg.InputSize {
		return -1, fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	best, _ := n.rankOneTick(pixels)
	return best, nil
}

// Potentials returns a copy of the excitatory membrane potentials.
func (n *Network) Potentials() []float64 {
	out := make([]float64, len(n.vE))
	copy(out, n.vE)
	return out
}

func (n *Network) decayPreTrace(i int) {
	if n.xPreTick[i] <= n.lastReset {
		// Trace last touched in a previous interval: resetState zeroed
		// it (lazily — see lastReset).
		n.xPre[i] = 0
		n.xPreTick[i] = n.tick
		return
	}
	dt := n.tick - n.xPreTick[i]
	if dt > 0 && n.xPre[i] != 0 {
		if dt < len(n.tracePow) {
			n.xPre[i] *= n.tracePow[dt]
		} else {
			n.xPre[i] *= math.Pow(n.decayTrace, float64(dt))
		}
		if n.xPre[i] < 1e-12 {
			n.xPre[i] = 0
		}
	}
	n.xPreTick[i] = n.tick
}

// resetState restores per-sample state (potentials, refractory counters,
// traces, interval spike counts) while preserving weights and thetas.
// Pre-synaptic traces are not wiped here: bumping lastReset makes every
// xPre whose last touch is at or before it read as zero on next access.
func (n *Network) resetState() {
	for j := range n.vE {
		n.vE[j] = n.cfg.RestE
		n.vI[j] = n.cfg.RestI
		n.refracE[j] = 0
		n.refracI[j] = 0
		n.xPost[j] = 0
		n.spikeCounts[j] = 0
	}
	n.scrSpikedW.zero()
	n.refracWE.zero()
	n.refracWI.zero()
	n.lastReset = n.tick
}

// normalize rescales every excitatory neuron's input weights so they sum to
// cfg.Norm, as the Diehl & Cook model does after every sample.
func (n *Network) normalize() {
	all := make([]int, n.cfg.Neurons)
	for j := range all {
		all[j] = j
	}
	n.normalizeNeurons(all)
}

// normalizeNeurons rescales only the given neurons' input-weight columns.
// Within an interval only firing neurons' weights change, so per-sample
// normalisation needs to touch only those. A single column's sum is a
// serial float64 add chain (each add waits on the previous rounding), so
// the summation pass ladders four, then two, then one column at a time —
// independent accumulators that cover the chain latency. Each column still
// sums in ascending input order (the reference accumulation order) and
// each weight sees the same multiply-and-clamp, so the laddered form is
// bit-identical to normalising column by column.
func (n *Network) normalizeNeurons(neurons []int) {
	nn := n.cfg.Neurons
	in := n.cfg.InputSize
	w := n.w
	k := 0
	for ; k+4 <= len(neurons); k += 4 {
		j0, j1, j2, j3 := neurons[k], neurons[k+1], neurons[k+2], neurons[k+3]
		s0, s1, s2, s3 := 0.0, 0.0, 0.0, 0.0
		for i := 0; i < in; i++ {
			base := i * nn
			s0 += w[base+j0]
			s1 += w[base+j1]
			s2 += w[base+j2]
			s3 += w[base+j3]
		}
		n.scaleColumn(j0, s0)
		n.scaleColumn(j1, s1)
		n.scaleColumn(j2, s2)
		n.scaleColumn(j3, s3)
	}
	for ; k+2 <= len(neurons); k += 2 {
		j0, j1 := neurons[k], neurons[k+1]
		s0, s1 := 0.0, 0.0
		for i := 0; i < in; i++ {
			base := i * nn
			s0 += w[base+j0]
			s1 += w[base+j1]
		}
		n.scaleColumn(j0, s0)
		n.scaleColumn(j1, s1)
	}
	for ; k < len(neurons); k++ {
		j := neurons[k]
		sum := 0.0
		for i := 0; i < in; i++ {
			sum += w[i*nn+j]
		}
		n.scaleColumn(j, sum)
	}
	if pfdebugEnabled {
		n.debugCheckNormalized(neurons)
	}
}

// scaleColumn rescales one input-weight column to make it sum to cfg.Norm,
// clamping to WMax — the apply half of normalizeNeurons. Columns without a
// positive sum are left untouched, exactly as the reference loop skips
// them (a NaN sum fails the comparison and still applies, as it must).
func (n *Network) scaleColumn(j int, sum float64) {
	if sum <= 0 {
		return
	}
	nn := n.cfg.Neurons
	in := n.cfg.InputSize
	scale := n.cfg.Norm / sum
	wmax := n.cfg.WMax
	w := n.w
	for i := 0; i < in; i++ {
		v := w[i*nn+j] * scale
		if v > wmax {
			v = wmax
		}
		w[i*nn+j] = v
	}
}

// Monitor records per-tick excitatory potentials and spikes for
// visualisation (Figure 3) and the §3.6 walkthrough (Table 2). Attaching a
// monitor turns off quiescence fast-forwarding (every tick must be
// recorded) but does not change the simulated dynamics.
type Monitor struct {
	// Ticks holds one snapshot per simulated tick since the monitor was
	// attached.
	Ticks []MonitorTick
}

// MonitorTick is one recorded simulation tick.
type MonitorTick struct {
	// Tick is the tick index within its input interval (1-based).
	Tick int
	// Potentials is the excitatory membrane potential vector.
	Potentials []float64
	// Fired marks the excitatory neurons that spiked this tick.
	Fired []bool
}

func (m *Monitor) record(t int, v []float64, fired []bool) {
	vc := make([]float64, len(v))
	copy(vc, v)
	fc := make([]bool, len(fired))
	copy(fc, fired)
	m.Ticks = append(m.Ticks, MonitorTick{Tick: t, Potentials: vc, Fired: fc})
}

// Reset clears all recorded ticks.
func (m *Monitor) Reset() { m.Ticks = nil }
