// Package snn implements the spiking neural network at the heart of
// PATHFINDER: a Diehl & Cook-style three-layer network of leaky
// integrate-and-fire (LIF) neurons — an input layer, an excitatory layer
// and a one-to-one inhibitory layer — trained on-line by spike-timing-
// dependent plasticity (STDP). It reproduces the behaviour of the BindsNet
// "DiehlAndCook" model the paper builds on (§3.1, Table 4), including
// Poisson rate encoding of inputs, adaptive firing thresholds, lateral
// inhibition, per-sample weight normalisation, and the low-cost 1-tick
// approximation of §3.4.
package snn

import (
	"fmt"
	"math"
)

// Config holds the network hyper-parameters. Defaults follow Table 4 of the
// paper with the remaining LIF constants taken from the Diehl & Cook model
// the paper instantiates in BindsNet.
type Config struct {
	// InputSize is the number of input neurons (D × H for PATHFINDER).
	InputSize int
	// Neurons is the number of excitatory neurons (and, one-to-one,
	// inhibitory neurons). Table 4: 50.
	Neurons int
	// Exc is the excitatory→inhibitory connection strength. Table 4: 20.5.
	Exc float64
	// Inh is the inhibitory→excitatory connection strength. Table 4: 17.5.
	// Lowering it lets several excitatory neurons fire per interval,
	// which PATHFINDER uses for multi-degree prefetching (§3.4).
	Inh float64
	// InhHold is how many ticks an inhibitory neuron keeps suppressing
	// the other excitatory neurons after it fires. Sustained inhibition
	// is what gives the network its winner-take-all behaviour between the
	// winner's refractory gaps.
	InhHold int
	// Norm is the per-neuron input-weight sum enforced after every
	// sample. Table 4: 38.4.
	Norm float64
	// ThetaPlus is the adaptive-threshold increment on each excitatory
	// spike. Table 4: 0.05.
	ThetaPlus float64
	// TCTheta is the adaptive-threshold decay time constant in ticks.
	// Without decay a frequently-winning neuron's threshold grows without
	// bound and it eventually falls silent; decay lets thresholds relax
	// as the workload moves between phases.
	TCTheta float64
	// Ticks is the input-interval length T. Table 4: 32.
	Ticks int
	// FireProb is the per-tick Poisson spike probability of a fully-lit
	// input pixel (rate coding intensity).
	FireProb float64
	// Temporal switches the input from rate coding to temporal coding
	// (§2.4: "temporal encoding generates a spike at a tick that is a
	// function of the input value"): each lit pixel spikes exactly once,
	// earlier for brighter pixels. Deterministic and far sparser than
	// rate coding — one spike per pixel per interval.
	Temporal bool
	// InputGain scales the synaptic current delivered by each input
	// spike. PATHFINDER's pixel matrices light only a handful of pixels
	// (versus hundreds for the MNIST images the Diehl & Cook model was
	// tuned for), so without gain the excitatory layer rarely reaches
	// threshold within an interval — the sparsity problem §3.4 discusses.
	InputGain float64
	// NuPre and NuPost are the STDP learning rates for the pre- and
	// post-synaptic updates.
	NuPre, NuPost float64
	// WeightDependent switches STDP to the multiplicative
	// (weight-dependent) rule: potentiation scales with the headroom
	// (WMax − w) and depression with the weight itself, a soft-bound
	// variant common in the STDP literature. The default additive rule
	// with hard clamping is what BindsNet's PostPre implements.
	WeightDependent bool
	// WMax clamps learned weights to [0, WMax].
	WMax float64
	// TraceTC is the STDP trace time constant in ticks.
	TraceTC float64
	// Excitatory LIF constants.
	RestE, ResetE, ThreshE, TCDecayE float64
	RefracE                          int
	// Inhibitory LIF constants.
	RestI, ResetI, ThreshI, TCDecayI float64
	RefracI                          int
	// Seed makes weight initialisation and Poisson encoding
	// deterministic.
	Seed int64
}

// DefaultConfig returns the paper's Table 4 configuration for an input of
// the given size.
func DefaultConfig(inputSize int) Config {
	return Config{
		InputSize: inputSize,
		Neurons:   50,
		Exc:       20.5,
		Inh:       17.5,
		InhHold:   4,
		Norm:      38.4,
		ThetaPlus: 0.05,
		TCTheta:   1e4,
		Ticks:     32,
		FireProb:  0.5,
		InputGain: 8,
		NuPre:     1e-3,
		NuPost:    5e-2,
		WMax:      1.0,
		TraceTC:   20,
		RestE:     -65, ResetE: -60, ThreshE: -52, TCDecayE: 100, RefracE: 5,
		RestI: -60, ResetI: -45, ThreshI: -40, TCDecayI: 10, RefracI: 2,
		Seed: 1,
	}
}

// Network is a Diehl & Cook SNN. It is not safe for concurrent use.
type Network struct {
	cfg Config

	// w is the learned input→excitatory weight matrix, row-major
	// [input][neuron].
	w []float64
	// colSum caches per-neuron input-weight sums for normalisation.
	theta []float64 // adaptive threshold offsets, one per excitatory neuron

	vE      []float64 // excitatory membrane potentials
	vI      []float64 // inhibitory membrane potentials
	refracE []int
	refracI []int

	xPre     []float64 // pre-synaptic traces (lazy-decayed)
	xPreTick []int     // tick of last xPre update
	xPost    []float64 // post-synaptic traces

	decayE, decayI, decayTrace, decayTheta float64

	rand *rng

	// spikeCounts accumulates excitatory spikes within the current
	// interval.
	spikeCounts []int

	// monitor, when non-nil, records per-tick state.
	monitor *Monitor

	tick int
}

// New constructs a network with uniform-random initial weights in
// [0, 0.3 × WMax], mirroring BindsNet's initialisation.
func New(cfg Config) (*Network, error) {
	if cfg.InputSize <= 0 || cfg.Neurons <= 0 {
		return nil, fmt.Errorf("snn: input size %d and neurons %d must be positive", cfg.InputSize, cfg.Neurons)
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("snn: ticks %d must be positive", cfg.Ticks)
	}
	if cfg.FireProb <= 0 || cfg.FireProb > 1 {
		return nil, fmt.Errorf("snn: fire probability %v outside (0, 1]", cfg.FireProb)
	}
	if cfg.InputGain <= 0 {
		return nil, fmt.Errorf("snn: input gain %v must be positive", cfg.InputGain)
	}
	n := &Network{
		cfg:         cfg,
		w:           make([]float64, cfg.InputSize*cfg.Neurons),
		theta:       make([]float64, cfg.Neurons),
		vE:          make([]float64, cfg.Neurons),
		vI:          make([]float64, cfg.Neurons),
		refracE:     make([]int, cfg.Neurons),
		refracI:     make([]int, cfg.Neurons),
		xPre:        make([]float64, cfg.InputSize),
		xPreTick:    make([]int, cfg.InputSize),
		xPost:       make([]float64, cfg.Neurons),
		spikeCounts: make([]int, cfg.Neurons),
		decayE:      math.Exp(-1 / cfg.TCDecayE),
		decayI:      math.Exp(-1 / cfg.TCDecayI),
		decayTrace:  math.Exp(-1 / cfg.TraceTC),
		decayTheta:  1,
		rand:        newRNG(cfg.Seed),
	}
	if cfg.TCTheta > 0 {
		n.decayTheta = math.Exp(-float64(cfg.Ticks) / cfg.TCTheta)
	}
	for i := range n.w {
		n.w[i] = 0.3 * cfg.WMax * n.rand.float64()
	}
	for j := range n.vE {
		n.vE[j] = cfg.RestE
		n.vI[j] = cfg.RestI
	}
	n.normalize()
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Weights returns the weight between input i and excitatory neuron j.
func (n *Network) Weight(i, j int) float64 { return n.w[i*n.cfg.Neurons+j] }

// Theta returns neuron j's adaptive threshold offset.
func (n *Network) Theta(j int) float64 { return n.theta[j] }

// SetMonitor attaches (or with nil, detaches) a per-tick state recorder.
func (n *Network) SetMonitor(m *Monitor) { n.monitor = m }

// Result summarises one presented input interval.
type Result struct {
	// Spikes is the per-excitatory-neuron spike count over the interval.
	Spikes []int
	// Winner is the index of the most-firing neuron, or -1 if no neuron
	// fired.
	Winner int
	// FirstFireTick is the tick of the first excitatory spike (1-based),
	// or 0 if none fired.
	FirstFireTick int
}

// FiredNeurons returns the neurons that fired at least once, ordered by
// descending spike count (ties by lower index). PATHFINDER uses this for
// multi-degree prefetching with lowered inhibition (§3.4).
func (r Result) FiredNeurons() []int {
	var fired []int
	for j, c := range r.Spikes {
		if c > 0 {
			fired = append(fired, j)
		}
	}
	// Insertion sort by count descending: the list is tiny.
	for i := 1; i < len(fired); i++ {
		for k := i; k > 0 && r.Spikes[fired[k]] > r.Spikes[fired[k-1]]; k-- {
			fired[k], fired[k-1] = fired[k-1], fired[k]
		}
	}
	return fired
}

// Present runs one input interval of cfg.Ticks ticks. pixels is the input
// intensity vector in [0, 1] (the flattened Memory Access Pixel Matrix);
// each pixel emits Poisson spikes at rate FireProb × intensity per tick.
// When learn is true, STDP adjusts weights during the interval and the
// per-neuron weight sums are re-normalised afterwards. State variables
// (potentials, refractory counters, traces) are reset before the interval,
// as BindsNet does between samples; adaptive thresholds and weights persist.
func (n *Network) Present(pixels []float64, learn bool) (Result, error) {
	if len(pixels) != n.cfg.InputSize {
		return Result{}, fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	n.resetState()
	for j := range n.theta {
		n.theta[j] *= n.decayTheta
	}

	// Gather the active pixels once; typical PATHFINDER inputs are very
	// sparse (a handful of lit pixels out of hundreds).
	active := make([]int, 0, 32)
	for i, p := range pixels {
		if p > 0 {
			active = append(active, i)
		}
	}

	res := Result{Spikes: n.spikeCounts, Winner: -1}
	inhHold := make([]int, n.cfg.Neurons) // remaining suppression ticks per inh neuron
	excSpiked := make([]bool, n.cfg.Neurons)
	preSpikes := make([]int, 0, len(active))
	// firedList accumulates the distinct neurons that fired this interval;
	// only their input weights (and post traces) can be non-zero, which
	// lets STDP depression and re-normalisation touch only those columns.
	firedList := make([]int, 0, 8)

	for t := 1; t <= n.cfg.Ticks; t++ {
		n.tick++
		// 1. Input spikes for this tick: Poisson rate coding by default,
		// or one deterministic spike per pixel under temporal coding
		// (brighter pixels spike earlier).
		preSpikes = preSpikes[:0]
		if n.cfg.Temporal {
			for _, i := range active {
				spikeTick := 1 + int((1-pixels[i])*float64(n.cfg.Ticks-1))
				if spikeTick == t {
					preSpikes = append(preSpikes, i)
				}
			}
		} else {
			for _, i := range active {
				if n.rand.float64() < n.cfg.FireProb*pixels[i] {
					preSpikes = append(preSpikes, i)
				}
			}
		}

		// 2. Excitatory layer: leak, integrate, inhibit, fire.
		nn := n.cfg.Neurons
		for j := 0; j < nn; j++ {
			n.vE[j] = n.cfg.RestE + (n.vE[j]-n.cfg.RestE)*n.decayE
			n.xPost[j] *= n.decayTrace
		}
		gain := n.cfg.InputGain
		if n.cfg.Temporal {
			// A temporal spike carries the whole interval's charge at
			// once (rate coding delivers ~Ticks × FireProb spikes).
			gain *= float64(n.cfg.Ticks) * n.cfg.FireProb
		}
		for _, i := range preSpikes {
			row := n.w[i*nn : (i+1)*nn]
			for j := 0; j < nn; j++ {
				n.vE[j] += gain * row[j]
			}
		}
		// Sustained lateral inhibition from inhibitory neurons that fired
		// within the last InhHold ticks. A neuron is not inhibited by its
		// own inhibitory partner.
		holdCount := 0
		for k := 0; k < nn; k++ {
			if inhHold[k] > 0 {
				holdCount++
			}
		}
		if holdCount > 0 {
			for j := 0; j < nn; j++ {
				others := holdCount
				if inhHold[j] > 0 {
					others--
				}
				n.vE[j] -= n.cfg.Inh * float64(others)
			}
		}
		for k := 0; k < nn; k++ {
			if inhHold[k] > 0 {
				inhHold[k]--
			}
		}
		// Fire, with immediate same-tick lateral inhibition: the neuron
		// with the highest potential fires first and suppresses the rest
		// before they are examined, giving winner-take-all dynamics
		// within a tick.
		for j := 0; j < nn; j++ {
			excSpiked[j] = false
			if n.refracE[j] > 0 {
				n.refracE[j]--
				n.vE[j] = n.cfg.ResetE
			}
		}
		for {
			best := -1
			for j := 0; j < nn; j++ {
				if excSpiked[j] || n.refracE[j] > 0 {
					continue
				}
				if n.vE[j] >= n.cfg.ThreshE+n.theta[j] {
					if best < 0 || n.vE[j] > n.vE[best] {
						best = j
					}
				}
			}
			if best < 0 {
				break
			}
			excSpiked[best] = true
			n.vE[best] = n.cfg.ResetE
			n.refracE[best] = n.cfg.RefracE
			n.theta[best] += n.cfg.ThetaPlus
			if n.spikeCounts[best] == 0 {
				firedList = append(firedList, best)
			}
			n.spikeCounts[best]++
			n.xPost[best] = 1
			if res.FirstFireTick == 0 {
				res.FirstFireTick = t
			}
			for j := 0; j < nn; j++ {
				if j != best && !excSpiked[j] {
					n.vE[j] -= n.cfg.Inh
				}
			}
		}

		// 3. STDP: depress on pre spikes (against post traces), potentiate
		// on post spikes (against pre traces). Post traces are non-zero
		// only for neurons that fired this interval, so depression visits
		// only those columns.
		if learn && len(firedList) > 0 {
			for _, i := range preSpikes {
				row := n.w[i*nn : (i+1)*nn]
				for _, j := range firedList {
					dep := n.cfg.NuPre * n.xPost[j]
					if n.cfg.WeightDependent {
						dep *= row[j] / n.cfg.WMax
					}
					w := row[j] - dep
					if w < 0 {
						w = 0
					}
					row[j] = w
				}
			}
		}
		// Update pre traces after depression (BindsNet order), lazily.
		for _, i := range preSpikes {
			n.decayPreTrace(i)
			n.xPre[i] = 1
		}
		if learn {
			for j := 0; j < nn; j++ {
				if !excSpiked[j] {
					continue
				}
				for _, i := range active {
					n.decayPreTrace(i)
					idx := i*nn + j
					pot := n.cfg.NuPost * n.xPre[i]
					if n.cfg.WeightDependent {
						pot *= (n.cfg.WMax - n.w[idx]) / n.cfg.WMax
					}
					w := n.w[idx] + pot
					if w > n.cfg.WMax {
						w = n.cfg.WMax
					}
					n.w[idx] = w
				}
			}
		}

		// 4. Inhibitory layer, driven one-to-one by excitatory spikes. An
		// inhibitory spike suppresses the other excitatory neurons for
		// the next InhHold ticks.
		for j := 0; j < nn; j++ {
			n.vI[j] = n.cfg.RestI + (n.vI[j]-n.cfg.RestI)*n.decayI
			if excSpiked[j] {
				n.vI[j] += n.cfg.Exc
			}
			if n.refracI[j] > 0 {
				n.refracI[j]--
				n.vI[j] = n.cfg.ResetI
				continue
			}
			if n.vI[j] >= n.cfg.ThreshI {
				n.vI[j] = n.cfg.ResetI
				n.refracI[j] = n.cfg.RefracI
				if n.cfg.InhHold > inhHold[j] {
					inhHold[j] = n.cfg.InhHold
				}
			}
		}

		if n.monitor != nil {
			n.monitor.record(t, n.vE, excSpiked)
		}
	}

	if learn && len(firedList) > 0 {
		n.normalizeNeurons(firedList)
	}

	best := -1
	for j, c := range n.spikeCounts {
		if c > 0 && (best < 0 || c > n.spikeCounts[best]) {
			best = j
		}
	}
	res.Winner = best
	out := make([]int, len(n.spikeCounts))
	copy(out, n.spikeCounts)
	res.Spikes = out
	return res, nil
}

// PresentOneTick is the low-cost approximation of §3.4 ("Lowering Time
// Interval"): instead of simulating cfg.Ticks ticks of Poisson input, it
// accumulates the expected input current once and ranks neurons by their
// resulting potential relative to their adaptive threshold. The neuron with
// the highest margin is taken as the one that would have fired first in the
// full interval (Table 1 measures how often this matches). Learning in this
// mode applies the net effect of STDP — potentiation of the winner's active
// synapses — followed by the usual normalisation.
func (n *Network) PresentOneTick(pixels []float64, learn bool) (Result, error) {
	if len(pixels) != n.cfg.InputSize {
		return Result{}, fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	nn := n.cfg.Neurons
	for j := range n.theta {
		n.theta[j] *= n.decayTheta
	}
	best, _ := n.rankOneTick(pixels)
	res := Result{Spikes: make([]int, nn), Winner: best, FirstFireTick: 1}
	if best >= 0 {
		res.Spikes[best] = 1
	}
	if learn && best >= 0 {
		n.theta[best] += n.cfg.ThetaPlus
		for i, p := range pixels {
			if p <= 0 {
				continue
			}
			idx := i*nn + best
			w := n.w[idx] + n.cfg.NuPost*p
			if w > n.cfg.WMax {
				w = n.cfg.WMax
			}
			n.w[idx] = w
		}
		n.normalizeNeurons([]int{best})
	}
	return res, nil
}

// rankOneTick computes the expected single-tick potentials and returns the
// neuron with the highest potential-over-threshold margin. It does not
// mutate network state.
func (n *Network) rankOneTick(pixels []float64) (best int, pot []float64) {
	nn := n.cfg.Neurons
	pot = make([]float64, nn)
	for i, p := range pixels {
		if p <= 0 {
			continue
		}
		row := n.w[i*nn : (i+1)*nn]
		scale := n.cfg.FireProb * n.cfg.InputGain * p
		for j := 0; j < nn; j++ {
			pot[j] += scale * row[j]
		}
	}
	// The neuron that fires first in the full interval is the one whose
	// potential climbs to its own threshold fastest, so rank by expected
	// charge rate relative to the distance each neuron must climb
	// (threshold range plus its adaptive offset).
	best = -1
	bestRate := math.Inf(-1)
	climb := n.cfg.ThreshE - n.cfg.RestE
	for j := 0; j < nn; j++ {
		rate := pot[j] / (climb + n.theta[j])
		if rate > bestRate {
			bestRate = rate
			best = j
		}
	}
	return best, pot
}

// OneTickWinner returns the neuron the 1-tick approximation would pick for
// the input, without mutating any network state. The Table 1 experiment
// compares this against the full-interval winner.
func (n *Network) OneTickWinner(pixels []float64) (int, error) {
	if len(pixels) != n.cfg.InputSize {
		return -1, fmt.Errorf("snn: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	best, _ := n.rankOneTick(pixels)
	return best, nil
}

// Potentials returns a copy of the excitatory membrane potentials.
func (n *Network) Potentials() []float64 {
	out := make([]float64, len(n.vE))
	copy(out, n.vE)
	return out
}

func (n *Network) decayPreTrace(i int) {
	dt := n.tick - n.xPreTick[i]
	if dt > 0 && n.xPre[i] != 0 {
		n.xPre[i] *= math.Pow(n.decayTrace, float64(dt))
		if n.xPre[i] < 1e-12 {
			n.xPre[i] = 0
		}
	}
	n.xPreTick[i] = n.tick
}

// resetState restores per-sample state (potentials, refractory counters,
// traces, interval spike counts) while preserving weights and thetas.
func (n *Network) resetState() {
	for j := range n.vE {
		n.vE[j] = n.cfg.RestE
		n.vI[j] = n.cfg.RestI
		n.refracE[j] = 0
		n.refracI[j] = 0
		n.xPost[j] = 0
		n.spikeCounts[j] = 0
	}
	for i := range n.xPre {
		n.xPre[i] = 0
		n.xPreTick[i] = n.tick
	}
}

// normalize rescales every excitatory neuron's input weights so they sum to
// cfg.Norm, as the Diehl & Cook model does after every sample.
func (n *Network) normalize() {
	all := make([]int, n.cfg.Neurons)
	for j := range all {
		all[j] = j
	}
	n.normalizeNeurons(all)
}

// normalizeNeurons rescales only the given neurons' input-weight columns.
// Within an interval only firing neurons' weights change, so per-sample
// normalisation needs to touch only those.
func (n *Network) normalizeNeurons(neurons []int) {
	nn := n.cfg.Neurons
	for _, j := range neurons {
		sum := 0.0
		for i := 0; i < n.cfg.InputSize; i++ {
			sum += n.w[i*nn+j]
		}
		if sum <= 0 {
			continue
		}
		scale := n.cfg.Norm / sum
		for i := 0; i < n.cfg.InputSize; i++ {
			w := n.w[i*nn+j] * scale
			if w > n.cfg.WMax {
				w = n.cfg.WMax
			}
			n.w[i*nn+j] = w
		}
	}
}

// Monitor records per-tick excitatory potentials and spikes for
// visualisation (Figure 3) and the §3.6 walkthrough (Table 2).
type Monitor struct {
	// Ticks holds one snapshot per simulated tick since the monitor was
	// attached.
	Ticks []MonitorTick
}

// MonitorTick is one recorded simulation tick.
type MonitorTick struct {
	// Tick is the tick index within its input interval (1-based).
	Tick int
	// Potentials is the excitatory membrane potential vector.
	Potentials []float64
	// Fired marks the excitatory neurons that spiked this tick.
	Fired []bool
}

func (m *Monitor) record(t int, v []float64, fired []bool) {
	vc := make([]float64, len(v))
	copy(vc, v)
	fc := make([]bool, len(fired))
	copy(fc, fired)
	m.Ticks = append(m.Ticks, MonitorTick{Tick: t, Potentials: vc, Fired: fc})
}

// Reset clears all recorded ticks.
func (m *Monitor) Reset() { m.Ticks = nil }
