//go:build pfdebug

package snn

import (
	"fmt"
	"math"
)

// pfdebug build: the engine self-checks its structural invariants after
// every presented interval and every weight normalisation, panicking with a
// description on the first violation. These are the properties the
// event-driven fast paths rely on; see docs/testing.md.
const pfdebugEnabled = true

// debugCheckInterval runs after a presentation. maxSpikes is the most times
// any single neuron can have fired (one per tick for a full interval, one
// for the 1-tick approximation).
func (n *Network) debugCheckInterval(maxSpikes int) {
	cfg := n.cfg
	// Membrane, trace and theta decay factors must be genuine decays
	// (finite, in (0, 1]) whenever their time constants are sane;
	// otherwise the quiescence fast-forward's fixed-point reasoning and
	// the lazy trace resets are unsound.
	checkDecay := func(name string, tc, d float64) {
		if tc > 0 && !(d > 0 && d <= 1) {
			panic(fmt.Sprintf("snn pfdebug: %s decay %v outside (0,1] (tc %v)", name, d, tc))
		}
	}
	checkDecay("excitatory", cfg.TCDecayE, n.decayE)
	checkDecay("inhibitory", cfg.TCDecayI, n.decayI)
	checkDecay("trace", cfg.TraceTC, n.decayTrace)
	checkDecay("theta", cfg.TCTheta, n.decayTheta)

	for j := 0; j < cfg.Neurons; j++ {
		if math.IsNaN(n.vE[j]) || math.IsInf(n.vE[j], 0) {
			panic(fmt.Sprintf("snn pfdebug: vE[%d] = %v not finite", j, n.vE[j]))
		}
		if math.IsNaN(n.vI[j]) || math.IsInf(n.vI[j], 0) {
			panic(fmt.Sprintf("snn pfdebug: vI[%d] = %v not finite", j, n.vI[j]))
		}
		if n.refracE[j] < 0 || (cfg.RefracE >= 0 && n.refracE[j] > cfg.RefracE) {
			panic(fmt.Sprintf("snn pfdebug: refracE[%d] = %d outside [0, %d]", j, n.refracE[j], cfg.RefracE))
		}
		if n.refracI[j] < 0 || (cfg.RefracI >= 0 && n.refracI[j] > cfg.RefracI) {
			panic(fmt.Sprintf("snn pfdebug: refracI[%d] = %d outside [0, %d]", j, n.refracI[j], cfg.RefracI))
		}
		if cfg.ThetaPlus >= 0 && (n.theta[j] < 0 || math.IsNaN(n.theta[j])) {
			panic(fmt.Sprintf("snn pfdebug: theta[%d] = %v negative or NaN with ThetaPlus %v", j, n.theta[j], cfg.ThetaPlus))
		}
		if n.spikeCounts[j] < 0 || n.spikeCounts[j] > maxSpikes {
			panic(fmt.Sprintf("snn pfdebug: spikeCounts[%d] = %d outside [0, %d]", j, n.spikeCounts[j], maxSpikes))
		}
		if h := n.scrInhHold[j]; h < 0 || (cfg.InhHold >= 0 && h > cfg.InhHold) {
			panic(fmt.Sprintf("snn pfdebug: inhHold[%d] = %d outside [0, %d]", j, h, cfg.InhHold))
		}
		if n.xPost[j] < 0 || n.xPost[j] > 1 {
			panic(fmt.Sprintf("snn pfdebug: xPost[%d] = %v outside [0, 1]", j, n.xPost[j]))
		}
	}
	if cfg.Norm >= 0 { // negative Norm legitimately scales weights negative
		for i := range n.w {
			if w := n.w[i]; !(w >= 0 && w <= cfg.WMax) {
				panic(fmt.Sprintf("snn pfdebug: w[%d] = %v outside [0, %v]", i, w, cfg.WMax))
			}
		}
	}
}

// debugCheckNormalized runs after normalizeNeurons rescaled the given
// neurons' input-weight columns: each column must now sum to cfg.Norm
// unless the WMax clamp bit into it (then the sum may only fall short) or
// the column was all-zero (normalisation skips it).
func (n *Network) debugCheckNormalized(neurons []int) {
	nn := n.cfg.Neurons
	tol := 1e-9 * math.Max(1, math.Abs(n.cfg.Norm))
	for _, j := range neurons {
		sum, clamped := 0.0, false
		for i := 0; i < n.cfg.InputSize; i++ {
			w := n.w[i*nn+j]
			sum += w
			if w == n.cfg.WMax {
				clamped = true
			}
		}
		switch {
		case sum == 0: // all-zero column: normalisation has nothing to scale
		case clamped:
			if sum > n.cfg.Norm+tol {
				panic(fmt.Sprintf("snn pfdebug: neuron %d weight sum %v exceeds Norm %v despite WMax clamp", j, sum, n.cfg.Norm))
			}
		default:
			if math.Abs(sum-n.cfg.Norm) > tol {
				panic(fmt.Sprintf("snn pfdebug: neuron %d weight sum %v, want Norm %v (|diff| %g > tol %g)", j, sum, n.cfg.Norm, math.Abs(sum-n.cfg.Norm), tol))
			}
		}
	}
}
