package snn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Serialization lets a trained network be saved and restored — the
// software analogue of persisting the weight buffers and theta registers
// of §3.5's hardware across power states, and the practical way to ship a
// pre-warmed prefetcher. Only learned state (weights, adaptive thresholds)
// and the configuration are stored; per-interval state (potentials,
// traces) is transient by design and resets every sample anyway. The
// engine's scratch buffers and derived fast-path state (scr*, tracePow,
// fastOK, monoInh — see network.go) are likewise never serialized:
// LoadNetwork rebuilds them through New from the stored configuration.

var snnMagic = [4]byte{'S', 'N', 'N', '1'}

// Sanity caps on a decoded configuration, checked before any allocation:
// a corrupt or hostile file must fail with an error, never an OOM. They
// sit far above every configuration the paper sweeps (Table 4 uses 50
// neurons over a few-hundred-row input).
const (
	maxLoadNeurons   = 1 << 14
	maxLoadInputSize = 1 << 18
	maxLoadSynapses  = 1 << 24
)

// Save writes the network's configuration and learned state to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snnMagic[:]); err != nil {
		return err
	}
	// Configuration, fixed-order.
	wd := int64(0)
	if n.cfg.WeightDependent {
		wd = 1
	}
	tc := int64(0)
	if n.cfg.Temporal {
		tc = 1
	}
	ints := []int64{
		int64(n.cfg.InputSize), int64(n.cfg.Neurons), int64(n.cfg.InhHold),
		int64(n.cfg.Ticks), int64(n.cfg.RefracE), int64(n.cfg.RefracI),
		n.cfg.Seed, wd, tc,
	}
	floats := []float64{
		n.cfg.Exc, n.cfg.Inh, n.cfg.Norm, n.cfg.ThetaPlus, n.cfg.TCTheta,
		n.cfg.FireProb, n.cfg.InputGain, n.cfg.NuPre, n.cfg.NuPost,
		n.cfg.WMax, n.cfg.TraceTC,
		n.cfg.RestE, n.cfg.ResetE, n.cfg.ThreshE, n.cfg.TCDecayE,
		n.cfg.RestI, n.cfg.ResetI, n.cfg.ThreshI, n.cfg.TCDecayI,
	}
	for _, v := range ints {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range floats {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	// Learned state.
	for _, v := range n.w {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	for _, v := range n.theta {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadNetwork reads a network previously written by Save. The restored
// network resumes learning and inference exactly where the saved one
// stopped (up to the per-sample transient state, which resets anyway).
func LoadNetwork(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("snn: reading magic: %w", err)
	}
	if m != snnMagic {
		return nil, errors.New("snn: bad magic; not an SNN1 file")
	}
	var ints [9]int64
	for i := range ints {
		if err := binary.Read(br, binary.LittleEndian, &ints[i]); err != nil {
			return nil, fmt.Errorf("snn: reading config: %w", err)
		}
	}
	var fbits [19]uint64
	for i := range fbits {
		if err := binary.Read(br, binary.LittleEndian, &fbits[i]); err != nil {
			return nil, fmt.Errorf("snn: reading config: %w", err)
		}
	}
	if ints[0] <= 0 || ints[0] > maxLoadInputSize || ints[1] <= 0 || ints[1] > maxLoadNeurons {
		return nil, fmt.Errorf("snn: implausible dimensions in file (input %d, neurons %d)", ints[0], ints[1])
	}
	if ints[0]*ints[1] > maxLoadSynapses {
		return nil, fmt.Errorf("snn: implausible weight matrix in file (%d x %d)", ints[0], ints[1])
	}
	if ints[3] <= 0 || ints[3] > 1<<12 {
		return nil, fmt.Errorf("snn: implausible tick count %d in file", ints[3])
	}
	f := func(i int) float64 { return math.Float64frombits(fbits[i]) }
	cfg := Config{
		InputSize: int(ints[0]), Neurons: int(ints[1]), InhHold: int(ints[2]),
		Ticks: int(ints[3]), RefracE: int(ints[4]), RefracI: int(ints[5]),
		Seed: ints[6], WeightDependent: ints[7] != 0, Temporal: ints[8] != 0,
		Exc: f(0), Inh: f(1), Norm: f(2), ThetaPlus: f(3), TCTheta: f(4),
		FireProb: f(5), InputGain: f(6), NuPre: f(7), NuPost: f(8),
		WMax: f(9), TraceTC: f(10),
		RestE: f(11), ResetE: f(12), ThreshE: f(13), TCDecayE: f(14),
		RestI: f(15), ResetI: f(16), ThreshI: f(17), TCDecayI: f(18),
	}
	n, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("snn: restoring: %w", err)
	}
	for i := range n.w {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("snn: reading weights: %w", err)
		}
		n.w[i] = math.Float64frombits(bits)
	}
	for i := range n.theta {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("snn: reading thetas: %w", err)
		}
		n.theta[i] = math.Float64frombits(bits)
	}
	return n, nil
}
