package snn

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// snnMetrics is the package's bound telemetry handles. The hot tick loop
// accumulates plain local integers and flushes them here once per
// presentation, so the per-tick cost of telemetry is a handful of integer
// adds whether it is on or off; the atomics are touched only at interval
// boundaries. Counters cannot perturb dynamics: no floating-point
// operation, RNG draw, or allocation depends on them.
type snnMetrics struct {
	presents         *telemetry.Counter // full-interval presentations
	oneTickPresents  *telemetry.Counter // §3.4 1-tick presentations
	ticks            *telemetry.Counter // ticks actually simulated
	spikes           *telemetry.Counter // excitatory spikes emitted
	fastForwards     *telemetry.Counter // quiescence fast-forwards taken
	fastForwardTicks *telemetry.Counter // ticks skipped by fast-forwards
	wtaCandidates    *telemetry.Counter // above-threshold WTA candidates scanned
	stdpDepressions  *telemetry.Counter // STDP depression weight updates
	stdpPotentiation *telemetry.Counter // STDP potentiation weight updates
}

// snnTele holds the current handles; nil when telemetry is off, making
// every flush site a single pointer load and branch.
var snnTele atomic.Pointer[snnMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
// Names are stable and documented in docs/observability.md.
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		snnTele.Store(nil)
		return
	}
	snnTele.Store(&snnMetrics{
		presents:         r.Counter("snn.presents"),
		oneTickPresents:  r.Counter("snn.presents_one_tick"),
		ticks:            r.Counter("snn.ticks"),
		spikes:           r.Counter("snn.spikes"),
		fastForwards:     r.Counter("snn.fast_forwards"),
		fastForwardTicks: r.Counter("snn.fast_forward_ticks"),
		wtaCandidates:    r.Counter("snn.wta_candidates"),
		stdpDepressions:  r.Counter("snn.stdp_depressions"),
		stdpPotentiation: r.Counter("snn.stdp_potentiations"),
	})
}
