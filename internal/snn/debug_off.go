//go:build !pfdebug

package snn

// pfdebugEnabled gates the invariant assertions of debug_pfdebug.go. In
// normal builds it is a false constant, so every `if pfdebugEnabled { ... }`
// block and the stub bodies below compile away entirely; `go test -tags
// pfdebug ./...` (the make verify pfdebug target) turns them on.
const pfdebugEnabled = false

func (n *Network) debugCheckInterval(maxSpikes int) {}

func (n *Network) debugCheckNormalized(neurons []int) {}
