package snn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig(127 * 3)
	cfg.Seed = 7
	return cfg
}

// pattern lights one pixel per "row" of a 3x127 pixel matrix, like a
// PATHFINDER delta history.
func pattern(deltas ...int) []float64 {
	p := make([]float64, 127*3)
	for row, d := range deltas {
		col := d + 63
		p[row*127+col] = 1
	}
	return p
}

func TestNewValidatesConfig(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.InputSize = 0 },
		func(c *Config) { c.Neurons = 0 },
		func(c *Config) { c.Ticks = 0 },
		func(c *Config) { c.FireProb = 0 },
		func(c *Config) { c.FireProb = 1.5 },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestPresentRejectsWrongInputLength(t *testing.T) {
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Present(make([]float64, 5), false); err == nil {
		t.Error("Present accepted wrong input length")
	}
	if _, err := n.PresentOneTick(make([]float64, 5), false); err == nil {
		t.Error("PresentOneTick accepted wrong input length")
	}
}

func TestInitialWeightsNormalized(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cfg.Neurons; j++ {
		sum := 0.0
		for i := 0; i < cfg.InputSize; i++ {
			sum += n.Weight(i, j)
		}
		if math.Abs(sum-cfg.Norm) > 1e-6 {
			t.Fatalf("neuron %d weight sum %.4f, want %.1f", j, sum, cfg.Norm)
		}
	}
}

func TestWeightsStayBounded(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		if _, err := n.Present(pattern(1, 2, 4), true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cfg.InputSize; i++ {
		for j := 0; j < cfg.Neurons; j++ {
			w := n.Weight(i, j)
			if w < 0 || w > cfg.WMax {
				t.Fatalf("weight[%d][%d] = %v outside [0, %v]", i, j, w, cfg.WMax)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		n, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		var last Result
		for k := 0; k < 5; k++ {
			last, err = n.Present(pattern(1, 2, 4), true)
			if err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	a, b := run(), run()
	if a.Winner != b.Winner || a.FirstFireTick != b.FirstFireTick {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRepeatedPatternKeepsSameWinner(t *testing.T) {
	// §3.6: once a neuron fires for a pattern, STDP strengthens it so the
	// same neuron keeps firing for that pattern.
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	for k := 0; k < 10; k++ {
		res, err := n.Present(pattern(1, 2, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner < 0 {
			continue
		}
		if first < 0 {
			first = res.Winner
			continue
		}
		if k >= 3 && res.Winner != first {
			t.Fatalf("interval %d: winner %d, want stable %d", k, res.Winner, first)
		}
	}
	if first < 0 {
		t.Fatal("no neuron ever fired for the repeated pattern")
	}
}

func TestDistinctPatternsGetDistinctNeurons(t *testing.T) {
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := func(p []float64) int {
		w := -1
		for k := 0; k < 8; k++ {
			res, err := n.Present(p, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Winner >= 0 {
				w = res.Winner
			}
		}
		return w
	}
	a := train(pattern(1, 2, 4))
	b := train(pattern(-20, 30, -40))
	if a < 0 || b < 0 {
		t.Fatalf("patterns did not elicit firing: %d, %d", a, b)
	}
	if a == b {
		t.Errorf("very different patterns mapped to the same neuron %d", a)
	}
	// The original pattern must still map to its neuron.
	if got := train(pattern(1, 2, 4)); got != a {
		t.Errorf("original pattern now maps to %d, want %d", got, a)
	}
}

func TestInhibitionLimitsFiring(t *testing.T) {
	// With strong inhibition few distinct neurons fire per interval; with
	// none, many more do.
	count := func(inh float64) int {
		cfg := testConfig()
		cfg.Inh = inh
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Present(pattern(1, 2, 4), false)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.FiredNeurons())
	}
	strong := count(60)
	none := count(0)
	if strong > none {
		t.Errorf("stronger inhibition fired more neurons: %d vs %d", strong, none)
	}
}

func TestThetaGrowsWithFiring(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Present(pattern(1, 2, 4), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner < 0 {
		t.Skip("no firing with this seed")
	}
	if n.Theta(res.Winner) <= 0 {
		t.Errorf("theta of firing neuron = %v, want > 0", n.Theta(res.Winner))
	}
}

func TestFiredNeuronsSorted(t *testing.T) {
	r := Result{Spikes: []int{0, 3, 1, 0, 5}}
	got := r.FiredNeurons()
	want := []int{4, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("FiredNeurons = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FiredNeurons = %v, want %v", got, want)
		}
	}
}

func TestOneTickAgreesWithFullInterval(t *testing.T) {
	// Table 1: after training, the highest-margin neuron after one tick
	// should usually be the full-interval winner.
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]float64{pattern(1, 2, 4), pattern(5, -3, 8), pattern(-10, 2, 40)}
	for _, p := range patterns {
		for k := 0; k < 6; k++ {
			if _, err := n.Present(p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	match, total := 0, 0
	for _, p := range patterns {
		full, err := n.Present(p, false)
		if err != nil {
			t.Fatal(err)
		}
		if full.Winner < 0 {
			continue
		}
		one, err := n.PresentOneTick(p, false)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if one.Winner == full.Winner {
			match++
		}
	}
	if total == 0 {
		t.Skip("no firings to compare")
	}
	if match*2 < total {
		t.Errorf("1-tick matched full interval on %d/%d trained patterns", match, total)
	}
}

func TestOneTickLearningConvergesWinner(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev, stable int = -1, 0
	for k := 0; k < 12; k++ {
		res, err := n.PresentOneTick(pattern(2, 2, 3), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == prev {
			stable++
		} else {
			stable = 0
		}
		prev = res.Winner
	}
	if stable < 5 {
		t.Errorf("1-tick winner not stable: only %d consecutive repeats", stable)
	}
}

func TestMonitorRecordsTicks(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var m Monitor
	n.SetMonitor(&m)
	if _, err := n.Present(pattern(1, 2, 4), false); err != nil {
		t.Fatal(err)
	}
	if len(m.Ticks) != cfg.Ticks {
		t.Fatalf("monitor recorded %d ticks, want %d", len(m.Ticks), cfg.Ticks)
	}
	if len(m.Ticks[0].Potentials) != cfg.Neurons {
		t.Errorf("monitor potentials length %d, want %d", len(m.Ticks[0].Potentials), cfg.Neurons)
	}
	m.Reset()
	if len(m.Ticks) != 0 {
		t.Error("Monitor.Reset did not clear")
	}
}

func TestNormalizationInvariantProperty(t *testing.T) {
	// Property: after any training interval, every neuron's weight sum is
	// cfg.Norm (up to clamping slack) and all weights are in bounds.
	cfg := testConfig()
	cfg.Ticks = 8 // keep the property test fast
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(d1, d2, d3 int8) bool {
		p := pattern(int(d1)%64, int(d2)%64, int(d3)%64)
		if _, err := n.Present(p, true); err != nil {
			return false
		}
		for j := 0; j < cfg.Neurons; j++ {
			sum := 0.0
			for i := 0; i < cfg.InputSize; i++ {
				w := n.Weight(i, j)
				if w < 0 || w > cfg.WMax {
					return false
				}
				sum += w
			}
			if math.Abs(sum-cfg.Norm) > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.float64() != b.float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := newRNG(0)
	x := r.float64()
	if x < 0 || x >= 1 {
		t.Fatalf("float64() = %v outside [0,1)", x)
	}
}

func TestRNGUniformish(t *testing.T) {
	r := newRNG(9)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.float64()
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestOneTickWinnerPure(t *testing.T) {
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := pattern(1, 2, 4)
	w1, err := n.OneTickWinner(p)
	if err != nil {
		t.Fatal(err)
	}
	// Calling again must not change the answer (no state mutation).
	w2, err := n.OneTickWinner(p)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Errorf("OneTickWinner mutated state: %d then %d", w1, w2)
	}
	if _, err := n.OneTickWinner(p[:5]); err == nil {
		t.Error("accepted wrong input length")
	}
}

func TestThetaDecays(t *testing.T) {
	cfg := testConfig()
	cfg.TCTheta = 100 // aggressive decay for the test
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pattern(1, 2, 4)
	res, err := n.Present(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner < 0 {
		t.Skip("no firing with this seed")
	}
	peak := n.Theta(res.Winner)
	// Present a different pattern so the original winner stays silent and
	// its theta decays.
	for i := 0; i < 10; i++ {
		if _, err := n.Present(pattern(-30, 20, -10), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Theta(res.Winner); got >= peak {
		t.Errorf("theta did not decay: %v -> %v", peak, got)
	}
}

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Ticks = 8
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, err := n.Present(pattern(1, 2, 4), true); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatalf("LoadNetwork: %v", err)
	}
	if m.Config() != cfg {
		t.Errorf("config mismatch")
	}
	for i := 0; i < cfg.InputSize; i++ {
		for j := 0; j < cfg.Neurons; j++ {
			if n.Weight(i, j) != m.Weight(i, j) {
				t.Fatalf("weight[%d][%d] differs", i, j)
			}
		}
	}
	for j := 0; j < cfg.Neurons; j++ {
		if n.Theta(j) != m.Theta(j) {
			t.Fatalf("theta[%d] differs", j)
		}
	}
	// Both must produce the same one-tick winner (deterministic given
	// identical weights/thetas).
	a, _ := n.OneTickWinner(pattern(1, 2, 4))
	b, _ := m.OneTickWinner(pattern(1, 2, 4))
	if a != b {
		t.Errorf("winners differ after reload: %d vs %d", a, b)
	}
}

func TestLoadNetworkRejectsBadMagic(t *testing.T) {
	if _, err := LoadNetwork(bytes.NewReader([]byte("NOPExxxx"))); err == nil {
		t.Error("accepted bad magic")
	}
}

func TestWeightDependentSTDPLearns(t *testing.T) {
	cfg := testConfig()
	cfg.WeightDependent = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	stable := 0
	for k := 0; k < 10; k++ {
		res, err := n.Present(pattern(1, 2, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner < 0 {
			continue
		}
		if res.Winner == first {
			stable++
		}
		first = res.Winner
	}
	if stable < 5 {
		t.Errorf("weight-dependent STDP winner unstable: %d repeats", stable)
	}
	// Soft bounds: weights stay strictly inside (0, WMax) except where
	// clamped by normalisation.
	for i := 0; i < cfg.InputSize; i++ {
		for j := 0; j < cfg.Neurons; j++ {
			w := n.Weight(i, j)
			if w < 0 || w > cfg.WMax {
				t.Fatalf("weight out of bounds: %v", w)
			}
		}
	}
}

func TestTemporalCodingDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Temporal = true
	run := func() Result {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last Result
		for k := 0; k < 5; k++ {
			var err error
			last, err = n.Present(pattern(1, 2, 4), true)
			if err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	a, b := run(), run()
	if a.Winner != b.Winner || a.FirstFireTick != b.FirstFireTick {
		t.Fatalf("temporal coding not deterministic: %+v vs %+v", a, b)
	}
	if a.Winner < 0 {
		t.Fatal("temporal coding never fired")
	}
}

func TestTemporalCodingLearnsPattern(t *testing.T) {
	cfg := testConfig()
	cfg.Temporal = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	stable := 0
	for k := 0; k < 10; k++ {
		res, err := n.Present(pattern(1, 2, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner >= 0 && res.Winner == first {
			stable++
		}
		if res.Winner >= 0 {
			first = res.Winner
		}
	}
	if stable < 4 {
		t.Errorf("temporal-coding winner unstable: %d repeats", stable)
	}
}

func TestTemporalCodingBrighterSpikesEarlier(t *testing.T) {
	// With graded intensities, the bright pixel's spike arrives at tick 1
	// and the dim one near the end of the interval; the network therefore
	// integrates the bright pixel's weight first. We verify the encoding
	// schedule directly through firing: an input with one full-intensity
	// pixel fires no later than the same input dimmed.
	cfg := testConfig()
	cfg.Temporal = true
	bright, dim := New2(t, cfg), New2(t, cfg)
	pBright := make([]float64, cfg.InputSize)
	pDim := make([]float64, cfg.InputSize)
	for i := 0; i < 20; i++ {
		pBright[i*3] = 1.0
		pDim[i*3] = 0.3
	}
	rb, err := bright.Present(pBright, false)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dim.Present(pDim, false)
	if err != nil {
		t.Fatal(err)
	}
	if rb.FirstFireTick == 0 {
		t.Skip("bright input did not fire with this seed")
	}
	if rd.FirstFireTick != 0 && rd.FirstFireTick < rb.FirstFireTick {
		t.Errorf("dim input fired earlier (%d) than bright (%d)", rd.FirstFireTick, rb.FirstFireTick)
	}
}

// New2 is a test helper that fails the test on constructor error.
func New2(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
