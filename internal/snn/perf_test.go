package snn

import (
	"reflect"
	"testing"

	"pathfinder/internal/telemetry"
)

// Performance tests for the event-driven tick engine: micro-benchmarks for
// BENCH_snn.json (`make bench-micro`), the allocation-regression guard, and
// equivalence tests pinning the fast paths to the always-tick reference
// behaviour. Headline before/after numbers live in docs/performance.md.

// BenchmarkPresent measures one full input interval on the Table 4
// configuration across coding scheme × learning mode, through the
// zero-allocation PresentInto path.
func BenchmarkPresent(b *testing.B) {
	for _, coding := range []struct {
		name     string
		temporal bool
	}{{"rate", false}, {"temporal", true}} {
		for _, learn := range []struct {
			name string
			on   bool
		}{{"learn", true}, {"infer", false}} {
			b.Run(coding.name+"/"+learn.name, func(b *testing.B) {
				cfg := testConfig()
				cfg.Temporal = coding.temporal
				n, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				p := pattern(1, 2, 4)
				var res Result
				if err := n.PresentInto(&res, p, learn.on); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := n.PresentInto(&res, p, learn.on); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPresentOneTick(b *testing.B) {
	n, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := pattern(1, 2, 4)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.PresentOneTickInto(&res, p, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPresentTelemetry is BenchmarkPresent with the metric handles
// bound, documenting the enabled-telemetry overhead (the acceptance bar is
// <5% over the disabled path; the flush is one locals-to-atomics transfer
// per presentation, so the delta is expected to be noise-level).
func BenchmarkPresentTelemetry(b *testing.B) {
	EnableTelemetry(telemetry.NewRegistry())
	defer EnableTelemetry(nil)
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern(1, 2, 4)
	var res Result
	if err := n.PresentInto(&res, p, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.PresentInto(&res, p, true); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPresentSteadyStateZeroAlloc is the allocation-regression guard: once
// the scratch buffers have warmed up, PresentInto must not touch the heap.
func TestPresentSteadyStateZeroAlloc(t *testing.T) {
	for _, temporal := range []bool{false, true} {
		cfg := testConfig()
		cfg.Temporal = temporal
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := pattern(1, 2, 4)
		var res Result
		for i := 0; i < 20; i++ {
			if err := n.PresentInto(&res, p, true); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(100, func() {
			if err := n.PresentInto(&res, p, true); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("temporal=%v: steady-state PresentInto allocates %v per run, want 0", temporal, avg)
		}
	}
}

// TestPresentTelemetryZeroAllocAndIdentical checks both halves of the
// observation contract at once: with metric handles bound, PresentInto
// still allocates nothing in steady state, and its results stay
// bit-identical to an unobserved twin network.
func TestPresentTelemetryZeroAllocAndIdentical(t *testing.T) {
	reg := telemetry.NewRegistry()
	EnableTelemetry(reg)
	defer EnableTelemetry(nil)

	cfg := testConfig()
	observed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	for i := 0; i < 20; i++ {
		if err := observed.PresentInto(&res, pattern(1, 2, 4), true); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := observed.PresentInto(&res, pattern(1, 2, 4), true); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("telemetry-on PresentInto allocates %v per run, want 0", avg)
	}
	if reg.Counter("snn.presents").Value() == 0 {
		t.Error("telemetry recorded no presentations")
	}

	// Bit-identical trajectories: a fresh observed network against a fresh
	// unobserved one, same seed, same inputs.
	EnableTelemetry(nil)
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	EnableTelemetry(reg)
	traced, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := pattern(1+i%4, 5, 8+i%3)
		EnableTelemetry(nil)
		a, err := plain.Present(p, true)
		if err != nil {
			t.Fatal(err)
		}
		EnableTelemetry(reg)
		b, err := traced.Present(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("interval %d: telemetry-off %+v != telemetry-on %+v", i, a, b)
		}
	}
}

func TestPresentOneTickSteadyStateZeroAlloc(t *testing.T) {
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := pattern(1, 2, 4)
	var res Result
	if err := n.PresentOneTickInto(&res, p, true); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := n.PresentOneTickInto(&res, p, true); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state PresentOneTickInto allocates %v per run, want 0", avg)
	}
}

// TestResultSpikesRetained is the regression test for the Result.Spikes
// aliasing bug: a Result held across later Present calls must keep its
// spike counts instead of being zeroed by the next interval's state reset.
func TestResultSpikesRetained(t *testing.T) {
	n, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := pattern(1, 2, 4), pattern(3, 5, 7)
	first, err := n.Present(p1, true)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]int(nil), first.Spikes...)
	for i := 0; i < 5; i++ {
		if _, err := n.Present(p2, true); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(first.Spikes, saved) {
		t.Errorf("retained Result.Spikes clobbered by later Present: got %v, want %v", first.Spikes, saved)
	}
}

// TestPresentIntoMatchesPresent pins the wrapper and the reusing path to
// each other, including Spikes reuse across differing inputs.
func TestPresentIntoMatchesPresent(t *testing.T) {
	cfg := testConfig()
	na, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	for i := 0; i < 10; i++ {
		p := pattern(1+i%3, 4, 6+i%2)
		a, err := na.Present(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := nb.PresentInto(&res, p, true); err != nil {
			t.Fatal(err)
		}
		if a.Winner != res.Winner || a.FirstFireTick != res.FirstFireTick || !reflect.DeepEqual(a.Spikes, res.Spikes) {
			t.Fatalf("iteration %d: Present %+v != PresentInto %+v", i, a, res)
		}
	}
}

// TestMonitorDoesNotChangeDynamics runs identical networks with and without
// a monitor attached. A monitor forces the engine through every tick
// (quiescence fast-forwarding off), so this pins the fast-forward path to
// the tick-by-tick reference trajectory — including rate-coded RNG state,
// which must advance identically for the later intervals to agree.
func TestMonitorDoesNotChangeDynamics(t *testing.T) {
	for _, temporal := range []bool{false, true} {
		cfg := testConfig()
		cfg.Temporal = temporal
		plain, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		monitored, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var m Monitor
		monitored.SetMonitor(&m)
		for i := 0; i < 30; i++ {
			p := pattern(1+i%4, 5, 8+i%3)
			a, err := plain.Present(p, true)
			if err != nil {
				t.Fatal(err)
			}
			b, err := monitored.Present(p, true)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("temporal=%v interval %d: fast path %+v != monitored path %+v", temporal, i, a, b)
			}
		}
		for j := 0; j < cfg.Neurons; j++ {
			if plain.Theta(j) != monitored.Theta(j) {
				t.Fatalf("temporal=%v: theta[%d] diverged", temporal, j)
			}
		}
		for i := 0; i < cfg.InputSize; i++ {
			for j := 0; j < cfg.Neurons; j++ {
				if plain.Weight(i, j) != monitored.Weight(i, j) {
					t.Fatalf("temporal=%v: weight[%d,%d] diverged", temporal, i, j)
				}
			}
		}
	}
}

// TestAppendFiredNeurons checks the scratch-reusing variant against the
// allocating one, including appending after existing elements.
func TestAppendFiredNeurons(t *testing.T) {
	r := Result{Spikes: []int{0, 3, 1, 0, 3, 2}}
	want := r.FiredNeurons()
	scratch := make([]int, 0, 8)
	got := r.AppendFiredNeurons(scratch)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendFiredNeurons = %v, want %v", got, want)
	}
	pre := []int{99}
	got = r.AppendFiredNeurons(pre)
	if got[0] != 99 || !reflect.DeepEqual(got[1:], want) {
		t.Errorf("AppendFiredNeurons with prefix = %v, want [99]+%v", got, want)
	}
}
