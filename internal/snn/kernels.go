package snn

// Flat structure-of-arrays kernels for the LIF/STDP inner loops. The tick
// loop in network.go is assembled from these: contiguous float64 vectors
// walked linearly with fixed unrolling, bitset masks for fired/refractory
// neurons, and batched trace settlement. Every kernel preserves the exact
// per-element floating-point operation sequence of the reference per-tick
// loop (internal/refmodel): unrolling and loop-order changes only ever
// reorder operations on *independent* elements, never the operation chain
// applied to a single element. That accumulation-order contract is what
// keeps the golden FNV hashes, the refmodel differential oracle and the
// serialized-state fixtures valid across kernel rewrites — see
// docs/snn-math.md for the contract and docs/performance.md for the
// hot-path map.

// bitset is a fixed-capacity bitmask over neuron indices. Word granularity
// is what the tick loop batches on: clearing a 50-neuron fired mask is one
// store instead of fifty, and a zero word lets a whole 64-neuron span skip
// its refractory bookkeeping.
type bitset []uint64

// newBitset returns a bitset able to hold n bits.
func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) set(j int)      { b[uint(j)>>6] |= 1 << (uint(j) & 63) }
func (b bitset) clear(j int)    { b[uint(j)>>6] &^= 1 << (uint(j) & 63) }
func (b bitset) get(j int) bool { return b[uint(j)>>6]>>(uint(j)&63)&1 != 0 }

// zero clears every bit.
func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// decayToward applies one exponential-decay step towards rest to every
// element: v[j] = rest + (v[j]-rest)*d. The expression shape matches the
// reference loop exactly (same rounding on every target, including
// platforms that fuse multiply-add), and elements are independent, so the
// 4-way unroll is bit-identical.
func decayToward(v []float64, rest, d float64) {
	j := 0
	for ; j+4 <= len(v); j += 4 {
		v[j] = rest + (v[j]-rest)*d
		v[j+1] = rest + (v[j+1]-rest)*d
		v[j+2] = rest + (v[j+2]-rest)*d
		v[j+3] = rest + (v[j+3]-rest)*d
	}
	for ; j < len(v); j++ {
		v[j] = rest + (v[j]-rest)*d
	}
}

// decayScale applies one multiplicative decay step to every element:
// x[j] *= d. Elements are independent; the unroll is bit-identical.
func decayScale(x []float64, d float64) {
	j := 0
	for ; j+4 <= len(x); j += 4 {
		x[j] *= d
		x[j+1] *= d
		x[j+2] *= d
		x[j+3] *= d
	}
	for ; j < len(x); j++ {
		x[j] *= d
	}
}

// integrate adds each spiking pixel's weight row into vE: one
// vE[j] += gain*row[j] per (spike, neuron) pair, in spike order per
// element — the accumulation order the reference loop uses. Rows are
// walked linearly (they are contiguous row-major slabs of the weight
// matrix) and processed in pairs, so each vE element is loaded and stored
// once per two spikes; the two adds per element still happen in spike
// order, so the per-element FP sequence is unchanged.
func integrate(vE []float64, w []float64, nn int, gain float64, spikes []int) {
	k := 0
	for ; k+2 <= len(spikes); k += 2 {
		a := w[spikes[k]*nn : spikes[k]*nn+nn]
		b := w[spikes[k+1]*nn : spikes[k+1]*nn+nn]
		j := 0
		for ; j+2 <= nn; j += 2 {
			v0 := vE[j] + gain*a[j]
			v0 = v0 + gain*b[j]
			v1 := vE[j+1] + gain*a[j+1]
			v1 = v1 + gain*b[j+1]
			vE[j] = v0
			vE[j+1] = v1
		}
		for ; j < nn; j++ {
			v := vE[j] + gain*a[j]
			vE[j] = v + gain*b[j]
		}
	}
	for ; k < len(spikes); k++ {
		row := w[spikes[k]*nn : spikes[k]*nn+nn]
		j := 0
		for ; j+4 <= nn; j += 4 {
			vE[j] += gain * row[j]
			vE[j+1] += gain * row[j+1]
			vE[j+2] += gain * row[j+2]
			vE[j+3] += gain * row[j+3]
		}
		for ; j < nn; j++ {
			vE[j] += gain * row[j]
		}
	}
}

// replayDecay replays k per-tick decay steps v = rest + (v-rest)*d on every
// element not already at its fixed point, gathering the dirty lanes first
// and then advancing four of them per pass. One lane's replay is a serial
// dependence chain (each step needs the previous step's rounding), so the
// scalar loop is latency-bound; four independent chains in flight cover
// that latency. Lane values are bit-identical to replaying each element
// alone — chains never interact.
func replayDecay(v []float64, rest, d float64, k int, laneBuf []int) []int {
	lanes := laneBuf[:0]
	for j := range v {
		if v[j] != rest {
			lanes = append(lanes, j)
		}
	}
	i := 0
	for ; i+4 <= len(lanes); i += 4 {
		j0, j1, j2, j3 := lanes[i], lanes[i+1], lanes[i+2], lanes[i+3]
		v0, v1, v2, v3 := v[j0], v[j1], v[j2], v[j3]
		for s := 0; s < k; s++ {
			v0 = rest + (v0-rest)*d
			v1 = rest + (v1-rest)*d
			v2 = rest + (v2-rest)*d
			v3 = rest + (v3-rest)*d
		}
		v[j0], v[j1], v[j2], v[j3] = v0, v1, v2, v3
	}
	for ; i < len(lanes); i++ {
		j := lanes[i]
		x := v[j]
		for s := 0; s < k; s++ {
			x = rest + (x-rest)*d
		}
		v[j] = x
	}
	return lanes
}

// replayScale is replayDecay for the multiplicative trace decay x *= d,
// with zero as the fixed point.
func replayScale(x []float64, d float64, k int, laneBuf []int) []int {
	lanes := laneBuf[:0]
	for j := range x {
		if x[j] != 0 {
			lanes = append(lanes, j)
		}
	}
	i := 0
	for ; i+4 <= len(lanes); i += 4 {
		j0, j1, j2, j3 := lanes[i], lanes[i+1], lanes[i+2], lanes[i+3]
		v0, v1, v2, v3 := x[j0], x[j1], x[j2], x[j3]
		for s := 0; s < k; s++ {
			v0 *= d
			v1 *= d
			v2 *= d
			v3 *= d
		}
		x[j0], x[j1], x[j2], x[j3] = v0, v1, v2, v3
	}
	for ; i < len(lanes); i++ {
		j := lanes[i]
		v := x[j]
		for s := 0; s < k; s++ {
			v *= d
		}
		x[j] = v
	}
	return lanes
}
