// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function that runs the relevant
// sweep, prints the same rows/series the paper reports as a text table, and
// returns the results in structured form for tests and EXPERIMENTS.md.
//
// The harness defaults to 50 K-load traces against the 8×-scaled hierarchy
// (see sim.ScaledConfig); pass Options{Loads: 1_000_000, Sim:
// pathfinder.DefaultSimConfig()} for paper-scale runs.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"pathfinder/internal/core"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/sim"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Loads is the trace length per benchmark (default 50_000; the paper
	// uses 1_000_000).
	Loads int
	// Seed drives trace generation and every learner.
	Seed int64
	// Traces restricts the benchmark set (default: the full Table 5
	// suite).
	Traces []string
	// Sim is the machine configuration (default: the scaled hierarchy).
	Sim sim.Config
	// SkipOffline omits the offline neural baselines (Delta-LSTM,
	// Voyager), which dominate runtime.
	SkipOffline bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Loads == 0 {
		o.Loads = 50_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Traces) == 0 {
		o.Traces = workload.Names()
	}
	if o.Sim.Width == 0 {
		o.Sim = sim.ScaledConfig()
	}
	return o
}

// Metrics is one (trace, prefetcher) measurement (§4.5).
type Metrics struct {
	// Prefetcher and Trace identify the run.
	Prefetcher, Trace string
	// IPC is instructions per cycle after warmup.
	IPC float64
	// Accuracy is useful/issued prefetches; Coverage is useful prefetches
	// over baseline LLC misses.
	Accuracy, Coverage float64
	// Issued and Useful are the raw prefetch counts; BaselineMisses is
	// the no-prefetch LLC miss count coverage is relative to.
	Issued, Useful, BaselineMisses uint64
}

// benchEnv caches a benchmark's trace and no-prefetch baseline.
type benchEnv struct {
	name           string
	accs           []trace.Access
	cfg            sim.Config
	baselineIPC    float64
	baselineMisses uint64
}

// loadEnv generates the trace and runs the no-prefetch baseline once.
func loadEnv(name string, opts Options) (*benchEnv, error) {
	accs, err := workload.Generate(name, opts.Loads, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := opts.Sim
	cfg.Warmup = len(accs) / 10
	base, err := sim.Run(cfg, accs, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s baseline: %w", name, err)
	}
	return &benchEnv{
		name:           name,
		accs:           accs,
		cfg:            cfg,
		baselineIPC:    base.IPC,
		baselineMisses: base.LLCLoadMisses,
	}, nil
}

// evalOnline scores an online prefetcher against the cached baseline.
func (e *benchEnv) evalOnline(p prefetch.Prefetcher) (Metrics, error) {
	pfs := prefetch.GenerateFile(p, e.accs, prefetch.Budget)
	return e.evalFile(p.Name(), pfs)
}

// evalFile scores a prefetch file against the cached baseline.
func (e *benchEnv) evalFile(name string, pfs []trace.Prefetch) (Metrics, error) {
	res, err := sim.Run(e.cfg, e.accs, pfs)
	if err != nil {
		return Metrics{}, fmt.Errorf("experiments: %s / %s: %w", e.name, name, err)
	}
	return Metrics{
		Prefetcher:     name,
		Trace:          e.name,
		IPC:            res.IPC,
		Accuracy:       res.Accuracy(),
		Coverage:       res.Coverage(e.baselineMisses),
		Issued:         res.PrefIssued,
		Useful:         res.PrefUseful,
		BaselineMisses: e.baselineMisses,
	}, nil
}

// newPathfinder builds a fresh PATHFINDER with the experiment seed.
func newPathfinder(cfg core.Config, seed int64) (*core.Pathfinder, error) {
	cfg.Seed = seed
	return core.New(cfg)
}

// geomean returns the geometric mean of positive values (the conventional
// aggregate for IPC ratios); zero values are skipped.
func geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// mean returns the arithmetic mean of the values.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// newTable returns a tab-aligned writer for experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
