// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function that runs the relevant
// sweep, prints the same rows/series the paper reports as a text table, and
// returns the results in structured form for tests and EXPERIMENTS.md.
//
// Experiments are configured with functional options and submit their
// (trace × prefetcher) grids to the parallel evaluation engine in
// internal/runner, so a full sweep saturates every core while producing
// results bit-identical to a serial run. The harness defaults to 50 K-load
// traces against the 8×-scaled hierarchy (see sim.ScaledConfig); pass
// WithLoads(1_000_000) and WithSim(pathfinder.DefaultSimConfig()) for
// paper-scale runs.
package experiments

import (
	"context"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/dist"
	"pathfinder/internal/runner"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Metrics is one (trace, prefetcher) measurement (§4.5).
type Metrics = runner.Metrics

// Progress is one evaluation-engine progress event (see WithProgress).
type Progress = runner.Progress

// Option configures an experiment run.
type Option func(*options)

// options carries the resolved configuration of one experiment run.
type options struct {
	ctx         context.Context
	loads       int
	seed        int64
	traces      []string
	sim         sim.Config
	skipOffline bool
	parallelism int
	progress    runner.ProgressFunc
	maxAttempts int
	jobTimeout  time.Duration
	journal     *runner.Journal
	distributed int
}

// newOptions applies the options over the defaults: 50 K loads, seed 1,
// the full Table 5 suite, the scaled machine, GOMAXPROCS workers.
func newOptions(opts []Option) options {
	o := options{ctx: context.Background(), loads: 50_000, seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	if len(o.traces) == 0 {
		o.traces = workload.Names()
	}
	if o.sim.Width == 0 {
		o.sim = sim.ScaledConfig()
	}
	return o
}

// WithLoads sets the trace length per benchmark (default 50_000; the
// paper uses 1_000_000).
func WithLoads(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.loads = n
		}
	}
}

// WithSeed sets the seed driving trace generation and every learner.
func WithSeed(seed int64) Option {
	return func(o *options) {
		if seed != 0 {
			o.seed = seed
		}
	}
}

// WithTraces restricts the benchmark set (default: the full Table 5 suite).
func WithTraces(names ...string) Option {
	return func(o *options) { o.traces = names }
}

// WithSim sets the machine configuration (default: the scaled hierarchy).
func WithSim(cfg sim.Config) Option {
	return func(o *options) { o.sim = cfg }
}

// WithSkipOffline omits the offline neural baselines (Delta-LSTM,
// Voyager), which dominate runtime.
func WithSkipOffline(skip bool) Option {
	return func(o *options) { o.skipOffline = skip }
}

// WithParallelism sets the evaluation-engine worker count (default
// GOMAXPROCS). One worker reproduces the historical serial behaviour;
// results are bit-identical either way.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithProgress installs a sink receiving one event per completed
// evaluation cell (jobs done, wall clock, simulated cycles).
func WithProgress(fn func(Progress)) Option {
	return func(o *options) { o.progress = fn }
}

// WithContext threads a cancellation context through trace generation,
// prefetch-file generation and the simulator; a cancelled experiment
// stops mid-grid.
func WithContext(ctx context.Context) Option {
	return func(o *options) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// WithRetries sets the per-cell attempt budget of the evaluation engine
// (default 1, i.e. no retries). Only transient failures and per-attempt
// deadline expiries are retried; see the runner package.
func WithRetries(attempts int) Option {
	return func(o *options) { o.maxAttempts = attempts }
}

// WithJobTimeout bounds each evaluation attempt with a context deadline
// (default: no limit).
func WithJobTimeout(d time.Duration) Option {
	return func(o *options) { o.jobTimeout = d }
}

// WithJournal records every completed cell to an on-disk journal and
// resumes from it: cells already present are served from the journal
// instead of being re-simulated. See runner.OpenJournal.
func WithJournal(j *runner.Journal) Option {
	return func(o *options) { o.journal = j }
}

// WithDistributed routes the sweep through the distributed engine
// (internal/dist): a coordinator plus n loopback workers sharing one
// evaluation engine, exercising leases, the ledger, and the wire
// protocol end to end. Results are bit-identical to the in-process
// engine; n <= 0 keeps the default in-process path.
func WithDistributed(n int) Option {
	return func(o *options) { o.distributed = n }
}

// runnerConfig resolves this run's evaluation-engine configuration.
func (o options) runnerConfig() runner.Config {
	return runner.Config{
		Loads:       o.loads,
		Seed:        o.seed,
		Sim:         o.sim,
		Parallelism: o.parallelism,
		Progress:    o.progress,
		MaxAttempts: o.maxAttempts,
		JobTimeout:  o.jobTimeout,
		Journal:     o.journal,
	}
}

// newRunner builds the evaluation engine for this run's configuration.
func (o options) newRunner() *runner.Runner {
	return runner.New(o.runnerConfig())
}

// run submits one grid: to the in-process parallel engine by default, or
// through the distributed sweep engine under WithDistributed. Either
// way a cell failure fails the sweep, and results come back in grid
// order.
func (o options) run(jobs []runner.Job) ([]runner.Result, error) {
	if o.distributed <= 0 {
		return o.newRunner().Run(o.ctx, jobs)
	}
	results, report, err := dist.RunLocal(o.ctx, o.runnerConfig(), jobs, o.distributed)
	if err != nil {
		return nil, err
	}
	if rerr := report.Err(); rerr != nil {
		return nil, rerr
	}
	return results, nil
}

// newPathfinder builds a fresh PATHFINDER with the experiment seed.
func newPathfinder(cfg core.Config, seed int64) (*core.Pathfinder, error) {
	cfg.Seed = seed
	return core.New(cfg)
}

// geomean returns the geometric mean of positive values (the conventional
// aggregate for IPC ratios); zero values are skipped.
func geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// mean returns the arithmetic mean of the values.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// newTable returns a tab-aligned writer for experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
