package experiments

import (
	"fmt"
	"io"
	"math"

	"pathfinder/internal/core"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
)

// Summary is a mean ± sample-standard-deviation pair over repeated runs.
type Summary struct {
	Mean, Stddev float64
	N            int
}

func (s Summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Stddev)
}

// summarize computes mean and sample standard deviation.
func summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		v := 0.0
		for _, x := range xs {
			d := x - s.Mean
			v += d * d
		}
		s.Stddev = math.Sqrt(v / float64(s.N-1))
	}
	return s
}

// SeedStudyRow is one (trace, prefetcher) cell aggregated over seeds.
type SeedStudyRow struct {
	Trace              string
	IPC, Accuracy, Cov Summary
}

// SeedStudy quantifies run-to-run variance: PATHFINDER's SNN starts from
// seeded random weights and the traces are seeded too, so any conclusion
// drawn from a single seed needs an error bar. It evaluates PATHFINDER on
// each trace across `seeds` seeds — the whole (trace × seed) grid as one
// parallel batch, using the per-job seed override — and reports
// mean ± stddev for IPC, accuracy and coverage.
func SeedStudy(w io.Writer, seeds int, opts ...Option) ([]SeedStudyRow, error) {
	o := newOptions(opts)
	if seeds < 2 {
		seeds = 3
	}
	jobs := make([]runner.Job, 0, len(o.traces)*seeds)
	for _, tr := range o.traces {
		for s := 0; s < seeds; s++ {
			seed := o.seed + int64(s)
			jobs = append(jobs, runner.Job{
				Trace: tr,
				Label: "Pathfinder",
				Seed:  seed,
				New: func() (prefetch.Prefetcher, error) {
					return newPathfinder(core.DefaultConfig(), seed)
				},
			})
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: seed study: %w", err)
	}
	rows := make([]SeedStudyRow, 0, len(o.traces))
	for i, tr := range o.traces {
		var ipcs, accs, covs []float64
		for s := 0; s < seeds; s++ {
			m := results[i*seeds+s].Metrics
			ipcs = append(ipcs, m.IPC)
			accs = append(accs, m.Accuracy)
			covs = append(covs, m.Coverage)
		}
		rows = append(rows, SeedStudyRow{
			Trace:    tr,
			IPC:      summarize(ipcs),
			Accuracy: summarize(accs),
			Cov:      summarize(covs),
		})
	}
	fmt.Fprintf(w, "\nSeed study: PATHFINDER across %d seeds, %d loads/trace\n", seeds, o.loads)
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tIPC\taccuracy\tcoverage")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Trace, r.IPC, r.Accuracy, r.Cov)
	}
	tw.Flush()
	return rows, nil
}
