package experiments

import (
	"fmt"
	"io"

	"pathfinder/internal/core"
	"pathfinder/internal/lstm"
	"pathfinder/internal/prefetch"
)

// Fig4Result holds the Figure 4 comparison: per-trace, per-prefetcher IPC,
// accuracy and coverage, plus the Table 6 issued-prefetch counts.
type Fig4Result struct {
	// Prefetchers is the column order.
	Prefetchers []string
	// Rows maps trace -> prefetcher -> metrics.
	Rows map[string]map[string]Metrics
	// BaselineIPC maps trace -> no-prefetch IPC.
	BaselineIPC map[string]float64
}

// Fig4Prefetchers is the Figure 4 lineup, in the paper's order.
var Fig4Prefetchers = []string{
	"NoPF", "BO", "SISB", "Voyager", "DeltaLSTM", "SPP", "Pythia",
	"Pathfinder", "PF+NL", "PF+NL+SISB",
}

// Fig4 reproduces Figure 4 (a: IPC, b: accuracy, c: coverage) and Table 6
// (issued prefetches of SPP, Pythia and PATHFINDER): every prefetcher of
// §4.3 on every benchmark of Table 5.
func Fig4(w io.Writer, opts Options) (Fig4Result, error) {
	opts = opts.withDefaults()
	res := Fig4Result{
		Rows:        make(map[string]map[string]Metrics),
		BaselineIPC: make(map[string]float64),
	}
	for _, name := range Fig4Prefetchers {
		if opts.SkipOffline && (name == "Voyager" || name == "DeltaLSTM") {
			continue
		}
		res.Prefetchers = append(res.Prefetchers, name)
	}

	for _, tr := range opts.Traces {
		env, err := loadEnv(tr, opts)
		if err != nil {
			return Fig4Result{}, err
		}
		res.BaselineIPC[tr] = env.baselineIPC
		row := make(map[string]Metrics, len(res.Prefetchers))
		res.Rows[tr] = row
		row["NoPF"] = Metrics{Prefetcher: "NoPF", Trace: tr, IPC: env.baselineIPC, BaselineMisses: env.baselineMisses}

		for _, name := range res.Prefetchers {
			if name == "NoPF" {
				continue
			}
			m, err := runFig4Prefetcher(name, env, opts)
			if err != nil {
				return Fig4Result{}, err
			}
			row[name] = m
		}
	}

	res.print(w, opts)
	return res, nil
}

// runFig4Prefetcher builds and evaluates one lineup member on one trace.
func runFig4Prefetcher(name string, env *benchEnv, opts Options) (Metrics, error) {
	mk := func() (*core.Pathfinder, error) {
		return newPathfinder(core.DefaultConfig(), opts.Seed)
	}
	ensemble := func(label string, members ...prefetch.Prefetcher) *prefetch.Ensemble {
		e := prefetch.NewEnsemble(members...)
		e.Label = label
		return e
	}
	switch name {
	case "BO":
		return env.evalOnline(prefetch.NewBestOffset())
	case "SISB":
		return env.evalOnline(prefetch.NewSISB())
	case "SPP":
		return env.evalOnline(prefetch.NewSPP())
	case "Pythia":
		return env.evalOnline(prefetch.NewPythia(opts.Seed))
	case "Pathfinder":
		pf, err := mk()
		if err != nil {
			return Metrics{}, err
		}
		return env.evalOnline(pf)
	case "PF+NL":
		pf, err := mk()
		if err != nil {
			return Metrics{}, err
		}
		return env.evalOnline(ensemble("PF+NL", pf, &prefetch.NextLine{}))
	case "PF+NL+SISB":
		pf, err := mk()
		if err != nil {
			return Metrics{}, err
		}
		// Fixed priority per §5: PATHFINDER first, temporal replay next,
		// next-line as last-resort filler.
		return env.evalOnline(ensemble("PF+NL+SISB", pf, prefetch.NewSISB(), &prefetch.NextLine{}))
	case "DeltaLSTM":
		cfg := lstm.DefaultDeltaLSTMConfig()
		cfg.Seed = opts.Seed
		pfs, err := lstm.GenerateDeltaLSTM(cfg, env.accs, prefetch.Budget)
		if err != nil {
			return Metrics{}, err
		}
		return env.evalFile("DeltaLSTM", pfs)
	case "Voyager":
		cfg := lstm.DefaultVoyagerConfig()
		cfg.Seed = opts.Seed
		pfs, err := lstm.GenerateVoyager(cfg, env.accs, prefetch.Budget)
		if err != nil {
			return Metrics{}, err
		}
		return env.evalFile("Voyager", pfs)
	}
	return Metrics{}, fmt.Errorf("experiments: unknown prefetcher %q", name)
}

func (r Fig4Result) print(w io.Writer, opts Options) {
	for _, metric := range []string{"IPC (Figure 4a)", "Accuracy (Figure 4b)", "Coverage (Figure 4c)"} {
		fmt.Fprintf(w, "\n%s — %d loads/trace\n", metric, opts.Loads)
		tw := newTable(w)
		fmt.Fprint(tw, "trace")
		for _, p := range r.Prefetchers {
			fmt.Fprintf(tw, "\t%s", p)
		}
		fmt.Fprintln(tw)
		perPF := make(map[string][]float64)
		for _, tr := range opts.Traces {
			fmt.Fprint(tw, tr)
			for _, p := range r.Prefetchers {
				m := r.Rows[tr][p]
				var v float64
				switch metric[0] {
				case 'I':
					v = m.IPC
				case 'A':
					v = m.Accuracy
				default:
					v = m.Coverage
				}
				perPF[p] = append(perPF[p], v)
				fmt.Fprintf(tw, "\t%.3f", v)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "mean")
		for _, p := range r.Prefetchers {
			agg := mean(perPF[p])
			if metric[0] == 'I' {
				agg = geomean(perPF[p])
			}
			fmt.Fprintf(tw, "\t%.3f", agg)
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}

	fmt.Fprintln(w, "\nIssued prefetches (Table 6)")
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tSPP\tPythia\tPathfinder")
	var sums [3]uint64
	for _, tr := range opts.Traces {
		row := r.Rows[tr]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", tr, row["SPP"].Issued, row["Pythia"].Issued, row["Pathfinder"].Issued)
		sums[0] += row["SPP"].Issued
		sums[1] += row["Pythia"].Issued
		sums[2] += row["Pathfinder"].Issued
	}
	n := uint64(len(opts.Traces))
	if n > 0 {
		fmt.Fprintf(tw, "average\t%d\t%d\t%d\n", sums[0]/n, sums[1]/n, sums[2]/n)
	}
	tw.Flush()
}

// MeanIPC returns the mean IPC of one prefetcher across the traces in the
// result (geometric mean).
func (r Fig4Result) MeanIPC(prefetcher string) float64 {
	var vals []float64
	for _, row := range r.Rows {
		if m, ok := row[prefetcher]; ok {
			vals = append(vals, m.IPC)
		}
	}
	return geomean(vals)
}
