package experiments

import (
	"context"
	"fmt"
	"io"

	"pathfinder/internal/core"
	"pathfinder/internal/lstm"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/trace"
)

// Fig4Result holds the Figure 4 comparison: per-trace, per-prefetcher IPC,
// accuracy and coverage, plus the Table 6 issued-prefetch counts.
type Fig4Result struct {
	// Prefetchers is the column order.
	Prefetchers []string
	// Rows maps trace -> prefetcher -> metrics.
	Rows map[string]map[string]Metrics
	// BaselineIPC maps trace -> no-prefetch IPC.
	BaselineIPC map[string]float64
}

// Fig4Prefetchers is the Figure 4 lineup, in the paper's order.
var Fig4Prefetchers = []string{
	"NoPF", "BO", "SISB", "Voyager", "DeltaLSTM", "SPP", "Pythia",
	"Pathfinder", "PF+NL", "PF+NL+SISB",
}

// Fig4 reproduces Figure 4 (a: IPC, b: accuracy, c: coverage) and Table 6
// (issued prefetches of SPP, Pythia and PATHFINDER): every prefetcher of
// §4.3 on every benchmark of Table 5, evaluated as one parallel grid.
func Fig4(w io.Writer, opts ...Option) (Fig4Result, error) {
	o := newOptions(opts)
	res := Fig4Result{
		Rows:        make(map[string]map[string]Metrics),
		BaselineIPC: make(map[string]float64),
	}
	for _, name := range Fig4Prefetchers {
		if o.skipOffline && (name == "Voyager" || name == "DeltaLSTM") {
			continue
		}
		res.Prefetchers = append(res.Prefetchers, name)
	}

	var jobs []runner.Job
	for _, tr := range o.traces {
		for _, name := range res.Prefetchers {
			if name == "NoPF" {
				continue
			}
			job, err := fig4Job(name, tr, o)
			if err != nil {
				return Fig4Result{}, err
			}
			jobs = append(jobs, job)
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("experiments: Figure 4: %w", err)
	}
	for _, r := range results {
		row := res.Rows[r.Trace]
		if row == nil {
			row = make(map[string]Metrics, len(res.Prefetchers))
			res.Rows[r.Trace] = row
			res.BaselineIPC[r.Trace] = r.BaselineIPC
			row["NoPF"] = Metrics{
				Prefetcher:     "NoPF",
				Trace:          r.Trace,
				IPC:            r.BaselineIPC,
				BaselineMisses: r.BaselineMisses,
			}
		}
		row[r.Prefetcher] = r.Metrics
	}

	res.print(w, o)
	return res, nil
}

// fig4Job builds the evaluation job for one lineup member on one trace.
func fig4Job(name, tr string, o options) (runner.Job, error) {
	job := runner.Job{Trace: tr, Label: name}
	mk := func() (*core.Pathfinder, error) {
		return newPathfinder(core.DefaultConfig(), o.seed)
	}
	ensemble := func(label string, members ...prefetch.Prefetcher) *prefetch.Ensemble {
		e := prefetch.NewEnsemble(members...)
		e.Label = label
		return e
	}
	switch name {
	case "BO":
		job.New = func() (prefetch.Prefetcher, error) { return prefetch.NewBestOffset(), nil }
	case "SISB":
		job.New = func() (prefetch.Prefetcher, error) { return prefetch.NewSISB(), nil }
	case "SPP":
		job.New = func() (prefetch.Prefetcher, error) { return prefetch.NewSPP(), nil }
	case "Pythia":
		job.New = func() (prefetch.Prefetcher, error) { return prefetch.NewPythia(o.seed), nil }
	case "Pathfinder":
		job.New = func() (prefetch.Prefetcher, error) { return mk() }
	case "PF+NL":
		job.New = func() (prefetch.Prefetcher, error) {
			pf, err := mk()
			if err != nil {
				return nil, err
			}
			return ensemble("PF+NL", pf, &prefetch.NextLine{}), nil
		}
	case "PF+NL+SISB":
		job.New = func() (prefetch.Prefetcher, error) {
			pf, err := mk()
			if err != nil {
				return nil, err
			}
			// Fixed priority per §5: PATHFINDER first, temporal replay next,
			// next-line as last-resort filler.
			return ensemble("PF+NL+SISB", pf, prefetch.NewSISB(), &prefetch.NextLine{}), nil
		}
	case "DeltaLSTM":
		job.GenFile = func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error) {
			cfg := lstm.DefaultDeltaLSTMConfig()
			cfg.Seed = o.seed
			return lstm.GenerateDeltaLSTM(cfg, accs, prefetch.Budget)
		}
	case "Voyager":
		job.GenFile = func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error) {
			cfg := lstm.DefaultVoyagerConfig()
			cfg.Seed = o.seed
			return lstm.GenerateVoyager(cfg, accs, prefetch.Budget)
		}
	default:
		return runner.Job{}, fmt.Errorf("experiments: unknown prefetcher %q", name)
	}
	return job, nil
}

func (r Fig4Result) print(w io.Writer, o options) {
	for _, metric := range []string{"IPC (Figure 4a)", "Accuracy (Figure 4b)", "Coverage (Figure 4c)"} {
		fmt.Fprintf(w, "\n%s — %d loads/trace\n", metric, o.loads)
		tw := newTable(w)
		fmt.Fprint(tw, "trace")
		for _, p := range r.Prefetchers {
			fmt.Fprintf(tw, "\t%s", p)
		}
		fmt.Fprintln(tw)
		perPF := make(map[string][]float64)
		for _, tr := range o.traces {
			fmt.Fprint(tw, tr)
			for _, p := range r.Prefetchers {
				m := r.Rows[tr][p]
				var v float64
				switch metric[0] {
				case 'I':
					v = m.IPC
				case 'A':
					v = m.Accuracy
				default:
					v = m.Coverage
				}
				perPF[p] = append(perPF[p], v)
				fmt.Fprintf(tw, "\t%.3f", v)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "mean")
		for _, p := range r.Prefetchers {
			agg := mean(perPF[p])
			if metric[0] == 'I' {
				agg = geomean(perPF[p])
			}
			fmt.Fprintf(tw, "\t%.3f", agg)
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}

	fmt.Fprintln(w, "\nIssued prefetches (Table 6)")
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tSPP\tPythia\tPathfinder")
	var sums [3]uint64
	for _, tr := range o.traces {
		row := r.Rows[tr]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", tr, row["SPP"].Issued, row["Pythia"].Issued, row["Pathfinder"].Issued)
		sums[0] += row["SPP"].Issued
		sums[1] += row["Pythia"].Issued
		sums[2] += row["Pathfinder"].Issued
	}
	n := uint64(len(o.traces))
	if n > 0 {
		fmt.Fprintf(tw, "average\t%d\t%d\t%d\n", sums[0]/n, sums[1]/n, sums[2]/n)
	}
	tw.Flush()
}

// MeanIPC returns the mean IPC of one prefetcher across the traces in the
// result (geometric mean).
func (r Fig4Result) MeanIPC(prefetcher string) float64 {
	var vals []float64
	for _, row := range r.Rows {
		if m, ok := row[prefetcher]; ok {
			vals = append(vals, m.IPC)
		}
	}
	return geomean(vals)
}
