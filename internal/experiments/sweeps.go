package experiments

import (
	"fmt"
	"io"

	"pathfinder/internal/core"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
)

// NamedConfig pairs a PATHFINDER variant with its display label.
type NamedConfig struct {
	Label  string
	Config core.Config
}

// SweepResult holds a PATHFINDER configuration sweep: per-trace, per-config
// metrics.
type SweepResult struct {
	Configs []string
	Rows    map[string]map[string]Metrics // trace -> label -> metrics
}

// collect indexes runner results into the trace -> label map.
func (r *SweepResult) collect(results []runner.Result) {
	for _, res := range results {
		row := r.Rows[res.Trace]
		if row == nil {
			row = make(map[string]Metrics)
			r.Rows[res.Trace] = row
		}
		row[res.Prefetcher] = res.Metrics
	}
}

// runSweep evaluates each config on each trace through the parallel
// evaluation engine and prints IPC/accuracy/coverage tables.
func runSweep(w io.Writer, title string, o options, configs []NamedConfig) (SweepResult, error) {
	res := SweepResult{Rows: make(map[string]map[string]Metrics)}
	jobs := make([]runner.Job, 0, len(o.traces)*len(configs))
	for _, c := range configs {
		res.Configs = append(res.Configs, c.Label)
	}
	for _, tr := range o.traces {
		for _, c := range configs {
			cfg := c.Config
			jobs = append(jobs, runner.Job{
				Trace: tr,
				Label: c.Label,
				New: func() (prefetch.Prefetcher, error) {
					return newPathfinder(cfg, o.seed)
				},
			})
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return SweepResult{}, fmt.Errorf("experiments: %s: %w", title, err)
	}
	res.collect(results)
	res.print(w, title, o)
	return res, nil
}

func (r SweepResult) print(w io.Writer, title string, o options) {
	for _, metric := range []string{"IPC", "Accuracy", "Coverage"} {
		fmt.Fprintf(w, "\n%s — %s, %d loads/trace\n", title, metric, o.loads)
		tw := newTable(w)
		fmt.Fprint(tw, "trace")
		for _, c := range r.Configs {
			fmt.Fprintf(tw, "\t%s", c)
		}
		fmt.Fprintln(tw)
		perCfg := make(map[string][]float64)
		for _, tr := range o.traces {
			fmt.Fprint(tw, tr)
			for _, c := range r.Configs {
				m := r.Rows[tr][c]
				var v float64
				switch metric {
				case "IPC":
					v = m.IPC
				case "Accuracy":
					v = m.Accuracy
				default:
					v = m.Coverage
				}
				perCfg[c] = append(perCfg[c], v)
				fmt.Fprintf(tw, "\t%.3f", v)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "mean")
		for _, c := range r.Configs {
			agg := mean(perCfg[c])
			if metric == "IPC" {
				agg = geomean(perCfg[c])
			}
			fmt.Fprintf(tw, "\t%.3f", agg)
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}
}

// MeanIPC returns the geometric-mean IPC of one config across traces.
func (r SweepResult) MeanIPC(label string) float64 {
	var vals []float64
	for _, row := range r.Rows {
		if m, ok := row[label]; ok {
			vals = append(vals, m.IPC)
		}
	}
	return geomean(vals)
}

// Fig5 reproduces Figure 5: PATHFINDER at delta ranges 31, 63 and 127 (same
// 50 neurons, same 32-tick interval). Smaller ranges trade coverage for
// accuracy because fewer deltas are encodable (Table 7 quantifies how many).
func Fig5(w io.Writer, opts ...Option) (SweepResult, error) {
	var configs []NamedConfig
	for _, d := range []int{31, 63, 127} {
		cfg := core.DefaultConfig()
		cfg.DeltaRange = d
		configs = append(configs, NamedConfig{Label: fmt.Sprintf("range %d", d), Config: cfg})
	}
	return runSweep(w, "Figure 5 (delta range)", newOptions(opts), configs)
}

// Fig6 reproduces Figure 6: PATHFINDER IPC as the neuron count varies from
// 10 to 100, for both the 2-label and the 1-label configuration. The
// 2-label variant tolerates fewer neurons (§5, Table 8 discussion).
func Fig6(w io.Writer, opts ...Option) (SweepResult, error) {
	var configs []NamedConfig
	for _, labels := range []int{2, 1} {
		for _, n := range []int{10, 25, 50, 75, 100} {
			cfg := core.DefaultConfig()
			cfg.Neurons = n
			cfg.LabelsPerNeuron = labels
			configs = append(configs, NamedConfig{
				Label:  fmt.Sprintf("%dn/%dl", n, labels),
				Config: cfg,
			})
		}
	}
	return runSweep(w, "Figure 6 (neuron count x labels)", newOptions(opts), configs)
}

// Fig7 reproduces Figure 7: the 1-tick approximation (§3.4) versus the full
// 32-tick interval. The IPC difference should be small (Table 1 shows the
// winners usually match).
func Fig7(w io.Writer, opts ...Option) (SweepResult, error) {
	full := core.DefaultConfig()
	one := core.DefaultConfig()
	one.OneTick = true
	res, err := runSweep(w, "Figure 7 (1-tick vs 32-tick)", newOptions(opts), []NamedConfig{
		{Label: "32-tick", Config: full},
		{Label: "1-tick", Config: one},
	})
	if err != nil {
		return res, err
	}
	fmt.Fprintln(w, "\nIPC improvement of 1-tick over 32-tick (Figure 7)")
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tdelta")
	for _, tr := range sortedKeys(res.Rows) {
		row := res.Rows[tr]
		d := 0.0
		if row["32-tick"].IPC > 0 {
			d = (row["1-tick"].IPC - row["32-tick"].IPC) / row["32-tick"].IPC * 100
		}
		fmt.Fprintf(tw, "%s\t%+.2f%%\n", tr, d)
	}
	tw.Flush()
	return res, nil
}

// Fig8 reproduces Figure 8: STDP enabled only for the first k queries of
// every 5000, for k in {10, 20, 50, 100, 1000, 2000, 3000, 4000}, against
// always-on STDP. The paper finds k≈50 already matches always-on.
func Fig8(w io.Writer, opts ...Option) (SweepResult, error) {
	configs := []NamedConfig{{Label: "always", Config: core.DefaultConfig()}}
	for _, k := range []int{10, 20, 50, 100, 1000, 2000, 3000, 4000} {
		cfg := core.DefaultConfig()
		cfg.STDPOn = k
		cfg.STDPPeriod = 5000
		configs = append(configs, NamedConfig{Label: fmt.Sprintf("first %d", k), Config: cfg})
	}
	return runSweep(w, "Figure 8 (STDP duty cycle, per 5K accesses)", newOptions(opts), configs)
}

// Fig9 reproduces Figure 9's variant ladder: basic 1-label, enlarged-pixel
// 1-label, enlarged 2-label, enlarged reduced-interval (1-tick) 2-label,
// and reordered enlarged reduced-interval 2-label.
func Fig9(w io.Writer, opts ...Option) (SweepResult, error) {
	basic1 := core.DefaultConfig()
	basic1.LabelsPerNeuron = 1
	basic1.Enlarged = false

	enl1 := basic1
	enl1.Enlarged = true

	enl2 := enl1
	enl2.LabelsPerNeuron = 2

	enl2tick := enl2
	enl2tick.OneTick = true

	reorder := enl2tick
	reorder.Reorder = true
	reorder.MiddleShift = 11

	return runSweep(w, "Figure 9 (variant ladder)", newOptions(opts), []NamedConfig{
		{Label: "basic-1l", Config: basic1},
		{Label: "enlarged-1l", Config: enl1},
		{Label: "enlarged-2l", Config: enl2},
		{Label: "enlarged-2l-1tick", Config: enl2tick},
		{Label: "reorder-2l-1tick", Config: reorder},
	})
}
