package experiments

import (
	"fmt"
	"io"

	"pathfinder/internal/core"
	"pathfinder/internal/hwcost"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/snn"
	"pathfinder/internal/workload"
)

// Table1Row is one benchmark's 1-tick/32-tick winner agreement.
type Table1Row struct {
	Trace     string
	MatchRate float64 // fraction of queries where the winners agreed
	Queries   uint64
}

// Table1 reproduces Table 1: on every full 32-tick SNN query, also compute
// the neuron with the highest potential after one (expected) tick and
// report how often it matches the interval's firing neuron. Traces run in
// parallel; each gets its own deterministically seeded PATHFINDER.
func Table1(w io.Writer, opts ...Option) ([]Table1Row, error) {
	o := newOptions(opts)
	rows := make([]Table1Row, len(o.traces))
	err := runner.ForEach(o.ctx, o.parallelism, len(o.traces), func(i int) error {
		tr := o.traces[i]
		accs, err := workload.GenerateCtx(o.ctx, tr, o.loads, o.seed)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.CompareOneTick = true
		pf, err := newPathfinder(cfg, o.seed)
		if err != nil {
			return err
		}
		for _, a := range accs {
			pf.Advise(a, prefetch.Budget)
		}
		st := pf.Stats()
		rate := 0.0
		if st.OneTickQueries > 0 {
			rate = float64(st.OneTickMatches) / float64(st.OneTickQueries)
		}
		rows[i] = Table1Row{Trace: tr, MatchRate: rate, Queries: st.OneTickQueries}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nTable 1: %% of queries where the highest-voltage neuron after 1 tick matched the 32-tick firing neuron (%d loads/trace)\n", o.loads)
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tmatched neuron\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f%%\t%d\n", r.Trace, 100*r.MatchRate, r.Queries)
	}
	tw.Flush()
	return rows, nil
}

// Table2Row is one step of the §3.6 walkthrough.
type Table2Row struct {
	Pattern     []int
	Winner      int
	FiringTick  int
	NextBestPot float64
}

// Table2 reproduces Table 2 and the Figure 3 demonstration: feed the delta
// pattern {1,2,4} repeatedly to a fresh SNN (100-tick intervals, as in
// §3.6), then three noisy variants, then the original again, recording the
// firing neuron, its first firing tick, and the potential of the next-best
// neuron.
func Table2(w io.Writer, seed int64) ([]Table2Row, error) {
	enc, err := core.NewEncoder(127, 3)
	if err != nil {
		return nil, err
	}
	cfg := snn.DefaultConfig(enc.InputSize())
	cfg.Ticks = 100
	cfg.Seed = seed
	net, err := snn.New(cfg)
	if err != nil {
		return nil, err
	}

	patterns := [][]int{
		{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4},
		{1, 3, 4}, {1, 2, 5}, {1, 4, 2}, {1, 3, 6},
		{1, 2, 4},
	}
	pixels := make([]float64, enc.InputSize())
	var rows []Table2Row
	for _, p := range patterns {
		if err := enc.Encode(p, pixels); err != nil {
			return nil, err
		}
		res, err := net.Present(pixels, true)
		if err != nil {
			return nil, err
		}
		// Potential of the best non-winning neuron at interval end.
		pots := net.Potentials()
		nextBest := 0.0
		first := true
		for j, v := range pots {
			if j == res.Winner {
				continue
			}
			if first || v > nextBest {
				nextBest = v
				first = false
			}
		}
		rows = append(rows, Table2Row{
			Pattern:     p,
			Winner:      res.Winner,
			FiringTick:  res.FirstFireTick,
			NextBestPot: nextBest,
		})
	}
	fmt.Fprintln(w, "\nTable 2: SNN firing/learning behaviour (100-tick intervals)")
	tw := newTable(w)
	fmt.Fprintln(tw, "input pattern\tfiring neuron\tfiring tick\tnext-best potential")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\n", r.Pattern, r.Winner, r.FiringTick, r.NextBestPot)
	}
	tw.Flush()
	return rows, nil
}

// Table7Row is one benchmark's delta-range occupancy.
type Table7Row struct {
	Trace    string
	Deltas   int
	Within31 int
	Within15 int
}

// Table7 reproduces Table 7: how many same-page deltas fall within (−31,31)
// and (−15,15) per trace. Traces run in parallel.
func Table7(w io.Writer, opts ...Option) ([]Table7Row, error) {
	o := newOptions(opts)
	rows := make([]Table7Row, len(o.traces))
	err := runner.ForEach(o.ctx, o.parallelism, len(o.traces), func(i int) error {
		tr := o.traces[i]
		accs, err := workload.GenerateCtx(o.ctx, tr, o.loads, o.seed)
		if err != nil {
			return err
		}
		st := workload.ComputeDeltaStats(accs, 31, 15)
		rows[i] = Table7Row{
			Trace:    tr,
			Deltas:   st.Deltas,
			Within31: st.InRange[31],
			Within15: st.InRange[15],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nTable 7: deltas within range, out of %d loads/trace\n", o.loads)
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\t#deltas\tin (-31,31)\tin (-15,15)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Trace, r.Deltas, r.Within31, r.Within15)
	}
	tw.Flush()
	return rows, nil
}

// Table8Row is one benchmark's per-1K-access delta statistics.
type Table8Row struct {
	Trace       string
	AvgDeltas   float64
	AvgDistinct float64
	AvgTop5     float64
}

// Table8 reproduces Table 8: per 1K accesses, the mean number of deltas,
// distinct deltas, and the summed occurrences of the top-5 distinct deltas.
// Traces run in parallel.
func Table8(w io.Writer, opts ...Option) ([]Table8Row, error) {
	o := newOptions(opts)
	rows := make([]Table8Row, len(o.traces))
	err := runner.ForEach(o.ctx, o.parallelism, len(o.traces), func(i int) error {
		tr := o.traces[i]
		accs, err := workload.GenerateCtx(o.ctx, tr, o.loads, o.seed)
		if err != nil {
			return err
		}
		st := workload.ComputeDeltaStats(accs)
		rows[i] = Table8Row{
			Trace:       tr,
			AvgDeltas:   st.PerWindow.AvgDeltas,
			AvgDistinct: st.PerWindow.AvgDistinct,
			AvgTop5:     st.PerWindow.AvgTop5,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "\nTable 8: per-1K-access delta statistics")
	tw := newTable(w)
	fmt.Fprintln(tw, "trace\tavg #deltas\tavg #distinct\tsum of top-5 occurrences")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\n", r.Trace, r.AvgDeltas, r.AvgDistinct, r.AvgTop5)
	}
	tw.Flush()
	return rows, nil
}

// Table9 reproduces Table 9 (SNN area/power across PE count and delta
// range) plus the §3.5 supporting-table and total-footprint estimates.
func Table9(w io.Writer) []hwcost.Table9Row {
	rows := hwcost.Table9()
	fmt.Fprintln(w, "\nTable 9: area and power of PATHFINDER implementations (SNN only, 12 nm)")
	tw := newTable(w)
	fmt.Fprintln(tw, "configuration\tarea (mm^2)\tpower (W)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d pe, range %d\t%.3f\t%.3f\n", r.PEs, r.DeltaRange, r.Cost.AreaMM2, r.Cost.PowerW)
	}
	tw.Flush()

	tt, err := hwcost.TrainingTable(1024, 120)
	if err != nil {
		panic(err) // unreachable: fixed valid inputs
	}
	it, err := hwcost.InferenceTable(50, 24)
	if err != nil {
		panic(err)
	}
	total, err := hwcost.Total(hwcost.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "\nSupporting tables (§3.5): training table %.4f mm^2 / %.1f mW, inference table %.5f mm^2 / %.3f mW\n",
		tt.AreaMM2, tt.PowerW*1000, it.AreaMM2, it.PowerW*1000)
	fmt.Fprintf(w, "Total (abstract headline): %.2f mm^2, %.2f W — %.2f%% area and %.2f%% power of an AMD Ryzen 7 2700X\n",
		total.AreaMM2, total.PowerW, 100*total.AreaMM2/213, 100*total.PowerW/105)
	return rows
}

// PrintConfig prints the configuration tables of the methodology section:
// the machine (Table 3), the SNN hyper-parameters (Table 4), and the
// workload suite (Table 5).
func PrintConfig(w io.Writer, opts ...Option) {
	o := newOptions(opts)
	cfg := o.sim
	fmt.Fprintln(w, "\nTable 3: simulator parameters")
	tw := newTable(w)
	fmt.Fprintf(tw, "L1D\t%d sets, %d ways, latency %d cycles\n", cfg.L1Sets, cfg.L1Ways, cfg.L1Lat)
	fmt.Fprintf(tw, "L2\t%d sets, %d ways, latency %d cycles\n", cfg.L2Sets, cfg.L2Ways, cfg.L2Lat)
	fmt.Fprintf(tw, "LLC\t%d sets, %d ways, latency %d cycles\n", cfg.LLCSets, cfg.LLCWays, cfg.LLCLat)
	fmt.Fprintf(tw, "DRAM\ttRP=tRCD=tCAS=%d cycles, %d channel(s) x %d ranks x %d banks, read queue %d\n",
		cfg.DRAM.TRP, cfg.DRAM.Channels, cfg.DRAM.Ranks, cfg.DRAM.Banks, cfg.DRAM.ReadQueue)
	fmt.Fprintf(tw, "core\t%d-wide retire, %d-entry ROB\n", cfg.Width, cfg.ROB)
	tw.Flush()

	scfg := snn.DefaultConfig(127 * 3)
	fmt.Fprintln(w, "\nTable 4: SNN network parameters")
	tw = newTable(w)
	fmt.Fprintf(tw, "n_input\t%d (D=127 x H=3)\n", scfg.InputSize)
	fmt.Fprintf(tw, "n_neurons\t%d\n", scfg.Neurons)
	fmt.Fprintf(tw, "exc\t%.1f\n", scfg.Exc)
	fmt.Fprintf(tw, "inh\t%.1f\n", scfg.Inh)
	fmt.Fprintf(tw, "norm\t%.1f\n", scfg.Norm)
	fmt.Fprintf(tw, "theta_plus\t%.2f\n", scfg.ThetaPlus)
	fmt.Fprintf(tw, "ticks\t%d\n", scfg.Ticks)
	tw.Flush()

	fmt.Fprintln(w, "\nTable 5: tested workloads")
	tw = newTable(w)
	fmt.Fprintln(tw, "suite\ttrace\tinstructions per load (mean)")
	for _, s := range workload.Suite() {
		fmt.Fprintf(tw, "%s\t%s\t%d\n", s.Suite, s.Name, s.IDGap)
	}
	tw.Flush()
}
