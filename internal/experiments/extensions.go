package experiments

import (
	"fmt"
	"io"

	"pathfinder/internal/core"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// Extended runs the lineup the paper's related-work section implies but
// does not plot: PATHFINDER against the wider rule-based field (per-PC
// Stride, VLDP, SMS) plus the two ensemble policies — the paper's fixed
// priority and the dynamic usefulness-scored priority it names as future
// work (§5).
func Extended(w io.Writer, opts ...Option) (SweepResult, error) {
	o := newOptions(opts)
	res := SweepResult{Rows: make(map[string]map[string]Metrics)}
	lineup := []string{"Stride", "VLDP", "SMS", "Pathfinder", "PF+SISB+NL (fixed)", "PF+SISB+NL (dynamic)"}
	res.Configs = lineup

	build := func(name string) (prefetch.Prefetcher, error) {
		switch name {
		case "Stride":
			return prefetch.NewStride(), nil
		case "VLDP":
			return prefetch.NewVLDP(), nil
		case "SMS":
			return prefetch.NewSMS(), nil
		case "Pathfinder":
			return newPathfinder(core.DefaultConfig(), o.seed)
		case "PF+SISB+NL (fixed)":
			pf, err := newPathfinder(core.DefaultConfig(), o.seed)
			if err != nil {
				return nil, err
			}
			e := prefetch.NewEnsemble(pf, prefetch.NewSISB(), &prefetch.NextLine{})
			e.Label = name
			return e, nil
		case "PF+SISB+NL (dynamic)":
			pf, err := newPathfinder(core.DefaultConfig(), o.seed)
			if err != nil {
				return nil, err
			}
			d := prefetch.NewDynamicEnsemble(pf, prefetch.NewSISB(), &prefetch.NextLine{})
			d.Label = name
			return d, nil
		}
		return nil, fmt.Errorf("experiments: unknown lineup member %q", name)
	}

	jobs := make([]runner.Job, 0, len(o.traces)*len(lineup))
	for _, tr := range o.traces {
		for _, name := range lineup {
			name := name
			jobs = append(jobs, runner.Job{
				Trace: tr,
				Label: name,
				New:   func() (prefetch.Prefetcher, error) { return build(name) },
			})
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return SweepResult{}, fmt.Errorf("experiments: extended lineup: %w", err)
	}
	res.collect(results)
	res.print(w, "Extended lineup (related-work baselines + ensemble policies)", o)
	return res, nil
}

// NoiseRow is one point of the noise-tolerance experiment.
type NoiseRow struct {
	Noise    float64
	Accuracy map[string]float64
	Coverage map[string]float64
}

// noisePrefetchers is the noise-tolerance lineup, in print order.
var noisePrefetchers = []string{"Pathfinder", "SPP", "VLDP", "BO"}

// NoiseTolerance tests §2.3's motivation for neural prefetchers — that
// they "make correct predictions even in the face of noisy inputs" caused
// by out-of-order reordering and interference. A pure delta-pattern
// workload is corrupted with increasing per-access noise; PATHFINDER's
// accuracy should degrade more gracefully than exact-match rule tables
// like SPP and VLDP. The (noise level × prefetcher) grid runs as one
// parallel batch; each level's no-prefetch baseline is simulated once.
func NoiseTolerance(w io.Writer, opts ...Option) ([]NoiseRow, error) {
	o := newOptions(opts)
	levels := []float64{0, 0.05, 0.10, 0.20, 0.30}

	build := func(name string) (prefetch.Prefetcher, error) {
		switch name {
		case "Pathfinder":
			return newPathfinder(core.DefaultConfig(), o.seed)
		case "SPP":
			return prefetch.NewSPP(), nil
		case "VLDP":
			return prefetch.NewVLDP(), nil
		case "BO":
			return prefetch.NewBestOffset(), nil
		}
		return nil, fmt.Errorf("experiments: unknown prefetcher %q", name)
	}

	var jobs []runner.Job
	for _, noise := range levels {
		spec := workload.Spec{
			Name:  fmt.Sprintf("noisy-deltas-%.2f", noise),
			IDGap: 40,
			Components: []workload.Component{
				{Weight: 40, Kind: workload.KindDeltaPattern, Pattern: []int{1, 2, 3}, NoiseProb: noise},
				{Weight: 35, Kind: workload.KindDeltaPattern, Pattern: []int{2, 5, 4}, NoiseProb: noise},
				{Weight: 25, Kind: workload.KindDeltaPattern, Pattern: []int{7, 1, 3, 6}, NoiseProb: noise},
			},
		}
		accs, err := spec.GenerateCtx(o.ctx, o.loads, o.seed)
		if err != nil {
			return nil, err
		}
		for _, name := range noisePrefetchers {
			name := name
			jobs = append(jobs, runner.Job{
				Trace: spec.Name,
				Accs:  accs,
				Label: name,
				New:   func() (prefetch.Prefetcher, error) { return build(name) },
			})
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: noise tolerance: %w", err)
	}

	rows := make([]NoiseRow, len(levels))
	for i, noise := range levels {
		rows[i] = NoiseRow{Noise: noise, Accuracy: map[string]float64{}, Coverage: map[string]float64{}}
		for j := range noisePrefetchers {
			m := results[i*len(noisePrefetchers)+j].Metrics
			rows[i].Accuracy[m.Prefetcher] = m.Accuracy
			rows[i].Coverage[m.Prefetcher] = m.Coverage
		}
	}

	fmt.Fprintf(w, "\nNoise tolerance (§2.3): accuracy/coverage on a delta-pattern workload vs per-access noise, %d loads\n", o.loads)
	tw := newTable(w)
	fmt.Fprint(tw, "noise")
	for _, n := range noisePrefetchers {
		fmt.Fprintf(tw, "\t%s acc\t%s cov", n, n)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f", r.Noise)
		for _, n := range noisePrefetchers {
			fmt.Fprintf(tw, "\t%.3f\t%.3f", r.Accuracy[n], r.Coverage[n])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return rows, nil
}

// InterferenceRow is one prefetcher's solo-versus-shared comparison.
type InterferenceRow struct {
	Prefetcher     string
	SoloIPC        float64
	SharedIPC      float64
	SoloAccuracy   float64
	SharedAccuracy float64
}

// Interference tests the second §2.3 claim — that co-scheduled threads
// inject noise that perturbs rule-based prefetchers — by running each
// prefetcher's benchmark core alone and then next to a streaming co-runner
// that thrashes the shared LLC and memory controller. Both the IPC cost
// and the accuracy cost of sharing are reported. The solo and shared
// simulations need the multi-core frontend directly, so this experiment
// bypasses the evaluation engine but still fans the three prefetchers out
// across workers.
func Interference(w io.Writer, opts ...Option) ([]InterferenceRow, error) {
	o := newOptions(opts)
	victim, err := workload.GenerateCtx(o.ctx, "cc-5", o.loads, o.seed)
	if err != nil {
		return nil, err
	}
	// The co-runner: a pure streaming workload in its own address space.
	coSpec := workload.Spec{
		Name:  "streamer",
		IDGap: 12,
		Components: []workload.Component{
			{Weight: 70, Kind: workload.KindStride, Stride: 3},
			{Weight: 30, Kind: workload.KindRandom, Set: 32768},
		},
	}
	coRunner, err := coSpec.GenerateCtx(o.ctx, o.loads, o.seed+7)
	if err != nil {
		return nil, err
	}
	for i := range coRunner {
		coRunner[i].Addr += 1 << 40 // keep address spaces disjoint
	}
	cfg := o.sim
	cfg.Warmup = o.loads / 10

	build := func(name string) (prefetch.Prefetcher, error) {
		switch name {
		case "BO":
			return prefetch.NewBestOffset(), nil
		case "SPP":
			return prefetch.NewSPP(), nil
		case "Pathfinder":
			return newPathfinder(core.DefaultConfig(), o.seed)
		}
		return nil, fmt.Errorf("experiments: unknown prefetcher %q", name)
	}

	names := []string{"BO", "SPP", "Pathfinder"}
	rows := make([]InterferenceRow, len(names))
	err = runner.ForEach(o.ctx, o.parallelism, len(names), func(i int) error {
		p, err := build(names[i])
		if err != nil {
			return err
		}
		file, err := prefetch.GenerateFileCtx(o.ctx, p, victim, prefetch.Budget)
		if err != nil {
			return err
		}
		solo, err := sim.RunCtx(o.ctx, cfg, victim, file)
		if err != nil {
			return err
		}
		shared, err := sim.RunMultiCtx(o.ctx, cfg, [][]trace.Access{victim, coRunner}, [][]trace.Prefetch{file, nil})
		if err != nil {
			return err
		}
		rows[i] = InterferenceRow{
			Prefetcher:     names[i],
			SoloIPC:        solo.IPC,
			SharedIPC:      shared[0].IPC,
			SoloAccuracy:   solo.Accuracy(),
			SharedAccuracy: shared[0].Accuracy(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "\nInterference (§2.3): cc-5 alone vs next to a streaming co-runner on a shared LLC, %d loads\n", o.loads)
	tw := newTable(w)
	fmt.Fprintln(tw, "prefetcher\tsolo IPC\tshared IPC\tIPC loss\tsolo acc\tshared acc")
	for _, r := range rows {
		loss := 0.0
		if r.SoloIPC > 0 {
			loss = (1 - r.SharedIPC/r.SoloIPC) * 100
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.1f%%\t%.3f\t%.3f\n",
			r.Prefetcher, r.SoloIPC, r.SharedIPC, loss, r.SoloAccuracy, r.SharedAccuracy)
	}
	tw.Flush()
	return rows, nil
}

// Degree sweeps §3.4's multi-degree mechanisms: prefetch degree 1 vs 2 vs
// 4, with the extra predictions coming either from a second label slot per
// neuron (the paper's adopted approach) or from lowered inhibition letting
// several neurons fire (its alternative). The evaluation's budget of two
// prefetches per access (§4.5) is lifted to the degree under test via the
// per-job budget override.
func Degree(w io.Writer, opts ...Option) (SweepResult, error) {
	o := newOptions(opts)

	configs := []NamedConfig{}
	mk := func(label string, degree, labels int, multiFire bool) {
		cfg := core.DefaultConfig()
		cfg.Degree = degree
		cfg.LabelsPerNeuron = labels
		cfg.MultiFire = multiFire
		configs = append(configs, NamedConfig{Label: label, Config: cfg})
	}
	mk("deg1/1l", 1, 1, false)
	mk("deg2/1l", 2, 1, false)
	mk("deg2/2l", 2, 2, false)
	mk("deg2/multifire", 2, 1, true)
	mk("deg4/2l", 4, 2, false)

	res := SweepResult{Rows: make(map[string]map[string]Metrics)}
	for _, c := range configs {
		res.Configs = append(res.Configs, c.Label)
	}
	jobs := make([]runner.Job, 0, len(o.traces)*len(configs))
	for _, tr := range o.traces {
		for _, c := range configs {
			cfg := c.Config
			jobs = append(jobs, runner.Job{
				Trace: tr,
				Label: c.Label,
				New: func() (prefetch.Prefetcher, error) {
					return newPathfinder(cfg, o.seed)
				},
				// Lift the per-access budget to the degree under test.
				Budget: cfg.Degree,
			})
		}
	}
	results, err := o.run(jobs)
	if err != nil {
		return SweepResult{}, fmt.Errorf("experiments: degree sweep: %w", err)
	}
	res.collect(results)
	res.print(w, "Multi-degree mechanisms (§3.4)", o)
	return res, nil
}

// SNNSensitivity sweeps the two SNN hyper-parameters this reproduction
// found load-bearing (DESIGN.md findings 1–2): the STDP potentiation rate
// NuPost, which must be strong enough for one-shot pattern capture, and
// the rate-coding input gain, which compensates for the pixel matrices
// being far sparser than the MNIST images the Diehl & Cook model was tuned
// for. Reported on one delta-rich trace.
func SNNSensitivity(w io.Writer, opts ...Option) (SweepResult, error) {
	o := newOptions(opts)
	o.traces = []string{"cc-5"}

	res := SweepResult{Rows: make(map[string]map[string]Metrics)}

	mkJob := func(label string, mutate func(*snn.Config)) runner.Job {
		return runner.Job{
			Trace: "cc-5",
			Label: label,
			New: func() (prefetch.Prefetcher, error) {
				cfg := core.DefaultConfig()
				cfg.Seed = o.seed
				pf, err := core.New(cfg)
				if err != nil {
					return nil, err
				}
				scfg := pf.Network().Config()
				mutate(&scfg)
				net, err := snn.New(scfg)
				if err != nil {
					return nil, err
				}
				pf.ReplaceNetwork(net)
				return pf, nil
			},
		}
	}

	var jobs []runner.Job
	for _, nu := range []float64{0.005, 0.02, 0.05, 0.1} {
		nu := nu
		label := fmt.Sprintf("nuPost %.3f", nu)
		res.Configs = append(res.Configs, label)
		jobs = append(jobs, mkJob(label, func(c *snn.Config) { c.NuPost = nu }))
	}
	for _, g := range []float64{2, 4, 8, 16} {
		g := g
		label := fmt.Sprintf("gain %.0f", g)
		res.Configs = append(res.Configs, label)
		jobs = append(jobs, mkJob(label, func(c *snn.Config) { c.InputGain = g }))
	}
	results, err := o.run(jobs)
	if err != nil {
		return SweepResult{}, fmt.Errorf("experiments: SNN sensitivity: %w", err)
	}
	res.collect(results)
	res.print(w, "SNN hyper-parameter sensitivity (cc-5)", o)
	return res, nil
}

// InputEncodings compares the SNN input designs of §3.2's design space:
// the paper's delta history, a PC-aware variant, and a spatial-footprint
// variant. The paper chose deltas because they "tend to be more
// predictable and easier to encode than the addresses themselves"; this
// experiment checks that choice.
func InputEncodings(w io.Writer, opts ...Option) (SweepResult, error) {
	mk := func(label string, mode core.InputMode) NamedConfig {
		cfg := core.DefaultConfig()
		cfg.Inputs = mode
		return NamedConfig{Label: label, Config: cfg}
	}
	return runSweep(w, "Input encodings (§3.2 design space)", newOptions(opts), []NamedConfig{
		mk("delta-history", core.InputDeltaHistory),
		mk("pc+delta", core.InputPCDelta),
		mk("footprint", core.InputFootprint),
	})
}
