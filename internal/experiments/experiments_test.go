package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// smallOpts keeps experiment tests fast: two traces, short runs, no offline
// neural baselines.
func smallOpts() []Option {
	return []Option{
		WithLoads(6000),
		WithSeed(1),
		WithTraces("cc-5", "623-xalan-s1"),
		WithSkipOffline(true),
	}
}

// withExtra appends options to the small-test base.
func withExtra(extra ...Option) []Option {
	return append(smallOpts(), extra...)
}

func TestOptionsDefaults(t *testing.T) {
	o := newOptions(nil)
	if o.loads != 50_000 || o.seed != 1 || len(o.traces) != 11 {
		t.Errorf("defaults: %+v", o)
	}
	if o.sim.Width == 0 {
		t.Error("sim config not defaulted")
	}
	if o.ctx == nil {
		t.Error("context not defaulted")
	}
}

func TestOptionsApply(t *testing.T) {
	o := newOptions([]Option{WithLoads(123), WithSeed(9), WithTraces("cc-5"), WithParallelism(2)})
	if o.loads != 123 || o.seed != 9 || len(o.traces) != 1 || o.parallelism != 2 {
		t.Errorf("options not applied: %+v", o)
	}
	// Non-positive loads and zero seeds keep the defaults.
	o = newOptions([]Option{WithLoads(0), WithSeed(0)})
	if o.loads != 50_000 || o.seed != 1 {
		t.Errorf("guard rails not applied: %+v", o)
	}
}

func TestGeomean(t *testing.T) {
	if got := geomean([]float64{2, 8}); got < 3.99 || got > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	if got := geomean(nil); got != 0 {
		t.Errorf("geomean(nil) = %v", got)
	}
	if got := geomean([]float64{0, 4}); got != 4 {
		t.Errorf("geomean skipping zeros = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := mean(nil); got != 0 {
		t.Errorf("mean(nil) = %v", got)
	}
}

// TestDistributedMatchesInProcess routes a sweep through the distributed
// engine (coordinator + loopback workers) and requires the exact metrics
// the in-process engine produces — the WithDistributed contract.
func TestDistributedMatchesInProcess(t *testing.T) {
	var a, b bytes.Buffer
	ref, err := Extended(&a, smallOpts()...)
	if err != nil {
		t.Fatalf("in-process Extended: %v", err)
	}
	got, err := Extended(&b, withExtra(WithDistributed(3))...)
	if err != nil {
		t.Fatalf("distributed Extended: %v", err)
	}
	if !reflect.DeepEqual(ref.Rows, got.Rows) {
		t.Errorf("distributed sweep diverged:\nin-process: %+v\ndistributed: %+v", ref.Rows, got.Rows)
	}
}

func TestFig4SmallRun(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig4(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows for %d traces, want 2", len(res.Rows))
	}
	for _, name := range []string{"NoPF", "BO", "SISB", "SPP", "Pythia", "Pathfinder", "PF+NL", "PF+NL+SISB"} {
		m, ok := res.Rows["cc-5"][name]
		if !ok {
			t.Fatalf("missing prefetcher %q", name)
		}
		if m.IPC <= 0 {
			t.Errorf("%s IPC = %v", name, m.IPC)
		}
	}
	// Offline baselines skipped.
	if _, ok := res.Rows["cc-5"]["Voyager"]; ok {
		t.Error("Voyager present despite WithSkipOffline")
	}
	out := buf.String()
	for _, want := range []string{"Figure 4a", "Figure 4b", "Figure 4c", "Table 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if res.MeanIPC("Pathfinder") <= 0 {
		t.Error("MeanIPC not positive")
	}
}

func TestFig5DeltaRangeTradeoff(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig5(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(res.Configs) != 3 {
		t.Fatalf("configs = %v", res.Configs)
	}
	// Coverage must not increase when the range shrinks (fewer deltas
	// encodable; Figure 5 / Table 7).
	for tr, row := range res.Rows {
		if row["range 31"].Coverage > row["range 127"].Coverage+0.05 {
			t.Errorf("%s: range-31 coverage %.3f > range-127 %.3f", tr,
				row["range 31"].Coverage, row["range 127"].Coverage)
		}
	}
}

func TestFig6NeuronSweepShape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig6(&buf, withExtra(WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(res.Configs) != 10 {
		t.Fatalf("configs = %v", res.Configs)
	}
	if _, ok := res.Rows["cc-5"]["50n/2l"]; !ok {
		t.Error("missing 50n/2l config")
	}
}

func TestFig7OneTickClose(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig7(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for tr, row := range res.Rows {
		full, one := row["32-tick"].IPC, row["1-tick"].IPC
		if full <= 0 || one <= 0 {
			t.Fatalf("%s: non-positive IPCs", tr)
		}
		if diff := (one - full) / full; diff < -0.1 || diff > 0.1 {
			t.Errorf("%s: 1-tick IPC deviates %.1f%% from 32-tick", tr, 100*diff)
		}
	}
}

func TestFig8DutyCycle(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig8(&buf, withExtra(WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(res.Configs) != 9 {
		t.Fatalf("configs = %v", res.Configs)
	}
}

func TestFig9VariantLadder(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig9(&buf, withExtra(WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(res.Configs) != 5 {
		t.Fatalf("configs = %v", res.Configs)
	}
}

func TestTable1MatchRates(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("%s: no queries", r.Trace)
		}
		if r.MatchRate < 0.4 {
			t.Errorf("%s: match rate %.2f; the paper reports 0.83-0.94", r.Trace, r.MatchRate)
		}
	}
}

func TestTable2Walkthrough(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(&buf, 7)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 (as in the paper's Table 2)", len(rows))
	}
	// The repeated pattern {1,2,4} must keep the same winner (§3.6).
	w := rows[0].Winner
	if w < 0 {
		t.Fatal("no neuron fired on the first interval")
	}
	for i := 1; i < 6; i++ {
		if rows[i].Winner != w {
			t.Errorf("interval %d: winner %d, want stable %d", i, rows[i].Winner, w)
		}
	}
	if rows[10].Winner != w {
		t.Errorf("final {1,2,4} interval: winner %d, want %d", rows[10].Winner, w)
	}
}

func TestTable7RangesNested(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table7(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	for _, r := range rows {
		if r.Within15 > r.Within31 || r.Within31 > r.Deltas {
			t.Errorf("%s: inconsistent counts %+v", r.Trace, r)
		}
	}
}

func TestTable8Positive(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table8(&buf, smallOpts()...)
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	for _, r := range rows {
		if r.AvgDeltas <= 0 || r.AvgDistinct <= 0 || r.AvgTop5 <= 0 {
			t.Errorf("%s: non-positive stats %+v", r.Trace, r)
		}
		if r.AvgTop5 > r.AvgDeltas {
			t.Errorf("%s: top-5 occurrences exceed total deltas", r.Trace)
		}
	}
}

func TestTable9Print(t *testing.T) {
	var buf bytes.Buffer
	rows := Table9(&buf)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(buf.String(), "0.2") {
		t.Error("output missing headline numbers")
	}
}

func TestPrintConfig(t *testing.T) {
	var buf bytes.Buffer
	PrintConfig(&buf, smallOpts()...)
	out := buf.String()
	for _, want := range []string{"Table 3", "Table 4", "Table 5", "cc-5", "n_neurons"} {
		if !strings.Contains(out, want) {
			t.Errorf("config output missing %q", want)
		}
	}
}

func TestExtendedLineup(t *testing.T) {
	var buf bytes.Buffer
	res, err := Extended(&buf, withExtra(WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("Extended: %v", err)
	}
	if len(res.Configs) != 6 {
		t.Fatalf("configs = %v", res.Configs)
	}
	for _, name := range res.Configs {
		if res.Rows["cc-5"][name].IPC <= 0 {
			t.Errorf("%s: IPC %v", name, res.Rows["cc-5"][name].IPC)
		}
	}
}

func TestNoiseToleranceDegradesGracefully(t *testing.T) {
	var buf bytes.Buffer
	rows, err := NoiseTolerance(&buf, withExtra(WithLoads(8000))...)
	if err != nil {
		t.Fatalf("NoiseTolerance: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At zero noise every delta learner should achieve solid coverage.
	if rows[0].Coverage["Pathfinder"] < 0.3 {
		t.Errorf("PF zero-noise coverage %.3f", rows[0].Coverage["Pathfinder"])
	}
	// Noise must hurt: coverage at 30%% noise below coverage at 0.
	if rows[4].Coverage["Pathfinder"] >= rows[0].Coverage["Pathfinder"] {
		t.Errorf("noise did not reduce PF coverage: %.3f vs %.3f",
			rows[4].Coverage["Pathfinder"], rows[0].Coverage["Pathfinder"])
	}
}

func TestInterference(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Interference(&buf, withExtra(WithLoads(8000))...)
	if err != nil {
		t.Fatalf("Interference: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SoloIPC <= 0 || r.SharedIPC <= 0 {
			t.Errorf("%s: non-positive IPCs %+v", r.Prefetcher, r)
		}
		if r.SharedIPC >= r.SoloIPC {
			t.Errorf("%s: sharing did not cost IPC (%.3f vs %.3f)", r.Prefetcher, r.SharedIPC, r.SoloIPC)
		}
	}
}

func TestDegreeSweep(t *testing.T) {
	var buf bytes.Buffer
	res, err := Degree(&buf, withExtra(WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("Degree: %v", err)
	}
	if len(res.Configs) != 5 {
		t.Fatalf("configs = %v", res.Configs)
	}
	row := res.Rows["cc-5"]
	// Degree 4 must not issue fewer prefetches than degree 1.
	if row["deg4/2l"].Issued < row["deg1/1l"].Issued {
		t.Errorf("degree 4 issued %d < degree 1 issued %d", row["deg4/2l"].Issued, row["deg1/1l"].Issued)
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("summary %+v", s)
	}
	if s.Stddev < 0.99 || s.Stddev > 1.01 {
		t.Errorf("stddev %v, want 1", s.Stddev)
	}
	if got := summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Errorf("empty summary %+v", got)
	}
	if got := summarize([]float64{5}).String(); got != "5.000" {
		t.Errorf("single-sample String() = %q", got)
	}
}

func TestSeedStudy(t *testing.T) {
	var buf bytes.Buffer
	rows, err := SeedStudy(&buf, 2, withExtra(WithLoads(5000), WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("SeedStudy: %v", err)
	}
	if len(rows) != 1 || rows[0].IPC.N != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].IPC.Mean <= 0 {
		t.Error("non-positive mean IPC")
	}
}

func TestSNNSensitivity(t *testing.T) {
	var buf bytes.Buffer
	res, err := SNNSensitivity(&buf, withExtra(WithLoads(5000))...)
	if err != nil {
		t.Fatalf("SNNSensitivity: %v", err)
	}
	if len(res.Configs) != 8 {
		t.Fatalf("configs = %v", res.Configs)
	}
	for _, c := range res.Configs {
		if res.Rows["cc-5"][c].IPC <= 0 {
			t.Errorf("%s: IPC %v", c, res.Rows["cc-5"][c].IPC)
		}
	}
}

func TestInputEncodings(t *testing.T) {
	var buf bytes.Buffer
	res, err := InputEncodings(&buf, withExtra(WithLoads(5000), WithTraces("cc-5"))...)
	if err != nil {
		t.Fatalf("InputEncodings: %v", err)
	}
	if len(res.Configs) != 3 {
		t.Fatalf("configs = %v", res.Configs)
	}
	for _, c := range res.Configs {
		if res.Rows["cc-5"][c].IPC <= 0 {
			t.Errorf("%s: IPC %v", c, res.Rows["cc-5"][c].IPC)
		}
	}
}
