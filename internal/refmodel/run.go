package refmodel

import (
	"fmt"

	"pathfinder/internal/sim"
	"pathfinder/internal/trace"
)

// This file is the reference replay: sim.RunMulti's semantics re-stated
// with the obvious data structures. In-flight fills live in a plain slice
// drained by stable min-scan (completion cycle, then issue order — the FCFS
// order sim's heap implements), retire points in a bounded slice scanned
// backwards, and the caches/DRAM are the reference models of this package.
// The differential harness asserts that sim.RunMulti and RunMulti produce
// identical sim.Result values — cycles, IPC bits, and every counter.

// retireWindow is the number of recent retire points the dispatch model
// remembers; it matches the optimized engine's ring-buffer size, which is
// part of the dispatch semantics (older instructions fall back to
// width-interpolation from the trace start).
const retireWindow = 512

type refFill struct {
	ready uint64
	block uint64
	seq   uint64
}

type refSharedMemory struct {
	llc      *Cache
	dram     *DRAM
	inflight map[uint64]uint64
	fills    []refFill
	fillSeq  uint64
}

func (s *refSharedMemory) drainFills(now uint64) {
	for {
		// Find the due fill with the smallest (ready, seq).
		best := -1
		for i, f := range s.fills {
			if f.ready > now {
				continue
			}
			if best < 0 || f.ready < s.fills[best].ready ||
				(f.ready == s.fills[best].ready && f.seq < s.fills[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		f := s.fills[best]
		s.fills = append(s.fills[:best], s.fills[best+1:]...)
		// The map entry may have been superseded (a demand consumed the
		// in-flight fill); only fill if it still matches.
		if r, ok := s.inflight[f.block]; ok && r == f.ready {
			s.llc.Fill(f.block, true)
			delete(s.inflight, f.block)
		}
	}
}

type refRetirePoint struct {
	id     uint64
	retire float64
}

type refCore struct {
	cfg  sim.Config
	l1   *Cache
	l2   *Cache
	accs []trace.Access
	pfs  []trace.Prefetch

	idx     int
	retire  float64
	points  []refRetirePoint // most recent retireWindow retire points
	chains  map[uint32]float64
	pfIdx   int
	prevID  uint64
	firstID uint64

	measuring  bool
	warmCycles float64
	warmInstr  uint64
	res        sim.Result
}

func newRefCore(cfg sim.Config, accs []trace.Access, pfs []trace.Prefetch) *refCore {
	c := &refCore{
		cfg:       cfg,
		l1:        NewCache(cfg.L1Sets, cfg.L1Ways),
		l2:        NewCache(cfg.L2Sets, cfg.L2Ways),
		accs:      accs,
		pfs:       pfs,
		chains:    make(map[uint32]float64),
		measuring: cfg.Warmup == 0,
	}
	if len(accs) > 0 {
		c.prevID = accs[0].ID
		if c.prevID > 0 {
			c.prevID--
		}
	}
	c.firstID = c.prevID
	return c
}

func (c *refCore) dispatchTime(targetID uint64) float64 {
	for i := len(c.points) - 1; i >= 0; i-- {
		p := c.points[i]
		if p.id <= targetID {
			return p.retire + float64(targetID-p.id)/float64(c.cfg.Width)
		}
	}
	if targetID <= c.firstID {
		return 0
	}
	return float64(targetID-c.firstID) / float64(c.cfg.Width)
}

func (c *refCore) done() bool { return c.idx >= len(c.accs) }

func (c *refCore) step(mem *refSharedMemory) error {
	cfg := c.cfg
	acc := c.accs[c.idx]
	if acc.ID <= c.prevID {
		return fmt.Errorf("refmodel: access %d has non-increasing ID %d (prev %d)", c.idx, acc.ID, c.prevID)
	}
	gap := acc.ID - c.prevID
	c.prevID = acc.ID

	c.retire += float64(gap-1) / float64(cfg.Width)

	var dispatch float64
	if acc.ID > uint64(cfg.ROB) {
		dispatch = c.dispatchTime(acc.ID - uint64(cfg.ROB))
	}
	if acc.Chain != 0 {
		if ready, ok := c.chains[acc.Chain]; ok && ready > dispatch {
			dispatch = ready
		}
	}
	now := uint64(dispatch)
	mem.drainFills(now)

	block := acc.Block()
	var lat uint64
	l1Hit, _ := c.l1.Lookup(block)
	if l1Hit {
		lat = uint64(cfg.L1Lat)
	} else {
		l2Hit, _ := c.l2.Lookup(block)
		if l2Hit {
			lat = uint64(cfg.L1Lat + cfg.L2Lat)
			c.l1.Fill(block, false)
		} else {
			// Mirror of sim: the shared LLC's counters are gated on this
			// core's measurement window.
			hit, pfTouch := mem.llc.LookupGated(block, c.measuring)
			if c.measuring {
				c.res.LLCLoadAccesses++
			}
			if hit {
				lat = uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
				if c.measuring {
					c.res.LLCLoadHits++
					if pfTouch {
						c.res.PrefUseful++
					}
				}
			} else if ready, ok := mem.inflight[block]; ok {
				tagLat := uint64(cfg.L1Lat + cfg.L2Lat + cfg.LLCLat)
				if ready > now+tagLat {
					lat = ready - now
				} else {
					lat = tagLat
				}
				delete(mem.inflight, block)
				mem.llc.Fill(block, false)
				if c.measuring {
					c.res.LLCLoadHits++
					c.res.PrefUseful++
					c.res.PrefLate++
				}
			} else {
				done := mem.dram.Access(block, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
				lat = done - now
				mem.llc.Fill(block, false)
				if c.measuring {
					c.res.LLCLoadMisses++
				}
			}
			c.l2.Fill(block, false)
			c.l1.Fill(block, false)
		}
	}

	complete := dispatch + float64(lat)
	if acc.Chain != 0 {
		c.chains[acc.Chain] = complete
	}
	c.retire += 1.0 / float64(cfg.Width)
	if complete > c.retire {
		c.retire = complete
	}
	c.points = append(c.points, refRetirePoint{id: acc.ID, retire: c.retire})
	if len(c.points) > retireWindow {
		c.points = c.points[1:]
	}

	dropDepth := cfg.PrefetchDropDepth
	if dropDepth <= 0 {
		dropDepth = cfg.DRAM.ReadQueue / 2
	}
	for c.pfIdx < len(c.pfs) && c.pfs[c.pfIdx].ID <= acc.ID {
		pf := c.pfs[c.pfIdx]
		c.pfIdx++
		if c.measuring {
			c.res.PrefIssued++
		}
		pb := pf.Block()
		if mem.llc.Contains(pb) {
			continue
		}
		if _, ok := mem.inflight[pb]; ok {
			continue
		}
		if mem.dram.QueueDepth(now) >= dropDepth {
			if c.measuring {
				c.res.PrefDropped++
			}
			continue
		}
		done := mem.dram.Access(pb, now+uint64(cfg.L1Lat+cfg.L2Lat+cfg.LLCLat))
		mem.inflight[pb] = done
		mem.fills = append(mem.fills, refFill{ready: done, block: pb, seq: mem.fillSeq})
		mem.fillSeq++
		if c.measuring {
			c.res.PrefFetched++
		}
	}

	c.idx++
	if !c.measuring && c.idx == cfg.Warmup {
		c.measuring = true
		c.warmCycles = c.retire
		c.warmInstr = acc.ID - c.firstID
		c.l1.ResetStats()
		c.l2.ResetStats()
	}
	return nil
}

// finish mirrors corePipeline.finish, including the empty-measured-window
// error for non-empty traces.
func (c *refCore) finish() (sim.Result, error) {
	totalInstr := uint64(0)
	if len(c.accs) > 0 {
		totalInstr = c.accs[len(c.accs)-1].ID - c.firstID
	}
	c.res.Instructions = totalInstr - c.warmInstr
	cycles := c.retire - c.warmCycles
	if cycles < 1 {
		if len(c.accs) > 0 {
			return sim.Result{}, fmt.Errorf("measured window is empty (%.3f cycles for %d instructions after warmup %d); shorten Warmup or lengthen the trace",
				cycles, c.res.Instructions, c.cfg.Warmup)
		}
		cycles = 1
	}
	c.res.Cycles = uint64(cycles)
	c.res.IPC = float64(c.res.Instructions) / cycles
	return c.res, nil
}

// Run replays one core's trace and prefetch file; the reference counterpart
// of sim.Run.
func Run(cfg sim.Config, accs []trace.Access, pfs []trace.Prefetch) (sim.Result, error) {
	res, err := RunMulti(cfg, [][]trace.Access{accs}, [][]trace.Prefetch{pfs})
	if err != nil {
		return sim.Result{}, err
	}
	return res[0], nil
}

// RunMulti is the reference counterpart of sim.RunMulti: the same
// min-retire-time core scheduling over the reference shared memory system.
func RunMulti(cfg sim.Config, cores [][]trace.Access, pfs [][]trace.Prefetch) ([]sim.Result, error) {
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		return nil, fmt.Errorf("refmodel: invalid core config (width %d, ROB %d)", cfg.Width, cfg.ROB)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("refmodel: no cores")
	}
	if pfs != nil && len(pfs) != len(cores) {
		return nil, fmt.Errorf("refmodel: %d prefetch files for %d cores", len(pfs), len(cores))
	}
	for i, accs := range cores {
		if cfg.Warmup >= len(accs) && len(accs) > 0 {
			return nil, fmt.Errorf("refmodel: warmup %d >= core %d trace length %d", cfg.Warmup, i, len(accs))
		}
	}

	mem := &refSharedMemory{
		llc:      NewCacheWithPolicy(cfg.LLCSets, cfg.LLCWays, cfg.LLCPolicy),
		dram:     NewDRAM(cfg.DRAM),
		inflight: make(map[uint64]uint64),
	}
	pipes := make([]*refCore, len(cores))
	for i, accs := range cores {
		var p []trace.Prefetch
		if pfs != nil {
			p = pfs[i]
		}
		pipes[i] = newRefCore(cfg, accs, p)
	}

	for {
		best := -1
		for i, p := range pipes {
			if p.done() {
				continue
			}
			if best < 0 || p.retire < pipes[best].retire {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := pipes[best].step(mem); err != nil {
			return nil, fmt.Errorf("refmodel: core %d: %w", best, err)
		}
	}

	out := make([]sim.Result, len(pipes))
	for i, p := range pipes {
		res, err := p.finish()
		if err != nil {
			return nil, fmt.Errorf("refmodel: core %d: %w", i, err)
		}
		out[i] = res
		out[i].DRAMReads = mem.dram.Reads
		out[i].DRAMRowHits = mem.dram.RowHits
	}
	return out, nil
}
