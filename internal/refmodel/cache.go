package refmodel

import "pathfinder/internal/sim"

// Cache is the reference set-associative cache: the same lookup/fill/stats
// surface as sim.Cache, implemented with an explicit per-set recency list
// instead of monotonic tick stamps. Physical way slots are modelled
// directly because sim's victim scans (first invalid slot, SRRIP's
// first-distant-way scan) are defined in slot order.
type Cache struct {
	sets   int
	ways   int
	policy sim.Policy

	slots   [][]refLine // [set][way], physical slot order
	recency [][]int     // [set] -> way indices, most recently used first

	// CacheStats is sim's counter block, embedded by type so the
	// differential harness can compare the two engines' statistics as one
	// struct — a counter added to sim automatically becomes part of the
	// reference contract.
	sim.CacheStats
}

type refLine struct {
	tag        uint64
	rrpv       uint8
	valid      bool
	prefetched bool
}

const srripMax = 3 // sim's "distant" re-reference value

// NewCache returns a reference LRU cache.
func NewCache(sets, ways int) *Cache {
	return NewCacheWithPolicy(sets, ways, sim.PolicyLRU)
}

// NewCacheWithPolicy returns a reference cache with the given policy.
func NewCacheWithPolicy(sets, ways int, policy sim.Policy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("refmodel: cache sets and ways must be positive")
	}
	c := &Cache{sets: sets, ways: ways, policy: policy}
	c.slots = make([][]refLine, sets)
	c.recency = make([][]int, sets)
	for s := range c.slots {
		c.slots[s] = make([]refLine, ways)
		c.recency[s] = make([]int, 0, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setIndex(block uint64) int { return int(block % uint64(c.sets)) }

// touch moves way to the front (MRU position) of set s's recency list,
// inserting it if absent.
func (c *Cache) touch(s, way int) {
	rec := c.recency[s]
	for i, w := range rec {
		if w == way {
			copy(rec[1:i+1], rec[:i])
			rec[0] = way
			return
		}
	}
	rec = append(rec, 0)
	copy(rec[1:], rec)
	rec[0] = way
	c.recency[s] = rec
}

// Lookup performs a demand access; semantics match sim.Cache.Lookup.
func (c *Cache) Lookup(block uint64) (hit, prefetchedFirstTouch bool) {
	return c.LookupGated(block, true)
}

// LookupGated is Lookup with gated statistics; semantics match
// sim.Cache.LookupGated.
func (c *Cache) LookupGated(block uint64, count bool) (hit, prefetchedFirstTouch bool) {
	s := c.setIndex(block)
	for way := range c.slots[s] {
		l := &c.slots[s][way]
		if l.valid && l.tag == block {
			c.touch(s, way)
			l.rrpv = 0
			pf := l.prefetched
			l.prefetched = false
			if count {
				c.Hits++
			}
			return true, pf
		}
	}
	if count {
		c.Misses++
	}
	return false, false
}

// Contains reports residency without touching recency or counters.
func (c *Cache) Contains(block uint64) bool {
	s := c.setIndex(block)
	for _, l := range c.slots[s] {
		if l.valid && l.tag == block {
			return true
		}
	}
	return false
}

// Fill inserts block; semantics match sim.Cache.Fill: a resident block is
// refreshed (prefetch bit only ever set, never cleared, by fills), an
// invalid slot is used first (lowest way), and otherwise the policy picks
// the victim — the recency list's tail for LRU, the first distant way
// (ageing all ways until one exists) for SRRIP.
func (c *Cache) Fill(block uint64, prefetched bool) (evicted uint64, hadEviction bool) {
	s := c.setIndex(block)
	victim := -1
	for way := range c.slots[s] {
		l := &c.slots[s][way]
		if l.valid && l.tag == block {
			c.touch(s, way)
			l.rrpv = 0
			if prefetched {
				l.prefetched = true
			}
			return 0, false
		}
		if victim < 0 && !l.valid {
			victim = way
		}
	}
	if victim < 0 {
		victim = c.pickVictim(s)
	}
	evicted, hadEviction = c.slots[s][victim].tag, c.slots[s][victim].valid
	c.Fills++
	if prefetched {
		c.PrefetchFills++
	}
	if hadEviction {
		c.Evictions++
	}
	rrpv := uint8(srripMax - 1)
	if prefetched {
		rrpv = srripMax
	}
	c.slots[s][victim] = refLine{tag: block, rrpv: rrpv, valid: true, prefetched: prefetched}
	c.touch(s, victim)
	return evicted, hadEviction
}

func (c *Cache) pickVictim(s int) int {
	if c.policy == sim.PolicyLRU {
		rec := c.recency[s]
		return rec[len(rec)-1]
	}
	for {
		for way := range c.slots[s] {
			if c.slots[s][way].rrpv >= srripMax {
				return way
			}
		}
		for way := range c.slots[s] {
			c.slots[s][way].rrpv++
		}
	}
}

// Reset invalidates every line and clears the statistics counters.
func (c *Cache) Reset() {
	for s := range c.slots {
		for way := range c.slots[s] {
			c.slots[s][way] = refLine{}
		}
		c.recency[s] = c.recency[s][:0]
	}
	c.ResetStats()
}

// ResetStats clears every statistics counter, like sim.Cache.ResetStats.
func (c *Cache) ResetStats() { c.CacheStats = sim.CacheStats{} }
