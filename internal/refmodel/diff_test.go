package refmodel

import (
	"fmt"
	"math/rand"
	"testing"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// The tests below are the standing differential oracle: each runs dozens of
// seeded random scenarios through an optimized engine and its reference
// model and fails on the first bit divergence. Seeds are the case index, so
// a failure report like "case 17" reproduces with -run 'TestDiffSNN/case-17'.

// randomSNNConfig draws a valid but adversarial SNN configuration: small
// sizes so many presentations run quickly, with every semantic switch
// (temporal coding, weight-dependent STDP, negative inhibition, zero
// refractory periods, fastOK-breaking reset levels) exercised across cases.
func randomSNNConfig(r *rand.Rand) snn.Config {
	cfg := snn.DefaultConfig(4 + r.Intn(36))
	cfg.Neurons = 2 + r.Intn(10)
	cfg.Ticks = 4 + r.Intn(28)
	cfg.Seed = r.Int63n(1 << 40)
	cfg.FireProb = 0.1 + 0.9*r.Float64()
	cfg.InputGain = 0.5 + 10*r.Float64()
	cfg.Exc = 25 * r.Float64()
	cfg.Inh = 20 * r.Float64()
	if r.Intn(8) == 0 {
		cfg.Inh = -5 * r.Float64() // negative inhibition: WTA rescan path
	}
	cfg.InhHold = r.Intn(6)
	cfg.Norm = 5 + 40*r.Float64()
	cfg.ThetaPlus = 0.2 * r.Float64()
	if r.Intn(6) == 0 {
		cfg.ThetaPlus = 0
	}
	cfg.TCTheta = float64(r.Intn(3)) * 5000 // 0 disables theta decay
	cfg.NuPre = 0.01 * r.Float64()
	cfg.NuPost = 0.1 * r.Float64()
	cfg.TraceTC = 2 + 30*r.Float64()
	cfg.Temporal = r.Intn(3) == 0
	cfg.WeightDependent = r.Intn(3) == 0
	cfg.RefracE = r.Intn(6)
	cfg.RefracI = r.Intn(4)
	if r.Intn(10) == 0 {
		// Reset above threshold breaks the fastOK resting-state invariant;
		// the optimized engine must fall back to always-tick behaviour.
		cfg.ResetE = cfg.ThreshE + 1
	}
	if r.Intn(10) == 0 {
		cfg.ResetI = cfg.ThreshI + 1
	}
	return cfg
}

// randomPixels draws a sparse input vector like PATHFINDER's pixel
// matrices: a handful of lit pixels, intensities in (0, 1], occasionally
// fully dark or fully lit.
func randomPixels(r *rand.Rand, size int) []float64 {
	px := make([]float64, size)
	switch r.Intn(10) {
	case 0: // all dark: quiescence fast-forward end to end
	case 1: // all lit
		for i := range px {
			px[i] = 1
		}
	default:
		lit := 1 + r.Intn(size)
		if lit > 8 {
			lit = 1 + r.Intn(8)
		}
		for k := 0; k < lit; k++ {
			v := r.Float64()
			if r.Intn(3) == 0 {
				v = 1
			}
			px[r.Intn(size)] = v
		}
	}
	return px
}

func TestDiffSNN(t *testing.T) {
	cases := 150
	presents := 6
	if testing.Short() {
		cases = 60
		presents = 4
	}
	for i := 0; i < cases; i++ {
		i := i
		t.Run(caseName(i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(1000 + i)))
			cfg := randomSNNConfig(r)
			seq := make([]SNNPresent, presents)
			for k := range seq {
				seq[k] = SNNPresent{
					Pixels:  randomPixels(r, cfg.InputSize),
					Learn:   r.Intn(4) != 0,
					OneTick: r.Intn(6) == 0,
				}
			}
			if err := DiffSNN(cfg, seq); err != nil {
				t.Fatalf("config %+v\ndivergence: %v", cfg, err)
			}
		})
	}
}

func TestDiffCache(t *testing.T) {
	cases := 120
	ops := 400
	if testing.Short() {
		cases = 60
		ops = 200
	}
	for i := 0; i < cases; i++ {
		i := i
		t.Run(caseName(i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(2000 + i)))
			sets := 1 + r.Intn(8)
			ways := 1 + r.Intn(6)
			policy := sim.PolicyLRU
			if r.Intn(2) == 0 {
				policy = sim.PolicySRRIP
			}
			// A block space a few times the cache capacity forces steady
			// conflict misses and evictions.
			space := uint64(sets*ways*3 + 1)
			seq := make([]CacheOp, ops)
			for k := range seq {
				kind := CacheOpKind(r.Intn(int(numCacheOpKinds)))
				if kind == CacheReset && r.Intn(4) != 0 {
					kind = CacheLookup // keep resets rare so state accumulates
				}
				seq[k] = CacheOp{Kind: kind, Block: r.Uint64() % space}
			}
			if err := DiffCache(sets, ways, policy, seq); err != nil {
				t.Fatalf("sets=%d ways=%d policy=%d: %v", sets, ways, policy, err)
			}
		})
	}
}

func TestDiffDRAM(t *testing.T) {
	cases := 120
	ops := 400
	if testing.Short() {
		cases = 60
		ops = 200
	}
	for i := 0; i < cases; i++ {
		i := i
		t.Run(caseName(i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(3000 + i)))
			cfg := sim.DRAMConfig{
				Channels:  1 + r.Intn(2),
				Ranks:     1 + r.Intn(2),
				Banks:     1 + r.Intn(4),
				TRP:       1 + r.Intn(60),
				TRCD:      1 + r.Intn(60),
				TCAS:      1 + r.Intn(60),
				BusCycles: 1 + r.Intn(10),
				ReadQueue: 1 + r.Intn(8),
				RowBlocks: 1 + r.Intn(32),
			}
			now := uint64(0)
			seq := make([]DRAMOp, ops)
			for k := range seq {
				// Mostly-increasing request times with occasional bursts at
				// the same cycle (queue pressure) and small back-steps
				// (cores dispatch out of global order).
				switch r.Intn(5) {
				case 0:
				case 1:
					if now > 10 {
						now -= uint64(r.Intn(10))
					}
				default:
					now += uint64(r.Intn(100))
				}
				seq[k] = DRAMOp{Block: r.Uint64() % 4096, Now: now}
			}
			if err := DiffDRAM(cfg, seq); err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
		})
	}
}

// randomMachine draws a scaled-down machine so short traces still thrash
// every level of the hierarchy.
func randomMachine(r *rand.Rand) sim.Config {
	cfg := sim.Config{
		L1Sets: 1 + r.Intn(4), L1Ways: 1 + r.Intn(4), L1Lat: 1 + r.Intn(6),
		L2Sets: 2 + r.Intn(8), L2Ways: 1 + r.Intn(4), L2Lat: 2 + r.Intn(12),
		LLCSets: 4 + r.Intn(16), LLCWays: 1 + r.Intn(8), LLCLat: 4 + r.Intn(20),
		DRAM: sim.DRAMConfig{
			Channels:  1,
			Ranks:     1 + r.Intn(2),
			Banks:     1 + r.Intn(4),
			TRP:       10 + r.Intn(50),
			TRCD:      10 + r.Intn(50),
			TCAS:      10 + r.Intn(50),
			BusCycles: 1 + r.Intn(8),
			ReadQueue: 2 + r.Intn(16),
			RowBlocks: 1 + r.Intn(32),
		},
		Width: 1 + r.Intn(4),
		ROB:   16 << r.Intn(4),
	}
	if r.Intn(2) == 0 {
		cfg.LLCPolicy = sim.PolicySRRIP
	}
	if r.Intn(3) == 0 {
		cfg.PrefetchDropDepth = 1 + r.Intn(8)
	}
	return cfg
}

// randomTrace draws a synthetic load trace: increasing IDs with random
// gaps, addresses clustered over a few pages (reuse plus conflict misses),
// and occasional dependence chains.
func randomTrace(r *rand.Rand, n int) []trace.Access {
	accs := make([]trace.Access, n)
	id := uint64(1 + r.Intn(10))
	pages := 1 + r.Intn(12)
	for k := range accs {
		accs[k] = trace.Access{
			ID:   id,
			PC:   0x400000 + uint64(r.Intn(16))*4,
			Addr: uint64(r.Intn(pages))*trace.PageBytes + uint64(r.Intn(trace.BlocksPerPage))*trace.BlockBytes,
		}
		if r.Intn(6) == 0 {
			accs[k].Chain = uint32(1 + r.Intn(3))
		}
		id += uint64(1 + r.Intn(20))
	}
	return accs
}

// randomPrefetchFile draws prefetch entries keyed (non-decreasing) to the
// trace's instruction IDs, targeting blocks near the trace's pages.
func randomPrefetchFile(r *rand.Rand, accs []trace.Access) []trace.Prefetch {
	var pfs []trace.Prefetch
	for _, a := range accs {
		for r.Intn(3) == 0 {
			delta := int64(r.Intn(2*trace.BlocksPerPage)) - trace.BlocksPerPage
			addr := int64(a.Addr) + delta*trace.BlockBytes
			if addr < 0 {
				addr = 0
			}
			pfs = append(pfs, trace.Prefetch{ID: a.ID, Addr: uint64(addr)})
		}
	}
	return pfs
}

func TestDiffRun(t *testing.T) {
	cases := 60
	loads := 1500
	if testing.Short() {
		cases = 25
		loads = 600
	}
	for i := 0; i < cases; i++ {
		i := i
		t.Run(caseName(i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(4000 + i)))
			cfg := randomMachine(r)
			nCores := 1 + r.Intn(3)
			cores := make([][]trace.Access, nCores)
			pfs := make([][]trace.Prefetch, nCores)
			for c := range cores {
				n := loads/2 + r.Intn(loads/2)
				if r.Intn(20) == 0 {
					n = 0 // an idle core must not perturb the others
				}
				cores[c] = randomTrace(r, n)
				switch r.Intn(3) {
				case 0: // no prefetching
				default:
					pfs[c] = randomPrefetchFile(r, cores[c])
				}
			}
			if r.Intn(2) == 0 {
				min := len(cores[0])
				for _, c := range cores[1:] {
					if len(c) < min {
						min = len(c)
					}
				}
				if min > 10 {
					cfg.Warmup = 1 + r.Intn(min/2)
				}
			}
			if err := DiffRun(cfg, cores, pfs); err != nil {
				t.Fatalf("cfg %+v cores=%d: %v", cfg, nCores, err)
			}
		})
	}
}

// TestDiffRunStream drives the streaming replay pipeline (encode →
// trace.Reader → sim.RunMultiStream) against the reference model over the
// same randomized machine/workload grid as TestDiffRun — the oracle's
// proof that windowed replay is bit-identical to slice replay.
func TestDiffRunStream(t *testing.T) {
	cases := 30
	loads := 1500
	if testing.Short() {
		cases = 12
		loads = 600
	}
	for i := 0; i < cases; i++ {
		i := i
		t.Run(caseName(i), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(9000 + i)))
			cfg := randomMachine(r)
			nCores := 1 + r.Intn(3)
			cores := make([][]trace.Access, nCores)
			pfs := make([][]trace.Prefetch, nCores)
			for c := range cores {
				n := loads/2 + r.Intn(loads/2)
				if r.Intn(20) == 0 {
					n = 0 // an idle core must not perturb the others
				}
				cores[c] = randomTrace(r, n)
				switch r.Intn(3) {
				case 0: // no prefetching
				default:
					pfs[c] = randomPrefetchFile(r, cores[c])
				}
			}
			if r.Intn(2) == 0 {
				min := len(cores[0])
				for _, c := range cores[1:] {
					if len(c) < min {
						min = len(c)
					}
				}
				if min > 10 {
					cfg.Warmup = 1 + r.Intn(min/2)
				}
			}
			if err := DiffRunStream(cfg, cores, pfs); err != nil {
				t.Fatalf("cfg %+v cores=%d: %v", cfg, nCores, err)
			}
		})
	}
}

// TestDiffRunStreamRealWorkload pins the streaming oracle on the actual
// evaluation flow, mirroring TestDiffRunRealWorkload.
func TestDiffRunStreamRealWorkload(t *testing.T) {
	loads := 8000
	if testing.Short() {
		loads = 2000
	}
	for _, name := range []string{"cc-5", "605-mcf-s1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			accs, err := workload.Generate(name, loads, 1)
			if err != nil {
				t.Fatal(err)
			}
			file := prefetch.GenerateFile(&prefetch.NextLine{}, accs, 2)
			cfg := sim.ScaledConfig()
			cfg.Warmup = loads / 10
			if err := DiffRunStream(cfg, [][]trace.Access{accs}, [][]trace.Prefetch{file}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestDiffRunRealWorkload pins the oracle against the actual evaluation
// flow: a generated benchmark trace with a real prefetcher's file, replayed
// on the scaled Table 3 machine.
func TestDiffRunRealWorkload(t *testing.T) {
	loads := 8000
	if testing.Short() {
		loads = 2000
	}
	for _, name := range []string{"cc-5", "605-mcf-s1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			accs, err := workload.Generate(name, loads, 1)
			if err != nil {
				t.Fatal(err)
			}
			file := prefetch.GenerateFile(&prefetch.NextLine{}, accs, 2)
			cfg := sim.ScaledConfig()
			cfg.Warmup = loads / 10
			if err := DiffRun(cfg, [][]trace.Access{accs}, [][]trace.Prefetch{file}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestDiffSNNRealConfig pins the oracle on the paper's Table 4 network at
// full size, over enough learned presentations for weights, thetas and the
// RNG stream to diverge if any fast path is wrong.
func TestDiffSNNRealConfig(t *testing.T) {
	presents := 40
	if testing.Short() {
		presents = 12
	}
	cfg := snn.DefaultConfig(127 * 3)
	r := rand.New(rand.NewSource(7))
	seq := make([]SNNPresent, presents)
	for k := range seq {
		seq[k] = SNNPresent{Pixels: randomPixels(r, cfg.InputSize), Learn: true}
	}
	if err := DiffSNN(cfg, seq); err != nil {
		t.Fatal(err)
	}
}

// TestDiffSNNBitsetWordBoundary pins the regimes the random generator
// rarely reaches but the batched kernels special-case: neuron counts
// straddling the 64-lane bitset word (63/64/65, exercising the word-split
// threshold scans and partial final words), refractory periods outlasting
// the interval (whole mask words live, ticks with no eligible candidate),
// and dense WTA ties (uniform state, every neuron crossing threshold on
// the same tick — the first-candidate tie-break must survive reordering).
func TestDiffSNNBitsetWordBoundary(t *testing.T) {
	presents := 8
	if testing.Short() {
		presents = 4
	}
	for _, n := range []int{63, 64, 65} {
		n := n
		t.Run(fmt.Sprintf("neurons-%d", n), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(9000 + n)))
			cfg := snn.DefaultConfig(32)
			cfg.Neurons = n
			cfg.Ticks = 12
			cfg.RefracE = 3
			cfg.InhHold = 2
			cfg.Seed = int64(n)
			seq := make([]SNNPresent, presents)
			for k := range seq {
				seq[k] = SNNPresent{Pixels: randomPixels(r, cfg.InputSize), Learn: true}
			}
			if err := DiffSNN(cfg, seq); err != nil {
				t.Fatalf("neurons=%d: %v", n, err)
			}
		})
	}
	t.Run("all-refractory", func(t *testing.T) {
		t.Parallel()
		cfg := snn.DefaultConfig(16)
		cfg.Neurons = 65
		cfg.Ticks = 10
		cfg.RefracE = cfg.Ticks + 4 // one fire silences a neuron for the interval
		cfg.FireProb = 1
		cfg.InputGain = 40
		cfg.Seed = 3
		lit := make([]float64, cfg.InputSize)
		for i := range lit {
			lit[i] = 1
		}
		seq := make([]SNNPresent, presents)
		for k := range seq {
			seq[k] = SNNPresent{Pixels: lit, Learn: true}
		}
		if err := DiffSNN(cfg, seq); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dense-ties", func(t *testing.T) {
		t.Parallel()
		cfg := snn.DefaultConfig(24)
		cfg.Neurons = 64
		cfg.Ticks = 8
		cfg.Temporal = true // deterministic spike times: every neuron aligned
		cfg.Exc = 0
		cfg.Inh = 0
		cfg.ThetaPlus = 0
		cfg.InputGain = 30
		cfg.Seed = 5
		lit := make([]float64, cfg.InputSize)
		for i := range lit {
			lit[i] = 1
		}
		seq := make([]SNNPresent, presents)
		for k := range seq {
			seq[k] = SNNPresent{Pixels: lit, Learn: true}
		}
		if err := DiffSNN(cfg, seq); err != nil {
			t.Fatal(err)
		}
	})
}

func caseName(i int) string {
	return "case-" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

// TestDiffRunEmptyMeasuredWindowAgrees pins the empty-measured-window
// error path: both engines must reject a warmup that eats essentially the
// whole trace (one cheap L1-hitting access left), not fabricate an IPC.
func TestDiffRunEmptyMeasuredWindowAgrees(t *testing.T) {
	accs := make([]trace.Access, 100)
	for i := range accs {
		accs[i] = trace.Access{ID: uint64(i + 1), PC: 1, Addr: 0}
	}
	cfg := sim.DefaultConfig()
	cfg.Warmup = len(accs) - 1
	if _, err := sim.RunMulti(cfg, [][]trace.Access{accs}, nil); err == nil {
		t.Fatal("sim accepted an empty measured window")
	}
	if err := DiffRun(cfg, [][]trace.Access{accs}, nil); err != nil {
		t.Fatalf("engines disagree on the empty-window error: %v", err)
	}
}

// TestDiffRunTelemetryOn re-runs the real-workload oracle with the
// simulator's telemetry recording. The reference model is deliberately
// uninstrumented, so any way telemetry could perturb the optimized engine —
// an extra allocation shifting GC, a miscounted stat leaking into Result —
// shows up as a divergence here.
func TestDiffRunTelemetryOn(t *testing.T) {
	reg := telemetry.NewRegistry()
	sim.EnableTelemetry(reg)
	defer sim.EnableTelemetry(nil)

	loads := 8000
	if testing.Short() {
		loads = 2000
	}
	accs, err := workload.Generate("cc-5", loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	file := prefetch.GenerateFile(&prefetch.NextLine{}, accs, 2)
	cfg := sim.ScaledConfig()
	cfg.Warmup = loads / 10
	if err := DiffRun(cfg, [][]trace.Access{accs}, [][]trace.Prefetch{file}); err != nil {
		t.Fatalf("telemetry-on run diverged from reference: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["sim.runs"] == 0 || snap.Counters["sim.demand_loads"] == 0 {
		t.Errorf("telemetry recorded nothing during the differential run: %+v", snap.Counters)
	}
}
