// Package refmodel holds small, deliberately straightforward reference
// implementations of the repository's two hot engines: the spiking neural
// network of internal/snn and the cache/DRAM timing simulator of
// internal/sim.
//
// The optimized engines are refactored aggressively (event-driven tick
// loops, fused passes, heaps, scratch reuse); each rewrite claims to be
// bit-identical to the simple semantics it replaced. This package *is*
// those simple semantics, kept alive as executable oracles: every type here
// favours the obvious data structure (per-tick loops, recency lists, linear
// scans) over speed, and the differential harness in diff.go drives the
// optimized and reference engines over seeded random configurations and
// workloads, asserting bit-identical spike trains, weights, adaptive
// thresholds, hit/miss/fill counts and cycle timings.
//
// Nothing outside tests should import this package for production work —
// it is a correctness tool, not an engine. See docs/testing.md for how the
// oracle, the pfdebug invariant assertions, and the fuzz targets fit
// together.
package refmodel

// rng is a copy of internal/snn's xorshift64* generator. The reference
// network must consume the exact RNG stream the optimized network consumes
// (one draw per active pixel per tick under rate coding), so the generator
// is part of the specification, not an implementation detail.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
