package refmodel

import (
	"bytes"
	"fmt"
	"math"

	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
	"pathfinder/internal/trace"
)

// This file is the differential harness proper: drive the optimized engine
// and the reference model through an identical operation sequence and fail
// on the first divergence, reporting where and what. The Diff* entry points
// are shared by the table-driven seeded-random tests in diff_test.go and
// the fuzz targets in fuzz_test.go.

// SNNPresent is one presentation in an SNN differential scenario.
type SNNPresent struct {
	// Pixels is the input intensity vector (length cfg.InputSize).
	Pixels []float64
	// Learn enables STDP for this presentation.
	Learn bool
	// OneTick presents through the §3.4 1-tick approximation instead of
	// the full interval.
	OneTick bool
}

// DiffSNN builds an optimized snn.Network and a reference SNN from cfg and
// replays the presentation sequence through both, requiring bit-identical
// results (spike counts, winner, first-fire tick) and bit-identical
// observable state (weights, adaptive thresholds, membrane potentials)
// after every presentation. It returns nil if the engines stay identical.
func DiffSNN(cfg snn.Config, presents []SNNPresent) error {
	opt, err := snn.New(cfg)
	refErrCheck, err2 := NewSNN(cfg)
	if (err == nil) != (err2 == nil) {
		return fmt.Errorf("constructor divergence: snn.New err=%v, refmodel.NewSNN err=%v", err, err2)
	}
	if err != nil {
		return nil // both reject the config: agreement
	}
	ref := refErrCheck

	if err := diffSNNState(opt, ref, "after construction"); err != nil {
		return err
	}
	for k, p := range presents {
		var ro, rr snn.Result
		var eo, er error
		if p.OneTick {
			ro, eo = opt.PresentOneTick(p.Pixels, p.Learn)
			rr, er = ref.PresentOneTick(p.Pixels, p.Learn)
		} else {
			ro, eo = opt.Present(p.Pixels, p.Learn)
			rr, er = ref.Present(p.Pixels, p.Learn)
		}
		where := fmt.Sprintf("present %d (learn=%v oneTick=%v)", k, p.Learn, p.OneTick)
		if (eo == nil) != (er == nil) {
			return fmt.Errorf("%s: error divergence: optimized %v, reference %v", where, eo, er)
		}
		if eo != nil {
			continue
		}
		if ro.Winner != rr.Winner {
			return fmt.Errorf("%s: winner %d, reference %d", where, ro.Winner, rr.Winner)
		}
		if ro.FirstFireTick != rr.FirstFireTick {
			return fmt.Errorf("%s: first fire tick %d, reference %d", where, ro.FirstFireTick, rr.FirstFireTick)
		}
		if len(ro.Spikes) != len(rr.Spikes) {
			return fmt.Errorf("%s: %d spike counts, reference %d", where, len(ro.Spikes), len(rr.Spikes))
		}
		for j := range ro.Spikes {
			if ro.Spikes[j] != rr.Spikes[j] {
				return fmt.Errorf("%s: neuron %d spiked %d times, reference %d", where, j, ro.Spikes[j], rr.Spikes[j])
			}
		}
		if err := diffSNNState(opt, ref, where); err != nil {
			return err
		}
	}
	return nil
}

// diffSNNState requires bit-identical weights, thetas and excitatory
// potentials between the two networks.
func diffSNNState(opt *snn.Network, ref *SNN, where string) error {
	cfg := opt.Config()
	for j := 0; j < cfg.Neurons; j++ {
		if o, r := opt.Theta(j), ref.Theta(j); o != r {
			return fmt.Errorf("%s: theta[%d] = %v, reference %v (diff %g)", where, j, o, r, o-r)
		}
	}
	for i := 0; i < cfg.InputSize; i++ {
		for j := 0; j < cfg.Neurons; j++ {
			if o, r := opt.Weight(i, j), ref.Weight(i, j); o != r {
				return fmt.Errorf("%s: w[%d][%d] = %v, reference %v (diff %g)", where, i, j, o, r, o-r)
			}
		}
	}
	vo, vr := opt.Potentials(), ref.Potentials()
	for j := range vo {
		if vo[j] != vr[j] && !(math.IsNaN(vo[j]) && math.IsNaN(vr[j])) {
			return fmt.Errorf("%s: vE[%d] = %v, reference %v (diff %g)", where, j, vo[j], vr[j], vo[j]-vr[j])
		}
	}
	return nil
}

// CacheOpKind selects a cache operation in a differential scenario.
type CacheOpKind uint8

const (
	// CacheLookup is a demand lookup.
	CacheLookup CacheOpKind = iota
	// CacheFillDemand fills a block as a demand fill.
	CacheFillDemand
	// CacheFillPrefetch fills a block as a prefetch fill.
	CacheFillPrefetch
	// CacheContains is a residency probe.
	CacheContains
	// CacheResetStats clears the hit/miss counters.
	CacheResetStats
	// CacheReset invalidates the whole cache.
	CacheReset

	numCacheOpKinds
)

// CacheOp is one operation of a cache differential scenario.
type CacheOp struct {
	Kind  CacheOpKind
	Block uint64
}

// DiffCache replays ops against a sim.Cache and a reference Cache with the
// same geometry and policy, requiring identical results (hit flags,
// prefetch first-touch flags, evicted blocks) and identical counters after
// every operation.
func DiffCache(sets, ways int, policy sim.Policy, ops []CacheOp) error {
	opt := sim.NewCacheWithPolicy(sets, ways, policy)
	ref := NewCacheWithPolicy(sets, ways, policy)
	for k, op := range ops {
		where := fmt.Sprintf("op %d (%d block %d)", k, op.Kind, op.Block)
		switch op.Kind {
		case CacheLookup:
			h1, p1 := opt.Lookup(op.Block)
			h2, p2 := ref.Lookup(op.Block)
			if h1 != h2 || p1 != p2 {
				return fmt.Errorf("%s: lookup (%v,%v), reference (%v,%v)", where, h1, p1, h2, p2)
			}
		case CacheFillDemand, CacheFillPrefetch:
			pf := op.Kind == CacheFillPrefetch
			e1, h1 := opt.Fill(op.Block, pf)
			e2, h2 := ref.Fill(op.Block, pf)
			if h1 != h2 || (h1 && e1 != e2) {
				return fmt.Errorf("%s: fill evicted (%d,%v), reference (%d,%v)", where, e1, h1, e2, h2)
			}
		case CacheContains:
			if c1, c2 := opt.Contains(op.Block), ref.Contains(op.Block); c1 != c2 {
				return fmt.Errorf("%s: contains %v, reference %v", where, c1, c2)
			}
		case CacheResetStats:
			opt.ResetStats()
			ref.ResetStats()
		case CacheReset:
			opt.Reset()
			ref.Reset()
		}
		if opt.CacheStats != ref.CacheStats {
			return fmt.Errorf("%s: stats %+v, reference %+v",
				where, opt.CacheStats, ref.CacheStats)
		}
	}
	return nil
}

// DRAMOp is one request of a DRAM differential scenario.
type DRAMOp struct {
	Block uint64
	Now   uint64
}

// DiffDRAM replays a request stream against a sim.DRAM and a reference DRAM
// with the same configuration, requiring identical completion cycles, queue
// depths and counters after every access.
func DiffDRAM(cfg sim.DRAMConfig, ops []DRAMOp) error {
	opt := sim.NewDRAM(cfg)
	ref := NewDRAM(cfg)
	for k, op := range ops {
		d1 := opt.Access(op.Block, op.Now)
		d2 := ref.Access(op.Block, op.Now)
		if d1 != d2 {
			return fmt.Errorf("op %d (block %d now %d): completion %d, reference %d", k, op.Block, op.Now, d1, d2)
		}
		if q1, q2 := opt.QueueDepth(op.Now), ref.QueueDepth(op.Now); q1 != q2 {
			return fmt.Errorf("op %d: queue depth %d, reference %d", k, q1, q2)
		}
		if opt.Reads != ref.Reads || opt.RowHits != ref.RowHits {
			return fmt.Errorf("op %d: reads/rowhits %d/%d, reference %d/%d",
				k, opt.Reads, opt.RowHits, ref.Reads, ref.RowHits)
		}
	}
	return nil
}

// DiffRun replays the same multi-core workload through sim.RunMulti and the
// reference RunMulti, requiring every field of every per-core Result —
// cycle counts, the IPC bits, and all cache/prefetch/DRAM counters — to be
// identical.
func DiffRun(cfg sim.Config, cores [][]trace.Access, pfs [][]trace.Prefetch) error {
	r1, e1 := sim.RunMulti(cfg, cores, pfs)
	r2, e2 := RunMulti(cfg, cores, pfs)
	if (e1 == nil) != (e2 == nil) {
		return fmt.Errorf("error divergence: sim %v, refmodel %v", e1, e2)
	}
	if e1 != nil {
		return nil
	}
	if len(r1) != len(r2) {
		return fmt.Errorf("%d results, reference %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			return fmt.Errorf("core %d: result %+v, reference %+v", i, r1[i], r2[i])
		}
	}
	return nil
}

// DiffRunStream is DiffRun over the streaming replay pipeline end to end:
// each core's trace is encoded to the unbounded binary container, decoded
// back through the streaming trace.Reader, and replayed by
// sim.RunMultiStream, with the reference model still fed the slices. Any
// divergence anywhere in encode → stream-decode → windowed replay — a
// record mangled by the codec, a window-boundary artifact in the
// scheduler — shows up as a Result mismatch.
func DiffRunStream(cfg sim.Config, cores [][]trace.Access, pfs [][]trace.Prefetch) error {
	srcs := make([]trace.Source, len(cores))
	for i, accs := range cores {
		var buf bytes.Buffer
		if err := trace.Encode(&buf, trace.NewSliceSource(accs)); err != nil {
			return fmt.Errorf("core %d: encoding trace stream: %w", i, err)
		}
		rd, err := trace.NewReader(&buf)
		if err != nil {
			return fmt.Errorf("core %d: opening trace stream: %w", i, err)
		}
		srcs[i] = rd
	}
	r1, e1 := sim.RunMultiStream(cfg, srcs, pfs)
	r2, e2 := RunMulti(cfg, cores, pfs)
	if (e1 == nil) != (e2 == nil) {
		return fmt.Errorf("error divergence: sim stream %v, refmodel %v", e1, e2)
	}
	if e1 != nil {
		return nil
	}
	if len(r1) != len(r2) {
		return fmt.Errorf("%d results, reference %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			return fmt.Errorf("core %d: streamed result %+v, reference %+v", i, r1[i], r2[i])
		}
	}
	return nil
}
