package refmodel

import (
	"fmt"
	"math"

	"pathfinder/internal/snn"
)

// SNN is the reference Diehl & Cook network: the straightforward per-tick
// LIF/STDP loop the event-driven engine in internal/snn replaced. It shares
// snn.Config and snn.Result and presents the same Present/PresentOneTick
// API, so the differential harness can drive both networks through
// identical call sequences. Every loop below does the obvious thing, one
// tick at a time, allocating freely; bit-identity to internal/snn is the
// property under test, not a coincidence.
type SNN struct {
	cfg snn.Config

	w     []float64 // input→excitatory weights, row-major [input][neuron]
	theta []float64 // adaptive threshold offsets

	vE      []float64
	vI      []float64
	refracE []int
	refracI []int

	xPre     []float64
	xPreTick []int
	xPost    []float64

	decayE, decayI, decayTrace, decayTheta float64

	rand *rng

	spikeCounts []int
	tick        int
}

// NewSNN constructs a reference network. It mirrors snn.New exactly,
// including the RNG draw order of the weight initialisation, so a reference
// and an optimized network built from the same config start bit-identical.
func NewSNN(cfg snn.Config) (*SNN, error) {
	if cfg.InputSize <= 0 || cfg.Neurons <= 0 {
		return nil, fmt.Errorf("refmodel: input size %d and neurons %d must be positive", cfg.InputSize, cfg.Neurons)
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("refmodel: ticks %d must be positive", cfg.Ticks)
	}
	if cfg.FireProb <= 0 || cfg.FireProb > 1 {
		return nil, fmt.Errorf("refmodel: fire probability %v outside (0, 1]", cfg.FireProb)
	}
	if cfg.InputGain <= 0 {
		return nil, fmt.Errorf("refmodel: input gain %v must be positive", cfg.InputGain)
	}
	n := &SNN{
		cfg:         cfg,
		w:           make([]float64, cfg.InputSize*cfg.Neurons),
		theta:       make([]float64, cfg.Neurons),
		vE:          make([]float64, cfg.Neurons),
		vI:          make([]float64, cfg.Neurons),
		refracE:     make([]int, cfg.Neurons),
		refracI:     make([]int, cfg.Neurons),
		xPre:        make([]float64, cfg.InputSize),
		xPreTick:    make([]int, cfg.InputSize),
		xPost:       make([]float64, cfg.Neurons),
		spikeCounts: make([]int, cfg.Neurons),
		decayE:      math.Exp(-1 / cfg.TCDecayE),
		decayI:      math.Exp(-1 / cfg.TCDecayI),
		decayTrace:  math.Exp(-1 / cfg.TraceTC),
		decayTheta:  1,
		rand:        newRNG(cfg.Seed),
	}
	if cfg.TCTheta > 0 {
		n.decayTheta = math.Exp(-float64(cfg.Ticks) / cfg.TCTheta)
	}
	for i := range n.w {
		n.w[i] = 0.3 * cfg.WMax * n.rand.float64()
	}
	for j := range n.vE {
		n.vE[j] = cfg.RestE
		n.vI[j] = cfg.RestI
	}
	n.normalize()
	return n, nil
}

// Config returns the network's configuration.
func (n *SNN) Config() snn.Config { return n.cfg }

// Weight returns the weight between input i and excitatory neuron j.
func (n *SNN) Weight(i, j int) float64 { return n.w[i*n.cfg.Neurons+j] }

// Theta returns neuron j's adaptive threshold offset.
func (n *SNN) Theta(j int) float64 { return n.theta[j] }

// Potentials returns a copy of the excitatory membrane potentials.
func (n *SNN) Potentials() []float64 {
	out := make([]float64, len(n.vE))
	copy(out, n.vE)
	return out
}

// InhPotentials returns a copy of the inhibitory membrane potentials (the
// optimized engine does not export these; the harness compares them through
// the spike trains they produce).
func (n *SNN) InhPotentials() []float64 {
	out := make([]float64, len(n.vI))
	copy(out, n.vI)
	return out
}

// Present runs one input interval of cfg.Ticks ticks, tick by tick, with no
// event-driven shortcuts: every tick decays every potential, draws every
// Poisson sample, scans every neuron for threshold crossings, and applies
// STDP in the BindsNet order. Semantics are documented on snn.Present.
func (n *SNN) Present(pixels []float64, learn bool) (snn.Result, error) {
	if len(pixels) != n.cfg.InputSize {
		return snn.Result{}, fmt.Errorf("refmodel: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	n.resetState()
	for j := range n.theta {
		n.theta[j] *= n.decayTheta
	}

	active := make([]int, 0, 32)
	for i, p := range pixels {
		if p > 0 {
			active = append(active, i)
		}
	}

	res := snn.Result{Winner: -1}
	inhHold := make([]int, n.cfg.Neurons)
	excSpiked := make([]bool, n.cfg.Neurons)
	preSpikes := make([]int, 0, len(active))
	// firedList accumulates the distinct neurons that fired this interval,
	// in first-fire order — the order STDP depression and normalisation
	// visit their columns in.
	firedList := make([]int, 0, 8)

	for t := 1; t <= n.cfg.Ticks; t++ {
		n.tick++
		// 1. Input spikes for this tick: Poisson rate coding by default
		// (one RNG draw per active pixel, in ascending pixel order), or
		// one deterministic spike per pixel under temporal coding.
		preSpikes = preSpikes[:0]
		if n.cfg.Temporal {
			for _, i := range active {
				spikeTick := 1 + int((1-pixels[i])*float64(n.cfg.Ticks-1))
				if spikeTick == t {
					preSpikes = append(preSpikes, i)
				}
			}
		} else {
			for _, i := range active {
				if n.rand.float64() < n.cfg.FireProb*pixels[i] {
					preSpikes = append(preSpikes, i)
				}
			}
		}

		// 2. Excitatory layer: leak, integrate, inhibit, fire.
		nn := n.cfg.Neurons
		for j := 0; j < nn; j++ {
			n.vE[j] = n.cfg.RestE + (n.vE[j]-n.cfg.RestE)*n.decayE
			n.xPost[j] *= n.decayTrace
		}
		gain := n.cfg.InputGain
		if n.cfg.Temporal {
			gain *= float64(n.cfg.Ticks) * n.cfg.FireProb
		}
		for _, i := range preSpikes {
			row := n.w[i*nn : (i+1)*nn]
			for j := 0; j < nn; j++ {
				n.vE[j] += gain * row[j]
			}
		}
		// Sustained lateral inhibition from inhibitory neurons that fired
		// within the last InhHold ticks (a neuron is not inhibited by its
		// own partner).
		holdCount := 0
		for k := 0; k < nn; k++ {
			if inhHold[k] > 0 {
				holdCount++
			}
		}
		if holdCount > 0 {
			for j := 0; j < nn; j++ {
				others := holdCount
				if inhHold[j] > 0 {
					others--
				}
				n.vE[j] -= n.cfg.Inh * float64(others)
			}
		}
		for k := 0; k < nn; k++ {
			if inhHold[k] > 0 {
				inhHold[k]--
			}
		}
		for j := 0; j < nn; j++ {
			excSpiked[j] = false
			if n.refracE[j] > 0 {
				n.refracE[j]--
				n.vE[j] = n.cfg.ResetE
			}
		}
		// Winner-take-all fire loop with immediate same-tick inhibition.
		for {
			best := -1
			for j := 0; j < nn; j++ {
				if excSpiked[j] || n.refracE[j] > 0 {
					continue
				}
				if n.vE[j] >= n.cfg.ThreshE+n.theta[j] {
					if best < 0 || n.vE[j] > n.vE[best] {
						best = j
					}
				}
			}
			if best < 0 {
				break
			}
			excSpiked[best] = true
			n.vE[best] = n.cfg.ResetE
			n.refracE[best] = n.cfg.RefracE
			n.theta[best] += n.cfg.ThetaPlus
			if n.spikeCounts[best] == 0 {
				firedList = append(firedList, best)
			}
			n.spikeCounts[best]++
			n.xPost[best] = 1
			if res.FirstFireTick == 0 {
				res.FirstFireTick = t
			}
			for j := 0; j < nn; j++ {
				if j != best && !excSpiked[j] {
					n.vE[j] -= n.cfg.Inh
				}
			}
		}

		// 3. STDP: depress on pre spikes (against post traces), potentiate
		// on post spikes (against pre traces).
		if learn && len(firedList) > 0 {
			for _, i := range preSpikes {
				row := n.w[i*nn : (i+1)*nn]
				for _, j := range firedList {
					dep := n.cfg.NuPre * n.xPost[j]
					if n.cfg.WeightDependent {
						dep *= row[j] / n.cfg.WMax
					}
					w := row[j] - dep
					if w < 0 {
						w = 0
					}
					row[j] = w
				}
			}
		}
		for _, i := range preSpikes {
			n.decayPreTrace(i)
			n.xPre[i] = 1
		}
		if learn {
			for j := 0; j < nn; j++ {
				if !excSpiked[j] {
					continue
				}
				for _, i := range active {
					n.decayPreTrace(i)
					idx := i*nn + j
					pot := n.cfg.NuPost * n.xPre[i]
					if n.cfg.WeightDependent {
						pot *= (n.cfg.WMax - n.w[idx]) / n.cfg.WMax
					}
					w := n.w[idx] + pot
					if w > n.cfg.WMax {
						w = n.cfg.WMax
					}
					n.w[idx] = w
				}
			}
		}

		// 4. Inhibitory layer, driven one-to-one by excitatory spikes.
		for j := 0; j < nn; j++ {
			n.vI[j] = n.cfg.RestI + (n.vI[j]-n.cfg.RestI)*n.decayI
			if excSpiked[j] {
				n.vI[j] += n.cfg.Exc
			}
			if n.refracI[j] > 0 {
				n.refracI[j]--
				n.vI[j] = n.cfg.ResetI
				continue
			}
			if n.vI[j] >= n.cfg.ThreshI {
				n.vI[j] = n.cfg.ResetI
				n.refracI[j] = n.cfg.RefracI
				if n.cfg.InhHold > inhHold[j] {
					inhHold[j] = n.cfg.InhHold
				}
			}
		}
	}

	if learn && len(firedList) > 0 {
		n.normalizeNeurons(firedList)
	}

	best := -1
	for j, c := range n.spikeCounts {
		if c > 0 && (best < 0 || c > n.spikeCounts[best]) {
			best = j
		}
	}
	res.Winner = best
	out := make([]int, len(n.spikeCounts))
	copy(out, n.spikeCounts)
	res.Spikes = out
	return res, nil
}

// PresentOneTick is the reference form of the §3.4 1-tick approximation;
// see snn.PresentOneTick.
func (n *SNN) PresentOneTick(pixels []float64, learn bool) (snn.Result, error) {
	if len(pixels) != n.cfg.InputSize {
		return snn.Result{}, fmt.Errorf("refmodel: input length %d, want %d", len(pixels), n.cfg.InputSize)
	}
	nn := n.cfg.Neurons
	for j := range n.theta {
		n.theta[j] *= n.decayTheta
	}
	best := n.rankOneTick(pixels)
	res := snn.Result{Spikes: make([]int, nn), Winner: best, FirstFireTick: 1}
	if best >= 0 {
		res.Spikes[best] = 1
	}
	if learn && best >= 0 {
		n.theta[best] += n.cfg.ThetaPlus
		for i, p := range pixels {
			if p <= 0 {
				continue
			}
			idx := i*nn + best
			w := n.w[idx] + n.cfg.NuPost*p
			if w > n.cfg.WMax {
				w = n.cfg.WMax
			}
			n.w[idx] = w
		}
		n.normalizeNeurons([]int{best})
	}
	return res, nil
}

// rankOneTick mirrors snn's expected-potential ranking without mutating
// network state.
func (n *SNN) rankOneTick(pixels []float64) int {
	nn := n.cfg.Neurons
	pot := make([]float64, nn)
	for i, p := range pixels {
		if p <= 0 {
			continue
		}
		row := n.w[i*nn : (i+1)*nn]
		scale := n.cfg.FireProb * n.cfg.InputGain * p
		for j := 0; j < nn; j++ {
			pot[j] += scale * row[j]
		}
	}
	best := -1
	bestRate := math.Inf(-1)
	climb := n.cfg.ThreshE - n.cfg.RestE
	for j := 0; j < nn; j++ {
		rate := pot[j] / (climb + n.theta[j])
		if rate > bestRate {
			bestRate = rate
			best = j
		}
	}
	return best
}

func (n *SNN) decayPreTrace(i int) {
	dt := n.tick - n.xPreTick[i]
	if dt > 0 && n.xPre[i] != 0 {
		n.xPre[i] *= math.Pow(n.decayTrace, float64(dt))
		if n.xPre[i] < 1e-12 {
			n.xPre[i] = 0
		}
	}
	n.xPreTick[i] = n.tick
}

func (n *SNN) resetState() {
	for j := range n.vE {
		n.vE[j] = n.cfg.RestE
		n.vI[j] = n.cfg.RestI
		n.refracE[j] = 0
		n.refracI[j] = 0
		n.xPost[j] = 0
		n.spikeCounts[j] = 0
	}
	for i := range n.xPre {
		n.xPre[i] = 0
		n.xPreTick[i] = n.tick
	}
}

func (n *SNN) normalize() {
	all := make([]int, n.cfg.Neurons)
	for j := range all {
		all[j] = j
	}
	n.normalizeNeurons(all)
}

func (n *SNN) normalizeNeurons(neurons []int) {
	nn := n.cfg.Neurons
	for _, j := range neurons {
		sum := 0.0
		for i := 0; i < n.cfg.InputSize; i++ {
			sum += n.w[i*nn+j]
		}
		if sum <= 0 {
			continue
		}
		scale := n.cfg.Norm / sum
		for i := 0; i < n.cfg.InputSize; i++ {
			w := n.w[i*nn+j] * scale
			if w > n.cfg.WMax {
				w = n.cfg.WMax
			}
			n.w[i*nn+j] = w
		}
	}
}
