package refmodel

import "pathfinder/internal/sim"

// DRAM is the reference main-memory model: the same FCFS open-row
// semantics as sim.DRAM, with the read-queue occupancy kept in a plain
// slice scanned linearly instead of a heap. Bank mapping, row-hit/row-miss
// latency composition and queue-full stalling follow sim.DRAM.Access
// operation for operation.
type DRAM struct {
	cfg         sim.DRAMConfig
	banks       []refBank
	outstanding []uint64 // completion cycles of in-flight reads, unordered

	// Reads counts all requests; RowHits counts open-row hits.
	Reads   uint64
	RowHits uint64
}

type refBank struct {
	readyAt uint64
	openRow uint64
	hasRow  bool
}

// NewDRAM returns a reference DRAM model.
func NewDRAM(cfg sim.DRAMConfig) *DRAM {
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	if n <= 0 {
		panic("refmodel: DRAM must have at least one bank")
	}
	if cfg.ReadQueue <= 0 {
		panic("refmodel: DRAM read queue must be positive")
	}
	return &DRAM{cfg: cfg, banks: make([]refBank, n)}
}

// drain removes every outstanding completion at or before cycle t.
func (d *DRAM) drain(t uint64) {
	kept := d.outstanding[:0]
	for _, c := range d.outstanding {
		if c > t {
			kept = append(kept, c)
		}
	}
	d.outstanding = kept
}

// minOutstanding returns the earliest outstanding completion cycle.
func (d *DRAM) minOutstanding() uint64 {
	min := d.outstanding[0]
	for _, c := range d.outstanding[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// Access issues a read for block at time now and returns its completion
// cycle; semantics match sim.DRAM.Access.
func (d *DRAM) Access(block uint64, now uint64) uint64 {
	d.Reads++
	d.drain(now)
	start := now
	if len(d.outstanding) >= d.cfg.ReadQueue {
		start = d.minOutstanding()
		d.drain(start)
	}

	row := block / uint64(d.cfg.RowBlocks)
	bank := &d.banks[row%uint64(len(d.banks))]
	if bank.readyAt > start {
		start = bank.readyAt
	}
	var lat, busy int
	if bank.hasRow && bank.openRow == row {
		lat = d.cfg.TCAS
		busy = d.cfg.BusCycles
		d.RowHits++
	} else {
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		busy = d.cfg.TRP + d.cfg.TRCD + d.cfg.BusCycles
		bank.openRow = row
		bank.hasRow = true
	}
	done := start + uint64(lat)
	bank.readyAt = start + uint64(busy)
	d.outstanding = append(d.outstanding, done)
	return done
}

// QueueDepth returns the number of requests still outstanding at time now.
func (d *DRAM) QueueDepth(now uint64) int {
	n := 0
	for _, c := range d.outstanding {
		if c > now {
			n++
		}
	}
	return n
}

// Reset clears all bank state and statistics.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = refBank{}
	}
	d.outstanding = d.outstanding[:0]
	d.Reads, d.RowHits = 0, 0
}
