package refmodel

import (
	"testing"

	"pathfinder/internal/sim"
	"pathfinder/internal/snn"
)

// Native fuzz targets over the differential oracle: the fuzzer explores
// configuration and workload space, and any panic (in either engine, or in
// a pfdebug invariant assertion when built with -tags pfdebug) or bit
// divergence between optimized engine and reference model is a finding.
// Seed corpora live under testdata/fuzz/; `make fuzz-short` gives each
// target a brief budget with the invariant assertions enabled.

// byteStream doles out fuzz bytes, yielding zeros once exhausted so any
// input prefix is a complete scenario.
type byteStream struct {
	b []byte
	i int
}

func (s *byteStream) next() byte {
	if s.i >= len(s.b) {
		return 0
	}
	v := s.b[s.i]
	s.i++
	return v
}

// FuzzPresent derives an SNN configuration and a presentation sequence from
// the fuzz input and requires the optimized snn.Network and the reference
// per-tick loop to stay bit-identical throughout.
func FuzzPresent(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(42), []byte{8, 3, 16, 50, 8, 20, 18, 4, 30, 5, 1, 2, 5, 10, 1, 0, 2, 1, 0, 200, 100, 0, 50, 255, 1})
	f.Add(int64(7), []byte{24, 7, 31, 99, 39, 29, 39, 5, 39, 19, 2, 15, 29, 11, 0, 1, 4, 3, 11, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// 64 neurons (one full bitset word) with RefracE = Ticks+3: every
	// firing neuron stays refractory for the rest of the interval.
	f.Add(int64(11), []byte{16, 136, 10, 90, 20, 10, 4, 2, 20, 5, 1, 3, 7, 12, 0, 1, 131, 1, 5,
		255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1, 0})
	// 65 neurons (straddling the word), temporal coding, zero excitation
	// and inhibition, uniformly lit input: dense WTA ties every tick.
	f.Add(int64(13), []byte{24, 137, 8, 100, 40, 0, 0, 0, 10, 0, 0, 0, 0, 10, 1, 0, 0, 0, 0,
		255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255,
		255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1, 0})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		s := &byteStream{b: data}
		cfg := snn.DefaultConfig(1 + int(s.next())%24)
		nb := int(s.next())
		cfg.Neurons = 1 + nb%8
		if nb >= 128 {
			// High-bit regime: neuron counts straddling the 64-lane bitset
			// word of the batched kernels (fired/refractory masks, the
			// word-split threshold scans).
			cfg.Neurons = 58 + nb%13
		}
		cfg.Ticks = 1 + int(s.next())%16
		cfg.FireProb = float64(1+int(s.next())%100) / 100
		cfg.InputGain = 0.25 * float64(1+int(s.next())%40)
		cfg.Exc = float64(int(s.next()) % 30)
		cfg.Inh = float64(int(s.next())%40) - 8 // occasionally negative
		cfg.InhHold = int(s.next()) % 6
		cfg.Norm = float64(1 + int(s.next())%40)
		cfg.ThetaPlus = float64(int(s.next())%20) / 100
		cfg.TCTheta = float64(int(s.next())%3) * 2000 // 0 disables decay
		cfg.NuPre = float64(int(s.next())%16) / 1000
		cfg.NuPost = float64(int(s.next())%16) / 100
		cfg.TraceTC = float64(1 + int(s.next())%30)
		cfg.Temporal = s.next()&1 == 1
		cfg.WeightDependent = s.next()&1 == 1
		re := int(s.next())
		cfg.RefracE = re % 5
		if re >= 128 {
			// All-refractory regime: periods outlasting the interval pile
			// every firing neuron into the refractory mask at once, so
			// whole mask words go live and ticks run with no eligible
			// candidates.
			cfg.RefracE = cfg.Ticks + re%8
		}
		cfg.RefracI = int(s.next()) % 4
		// ResetE in [-60, -49) straddles ThreshE (-52), reaching the
		// fastOK-breaking reset-above-threshold regime.
		cfg.ResetE = -60 + float64(int(s.next())%12)
		cfg.Seed = seed

		var presents []SNNPresent
		for k := 0; k < 4 && s.i < len(s.b); k++ {
			px := make([]float64, cfg.InputSize)
			for i := range px {
				px[i] = float64(s.next()) / 255
			}
			presents = append(presents, SNNPresent{
				Pixels:  px,
				Learn:   s.next()&1 == 1,
				OneTick: s.next()&3 == 3,
			})
		}
		if err := DiffSNN(cfg, presents); err != nil {
			t.Fatalf("config %+v\ndivergence: %v", cfg, err)
		}
	})
}

// FuzzCacheAccess derives a cache geometry and an operation stream from the
// fuzz input and requires sim.Cache and the reference Cache to agree on
// every hit, eviction and counter; under -tags pfdebug the optimized
// cache's LRU-stack assertions run on every operation as well.
func FuzzCacheAccess(f *testing.F) {
	f.Add(uint64(0x0101), []byte{})
	f.Add(uint64(0x0402), []byte{0, 1, 1, 2, 0, 1, 2, 3, 1, 1, 3, 2, 0, 9, 5, 1})
	f.Add(uint64(0x0803|1<<16), []byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 0, 1, 0, 2, 0, 3, 2, 1, 4, 0, 0, 5})
	// Big-associativity seeds around the packed-recency boundary: 16 ways
	// (the last packed geometry) and 18 ways (the linked-list fallback).
	f.Add(uint64(0x0104|1<<17), []byte{0, 1, 1, 2, 0, 3, 2, 4, 1, 5, 3, 6, 0, 7, 5, 8, 0, 9, 1, 10})
	f.Add(uint64(0x0304|1<<17), []byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 0, 1, 0, 2, 2, 3, 4, 4})
	f.Fuzz(func(t *testing.T, geom uint64, data []byte) {
		sets := 1 + int(geom)%8
		ways := 1 + int(geom>>8)%8
		if geom>>17&1 == 1 {
			// Straddle the 16-way packed-recency boundary: ways 15..22
			// cover the last SWAR-packed geometries and the linked-list
			// fallback on either side.
			ways = 15 + int(geom>>8)%8
		}
		policy := sim.PolicyLRU
		if geom>>16&1 == 1 {
			policy = sim.PolicySRRIP
		}
		space := uint64(sets*ways*3 + 1)
		var ops []CacheOp
		for i := 0; i+1 < len(data); i += 2 {
			ops = append(ops, CacheOp{
				Kind:  CacheOpKind(data[i]) % numCacheOpKinds,
				Block: uint64(data[i+1]) % space,
			})
		}
		if err := DiffCache(sets, ways, policy, ops); err != nil {
			t.Fatalf("sets=%d ways=%d policy=%d: %v", sets, ways, policy, err)
		}
	})
}
