// Package profiling wires runtime/pprof into the command-line tools: the
// -cpuprofile/-memprofile flags of cmd/experiments and cmd/pfsim funnel
// through Start. docs/performance.md shows how to analyze the output with
// `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap (allocs)
// profile to be written to memPath when the returned stop function runs.
// Either path may be empty to disable that profile. stop is idempotent; it
// must run before the process exits or the CPU profile is truncated and
// the heap profile never written.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			runtime.GC() // settle the live heap before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
