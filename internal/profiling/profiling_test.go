package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	stop()
	stop() // idempotent
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
