package serve

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// serveMetrics is the package's bound telemetry handles: the serving-path
// catalogue of docs/observability.md. Everything is recorded off the
// simulation hot paths (admission, workers, connection writers), so the
// determinism suites are untouched by enabling it.
type serveMetrics struct {
	sessions      *telemetry.Gauge   // resident sessions
	sessionsPeak  *telemetry.Gauge   // high-water mark of resident sessions
	sessionsTotal *telemetry.Counter // sessions ever created
	evicted       *telemetry.Counter // idle sessions evicted by LRU pressure
	spilled       *telemetry.Counter // evicted sessions snapshotted into the spill ring
	restored      *telemetry.Counter // sessions rebuilt from a spilled snapshot
	restoreErrors *telemetry.Counter // snapshots that failed to restore (fresh fallback)
	conns         *telemetry.Gauge   // open client connections
	connsTotal    *telemetry.Counter // connections ever accepted

	accepted       *telemetry.Counter   // events admitted into session queues
	shed           *telemetry.Counter   // events rejected, any code
	shedQueueFull  *telemetry.Counter   // ... because the session queue was full (or wedged)
	shedMaxSess    *telemetry.Counter   // ... because the session table was full
	shedOverload   *telemetry.Counter   // ... because the global in-flight cap was hit
	shedDraining   *telemetry.Counter   // ... because the server was draining
	shedStale      *telemetry.Counter   // ... duplicate of an already-accepted id
	shedBad        *telemetry.Counter   // ... malformed request
	queueDepth     *telemetry.Histogram // session queue depth at each acceptance
	queueDepthPeak *telemetry.Gauge     // high-water mark of any session queue
	outDepthPeak   *telemetry.Gauge     // high-water mark of any outbound queue
	latency        *telemetry.Histogram // accept-to-reply-written latency (ns)
	dropped        *telemetry.Counter   // predictions dropped on a dead connection

	frames      *telemetry.Counter // frames parsed
	frameErrors *telemetry.Counter // malformed frames / protocol violations
	evals       *telemetry.Counter // evaluation jobs started
	evalErrors  *telemetry.Counter // evaluation jobs failed
}

// shedFor maps a reject code to its dedicated counter.
func (m *serveMetrics) shedFor(code byte) *telemetry.Counter {
	switch code {
	case RejectQueueFull:
		return m.shedQueueFull
	case RejectMaxSessions:
		return m.shedMaxSess
	case RejectOverloaded:
		return m.shedOverload
	case RejectDraining:
		return m.shedDraining
	case RejectStale:
		return m.shedStale
	}
	return m.shedBad
}

var serveTele atomic.Pointer[serveMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		serveTele.Store(nil)
		return
	}
	serveTele.Store(&serveMetrics{
		sessions:       r.Gauge("serve.sessions"),
		sessionsPeak:   r.Gauge("serve.sessions_peak"),
		sessionsTotal:  r.Counter("serve.sessions_total"),
		evicted:        r.Counter("serve.sessions_evicted"),
		spilled:        r.Counter("serve.sessions_spilled"),
		restored:       r.Counter("serve.sessions_restored"),
		restoreErrors:  r.Counter("serve.session_restore_errors"),
		conns:          r.Gauge("serve.conns"),
		connsTotal:     r.Counter("serve.conns_total"),
		accepted:       r.Counter("serve.events_accepted"),
		shed:           r.Counter("serve.shed"),
		shedQueueFull:  r.Counter("serve.shed_queue_full"),
		shedMaxSess:    r.Counter("serve.shed_max_sessions"),
		shedOverload:   r.Counter("serve.shed_overloaded"),
		shedDraining:   r.Counter("serve.shed_draining"),
		shedStale:      r.Counter("serve.shed_stale"),
		shedBad:        r.Counter("serve.shed_bad_request"),
		queueDepth:     r.Histogram("serve.queue_depth"),
		queueDepthPeak: r.Gauge("serve.queue_depth_peak"),
		outDepthPeak:   r.Gauge("serve.out_depth_peak"),
		latency:        r.Histogram("serve.latency_ns"),
		dropped:        r.Counter("serve.replies_dropped"),
		frames:         r.Counter("serve.frames"),
		frameErrors:    r.Counter("serve.frame_errors"),
		evals:          r.Counter("serve.evals"),
		evalErrors:     r.Counter("serve.eval_errors"),
	})
}
