package serve

import (
	"testing"

	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
)

// sendAndCollect drives accs through one session synchronously (one
// reply read per event sent) and returns the prediction stream.
func sendAndCollect(t *testing.T, c *testConn, sid uint64, accs []trace.Access) [][]uint64 {
	t.Helper()
	out := make([][]uint64, 0, len(accs))
	for _, a := range accs {
		if err := c.writeEvent(sid, a); err != nil {
			t.Fatalf("write event %d: %v", a.ID, err)
		}
		f := c.mustRead()
		if f.Kind != FramePredict || f.Session != sid || f.ID != a.ID {
			t.Fatalf("event %d: got frame kind %d session %d id %d", a.ID, f.Kind, f.Session, f.ID)
		}
		out = append(out, f.Addrs)
	}
	return out
}

// TestEvictedSessionRestoresLearnedState is the eviction-persistence
// regression test: a PATHFINDER session trained on half its trace is
// forced out by LRU pressure, and on return its remaining predictions —
// and its duplicate-detection watermark — must be bit-identical to a run
// that was never evicted. Before the spill store, eviction silently
// discarded the learned weights and the returning session relearned from
// scratch.
func TestEvictedSessionRestoresLearnedState(t *testing.T) {
	accs := genTrace(t, "cc-5", 400, 7)
	want := expectedPredictions(t, DefaultSessionPrefetcher, 1, accs, prefetch.Budget)

	// One shard, one resident session: creating session 2 must evict
	// session 1.
	srv, err := New(Config{Shards: 1, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.spill == nil {
		t.Fatal("default config should enable the spill store")
	}

	c := dialBinary(t, srv.Addr())
	defer c.close()

	half := len(accs) / 2
	got := sendAndCollect(t, c, 1, accs[:half])

	// Force the eviction with an unrelated session, then prove session 1
	// is no longer resident but its snapshot is.
	evictor := genTrace(t, "cc-5", 1, 9)
	sendAndCollect(t, c, 2, evictor)
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d after eviction, want 1 (session 2 only)", n)
	}
	if n := srv.spill.len(); n != 1 {
		t.Fatalf("spill holds %d snapshots, want 1", n)
	}

	// The restored session must also remember what it already accepted: a
	// duplicate of the last pre-eviction event is stale, not a fresh event
	// that would fork the learned state.
	if err := c.writeEvent(1, accs[half-1]); err != nil {
		t.Fatal(err)
	}
	if f := c.mustRead(); f.Kind != FrameReject || f.Code != RejectStale {
		t.Fatalf("duplicate after restore: got kind %d code %d, want stale reject", f.Kind, f.Code)
	}

	got = append(got, sendAndCollect(t, c, 1, accs[half:])...)
	assertPredictionsMatch(t, 1, got, want)
}

// TestSpillDisabled pins the opt-out: with SpillSessions negative an
// evicted session's state is discarded and nothing is retained.
func TestSpillDisabled(t *testing.T) {
	srv, err := New(Config{Shards: 1, MaxSessions: 1, SpillSessions: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.spill != nil {
		t.Fatal("negative SpillSessions should disable the spill store")
	}
}

// TestSpillStoreBounded pins the ring's capacity behaviour: the oldest
// snapshot is dropped when a new one would exceed the cap, and re-spilling
// a session replaces its previous snapshot instead of duplicating it.
func TestSpillStoreBounded(t *testing.T) {
	st := newSpillStore(2)
	st.put(&spillEntry{id: 1})
	st.put(&spillEntry{id: 2})
	st.put(&spillEntry{id: 2, lastID: 7}) // replace, not duplicate
	if st.len() != 2 {
		t.Fatalf("len = %d, want 2", st.len())
	}
	st.put(&spillEntry{id: 3}) // pushes out id 1, the oldest
	if _, ok := st.take(1); ok {
		t.Fatal("oldest snapshot should have been dropped")
	}
	if st.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.dropped)
	}
	e, ok := st.take(2)
	if !ok || e.lastID != 7 {
		t.Fatalf("take(2) = %+v, %v; want replaced snapshot with lastID 7", e, ok)
	}
	if _, ok := st.take(3); !ok {
		t.Fatal("newest snapshot missing")
	}
	if st.len() != 0 {
		t.Fatalf("len = %d after draining, want 0", st.len())
	}
}
