package serve

// Backpressure, admission-control and drain tests: every bounded queue is
// proven bounded, every reject code is provoked on purpose, and graceful
// drain is shown to flush each accepted event exactly once — including
// under internal/fault hang and latency injection.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/telemetry"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// hangInjector stalls every session worker for d on every event, pinning
// events "in flight" so admission limits become deterministic to provoke.
func hangInjector(d time.Duration) *fault.Seeded {
	return fault.NewSeeded(fault.Chaos{Seed: 1, Hang: 1, HangFor: d})
}

// latencyInjector adds a benign per-event delay.
func latencyInjector(d time.Duration) *fault.Seeded {
	return fault.NewSeeded(fault.Chaos{Seed: 1, Latency: 1, LatencyFor: d})
}

// newTestServer builds a server and registers cleanup.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// withRegistry binds a fresh telemetry registry for the test's duration.
func withRegistry(t testing.TB) *telemetry.Registry {
	t.Helper()
	r := telemetry.NewRegistry()
	EnableTelemetry(r)
	t.Cleanup(func() { EnableTelemetry(nil) })
	return r
}

func acc(id uint64) trace.Access {
	return trace.Access{ID: id, PC: 0x1000 + id*4, Addr: 0x4000 + id*trace.BlockBytes}
}

func TestQueueFullShedsWithRetryHint(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		QueueDepth:    4,
		Shards:        1,
		Fault:         hangInjector(30 * time.Second),
	})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	// The worker hangs on the first event, so 4 more fill the queue
	// (pending counts the one being processed) and the 5th overflows.
	for id := uint64(1); id <= 6; id++ {
		if err := c.writeEvent(1, acc(id)); err != nil {
			t.Fatalf("write event %d: %v", id, err)
		}
	}
	for want := uint64(5); want <= 6; want++ {
		f := c.mustRead()
		if f.Kind != FrameReject || f.Code != RejectQueueFull {
			t.Fatalf("event %d: want queue-full reject, got kind %#x code %s", want, f.Kind, RejectCodeName(f.Code))
		}
		if f.ID != want {
			t.Fatalf("reject id %d, want %d", f.ID, want)
		}
		if f.RetryMillis == 0 {
			t.Fatalf("queue-full reject carries no retry hint")
		}
	}
	if got := reg.Snapshot().Counters["serve.shed_queue_full"]; got != 2 {
		t.Fatalf("shed_queue_full = %d, want 2", got)
	}

	// Force the drain: the 30s hangs must be interrupted by the shutdown
	// context, not waited out.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain error = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("forced drain took %s; hung workers were not interrupted", took)
	}
}

func TestOverloadedWhenGlobalInFlightCapHit(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		QueueDepth:    8,
		MaxInFlight:   2,
		Fault:         hangInjector(30 * time.Second),
	})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	// Two sessions pin one in-flight event each; the third event in either
	// session trips the global cap before its queue is anywhere near full.
	if err := c.writeEvent(1, acc(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.writeEvent(2, acc(1)); err != nil {
		t.Fatal(err)
	}
	// The cap check reads the atomic after both enqueues; give the workers
	// a beat to pick the events up (not required for correctness — the
	// inflight counter is incremented at acceptance — just determinism of
	// the queue-full-vs-overload distinction below).
	waitFor(t, time.Second, func() bool {
		return srv.inflight.Load() == 2
	})
	if err := c.writeEvent(1, acc(2)); err != nil {
		t.Fatal(err)
	}
	f := c.mustRead()
	if f.Kind != FrameReject || f.Code != RejectOverloaded || f.ID != 2 {
		t.Fatalf("want overloaded reject for id 2, got kind %#x code %s id %d", f.Kind, RejectCodeName(f.Code), f.ID)
	}
	if f.RetryMillis == 0 {
		t.Fatalf("overloaded reject carries no retry hint")
	}
	// The session is now wedged on id 2: a pipelined id 3 must not slip in.
	if err := c.writeEvent(1, acc(3)); err != nil {
		t.Fatal(err)
	}
	f = c.mustRead()
	if f.Kind != FrameReject || f.Code != RejectQueueFull || f.ID != 3 {
		t.Fatalf("wedged session accepted a later id: kind %#x code %s id %d", f.Kind, RejectCodeName(f.Code), f.ID)
	}
	if got := reg.Snapshot().Counters["serve.shed_overloaded"]; got != 1 {
		t.Fatalf("shed_overloaded = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	srv.Shutdown(ctx)
}

func TestMaxSessionsRejectsWhenAllBusy(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		Shards:        1,
		MaxSessions:   2,
		QueueDepth:    4,
		Fault:         hangInjector(30 * time.Second),
	})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	// Two sessions, each with a hung in-flight event: nothing is idle, so
	// a third session cannot be admitted.
	if err := c.writeEvent(1, acc(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.writeEvent(2, acc(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return srv.inflight.Load() == 2 })
	if err := c.writeEvent(3, acc(1)); err != nil {
		t.Fatal(err)
	}
	f := c.mustRead()
	if f.Kind != FrameReject || f.Code != RejectMaxSessions || f.Session != 3 {
		t.Fatalf("want max-sessions reject for session 3, got kind %#x code %s session %d", f.Kind, RejectCodeName(f.Code), f.Session)
	}
	if got := reg.Snapshot().Counters["serve.shed_max_sessions"]; got != 1 {
		t.Fatalf("shed_max_sessions = %d, want 1", got)
	}
	if n := srv.SessionCount(); n != 2 {
		t.Fatalf("SessionCount = %d, want 2", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	srv.Shutdown(ctx)
}

func TestLRUEvictionAdmitsNewSessionAndResetsWatermark(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		Shards:        1,
		MaxSessions:   2,
	})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	// Sessions 1 then 2 complete one event each; both are idle, 1 is LRU.
	for sid := uint64(1); sid <= 2; sid++ {
		if err := c.writeEvent(sid, acc(5)); err != nil {
			t.Fatal(err)
		}
		f := c.mustRead()
		if f.Kind != FramePredict || f.Session != sid || f.ID != 5 {
			t.Fatalf("session %d: want predict for id 5, got %+v", sid, f)
		}
	}
	// Session 3 must evict session 1. The workers decrement pending just
	// after handing over the reply, so poll the (unwedging) retry loop
	// instead of assuming the decrement landed before our next frame.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.writeEvent(3, acc(1)); err != nil {
			t.Fatal(err)
		}
		f := c.mustRead()
		if f.Kind == FramePredict && f.Session == 3 {
			break
		}
		if f.Kind != FrameReject || f.Code != RejectMaxSessions {
			t.Fatalf("session 3 admission: got kind %#x code %s", f.Kind, RejectCodeName(f.Code))
		}
		if time.Now().After(deadline) {
			t.Fatalf("session 3 never admitted; eviction did not free a slot")
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Snapshot().Counters["serve.sessions_evicted"]; got != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", got)
	}
	if n := srv.SessionCount(); n != 2 {
		t.Fatalf("SessionCount = %d, want 2", n)
	}
	// Session 1 returns: it starts fresh — the duplicate-detection
	// watermark is gone with the learned state, so its old id is accepted.
	if err := c.writeEvent(1, acc(5)); err != nil {
		t.Fatal(err)
	}
	f := c.mustRead()
	if f.Kind != FramePredict || f.Session != 1 || f.ID != 5 {
		t.Fatalf("re-created session 1 rejected its stream: %+v", f)
	}
}

func TestStaleDuplicatesRejected(t *testing.T) {
	srv := newTestServer(t, Config{NewPrefetcher: nextLineFactory})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	if err := c.writeEvent(1, acc(5)); err != nil {
		t.Fatal(err)
	}
	if f := c.mustRead(); f.Kind != FramePredict || f.ID != 5 {
		t.Fatalf("want predict for 5, got %+v", f)
	}
	for _, dup := range []uint64{3, 5} {
		if err := c.writeEvent(1, acc(dup)); err != nil {
			t.Fatal(err)
		}
		f := c.mustRead()
		if f.Kind != FrameReject || f.Code != RejectStale || f.ID != dup {
			t.Fatalf("duplicate id %d: want stale reject, got kind %#x code %s", dup, f.Kind, RejectCodeName(f.Code))
		}
	}
	// The stream continues normally after the duplicates.
	if err := c.writeEvent(1, acc(6)); err != nil {
		t.Fatal(err)
	}
	if f := c.mustRead(); f.Kind != FramePredict || f.ID != 6 {
		t.Fatalf("want predict for 6 after duplicates, got %+v", f)
	}
}

func TestGracefulDrainFlushesEveryAcceptedEventExactlyOnce(t *testing.T) {
	for _, tc := range []struct {
		name string
		inj  fault.Injector
	}{
		{"clean", nil},
		{"under latency injection", latencyInjector(500 * time.Microsecond)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := withRegistry(t)
			srv := newTestServer(t, Config{
				NewPrefetcher: nextLineFactory,
				QueueDepth:    64,
				Fault:         tc.inj,
			})
			c := dialBinary(t, srv.Addr())
			defer c.close()

			// Fire a burst and immediately start the drain: whatever was
			// accepted before the draining flag landed must come back as
			// exactly one prediction each; the rest must be rejected, not
			// buffered and not lost.
			const total = 300
			sent := make(chan struct{})
			go func() {
				defer close(sent)
				for id := uint64(1); id <= total; id++ {
					if err := c.writeEvent(1, acc(id)); err != nil {
						return
					}
				}
			}()
			time.Sleep(2 * time.Millisecond)
			drained := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				drained <- srv.Shutdown(ctx)
			}()

			seen := make(map[uint64]int)
			var rejects, predicts uint64
			for {
				f, err := c.read()
				if err != nil {
					break // server closed the conn after the flush
				}
				switch f.Kind {
				case FramePredict:
					predicts++
					seen[f.ID]++
				case FrameReject:
					if f.Code != RejectQueueFull && f.Code != RejectDraining {
						t.Fatalf("unexpected reject %s", RejectCodeName(f.Code))
					}
					rejects++
				default:
					t.Fatalf("unexpected frame kind %#x", f.Kind)
				}
			}
			<-sent
			if err := <-drained; err != nil {
				t.Fatalf("graceful drain failed: %v", err)
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("event %d predicted %d times", id, n)
				}
			}
			accepted := reg.Snapshot().Counters["serve.events_accepted"]
			if predicts != accepted {
				t.Fatalf("drain lost replies: %d predictions for %d accepted events", predicts, accepted)
			}
			if predicts+rejects < 1 || predicts == 0 {
				t.Fatalf("degenerate run: %d predicts, %d rejects", predicts, rejects)
			}
			if dropped := reg.Snapshot().Counters["serve.replies_dropped"]; dropped != 0 {
				t.Fatalf("graceful drain dropped %d replies", dropped)
			}
		})
	}
}

func TestDrainingRejectsNewEventsAndConnections(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		Fault:         latencyInjector(300 * time.Millisecond),
	})
	addr := srv.Addr()
	c := dialBinary(t, addr)
	defer c.close()

	// One slow event keeps the drain open long enough to probe it. Wait
	// for its acceptance so the drain cannot race it into a reject.
	if err := c.writeEvent(1, acc(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		return reg.Snapshot().Counters["serve.events_accepted"] == 1
	})
	drained := make(chan error, 1)
	go func() { drained <- srv.Close() }()
	waitFor(t, time.Second, func() bool { return srv.draining.Load() })

	// New events on the existing connection are rejected...
	if err := c.writeEvent(1, acc(2)); err != nil {
		t.Fatal(err)
	}
	var sawDraining, sawPredict bool
	for {
		f, err := c.read()
		if err != nil {
			break
		}
		switch {
		case f.Kind == FrameReject && f.Code == RejectDraining:
			sawDraining = true
		case f.Kind == FramePredict && f.ID == 1:
			sawPredict = true
		}
	}
	if !sawDraining {
		t.Fatalf("event sent while draining was not rejected with draining")
	}
	if !sawPredict {
		t.Fatalf("the event accepted before the drain lost its prediction")
	}
	// ... and new connections are turned away.
	if nc, err := net.Dial("tcp", addr); err == nil {
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Fatalf("draining server kept a new connection open")
		}
		nc.Close()
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := reg.Snapshot().Counters["serve.shed_draining"]; got == 0 {
		t.Fatalf("shed_draining never incremented")
	}
}

func TestEvalJobMatchesDirectRunnerBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation job is a full simulation cell")
	}
	srv := newTestServer(t, Config{NewPrefetcher: nextLineFactory})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	traceName := workload.Names()[0]
	req := EvalRequest{Req: 77, Trace: traceName, Prefetcher: "nextline", Loads: 4000, Seed: 3}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(c.nc, AppendEvalFrame(nil, body)); err != nil {
		t.Fatal(err)
	}
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Minute))
	f := c.mustRead()
	if f.Kind != FrameEvalResult {
		t.Fatalf("want eval result, got kind %#x", f.Kind)
	}
	var resp EvalResponse
	if err := json.Unmarshal(f.Body, &resp); err != nil {
		t.Fatalf("bad eval response: %v", err)
	}
	if resp.Req != 77 || resp.Error != "" {
		t.Fatalf("eval failed: %+v", resp)
	}

	// The served result must be bit-identical to running the same job on a
	// runner directly: serving adds transport, never simulation noise.
	job, err := JobFor(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.cfg.Runner.Eval(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics != want.Metrics || resp.BaselineIPC != want.BaselineIPC || resp.Cycles != want.Cycles {
		t.Fatalf("served eval diverged from the direct runner:\n  served %+v ipc=%v cycles=%d\n  direct %+v ipc=%v cycles=%d",
			resp.Metrics, resp.BaselineIPC, resp.Cycles, want.Metrics, want.BaselineIPC, want.Cycles)
	}

	// An unknown prefetcher fails the job, not the connection.
	bad, _ := json.Marshal(EvalRequest{Req: 78, Trace: traceName, Prefetcher: "no-such"})
	if err := WriteFrame(c.nc, AppendEvalFrame(nil, bad)); err != nil {
		t.Fatal(err)
	}
	f = c.mustRead()
	var errResp EvalResponse
	if err := json.Unmarshal(f.Body, &errResp); err != nil || errResp.Req != 78 || errResp.Error == "" {
		t.Fatalf("want an error reply for req 78, got %+v (err %v)", errResp, err)
	}
}

func TestJSONDebugMode(t *testing.T) {
	srv := newTestServer(t, Config{NewPrefetcher: nextLineFactory, Budget: 2})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	sendLine := func(s string) {
		t.Helper()
		if _, err := fmt.Fprintln(nc, s); err != nil {
			t.Fatalf("send %q: %v", s, err)
		}
	}
	readObj := func() map[string]any {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read json line: %v", err)
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad json %q: %v", line, err)
		}
		return m
	}

	sendLine(`{"type":"ping"}`)
	if m := readObj(); m["type"] != "pong" {
		t.Fatalf("want pong, got %v", m)
	}
	sendLine(`{"type":"event","session":1,"id":1,"pc":4096,"addr":8192}`)
	m := readObj()
	if m["type"] != "predict" || m["id"] != float64(1) {
		t.Fatalf("want predict for id 1, got %v", m)
	}
	// NextLine with budget 2 prefetches the next two blocks.
	addrs, ok := m["addrs"].([]any)
	if !ok || len(addrs) != 2 || addrs[0] != float64(8192+trace.BlockBytes) || addrs[1] != float64(8192+2*trace.BlockBytes) {
		t.Fatalf("want the next two blocks, got %v", m["addrs"])
	}
	// Duplicates reject with the string code.
	sendLine(`{"type":"event","session":1,"id":1,"pc":4096,"addr":8192}`)
	if m := readObj(); m["type"] != "reject" || m["code"] != "stale" {
		t.Fatalf("want stale reject, got %v", m)
	}
	// A malformed line closes the connection (its bad-request reject is
	// best-effort: the teardown may win the race, so only closure is
	// guaranteed).
	sendLine(`{"type":"nope"}`)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		_, err := br.ReadByte()
		if err == nil {
			continue
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("connection stayed open after a protocol violation")
		}
		break
	}
}

func TestBinaryProtocolViolationsCloseTheConnection(t *testing.T) {
	reg := withRegistry(t)
	srv := newTestServer(t, Config{NewPrefetcher: nextLineFactory})

	assertClosed := func(t *testing.T, nc net.Conn) {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 512)
		for {
			_, err := nc.Read(buf)
			if err == nil {
				continue // best-effort reject bytes drain first
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("connection stayed open after a protocol violation")
			}
			return // closed
		}
	}
	t.Run("bad magic", func(t *testing.T) {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.Write([]byte("NOPE"))
		assertClosed(t, nc)
	})
	t.Run("corrupt frame", func(t *testing.T) {
		c := dialBinary(t, srv.Addr())
		defer c.close()
		if err := WriteFrame(c.nc, []byte{0xEE, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		assertClosed(t, c.nc)
	})
	t.Run("server-side kind from client", func(t *testing.T) {
		c := dialBinary(t, srv.Addr())
		defer c.close()
		if err := WriteFrame(c.nc, AppendPredictFrame(nil, 1, 1, nil)); err != nil {
			t.Fatal(err)
		}
		assertClosed(t, c.nc)
	})
	t.Run("oversize length prefix", func(t *testing.T) {
		c := dialBinary(t, srv.Addr())
		defer c.close()
		c.nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
		assertClosed(t, c.nc)
	})
	if got := reg.Snapshot().Counters["serve.frame_errors"]; got < 3 {
		t.Fatalf("frame_errors = %d, want >= 3", got)
	}
}

// TestSlowClientBackpressureBoundedMemory is the bounded-by-construction
// proof: a deliberately slow client is fed a large event stream and the
// server must shed — visibly, via the reject protocol and the shed
// counters — rather than buffer. Resident queue memory is pinned by the
// queue-depth gauges and the heap high-water mark.
func TestSlowClientBackpressureBoundedMemory(t *testing.T) {
	total := uint64(1_000_000)
	if testing.Short() {
		total = 150_000
	}
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		Shards:        1,
		QueueDepth:    64,
		OutboundDepth: 64,
	})
	c := dialBinary(t, srv.Addr())
	defer c.close()

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Writer: the full firehose, no flow control, no retries — every event
	// gets exactly one response (predict or reject), nothing is buffered
	// beyond the fixed queues.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := bufio.NewWriterSize(c.nc, 1<<16)
		var payload []byte
		for id := uint64(1); id <= total; id++ {
			payload = AppendEventFrame(payload[:0], 1, acc(id))
			if err := WriteFrame(bw, payload); err != nil {
				t.Errorf("write event %d: %v", id, err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()

	// Reader: deliberately slow — sleep every few thousand replies so the
	// outbound queue and TCP window, not the reader, pace the server.
	var predicts, rejects, peakHeap uint64
	var ms runtime.MemStats
	for n := uint64(0); n < total; n++ {
		c.nc.SetReadDeadline(time.Now().Add(30 * time.Second))
		f, err := c.read()
		if err != nil {
			t.Fatalf("read reply %d: %v", n, err)
		}
		switch f.Kind {
		case FramePredict:
			predicts++
		case FrameReject:
			if f.Code != RejectQueueFull {
				t.Fatalf("unexpected reject %s", RejectCodeName(f.Code))
			}
			rejects++
		default:
			t.Fatalf("unexpected frame kind %#x", f.Kind)
		}
		if n%8192 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		if n%65536 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
	}
	wg.Wait()

	if predicts+rejects != total {
		t.Fatalf("%d predicts + %d rejects != %d events", predicts, rejects, total)
	}
	snap := reg.Snapshot()
	accepted := snap.Counters["serve.events_accepted"]
	shed := snap.Counters["serve.shed"]
	if accepted != predicts || shed != rejects {
		t.Fatalf("telemetry disagrees with the wire: accepted %d vs %d predicts, shed %d vs %d rejects",
			accepted, predicts, shed, rejects)
	}
	if rejects == 0 {
		t.Fatalf("a slow client never saw backpressure over %d events", total)
	}
	if peak := snap.Gauges["serve.queue_depth_peak"]; peak > 64 {
		t.Fatalf("session queue grew to %d, past its 64 cap", peak)
	}
	// send records len(out)+1 before enqueueing, so the observable peak is
	// cap+1 even though at most cap replies are ever resident.
	if peak := snap.Gauges["serve.out_depth_peak"]; peak > 65 {
		t.Fatalf("outbound queue grew to %d, past its 64 cap", peak)
	}
	const heapCap = 64 << 20
	if grew := int64(peakHeap) - int64(base.HeapAlloc); grew > heapCap {
		t.Fatalf("heap grew %d bytes while shedding; queues are not bounding memory", grew)
	}
	t.Logf("%d events: %d accepted, %d shed, heap peak +%d KiB",
		total, accepted, shed, (int64(peakHeap)-int64(base.HeapAlloc))/1024)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %s", d)
		}
		time.Sleep(500 * time.Microsecond)
	}
}
