package serve

import (
	"bytes"
	"io"
	"sync"
)

// saver is the capability an evicted session's prefetcher needs for its
// learned state to survive eviction. core.Pathfinder implements it; any
// custom prefetcher may opt in by exposing the same method.
type saver interface {
	Save(w io.Writer) error
}

// sessionSaver is the stronger capability: a snapshot that also captures
// transient state (core.Pathfinder.SaveSession), so the restored session
// continues bit-identically instead of re-warming. Preferred over saver
// when both are present.
type sessionSaver interface {
	SaveSession(w io.Writer) error
}

// spillEntry is one evicted session's snapshot: the serialized prefetcher
// plus the protocol watermarks (duplicate detection and go-back-N wedge),
// so a restored session rejects exactly the ids the evicted one would
// have.
type spillEntry struct {
	id         uint64
	blob       []byte
	lastID     uint64
	shedID     uint64
	prev, next *spillEntry
}

// spillStore is a bounded LRU ring of evicted-session snapshots, shared
// across the session table's shards. When it is full, admitting a new
// snapshot drops the least recently spilled one — the same session losing
// state it would have lost without the store, just later. Lock order:
// shard.mu, then spillStore.mu (never the reverse).
type spillStore struct {
	mu         sync.Mutex
	m          map[uint64]*spillEntry
	head, tail *spillEntry // head = most recently spilled
	cap        int
	dropped    int // snapshots pushed out by capacity (stats/tests)
}

func newSpillStore(cap int) *spillStore {
	return &spillStore{m: make(map[uint64]*spillEntry, cap), cap: cap}
}

// put admits a snapshot, replacing any previous snapshot for the same
// session and evicting the oldest entry when past capacity.
func (st *spillStore) put(e *spillEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if old, ok := st.m[e.id]; ok {
		st.unlink(old)
		delete(st.m, old.id)
	}
	st.m[e.id] = e
	e.prev = nil
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
	for len(st.m) > st.cap {
		old := st.tail
		st.unlink(old)
		delete(st.m, old.id)
		st.dropped++
	}
}

// take removes and returns the snapshot for id, if one is held.
func (st *spillStore) take(id uint64) (*spillEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return nil, false
	}
	st.unlink(e)
	delete(st.m, id)
	return e, true
}

// unlink removes e from the recency list (st.mu held).
func (st *spillStore) unlink(e *spillEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// len returns the number of held snapshots (for tests).
func (st *spillStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// snapshot serializes a quiescent session into a spill entry, or nil when
// its prefetcher cannot save itself.
func snapshot(s *session) *spillEntry {
	var buf bytes.Buffer
	switch sv := s.pf.(type) {
	case sessionSaver:
		if sv.SaveSession(&buf) != nil {
			return nil
		}
	case saver:
		if sv.Save(&buf) != nil {
			return nil
		}
	default:
		return nil
	}
	return &spillEntry{id: s.id, blob: buf.Bytes(), lastID: s.lastID, shedID: s.shedID}
}
