package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"pathfinder/internal/trace"
)

func TestFrameRoundTrips(t *testing.T) {
	acc := trace.Access{ID: 42, PC: 0x401000, Addr: 0x7fff_0000, Chain: 7}
	cases := []struct {
		name    string
		payload []byte
		check   func(t *testing.T, f Frame)
	}{
		{
			name:    "event",
			payload: AppendEventFrame(nil, 9, acc),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FrameEvent || f.Session != 9 || f.Event != acc {
					t.Fatalf("event round trip: %+v", f)
				}
			},
		},
		{
			name:    "predict",
			payload: AppendPredictFrame(nil, 9, 42, []uint64{0x1000, 0x1040}),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FramePredict || f.Session != 9 || f.ID != 42 {
					t.Fatalf("predict round trip: %+v", f)
				}
				if len(f.Addrs) != 2 || f.Addrs[0] != 0x1000 || f.Addrs[1] != 0x1040 {
					t.Fatalf("predict addrs: %v", f.Addrs)
				}
			},
		},
		{
			name:    "predict empty",
			payload: AppendPredictFrame(nil, 9, 43, nil),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FramePredict || len(f.Addrs) != 0 {
					t.Fatalf("empty predict: %+v", f)
				}
			},
		},
		{
			name:    "reject",
			payload: AppendRejectFrame(nil, 9, 42, RejectQueueFull, 5, "queue full"),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FrameReject || f.Code != RejectQueueFull || f.RetryMillis != 5 || f.Msg != "queue full" {
					t.Fatalf("reject round trip: %+v", f)
				}
			},
		},
		{
			name:    "reject no message",
			payload: AppendRejectFrame(nil, 9, 42, RejectStale, 0, ""),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FrameReject || f.Code != RejectStale || f.Msg != "" {
					t.Fatalf("bare reject: %+v", f)
				}
			},
		},
		{
			name:    "eval",
			payload: AppendEvalFrame(nil, []byte(`{"req":1}`)),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FrameEval || string(f.Body) != `{"req":1}` {
					t.Fatalf("eval round trip: %+v", f)
				}
			},
		},
		{
			name:    "eval result",
			payload: AppendEvalResultFrame(nil, []byte(`{"req":1,"metrics":{}}`)),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FrameEvalResult || string(f.Body) != `{"req":1,"metrics":{}}` {
					t.Fatalf("eval result round trip: %+v", f)
				}
			},
		},
		{
			name:    "ping",
			payload: AppendPingFrame(nil),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FramePing {
					t.Fatalf("ping: %+v", f)
				}
			},
		},
		{
			name:    "pong",
			payload: AppendPongFrame(nil),
			check: func(t *testing.T, f Frame) {
				if f.Kind != FramePong {
					t.Fatalf("pong: %+v", f)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			if err := ParseFrame(tc.payload, &f); err != nil {
				t.Fatalf("ParseFrame: %v", err)
			}
			tc.check(t, f)

			// And through the stream framing.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.payload); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			fr := NewFrameReader(&buf)
			payload, err := fr.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !bytes.Equal(payload, tc.payload) {
				t.Fatalf("framing altered the payload")
			}
			if _, err := fr.Next(); err != io.EOF {
				t.Fatalf("want clean EOF after the frame, got %v", err)
			}
		})
	}
}

func TestParseFrameRejectsMalformedPayloads(t *testing.T) {
	acc := trace.Access{ID: 42, PC: 0x1000, Addr: 0x2000}
	hugeAddrs := make([]uint64, maxPredictAddrs+1)
	cases := []struct {
		name    string
		payload []byte
		errPart string
	}{
		{"empty", nil, "empty frame"},
		{"unknown kind", []byte{0xEE}, "unknown frame kind"},
		{"event zero id", AppendEventFrame(nil, 1, trace.Access{ID: 0}), "id must be >= 1"},
		{"event truncated", AppendEventFrame(nil, 1, acc)[:3], "truncated"},
		{"event pc out of range", AppendEventFrame(nil, 1, trace.Access{ID: 1, PC: trace.MaxAddr + 1}), "beyond the canonical"},
		{"event addr out of range", AppendEventFrame(nil, 1, trace.Access{ID: 1, Addr: trace.MaxAddr + 1}), "beyond the canonical"},
		{"event trailing bytes", append(AppendEventFrame(nil, 1, acc), 0x00), "trailing"},
		{"event chain overflow", func() []byte {
			p := []byte{FrameEvent}
			p = binary.AppendUvarint(p, 1) // session
			p = binary.AppendUvarint(p, 1) // id
			p = binary.AppendUvarint(p, 1) // pc
			p = binary.AppendUvarint(p, 1) // addr
			return binary.AppendUvarint(p, 1<<33)
		}(), "overflows uint32"},
		{"predict too many addrs", AppendPredictFrame(nil, 1, 1, hugeAddrs), "exceeds the 256 cap"},
		{"predict truncated addr list", AppendPredictFrame(nil, 1, 1, []uint64{1, 2})[:4], "truncated"},
		{"predict addr out of range", AppendPredictFrame(nil, 1, 1, []uint64{trace.MaxAddr + 1}), "beyond the canonical"},
		{"reject missing code", AppendRejectFrame(nil, 1, 1, RejectStale, 0, "")[:2], "truncated"},
		{"reject unknown code", func() []byte {
			p := []byte{FrameReject}
			p = binary.AppendUvarint(p, 1)
			p = binary.AppendUvarint(p, 1)
			p = append(p, 0xFF)
			return binary.AppendUvarint(p, 0)
		}(), "unknown code"},
		{"reject zero code", func() []byte {
			p := []byte{FrameReject}
			p = binary.AppendUvarint(p, 1)
			p = binary.AppendUvarint(p, 1)
			p = append(p, 0)
			return binary.AppendUvarint(p, 0)
		}(), "unknown code"},
		{"reject oversized message", AppendRejectFrame(nil, 1, 1, RejectBadRequest, 0, strings.Repeat("x", maxRejectMsg)+"y"), ""},
		{"eval empty body", []byte{FrameEval}, "empty body"},
		{"ping trailing bytes", append(AppendPingFrame(nil), 0x01), "trailing"},
		{"bad uvarint", append([]byte{FrameEvent}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			err := ParseFrame(tc.payload, &f)
			if tc.name == "reject oversized message" {
				// AppendRejectFrame truncates at the cap, so the built frame
				// parses; an over-cap message must be hand-built to fail.
				long := append(AppendRejectFrame(nil, 1, 1, RejectBadRequest, 0, ""), bytes.Repeat([]byte{'x'}, maxRejectMsg+1)...)
				if err2 := ParseFrame(long, &f); err2 == nil {
					t.Fatalf("over-cap reject message parsed")
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed payload parsed: %x", tc.payload)
			}
			if tc.errPart != "" && !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func TestWriteFrameRefusesBadSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err == nil {
		t.Fatal("empty frame written")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("oversize frame written")
	}
	if buf.Len() != 0 {
		t.Fatalf("refused writes still emitted %d bytes", buf.Len())
	}
}

func TestFrameReaderStreamErrors(t *testing.T) {
	t.Run("oversize length", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameBytes+1)
		fr := NewFrameReader(bytes.NewReader(hdr[:]))
		if _, err := fr.Next(); err == nil || !strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("oversize length: %v", err)
		}
	})
	t.Run("zero length", func(t *testing.T) {
		fr := NewFrameReader(bytes.NewReader([]byte{0, 0, 0, 0}))
		if _, err := fr.Next(); err == nil || !strings.Contains(err.Error(), "zero-length") {
			t.Fatalf("zero length: %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		fr := NewFrameReader(bytes.NewReader([]byte{0, 0}))
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated header: %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		var buf bytes.Buffer
		binary.Write(&buf, binary.BigEndian, uint32(10))
		buf.Write([]byte{1, 2, 3})
		fr := NewFrameReader(&buf)
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated payload: %v", err)
		}
	})
	t.Run("clean eof", func(t *testing.T) {
		fr := NewFrameReader(bytes.NewReader(nil))
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("clean EOF: %v", err)
		}
	})
	t.Run("back to back frames reuse the buffer", func(t *testing.T) {
		var buf bytes.Buffer
		p1 := AppendEventFrame(nil, 1, trace.Access{ID: 1, PC: 2, Addr: 3})
		p2 := AppendPingFrame(nil)
		WriteFrame(&buf, p1)
		WriteFrame(&buf, p2)
		fr := NewFrameReader(&buf)
		got1, err := fr.Next()
		if err != nil || !bytes.Equal(got1, p1) {
			t.Fatalf("frame 1: %v %x", err, got1)
		}
		got2, err := fr.Next()
		if err != nil || !bytes.Equal(got2, p2) {
			t.Fatalf("frame 2: %v %x", err, got2)
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("tail: %v", err)
		}
	})
}

func TestRejectCodeName(t *testing.T) {
	for code, want := range map[byte]string{
		RejectQueueFull:   "queue-full",
		RejectMaxSessions: "max-sessions",
		RejectOverloaded:  "overloaded",
		RejectDraining:    "draining",
		RejectStale:       "stale",
		RejectBadRequest:  "bad-request",
	} {
		if got := RejectCodeName(code); got != want {
			t.Errorf("RejectCodeName(%d) = %q, want %q", code, got, want)
		}
	}
	if got := RejectCodeName(99); got != "code(99)" {
		t.Errorf("unknown code name: %q", got)
	}
}
