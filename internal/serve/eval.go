package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/lstm"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
	"pathfinder/internal/trace"
)

// EvalRequest is the JSON body of a FrameEval: one evaluation cell to run
// on the shared engine pool. Req correlates the asynchronous reply.
type EvalRequest struct {
	// Req is an opaque client-chosen correlation id echoed in the reply.
	Req uint64 `json:"req"`
	// Trace names the workload to evaluate on (see pathfinder.Workloads).
	Trace string `json:"trace"`
	// Prefetcher names the technique (see NewPrefetcherByName).
	Prefetcher string `json:"prefetcher"`
	// Loads / Seed / Budget override the runner defaults when non-zero.
	Loads  int   `json:"loads,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	Budget int   `json:"budget,omitempty"`
}

// EvalResponse is the JSON body of a FrameEvalResult.
type EvalResponse struct {
	Req         uint64         `json:"req"`
	Error       string         `json:"error,omitempty"`
	Metrics     runner.Metrics `json:"metrics"`
	BaselineIPC float64        `json:"baseline_ipc,omitempty"`
	Cycles      uint64         `json:"cycles,omitempty"`
	WallNanos   int64          `json:"wall_nanos,omitempty"`
}

// NewPrefetcherByName builds the named online prefetching technique — the
// wire-facing registry of every baseline the facade exposes plus
// PATHFINDER itself and the paper's ensembles. Names are case-insensitive.
func NewPrefetcherByName(name string, seed int64) (prefetch.Prefetcher, error) {
	mkPF := func() (prefetch.Prefetcher, error) {
		cfg := core.DefaultConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		return core.New(cfg)
	}
	ensemble := func(label string, members ...prefetch.Prefetcher) prefetch.Prefetcher {
		e := prefetch.NewEnsemble(members...)
		e.Label = label
		return e
	}
	switch strings.ToLower(name) {
	case "", "nopf", "none":
		return prefetch.NoPrefetch{}, nil
	case "nextline", "nl":
		return &prefetch.NextLine{}, nil
	case "bo", "bestoffset", "best-offset":
		return prefetch.NewBestOffset(), nil
	case "spp":
		return prefetch.NewSPP(), nil
	case "sisb":
		return prefetch.NewSISB(), nil
	case "isb":
		return prefetch.NewISB(), nil
	case "pythia":
		return prefetch.NewPythia(seed), nil
	case "stride":
		return prefetch.NewStride(), nil
	case "vldp":
		return prefetch.NewVLDP(), nil
	case "sms":
		return prefetch.NewSMS(), nil
	case "nextpage":
		return prefetch.NewNextPage(), nil
	case "pathfinder", "pf":
		return mkPF()
	case "pf+nl":
		pf, err := mkPF()
		if err != nil {
			return nil, err
		}
		return ensemble("PF+NL", pf, &prefetch.NextLine{}), nil
	case "pf+nl+sisb":
		pf, err := mkPF()
		if err != nil {
			return nil, err
		}
		return ensemble("PF+NL+SISB", pf, prefetch.NewSISB(), &prefetch.NextLine{}), nil
	}
	return nil, fmt.Errorf("serve: unknown prefetcher %q", name)
}

// JobFor translates an EvalRequest into a runner job — the wire-facing
// registry shared by the serving daemon and the distributed sweep
// (internal/dist), whose workers rebuild coordinator-granted cells from
// serializable specs through it. The offline
// generators (Delta-LSTM / Voyager) are reachable too, via the runner's
// GenFile path.
func JobFor(req EvalRequest) (runner.Job, error) {
	job := runner.Job{
		Trace: req.Trace,
		Loads: req.Loads,
		Seed:  req.Seed,
	}
	if req.Budget > 0 {
		job.Budget = req.Budget
	}
	name, seed := req.Prefetcher, req.Seed
	switch strings.ToLower(name) {
	case "deltalstm", "delta-lstm":
		job.Label = "DeltaLSTM"
		job.GenFile = func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error) {
			cfg := lstm.DefaultDeltaLSTMConfig()
			if seed != 0 {
				cfg.Seed = seed
			}
			return lstm.GenerateDeltaLSTM(cfg, accs, prefetch.Budget)
		}
	case "voyager":
		job.Label = "Voyager"
		job.GenFile = func(ctx context.Context, accs []trace.Access) ([]trace.Prefetch, error) {
			cfg := lstm.DefaultVoyagerConfig()
			if seed != 0 {
				cfg.Seed = seed
			}
			return lstm.GenerateVoyager(cfg, accs, prefetch.Budget)
		}
	default:
		job.New = func() (prefetch.Prefetcher, error) { return NewPrefetcherByName(name, seed) }
	}
	return job, nil
}

// handleEval parses and launches one evaluation job; the reply is
// asynchronous (jobs can take seconds) and bounded by the eval semaphore.
func (s *Server) handleEval(c *conn, body []byte) {
	var req EvalRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.replyEval(c, EvalResponse{Error: fmt.Sprintf("bad eval request: %v", err)})
		return
	}
	if s.draining.Load() {
		s.replyEval(c, EvalResponse{Req: req.Req, Error: "draining"})
		return
	}
	bodyCopy := req // the frame buffer is reused; req is already a copy
	s.evals.Add(1)
	go func() {
		defer s.evals.Done()
		select {
		case s.evalSem <- struct{}{}:
			defer func() { <-s.evalSem }()
		case <-s.baseCtx.Done():
			s.replyEval(c, EvalResponse{Req: bodyCopy.Req, Error: "shutting down"})
			return
		}
		s.replyEval(c, s.runEval(bodyCopy))
	}()
}

// runEval executes one evaluation cell on the shared runner.
func (s *Server) runEval(req EvalRequest) EvalResponse {
	m := serveTele.Load()
	if m != nil {
		m.evals.Inc()
	}
	resp := EvalResponse{Req: req.Req}
	job, err := JobFor(req)
	if err != nil {
		resp.Error = err.Error()
		if m != nil {
			m.evalErrors.Inc()
		}
		return resp
	}
	start := time.Now()
	res, err := s.cfg.Runner.Eval(s.baseCtx, job)
	if err != nil {
		resp.Error = err.Error()
		if m != nil {
			m.evalErrors.Inc()
		}
		return resp
	}
	resp.Metrics = res.Metrics
	resp.BaselineIPC = res.BaselineIPC
	resp.Cycles = res.Cycles
	resp.WallNanos = int64(time.Since(start))
	return resp
}

// replyEval marshals and queues one eval reply.
func (s *Server) replyEval(c *conn, resp EvalResponse) {
	b, err := json.Marshal(resp)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"req":%d,"error":"marshal failure"}`, resp.Req))
	}
	c.send(response{kind: FrameEvalResult, body: b})
}
