package serve

// The concurrency harness: N concurrent client sessions drive real
// sockets against a live server, and every per-session prediction stream
// must be bit-identical to replaying the same accesses through the same
// prefetcher in process. Run clean and under seeded fault injection —
// server-side latency/hangs at fault.SiteServe plus client-side dropped
// frames, corrupt frames, slow sends and mid-stream disconnects, all
// derived from one Chaos seed — the streams must still match wherever a
// reply was delivered, and telemetry must show every event accepted
// exactly once.

import (
	"sync"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// harnessSessions is the concurrent-session count the harness proves
// determinism for (the acceptance floor is 8).
const harnessSessions = 12

// harnessTraces builds one deterministic workload trace per session,
// cycling through the suite so different access patterns run side by side.
func harnessTraces(t testing.TB, sessions, events int) [][]trace.Access {
	t.Helper()
	names := workload.Names()
	traces := make([][]trace.Access, sessions)
	for i := range traces {
		traces[i] = genTrace(t, names[i%len(names)], events, int64(i+1))
	}
	return traces
}

// runHarness drives every session concurrently and checks each stream
// against its in-process replay. factory must be the server's own
// NewPrefetcher so the comparison is apples to apples.
func runHarness(t *testing.T, srv *Server, factory func(uint64) (prefetch.Prefetcher, error), traces [][]trace.Access, o chaosOpts) []sessionResult {
	t.Helper()
	results := make([]sessionResult, len(traces))
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(t, srv.Addr(), uint64(i+1), traces[i], o)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := range traces {
		sid := uint64(i + 1)
		want := expectedPredictions(t, factory, sid, traces[i], srv.cfg.Budget)
		assertPredictionsMatch(t, sid, results[i].preds, want)
	}
	return results
}

// TestHarnessConcurrentSessionsBitIdentical is the core determinism proof:
// 12 concurrent PATHFINDER sessions over real sockets, full prediction
// streams, compared bit-for-bit against the single-process path. The
// client windows stay within the queue depth, so no event is ever shed
// and every prediction is delivered.
func TestHarnessConcurrentSessionsBitIdentical(t *testing.T) {
	events := 1200
	if testing.Short() {
		events = 400
	}
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		QueueDepth:    64,
		OutboundDepth: 64,
	})
	traces := harnessTraces(t, harnessSessions, events)
	results := runHarness(t, srv, srv.cfg.NewPrefetcher, traces, chaosOpts{window: 32})

	for i, r := range results {
		if r.lostPreds != 0 || r.reconnects != 0 {
			t.Errorf("session %d: clean run lost %d predictions across %d reconnects", i+1, r.lostPreds, r.reconnects)
		}
	}
	snap := reg.Snapshot()
	total := uint64(harnessSessions * events)
	if got := snap.Counters["serve.events_accepted"]; got != total {
		t.Fatalf("accepted %d events, want %d (exactly once)", got, total)
	}
	if got := snap.Counters["serve.shed"]; got != 0 {
		t.Fatalf("windowed clients were shed %d times", got)
	}
	if got := snap.Gauges["serve.sessions_peak"]; got != harnessSessions {
		t.Fatalf("sessions_peak = %d, want %d", got, harnessSessions)
	}
}

// TestHarnessBitIdenticalUnderFaultInjection repeats the proof under
// seeded chaos on both sides of the wire. Sheds, retries, reconnects and
// injected delays may reorder and redo the *transport*; the accepted
// stream — and therefore every delivered prediction — must not change.
func TestHarnessBitIdenticalUnderFaultInjection(t *testing.T) {
	events := 500
	if testing.Short() {
		events = 150
	}
	inj := fault.NewSeeded(fault.Chaos{
		Seed:       7,
		Latency:    0.02,
		LatencyFor: 300 * time.Microsecond,
		Hang:       0.004,
		HangFor:    25 * time.Millisecond, // a stall, not a 30s wedge: drains must still finish
	})
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		QueueDepth:    16,
		OutboundDepth: 16,
		Fault:         inj,
	})
	traces := harnessTraces(t, harnessSessions, events)
	results := runHarness(t, srv, srv.cfg.NewPrefetcher, traces, chaosOpts{
		inj:      inj,
		window:   12,
		slowP:    0.01,
		slowFor:  300 * time.Microsecond,
		corruptP: 0.004,
		dropP:    0.01,
		discP:    0.004,
		timeout:  10 * time.Second,
	})

	// Exactly-once acceptance is the invariant chaos cannot bend: however
	// many times an event was retried, the server admitted it once.
	snap := reg.Snapshot()
	total := uint64(harnessSessions * events)
	if got := snap.Counters["serve.events_accepted"]; got != total {
		t.Fatalf("accepted %d events, want exactly %d", got, total)
	}
	var chaosHappened, lost, reconnects, sheds int
	for _, r := range results {
		lost += r.lostPreds
		reconnects += r.reconnects
		sheds += r.sheds
	}
	chaosHappened = reconnects + sheds
	if chaosHappened == 0 {
		t.Logf("warning: chaos probabilities injected nothing (%d events)", total)
	}
	if lost > int(total)/10 {
		t.Fatalf("%d of %d predictions lost; the reconnect protocol is leaking replies", lost, total)
	}
	t.Logf("chaos run: %d events, %d reconnects, %d sheds, %d replies lost to dead conns, %d stale-confirmed",
		total, reconnects, sheds, snap.Counters["serve.shed_stale"], lost)
}

// TestHarnessWedgeRecoveryUnderFirehose hammers tiny queues with windows
// far beyond the queue depth, forcing constant sheds and go-back-N
// recovery, and still requires complete, bit-identical streams. NextLine
// sessions keep the workers instant so the shed/retry machinery itself is
// what's under test.
func TestHarnessWedgeRecoveryUnderFirehose(t *testing.T) {
	events := 800
	if testing.Short() {
		events = 250
	}
	reg := withRegistry(t)
	srv := newTestServer(t, Config{
		NewPrefetcher: nextLineFactory,
		QueueDepth:    4,
		OutboundDepth: 8,
	})
	traces := harnessTraces(t, harnessSessions, events)
	results := runHarness(t, srv, nextLineFactory, traces, chaosOpts{window: 32})

	snap := reg.Snapshot()
	total := uint64(harnessSessions * events)
	if got := snap.Counters["serve.events_accepted"]; got != total {
		t.Fatalf("accepted %d events, want exactly %d", got, total)
	}
	var sheds int
	for _, r := range results {
		if r.lostPreds != 0 {
			t.Fatalf("no disconnects were injected, yet %d predictions were lost", r.lostPreds)
		}
		sheds += r.sheds
	}
	if sheds == 0 {
		t.Fatalf("windows of 32 over depth-4 queues never shed; backpressure is not engaging")
	}
	if peak := snap.Gauges["serve.queue_depth_peak"]; peak > 4 {
		t.Fatalf("queue depth peaked at %d, past its 4 cap", peak)
	}
}
