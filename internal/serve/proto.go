// Package serve is the prefetch-as-a-service layer behind cmd/pfserved: a
// long-lived daemon that accepts miss-stream events over a length-prefixed
// binary protocol (with a newline-JSON fallback for debugging), maintains
// per-session online prefetcher instances behind a sharded session table,
// and returns prefetch predictions — the serving form of PATHFINDER's
// real-time learning loop. One-shot evaluation jobs ride the same
// connection and run on the shared internal/runner engine pool.
//
// Determinism contract: a session's prediction stream is a pure function
// of the (ordered, deduplicated) event stream the server accepted for that
// session — bit-identical to driving the same prefetcher over the same
// accesses in process. Backpressure is bounded by construction: every
// queue in the daemon (per-session event queues, per-connection outbound
// queues) has a fixed capacity, and an event that would overflow one is
// rejected with an explicit "queue full, retry after" frame instead of
// being buffered. See docs/serving.md for the full protocol and lifecycle
// specification.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pathfinder/internal/trace"
)

// Magic opens every binary-protocol connection: the client writes these
// four bytes before its first frame. A connection whose first byte is '{'
// is handled in the newline-JSON debug mode instead (see docs/serving.md).
const Magic = "PFS1"

// MaxFrameBytes bounds one frame's payload. The length prefix is validated
// against it before any allocation, so a corrupt or hostile length cannot
// make the reader allocate unboundedly.
const MaxFrameBytes = 64 << 10

const (
	// maxPredictAddrs bounds the address list of one predict frame (far
	// above any sane per-access budget).
	maxPredictAddrs = 256
	// maxRejectMsg bounds the free-text message of a reject frame.
	maxRejectMsg = 256
)

// Frame kinds. Client-to-server: FrameEvent, FrameEval, FramePing.
// Server-to-client: FramePredict, FrameReject, FrameEvalResult, FramePong.
const (
	// FrameEvent carries one miss-stream access for a session: uvarint
	// session id, then the access as uvarint ID, PC, Addr, Chain. Event
	// IDs must be >= 1 and strictly increasing within a session.
	FrameEvent byte = 0x01
	// FramePredict answers one accepted event: uvarint session id, event
	// id, address count, then that many uvarint block-aligned byte
	// addresses (possibly zero).
	FramePredict byte = 0x02
	// FrameReject reports that an event (or frame) was not accepted:
	// uvarint session id, event id, one code byte, a uvarint retry hint in
	// milliseconds (zero: no hint), then an optional human-readable
	// message.
	FrameReject byte = 0x03
	// FrameEval submits a one-shot evaluation job; the payload body is an
	// EvalRequest in JSON.
	FrameEval byte = 0x04
	// FrameEvalResult answers a FrameEval; the body is an EvalResponse in
	// JSON.
	FrameEvalResult byte = 0x05
	// FramePing is a liveness probe; the server answers FramePong.
	FramePing byte = 0x06
	// FramePong answers FramePing.
	FramePong byte = 0x07
)

// Reject codes carried by FrameReject.
const (
	// RejectQueueFull: the session's bounded event queue (or its go-back
	// window after an earlier shed) had no room. The event was NOT
	// accepted; resend it — and everything after it, in order — after the
	// retry hint.
	RejectQueueFull byte = 1
	// RejectMaxSessions: the session table shard is at capacity and every
	// resident session has work in flight, so nothing could be evicted.
	RejectMaxSessions byte = 2
	// RejectOverloaded: the global in-flight event cap was reached.
	// Semantics match RejectQueueFull (the event was not accepted).
	RejectOverloaded byte = 3
	// RejectDraining: the server is shutting down and accepts no new work.
	RejectDraining byte = 4
	// RejectStale: the event id is not greater than the session's last
	// accepted id. The event was already accepted earlier (a retry after a
	// lost reply); skip it and continue with the next one.
	RejectStale byte = 5
	// RejectBadRequest: the frame was malformed or the session could not
	// be created. Binary connections are closed after this reject.
	RejectBadRequest byte = 6
)

// rejectCodeNames maps reject codes to their JSON-mode names.
var rejectCodeNames = map[byte]string{
	RejectQueueFull:   "queue-full",
	RejectMaxSessions: "max-sessions",
	RejectOverloaded:  "overloaded",
	RejectDraining:    "draining",
	RejectStale:       "stale",
	RejectBadRequest:  "bad-request",
}

// RejectCodeName returns the stable string name of a reject code (used in
// JSON mode and error messages).
func RejectCodeName(code byte) string {
	if n, ok := rejectCodeNames[code]; ok {
		return n
	}
	return fmt.Sprintf("code(%d)", code)
}

// Frame is one decoded protocol frame. ParseFrame reuses the receiver's
// Addrs capacity and aliases Body into the input payload; copy either
// before the payload buffer is reused.
type Frame struct {
	// Kind is the frame type (FrameEvent, FramePredict, ...).
	Kind byte
	// Session identifies the session for event/predict/reject frames.
	Session uint64
	// Event is the decoded access of a FrameEvent.
	Event trace.Access
	// ID is the event id a FramePredict or FrameReject refers to.
	ID uint64
	// Addrs are the predicted prefetch byte addresses of a FramePredict.
	Addrs []uint64
	// Code is the FrameReject reject code.
	Code byte
	// RetryMillis is the FrameReject retry hint in milliseconds.
	RetryMillis uint64
	// Msg is the FrameReject free-text message.
	Msg string
	// Body is the JSON body of a FrameEval / FrameEvalResult (aliases the
	// parsed payload).
	Body []byte
}

// errShort is the positioned truncation error base.
var errShort = errors.New("serve: truncated frame")

// uvarintAt decodes a uvarint at *pos, advancing it.
func uvarintAt(b []byte, pos *int, field string) (uint64, error) {
	v, n := binary.Uvarint(b[*pos:])
	if n <= 0 {
		return 0, fmt.Errorf("serve: frame byte %d: bad uvarint %s: %w", *pos, field, errShort)
	}
	*pos += n
	return v, nil
}

// ParseFrame decodes one frame payload (the bytes after the length prefix)
// into f. It validates every field — event addresses against the canonical
// address space, counts against the protocol bounds, and trailing garbage
// — so a frame that parses is safe to act on.
func ParseFrame(payload []byte, f *Frame) error {
	if len(payload) == 0 {
		return errors.New("serve: empty frame")
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte cap", len(payload), MaxFrameBytes)
	}
	*f = Frame{Kind: payload[0], Addrs: f.Addrs[:0]}
	pos := 1
	switch f.Kind {
	case FrameEvent:
		var err error
		if f.Session, err = uvarintAt(payload, &pos, "session"); err != nil {
			return err
		}
		if f.Event.ID, err = uvarintAt(payload, &pos, "id"); err != nil {
			return err
		}
		if f.Event.ID == 0 {
			return errors.New("serve: event frame: id must be >= 1")
		}
		if f.Event.PC, err = uvarintAt(payload, &pos, "pc"); err != nil {
			return err
		}
		if f.Event.PC > trace.MaxAddr {
			return fmt.Errorf("serve: event frame: pc %#x beyond the canonical address space", f.Event.PC)
		}
		if f.Event.Addr, err = uvarintAt(payload, &pos, "addr"); err != nil {
			return err
		}
		if f.Event.Addr > trace.MaxAddr {
			return fmt.Errorf("serve: event frame: addr %#x beyond the canonical address space", f.Event.Addr)
		}
		chain, err := uvarintAt(payload, &pos, "chain")
		if err != nil {
			return err
		}
		if chain > math.MaxUint32 {
			return fmt.Errorf("serve: event frame: chain %d overflows uint32", chain)
		}
		f.Event.Chain = uint32(chain)
	case FramePredict:
		var err error
		if f.Session, err = uvarintAt(payload, &pos, "session"); err != nil {
			return err
		}
		if f.ID, err = uvarintAt(payload, &pos, "id"); err != nil {
			return err
		}
		n, err := uvarintAt(payload, &pos, "count")
		if err != nil {
			return err
		}
		if n > maxPredictAddrs {
			return fmt.Errorf("serve: predict frame: %d addresses exceeds the %d cap", n, maxPredictAddrs)
		}
		for i := uint64(0); i < n; i++ {
			a, err := uvarintAt(payload, &pos, "prefetch addr")
			if err != nil {
				return err
			}
			if a > trace.MaxAddr {
				return fmt.Errorf("serve: predict frame: addr %#x beyond the canonical address space", a)
			}
			f.Addrs = append(f.Addrs, a)
		}
	case FrameReject:
		var err error
		if f.Session, err = uvarintAt(payload, &pos, "session"); err != nil {
			return err
		}
		if f.ID, err = uvarintAt(payload, &pos, "id"); err != nil {
			return err
		}
		if pos >= len(payload) {
			return fmt.Errorf("serve: reject frame: missing code: %w", errShort)
		}
		f.Code = payload[pos]
		pos++
		if f.Code == 0 || f.Code > RejectBadRequest {
			return fmt.Errorf("serve: reject frame: unknown code %d", f.Code)
		}
		if f.RetryMillis, err = uvarintAt(payload, &pos, "retry"); err != nil {
			return err
		}
		msg := payload[pos:]
		if len(msg) > maxRejectMsg {
			return fmt.Errorf("serve: reject frame: %d-byte message exceeds the %d cap", len(msg), maxRejectMsg)
		}
		f.Msg = string(msg)
		return nil // message consumes the remainder
	case FrameEval, FrameEvalResult:
		if pos >= len(payload) {
			return errors.New("serve: eval frame: empty body")
		}
		f.Body = payload[pos:]
		return nil // body consumes the remainder
	case FramePing, FramePong:
		// No body.
	default:
		return fmt.Errorf("serve: unknown frame kind %#x", f.Kind)
	}
	if pos != len(payload) {
		return fmt.Errorf("serve: frame has %d trailing bytes", len(payload)-pos)
	}
	return nil
}

// AppendEventFrame appends an encoded event frame payload (no length
// prefix) to dst.
func AppendEventFrame(dst []byte, session uint64, a trace.Access) []byte {
	dst = append(dst, FrameEvent)
	dst = binary.AppendUvarint(dst, session)
	dst = binary.AppendUvarint(dst, a.ID)
	dst = binary.AppendUvarint(dst, a.PC)
	dst = binary.AppendUvarint(dst, a.Addr)
	dst = binary.AppendUvarint(dst, uint64(a.Chain))
	return dst
}

// AppendPredictFrame appends an encoded predict frame payload to dst.
func AppendPredictFrame(dst []byte, session, id uint64, addrs []uint64) []byte {
	dst = append(dst, FramePredict)
	dst = binary.AppendUvarint(dst, session)
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = binary.AppendUvarint(dst, a)
	}
	return dst
}

// AppendRejectFrame appends an encoded reject frame payload to dst.
func AppendRejectFrame(dst []byte, session, id uint64, code byte, retryMillis uint64, msg string) []byte {
	if len(msg) > maxRejectMsg {
		msg = msg[:maxRejectMsg]
	}
	dst = append(dst, FrameReject)
	dst = binary.AppendUvarint(dst, session)
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, code)
	dst = binary.AppendUvarint(dst, retryMillis)
	return append(dst, msg...)
}

// AppendEvalFrame appends an encoded eval-request frame payload to dst.
func AppendEvalFrame(dst, body []byte) []byte {
	return append(append(dst, FrameEval), body...)
}

// AppendEvalResultFrame appends an encoded eval-result frame payload to dst.
func AppendEvalResultFrame(dst, body []byte) []byte {
	return append(append(dst, FrameEvalResult), body...)
}

// AppendPingFrame appends an encoded ping frame payload to dst.
func AppendPingFrame(dst []byte) []byte { return append(dst, FramePing) }

// AppendPongFrame appends an encoded pong frame payload to dst.
func AppendPongFrame(dst []byte) []byte { return append(dst, FramePong) }

// WriteFrame writes one length-prefixed frame (4-byte big-endian payload
// length, then the payload) to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return fmt.Errorf("serve: refusing to write a %d-byte frame", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// FrameReader decodes length-prefixed frames from a stream, reusing one
// internal buffer: the payload returned by Next is valid only until the
// following Next call.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r. If r is already a *bufio.Reader it is used
// directly (so a connection's sniffed bytes are not lost).
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{br: br}
}

// Next reads one frame payload. It returns io.EOF at a clean frame
// boundary and io.ErrUnexpectedEOF inside a frame.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.br, hdr[:1]); err != nil {
		return nil, err // clean EOF before a frame
	}
	if _, err := io.ReadFull(fr.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("serve: zero-length frame")
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("serve: frame length %d exceeds the %d-byte cap", n, MaxFrameBytes)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return fr.buf, nil
}
