package serve

import (
	"bytes"
	"testing"

	"pathfinder/internal/trace"
)

// FuzzServeFrame fuzzes the wire-protocol decoder: ParseFrame over raw
// payloads and the length-prefixed FrameReader over raw streams. The
// decoder must never panic or over-allocate, any accepted frame must
// re-encode to a payload that parses back to the same frame, and every
// validation rule (length-prefix bounds, truncated and oversized frames,
// corrupt session/address fields) must hold on adversarial input.
func FuzzServeFrame(f *testing.F) {
	// Seed corpus: one well-formed payload per frame kind...
	f.Add(AppendEventFrame(nil, 7, trace.Access{ID: 3, PC: 0x401000, Addr: 0x7fff0040, Chain: 2}))
	f.Add(AppendPredictFrame(nil, 7, 3, []uint64{0x1000, 0x1040}))
	f.Add(AppendPredictFrame(nil, 7, 4, nil))
	f.Add(AppendRejectFrame(nil, 7, 3, RejectQueueFull, 5, "queue full"))
	f.Add(AppendEvalFrame(nil, []byte(`{"req":1,"trace":"t","prefetcher":"nextline"}`)))
	f.Add(AppendEvalResultFrame(nil, []byte(`{"req":1,"metrics":{}}`)))
	f.Add(AppendPingFrame(nil))
	f.Add(AppendPongFrame(nil))
	// ... and known-bad shapes the validator must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0xEE, 0xDE, 0xAD})
	f.Add(AppendEventFrame(nil, 1, trace.Access{ID: 1, PC: 4096, Addr: 8192})[:3])
	f.Add(append(AppendPingFrame(nil), 0x01))
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Add(AppendEventFrame(nil, 1<<63, trace.Access{ID: 1<<64 - 1, PC: trace.MaxAddr, Addr: trace.MaxAddr, Chain: 1<<32 - 1}))

	f.Fuzz(func(t *testing.T, payload []byte) {
		var fr Frame
		if err := ParseFrame(payload, &fr); err == nil {
			checkParsedInvariants(t, payload, &fr)
			reencodeRoundTrip(t, payload, &fr)
		}

		// The same bytes as a raw stream: the frame reader must handle
		// arbitrary length prefixes without panicking or allocating past
		// the cap, and terminate (every iteration consumes input).
		r := NewFrameReader(bytes.NewReader(payload))
		for {
			p, err := r.Next()
			if err != nil {
				break
			}
			if len(p) == 0 || len(p) > MaxFrameBytes {
				t.Fatalf("FrameReader returned a %d-byte payload", len(p))
			}
		}

		// And as a framed stream: anything ParseFrame accepts must survive
		// the length-prefixed transport byte-identically.
		if len(payload) > 0 && len(payload) <= MaxFrameBytes {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, payload); err != nil {
				t.Fatalf("WriteFrame refused a legal payload size %d: %v", len(payload), err)
			}
			got, err := NewFrameReader(&buf).Next()
			if err != nil {
				t.Fatalf("framed payload did not read back: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("framing altered the payload")
			}
		}
	})
}

// checkParsedInvariants asserts the validation promises ParseFrame makes
// for any payload it accepts.
func checkParsedInvariants(t *testing.T, payload []byte, fr *Frame) {
	t.Helper()
	switch fr.Kind {
	case FrameEvent:
		if fr.Event.ID == 0 {
			t.Fatalf("accepted event with id 0")
		}
		if fr.Event.PC > trace.MaxAddr || fr.Event.Addr > trace.MaxAddr {
			t.Fatalf("accepted event beyond the canonical address space: %+v", fr.Event)
		}
	case FramePredict:
		if len(fr.Addrs) > maxPredictAddrs {
			t.Fatalf("accepted %d predict addrs", len(fr.Addrs))
		}
		for _, a := range fr.Addrs {
			if a > trace.MaxAddr {
				t.Fatalf("accepted predict addr %#x", a)
			}
		}
	case FrameReject:
		if fr.Code == 0 || fr.Code > RejectBadRequest {
			t.Fatalf("accepted reject code %d", fr.Code)
		}
		if len(fr.Msg) > maxRejectMsg {
			t.Fatalf("accepted %d-byte reject message", len(fr.Msg))
		}
	case FrameEval, FrameEvalResult:
		if len(fr.Body) == 0 {
			t.Fatalf("accepted eval frame with empty body")
		}
	case FramePing, FramePong:
	default:
		t.Fatalf("accepted unknown frame kind %#x", fr.Kind)
	}
}

// reencodeRoundTrip re-encodes a parsed frame with the Append* builders
// and verifies the result parses back to the same frame. (The encoding
// itself may differ from the input only for non-minimal uvarints, which
// the builders never produce; the decoded values must match exactly.)
func reencodeRoundTrip(t *testing.T, payload []byte, fr *Frame) {
	t.Helper()
	var enc []byte
	switch fr.Kind {
	case FrameEvent:
		enc = AppendEventFrame(nil, fr.Session, fr.Event)
	case FramePredict:
		enc = AppendPredictFrame(nil, fr.Session, fr.ID, fr.Addrs)
	case FrameReject:
		enc = AppendRejectFrame(nil, fr.Session, fr.ID, fr.Code, fr.RetryMillis, fr.Msg)
	case FrameEval:
		enc = AppendEvalFrame(nil, fr.Body)
	case FrameEvalResult:
		enc = AppendEvalResultFrame(nil, fr.Body)
	case FramePing:
		enc = AppendPingFrame(nil)
	case FramePong:
		enc = AppendPongFrame(nil)
	default:
		return
	}
	if len(enc) > MaxFrameBytes {
		t.Fatalf("re-encoding grew past the frame cap: %d bytes", len(enc))
	}
	var re Frame
	if err := ParseFrame(enc, &re); err != nil {
		t.Fatalf("re-encoded frame does not parse: %v (original %x)", err, payload)
	}
	if re.Kind != fr.Kind || re.Session != fr.Session || re.ID != fr.ID ||
		re.Event != fr.Event || re.Code != fr.Code || re.RetryMillis != fr.RetryMillis || re.Msg != fr.Msg {
		t.Fatalf("re-encode changed the frame:\n  was %+v\n  now %+v", fr, re)
	}
	if len(re.Addrs) != len(fr.Addrs) {
		t.Fatalf("re-encode changed the addr count: %d -> %d", len(fr.Addrs), len(re.Addrs))
	}
	for i := range re.Addrs {
		if re.Addrs[i] != fr.Addrs[i] {
			t.Fatalf("re-encode changed addr %d: %#x -> %#x", i, fr.Addrs[i], re.Addrs[i])
		}
	}
	if !bytes.Equal(re.Body, fr.Body) {
		t.Fatalf("re-encode changed the body")
	}
}
