package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/runner"
)

// Config configures a Server. The zero value is usable: it binds
// 127.0.0.1:0, serves default-configuration PATHFINDER sessions, and takes
// the documented defaults below.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0"; port 0 picks a
	// free port, reported by Server.Addr).
	Addr string
	// NewPrefetcher builds the online prefetcher behind one session. The
	// default builds a DefaultConfig PATHFINDER seeded from the session id
	// (deterministic per id, independent across ids).
	NewPrefetcher func(session uint64) (prefetch.Prefetcher, error)
	// Budget caps predictions per event (default prefetch.Budget).
	Budget int
	// Shards is the session-table shard count, rounded up to a power of
	// two (default 8).
	Shards int
	// MaxSessions caps resident sessions; admission enforces
	// ceil(MaxSessions/Shards) per shard (default 1024). When a shard is
	// full, its least-recently-used idle session is evicted to make room;
	// if every resident session has work in flight the new session is
	// rejected with RejectMaxSessions.
	MaxSessions int
	// QueueDepth bounds each session's event queue (default 256). An
	// event arriving at a full queue is rejected with RejectQueueFull.
	QueueDepth int
	// OutboundDepth bounds each connection's outbound reply queue
	// (default 256). When it fills — a slow client — the senders block,
	// which in turn fills the session queues and surfaces as
	// RejectQueueFull: memory stays bounded by construction.
	OutboundDepth int
	// MaxInFlight caps queued events across all sessions (0: no extra
	// cap; the table is already bounded by MaxSessions x QueueDepth).
	MaxInFlight int
	// SpillSessions caps the server-wide ring of evicted-session
	// snapshots (default 64; negative disables spilling). When LRU
	// pressure evicts an idle session whose prefetcher can serialize
	// itself (exposes Save(io.Writer) error, as PATHFINDER does), its
	// learned weights and duplicate-detection watermark are spilled into
	// the ring; if the same session id returns while the snapshot is
	// still resident, RestorePrefetcher rebuilds it and the session
	// resumes exactly where it left off instead of relearning from
	// scratch. When the ring overflows, the oldest snapshot is dropped.
	SpillSessions int
	// RestorePrefetcher rebuilds a session prefetcher from a snapshot
	// written by its Save method. Defaults to the PATHFINDER loader when
	// NewPrefetcher is defaulted; with a custom NewPrefetcher it must be
	// supplied, or spilling stays disabled (the server cannot know the
	// snapshot's concrete type).
	RestorePrefetcher func(session uint64, r io.Reader) (prefetch.Prefetcher, error)
	// RetryHintMillis is the retry-after hint attached to queue-full and
	// overloaded rejects (default 5).
	RetryHintMillis int
	// DrainTimeout bounds Close's graceful drain (default 10s).
	DrainTimeout time.Duration
	// Runner evaluates one-shot FrameEval jobs (default: a fresh
	// runner.New with default config, sharing its caches across jobs).
	Runner *runner.Runner
	// MaxConcurrentEvals caps evaluation jobs running at once (default 2;
	// each job already parallelises internally via the runner pool).
	MaxConcurrentEvals int
	// Fault, if non-nil, is consulted at fault.SiteServe before each
	// event is processed; injected hangs and latency delay predictions
	// but never change them. Chaos testing only.
	Fault fault.Injector
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.NewPrefetcher == nil {
		cfg.NewPrefetcher = DefaultSessionPrefetcher
		if cfg.RestorePrefetcher == nil {
			cfg.RestorePrefetcher = func(_ uint64, r io.Reader) (prefetch.Prefetcher, error) {
				return core.LoadSession(r)
			}
		}
	}
	if cfg.SpillSessions == 0 {
		cfg.SpillSessions = 64
	}
	if cfg.Budget <= 0 {
		cfg.Budget = prefetch.Budget
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	cfg.Shards = shards
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.OutboundDepth <= 0 {
		cfg.OutboundDepth = 256
	}
	if cfg.RetryHintMillis <= 0 {
		cfg.RetryHintMillis = 5
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MaxConcurrentEvals <= 0 {
		cfg.MaxConcurrentEvals = 2
	}
	if cfg.Runner == nil {
		cfg.Runner = runner.New(runner.Config{})
	}
	return cfg
}

// DefaultSessionPrefetcher is the default per-session factory: a
// DefaultConfig PATHFINDER whose SNN seed derives deterministically from
// the session id, so a session's learned state depends only on its own id
// and event stream — never on arrival order across sessions.
func DefaultSessionPrefetcher(session uint64) (prefetch.Prefetcher, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = int64(session) | 1 // any odd seed; never zero
	return core.New(cfg)
}

// response is one server-to-client reply queued on a connection's bounded
// outbound channel; the writer goroutine encodes it per the connection's
// mode (binary or JSON).
type response struct {
	kind        byte
	session, id uint64
	addrs       []uint64
	code        byte
	retryMillis uint64
	msg         string
	body        []byte
	start       int64 // accept timestamp (UnixNano) for the latency histogram; 0: untimed
}

// Server is the prefetch-as-a-service daemon. Build one with New; it
// serves until Shutdown or Close.
type Server struct {
	cfg Config

	ln      net.Listener
	baseCtx context.Context
	cancel  context.CancelFunc

	table    *table
	spill    *spillStore // nil: eviction spilling disabled
	draining atomic.Bool
	inflight atomic.Int64

	acceptWG sync.WaitGroup
	workers  sync.WaitGroup // session workers
	evals    sync.WaitGroup // in-flight evaluation jobs
	readers  sync.WaitGroup
	writers  sync.WaitGroup
	evalSem  chan struct{}

	mu    sync.Mutex
	conns map[*conn]struct{}

	shutOnce sync.Once
	shutErr  error
}

// New binds cfg.Addr and starts serving. The returned server is live:
// connect to Addr(), or call Shutdown/Close to stop it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		baseCtx: ctx,
		cancel:  cancel,
		evalSem: make(chan struct{}, cfg.MaxConcurrentEvals),
		conns:   make(map[*conn]struct{}),
	}
	perShard := (cfg.MaxSessions + cfg.Shards - 1) / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	s.table = newTable(s, cfg.Shards, perShard)
	if cfg.SpillSessions > 0 && cfg.RestorePrefetcher != nil {
		s.spill = newSpillStore(cfg.SpillSessions)
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SessionCount returns the number of resident sessions.
func (s *Server) SessionCount() int { return s.table.sessionCount() }

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		c := &conn{
			srv:      s,
			nc:       nc,
			out:      make(chan response, s.cfg.OutboundDepth),
			dead:     make(chan struct{}),
			finished: make(chan struct{}),
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		if m := serveTele.Load(); m != nil {
			m.conns.Add(1)
			m.connsTotal.Inc()
		}
		s.readers.Add(1)
		go c.readLoop()
		s.writers.Add(1)
		go c.writeLoop()
	}
}

// Shutdown gracefully drains the server: it stops accepting connections
// and events (new events are rejected with RejectDraining), flushes every
// already-accepted event through its session worker exactly once, delivers
// the pending replies, and closes the connections. The drain is bounded by
// ctx: on expiry the remaining connections are force-closed (accepted
// events are still processed — their replies are dropped — so session
// state never forks) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() { s.shutErr = s.shutdown(ctx) })
	return s.shutErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	s.acceptWG.Wait()
	// The draining flag is observed under each shard's mutex, so after
	// closeAll walks the shards no further event can be enqueued and
	// closing the session queues is safe.
	s.table.closeAll()

	forced := false
	workersDone := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.evals.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Deadline: cancel injected hangs and unblock workers stuck on
		// slow clients' outbound queues, then let them finish draining.
		forced = true
		s.cancel()
		s.killConns()
		<-workersDone
	}

	// All replies are queued; close the connections (flushing first on
	// the graceful path).
	s.mu.Lock()
	for c := range s.conns {
		if forced {
			c.markDead()
		} else {
			c.finish()
		}
	}
	s.mu.Unlock()

	connsDone := make(chan struct{})
	go func() {
		s.writers.Wait()
		s.readers.Wait()
		close(connsDone)
	}()
	select {
	case <-connsDone:
	case <-ctx.Done():
		if !forced {
			forced = true
			s.killConns()
		}
		<-connsDone
	}
	s.cancel()
	if forced {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("serve: drain cut short: %w", err)
		}
	}
	return nil
}

// killConns force-closes every connection.
func (s *Server) killConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.markDead()
	}
}

// Close shuts the server down, allowing the configured DrainTimeout for
// the graceful drain.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// conn is one client connection: a reader goroutine that parses and
// dispatches frames, a bounded outbound queue, and a writer goroutine that
// encodes replies.
type conn struct {
	srv  *Server
	nc   net.Conn
	json atomic.Bool

	out      chan response
	dead     chan struct{} // closed when the connection is unusable
	deadOnce sync.Once
	finished chan struct{} // closed by the server after the last reply is queued
	finOnce  sync.Once
}

// markDead makes the connection unusable: senders stop blocking, the
// writer discards, and the socket closes (unblocking the reader).
func (c *conn) markDead() {
	c.deadOnce.Do(func() {
		close(c.dead)
		c.nc.Close()
	})
}

// finish tells the writer no further replies are coming: flush and close.
func (c *conn) finish() {
	c.finOnce.Do(func() { close(c.finished) })
}

// send queues one reply. It blocks while the outbound queue is full —
// that back-pressure is what keeps a slow client's memory bounded — and
// returns false if the connection died instead.
func (c *conn) send(r response) bool {
	if m := serveTele.Load(); m != nil {
		m.outDepthPeak.SetMax(int64(len(c.out)) + 1)
	}
	select {
	case c.out <- r:
		return true
	case <-c.dead:
		return false
	}
}

// readLoop sniffs the protocol mode, then parses and dispatches frames
// until the connection fails or the client disconnects.
func (c *conn) readLoop() {
	defer c.srv.readers.Done()
	defer c.markDead()
	br := bufio.NewReader(c.nc)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	m := serveTele.Load()
	if first[0] == '{' {
		c.json.Store(true)
		c.readJSON(br)
		return
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != Magic {
		if m != nil {
			m.frameErrors.Inc()
		}
		c.send(response{kind: FrameReject, code: RejectBadRequest, msg: "bad magic"})
		return
	}
	fr := NewFrameReader(br)
	var f Frame
	for {
		payload, err := fr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && m != nil {
				m.frameErrors.Inc()
			}
			return
		}
		if m != nil {
			m.frames.Inc()
		}
		if err := ParseFrame(payload, &f); err != nil {
			// A frame that fails validation means the stream cannot be
			// trusted any further: reject and drop the connection. The
			// client resynchronises by reconnecting (stale rejects make
			// its resends idempotent).
			if m != nil {
				m.frameErrors.Inc()
			}
			c.send(response{kind: FrameReject, code: RejectBadRequest, msg: err.Error()})
			return
		}
		if !c.dispatch(&f) {
			return
		}
	}
}

// readJSON is the newline-JSON debug loop.
func (c *conn) readJSON(br *bufio.Reader) {
	m := serveTele.Load()
	var f Frame
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			return
		}
		if len(line) > MaxFrameBytes {
			if m != nil {
				m.frameErrors.Inc()
			}
			c.send(response{kind: FrameReject, code: RejectBadRequest, msg: "line too long"})
			return
		}
		if m != nil {
			m.frames.Inc()
		}
		if perr := parseJSONFrame(line, &f); perr != nil {
			if m != nil {
				m.frameErrors.Inc()
			}
			c.send(response{kind: FrameReject, code: RejectBadRequest, msg: perr.Error()})
			return
		}
		if !c.dispatch(&f) {
			return
		}
		if err != nil { // EOF after a final unterminated line
			return
		}
	}
}

// dispatch routes one parsed frame; it returns false when the connection
// should close.
func (c *conn) dispatch(f *Frame) bool {
	switch f.Kind {
	case FrameEvent:
		start := time.Now().UnixNano()
		code := c.srv.table.enqueue(c, f.Session, f.Event, start)
		if code != 0 {
			var retry uint64
			if code == RejectQueueFull || code == RejectOverloaded {
				retry = uint64(c.srv.cfg.RetryHintMillis)
			}
			if m := serveTele.Load(); m != nil {
				m.shedFor(code).Inc()
				m.shed.Inc()
			}
			return c.send(response{
				kind:        FrameReject,
				session:     f.Session,
				id:          f.Event.ID,
				code:        code,
				retryMillis: retry,
			})
		}
		return true
	case FramePing:
		return c.send(response{kind: FramePong})
	case FrameEval:
		c.srv.handleEval(c, f.Body)
		return true
	default:
		// Clients must not send server-side frame kinds.
		if m := serveTele.Load(); m != nil {
			m.frameErrors.Inc()
		}
		c.send(response{kind: FrameReject, code: RejectBadRequest, msg: "unexpected frame kind"})
		return false
	}
}

// writeLoop encodes queued replies, batching everything available before
// each flush. It exits discarding on a dead connection, or flushing and
// closing on the graceful-finish signal.
func (c *conn) writeLoop() {
	defer func() {
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		if m := serveTele.Load(); m != nil {
			m.conns.Add(-1)
		}
		c.srv.writers.Done()
	}()
	bw := bufio.NewWriter(c.nc)
	var scratch []byte
	write := func(r response) {
		if err := c.writeResponse(bw, &scratch, r); err != nil {
			c.markDead()
		}
		if r.start != 0 {
			if m := serveTele.Load(); m != nil {
				m.latency.Observe(uint64(time.Now().UnixNano() - r.start))
			}
		}
	}
	for {
		select {
		case r := <-c.out:
			write(r)
			// Batch whatever else is already queued, then flush once.
		batch:
			for {
				select {
				case r := <-c.out:
					write(r)
				default:
					break batch
				}
			}
			if err := bw.Flush(); err != nil {
				c.markDead()
			}
		case <-c.dead:
			// Discard whatever is queued so blocked senders drain, then
			// exit. Late sends select on dead and give up on their own.
			for {
				select {
				case <-c.out:
				default:
					return
				}
			}
		case <-c.finished:
			for {
				select {
				case r := <-c.out:
					write(r)
				default:
					bw.Flush()
					c.nc.Close()
					return
				}
			}
		}
	}
}

// writeResponse encodes one reply in the connection's mode.
func (c *conn) writeResponse(bw *bufio.Writer, scratch *[]byte, r response) error {
	if c.json.Load() {
		b, err := json.Marshal(jsonResponse(r))
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	p := (*scratch)[:0]
	switch r.kind {
	case FramePredict:
		p = AppendPredictFrame(p, r.session, r.id, r.addrs)
	case FrameReject:
		p = AppendRejectFrame(p, r.session, r.id, r.code, r.retryMillis, r.msg)
	case FrameEvalResult:
		p = AppendEvalResultFrame(p, r.body)
	case FramePong:
		p = AppendPongFrame(p)
	default:
		return fmt.Errorf("serve: unencodable response kind %#x", r.kind)
	}
	*scratch = p
	return WriteFrame(bw, p)
}
