package serve

import (
	"bytes"
	"strconv"
	"sync"
	"sync/atomic"

	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
)

// queuedEvent is one accepted event waiting in a session's bounded queue:
// the access, the connection its prediction goes back to, and the accept
// timestamp for the latency histogram.
type queuedEvent struct {
	acc   trace.Access
	c     *conn
	start int64
}

// session is one client session: a private online prefetcher plus a
// bounded event queue drained by a dedicated worker goroutine. All fields
// below the queue are guarded by the owning shard's mutex; pending is
// atomic because the worker decrements it without the lock.
type session struct {
	id uint64
	pf prefetch.Prefetcher

	// q is the bounded event queue. Capacity equals the configured
	// QueueDepth; the pending counter gates sends, so a send under the
	// shard lock never blocks. Closed (by closeAll) to drain the session.
	q chan queuedEvent
	// stop makes the worker exit immediately; only ever closed while the
	// session is idle (pending == 0), so no accepted event is abandoned.
	stop chan struct{}
	// pending counts accepted-but-not-yet-fully-processed events. The
	// worker decrements it only after the event's reply has been handed to
	// the connection, so pending == 0 means the session is quiescent and
	// safe to evict.
	pending atomic.Int32

	// lastID is the largest accepted event id (shard mutex). Events with
	// id <= lastID are duplicates of already-accepted work and are
	// rejected RejectStale, which makes client retries idempotent.
	lastID uint64
	// shedID, when non-zero, is the id of the first event shed since the
	// last acceptance: the session is "wedged" and accepts only that exact
	// id next (go-back-N), so a shed in the middle of a pipelined burst
	// cannot silently skip an event. Cleared on the next acceptance.
	shedID uint64

	// LRU links within the shard (head = most recently used).
	prev, next *session
}

// faultKey names one event for the SiteServe injector: "session/id".
func (s *session) faultKey(id uint64) string {
	return strconv.FormatUint(s.id, 10) + "/" + strconv.FormatUint(id, 10)
}

// run is the session worker: it drains the queue in order, computing and
// sending one prediction per accepted event. It exits when the queue is
// closed (graceful drain, after delivering everything) or stop is closed
// (idle eviction).
func (s *session) run(srv *Server) {
	defer func() {
		if m := serveTele.Load(); m != nil {
			m.sessions.Add(-1)
		}
		srv.workers.Done()
	}()
	for {
		select {
		case ev, ok := <-s.q:
			if !ok {
				return
			}
			s.process(srv, ev)
		case <-s.stop:
			return
		}
	}
}

// process computes and delivers the prediction for one accepted event.
// Fault injection (SiteServe) may only delay it — the prediction itself is
// a pure function of the session's accepted event sequence, so injected
// latency and hangs never change what is served.
func (s *session) process(srv *Server, ev queuedEvent) {
	if inj := srv.cfg.Fault; inj != nil {
		// The injected sleep honours the server's base context, so a
		// forced shutdown interrupts a hung worker.
		_ = inj.Inject(srv.baseCtx, fault.SiteServe, s.faultKey(ev.acc.ID), 0)
	}
	addrs := s.pf.Advise(ev.acc, srv.cfg.Budget)
	if len(addrs) > srv.cfg.Budget {
		addrs = addrs[:srv.cfg.Budget]
	}
	// Advise may return a buffer it reuses; copy and block-align exactly
	// like the single-process prefetch-file driver does.
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = a &^ (trace.BlockBytes - 1)
	}
	delivered := ev.c.send(response{
		kind:    FramePredict,
		session: s.id,
		id:      ev.acc.ID,
		addrs:   out,
		start:   ev.start,
	})
	if m := serveTele.Load(); m != nil && !delivered {
		m.dropped.Inc()
	}
	s.pending.Add(-1)
	srv.inflight.Add(-1)
}

// shard is one power-of-two slice of the session table: a map plus an
// intrusive LRU list, under one mutex.
type shard struct {
	mu     sync.Mutex
	m      map[uint64]*session
	head   *session // most recently used
	tail   *session // least recently used
	cap    int
	closed bool
}

// pushFront inserts s at the MRU end (shard mutex held).
func (sh *shard) pushFront(s *session) {
	s.prev = nil
	s.next = sh.head
	if sh.head != nil {
		sh.head.prev = s
	}
	sh.head = s
	if sh.tail == nil {
		sh.tail = s
	}
}

// remove unlinks s (shard mutex held).
func (sh *shard) remove(s *session) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		sh.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		sh.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

// moveFront marks s most recently used (shard mutex held).
func (sh *shard) moveFront(s *session) {
	if sh.head == s {
		return
	}
	sh.remove(s)
	sh.pushFront(s)
}

// evictIdle evicts the least-recently-used quiescent session, returning
// false when every resident session still has events in flight (shard
// mutex held). The evicted worker exits via its stop channel. With a
// spill store, the session's learned state and protocol watermarks are
// snapshotted first, so a returning session resumes instead of starting
// fresh (see docs/serving.md); without one (or when the prefetcher cannot
// serialize itself) the state is discarded. Quiescence (pending == 0)
// makes the snapshot safe: the worker only touches the prefetcher while
// an accepted event is pending.
func (sh *shard) evictIdle(spill *spillStore) bool {
	for s := sh.tail; s != nil; s = s.prev {
		if s.pending.Load() == 0 {
			close(s.stop)
			sh.remove(s)
			delete(sh.m, s.id)
			m := serveTele.Load()
			if m != nil {
				m.evicted.Inc()
			}
			if spill != nil {
				if e := snapshot(s); e != nil {
					spill.put(e)
					if m != nil {
						m.spilled.Inc()
					}
				}
			}
			return true
		}
	}
	return false
}

// table is the sharded session table.
type table struct {
	srv    *Server
	shards []shard
	mask   uint64
}

// newTable builds a table with the configured (power-of-two) shard count.
func newTable(srv *Server, shards, perShardCap int) *table {
	t := &table{srv: srv, shards: make([]shard, shards), mask: uint64(shards - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*session)
		t.shards[i].cap = perShardCap
	}
	return t
}

// splitmix64 spreads session ids across shards even when clients pick
// adjacent or adversarial ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// enqueue admits one event into its session's queue, creating (or
// evicting into room for) the session as needed. It returns 0 on
// acceptance or the reject code, and never blocks: the pending counter
// gates the buffered channel send.
func (t *table) enqueue(c *conn, sid uint64, acc trace.Access, start int64) byte {
	sh := &t.shards[splitmix64(sid)&t.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed || t.srv.draining.Load() {
		return RejectDraining
	}
	m := serveTele.Load()
	s := sh.m[sid]
	if s == nil {
		if len(sh.m) >= sh.cap && !sh.evictIdle(t.srv.spill) {
			return RejectMaxSessions
		}
		var (
			pf       prefetch.Prefetcher
			restored *spillEntry
		)
		if t.srv.spill != nil {
			if e, ok := t.srv.spill.take(sid); ok {
				if rpf, err := t.srv.cfg.RestorePrefetcher(sid, bytes.NewReader(e.blob)); err == nil {
					pf, restored = rpf, e
					if m != nil {
						m.restored.Inc()
					}
				} else if m != nil {
					// A corrupt snapshot falls back to a fresh session —
					// exactly what the id would have gotten without a spill
					// store — but the failure is counted, not swallowed.
					m.restoreErrors.Inc()
				}
			}
		}
		if pf == nil {
			var err error
			if pf, err = t.srv.cfg.NewPrefetcher(sid); err != nil {
				return RejectBadRequest
			}
		}
		s = &session{
			id:   sid,
			pf:   pf,
			q:    make(chan queuedEvent, t.srv.cfg.QueueDepth),
			stop: make(chan struct{}),
		}
		if restored != nil {
			s.lastID, s.shedID = restored.lastID, restored.shedID
		}
		sh.m[sid] = s
		sh.pushFront(s)
		if m != nil {
			m.sessions.Add(1)
			m.sessionsPeak.SetMax(m.sessions.Value())
			m.sessionsTotal.Inc()
		}
		t.srv.workers.Add(1)
		go s.run(t.srv)
	} else {
		sh.moveFront(s)
	}
	if acc.ID <= s.lastID {
		return RejectStale
	}
	if s.shedID != 0 && acc.ID != s.shedID {
		// Wedged: an earlier event was shed and must be resent first, or
		// the session's accepted stream would skip it.
		return RejectQueueFull
	}
	if int(s.pending.Load()) >= t.srv.cfg.QueueDepth {
		if s.shedID == 0 {
			s.shedID = acc.ID
		}
		return RejectQueueFull
	}
	if max := t.srv.cfg.MaxInFlight; max > 0 && t.srv.inflight.Load() >= int64(max) {
		if s.shedID == 0 {
			s.shedID = acc.ID
		}
		return RejectOverloaded
	}
	s.shedID = 0
	s.lastID = acc.ID
	depth := s.pending.Add(1)
	t.srv.inflight.Add(1)
	s.q <- queuedEvent{acc: acc, c: c, start: start}
	if m != nil {
		m.accepted.Inc()
		m.queueDepth.Observe(uint64(depth))
		m.queueDepthPeak.SetMax(int64(depth))
	}
	return 0
}

// closeAll marks every shard closed and closes every resident session's
// queue: the workers drain what was accepted — exactly once — and exit.
// Called only from the server's shutdown path, after draining is set.
func (t *table) closeAll() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if !sh.closed {
			sh.closed = true
			for _, s := range sh.m {
				close(s.q)
			}
		}
		sh.mu.Unlock()
	}
}

// sessionCount returns the number of resident sessions (for tests and the
// admission gauge cross-check).
func (t *table) sessionCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
