package serve

// Test-side client machinery shared by the protocol, backpressure and
// integration-harness suites: a minimal binary-protocol connection, the
// single-process replay that served streams must match bit-for-bit, and a
// go-back-N session driver that implements the client retry protocol of
// docs/serving.md (optionally misbehaving under seeded fault draws).

import (
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/prefetch"
	"pathfinder/internal/trace"
	"pathfinder/internal/workload"
)

// testConn is a minimal binary-protocol client connection.
type testConn struct {
	t    testing.TB
	nc   net.Conn
	fr   *FrameReader
	wbuf []byte
}

// dialBinary connects and sends the protocol magic.
func dialBinary(t testing.TB, addr string) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	if _, err := nc.Write([]byte(Magic)); err != nil {
		t.Fatalf("write magic: %v", err)
	}
	return &testConn{t: t, nc: nc, fr: NewFrameReader(nc)}
}

func (c *testConn) close() { c.nc.Close() }

// writeEvent sends one event frame.
func (c *testConn) writeEvent(session uint64, a trace.Access) error {
	c.wbuf = AppendEventFrame(c.wbuf[:0], session, a)
	return WriteFrame(c.nc, c.wbuf)
}

// read decodes the next frame, copying the reusable fields.
func (c *testConn) read() (Frame, error) {
	payload, err := c.fr.Next()
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := ParseFrame(payload, &f); err != nil {
		return Frame{}, err
	}
	f.Addrs = append([]uint64(nil), f.Addrs...)
	if f.Body != nil {
		f.Body = append([]byte(nil), f.Body...)
	}
	return f, nil
}

// mustRead fails the test on any read error.
func (c *testConn) mustRead() Frame {
	c.t.Helper()
	f, err := c.read()
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return f
}

// nextLineFactory serves NextLine sessions — instant, deterministic, and
// cheap, for tests that stress the serving machinery rather than the SNN.
func nextLineFactory(uint64) (prefetch.Prefetcher, error) { return &prefetch.NextLine{}, nil }

// genTrace materializes a deterministic workload trace.
func genTrace(t testing.TB, name string, n int, seed int64) []trace.Access {
	t.Helper()
	accs, err := workload.Generate(name, n, seed)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return accs
}

// expectedPredictions replays accs through a fresh prefetcher from the
// same factory the server uses — the single-process path the served
// prediction stream must match bit-for-bit.
func expectedPredictions(t testing.TB, factory func(uint64) (prefetch.Prefetcher, error), session uint64, accs []trace.Access, budget int) [][]uint64 {
	t.Helper()
	pf, err := factory(session)
	if err != nil {
		t.Fatalf("factory(%d): %v", session, err)
	}
	out := make([][]uint64, len(accs))
	for i, a := range accs {
		addrs := pf.Advise(a, budget)
		if len(addrs) > budget {
			addrs = addrs[:budget]
		}
		cp := make([]uint64, len(addrs))
		for j, x := range addrs {
			cp[j] = x &^ (trace.BlockBytes - 1)
		}
		out[i] = cp
	}
	return out
}

// chaosOpts configures the go-back-N session driver. Probabilities are
// evaluated once per (session, event) from the injector's deterministic
// draws; the zero value is a well-behaved client.
type chaosOpts struct {
	inj      *fault.Seeded
	window   int           // max unacknowledged events in flight
	slowP    float64       // sleep slowFor before sending this event
	slowFor  time.Duration // default 200us
	corruptP float64       // send a corrupt frame first (server closes the conn)
	dropP    float64       // "lose" the frame before sending, forcing a resend
	discP    float64       // disconnect mid-stream before this event
	timeout  time.Duration // per-read deadline (default 5s)
}

// sessionResult is what the driver observed for one session.
type sessionResult struct {
	// preds[i] is access i's prediction, nil when the reply was lost to a
	// disconnect and the acceptance was confirmed by a stale reject
	// instead (lostPreds counts those).
	preds      [][]uint64
	lostPreds  int
	reconnects int
	sheds      int
}

// runSession drives one session's access stream through the server with
// the go-back-N client protocol: a bounded window, resend-from-shed on
// queue-full rejects, resend-from-first-unconfirmed on reconnect, and
// stale rejects treated as acceptance confirmations. It returns only when
// every access has been accepted by the server exactly once.
func runSession(t testing.TB, addr string, sid uint64, accs []trace.Access, o chaosOpts) sessionResult {
	t.Helper()
	if o.window <= 0 {
		o.window = 16
	}
	if o.timeout <= 0 {
		o.timeout = 5 * time.Second
	}
	if o.slowFor <= 0 {
		o.slowFor = 200 * time.Microsecond
	}
	idx := make(map[uint64]int, len(accs))
	for i, a := range accs {
		idx[a.ID] = i
	}
	res := sessionResult{preds: make([][]uint64, len(accs))}
	known := make([]bool, len(accs)) // accepted (prediction seen or stale-confirmed)
	gotPred := make([]bool, len(accs))
	sentOnce := make(map[string]bool) // one-shot fault draws already spent
	draw := func(kind string, i int) bool {
		if o.inj == nil {
			return false
		}
		key := strconv.FormatUint(sid, 10) + "/" + strconv.FormatUint(accs[i].ID, 10)
		var p float64
		switch kind {
		case "client-slow":
			p = o.slowP
		case "client-corrupt":
			p = o.corruptP
		case "client-drop":
			p = o.dropP
		case "client-disc":
			p = o.discP
		}
		if o.inj.Draw(kind, key) >= p {
			return false
		}
		once := kind + "/" + key
		if sentOnce[once] {
			return false // each one-shot misbehaviour fires once per event
		}
		sentOnce[once] = true
		return true
	}

	var c *testConn
	base, next, acked := 0, 0, 0
	// outstanding counts sent-but-unanswered frames on the current conn:
	// every event frame draws exactly one reply, and capping how many are
	// unread keeps this driver from becoming its own slow client (unread
	// replies otherwise pile up until both TCP buffers fill and the
	// send/read loop deadlocks against the server's bounded queues).
	outstanding := 0
	reconnect := func() {
		if c != nil {
			c.close()
			res.reconnects++
		}
		c = dialBinary(t, addr)
		next = base
		outstanding = 0
	}
	reconnect()
	defer c.close()

	for iters, maxIters := 0, 500*len(accs)+10_000; acked < len(accs); iters++ {
		if iters > maxIters {
			t.Fatalf("session %d: no progress after %d iterations (acked %d/%d)", sid, iters, acked, len(accs))
		}
		for base < len(accs) && known[base] {
			base++
		}
		// Send while the window has room, both in unacked events and in
		// unread replies.
		for next < len(accs) && next-base < o.window && outstanding < o.window {
			i := next
			if known[i] {
				next++
				continue
			}
			if draw("client-disc", i) {
				reconnect()
				continue
			}
			if draw("client-slow", i) {
				time.Sleep(o.slowFor)
			}
			if draw("client-corrupt", i) {
				// A frame the decoder must reject: unknown kind, garbage.
				_ = WriteFrame(c.nc, []byte{0xEE, 0xDE, 0xAD})
				// The server rejects and closes; resynchronise.
				reconnect()
				continue
			}
			if draw("client-drop", i) {
				continue // "lost in transit": resend on the next pass
			}
			if err := c.writeEvent(sid, accs[i]); err != nil {
				reconnect()
				continue
			}
			next++
			outstanding++
		}
		// Read one reply.
		c.nc.SetReadDeadline(time.Now().Add(o.timeout))
		f, err := c.read()
		if err != nil {
			if acked < len(accs) {
				reconnect()
				continue
			}
			break
		}
		if outstanding > 0 {
			outstanding--
		}
		switch f.Kind {
		case FramePredict:
			i, ok := idx[f.ID]
			if !ok {
				t.Fatalf("session %d: prediction for unknown id %d", sid, f.ID)
			}
			if gotPred[i] {
				t.Fatalf("session %d: duplicate prediction for id %d", sid, f.ID)
			}
			gotPred[i] = true
			res.preds[i] = f.Addrs
			if !known[i] {
				known[i] = true
				acked++
			}
		case FrameReject:
			switch f.Code {
			case RejectStale:
				// The id was accepted earlier. Its prediction may still be
				// in flight (the reject path can overtake the worker), so
				// this confirms acceptance without writing off the reply —
				// lostPreds is recounted once the stream completes.
				i, ok := idx[f.ID]
				if !ok {
					t.Fatalf("session %d: stale reject for unknown id %d", sid, f.ID)
				}
				if !known[i] {
					known[i] = true
					acked++
				}
			case RejectQueueFull, RejectOverloaded:
				// The retry hint paces real clients; the harness retries
				// immediately — the read loop already serializes on the
				// server's replies, and sleeping here would turn shed-heavy
				// runs into multi-second waits.
				res.sheds++
				if i, ok := idx[f.ID]; ok && i < next && !known[i] {
					next = i // go back to the shed event
				}
			case RejectBadRequest:
				// Follows a corrupt frame; the server closes the conn and
				// the next read error triggers the reconnect.
			default:
				t.Fatalf("session %d: unexpected reject code %s", sid, RejectCodeName(f.Code))
			}
		default:
			t.Fatalf("session %d: unexpected frame kind %#x", sid, f.Kind)
		}
	}
	// Drain stragglers: predictions whose stale confirmation overtook them
	// are still on the wire; give them a moment to land before declaring
	// them lost.
	for drained := false; !drained && acked == len(accs); {
		c.nc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		f, err := c.read()
		if err != nil {
			drained = true
			break
		}
		if f.Kind == FramePredict {
			if i, ok := idx[f.ID]; ok && !gotPred[i] {
				gotPred[i] = true
				res.preds[i] = f.Addrs
			}
		}
	}
	for i := range known {
		if !known[i] {
			t.Fatalf("session %d: access %d never confirmed", sid, i)
		}
		if !gotPred[i] {
			res.lostPreds++
			res.preds[i] = nil
		}
	}
	return res
}

// assertPredictionsMatch compares a served stream against the
// single-process expectation, skipping entries whose replies were lost.
func assertPredictionsMatch(t testing.TB, sid uint64, got, want [][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("session %d: %d predictions, want %d", sid, len(got), len(want))
	}
	for i := range want {
		if got[i] == nil {
			continue // reply lost to a disconnect; acceptance was confirmed stale
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("session %d access %d: got %d addrs %v, want %d %v", sid, i, len(got[i]), got[i], len(want[i]), want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("session %d access %d addr %d: got %#x, want %#x", sid, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// fmtAddr is a tiny helper for building distinct per-test addresses in
// error messages (kept for symmetry; tests bind 127.0.0.1:0).
var _ = fmt.Sprintf
