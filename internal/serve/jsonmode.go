package serve

import (
	"encoding/json"
	"fmt"

	"pathfinder/internal/trace"
)

// jsonFrame is the newline-JSON debug form of a Frame: one JSON object per
// line, field names matching the binary protocol. It exists so a session
// can be driven with a terminal and `nc`; the binary protocol is the
// production surface.
type jsonFrame struct {
	Type        string          `json:"type"`
	Session     uint64          `json:"session,omitempty"`
	ID          uint64          `json:"id,omitempty"`
	PC          uint64          `json:"pc,omitempty"`
	Addr        uint64          `json:"addr,omitempty"`
	Chain       uint32          `json:"chain,omitempty"`
	Addrs       []uint64        `json:"addrs,omitempty"`
	Code        string          `json:"code,omitempty"`
	RetryMillis uint64          `json:"retry_ms,omitempty"`
	Msg         string          `json:"msg,omitempty"`
	Body        json.RawMessage `json:"body,omitempty"`
}

// kindNames maps frame kinds to their JSON "type" values.
var kindNames = map[byte]string{
	FrameEvent:      "event",
	FramePredict:    "predict",
	FrameReject:     "reject",
	FrameEval:       "eval",
	FrameEvalResult: "eval_result",
	FramePing:       "ping",
	FramePong:       "pong",
}

// parseJSONFrame decodes one JSON line into f, applying the same
// validation as ParseFrame.
func parseJSONFrame(line []byte, f *Frame) error {
	var j jsonFrame
	if err := json.Unmarshal(line, &j); err != nil {
		return fmt.Errorf("serve: bad json frame: %w", err)
	}
	*f = Frame{Addrs: f.Addrs[:0]}
	switch j.Type {
	case "event":
		f.Kind = FrameEvent
		f.Session = j.Session
		f.Event = trace.Access{ID: j.ID, PC: j.PC, Addr: j.Addr, Chain: j.Chain}
		if f.Event.ID == 0 {
			return fmt.Errorf("serve: json event: id must be >= 1")
		}
		if f.Event.PC > trace.MaxAddr || f.Event.Addr > trace.MaxAddr {
			return fmt.Errorf("serve: json event: address beyond the canonical address space")
		}
	case "eval":
		f.Kind = FrameEval
		if len(j.Body) == 0 {
			return fmt.Errorf("serve: json eval: empty body")
		}
		f.Body = j.Body
	case "ping":
		f.Kind = FramePing
	default:
		return fmt.Errorf("serve: unknown json frame type %q", j.Type)
	}
	return nil
}

// jsonResponse renders a server response as its JSON-mode object.
func jsonResponse(r response) jsonFrame {
	j := jsonFrame{Type: kindNames[r.kind], Session: r.session, ID: r.id}
	switch r.kind {
	case FramePredict:
		j.Addrs = r.addrs
		if j.Addrs == nil {
			j.Addrs = []uint64{} // explicit empty list beats a missing field in a debug stream
		}
	case FrameReject:
		j.Code = RejectCodeName(r.code)
		j.RetryMillis = r.retryMillis
		j.Msg = r.msg
	case FrameEvalResult:
		j.Body = json.RawMessage(r.body)
	}
	return j
}
