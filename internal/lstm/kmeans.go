package lstm

import "math/rand"

// KMeans1D clusters scalar values into k clusters with Lloyd's algorithm,
// returning each value's cluster assignment. Delta-LSTM uses this to split
// a trace into address-locality clusters before training (§4.3: "cluster
// each trace file into 6 clusters based on the locality of memory
// addresses").
func KMeans1D(values []float64, k int, iterations int, seed int64) []int {
	if k <= 0 || len(values) == 0 {
		return make([]int, len(values))
	}
	if k > len(values) {
		k = len(values)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = values[rng.Intn(len(values))]
	}
	assign := make([]int, len(values))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, v := range values {
			best := 0
			bestD := abs64(v - centers[0])
			for c := 1; c < k; c++ {
				if d := abs64(v - centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			} else {
				centers[c] = values[rng.Intn(len(values))]
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return assign
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
