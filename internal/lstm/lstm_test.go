package lstm

import (
	"math"
	"math/rand"
	"testing"

	"pathfinder/internal/trace"
)

func TestSigmoid(t *testing.T) {
	if got := sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := sigmoid(100); got < 0.999 {
		t.Errorf("sigmoid(100) = %v", got)
	}
}

func TestCellForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCell(3, 5, rng)
	h, cn, cache := c.Forward([]float64{1, -1, 0.5}, make([]float64, 5), make([]float64, 5))
	if len(h) != 5 || len(cn) != 5 || cache == nil {
		t.Fatalf("forward shapes wrong: h=%d c=%d", len(h), len(cn))
	}
	for _, v := range h {
		if v < -1 || v > 1 {
			t.Errorf("h value %v outside tanh*sigmoid range", v)
		}
	}
}

func TestCellForgetBiasInitialized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCell(2, 4, rng)
	for j := 0; j < 4; j++ {
		if c.B.W[4+j] != 1 {
			t.Errorf("forget bias [%d] = %v, want 1", j, c.B.W[4+j])
		}
	}
}

// TestCellGradientNumerically validates Backward against central finite
// differences on every parameter of a tiny cell.
func TestCellGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCell(2, 3, rng)
	x := []float64{0.5, -0.3}
	h0 := []float64{0.1, -0.2, 0.05}
	c0 := []float64{0.2, 0.0, -0.1}

	// Scalar loss: sum of h (dh = ones, dc = zeros).
	loss := func() float64 {
		h, _, _ := c.Forward(x, h0, c0)
		s := 0.0
		for _, v := range h {
			s += v
		}
		return s
	}

	_, _, cache := c.Forward(x, h0, c0)
	dh := []float64{1, 1, 1}
	dc := []float64{0, 0, 0}
	c.Backward(cache, dh, dc)

	const eps = 1e-6
	check := func(name string, p *Param) {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			up := loss()
			p.W[i] = orig - eps
			down := loss()
			p.W[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.G[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, p.G[i], numeric)
			}
		}
	}
	check("Wx", c.Wx)
	check("Wh", c.Wh)
	check("B", c.B)
}

func TestCellBackwardInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCell(2, 3, rng)
	x := []float64{0.4, -0.7}
	h0 := []float64{0.1, 0.3, -0.2}
	c0 := []float64{0.0, 0.1, 0.2}
	loss := func(xv []float64) float64 {
		h, _, _ := c.Forward(xv, h0, c0)
		s := 0.0
		for _, v := range h {
			s += v
		}
		return s
	}
	_, _, cache := c.Forward(x, h0, c0)
	dx, _, _ := c.Backward(cache, []float64{1, 1, 1}, []float64{0, 0, 0})
	const eps = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += eps
		up := loss(xp)
		xp[i] -= 2 * eps
		down := loss(xp)
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(1, 4, 4, 1, 1); err == nil {
		t.Error("accepted vocab < 2")
	}
	if _, err := NewModel(4, 0, 4, 1, 1); err == nil {
		t.Error("accepted embed < 1")
	}
}

func TestModelLearnsRepeatingSequence(t *testing.T) {
	// Sequence 0 1 2 0 1 2 ... must become predictable.
	m, err := NewModel(4, 8, 16, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		m.ResetState()
		in := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1}
		tg := []int{1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
		lastLoss, err = m.TrainWindow(in, tg, 0.01)
		if err != nil {
			t.Fatal(err)
		}
	}
	if lastLoss > 0.3 {
		t.Errorf("loss after training = %v, want < 0.3", lastLoss)
	}
	m.ResetState()
	m.Predict(0, 1)
	preds, _, err := m.Predict(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 2 {
		t.Errorf("after 0,1 predicted %d, want 2", preds[0])
	}
}

func TestModelPredictRejectsBadToken(t *testing.T) {
	m, err := NewModel(4, 4, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict(4, 1); err == nil {
		t.Error("accepted out-of-vocab token")
	}
}

func TestTrainWindowValidation(t *testing.T) {
	m, err := NewModel(4, 4, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainWindow([]int{0, 1}, []int{1}, 0.01); err == nil {
		t.Error("accepted mismatched window lengths")
	}
	if _, err := m.TrainWindow([]int{9}, []int{0}, 0.01); err == nil {
		t.Error("accepted out-of-vocab input")
	}
}

func TestKMeans1DSeparatesClusters(t *testing.T) {
	var vals []float64
	for i := 0; i < 50; i++ {
		vals = append(vals, float64(i))
	}
	for i := 0; i < 50; i++ {
		vals = append(vals, 1e6+float64(i))
	}
	assign := KMeans1D(vals, 2, 20, 1)
	if assign[0] == assign[50] {
		t.Error("far-apart groups assigned to the same cluster")
	}
	for i := 1; i < 50; i++ {
		if assign[i] != assign[0] || assign[50+i] != assign[50] {
			t.Fatal("cluster assignments not coherent within groups")
		}
	}
}

func TestKMeans1DDegenerate(t *testing.T) {
	if got := KMeans1D(nil, 3, 5, 1); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	got := KMeans1D([]float64{1, 1, 1}, 5, 5, 1)
	if len(got) != 3 {
		t.Error("k > n input mishandled")
	}
}

// strideTrace builds a simple repeating-delta trace for the end-to-end
// baseline tests.
func strideTrace(n int) []trace.Access {
	accs := make([]trace.Access, n)
	block := uint64(1000)
	for i := range accs {
		block += 2
		accs[i] = trace.Access{ID: uint64(i+1) * 10, PC: 0x40, Addr: trace.BlockAddr(block)}
	}
	return accs
}

func TestGenerateDeltaLSTMPredictsStride(t *testing.T) {
	cfg := DefaultDeltaLSTMConfig()
	cfg.Clusters = 1
	cfg.Epochs = 3
	cfg.TrainFrac = 0.2
	accs := strideTrace(800)
	pfs, err := GenerateDeltaLSTM(cfg, accs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfs) == 0 {
		t.Fatal("Delta-LSTM issued nothing")
	}
	// Count how many prefetches target the block after their trigger +2.
	byID := make(map[uint64]uint64)
	for _, a := range accs {
		byID[a.ID] = a.Block()
	}
	correct := 0
	for _, pf := range pfs {
		if pf.Block() == byID[pf.ID]+2 {
			correct++
		}
	}
	if float64(correct) < 0.5*float64(len(accs)) {
		t.Errorf("Delta-LSTM matched +2 on %d prefetches of %d accesses", correct, len(accs))
	}
}

func TestGenerateDeltaLSTMEmptyTrace(t *testing.T) {
	pfs, err := GenerateDeltaLSTM(DefaultDeltaLSTMConfig(), nil, 2)
	if err != nil || pfs != nil {
		t.Errorf("empty trace: pfs=%v err=%v", pfs, err)
	}
}

func TestGenerateDeltaLSTMSortedByID(t *testing.T) {
	cfg := DefaultDeltaLSTMConfig()
	cfg.Clusters = 2
	cfg.Epochs = 1
	accs := strideTrace(300)
	pfs, err := GenerateDeltaLSTM(cfg, accs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pfs); i++ {
		if pfs[i].ID < pfs[i-1].ID {
			t.Fatal("prefetch file not sorted by ID")
		}
	}
}

func TestGenerateVoyagerLearnsLoop(t *testing.T) {
	// A repeating loop over irregular addresses: Voyager's address
	// correlation should predict many next accesses.
	loop := []uint64{100, 9000, 250, 77, 31234, 555, 12, 40000}
	var accs []trace.Access
	for rep := 0; rep < 60; rep++ {
		for i, b := range loop {
			accs = append(accs, trace.Access{ID: uint64(rep*len(loop)+i+1) * 10, PC: 5, Addr: trace.BlockAddr(b)})
		}
	}
	cfg := DefaultVoyagerConfig()
	cfg.Epochs = 3
	pfs, err := GenerateVoyager(cfg, accs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfs) == 0 {
		t.Fatal("Voyager issued nothing")
	}
	// Index trace accesses by ID to find each trigger's successor.
	next := make(map[uint64]uint64) // trigger ID -> next block
	for i := 0; i+1 < len(accs); i++ {
		next[accs[i].ID] = accs[i+1].Block()
	}
	correct := 0
	for _, pf := range pfs {
		if pf.Block() == next[pf.ID] {
			correct++
		}
	}
	if float64(correct) < 0.3*float64(len(accs)) {
		t.Errorf("Voyager matched the successor on %d prefetches over %d accesses", correct, len(accs))
	}
}

func TestGenerateVoyagerTinyTrace(t *testing.T) {
	pfs, err := GenerateVoyager(DefaultVoyagerConfig(), strideTrace(2), 2)
	if err != nil || pfs != nil {
		t.Errorf("tiny trace: pfs=%v err=%v", pfs, err)
	}
}

func TestTopK(t *testing.T) {
	got := topK([]float64{0.1, 0.5, 0.2, 0.9}, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("topK = %v, want [3 1]", got)
	}
}

func TestArgmax(t *testing.T) {
	if got := argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("argmax = %d", got)
	}
}

func TestParamStepClearsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam(3, 0.1, rng)
	p.G[0] = 1
	w0 := p.W[0]
	p.Step(0.01, 1)
	if p.G[0] != 0 {
		t.Error("gradient not cleared")
	}
	if p.W[0] >= w0 {
		t.Error("positive gradient did not decrease weight")
	}
}

func BenchmarkModelTrainWindow(b *testing.B) {
	m, err := NewModel(128, 24, 32, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]int, 16)
	tg := make([]int, 16)
	for i := range in {
		in[i] = i % 128
		tg[i] = (i + 1) % 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainWindow(in, tg, 0.003); err != nil {
			b.Fatal(err)
		}
	}
}
