package lstm

import (
	"sort"

	"pathfinder/internal/trace"
)

// DeltaLSTMConfig configures the Delta-LSTM baseline (Hashemi et al.,
// "Learning Memory Access Patterns"), as the paper deploys it (§4.3): the
// trace is k-means-clustered into 6 address-locality clusters; per cluster
// an LSTM is trained on the first 10% of accesses to predict the next
// block delta out of a bounded vocabulary, then run over the full trace.
type DeltaLSTMConfig struct {
	// Clusters is the number of address-locality clusters (paper: 6).
	Clusters int
	// Vocab bounds the delta vocabulary: the Vocab-1 most frequent
	// training deltas get tokens; everything else is OOV.
	Vocab int
	// Embed, Hidden, Layers shape the per-cluster model. The paper's
	// Delta-LSTM uses two 128-wide layers; we default to two 32-wide
	// layers (see DESIGN.md's substitution table).
	Embed, Hidden, Layers int
	// TrainFrac is the leading fraction of each cluster used for
	// training (paper: 0.10).
	TrainFrac float64
	// Epochs is the number of passes over the training prefix.
	Epochs int
	// Window is the truncated-BPTT window length.
	Window int
	// LR is the Adam learning rate.
	LR float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultDeltaLSTMConfig returns the evaluation configuration.
func DefaultDeltaLSTMConfig() DeltaLSTMConfig {
	return DeltaLSTMConfig{
		Clusters:  6,
		Vocab:     128,
		Embed:     24,
		Hidden:    32,
		Layers:    2,
		TrainFrac: 0.10,
		Epochs:    2,
		Window:    16,
		LR:        3e-3,
		Seed:      1,
	}
}

// GenerateDeltaLSTM runs the full Delta-LSTM pipeline over a trace and
// returns its prefetch file (at most `budget` prefetches per access).
// Training happens strictly on each cluster's leading TrainFrac of
// accesses; inference then covers the whole trace, which is why unseen
// deltas in the tail hurt it (§5).
func GenerateDeltaLSTM(cfg DeltaLSTMConfig, accs []trace.Access, budget int) ([]trace.Prefetch, error) {
	if len(accs) == 0 {
		return nil, nil
	}
	if budget <= 0 {
		budget = 2
	}

	// 1. Cluster accesses by address locality.
	vals := make([]float64, len(accs))
	for i, a := range accs {
		vals[i] = float64(a.Block())
	}
	assign := KMeans1D(vals, cfg.Clusters, 25, cfg.Seed)

	clusters := make([][]int, cfg.Clusters) // access indexes per cluster
	for i, c := range assign {
		clusters[c] = append(clusters[c], i)
	}

	var out []trace.Prefetch
	for ci, idxs := range clusters {
		pfs, err := deltaLSTMCluster(cfg, accs, idxs, budget, cfg.Seed+int64(ci))
		if err != nil {
			return nil, err
		}
		out = append(out, pfs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// deltaLSTMCluster trains and runs one cluster's model.
func deltaLSTMCluster(cfg DeltaLSTMConfig, accs []trace.Access, idxs []int, budget int, seed int64) ([]trace.Prefetch, error) {
	if len(idxs) < 3 {
		return nil, nil
	}
	// Block deltas between consecutive cluster accesses.
	deltas := make([]int64, len(idxs)-1)
	for i := 1; i < len(idxs); i++ {
		deltas[i-1] = int64(accs[idxs[i]].Block()) - int64(accs[idxs[i-1]].Block())
	}

	nTrain := int(cfg.TrainFrac * float64(len(deltas)))
	if nTrain < cfg.Window+1 {
		nTrain = min(cfg.Window+1, len(deltas))
	}

	// Vocabulary from the training prefix: token 0 is OOV.
	freq := make(map[int64]int)
	for _, d := range deltas[:nTrain] {
		freq[d]++
	}
	type df struct {
		d int64
		n int
	}
	var dfs []df
	for d, n := range freq {
		dfs = append(dfs, df{d, n})
	}
	sort.Slice(dfs, func(i, j int) bool {
		if dfs[i].n != dfs[j].n {
			return dfs[i].n > dfs[j].n
		}
		return dfs[i].d < dfs[j].d
	})
	tokenOf := map[int64]int{}
	deltaOf := []int64{0} // token 0: OOV
	for _, e := range dfs {
		if len(deltaOf) >= cfg.Vocab {
			break
		}
		tokenOf[e.d] = len(deltaOf)
		deltaOf = append(deltaOf, e.d)
	}
	vocab := len(deltaOf)
	if vocab < 2 {
		return nil, nil
	}

	model, err := NewModel(vocab, cfg.Embed, cfg.Hidden, cfg.Layers, seed)
	if err != nil {
		return nil, err
	}
	tok := func(d int64) int { return tokenOf[d] } // missing -> 0 (OOV)

	// 2. Train on the prefix.
	for ep := 0; ep < cfg.Epochs; ep++ {
		model.ResetState()
		for s := 0; s+1 < nTrain; s += cfg.Window {
			end := s + cfg.Window
			if end+1 > nTrain {
				end = nTrain - 1
			}
			if end <= s {
				break
			}
			in := make([]int, 0, end-s)
			tg := make([]int, 0, end-s)
			for t := s; t < end; t++ {
				in = append(in, tok(deltas[t]))
				tg = append(tg, tok(deltas[t+1]))
			}
			if _, err := model.TrainWindow(in, tg, cfg.LR); err != nil {
				return nil, err
			}
		}
	}

	// 3. Inference over the full cluster sequence.
	model.ResetState()
	var out []trace.Prefetch
	for t := 0; t < len(deltas); t++ {
		preds, _, err := model.Predict(tok(deltas[t]), budget+1)
		if err != nil {
			return nil, err
		}
		// The access that triggers prefetches for position t+1 is
		// idxs[t+1]'s predecessor: the current head of the stream.
		cur := accs[idxs[t+1]]
		issued := 0
		for _, p := range preds {
			if p == 0 {
				continue // never prefetch on OOV
			}
			target := int64(cur.Block()) + deltaOf[p]
			if target <= 0 {
				continue
			}
			out = append(out, trace.Prefetch{ID: cur.ID, Addr: trace.BlockAddr(uint64(target))})
			issued++
			if issued == budget {
				break
			}
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
