package lstm

import (
	"fmt"
	"math/rand"
	"sort"

	"pathfinder/internal/trace"
)

// VoyagerConfig configures the Voyager baseline (Shi et al., ASPLOS 2021),
// a hierarchical neural model of data prefetching: rather than predicting
// raw addresses, one output head predicts the next *page* out of a learned
// page vocabulary and a second head predicts the 6-bit *offset* within it,
// with both heads sharing a recurrent context over (page, offset)
// embeddings. Following Voyager's ISB lineage, the model is PC-localized:
// each load PC's access subsequence forms its own stream, with its own
// recurrent state, and the prediction target is that PC's next access. As
// in the paper's methodology (§4.3), the model is trained offline on the
// same trace it is then evaluated on — the "long and precise training
// process on the entire trace" that lets Voyager beat online learners on
// irregular benchmarks (§5).
type VoyagerConfig struct {
	// PageVocab bounds the page vocabulary (most frequent pages get
	// tokens; the rest are OOV and never predicted).
	PageVocab int
	// EmbedPage, EmbedOffset and Hidden shape the shared LSTM.
	EmbedPage, EmbedOffset, Hidden int
	// Layers is the LSTM stack depth.
	Layers int
	// Epochs over the training portion.
	Epochs int
	// TrainFrac is the leading fraction of each PC stream used for
	// training (Voyager trains on the full trace in the paper's setup).
	TrainFrac float64
	// Window is the truncated-BPTT window.
	Window int
	// LR is the Adam learning rate.
	LR float64
	// MinStream skips PCs with fewer accesses than this (nothing to
	// learn, and cold streams would only add noise).
	MinStream int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultVoyagerConfig returns the evaluation configuration.
func DefaultVoyagerConfig() VoyagerConfig {
	return VoyagerConfig{
		PageVocab:   1024,
		EmbedPage:   48,
		EmbedOffset: 16,
		Hidden:      96,
		Layers:      1,
		Epochs:      4,
		TrainFrac:   1.0,
		Window:      16,
		LR:          8e-3,
		MinStream:   32,
		Seed:        1,
	}
}

// voyager is the two-headed hierarchical model.
type voyager struct {
	cfg   VoyagerConfig
	cells []*Cell
	embP  *Param // [pageVocab][embedPage]
	embO  *Param // [64][embedOffset]
	wPage *Param // [pageVocab][hidden]
	bPage *Param
	wOff  *Param // [64][hidden]
	bOff  *Param

	adamStep int
}

// vstate is one stream's recurrent state.
type vstate struct {
	h, c [][]float64
}

func (v *voyager) newState() *vstate {
	s := &vstate{
		h: make([][]float64, len(v.cells)),
		c: make([][]float64, len(v.cells)),
	}
	for l := range v.cells {
		s.h[l] = make([]float64, v.cfg.Hidden)
		s.c[l] = make([]float64, v.cfg.Hidden)
	}
	return s
}

func newVoyager(cfg VoyagerConfig, pageVocab int) *voyager {
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := &voyager{
		cfg:   cfg,
		embP:  NewParam(pageVocab*cfg.EmbedPage, 0.1, rng),
		embO:  NewParam(trace.BlocksPerPage*cfg.EmbedOffset, 0.1, rng),
		wPage: NewParam(pageVocab*cfg.Hidden, 0.15, rng),
		bPage: NewParam(pageVocab, 0, rng),
		wOff:  NewParam(trace.BlocksPerPage*cfg.Hidden, 0.15, rng),
		bOff:  NewParam(trace.BlocksPerPage, 0, rng),
	}
	in := cfg.EmbedPage + cfg.EmbedOffset
	for l := 0; l < cfg.Layers; l++ {
		v.cells = append(v.cells, NewCell(in, cfg.Hidden, rng))
		in = cfg.Hidden
	}
	return v
}

func (v *voyager) params() []*Param {
	ps := []*Param{v.embP, v.embO, v.wPage, v.bPage, v.wOff, v.bOff}
	for _, c := range v.cells {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// forwardStep advances a stream state by one (page-token, offset) input.
func (v *voyager) forwardStep(st *vstate, pageTok, offset int) ([]float64, []*cellCache) {
	x := make([]float64, v.cfg.EmbedPage+v.cfg.EmbedOffset)
	copy(x, v.embP.W[pageTok*v.cfg.EmbedPage:(pageTok+1)*v.cfg.EmbedPage])
	copy(x[v.cfg.EmbedPage:], v.embO.W[offset*v.cfg.EmbedOffset:(offset+1)*v.cfg.EmbedOffset])
	caches := make([]*cellCache, len(v.cells))
	var h []float64
	for l, cell := range v.cells {
		var cNew []float64
		h, cNew, caches[l] = cell.Forward(x, st.h[l], st.c[l])
		st.h[l], st.c[l] = h, cNew
		x = h
	}
	return h, caches
}

// headForward computes softmax probabilities of one output head.
func headForward(w, b *Param, hidden int, h []float64) []float64 {
	n := len(b.W)
	logits := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b.W[i]
		row := w.W[i*hidden : (i+1)*hidden]
		for k, hv := range h {
			s += row[k] * hv
		}
		logits[i] = s
	}
	return softmax(logits)
}

// headBackward accumulates head gradients and adds the hidden-state
// gradient into dh.
func headBackward(w, b *Param, hidden int, h, probs []float64, target int, dh []float64) {
	for i := range probs {
		d := probs[i]
		if i == target {
			d -= 1
		}
		if d == 0 {
			continue
		}
		b.G[i] += d
		row := w.W[i*hidden : (i+1)*hidden]
		grow := w.G[i*hidden : (i+1)*hidden]
		for k, hv := range h {
			grow[k] += d * hv
			dh[k] += d * row[k]
		}
	}
}

// GenerateVoyager runs the Voyager pipeline over a trace and returns its
// prefetch file (at most `budget` prefetches per access: the top predicted
// page with its top offsets).
func GenerateVoyager(cfg VoyagerConfig, accs []trace.Access, budget int) ([]trace.Prefetch, error) {
	if len(accs) < 3 {
		return nil, nil
	}
	if budget <= 0 {
		budget = 2
	}
	if cfg.PageVocab < 2 || cfg.Hidden < 1 || cfg.Layers < 1 {
		return nil, fmt.Errorf("lstm: bad voyager config %+v", cfg)
	}

	// Page vocabulary: most frequent pages; token 0 is OOV.
	freq := make(map[uint64]int)
	for _, a := range accs {
		freq[a.Page()]++
	}
	type pf struct {
		p uint64
		n int
	}
	var pfs []pf
	for p, n := range freq {
		pfs = append(pfs, pf{p, n})
	}
	sort.Slice(pfs, func(i, j int) bool {
		if pfs[i].n != pfs[j].n {
			return pfs[i].n > pfs[j].n
		}
		return pfs[i].p < pfs[j].p
	})
	tokenOf := map[uint64]int{}
	pageOf := []uint64{0} // token 0: OOV
	for _, e := range pfs {
		if len(pageOf) >= cfg.PageVocab {
			break
		}
		tokenOf[e.p] = len(pageOf)
		pageOf = append(pageOf, e.p)
	}
	vocab := len(pageOf)

	v := newVoyager(cfg, vocab)
	tok := func(p uint64) int { return tokenOf[p] }

	// PC localization: group the trace into per-PC streams.
	streams := make(map[uint64][]int)
	var pcs []uint64
	for i, a := range accs {
		if _, ok := streams[a.PC]; !ok {
			pcs = append(pcs, a.PC)
		}
		streams[a.PC] = append(streams[a.PC], i)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	// Train: for each PC stream, predict its next (page, offset).
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, pc := range pcs {
			idxs := streams[pc]
			if len(idxs) < cfg.MinStream {
				continue
			}
			nTrain := int(cfg.TrainFrac * float64(len(idxs)-1))
			if nTrain > len(idxs)-1 {
				nTrain = len(idxs) - 1
			}
			st := v.newState()
			for s := 0; s < nTrain; s += cfg.Window {
				end := s + cfg.Window
				if end > nTrain {
					end = nTrain
				}
				if end <= s {
					break
				}
				v.trainWindow(st, accs, idxs, s, end, tok)
			}
		}
	}

	// Inference: stream the trace in order with one live state per PC;
	// each access predicts its PC's next access.
	states := make(map[uint64]*vstate, len(pcs))
	var out []trace.Prefetch
	for _, a := range accs {
		st := states[a.PC]
		if st == nil {
			st = v.newState()
			states[a.PC] = st
		}
		h, _ := v.forwardStep(st, tok(a.Page()), a.Offset())
		pProbs := headForward(v.wPage, v.bPage, v.cfg.Hidden, h)
		oProbs := headForward(v.wOff, v.bOff, v.cfg.Hidden, h)
		// Predict the most probable in-vocabulary page. Token 0 (OOV)
		// aggregates every rare page, so it can dominate even when a
		// specific page is clearly indicated; exclude it and require a
		// modest confidence floor.
		bestPage := 1 + argmax(pProbs[1:])
		if pProbs[bestPage] < 0.02 {
			continue
		}
		for _, off := range topK(oProbs, budget) {
			block := pageOf[bestPage]*trace.BlocksPerPage + uint64(off)
			out = append(out, trace.Prefetch{ID: a.ID, Addr: trace.BlockAddr(block)})
		}
	}
	return out, nil
}

// trainWindow runs truncated BPTT over positions [s, end) of one PC
// stream's index list.
func (v *voyager) trainWindow(st *vstate, accs []trace.Access, idxs []int, s, end int, tok func(uint64) int) {
	type stepRec struct {
		caches         []*cellCache
		h              []float64
		pProbs, oProbs []float64
		pTok, off      int
	}
	cfg := v.cfg
	recs := make([]stepRec, 0, end-s)
	for t := s; t < end; t++ {
		a := accs[idxs[t]]
		pTok, off := tok(a.Page()), a.Offset()
		h, caches := v.forwardStep(st, pTok, off)
		recs = append(recs, stepRec{
			caches: caches,
			h:      h,
			pProbs: headForward(v.wPage, v.bPage, cfg.Hidden, h),
			oProbs: headForward(v.wOff, v.bOff, cfg.Hidden, h),
			pTok:   pTok,
			off:    off,
		})
	}
	L := len(v.cells)
	dh := make([][]float64, L)
	dc := make([][]float64, L)
	for l := 0; l < L; l++ {
		dh[l] = make([]float64, cfg.Hidden)
		dc[l] = make([]float64, cfg.Hidden)
	}
	for t := len(recs) - 1; t >= 0; t-- {
		rec := recs[t]
		tgt := accs[idxs[s+t+1]] // the stream's next access
		dhTop := make([]float64, cfg.Hidden)
		headBackward(v.wPage, v.bPage, cfg.Hidden, rec.h, rec.pProbs, tok(tgt.Page()), dhTop)
		headBackward(v.wOff, v.bOff, cfg.Hidden, rec.h, rec.oProbs, tgt.Offset(), dhTop)
		for k := range dhTop {
			dh[L-1][k] += dhTop[k]
		}
		var dx []float64
		for l := L - 1; l >= 0; l-- {
			dx, dh[l], dc[l] = v.cells[l].Backward(rec.caches[l], dh[l], dc[l])
			if l > 0 {
				for k := range dx {
					dh[l-1][k] += dx[k]
				}
			}
		}
		egP := v.embP.G[rec.pTok*cfg.EmbedPage : (rec.pTok+1)*cfg.EmbedPage]
		for k := 0; k < cfg.EmbedPage; k++ {
			egP[k] += dx[k]
		}
		egO := v.embO.G[rec.off*cfg.EmbedOffset : (rec.off+1)*cfg.EmbedOffset]
		for k := 0; k < cfg.EmbedOffset; k++ {
			egO[k] += dx[cfg.EmbedPage+k]
		}
	}
	v.adamStep++
	for _, p := range v.params() {
		p.Step(cfg.LR, v.adamStep)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func topK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	out := make([]int, 0, k)
	for n := 0; n < k; n++ {
		best := -1
		for i, v := range xs {
			taken := false
			for _, u := range out {
				if u == i {
					taken = true
					break
				}
			}
			if !taken && (best < 0 || v > xs[best]) {
				best = i
			}
		}
		out = append(out, best)
	}
	return out
}
