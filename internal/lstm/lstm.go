// Package lstm is a small, dependency-free LSTM stack used to reproduce the
// paper's offline neural baselines: Delta-LSTM (Hashemi et al., §4.3) and
// Voyager (Shi et al., §4.3). It provides parameter tensors with Adam
// updates, an LSTM cell with full backpropagation-through-time, and a
// token-sequence model with an embedding input and a softmax output head.
//
// The paper's baselines train for hours on GPUs with hidden sizes of 128;
// this implementation keeps the same architecture class at a smaller hidden
// size so the epoch-trained-versus-online comparison (§5) runs on a laptop.
// The substitution is recorded in DESIGN.md.
package lstm

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a learnable tensor with Adam optimizer state.
type Param struct {
	W []float64 // values
	G []float64 // gradient accumulator
	m []float64 // Adam first moment
	v []float64 // Adam second moment
}

// NewParam allocates a parameter of n values initialised uniformly in
// [-scale, scale].
func NewParam(n int, scale float64, rng *rand.Rand) *Param {
	p := &Param{
		W: make([]float64, n),
		G: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
	for i := range p.W {
		p.W[i] = (2*rng.Float64() - 1) * scale
	}
	return p
}

// Adam hyper-parameters (standard defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// Step applies one Adam update with the given learning rate and bias
// correction step t (1-based), then clears the gradient.
func (p *Param) Step(lr float64, t int) {
	c1 := 1 - math.Pow(adamBeta1, float64(t))
	c2 := 1 - math.Pow(adamBeta2, float64(t))
	for i, g := range p.G {
		// Clip exploding gradients elementwise.
		if g > 5 {
			g = 5
		} else if g < -5 {
			g = -5
		}
		p.m[i] = adamBeta1*p.m[i] + (1-adamBeta1)*g
		p.v[i] = adamBeta2*p.v[i] + (1-adamBeta2)*g*g
		p.W[i] -= lr * (p.m[i] / c1) / (math.Sqrt(p.v[i]/c2) + adamEps)
		p.G[i] = 0
	}
}

// Cell is one LSTM layer. Gates are packed in i, f, g, o order: the input
// weight matrix Wx is [4*hidden][in] row-major, the recurrent matrix Wh is
// [4*hidden][hidden], and B is the packed bias (forget-gate bias
// initialised to 1, the standard trick for gradient flow).
type Cell struct {
	In, Hidden int
	Wx, Wh, B  *Param
}

// NewCell builds an LSTM cell for the given input and hidden sizes.
func NewCell(in, hidden int, rng *rand.Rand) *Cell {
	scale := 1.0 / math.Sqrt(float64(in+hidden))
	c := &Cell{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(4*hidden*in, scale, rng),
		Wh:     NewParam(4*hidden*hidden, scale, rng),
		B:      NewParam(4*hidden, 0, rng),
	}
	for j := 0; j < hidden; j++ {
		c.B.W[hidden+j] = 1 // forget gate bias
	}
	return c
}

// cellCache holds the forward activations needed by Backward.
type cellCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64
	c, tanhC        []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward computes one step: given input x and previous (h, c), it returns
// the new (h, c) and a cache for backpropagation.
func (c *Cell) Forward(x, hPrev, cPrev []float64) (h, cNew []float64, cache *cellCache) {
	H := c.Hidden
	pre := make([]float64, 4*H)
	for r := 0; r < 4*H; r++ {
		s := c.B.W[r]
		wx := c.Wx.W[r*c.In : (r+1)*c.In]
		for k, xv := range x {
			s += wx[k] * xv
		}
		wh := c.Wh.W[r*H : (r+1)*H]
		for k, hv := range hPrev {
			s += wh[k] * hv
		}
		pre[r] = s
	}
	cache = &cellCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), tanhC: make([]float64, H),
	}
	h = make([]float64, H)
	cNew = cache.c
	for j := 0; j < H; j++ {
		cache.i[j] = sigmoid(pre[j])
		cache.f[j] = sigmoid(pre[H+j])
		cache.g[j] = math.Tanh(pre[2*H+j])
		cache.o[j] = sigmoid(pre[3*H+j])
		cNew[j] = cache.f[j]*cPrev[j] + cache.i[j]*cache.g[j]
		cache.tanhC[j] = math.Tanh(cNew[j])
		h[j] = cache.o[j] * cache.tanhC[j]
	}
	return h, cNew, cache
}

// Backward accumulates parameter gradients for one step given the
// upstream gradients dh and dc, returning the gradients w.r.t. the step's
// input and previous state.
func (c *Cell) Backward(cache *cellCache, dh, dc []float64) (dx, dhPrev, dcPrev []float64) {
	H := c.Hidden
	dPre := make([]float64, 4*H)
	dcPrev = make([]float64, H)
	for j := 0; j < H; j++ {
		dcT := dc[j] + dh[j]*cache.o[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		do := dh[j] * cache.tanhC[j]
		di := dcT * cache.g[j]
		dg := dcT * cache.i[j]
		df := dcT * cache.cPrev[j]
		dcPrev[j] = dcT * cache.f[j]
		dPre[j] = di * cache.i[j] * (1 - cache.i[j])
		dPre[H+j] = df * cache.f[j] * (1 - cache.f[j])
		dPre[2*H+j] = dg * (1 - cache.g[j]*cache.g[j])
		dPre[3*H+j] = do * cache.o[j] * (1 - cache.o[j])
	}
	dx = make([]float64, c.In)
	dhPrev = make([]float64, H)
	for r := 0; r < 4*H; r++ {
		d := dPre[r]
		if d == 0 {
			continue
		}
		c.B.G[r] += d
		wx := c.Wx.W[r*c.In : (r+1)*c.In]
		gx := c.Wx.G[r*c.In : (r+1)*c.In]
		for k, xv := range cache.x {
			gx[k] += d * xv
			dx[k] += d * wx[k]
		}
		wh := c.Wh.W[r*H : (r+1)*H]
		gh := c.Wh.G[r*H : (r+1)*H]
		for k, hv := range cache.hPrev {
			gh[k] += d * hv
			dhPrev[k] += d * wh[k]
		}
	}
	return dx, dhPrev, dcPrev
}

// Params returns the cell's learnable parameters.
func (c *Cell) Params() []*Param { return []*Param{c.Wx, c.Wh, c.B} }

// Model is a next-token sequence model: embedding → stacked LSTM layers →
// softmax over the vocabulary. This is the architecture class of both
// Delta-LSTM (tokens are address deltas) and each Voyager head (tokens are
// pages or offsets).
type Model struct {
	Vocab, Embed, Hidden int
	Cells                []*Cell
	Emb                  *Param // [vocab][embed]
	WOut, BOut           *Param // [vocab][hidden], [vocab]

	// Streaming state (persisted across Step calls, detached from BPTT).
	h, c [][]float64

	adamStep int
	rng      *rand.Rand
}

// NewModel builds a model with the given vocabulary, embedding size, hidden
// size and number of stacked LSTM layers.
func NewModel(vocab, embed, hidden, layers int, seed int64) (*Model, error) {
	if vocab < 2 || embed < 1 || hidden < 1 || layers < 1 {
		return nil, fmt.Errorf("lstm: bad model shape vocab=%d embed=%d hidden=%d layers=%d", vocab, embed, hidden, layers)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Vocab:  vocab,
		Embed:  embed,
		Hidden: hidden,
		Emb:    NewParam(vocab*embed, 0.1, rng),
		WOut:   NewParam(vocab*hidden, 1/math.Sqrt(float64(hidden)), rng),
		BOut:   NewParam(vocab, 0, rng),
		rng:    rng,
	}
	in := embed
	for l := 0; l < layers; l++ {
		m.Cells = append(m.Cells, NewCell(in, hidden, rng))
		in = hidden
	}
	m.ResetState()
	return m, nil
}

// ResetState zeroes the streaming hidden state.
func (m *Model) ResetState() {
	m.h = make([][]float64, len(m.Cells))
	m.c = make([][]float64, len(m.Cells))
	for l := range m.Cells {
		m.h[l] = make([]float64, m.Hidden)
		m.c[l] = make([]float64, m.Hidden)
	}
}

// params returns every learnable parameter of the model.
func (m *Model) params() []*Param {
	ps := []*Param{m.Emb, m.WOut, m.BOut}
	for _, c := range m.Cells {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// forwardStep advances the streaming state by one token and returns the
// top layer's hidden vector plus the per-layer caches.
func (m *Model) forwardStep(token int) ([]float64, []*cellCache) {
	x := make([]float64, m.Embed)
	copy(x, m.Emb.W[token*m.Embed:(token+1)*m.Embed])
	caches := make([]*cellCache, len(m.Cells))
	var h []float64
	for l, cell := range m.Cells {
		var cNew []float64
		h, cNew, caches[l] = cell.Forward(x, m.h[l], m.c[l])
		m.h[l], m.c[l] = h, cNew
		x = h
	}
	return h, caches
}

// logits computes the output scores for a hidden vector.
func (m *Model) logits(h []float64) []float64 {
	out := make([]float64, m.Vocab)
	for v := 0; v < m.Vocab; v++ {
		s := m.BOut.W[v]
		w := m.WOut.W[v*m.Hidden : (v+1)*m.Hidden]
		for k, hv := range h {
			s += w[k] * hv
		}
		out[v] = s
	}
	return out
}

// softmax converts logits to probabilities in place and returns them.
func softmax(logits []float64) []float64 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
	return logits
}

// TrainWindow performs truncated BPTT over a window of (input, target)
// token pairs, applies one Adam step, and returns the mean cross-entropy
// loss. The streaming state carries across windows (detached).
func (m *Model) TrainWindow(inputs, targets []int, lr float64) (float64, error) {
	if len(inputs) != len(targets) || len(inputs) == 0 {
		return 0, fmt.Errorf("lstm: window inputs %d, targets %d", len(inputs), len(targets))
	}
	type stepRec struct {
		caches []*cellCache
		probs  []float64
		hTop   []float64
		token  int
	}
	recs := make([]stepRec, len(inputs))
	loss := 0.0
	for t, tok := range inputs {
		if tok < 0 || tok >= m.Vocab || targets[t] < 0 || targets[t] >= m.Vocab {
			return 0, fmt.Errorf("lstm: token out of vocab at step %d", t)
		}
		h, caches := m.forwardStep(tok)
		probs := softmax(m.logits(h))
		recs[t] = stepRec{caches: caches, probs: probs, hTop: h, token: tok}
		loss += -math.Log(probs[targets[t]] + 1e-12)
	}

	L := len(m.Cells)
	dh := make([][]float64, L)
	dc := make([][]float64, L)
	for l := 0; l < L; l++ {
		dh[l] = make([]float64, m.Hidden)
		dc[l] = make([]float64, m.Hidden)
	}
	for t := len(inputs) - 1; t >= 0; t-- {
		rec := recs[t]
		// Output layer gradient: dlogits = probs - onehot(target).
		dhTop := make([]float64, m.Hidden)
		for v := 0; v < m.Vocab; v++ {
			d := rec.probs[v]
			if v == targets[t] {
				d -= 1
			}
			if d == 0 {
				continue
			}
			m.BOut.G[v] += d
			w := m.WOut.W[v*m.Hidden : (v+1)*m.Hidden]
			g := m.WOut.G[v*m.Hidden : (v+1)*m.Hidden]
			for k, hv := range rec.hTop {
				g[k] += d * hv
				dhTop[k] += d * w[k]
			}
		}
		for k := range dhTop {
			dh[L-1][k] += dhTop[k]
		}
		var dx []float64
		for l := L - 1; l >= 0; l-- {
			dx, dh[l], dc[l] = m.Cells[l].Backward(rec.caches[l], dh[l], dc[l])
			if l > 0 {
				for k := range dx {
					dh[l-1][k] += dx[k]
				}
			}
		}
		// Embedding gradient.
		eg := m.Emb.G[rec.token*m.Embed : (rec.token+1)*m.Embed]
		for k := range dx {
			eg[k] += dx[k]
		}
	}

	m.adamStep++
	for _, p := range m.params() {
		p.Step(lr, m.adamStep)
	}
	return loss / float64(len(inputs)), nil
}

// Predict advances the streaming state by one token and returns the top-k
// most probable next tokens (most probable first) and their probabilities.
func (m *Model) Predict(token, k int) ([]int, []float64, error) {
	if token < 0 || token >= m.Vocab {
		return nil, nil, fmt.Errorf("lstm: token %d out of vocab %d", token, m.Vocab)
	}
	h, _ := m.forwardStep(token)
	probs := softmax(m.logits(h))
	if k > m.Vocab {
		k = m.Vocab
	}
	idx := make([]int, 0, k)
	ps := make([]float64, 0, k)
	for n := 0; n < k; n++ {
		best := -1
		for v := 0; v < m.Vocab; v++ {
			taken := false
			for _, u := range idx {
				if u == v {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if best < 0 || probs[v] > probs[best] {
				best = v
			}
		}
		idx = append(idx, best)
		ps = append(ps, probs[best])
	}
	return idx, ps, nil
}
