package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/runner"
)

// harnessGrid is the chaos sweep: 16 cells of cheap online prefetchers,
// two workloads × four techniques × two seeds.
func harnessGrid(t *testing.T) []runner.Job {
	t.Helper()
	specs := GridSpec{
		Traces:      []string{"cc-5", "bfs-10"},
		Prefetchers: []string{"nextline", "stride", "bo", "sisb"},
		Seeds:       []int64{1, 2},
		Loads:       2000,
	}.Expand()
	jobs, err := Jobs(specs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

const (
	harnessLease     = 250 * time.Millisecond
	harnessMaxGrants = 4
)

// pickChaosSeed deterministically searches for a chaos seed whose kill
// draws poison between one and three cells — killed on every one of
// their MaxGrants grant attempts — so the quarantine path is exercised
// without hand-pinning a seed that silently stops matching when the
// grid changes.
func pickChaosSeed(t *testing.T, keys []string) (int64, map[int]bool) {
	t.Helper()
	for seed := int64(1); seed < 2000; seed++ {
		inj := fault.NewSeeded(fault.Chaos{Seed: seed, DistKill: 0.3})
		poisoned := make(map[int]bool)
		for i, key := range keys {
			all := true
			for a := 0; a < harnessMaxGrants; a++ {
				if !inj.WorkerKills(key, a) {
					all = false
					break
				}
			}
			if all {
				poisoned[i] = true
			}
		}
		if len(poisoned) >= 1 && len(poisoned) <= 3 {
			return seed, poisoned
		}
	}
	t.Fatal("no chaos seed in 1..2000 poisons 1-3 cells")
	return 0, nil
}

// fleet keeps n worker slots alive against addr until the sweep ends:
// every injected kill consumes a worker and the slot respawns a
// replacement, exactly as a production supervisor would.
func fleet(ctx context.Context, jobs []runner.Job, addr string, inj fault.Injector, n int, prefix string) *sync.WaitGroup {
	var wg sync.WaitGroup
	for slot := 0; slot < n; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for gen := 0; ; gen++ {
				w := NewWorker(WorkerConfig{
					Name:         fmt.Sprintf("%s-w%d-%d", prefix, slot, gen),
					Jobs:         jobs,
					RunnerConfig: runner.Config{Loads: 2000},
					Fault:        inj,
				})
				err := w.Run(ctx, addr)
				if err == nil || ctx.Err() != nil {
					return
				}
			}
		}(slot)
	}
	return &wg
}

// TestSweepHarness is the headline chaos proof (make sweep-harness): a
// distributed sweep over real loopback sockets, under seeded worker
// kills (abrupt connection deaths and silent heartbeat losses),
// connection drops, benign wire latency, and one coordinator
// kill-and-resume from the ledger, must terminate every cell — poisoned
// cells quarantined into the report, never hung — with every surviving
// result bit-identical (payload equality) to a clean single-process
// RunWithReport of the same grid.
func TestSweepHarness(t *testing.T) {
	jobs := harnessGrid(t)
	keyRunner := runner.New(runner.Config{Loads: 2000})
	keys := make([]string, len(jobs))
	for i, job := range jobs {
		keys[i] = keyRunner.CellKey(i, job)
	}
	seed, poisoned := pickChaosSeed(t, keys)
	t.Logf("chaos seed %d poisons cells %v", seed, poisoned)
	inj := fault.NewSeeded(fault.Chaos{
		Seed:        seed,
		DistKill:    0.3,
		DistDrop:    0.05,
		DistLatency: 0.3,
		LatencyFor:  time.Millisecond,
	})

	// The clean single-process reference.
	ref, refReport, err := runner.New(runner.Config{Loads: 2000}).RunWithReport(context.Background(), jobs)
	if err != nil || len(refReport.Failed) != 0 {
		t.Fatalf("reference run: %v (failed %v)", err, refReport.Failed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ledgerPath := filepath.Join(t.TempDir(), "sweep.journal")

	// Phase 1: run under chaos until five cells are terminal, then kill
	// the coordinator mid-sweep.
	ledger1, err := runner.OpenJournal(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	var coord1 *Coordinator
	var terminals atomic.Int32
	c1, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
		Ledger:       ledger1,
		Lease:        harnessLease,
		MaxGrants:    harnessMaxGrants,
		GrantBackoff: 5 * time.Millisecond,
		Fault:        inj,
		Logf:         t.Logf,
		Progress: func(p runner.Progress) {
			if terminals.Add(1) == 5 {
				coord1.Stop()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord1 = c1
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord1.Serve(ln1)
	fctx1, fcancel1 := context.WithCancel(ctx)
	wg1 := fleet(fctx1, jobs, ln1.Addr().String(), inj, 4, "p1")
	_, _, err = coord1.Run(ctx)
	fcancel1()
	wg1.Wait()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("killed coordinator: err = %v, want ErrStopped", err)
	}
	if err := ledger1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator resumes from the ledger file — the
	// replay exercises torn-tail repair and duplicate resolution — and a
	// fresh fleet under the same chaos finishes the sweep.
	ledger2, err := runner.OpenJournal(ledgerPath)
	if err != nil {
		t.Fatalf("ledger replay after coordinator kill: %v", err)
	}
	defer ledger2.Close()
	resumedAtStart := ledger2.Completed()
	coord2, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
		Ledger:       ledger2,
		Lease:        harnessLease,
		MaxGrants:    harnessMaxGrants,
		GrantBackoff: 5 * time.Millisecond,
		Fault:        inj,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord2.Serve(ln2)
	fctx2, fcancel2 := context.WithCancel(ctx)
	wg2 := fleet(fctx2, jobs, ln2.Addr().String(), inj, 4, "p2")
	results, report, err := coord2.Run(ctx)
	fcancel2()
	wg2.Wait()
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}

	// Every cell terminal: the sweep finished rather than wedging.
	if got := report.Completed + report.Resumed + len(report.Failed); got != report.Total {
		t.Fatalf("cells accounted = %d, want %d (report %+v)", got, report.Total, report)
	}
	if report.Resumed != resumedAtStart {
		t.Errorf("resumed = %d, want the ledger's %d cells", report.Resumed, resumedAtStart)
	}
	if report.Resumed == 0 {
		t.Error("coordinator kill-and-resume resumed nothing — phase 1 recorded no cells")
	}

	// Poisoned cells are quarantined into the report, never hung.
	failedBy := make(map[int]*runner.JobError)
	for _, fe := range report.Failed {
		failedBy[fe.Index] = fe
	}
	for idx := range poisoned {
		fe := failedBy[idx]
		if fe == nil || !strings.Contains(fe.Err.Error(), "quarantined") {
			t.Errorf("poisoned cell %d not quarantined (got %v)", idx, fe)
		}
	}
	if report.Quarantined < len(poisoned) {
		t.Errorf("report.Quarantined = %d, want >= %d", report.Quarantined, len(poisoned))
	}
	quarantineEntries := 0
	for _, fe := range report.Failed {
		if strings.Contains(fe.Err.Error(), "quarantined") {
			quarantineEntries++
		}
	}
	if quarantineEntries != report.Quarantined {
		t.Errorf("quarantine entries in Failed = %d, report.Quarantined = %d", quarantineEntries, report.Quarantined)
	}

	// The chaos actually bit: leases were reassigned.
	if report.Retries == 0 {
		t.Error("no lease reassignments under 30% kill probability")
	}

	// The headline: every surviving cell is bit-identical to the clean
	// single-process run.
	survivors := 0
	for i := range jobs {
		if failedBy[i] != nil {
			continue
		}
		survivors++
		if !runner.PayloadEqual(results[i], ref[i]) {
			t.Errorf("survivor cell %d diverged: sweep %+v != single-process %+v", i, results[i], ref[i])
		}
	}
	if survivors == 0 {
		t.Fatal("no survivors — the chaos configuration destroyed the whole grid")
	}
	t.Logf("sweep: %d survivors, %d quarantined, %d reassignments, resumed %d after kill",
		survivors, report.Quarantined, report.Retries, report.Resumed)
}
