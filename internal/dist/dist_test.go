package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/runner"
)

// testGrid is the small sweep the functional tests share: cheap online
// prefetchers over two synthetic workloads, short traces.
func testGrid(t *testing.T) []runner.Job {
	t.Helper()
	specs := GridSpec{
		Traces:      []string{"cc-5", "bfs-10"},
		Prefetchers: []string{"nextline", "stride"},
		Loads:       2000,
	}.Expand()
	jobs, err := Jobs(specs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// runSingle is the single-process reference the sweep must match.
func runSingle(t *testing.T, jobs []runner.Job) []runner.Result {
	t.Helper()
	ref, err := runner.New(runner.Config{Loads: 2000, Parallelism: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestGridSpecExpand pins the deterministic expansion order both sides
// of a sweep rely on for identical cell keys.
func TestGridSpecExpand(t *testing.T) {
	g := GridSpec{
		Traces:      []string{"a", "b"},
		Prefetchers: []string{"p", "q"},
		Seeds:       []int64{1, 2},
		Loads:       100,
		Cells:       []CellSpec{{Trace: "c", Prefetcher: "r"}},
	}
	specs := g.Expand()
	want := []CellSpec{
		{Trace: "a", Prefetcher: "p", Loads: 100, Seed: 1},
		{Trace: "a", Prefetcher: "p", Loads: 100, Seed: 2},
		{Trace: "a", Prefetcher: "q", Loads: 100, Seed: 1},
		{Trace: "a", Prefetcher: "q", Loads: 100, Seed: 2},
		{Trace: "b", Prefetcher: "p", Loads: 100, Seed: 1},
		{Trace: "b", Prefetcher: "p", Loads: 100, Seed: 2},
		{Trace: "b", Prefetcher: "q", Loads: 100, Seed: 1},
		{Trace: "b", Prefetcher: "q", Loads: 100, Seed: 2},
		{Trace: "c", Prefetcher: "r"},
	}
	if len(specs) != len(want) {
		t.Fatalf("Expand: %d cells, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	if _, err := Jobs([]CellSpec{{Trace: "cc-5", Prefetcher: "no-such-technique"}}); err == nil {
		t.Error("Jobs accepted an unknown prefetcher")
	}
}

// TestLoadGrid checks the on-disk grid format and its error paths.
func TestLoadGrid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(`{"traces":["cc-5"],"prefetchers":["nextline","bo"],"loads":1000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Trace != "cc-5" || specs[1].Prefetcher != "bo" {
		t.Fatalf("LoadGrid = %+v", specs)
	}
	if _, err := LoadGrid(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadGrid on a missing file succeeded")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{}`), 0o644)
	if _, err := LoadGrid(empty); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Errorf("LoadGrid on an empty grid: err = %v", err)
	}
}

// TestLocalSweepMatchesSingleProcess is the clean-path half of the
// headline invariant: an in-process fleet over loopback TCP produces
// results bit-identical (payload equality) to the single-process engine.
func TestLocalSweepMatchesSingleProcess(t *testing.T) {
	jobs := testGrid(t)
	ref := runSingle(t, jobs)

	var mu sync.Mutex
	events := 0
	cfg := runner.Config{Loads: 2000, Progress: func(p runner.Progress) {
		mu.Lock()
		events++
		mu.Unlock()
	}}
	results, report, err := RunLocal(context.Background(), cfg, jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != len(jobs) || len(report.Failed) != 0 {
		t.Fatalf("report: %+v", report)
	}
	for i := range jobs {
		if !runner.PayloadEqual(results[i], ref[i]) {
			t.Errorf("cell %d: sweep %+v != single-process %+v", i, results[i], ref[i])
		}
	}
	mu.Lock()
	if events != len(jobs) {
		t.Errorf("progress events = %d, want %d", events, len(jobs))
	}
	mu.Unlock()
}

// TestSweepResumesLedger checks ledger interchange in both directions: a
// journal written by a single-process run resumes a distributed sweep
// without regranting anything, and vice versa.
func TestSweepResumesLedger(t *testing.T) {
	jobs := testGrid(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Single-process run writes the ledger...
	j, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	single := runner.New(runner.Config{Loads: 2000, Journal: j})
	ref, err := single.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and the distributed sweep resumes every cell from it.
	j2, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	results, report, err := RunLocal(context.Background(), runner.Config{Loads: 2000, Journal: j2}, jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Resumed != len(jobs) || report.Completed != 0 {
		t.Fatalf("resumed sweep report: %+v", report)
	}
	for i := range jobs {
		if results[i] != ref[i] {
			t.Errorf("cell %d: resumed %+v != journaled %+v", i, results[i], ref[i])
		}
	}

	// And back: a fresh single-process run over the sweep's ledger
	// resumes too (the ledger a sweep leaves is a valid runner journal).
	j3, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	_, rep3, err := runner.New(runner.Config{Loads: 2000, Journal: j3}).RunWithReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Resumed != len(jobs) {
		t.Fatalf("single-process resume of the sweep ledger: %+v", rep3)
	}
}

// killInjector kills specific cells on every grant: the poisoned-cell
// shape that must end in quarantine, not a wedged sweep.
type killInjector struct{ kill map[int]bool }

func (k *killInjector) Inject(ctx context.Context, site fault.Site, key string, attempt int) error {
	if site == fault.SiteDistWorker {
		var idx int
		fmt.Sscanf(key, "%d|", &idx)
		if k.kill[idx] {
			return fault.ErrWorkerKill
		}
	}
	return nil
}

// TestPoisonedCellQuarantined checks the grant budget: a cell that kills
// every worker it lands on is quarantined into the report while the rest
// of the grid completes and stays bit-identical.
func TestPoisonedCellQuarantined(t *testing.T) {
	jobs := testGrid(t)
	ref := runSingle(t, jobs)
	inj := &killInjector{kill: map[int]bool{2: true}}

	coord, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
		Lease:        200 * time.Millisecond,
		MaxGrants:    3,
		GrantBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(ln)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// A spawner keeps two worker slots alive: every kill consumes a
	// worker, and the replacement keeps the sweep moving. The spawner
	// context dies with the coordinator so respawns stop at sweep end.
	sctx, scancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for slot := 0; slot < 2; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for gen := 0; ; gen++ {
				w := NewWorker(WorkerConfig{
					Name:         fmt.Sprintf("w%d-%d", slot, gen),
					Jobs:         jobs,
					RunnerConfig: runner.Config{Loads: 2000},
					Fault:        inj,
				})
				err := w.Run(sctx, ln.Addr().String())
				if err == nil || sctx.Err() != nil {
					return
				}
			}
		}(slot)
	}
	results, report, err := coord.Run(ctx)
	scancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if report.Quarantined != 1 || len(report.Failed) != 1 {
		t.Fatalf("report: %+v (failed: %v)", report, report.Failed)
	}
	fe := report.Failed[0]
	if fe.Index != 2 || fe.Attempts != 3 || !strings.Contains(fe.Err.Error(), "quarantined") {
		t.Fatalf("quarantine verdict: %+v", fe)
	}
	if report.Completed != len(jobs)-1 {
		t.Fatalf("completed = %d, want %d", report.Completed, len(jobs)-1)
	}
	for i := range jobs {
		if i == 2 {
			continue
		}
		if !runner.PayloadEqual(results[i], ref[i]) {
			t.Errorf("survivor cell %d diverged from the single-process run", i)
		}
	}
}

// TestWorkerRefusesDivergentGrid checks the identity guard: a worker
// whose grid expands to different cell keys refuses the grant and the
// coordinator fails the cell instead of recording a wrong result.
func TestWorkerRefusesDivergentGrid(t *testing.T) {
	jobs := testGrid(t)
	coord, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
		Lease:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Same grid size, different default seed: every cell key differs
	// (the specs pin Loads but leave Seed to the runner default).
	w := NewWorker(WorkerConfig{
		Name:         "divergent",
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000, Seed: 7},
	})
	if err := w.Run(ctx, ln.Addr().String()); err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("divergent worker: err = %v, want divergence refusal", err)
	}
	coord.Drain()
	_, report, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 1 || !strings.Contains(report.Failed[0].Err.Error(), "divergence") {
		t.Fatalf("report.Failed = %v, want one divergence failure", report.Failed)
	}
}

// TestDrainReturnsPartialReport checks the drain path: granting stops,
// in-flight cells finish, and Run returns without error with the
// remaining cells unevaluated.
func TestDrainReturnsPartialReport(t *testing.T) {
	jobs := testGrid(t)
	var once sync.Once
	var coord *Coordinator
	cfg := runner.Config{Loads: 2000, Progress: func(p runner.Progress) {
		once.Do(func() { coord.Drain() })
	}}
	c, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
		Ledger:       cfg.Journal,
		Progress:     cfg.Progress,
		Lease:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord = c
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		NewWorker(WorkerConfig{
			Name: "w0", Jobs: jobs, RunnerConfig: runner.Config{Loads: 2000},
		}).Run(ctx, ln.Addr().String())
	}()
	_, report, err := coord.Run(ctx)
	<-done
	if err != nil {
		t.Fatalf("drained sweep errored: %v", err)
	}
	terminal := report.Completed + report.Resumed + len(report.Failed)
	if terminal == 0 || terminal >= report.Total {
		t.Fatalf("drained report: %+v (want a strict subset evaluated)", report)
	}
}

// TestStopReturnsErrStopped checks the kill half of kill-and-resume: a
// stopped coordinator reports ErrStopped and leaves the ledger behind as
// the resume point.
func TestStopReturnsErrStopped(t *testing.T) {
	jobs := testGrid(t)
	coord, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(ln)
	coord.Stop()
	_, _, err = coord.Run(context.Background())
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped coordinator: err = %v, want ErrStopped", err)
	}
}

// TestCoordinatorRejectsGridSizeMismatch checks the hello guard.
func TestCoordinatorRejectsGridSizeMismatch(t *testing.T) {
	jobs := testGrid(t)
	coord, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: runner.Config{Loads: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(ln)
	defer func() {
		coord.Stop()
		coord.Run(context.Background())
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := NewWorker(WorkerConfig{
		Name: "short-grid", Jobs: jobs[:1], RunnerConfig: runner.Config{Loads: 2000},
	})
	if err := w.Run(ctx, ln.Addr().String()); err == nil {
		t.Fatal("worker with a mismatched grid size was admitted")
	}
}
