package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/runner"
	"pathfinder/internal/serve"
	"pathfinder/internal/telemetry"
)

// CoordConfig configures a sweep coordinator.
type CoordConfig struct {
	// Jobs is the grid, in order. Workers must be started from the same
	// grid: grants carry grid indices and the coordinator's cell keys,
	// and a worker refuses a key its own grid does not reproduce.
	Jobs []runner.Job
	// RunnerConfig supplies the Loads/Seed defaults cell keys derive
	// from. It must match the workers' runner configuration, or the two
	// sides disagree on every cell identity.
	RunnerConfig runner.Config
	// Ledger, if non-nil, is the authoritative result ledger: cells it
	// already holds are resumed without regranting, every accepted
	// result is recorded before the cell is marked done, and a recording
	// conflict (two workers producing different payloads for one cell)
	// fails the whole sweep. The coordinator does not close it.
	Ledger *runner.Journal
	// Lease is each grant's lifetime; a lease not renewed by a
	// heartbeat within it expires and the cell is reassigned (default
	// 10s). Workers heartbeat at a third of it.
	Lease time.Duration
	// MaxGrants caps how many times one cell may be granted before it is
	// quarantined (default 3).
	MaxGrants int
	// GrantBackoff is the delay before an expired cell becomes grantable
	// again; it doubles per further expiry, capped at 5s (default 50ms).
	GrantBackoff time.Duration
	// Fault, if non-nil, injects wire faults (SiteDistConn) into the
	// coordinator's side of every connection. Chaos testing only.
	Fault fault.Injector
	// Progress, if set, receives one event per terminal cell, exactly as
	// a single-process run would emit: resumed, completed, or failed
	// (quarantined cells arrive as failures).
	Progress runner.ProgressFunc
	// Logf, if set, receives coordinator lifecycle lines.
	Logf func(format string, args ...any)
}

// Cell lease states.
const (
	cellPending = iota
	cellLeased
	cellDone
	cellFailed
	cellQuarantined
)

// cellState is the coordinator-side lease state machine for one cell:
// pending → leased → done/failed, with expiry looping leased back to
// pending (grants capped, backoff doubling) and the cap landing in
// quarantined.
type cellState struct {
	idx    int
	key    string
	status int
	// grants counts grants issued; the attempt ordinal of the next grant.
	grants int
	// nextEligible gates regranting after an expiry.
	nextEligible time.Time
	// holder, deadline, lastBeat describe the current lease.
	holder   *coordConn
	deadline time.Time
	lastBeat time.Time
}

// coordConn is one accepted worker connection.
type coordConn struct {
	name string
	conn net.Conn
	mw   *msgWriter
}

// Coordinator owns a sweep: the grid, the ledger, and the lease table.
// Start one with NewCoordinator, attach a listener with Serve, and block
// on Run; Drain and Stop end it early.
type Coordinator struct {
	cfg  CoordConfig
	keys *runner.Runner // cell-key derivation only; never evaluates

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	cells    []*cellState
	results  []runner.Result
	report   *runner.RunReport
	open     int // cells not yet terminal
	leased   int // cells currently leased
	doneN    int // terminal cells, for Progress.Done
	draining bool
	failed   error
	conns    map[*coordConn]struct{}

	done      chan struct{}
	doneOnce  sync.Once
	drainCh   chan struct{}
	drainOnce sync.Once
	start     time.Time
	wg        sync.WaitGroup
}

// NewCoordinator builds a coordinator over the grid, resuming every cell
// the ledger already holds (each resumed cell emits a Progress event
// immediately). Call Serve to start accepting workers.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("dist: empty grid")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 10 * time.Second
	}
	if cfg.MaxGrants <= 0 {
		cfg.MaxGrants = 3
	}
	if cfg.GrantBackoff <= 0 {
		cfg.GrantBackoff = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	keyCfg := cfg.RunnerConfig
	keyCfg.Journal, keyCfg.Progress, keyCfg.Fault = nil, nil, nil
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		keys:    runner.New(keyCfg),
		ctx:     ctx,
		cancel:  cancel,
		results: make([]runner.Result, len(cfg.Jobs)),
		report:  &runner.RunReport{Total: len(cfg.Jobs)},
		open:    len(cfg.Jobs),
		conns:   make(map[*coordConn]struct{}),
		done:    make(chan struct{}),
		drainCh: make(chan struct{}),
		start:   time.Now(),
	}
	for i, job := range cfg.Jobs {
		c.cells = append(c.cells, &cellState{idx: i, key: c.keys.CellKey(i, job)})
	}
	// Resume: cells the ledger already holds never hit the wire again.
	if cfg.Ledger != nil {
		c.mu.Lock()
		for _, cs := range c.cells {
			if res, ok := cfg.Ledger.Lookup(cs.key); ok {
				cs.status = cellDone
				c.results[cs.idx] = res
				c.report.Resumed++
				c.terminal(cs, runner.Progress{
					Trace: res.Trace, Prefetcher: res.Prefetcher,
					Wall: res.Wall, Cycles: res.Cycles, Resumed: true,
				})
			}
		}
		c.mu.Unlock()
	}
	return c, nil
}

// Serve starts accepting workers on ln (which the coordinator now owns
// and closes on shutdown). It returns immediately; Run blocks.
func (c *Coordinator) Serve(ln net.Listener) {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(3)
	go c.acceptLoop(ln)
	go c.reaper()
	go c.drainWatcher()
}

// Addr returns the listener address, for workers started after Serve.
func (c *Coordinator) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// Drain stops granting: in-flight leases finish (or expire), pending
// cells stay unevaluated, and Run returns a partial report. Like Stop it
// only signals — the drain watcher applies it — so it is safe to call
// from any goroutine, including a Progress sink fired under the
// coordinator's lock.
func (c *Coordinator) Drain() {
	c.drainOnce.Do(func() { close(c.drainCh) })
}

// drainWatcher applies a Drain signal under the lock.
func (c *Coordinator) drainWatcher() {
	defer c.wg.Done()
	select {
	case <-c.ctx.Done():
		return
	case <-c.drainCh:
	}
	c.mu.Lock()
	c.draining = true
	c.cfg.Logf("dist: coordinator draining (%d cells open, %d leased)", c.open, c.leased)
	c.maybeFinish()
	c.mu.Unlock()
}

// Stop aborts the sweep immediately — the kill half of the ledger
// kill-and-resume contract. It only signals: teardown happens inside
// Run, so Stop is safe to call from any goroutine, including a Progress
// sink fired under the coordinator's lock.
func (c *Coordinator) Stop() { c.cancel() }

// ErrStopped is the Run error after a Stop: the sweep was killed, not
// finished, and the ledger is the resume point.
var ErrStopped = errors.New("dist: coordinator stopped")

// Run blocks until the sweep finishes (or drains, or is stopped, or ctx
// is cancelled), then tears the coordinator down: listener and worker
// connections closed, goroutines joined. Results are in grid order, with
// failed/unevaluated cells zero-valued; the report's Failed list carries
// one JobError per failed or quarantined cell. The error is non-nil only
// for whole-sweep failures — a ledger conflict or write error,
// cancellation, or a Stop.
func (c *Coordinator) Run(ctx context.Context) ([]runner.Result, *runner.RunReport, error) {
	stopped := false
	select {
	case <-c.done:
	case <-ctx.Done():
		c.fail(ctx.Err())
		<-c.done
	case <-c.ctx.Done():
		stopped = true
	}
	c.mu.Lock()
	graceful := !stopped && c.failed == nil
	c.mu.Unlock()
	c.shutdown(graceful)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Wall = time.Since(c.start)
	c.report.Telemetry = telemetry.GlobalSnapshot()
	sortFailed(c.report.Failed)
	err := c.failed
	if err == nil && stopped {
		err = ErrStopped
	}
	if err != nil {
		return nil, c.report, err
	}
	return append([]runner.Result(nil), c.results...), c.report, nil
}

// shutdown closes the listener and every live connection, then joins the
// accept loop, the reaper, and the connection handlers. On a graceful
// end it first gives connected workers a moment to request, hear
// MsgDone, and hang up on their own — closing underneath a request in
// flight would turn a clean sweep end into spurious broken-pipe errors
// across the fleet.
func (c *Coordinator) shutdown(graceful bool) {
	if graceful {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			c.mu.Lock()
			n := len(c.conns)
			c.mu.Unlock()
			if n == 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	c.cancel()
	c.mu.Lock()
	if c.ln != nil {
		c.ln.Close()
	}
	for cc := range c.conns {
		cc.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// fail records a whole-sweep failure and releases Run.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
}

// maybeFinish releases Run when every cell is terminal — or, while
// draining, when no lease is outstanding. Callers hold mu.
func (c *Coordinator) maybeFinish() {
	if c.open == 0 || (c.draining && c.leased == 0) {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// terminal publishes one cell's terminal state: the Progress event (with
// the coordinator-wide done counter) and the sweep-completion check.
// Callers hold mu and have already updated the report counters.
func (c *Coordinator) terminal(cs *cellState, p runner.Progress) {
	c.open--
	c.doneN++
	if cs.grants > 1 {
		// Every grant beyond the first was a reassignment.
		c.report.Retries += cs.grants - 1
	}
	p.Done, p.Total = c.doneN, len(c.cfg.Jobs)
	if c.cfg.Progress != nil {
		c.cfg.Progress(p)
	}
	c.maybeFinish()
}

// acceptLoop admits workers until the listener closes.
func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// reaper expires overdue leases. Ticking at a quarter of the lease keeps
// the worst-case detection latency at 1.25 leases.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	tick := c.cfg.Lease / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, cs := range c.cells {
			if cs.status == cellLeased && now.After(cs.deadline) {
				c.expireLocked(cs, "missed heartbeat")
			}
		}
		c.mu.Unlock()
	}
}

// expireLocked ends a lease without a result: the cell goes back to
// pending with doubled backoff, or to quarantine once its grant budget
// is spent. Callers hold mu.
func (c *Coordinator) expireLocked(cs *cellState, cause string) {
	m := distTele.Load()
	m.leaseExpired()
	holder := ""
	if cs.holder != nil {
		holder = cs.holder.name
	}
	cs.holder = nil
	c.leased--
	if cs.grants >= c.cfg.MaxGrants {
		cs.status = cellQuarantined
		m.quarantine()
		job := c.cfg.Jobs[cs.idx]
		je := &runner.JobError{
			Index: cs.idx, Trace: job.Trace, Label: job.Label,
			Attempts: cs.grants,
			Err:      fmt.Errorf("dist: cell quarantined after %d grants (last worker %q: %s)", cs.grants, holder, cause),
		}
		c.report.Failed = append(c.report.Failed, je)
		c.report.Quarantined++
		c.cfg.Logf("dist: quarantined cell %d (%s) after %d grants", cs.idx, cs.key, cs.grants)
		c.terminal(cs, runner.Progress{Trace: job.Trace, Prefetcher: job.Label, Err: je})
		return
	}
	cs.status = cellPending
	backoff := c.cfg.GrantBackoff << (cs.grants - 1)
	if backoff > 5*time.Second || backoff <= 0 {
		backoff = 5 * time.Second
	}
	cs.nextEligible = time.Now().Add(backoff)
	m.reassign()
	c.cfg.Logf("dist: lease on cell %d (%s) expired (%s, worker %q), regrant #%d after %s",
		cs.idx, cs.key, cause, holder, cs.grants, backoff)
}

// handleConn drives one worker connection: magic and hello, then the
// request/grant/heartbeat/result loop until the peer (or the sweep)
// goes away. Every lease the worker still holds when the connection
// dies expires immediately.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	var magic [4]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != Magic {
		c.cfg.Logf("dist: rejecting connection from %s: bad magic", conn.RemoteAddr())
		return
	}
	conn.SetReadDeadline(time.Time{})
	fr := serve.NewFrameReader(conn)
	kind, body, err := readMsg(fr)
	if err != nil || kind != MsgHello {
		c.cfg.Logf("dist: rejecting connection from %s: expected hello", conn.RemoteAddr())
		return
	}
	var hello Hello
	if err := decode(kind, body, &hello); err != nil {
		return
	}
	if hello.Cells != len(c.cfg.Jobs) {
		c.cfg.Logf("dist: rejecting worker %q: grid size %d != %d", hello.Worker, hello.Cells, len(c.cfg.Jobs))
		return
	}
	cc := &coordConn{name: hello.Worker, conn: conn, mw: &msgWriter{w: conn, inj: c.cfg.Fault}}
	c.mu.Lock()
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	m := distTele.Load()
	m.workerUp()
	c.cfg.Logf("dist: worker %q connected from %s", cc.name, conn.RemoteAddr())

	defer func() {
		c.mu.Lock()
		delete(c.conns, cc)
		for _, cs := range c.cells {
			if cs.status == cellLeased && cs.holder == cc {
				c.expireLocked(cs, "connection closed")
			}
		}
		c.mu.Unlock()
		m.workerDown()
	}()

	for {
		kind, body, err := readMsg(fr)
		if err != nil {
			if c.ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				m.connDrop()
				c.cfg.Logf("dist: worker %q connection lost: %v", cc.name, err)
			}
			return
		}
		switch kind {
		case MsgRequest:
			if err := c.handleRequest(cc); err != nil {
				return
			}
		case MsgHeartbeat:
			var hb Heartbeat
			if err := decode(kind, body, &hb); err != nil {
				return
			}
			c.handleHeartbeat(cc, hb)
		case MsgResult:
			var res ResultMsg
			if err := decode(kind, body, &res); err != nil {
				return
			}
			c.handleResult(cc, res)
		case MsgError:
			var em ErrorMsg
			if err := decode(kind, body, &em); err != nil {
				return
			}
			c.handleError(cc, em)
		default:
			c.cfg.Logf("dist: worker %q sent unexpected %s", cc.name, msgName(kind))
			return
		}
	}
}

// handleRequest answers one work request: a grant if a cell is
// grantable, done if the sweep is over (or draining), a wait otherwise.
func (c *Coordinator) handleRequest(cc *coordConn) error {
	now := time.Now()
	c.mu.Lock()
	if c.failed != nil || c.draining || c.open == 0 {
		c.mu.Unlock()
		return cc.mw.write(c.ctx, MsgDone, cc.name, struct{}{})
	}
	var pick *cellState
	for _, cs := range c.cells {
		if cs.status == cellPending && !now.Before(cs.nextEligible) {
			pick = cs
			break
		}
	}
	if pick == nil {
		c.mu.Unlock()
		retry := c.cfg.GrantBackoff
		if retry > c.cfg.Lease/2 {
			retry = c.cfg.Lease / 2
		}
		return cc.mw.write(c.ctx, MsgWait, cc.name, Wait{RetryMillis: int64(retry / time.Millisecond)})
	}
	attempt := pick.grants
	pick.grants++
	pick.status = cellLeased
	pick.holder = cc
	pick.deadline = now.Add(c.cfg.Lease)
	pick.lastBeat = now
	c.leased++
	c.mu.Unlock()
	distTele.Load().leaseGranted()
	c.cfg.Logf("dist: granted cell %d (%s) attempt %d to worker %q", pick.idx, pick.key, attempt, cc.name)
	return cc.mw.write(c.ctx, MsgGrant, fmt.Sprintf("%s/%s#%d", cc.name, pick.key, attempt), Grant{
		Index:       pick.idx,
		Key:         pick.key,
		Attempt:     attempt,
		LeaseMillis: int64(c.cfg.Lease / time.Millisecond),
	})
}

// handleHeartbeat renews the worker's lease on a cell. Beats for a lease
// the worker no longer holds (already expired and reassigned) are
// ignored — its late result will still be accepted if it arrives before
// the replacement's.
func (c *Coordinator) handleHeartbeat(cc *coordConn, hb Heartbeat) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cs := range c.cells {
		if cs.status == cellLeased && cs.holder == cc && cs.key == hb.Key {
			distTele.Load().heartbeat(now.Sub(cs.lastBeat))
			cs.lastBeat = now
			cs.deadline = now.Add(c.cfg.Lease)
			return
		}
	}
}

// handleResult accepts one completed cell: ledger first (idempotent on
// duplicates, whole-sweep failure on conflicts), then the lease table.
// A late result from a worker whose lease already expired is accepted as
// long as the cell is not yet terminal; after that it only has to agree
// with the recorded payload.
func (c *Coordinator) handleResult(cc *coordConn, msg ResultMsg) {
	c.mu.Lock()
	if msg.Index < 0 || msg.Index >= len(c.cells) || c.cells[msg.Index].key != msg.Key {
		c.mu.Unlock()
		c.fail(fmt.Errorf("dist: worker %q returned result for unknown cell %d (%s)", cc.name, msg.Index, msg.Key))
		return
	}
	cs := c.cells[msg.Index]
	if cs.status == cellDone || cs.status == cellFailed || cs.status == cellQuarantined {
		// A reassignment race resolved twice. Legal only because cells
		// are deterministic: the payloads must agree.
		c.mu.Unlock()
		distTele.Load().duplicateResult()
		if cs.status == cellDone && !runner.PayloadEqual(c.results[msg.Index], msg.Result) {
			c.fail(fmt.Errorf("dist: conflicting duplicate result for cell %q from worker %q", msg.Key, cc.name))
		}
		return
	}
	if c.cfg.Ledger != nil {
		if err := c.cfg.Ledger.Record(msg.Key, msg.Result); err != nil {
			c.mu.Unlock()
			// Losing (or corrupting) the ledger is a whole-sweep failure:
			// a resume would repeat or contradict finished work.
			c.fail(err)
			return
		}
	}
	if cs.status == cellLeased {
		if cs.holder != cc {
			// The original worker out-raced its replacement.
			distTele.Load().duplicateResult()
		}
		c.leased--
	}
	cs.status = cellDone
	cs.holder = nil
	c.results[msg.Index] = msg.Result
	c.report.Completed++
	distTele.Load().result()
	c.terminal(cs, runner.Progress{
		Trace: msg.Result.Trace, Prefetcher: msg.Result.Prefetcher,
		Wall: msg.Result.Wall, Cycles: msg.Result.Cycles,
	})
	c.mu.Unlock()
}

// handleError fails one cell permanently: the worker is alive and its
// local runner already applied the retry policy, so the verdict is
// deterministic and regranting would only repeat it.
func (c *Coordinator) handleError(cc *coordConn, msg ErrorMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if msg.Index < 0 || msg.Index >= len(c.cells) || c.cells[msg.Index].key != msg.Key {
		return
	}
	cs := c.cells[msg.Index]
	if cs.status != cellLeased && cs.status != cellPending {
		return // late verdict for a cell that already resolved
	}
	if cs.status == cellLeased {
		c.leased--
	}
	cs.status = cellFailed
	cs.holder = nil
	job := c.cfg.Jobs[cs.idx]
	je := &runner.JobError{
		Index: cs.idx, Trace: job.Trace, Label: job.Label,
		Attempts: msg.Attempts,
		Err:      fmt.Errorf("dist: worker %q: %s", cc.name, msg.Error),
	}
	c.report.Failed = append(c.report.Failed, je)
	c.cfg.Logf("dist: cell %d (%s) failed permanently on worker %q: %s", cs.idx, cs.key, cc.name, msg.Error)
	c.terminal(cs, runner.Progress{Trace: job.Trace, Prefetcher: job.Label, Err: je})
}

// sortFailed orders the failure list by grid index, like the
// single-process report.
func sortFailed(failed []*runner.JobError) {
	for i := 1; i < len(failed); i++ {
		for k := i; k > 0 && failed[k].Index < failed[k-1].Index; k-- {
			failed[k], failed[k-1] = failed[k-1], failed[k]
		}
	}
}

// Nil-safe telemetry helpers: the coordinator's hot paths stay one
// pointer check when telemetry is off (the counters themselves are also
// nil-safe, so the methods work on a nil *distMetrics).
func (m *distMetrics) leaseGranted() {
	if m != nil {
		m.leasesGranted.Inc()
	}
}
func (m *distMetrics) leaseExpired() {
	if m != nil {
		m.leasesExpired.Inc()
	}
}
func (m *distMetrics) reassign() {
	if m != nil {
		m.leasesReassigned.Inc()
	}
}
func (m *distMetrics) quarantine() {
	if m != nil {
		m.quarantined.Inc()
	}
}
func (m *distMetrics) result() {
	if m != nil {
		m.results.Inc()
	}
}
func (m *distMetrics) duplicateResult() {
	if m != nil {
		m.duplicateResults.Inc()
	}
}
func (m *distMetrics) heartbeat(gap time.Duration) {
	if m != nil {
		m.heartbeats.Inc()
		m.heartbeatGapNs.Observe(uint64(gap))
	}
}
func (m *distMetrics) workerUp() {
	if m != nil {
		m.workers.Add(1)
	}
}
func (m *distMetrics) workerDown() {
	if m != nil {
		m.workers.Add(-1)
	}
}
func (m *distMetrics) connDrop() {
	if m != nil {
		m.connDrops.Inc()
	}
}
