package dist

import (
	"encoding/json"
	"fmt"
	"os"

	"pathfinder/internal/runner"
	"pathfinder/internal/serve"
)

// CellSpec is one serializable grid cell: a workload, a technique name
// from the wire-facing registry (serve.NewPrefetcherByName, plus the
// offline Delta-LSTM/Voyager generators), and the effective knobs. A
// coordinator and its workers each expand the same spec list into the
// same []runner.Job, which is what lets a grant carry only a grid index
// and a key.
type CellSpec struct {
	// Trace names the workload (see pathfinder.Workloads).
	Trace string `json:"trace"`
	// Prefetcher names the technique.
	Prefetcher string `json:"prefetcher"`
	// Loads / Seed / Budget override the runner defaults when non-zero.
	Loads  int   `json:"loads,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	Budget int   `json:"budget,omitempty"`
}

// Job builds the runner job for one spec. The technique name is
// validated eagerly — a sweep should refuse a misspelled grid before any
// cell is granted, not fail every grant at evaluation time.
func (s CellSpec) Job() (runner.Job, error) {
	job, err := serve.JobFor(serve.EvalRequest{
		Trace:      s.Trace,
		Prefetcher: s.Prefetcher,
		Loads:      s.Loads,
		Seed:       s.Seed,
		Budget:     s.Budget,
	})
	if err != nil {
		return runner.Job{}, err
	}
	if job.New != nil {
		if _, err := job.New(); err != nil {
			return runner.Job{}, err
		}
	}
	return job, nil
}

// Jobs expands a spec list into the grid, in order.
func Jobs(specs []CellSpec) ([]runner.Job, error) {
	jobs := make([]runner.Job, len(specs))
	for i, s := range specs {
		job, err := s.Job()
		if err != nil {
			return nil, fmt.Errorf("dist: cell %d: %w", i, err)
		}
		jobs[i] = job
	}
	return jobs, nil
}

// GridSpec is the on-disk sweep description read by cmd/pfsweep: a cross
// product of traces × prefetchers × seeds, plus explicit extra cells.
// Expansion order is deterministic (traces outermost, then prefetchers,
// then seeds, then Cells verbatim), so every process expanding the same
// file derives the same grid — and therefore the same cell keys.
type GridSpec struct {
	// Traces and Prefetchers span the cross product.
	Traces      []string `json:"traces,omitempty"`
	Prefetchers []string `json:"prefetchers,omitempty"`
	// Seeds lists the trace-generation seeds (default: just 0, meaning
	// the runner default).
	Seeds []int64 `json:"seeds,omitempty"`
	// Loads / Budget apply to every cross-product cell.
	Loads  int `json:"loads,omitempty"`
	Budget int `json:"budget,omitempty"`
	// Cells are appended after the cross product, verbatim.
	Cells []CellSpec `json:"cells,omitempty"`
}

// Expand materialises the spec list.
func (g GridSpec) Expand() []CellSpec {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	var specs []CellSpec
	for _, tr := range g.Traces {
		for _, pf := range g.Prefetchers {
			for _, seed := range seeds {
				specs = append(specs, CellSpec{
					Trace: tr, Prefetcher: pf,
					Loads: g.Loads, Seed: seed, Budget: g.Budget,
				})
			}
		}
	}
	return append(specs, g.Cells...)
}

// LoadGrid reads and expands a GridSpec JSON file.
func LoadGrid(path string) ([]CellSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dist: grid: %w", err)
	}
	var g GridSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("dist: grid %s: %w", path, err)
	}
	specs := g.Expand()
	if len(specs) == 0 {
		return nil, fmt.Errorf("dist: grid %s: no cells", path)
	}
	return specs, nil
}
