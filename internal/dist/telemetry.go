package dist

import (
	"sync/atomic"

	"pathfinder/internal/telemetry"
)

// distMetrics is the sweep engine's bound telemetry handles (the dist.*
// catalogue in docs/observability.md). The coordinator's RunReport stays
// authoritative for one sweep; these aggregate across every sweep the
// process runs, which is what a live scrape sees.
type distMetrics struct {
	leasesGranted    *telemetry.Counter   // grants issued (first grants + reassignments)
	leasesExpired    *telemetry.Counter   // leases expired (missed heartbeat or dead conn)
	leasesReassigned *telemetry.Counter   // expired cells put back in the pending pool
	quarantined      *telemetry.Counter   // cells abandoned after the grant budget
	results          *telemetry.Counter   // results accepted into the ledger
	duplicateResults *telemetry.Counter   // late results for already-terminal cells
	heartbeats       *telemetry.Counter   // heartbeats accepted
	heartbeatGapNs   *telemetry.Histogram // gap between a lease's consecutive beats
	workers          *telemetry.Gauge     // currently connected workers
	connDrops        *telemetry.Counter   // worker connections that died mid-sweep
}

var distTele atomic.Pointer[distMetrics]

// EnableTelemetry binds the package's metrics to r (pass nil to unbind).
func EnableTelemetry(r *telemetry.Registry) {
	if r == nil {
		distTele.Store(nil)
		return
	}
	distTele.Store(&distMetrics{
		leasesGranted:    r.Counter("dist.leases_granted"),
		leasesExpired:    r.Counter("dist.leases_expired"),
		leasesReassigned: r.Counter("dist.leases_reassigned"),
		quarantined:      r.Counter("dist.quarantined"),
		results:          r.Counter("dist.results"),
		duplicateResults: r.Counter("dist.duplicate_results"),
		heartbeats:       r.Counter("dist.heartbeats"),
		heartbeatGapNs:   r.Histogram("dist.heartbeat_gap_ns"),
		workers:          r.Gauge("dist.workers"),
		connDrops:        r.Counter("dist.conn_drops"),
	})
}
