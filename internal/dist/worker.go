package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"pathfinder/internal/fault"
	"pathfinder/internal/runner"
	"pathfinder/internal/serve"
)

// WorkerConfig configures a sweep worker.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs and lease state.
	Name string
	// Jobs is the worker's copy of the grid; it must expand to the same
	// cells, in the same order, as the coordinator's (see CellSpec).
	Jobs []runner.Job
	// Runner, if non-nil, is the local evaluation engine; otherwise one
	// is built from RunnerConfig. Sharing a Runner between workers of a
	// process shares its trace/baseline caches.
	Runner *runner.Runner
	// RunnerConfig builds the engine when Runner is nil. It must carry
	// the same Loads/Seed defaults as the coordinator's, or cell keys
	// diverge.
	RunnerConfig runner.Config
	// Fault, if non-nil, injects wire faults (SiteDistConn) and worker
	// kills (SiteDistWorker) — the chaos knobs. Engine-level faults
	// belong in RunnerConfig.Fault instead.
	Fault fault.Injector
	// DialRetry bounds how long the worker retries the initial dial —
	// it may start before the coordinator listens (default 2s).
	DialRetry time.Duration
	// Logf, if set, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

// Worker evaluates coordinator-granted cells on a local runner. One
// Worker drives one connection; run several for per-process parallelism
// (sharing a Runner keeps the caches shared).
type Worker struct {
	cfg      WorkerConfig
	r        *runner.Runner
	draining atomic.Bool
}

// Drain asks the worker to stop after its current cell: the next time it
// would request a grant it instead tells the coordinator it is done and
// Run returns nil. Safe from any goroutine (pfsweep calls it from the
// signal handler).
func (w *Worker) Drain() { w.draining.Store(true) }

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 2 * time.Second
	}
	r := cfg.Runner
	if r == nil {
		r = runner.New(cfg.RunnerConfig)
	}
	return &Worker{cfg: cfg, r: r}
}

// Run connects to the coordinator at addr and evaluates granted cells
// until the sweep is done (nil), the context ends, or the connection (or
// this worker, under injected kills) dies. A killed worker returns
// fault.ErrWorkerKill; the harness respawns a replacement.
func (w *Worker) Run(ctx context.Context, addr string) error {
	conn, err := w.dial(ctx, addr)
	if err != nil {
		return err
	}
	// Silent-kill mode hands the open connection to a holder goroutine
	// instead of closing it, so the coordinator sees a missed heartbeat
	// rather than a dead peer.
	abandoned := false
	defer func() {
		if !abandoned {
			conn.Close()
		}
	}()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if _, err := conn.Write([]byte(Magic)); err != nil {
		return fmt.Errorf("dist: worker %s: %w", w.cfg.Name, err)
	}
	mw := &msgWriter{w: conn, inj: w.cfg.Fault}
	fr := serve.NewFrameReader(conn)
	if err := mw.write(ctx, MsgHello, w.cfg.Name, Hello{Worker: w.cfg.Name, Cells: len(w.cfg.Jobs)}); err != nil {
		return fmt.Errorf("dist: worker %s: hello: %w", w.cfg.Name, err)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			w.cfg.Logf("dist: worker %s: drained", w.cfg.Name)
			return nil
		}
		if err := mw.write(ctx, MsgRequest, w.cfg.Name, struct{}{}); err != nil {
			return fmt.Errorf("dist: worker %s: request: %w", w.cfg.Name, err)
		}
		kind, body, err := readMsg(fr)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: worker %s: %w", w.cfg.Name, err)
		}
		switch kind {
		case MsgDone:
			w.cfg.Logf("dist: worker %s: sweep done", w.cfg.Name)
			return nil
		case MsgWait:
			var wt Wait
			if err := decode(kind, body, &wt); err != nil {
				return err
			}
			if err := sleepCtx(ctx, time.Duration(wt.RetryMillis)*time.Millisecond); err != nil {
				return err
			}
		case MsgGrant:
			var g Grant
			if err := decode(kind, body, &g); err != nil {
				return err
			}
			abandon, err := w.evaluate(ctx, conn, mw, g)
			if abandon {
				abandoned = true
				go holdConn(conn, fr)
				return err
			}
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: unexpected %s", w.cfg.Name, msgName(kind))
		}
	}
}

// evaluate runs one granted cell: divergence guard, seeded kill check,
// heartbeats for the lease's lifetime, then the result (or the permanent
// error verdict) back to the coordinator. The abandon return asks Run to
// leave the connection open — the silent half of the kill repertoire.
func (w *Worker) evaluate(ctx context.Context, conn net.Conn, mw *msgWriter, g Grant) (abandon bool, err error) {
	if g.Index < 0 || g.Index >= len(w.cfg.Jobs) {
		return false, fmt.Errorf("dist: worker %s: grant for cell %d outside the %d-cell grid", w.cfg.Name, g.Index, len(w.cfg.Jobs))
	}
	job := w.cfg.Jobs[g.Index]
	if key := w.r.CellKey(g.Index, job); key != g.Key {
		// The two sides expanded different grids. Journaling results
		// under the coordinator's identities would corrupt the ledger,
		// so refuse loudly and let the coordinator fail the cell.
		mw.write(ctx, MsgError, w.cfg.Name, ErrorMsg{
			Index: g.Index, Key: g.Key, Attempts: 1,
			Error: fmt.Sprintf("grid divergence: worker key %q != granted key %q", key, g.Key),
		})
		return false, fmt.Errorf("dist: worker %s: grid divergence on cell %d", w.cfg.Name, g.Index)
	}

	// The seeded mid-cell kill. Alternating the death mode by grant
	// attempt exercises both expiry paths: an abrupt close (the
	// coordinator sees the conn die) and a silent abandonment (only the
	// missed heartbeat gives it away).
	if w.cfg.Fault != nil {
		if kerr := w.cfg.Fault.Inject(ctx, fault.SiteDistWorker, g.Key, g.Attempt); kerr != nil {
			if !errors.Is(kerr, fault.ErrWorkerKill) {
				return false, kerr
			}
			if g.Attempt%2 == 0 {
				w.cfg.Logf("dist: worker %s: killed on cell %d attempt %d (abrupt)", w.cfg.Name, g.Index, g.Attempt)
				conn.Close()
				return false, fault.ErrWorkerKill
			}
			w.cfg.Logf("dist: worker %s: killed on cell %d attempt %d (silent)", w.cfg.Name, g.Index, g.Attempt)
			return true, fault.ErrWorkerKill
		}
	}

	// Heartbeat for the lease's lifetime at a third of it.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(g.LeaseMillis) * time.Millisecond / 3
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				// An injected drop severs the wire for real, so both
				// sides see one truth; any other failed beat means the
				// wire is already gone and the result write surfaces it.
				if err := mw.write(hbCtx, MsgHeartbeat, w.cfg.Name+"/"+g.Key, Heartbeat{Key: g.Key}); errors.Is(err, fault.ErrConnDrop) {
					conn.Close()
					return
				}
			}
		}
	}()
	res, evalErr := w.r.EvalCell(ctx, g.Index, job)
	stopHB()
	<-hbDone

	if evalErr != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		attempts := 1
		var je *runner.JobError
		if errors.As(evalErr, &je) {
			attempts = je.Attempts
		}
		w.cfg.Logf("dist: worker %s: cell %d failed permanently: %v", w.cfg.Name, g.Index, evalErr)
		if werr := mw.write(ctx, MsgError, fmt.Sprintf("%s/%s#%d", w.cfg.Name, g.Key, g.Attempt), ErrorMsg{
			Index: g.Index, Key: g.Key, Error: evalErr.Error(), Attempts: attempts,
		}); werr != nil {
			return false, werr
		}
		return false, nil
	}
	if werr := mw.write(ctx, MsgResult, fmt.Sprintf("%s/%s#%d", w.cfg.Name, g.Key, g.Attempt), ResultMsg{
		Index: g.Index, Key: g.Key, Result: res,
	}); werr != nil {
		return false, werr
	}
	return false, nil
}

// dial connects with retry: workers may start before the coordinator
// listens, and the kill-and-resume harness restarts coordinators under
// live workers.
func (w *Worker) dial(ctx context.Context, addr string) (net.Conn, error) {
	deadline := time.Now().Add(w.cfg.DialRetry)
	d := net.Dialer{}
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: worker %s: dial %s: %w", w.cfg.Name, addr, err)
		}
		if serr := sleepCtx(ctx, 25*time.Millisecond); serr != nil {
			return nil, serr
		}
	}
}

// holdConn keeps an abandoned connection open — discarding whatever the
// coordinator sends — until the coordinator closes it, then releases it.
func holdConn(conn net.Conn, fr *serve.FrameReader) {
	defer conn.Close()
	for {
		if _, err := fr.Next(); err != nil {
			return
		}
	}
}

// sleepCtx blocks for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RunLocal runs a whole sweep in-process: a coordinator plus a fleet of
// workers over loopback TCP, all sharing one evaluation engine (and so
// one set of trace/baseline caches) — the `-distributed` mode of
// cmd/experiments, and the shape the chaos harness perturbs. cfg is the
// single-process runner configuration it mirrors: Journal becomes the
// sweep ledger, Progress receives the coordinator's terminal events, and
// everything else configures the workers' shared engine.
func RunLocal(ctx context.Context, cfg runner.Config, jobs []runner.Job, workers int) ([]runner.Result, *runner.RunReport, error) {
	if workers <= 0 {
		workers = cfg.Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wcfg := cfg
	wcfg.Journal = nil  // the coordinator owns the ledger
	wcfg.Progress = nil // the coordinator emits progress
	coord, err := NewCoordinator(CoordConfig{
		Jobs:         jobs,
		RunnerConfig: wcfg,
		Ledger:       cfg.Journal,
		Progress:     cfg.Progress,
	})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("dist: %w", err)
	}
	coord.Serve(ln)
	addr := ln.Addr().String()

	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	shared := runner.New(wcfg)
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		w := NewWorker(WorkerConfig{
			Name:   fmt.Sprintf("local-%d", i),
			Jobs:   jobs,
			Runner: shared,
		})
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(wctx, addr)
		}()
	}
	results, report, rerr := coord.Run(ctx)
	cancelWorkers()
	for i := 0; i < workers; i++ {
		<-done
	}
	return results, report, rerr
}
