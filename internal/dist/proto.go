// Package dist is the fault-tolerant distributed sweep engine: a
// coordinator/worker split that promotes the single-process evaluation
// grid of internal/runner to a fleet (ROADMAP item 2). The coordinator
// owns the grid and the authoritative result ledger — the runner's JSONL
// journal, reused verbatim, torn-tail repair and all — and hands out
// cells under leases; workers evaluate granted cells on their own local
// runner (engine pools, single-flight trace/baseline caches) and stream
// results back.
//
// Robustness contract: every grant carries a deadline, workers heartbeat
// while evaluating, and a missed heartbeat or a closed connection expires
// the lease — the cell is reassigned with a capped grant budget and
// exponential backoff, and a poisoned cell that kills every worker it
// lands on is quarantined into the RunReport instead of wedging the
// sweep. Because evaluation is deterministic and the ledger resolves
// duplicate results idempotently (conflicts are a whole-sweep failure,
// never silently dropped), a sweep run at any parallelism, under worker
// crashes, connection drops, and a coordinator kill-and-resume from the
// ledger, produces survivor results bit-identical to a clean
// single-process run. See docs/distributed.md for the protocol and the
// lease state machine.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"pathfinder/internal/fault"
	"pathfinder/internal/runner"
	"pathfinder/internal/serve"
)

// Magic opens every sweep connection: the worker writes these four bytes
// before its first frame, and the coordinator refuses anything else —
// catching a pfserved client (PFS1) or stray scanner before any state is
// touched.
const Magic = "PFD1"

// Message kinds. Each frame payload is one kind byte followed by a JSON
// body; framing (4-byte big-endian length prefix, 64 KiB cap) is
// internal/serve's, reused wholesale.
const (
	// MsgHello is the worker's first frame: its name and grid size, so
	// the coordinator can refuse a worker holding a different grid.
	MsgHello byte = 0x01
	// MsgRequest asks for a cell; the coordinator answers MsgGrant,
	// MsgWait, or MsgDone.
	MsgRequest byte = 0x02
	// MsgGrant leases one cell to the worker until a deadline.
	MsgGrant byte = 0x03
	// MsgWait tells the worker nothing is grantable right now (cells are
	// leased out or backing off); re-request after the hint.
	MsgWait byte = 0x04
	// MsgDone tells the worker the sweep is finished (or draining): no
	// more grants, disconnect.
	MsgDone byte = 0x05
	// MsgHeartbeat renews the worker's lease on a cell mid-evaluation.
	MsgHeartbeat byte = 0x06
	// MsgResult delivers one completed cell.
	MsgResult byte = 0x07
	// MsgError reports a cell's permanent evaluation failure — the
	// worker is alive and the verdict is deterministic, so the
	// coordinator fails the cell rather than reassigning it.
	MsgError byte = 0x08
)

// msgName names a message kind for logs and fault-site keys.
func msgName(kind byte) string {
	switch kind {
	case MsgHello:
		return "hello"
	case MsgRequest:
		return "request"
	case MsgGrant:
		return "grant"
	case MsgWait:
		return "wait"
	case MsgDone:
		return "done"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("kind(%#x)", kind)
}

// Hello is the MsgHello body.
type Hello struct {
	// Worker is the worker's self-chosen name, used in logs and lease
	// bookkeeping.
	Worker string `json:"worker"`
	// Cells is the worker's grid size. It must match the coordinator's:
	// grants carry grid indices, so a size mismatch means the two sides
	// were started from different sweeps.
	Cells int `json:"cells"`
}

// Grant is the MsgGrant body: one leased cell.
type Grant struct {
	// Index is the cell's position in the grid.
	Index int `json:"index"`
	// Key is the coordinator's cell key. The worker recomputes the key
	// from its own grid and refuses a mismatch — the divergence guard
	// that keeps a mis-started fleet from journaling results under wrong
	// identities.
	Key string `json:"key"`
	// Attempt is the grant ordinal for this cell (0 on the first grant),
	// mixed into fault-injection draws so a reassigned cell re-rolls.
	Attempt int `json:"attempt"`
	// LeaseMillis is the lease duration; the worker heartbeats at a
	// third of it.
	LeaseMillis int64 `json:"lease_ms"`
}

// Wait is the MsgWait body.
type Wait struct {
	// RetryMillis hints when to re-request.
	RetryMillis int64 `json:"retry_ms"`
}

// Heartbeat is the MsgHeartbeat body.
type Heartbeat struct {
	// Key is the leased cell being renewed.
	Key string `json:"key"`
}

// ResultMsg is the MsgResult body.
type ResultMsg struct {
	Index  int           `json:"index"`
	Key    string        `json:"key"`
	Result runner.Result `json:"result"`
}

// ErrorMsg is the MsgError body.
type ErrorMsg struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	// Error is the rendered permanent failure.
	Error string `json:"error"`
	// Attempts is how many local evaluation attempts the worker made.
	Attempts int `json:"attempts"`
}

// msgWriter serialises frame writes onto one connection — a worker's
// heartbeat goroutine and its main loop share the conn — and fires the
// SiteDistConn fault site per write, so a seeded chaos run can sever,
// stall, or delay the wire deterministically.
type msgWriter struct {
	mu  sync.Mutex
	w   io.Writer
	inj fault.Injector
	buf []byte
}

// write sends one kind+JSON frame. The fault-site key is
// "peer/msgname/detail" with the grant attempt mixed in by the caller via
// detail, so a draw that drops (say) a result write re-rolls after the
// reassignment it causes.
func (mw *msgWriter) write(ctx context.Context, kind byte, siteKey string, body any) error {
	if mw.inj != nil {
		if err := mw.inj.Inject(ctx, fault.SiteDistConn, siteKey+"/"+msgName(kind), 0); err != nil {
			return err
		}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dist: encoding %s: %w", msgName(kind), err)
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.buf = append(append(mw.buf[:0], kind), b...)
	return serve.WriteFrame(mw.w, mw.buf)
}

// readMsg reads one frame and splits the kind byte from the JSON body.
// The body aliases the reader's buffer; decode before the next read.
func readMsg(fr *serve.FrameReader) (byte, []byte, error) {
	payload, err := fr.Next()
	if err != nil {
		return 0, nil, err
	}
	if len(payload) < 1 {
		return 0, nil, errors.New("dist: empty frame")
	}
	return payload[0], payload[1:], nil
}

// decode unmarshals a message body with a positioned error.
func decode(kind byte, body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("dist: bad %s body: %w", msgName(kind), err)
	}
	return nil
}
