// Package trace defines the memory-access trace format shared by the
// workload generators, the prefetchers, and the timing simulator.
//
// A trace is an ordered sequence of load accesses, mirroring the load trace
// of the ML Prefetching Competition ChampSim fork used by the PATHFINDER
// paper (§4.1): each record carries the instruction id, the program counter
// of the load, and the virtual byte address it touches. Prefetchers consume
// traces and emit prefetch files (see Prefetch); the simulator replays both.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Memory geometry used throughout the reproduction. These match the paper's
// setup: 4 KB pages with 64-byte cache blocks, so page offsets span 0..63
// and within-page block deltas span -63..+63 (D = 127 in §3.2).
const (
	// BlockBytes is the cache block (line) size in bytes.
	BlockBytes = 64
	// PageBytes is the virtual page size in bytes.
	PageBytes = 4096
	// BlocksPerPage is the number of cache blocks per page (64).
	BlocksPerPage = PageBytes / BlockBytes
	// MaxDelta is the largest possible within-page block delta (+63).
	MaxDelta = BlocksPerPage - 1
	// MinDelta is the smallest possible within-page block delta (-63).
	MinDelta = -MaxDelta

	// MaxAddr is the largest virtual byte address a trace record may
	// carry: the canonical 48-bit user address space of the x86-64/RISC-V
	// machines the paper models. Decoders reject addresses and PCs above
	// it — a field up there is a corrupt record, not a real load — and
	// encoders refuse to produce them, keeping the container closed.
	MaxAddr = 1<<48 - 1
)

// Access is one load in a memory trace.
type Access struct {
	// ID is the instruction id of the load. IDs increase monotonically
	// along a trace but need not be dense: the gap between consecutive
	// IDs stands in for the non-load instructions executed between the
	// two loads, which the timing model uses to compute IPC.
	ID uint64
	// PC is the program counter of the load instruction.
	PC uint64
	// Addr is the virtual byte address touched by the load.
	Addr uint64
	// Chain, when non-zero, names a serial dependence chain: this load's
	// address was computed from the data of the chain's previous load, so
	// it cannot issue until that load completes. This carries the
	// register-dependency information of ChampSim traces in compressed
	// form; pointer-chasing loads are the classic members.
	Chain uint32
}

// Block returns the cache-block address (byte address >> 6) of the access.
func (a Access) Block() uint64 { return a.Addr / BlockBytes }

// Page returns the virtual page number of the access.
func (a Access) Page() uint64 { return a.Addr / PageBytes }

// Offset returns the block offset within the page, in [0, BlocksPerPage).
func (a Access) Offset() int { return int(a.Addr % PageBytes / BlockBytes) }

// Prefetch is one entry of a prefetch file: a block address to prefetch,
// issued when the trace reaches the access with the given instruction ID.
// This mirrors the two-phase flow of the competition ChampSim fork, where a
// prefetching technique first turns the memory trace into a prefetch file
// and the simulator then replays both together (§4.1).
type Prefetch struct {
	// ID is the instruction id of the triggering load.
	ID uint64
	// Addr is the byte address of the block to prefetch.
	Addr uint64
}

// Block returns the cache-block address of the prefetch target.
func (p Prefetch) Block() uint64 { return p.Addr / BlockBytes }

// BlockAddr converts a block number back to the byte address of its first
// byte. It is the inverse of Access.Block.
func BlockAddr(block uint64) uint64 { return block * BlockBytes }

// PageOf returns the page number containing the given block number.
func PageOf(block uint64) uint64 { return block / BlocksPerPage }

// OffsetOf returns the within-page offset of the given block number.
func OffsetOf(block uint64) int { return int(block % BlocksPerPage) }

// Delta returns the signed block delta from block a to block b when both lie
// in the same page, and ok=false otherwise. Deltas are the fundamental unit
// PATHFINDER and the delta-based baselines learn (§3.2).
func Delta(a, b uint64) (delta int, ok bool) {
	if PageOf(a) != PageOf(b) {
		return 0, false
	}
	return OffsetOf(b) - OffsetOf(a), true
}

// magic identifies the binary trace container format.
var magic = [4]byte{'P', 'F', 'T', '2'}

// Write encodes accesses to w in the binary trace container format.
// The format is a 4-byte magic, a uvarint count, then per record uvarint
// deltas of ID and raw uvarints for PC and Addr. Delta-encoding IDs keeps
// typical traces compact without external compression.
func Write(w io.Writer, accs []Access) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(accs))); err != nil {
		return err
	}
	prevID := uint64(0)
	for i, a := range accs {
		if a.ID < prevID {
			return fmt.Errorf("trace: access %d has ID %d < previous ID %d", i, a.ID, prevID)
		}
		if a.PC > MaxAddr {
			return fmt.Errorf("trace: access %d has pc %#x beyond the canonical address space", i, a.PC)
		}
		if a.Addr > MaxAddr {
			return fmt.Errorf("trace: access %d has addr %#x beyond the canonical address space", i, a.Addr)
		}
		if err := put(a.ID - prevID); err != nil {
			return err
		}
		prevID = a.ID
		if err := put(a.PC); err != nil {
			return err
		}
		if err := put(a.Addr); err != nil {
			return err
		}
		if err := put(uint64(a.Chain)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a binary trace container (counted PFT2 as written by Write,
// or an unbounded PFT3 stream as written by Writer) into a slice. It is
// the materializing convenience over NewReader: the streaming decoder does
// all the work, so the two paths decode identically by construction.
func Read(r io.Reader) ([]Access, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return Collect(rd)
}

// WritePrefetches encodes a prefetch file to w. The format mirrors Write:
// magic "PFP1", uvarint count, then per record uvarint ID delta and a raw
// uvarint address. Prefetch IDs must be non-decreasing.
func WritePrefetches(w io.Writer, pfs []Prefetch) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write([]byte("PFP1")); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(pfs))); err != nil {
		return err
	}
	prevID := uint64(0)
	for i, p := range pfs {
		if p.ID < prevID {
			return fmt.Errorf("trace: prefetch %d has ID %d < previous ID %d", i, p.ID, prevID)
		}
		if p.Addr > MaxAddr {
			return fmt.Errorf("trace: prefetch %d has addr %#x beyond the canonical address space", i, p.Addr)
		}
		if err := put(p.ID - prevID); err != nil {
			return err
		}
		prevID = p.ID
		if err := put(p.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPrefetches decodes a prefetch file written by WritePrefetches.
func ReadPrefetches(r io.Reader) ([]Prefetch, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != "PFP1" {
		return nil, errors.New("trace: bad magic; not a PFP1 prefetch file")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const sanityMax = 1 << 30
	if n > sanityMax {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	pfs := make([]Prefetch, 0, n)
	id := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d id: %w", i, err)
		}
		if d > ^uint64(0)-id {
			return nil, fmt.Errorf("trace: record %d: id delta %d overflows the id sequence", i, d)
		}
		id += d
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		if addr > MaxAddr {
			return nil, fmt.Errorf("trace: record %d: addr %#x beyond the canonical address space", i, addr)
		}
		pfs = append(pfs, Prefetch{ID: id, Addr: addr})
	}
	return pfs, nil
}
