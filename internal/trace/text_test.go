package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	accs := []Access{
		{ID: 1, PC: 0x400100, Addr: 0x7f0000001000, Chain: 0},
		{ID: 1, PC: 0x400108, Addr: 0x7f0000001040, Chain: 2},
		{ID: 37, PC: 0x400200, Addr: PageBytes},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, accs); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, accs)
	}
}

func TestReadTextFlexibleInput(t *testing.T) {
	in := `
# leading comment
1 0x400100 4096       # trailing comment
2, 0x400108, 8192, 1  # comma separated, with chain
	3	4195592	12288     # tabs, decimal pc
`
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	want := []Access{
		{ID: 1, PC: 0x400100, Addr: 4096},
		{ID: 2, PC: 0x400108, Addr: 8192, Chain: 1},
		{ID: 3, PC: 4195592, Addr: 12288},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// TestReadTextRejects is the satellite's core contract: NaN, Inf, floats,
// negatives, and out-of-range fields are rejected with a positioned
// `record N:` error, where N counts records (not raw lines).
func TestReadTextRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"NaN addr", "1 0x400100 NaN", "record 0: addr is NaN"},
		{"nan lowercase", "1 0x400100 4096\n2 nan 8192", "record 1: pc is NaN"},
		{"Inf", "1 0x400100 Inf", "record 0: addr is Inf"},
		{"negative inf", "1 -Inf 4096", "record 0: pc is -Inf"},
		{"infinity", "1 0x400100 +Infinity", "record 0: addr is +Infinity"},
		{"float", "1 0x400100 40.96", `record 0: addr "40.96" is not an unsigned integer`},
		{"exponent float", "1 1e9 4096", `record 0: pc "1e9" is not an unsigned integer`},
		{"negative", "1 0x400100 -4096", `record 0: addr "-4096" is not an unsigned integer`},
		{"garbage", "1 0x400100 hello", `record 0: bad addr "hello"`},
		{"addr out of range", "1 0x400100 0x1000000000000", "record 0: addr 0x1000000000000 out of range"},
		{"pc out of range", "1 0x1000000000000 4096", "record 0: pc"},
		{"chain overflow", "1 0x400100 4096 0x100000000", "record 0: chain"},
		{"too few fields", "1 4096", "record 0: 2 fields"},
		{"too many fields", "1 2 3 4 5", "record 0: 5 fields"},
		{"decreasing ids", "5 1 4096\n3 1 8192", "record 1: id 3 < previous id 5"},
		{"positioned past comments", "# c\n\n1 2 4096\n# c\n2 3 bad", "record 1: bad addr"},
	}
	for _, tc := range cases {
		_, err := ReadText(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadText accepted %q", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	got, err := ReadText(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records, want 0", len(got))
	}
}

func TestWriteTextRejectsInvalid(t *testing.T) {
	if err := WriteText(&bytes.Buffer{}, []Access{{ID: 5}, {ID: 3}}); err == nil {
		t.Error("WriteText accepted decreasing IDs")
	}
	if err := WriteText(&bytes.Buffer{}, []Access{{ID: 1, Addr: MaxAddr + 1}}); err == nil {
		t.Error("WriteText accepted out-of-range addr")
	}
}
