package trace

import (
	"bytes"
	"testing"
)

// FuzzRead checks the trace decoder never panics or over-allocates on
// arbitrary input, and that valid traces round-trip through it.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, []Access{{ID: 1, PC: 2, Addr: 192, Chain: 3}, {ID: 9, PC: 4, Addr: 4096}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("PFT2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		accs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// records.
		var buf bytes.Buffer
		if err := Write(&buf, accs); err != nil {
			t.Fatalf("Write of decoded trace failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(accs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(accs))
		}
	})
}

// FuzzReadPrefetches mirrors FuzzRead for prefetch files.
func FuzzReadPrefetches(f *testing.F) {
	var seed bytes.Buffer
	if err := WritePrefetches(&seed, []Prefetch{{ID: 1, Addr: 64}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("PFP1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pfs, err := ReadPrefetches(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePrefetches(&buf, pfs); err != nil {
			t.Fatalf("Write of decoded prefetches failed: %v", err)
		}
	})
}
