package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzRead checks the trace decoder never panics or over-allocates on
// arbitrary input, and that valid traces round-trip through it.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, []Access{{ID: 1, PC: 2, Addr: 192, Chain: 3}, {ID: 9, PC: 4, Addr: 4096}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("PFT2"))
	f.Add([]byte{})
	// Corrupt-record seeds steering the fuzzer at the decoder's validation
	// paths: out-of-range pc/addr, id-delta overflow, chain overflow, and a
	// record truncated mid-field.
	f.Add(corruptTrace(1, 0, MaxAddr+1, 0, 0))
	f.Add(corruptTrace(1, 0, 0, MaxAddr+1, 0))
	f.Add(corruptTrace(2, 5, 0, 0, 0, ^uint64(0), 0, 0, 0))
	f.Add(corruptTrace(1, 0, 0, 0, 1<<32))
	f.Add(seed.Bytes()[:seed.Len()-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		accs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// records.
		var buf bytes.Buffer
		if err := Write(&buf, accs); err != nil {
			t.Fatalf("Write of decoded trace failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(accs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(accs))
		}
	})
}

// FuzzStreamRead drives the streaming decoder over arbitrary input and
// checks it agrees with the slice path record-for-record and
// error-for-error — the fuzzing form of the differential parity test.
// Seeds include both container formats plus the corrupt-record corpus.
func FuzzStreamRead(f *testing.F) {
	var counted bytes.Buffer
	accs := []Access{{ID: 1, PC: 2, Addr: 192, Chain: 3}, {ID: 9, PC: 4, Addr: 4096}}
	if err := Write(&counted, accs); err != nil {
		f.Fatal(err)
	}
	var stream bytes.Buffer
	if err := Encode(&stream, NewSliceSource(accs)); err != nil {
		f.Fatal(err)
	}
	f.Add(counted.Bytes())
	f.Add(stream.Bytes())
	f.Add([]byte("PFT2"))
	f.Add([]byte("PFT3"))
	f.Add([]byte{})
	f.Add(corruptTrace(1, 0, MaxAddr+1, 0, 0))
	f.Add(corruptTrace(1, 0, 0, MaxAddr+1, 0))
	f.Add(corruptTrace(2, 5, 0, 0, 0, ^uint64(0), 0, 0, 0))
	f.Add(corruptTrace(1, 0, 0, 0, 1<<32))
	f.Add(counted.Bytes()[:counted.Len()-2])
	f.Add(stream.Bytes()[:stream.Len()-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		sliceAccs, sliceErr := Read(bytes.NewReader(data))

		var streamAccs []Access
		var streamErr error
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			streamErr = err
		} else {
			var a Access
			for {
				if err := rd.Next(&a); err != nil {
					if err != io.EOF {
						streamErr = err
					}
					break
				}
				streamAccs = append(streamAccs, a)
			}
		}

		if (sliceErr == nil) != (streamErr == nil) {
			t.Fatalf("slice err %v vs stream err %v", sliceErr, streamErr)
		}
		if sliceErr != nil {
			if sliceErr.Error() != streamErr.Error() {
				t.Fatalf("positioned errors differ:\n  slice:  %v\n  stream: %v", sliceErr, streamErr)
			}
			return
		}
		if len(sliceAccs) != len(streamAccs) {
			t.Fatalf("%d slice records vs %d stream records", len(sliceAccs), len(streamAccs))
		}
		for i := range sliceAccs {
			if sliceAccs[i] != streamAccs[i] {
				t.Fatalf("record %d differs: %+v vs %+v", i, sliceAccs[i], streamAccs[i])
			}
		}
	})
}

// FuzzReadText checks the text decoder never panics on arbitrary input
// and that whatever it accepts round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteText(&seed, []Access{{ID: 1, PC: 2, Addr: 192, Chain: 3}, {ID: 9, PC: 4, Addr: 4096}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("1 0x400100 NaN")
	f.Add("1 Inf 4096")
	f.Add("1 0x400100 40.96")
	f.Add("1 0x400100 0x1000000000000")
	f.Add("5 1 4096\n3 1 8192")
	f.Add("# comment only\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		accs, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, accs); err != nil {
			t.Fatalf("WriteText of decoded trace failed: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(accs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(accs))
		}
	})
}

// FuzzReadPrefetches mirrors FuzzRead for prefetch files.
func FuzzReadPrefetches(f *testing.F) {
	var seed bytes.Buffer
	if err := WritePrefetches(&seed, []Prefetch{{ID: 1, Addr: 64}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("PFP1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pfs, err := ReadPrefetches(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePrefetches(&buf, pfs); err != nil {
			t.Fatalf("Write of decoded prefetches failed: %v", err)
		}
	})
}
