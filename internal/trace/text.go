// Text form of the trace container, for interop with external tooling
// (spreadsheet exports, ChampSim-style CSV dumps, hand-written test
// traces). One record per line, `id pc addr [chain]`, fields separated by
// whitespace or commas, decimal or 0x-hex, with `#` comments and blank
// lines ignored. The decoder is strict: every field must be a finite
// unsigned integer — floats, NaN, and ±Inf (which numeric exporters love
// to emit for missing values) are rejected with the record's position
// rather than silently folded into addresses.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText encodes accesses to w in the text trace form, one
// `id pc addr chain` record per line (addresses in hex for legibility).
func WriteText(w io.Writer, accs []Access) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# pathfinder trace: id pc addr chain"); err != nil {
		return err
	}
	prevID := uint64(0)
	for i, a := range accs {
		if i > 0 && a.ID < prevID {
			return fmt.Errorf("trace: access %d has ID %d < previous ID %d", i, a.ID, prevID)
		}
		prevID = a.ID
		if a.PC > MaxAddr || a.Addr > MaxAddr {
			return fmt.Errorf("trace: access %d has a field beyond the canonical address space", i)
		}
		if _, err := fmt.Fprintf(bw, "%d 0x%x 0x%x %d\n", a.ID, a.PC, a.Addr, a.Chain); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text trace form written by WriteText (or by
// external tooling following the same shape). Errors carry the record
// number of the offending line, counted over records — comments and blank
// lines do not shift it.
func ReadText(r io.Reader) ([]Access, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var accs []Access
	rec := 0
	prevID := uint64(0)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("trace: record %d: %d fields, want `id pc addr [chain]`", rec, len(fields))
		}
		id, err := parseTextField(rec, "id", fields[0], ^uint64(0))
		if err != nil {
			return nil, err
		}
		if rec > 0 && id < prevID {
			return nil, fmt.Errorf("trace: record %d: id %d < previous id %d", rec, id, prevID)
		}
		prevID = id
		pc, err := parseTextField(rec, "pc", fields[1], MaxAddr)
		if err != nil {
			return nil, err
		}
		addr, err := parseTextField(rec, "addr", fields[2], MaxAddr)
		if err != nil {
			return nil, err
		}
		chain := uint64(0)
		if len(fields) == 4 {
			if chain, err = parseTextField(rec, "chain", fields[3], 1<<32-1); err != nil {
				return nil, err
			}
		}
		accs = append(accs, Access{ID: id, PC: pc, Addr: addr, Chain: uint32(chain)})
		rec++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: record %d: %w", rec, err)
	}
	return accs, nil
}

// parseTextField parses one text-form field as a finite unsigned integer
// no larger than max, with positioned errors. NaN, ±Inf, and float
// notation get targeted messages: they are what corrupt numeric exports
// actually contain.
func parseTextField(rec int, name, s string, max uint64) (uint64, error) {
	switch strings.ToLower(strings.TrimLeft(s, "+-")) {
	case "nan":
		return 0, fmt.Errorf("trace: record %d: %s is NaN, want a finite unsigned integer", rec, name)
	case "inf", "infinity":
		return 0, fmt.Errorf("trace: record %d: %s is %s, want a finite unsigned integer", rec, name, s)
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		if _, ferr := strconv.ParseFloat(s, 64); ferr == nil {
			return 0, fmt.Errorf("trace: record %d: %s %q is not an unsigned integer", rec, name, s)
		}
		return 0, fmt.Errorf("trace: record %d: bad %s %q", rec, name, s)
	}
	if v > max {
		return 0, fmt.Errorf("trace: record %d: %s %#x out of range (max %#x)", rec, name, v, max)
	}
	return v, nil
}
