// Text form of the trace container, for interop with external tooling
// (spreadsheet exports, ChampSim-style CSV dumps, hand-written test
// traces). One record per line, `id pc addr [chain]`, fields separated by
// whitespace or commas, decimal or 0x-hex, with `#` comments and blank
// lines ignored. The decoder is strict: every field must be a finite
// unsigned integer — floats, NaN, and ±Inf (which numeric exporters love
// to emit for missing values) are rejected with the record's position
// rather than silently folded into addresses.
//
// TextReader and TextWriter are the streaming forms; ReadText and
// WriteText are the materializing conveniences built on them, so both
// paths parse and validate identically by construction.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextWriter is the streaming text trace encoder: one record per Write
// call, validated incrementally with the same positioned errors as
// WriteText. The header comment is emitted with the first record (or
// Flush), so construction performs no I/O.
type TextWriter struct {
	bw      *bufio.Writer
	i       int // records written (error positions)
	prevID  uint64
	started bool
	err     error
}

// NewTextWriter returns a streaming encoder writing the text trace form
// to w.
func NewTextWriter(w io.Writer) *TextWriter { return &TextWriter{bw: bufio.NewWriter(w)} }

func (t *TextWriter) start() error {
	if t.started {
		return nil
	}
	t.started = true
	_, err := fmt.Fprintln(t.bw, "# pathfinder trace: id pc addr chain")
	return err
}

// Write validates and encodes one record.
func (t *TextWriter) Write(a Access) error {
	if t.err != nil {
		return t.err
	}
	fail := func(err error) error {
		t.err = err
		return err
	}
	if t.i > 0 && a.ID < t.prevID {
		return fail(fmt.Errorf("trace: access %d has ID %d < previous ID %d", t.i, a.ID, t.prevID))
	}
	t.prevID = a.ID
	if a.PC > MaxAddr || a.Addr > MaxAddr {
		return fail(fmt.Errorf("trace: access %d has a field beyond the canonical address space", t.i))
	}
	if err := t.start(); err != nil {
		return fail(err)
	}
	if _, err := fmt.Fprintf(t.bw, "%d 0x%x 0x%x %d\n", a.ID, a.PC, a.Addr, a.Chain); err != nil {
		return fail(err)
	}
	t.i++
	return nil
}

// Flush completes the stream: it emits the header if no record was
// written and drains the buffer to the underlying writer.
func (t *TextWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	if err := t.start(); err != nil {
		t.err = err
		return err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = err
		return err
	}
	return nil
}

// WriteText encodes accesses to w in the text trace form, one
// `id pc addr chain` record per line (addresses in hex for legibility).
func WriteText(w io.Writer, accs []Access) error {
	tw := NewTextWriter(w)
	for _, a := range accs {
		if err := tw.Write(a); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// TextReader is the streaming text trace decoder: a Source yielding one
// record per Next call with the same parsing, validation, and positioned
// errors as ReadText (which is implemented on top of it). Errors carry the
// record number of the offending line, counted over records — comments and
// blank lines do not shift it. After a non-nil return the reader is
// exhausted: further calls repeat the same error.
type TextReader struct {
	sc      *bufio.Scanner
	rec     int
	prevID  uint64
	err     error
	flushed bool
}

// NewTextReader returns a streaming decoder of the text trace form.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &TextReader{sc: sc}
}

// finish latches the reader's terminal state and flushes the locally
// accumulated telemetry exactly once.
func (t *TextReader) finish(err error) error {
	t.err = err
	if !t.flushed {
		t.flushed = true
		if m := traceTele.Load(); m != nil {
			m.recordsDecoded.Add(uint64(t.rec))
			if err != io.EOF {
				m.decodeErrors.Inc()
			}
		}
	}
	return err
}

// Next implements Source.
func (t *TextReader) Next(a *Access) error {
	if t.err != nil {
		return t.err
	}
	for t.sc.Scan() {
		line := t.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 || len(fields) > 4 {
			return t.finish(fmt.Errorf("trace: record %d: %d fields, want `id pc addr [chain]`", t.rec, len(fields)))
		}
		id, err := parseTextField(t.rec, "id", fields[0], ^uint64(0))
		if err != nil {
			return t.finish(err)
		}
		if t.rec > 0 && id < t.prevID {
			return t.finish(fmt.Errorf("trace: record %d: id %d < previous id %d", t.rec, id, t.prevID))
		}
		t.prevID = id
		pc, err := parseTextField(t.rec, "pc", fields[1], MaxAddr)
		if err != nil {
			return t.finish(err)
		}
		addr, err := parseTextField(t.rec, "addr", fields[2], MaxAddr)
		if err != nil {
			return t.finish(err)
		}
		chain := uint64(0)
		if len(fields) == 4 {
			if chain, err = parseTextField(t.rec, "chain", fields[3], 1<<32-1); err != nil {
				return t.finish(err)
			}
		}
		*a = Access{ID: id, PC: pc, Addr: addr, Chain: uint32(chain)}
		t.rec++
		return nil
	}
	if err := t.sc.Err(); err != nil {
		return t.finish(fmt.Errorf("trace: record %d: %w", t.rec, err))
	}
	return t.finish(io.EOF)
}

// ReadText decodes the text trace form written by WriteText (or by
// external tooling following the same shape).
func ReadText(r io.Reader) ([]Access, error) {
	return Collect(NewTextReader(r))
}

// parseTextField parses one text-form field as a finite unsigned integer
// no larger than max, with positioned errors. NaN, ±Inf, and float
// notation get targeted messages: they are what corrupt numeric exports
// actually contain.
func parseTextField(rec int, name, s string, max uint64) (uint64, error) {
	switch strings.ToLower(strings.TrimLeft(s, "+-")) {
	case "nan":
		return 0, fmt.Errorf("trace: record %d: %s is NaN, want a finite unsigned integer", rec, name)
	case "inf", "infinity":
		return 0, fmt.Errorf("trace: record %d: %s is %s, want a finite unsigned integer", rec, name, s)
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		if _, ferr := strconv.ParseFloat(s, 64); ferr == nil {
			return 0, fmt.Errorf("trace: record %d: %s %q is not an unsigned integer", rec, name, s)
		}
		return 0, fmt.Errorf("trace: record %d: bad %s %q", rec, name, s)
	}
	if v > max {
		return 0, fmt.Errorf("trace: record %d: %s %#x out of range (max %#x)", rec, name, v, max)
	}
	return v, nil
}
