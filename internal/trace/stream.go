// Streaming form of the trace container: a pull-based Source iterator plus
// incremental decoders and encoders, so traces of any length — gigabyte
// files, live capture pipes — replay in constant memory. The slice entry
// points (Read, ReadText, Write, WriteText) are retained as conveniences
// and are themselves built on the streaming layer, so the two paths cannot
// drift: they share one decoder and produce identical records and identical
// positioned errors by construction.
//
// Containers:
//
//   - "PFT2" (Write): counted — magic, uvarint record count, records. The
//     decoder knows the length up front and can pre-size collections.
//   - "PFT3" (Writer): unbounded — magic, records until EOF. This is the
//     piping format: an encoder that does not know the record count when
//     the first record leaves (tracegen -o -, live capture adapters).
//
// NewReader decodes both; NewAutoReader additionally sniffs the text form.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Source is the pull-based trace iterator the streaming stack is built on:
// decoders, workload generators, and the simulator's replay loop all speak
// it. Next fills *a with the next record and returns nil, or returns io.EOF
// after the last record, or a decoding/validation error positioned at the
// failing record. After a non-nil return the Source is exhausted: further
// calls return the same error.
type Source interface {
	Next(a *Access) error
}

// magic3 identifies the unbounded (stream) binary trace container.
var magic3 = [4]byte{'P', 'F', 'T', '3'}

// SliceSource adapts an in-memory []Access to the Source interface, keeping
// the old materialized shape usable wherever a Source is now expected.
type SliceSource struct {
	accs []Access
	i    int
}

// NewSliceSource returns a Source yielding the slice's records in order.
// The slice is not copied; it must not be mutated while the source is read.
func NewSliceSource(accs []Access) *SliceSource { return &SliceSource{accs: accs} }

// Next implements Source.
func (s *SliceSource) Next(a *Access) error {
	if s.i >= len(s.accs) {
		return io.EOF
	}
	*a = s.accs[s.i]
	s.i++
	return nil
}

// Remaining reports how many records are left, enabling pre-sized collects.
func (s *SliceSource) Remaining() (uint64, bool) { return uint64(len(s.accs) - s.i), true }

// Reset rewinds the source to the first record.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect drains a Source into a slice — the bridge back from the
// streaming world for consumers that genuinely need random access (offline
// trainers, delta statistics). Sources exposing Remaining() (uint64, bool)
// get a pre-sized destination.
func Collect(src Source) ([]Access, error) {
	var accs []Access
	if s, ok := src.(interface{ Remaining() (uint64, bool) }); ok {
		if n, known := s.Remaining(); known && n <= sanityMaxRecords {
			accs = make([]Access, 0, n)
		}
	}
	for {
		var a Access
		if err := src.Next(&a); err != nil {
			if err == io.EOF {
				return accs, nil
			}
			return nil, err
		}
		accs = append(accs, a)
	}
}

// HashSource drains src, folding every record into one FNV-1a hash, and
// returns the hash with the record count. It is the golden-hash primitive
// of the streaming parity tests and the content digest cmd tools key their
// caches by: two streams are the same trace iff (hash, n) match.
func HashSource(src Source) (hash uint64, n uint64, err error) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	var a Access
	for {
		if err := src.Next(&a); err != nil {
			if err == io.EOF {
				return h, n, nil
			}
			return 0, n, err
		}
		mix(a.ID)
		mix(a.PC)
		mix(a.Addr)
		mix(uint64(a.Chain))
		n++
	}
}

// sanityMaxRecords bounds declared record counts: a counted container
// claiming more is a corrupt or hostile header, not a real trace.
const sanityMaxRecords = 1 << 30

// Reader is the streaming binary trace decoder: it accepts both the
// counted PFT2 container and the unbounded PFT3 stream container and
// yields one record per Next call. Steady-state decoding performs no
// allocations; validation (monotonic IDs, canonical address space, chain
// width) matches the slice decoder exactly, with the same positioned
// errors — Read is implemented on top of Reader.
type Reader struct {
	br      *bufio.Reader
	counted bool   // PFT2: the header declared a record count
	n       uint64 // remaining declared records (counted mode)
	i       uint64 // records decoded so far (error positions)
	id      uint64 // running instruction id
	err     error  // sticky terminal state (io.EOF or the first error)
	flushed bool   // telemetry flushed
}

// NewReader begins decoding a binary trace container from r. It consumes
// and validates the header (magic, and the record count for PFT2)
// immediately, so a non-trace input fails here rather than on first Next.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	rd := &Reader{br: br}
	switch m {
	case magic:
		rd.counted = true
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading count: %w", err)
		}
		if n > sanityMaxRecords {
			return nil, fmt.Errorf("trace: implausible record count %d", n)
		}
		rd.n = n
	case magic3:
		// Unbounded stream: records until a clean EOF at a record boundary.
	default:
		return nil, errors.New("trace: bad magic; not a PFT2/PFT3 trace file")
	}
	return rd, nil
}

// Remaining reports the declared records left in a counted (PFT2)
// container; unbounded streams return false.
func (r *Reader) Remaining() (uint64, bool) {
	if !r.counted {
		return 0, false
	}
	return r.n, true
}

// finish latches the reader's terminal state and flushes the locally
// accumulated telemetry exactly once (records decoded; whether the stream
// ended in a decode error).
func (r *Reader) finish(err error) error {
	r.err = err
	if !r.flushed {
		r.flushed = true
		if m := traceTele.Load(); m != nil {
			m.recordsDecoded.Add(r.i)
			if err != io.EOF {
				m.decodeErrors.Inc()
			}
		}
	}
	return err
}

// Next implements Source: it decodes one record into *a, returning io.EOF
// after the final record and positioned errors for corrupt ones.
func (r *Reader) Next(a *Access) error {
	if r.err != nil {
		return r.err
	}
	if r.counted && r.n == 0 {
		return r.finish(io.EOF)
	}
	d, err := binary.ReadUvarint(r.br)
	if err != nil {
		if !r.counted && err == io.EOF {
			// A clean end at a record boundary terminates a PFT3 stream.
			return r.finish(io.EOF)
		}
		return r.finish(fmt.Errorf("trace: record %d id: %w", r.i, err))
	}
	if d > ^uint64(0)-r.id {
		return r.finish(fmt.Errorf("trace: record %d: id delta %d overflows the id sequence", r.i, d))
	}
	id := r.id + d
	pc, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.finish(fmt.Errorf("trace: record %d pc: %w", r.i, err))
	}
	if pc > MaxAddr {
		return r.finish(fmt.Errorf("trace: record %d: pc %#x beyond the canonical address space", r.i, pc))
	}
	addr, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.finish(fmt.Errorf("trace: record %d addr: %w", r.i, err))
	}
	if addr > MaxAddr {
		return r.finish(fmt.Errorf("trace: record %d: addr %#x beyond the canonical address space", r.i, addr))
	}
	chain, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.finish(fmt.Errorf("trace: record %d chain: %w", r.i, err))
	}
	if chain > 1<<32-1 {
		return r.finish(fmt.Errorf("trace: record %d chain %d overflows uint32", r.i, chain))
	}
	r.id = id
	r.i++
	if r.counted {
		r.n--
	}
	*a = Access{ID: id, PC: pc, Addr: addr, Chain: uint32(chain)}
	return nil
}

// Writer is the streaming binary trace encoder. It emits the unbounded
// PFT3 container — the record count need not be known when encoding
// starts, which is what lets tracegen pipe to stdout and capture adapters
// encode live streams. Records are validated incrementally with the same
// positioned errors as the slice encoder; a validation or I/O error is
// sticky and nothing further is written.
type Writer struct {
	bw      *bufio.Writer
	buf     [binary.MaxVarintLen64]byte
	i       uint64 // records written (error positions)
	prevID  uint64
	started bool // magic written
	err     error
}

// NewWriter returns a streaming encoder writing the PFT3 container to w.
// The magic is emitted with the first record (or Flush), so constructing a
// Writer performs no I/O.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := w.bw.Write(magic3[:])
	return err
}

func (w *Writer) put(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Write validates and encodes one record. Validation mirrors the slice
// encoder: non-decreasing IDs and canonical-address-space PC/Addr.
func (w *Writer) Write(a Access) error {
	if w.err != nil {
		return w.err
	}
	fail := func(err error) error {
		w.err = err
		return err
	}
	if a.ID < w.prevID {
		return fail(fmt.Errorf("trace: access %d has ID %d < previous ID %d", w.i, a.ID, w.prevID))
	}
	if a.PC > MaxAddr {
		return fail(fmt.Errorf("trace: access %d has pc %#x beyond the canonical address space", w.i, a.PC))
	}
	if a.Addr > MaxAddr {
		return fail(fmt.Errorf("trace: access %d has addr %#x beyond the canonical address space", w.i, a.Addr))
	}
	if err := w.start(); err != nil {
		return fail(err)
	}
	if err := w.put(a.ID - w.prevID); err != nil {
		return fail(err)
	}
	w.prevID = a.ID
	if err := w.put(a.PC); err != nil {
		return fail(err)
	}
	if err := w.put(a.Addr); err != nil {
		return fail(err)
	}
	if err := w.put(uint64(a.Chain)); err != nil {
		return fail(err)
	}
	w.i++
	return nil
}

// Flush completes the stream: it emits the magic if no record was written
// (an empty but valid PFT3 trace) and drains the buffer to the underlying
// writer. Call it once after the last record.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.start(); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Encode drains src through a streaming Writer into w — the constant-memory
// counterpart of Write for unbounded inputs.
func Encode(w io.Writer, src Source) error {
	enc := NewWriter(w)
	var a Access
	for {
		if err := src.Next(&a); err != nil {
			if err == io.EOF {
				return enc.Flush()
			}
			return err
		}
		if err := enc.Write(a); err != nil {
			return err
		}
	}
}

// NewAutoReader sniffs the container format and returns the matching
// streaming decoder: PFT2/PFT3 magic selects the binary Reader, anything
// else is decoded as the text trace form. This is what lets cmd tools
// accept either format on stdin.
func NewAutoReader(r io.Reader) (Source, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 {
		var m [4]byte
		copy(m[:], head)
		if m == magic || m == magic3 {
			return NewReader(br)
		}
	}
	return NewTextReader(br), nil
}
